/// \file ablation_faults.cpp
/// Ablation: probe-failure rate vs partitioner benefit.
///
/// The sensing loop is only useful if it survives the failure modes real
/// monitors exhibit: probes time out, nodes drop off and rejoin, readings
/// go stale.  This driver sweeps the per-attempt probe failure rate (plus
/// a fixed script of stale windows and crash/rejoin episodes) and runs the
/// system-sensitive partitioner against the homogeneous GrACE-default
/// baseline under identical load dynamics and identical fault plans.  The
/// claim under test: degraded sensing (backoff, staleness decay,
/// quarantine, forced repartitions) keeps the system-sensitive runtime
/// ahead of the baseline even when a fifth of all probes fail.
///
/// Environment knobs (all optional):
///   SSAMR_FAULT_RATES    comma-separated per-attempt probe failure rates
///                        (default "0,0.05,0.1,0.2,0.3")
///   SSAMR_FAULT_SEED     fault-plan seed (default 1724)
///   SSAMR_FAULT_STALE_WINDOWS  scripted stale windows per faulty run (2)
///   SSAMR_FAULT_CRASHES  scripted crash/rejoin episodes per faulty run (1)
///   SSAMR_FAULT_TIMEOUT_FRACTION  fraction of the failure rate drawn as
///                        timeouts rather than fast drops (default 0.5)

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ssamr;

namespace {

std::vector<real_t> env_rates() {
  std::vector<real_t> rates;
  const char* v = std::getenv("SSAMR_FAULT_RATES");
  std::stringstream ss(v != nullptr && *v != '\0' ? v
                                                  : "0,0.05,0.1,0.2,0.3");
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) rates.push_back(std::strtod(item.c_str(), nullptr));
  return rates;
}

/// The fault plan for one sweep row.  Rate 0 is the reference row: fully
/// benign, so the run takes the monitor's bit-identical fault-free path.
FaultPlan plan_for_rate(real_t rate, int nodes, real_t horizon) {
  if (rate <= 0) return FaultPlan{};
  const real_t timeout_frac =
      exp::env_real("SSAMR_FAULT_TIMEOUT_FRACTION", 0.5, 0.0, 1.0);
  FaultProfile profile;
  profile.probe_timeout_rate = rate * timeout_frac;
  profile.probe_drop_rate = rate * (1.0 - timeout_frac);
  profile.stale_windows = exp::env_int("SSAMR_FAULT_STALE_WINDOWS", 2, 0);
  profile.crash_episodes = exp::env_int("SSAMR_FAULT_CRASHES", 1, 0);
  return FaultPlan::scripted(
      nodes, Seconds{horizon}, profile,
      static_cast<std::uint64_t>(exp::env_int("SSAMR_FAULT_SEED", 1724, 0)));
}

RunTrace run_one(const Partitioner& p, const FaultPlan& plan, real_t tau,
                 int iterations) {
  Cluster cluster = exp::paper_cluster(4);
  exp::apply_dynamic_loads(cluster, tau);
  if (!plan.benign()) cluster.set_fault_plan(plan);
  TraceWorkloadSource source(exp::paper_trace_config());
  RuntimeConfig cfg = exp::paper_runtime_config(iterations,
                                                /*sensing_interval=*/5);
  AdaptiveRuntime runtime(cluster, source, p, cfg);
  return runtime.run();
}

}  // namespace

int main(int argc, char** argv) {
  exp::select_exec_model(argc, argv);
  std::cout << "=== Ablation: probe failure rate (system-sensitive vs "
               "homogeneous baseline,\n    identical dynamic loads and "
               "fault plans; sensing every 5 iterations) ===\n\n";

  const int iterations = exp::run_iterations(200);
  const real_t tau = exp::calibrate_timescale(4, iterations, 5);
  const std::vector<real_t> rates = env_rates();

  // One het + one default run per rate, all independent: run in parallel.
  std::vector<RunTrace> het(rates.size());
  std::vector<RunTrace> def(rates.size());
  ThreadPool::global().parallel_for(rates.size() * 2, [&](std::size_t j) {
    const std::size_t i = j / 2;
    const FaultPlan plan =
        plan_for_rate(rates[i], /*nodes=*/4, /*horizon=*/tau);
    HeterogeneousPartitioner h;
    GraceDefaultPartitioner d;
    if (j % 2 == 0)
      het[i] = run_one(h, plan, tau, iterations);
    else
      def[i] = run_one(d, plan, tau, iterations);
  });

  Table t({"fault rate", "system (s)", "default (s)", "gain %", "stale",
           "timeout", "failed", "quar", "readmit", "forced"});
  CsvWriter csv(exp::results_path("ablation_faults.csv"),
                {"fault_rate", "system_s", "default_s", "gain_pct", "stale",
                 "timeouts", "failures", "quarantines", "readmissions",
                 "forced_repartitions"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const ProbeHealth& h = het[i].health;
    const real_t gain =
        def[i].total_time > Seconds{0}
            ? 100.0 * (def[i].total_time - het[i].total_time) /
                  def[i].total_time
            : 0.0;
    t.add_row({fmt(rates[i], 2), fmt(het[i].total_time.value(), 1),
               fmt(def[i].total_time.value(), 1), fmt(gain, 1),
               std::to_string(h.stale), std::to_string(h.timeouts),
               std::to_string(h.failures), std::to_string(h.quarantines),
               std::to_string(h.readmissions),
               std::to_string(h.forced_repartitions)});
    csv.add_row({fmt(rates[i], 2), fmt(het[i].total_time.value(), 2),
                 fmt(def[i].total_time.value(), 2), fmt(gain, 2),
                 std::to_string(h.stale), std::to_string(h.timeouts),
                 std::to_string(h.failures), std::to_string(h.quarantines),
                 std::to_string(h.readmissions),
                 std::to_string(h.forced_repartitions)});
  }
  std::cout << t.str() << '\n';
  std::cout << "Expected shape: the gain column stays positive across the "
               "sweep — degraded\nsensing narrows but does not erase the "
               "system-sensitive advantage.\nraw series written to "
               "results/ablation_faults.csv\n";
  return 0;
}

/// \file ablation_hysteresis.cpp
/// Ablation: capacity-change hysteresis.
///
/// Every sensing sweep returns slightly different capacities (sensor
/// noise); adopting each jittered estimate makes the partitioner migrate
/// data for nothing.  The runtime's capacity_change_threshold adopts fresh
/// capacities only when some node moved by more than θ.  Too small — noise
/// churn; too large — genuine load changes are ignored.  Swept under the
/// Table III dynamics with frequent sensing and noisy sensors.

#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ssamr;

namespace {

RunTrace run_with_threshold(real_t threshold, real_t tau, real_t noise,
                            int iterations) {
  Cluster cluster = exp::paper_cluster(4);
  exp::apply_dynamic_loads(cluster, tau);
  TraceWorkloadSource source(exp::paper_trace_config());
  HeterogeneousPartitioner het;
  RuntimeConfig cfg = exp::paper_runtime_config(iterations,
                                                /*sensing_interval=*/10);
  cfg.sensing.capacity_change_threshold = threshold;
  cfg.monitor.noise.cpu_sigma = noise;
  cfg.monitor.noise.bandwidth_sigma = noise;
  AdaptiveRuntime runtime(cluster, source, het, cfg);
  return runtime.run();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: capacity-change hysteresis threshold "
               "(sensing every 10 iterations, noisy sensors) ===\n\n";

  const real_t noise = 0.10;
  const int iterations = exp::run_iterations(200);
  const real_t tau = exp::calibrate_timescale(4, iterations, 10);

  Table t({"threshold", "total (s)", "migrate (s)", "compute (s)"});
  CsvWriter csv(exp::results_path("ablation_hysteresis.csv"),
                {"threshold", "total_s", "migrate_s", "compute_s"});
  // The six threshold sweeps are independent runs over the same load
  // script; run them in parallel, emit rows in fixed order.
  const std::vector<real_t> thetas{0.0, 0.05, 0.10, 0.20, 0.50, 2.0};
  std::vector<RunTrace> traces(thetas.size());
  ThreadPool::global().parallel_for(thetas.size(), [&](std::size_t i) {
    traces[i] = run_with_threshold(thetas[i], tau, noise, iterations);
  });
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const real_t theta = thetas[i];
    const RunTrace& trace = traces[i];
    t.add_row({fmt(theta, 2), fmt(trace.total_time.value(), 1),
               fmt(trace.migrate_time.value(), 1),
               fmt(trace.compute_time.value(), 1)});
    csv.add_row({fmt(theta, 2), fmt(trace.total_time.value(), 2),
                 fmt(trace.migrate_time.value(), 2),
                 fmt(trace.compute_time.value(), 2)});
  }
  std::cout << t.str() << '\n';
  std::cout << "Expected shape: an interior optimum — small thresholds "
               "migrate data chasing noise,\nhuge thresholds never adopt "
               "real load changes (compute blows up).\nraw series written "
               "to results/ablation_hysteresis.csv\n";
  return 0;
}

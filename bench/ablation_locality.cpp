/// \file ablation_locality.cpp
/// Ablation: the locality / balance trade-off across three partitioners.
///
/// ACEHeterogeneous matches boxes to capacities by sorting by size — good
/// balance, scattered ownership.  The composite default preserves locality
/// but ignores capacities.  The hybrid (ACECompositeHeterogeneous) cuts
/// the space-filling-curve order at capacity-proportional targets.  We
/// measure, on the paper workload with fixed 16/19/31/34 % capacities:
/// effective imbalance, ghost-communication volume, splits — and the
/// resulting execution time on the loaded virtual cluster.

#include <iostream>
#include <memory>

#include "core/experiment.hpp"
#include "partition/greedy.hpp"
#include "partition/sfc_heterogeneous.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

int main() {
  std::cout << "=== Ablation: locality vs balance across partitioners "
               "===\n\n";

  const auto caps = exp::reference_capacities4();
  SyntheticAmrTrace trace(exp::paper_trace_config());
  const WorkModel work;
  const int regrids = 8;

  std::vector<std::unique_ptr<Partitioner>> schemes;
  schemes.push_back(std::make_unique<GraceDefaultPartitioner>());
  schemes.push_back(std::make_unique<HeterogeneousPartitioner>());
  schemes.push_back(std::make_unique<SfcHeterogeneousPartitioner>());
  schemes.push_back(std::make_unique<GreedyPartitioner>());

  Table t({"scheme", "effective imbalance", "comm cells/step", "splits"});
  CsvWriter csv(exp::results_path("ablation_locality.csv"),
                {"scheme", "imbalance_pct", "comm_cells", "splits",
                 "exec_time_s"});

  std::vector<real_t> exec_times;
  for (const auto& scheme : schemes) {
    real_t imb = 0;
    std::int64_t comm = 0;
    int splits = 0;
    for (int e = 0; e < regrids; ++e) {
      const BoxList boxes = trace.boxes_at_epoch(e);
      PartitionResult r = scheme->partition(boxes, caps, work);
      if (scheme->name() == "ACEComposite") {
        // Judge the capacity-blind baseline against the same targets.
        const real_t total = total_work(boxes, work);
        for (std::size_t k = 0; k < caps.size(); ++k)
          r.target_work[k] = caps[k] * total;
      }
      imb += effective_imbalance_pct(r);
      comm += partition_comm_cells(r, 1);
      splits += r.splits;
    }
    imb /= regrids;
    comm /= regrids;

    // Execution time on the statically loaded cluster.
    Cluster cluster = exp::paper_cluster(4);
    exp::apply_static_loads(cluster);
    TraceWorkloadSource source(exp::paper_trace_config());
    AdaptiveRuntime runtime(cluster, source, *scheme,
                            exp::paper_runtime_config(100, 0));
    const real_t time = runtime.run().total_time.value();
    exec_times.push_back(time);

    t.add_row({scheme->name(), fmt(imb, 2) + "%", std::to_string(comm),
               std::to_string(splits)});
    csv.add_row({scheme->name(), fmt(imb, 3), std::to_string(comm),
                 std::to_string(splits), fmt(time, 2)});
  }
  std::cout << t.str() << '\n';

  Table et({"scheme", "execution time (s)"});
  for (std::size_t i = 0; i < schemes.size(); ++i)
    et.add_row({schemes[i]->name(), fmt(exec_times[i], 1)});
  std::cout << et.str() << '\n';
  std::cout
      << "Expected shape: ACEHeterogeneous balances best but communicates "
         "most; the composite\nbaseline communicates least but ignores "
         "capacities; the hybrid sits between on comm while\nmatching the "
         "heterogeneous balance — and wins (or ties) on execution time.\n"
         "raw series written to results/ablation_locality.csv\n";
  return 0;
}

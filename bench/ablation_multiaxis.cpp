/// \file ablation_multiaxis.cpp
/// Ablation of the paper's §8 future-work proposal: "If the box is instead
/// cut along more axes, it could lead to finer partitioning granularity
/// and hence better work assignments, which would in turn reduce the
/// load-imbalance."
///
/// The effect shows when the workload is coarse-grained — few large boxes
/// whose longest-axis planes carry a lot of work each.  We sweep two
/// workloads (the paper trace clustered coarsely, and a handful of large
/// anisotropic patches) across minimum-box-size settings.

#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

namespace {

/// The paper trace, clustered very coarsely (GrACE-like large patches).
std::vector<BoxList> coarse_trace_epochs(int n) {
  TraceConfig cfg = exp::paper_trace_config();
  cfg.cluster.efficiency = 0.25;
  cfg.cluster.small_box_cells = 1 << 16;
  SyntheticAmrTrace trace(cfg);
  std::vector<BoxList> out;
  for (int e = 0; e < n; ++e) out.push_back(trace.boxes_at_epoch(e));
  return out;
}

/// A few large, anisotropic patches (coarse-grained hierarchy).
std::vector<BoxList> blocky_epochs() {
  BoxList a;
  a.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(128, 32, 32), 0));
  a.push_back(Box::from_extent(IntVec(40, 8, 8), IntVec(36, 30, 22), 1));
  a.push_back(Box::from_extent(IntVec(90, 0, 0), IntVec(22, 34, 26), 1));
  BoxList b;
  b.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(128, 32, 32), 0));
  b.push_back(Box::from_extent(IntVec(52, 4, 10), IntVec(42, 26, 30), 1));
  b.push_back(Box::from_extent(IntVec(104, 6, 2), IntVec(18, 38, 42), 1));
  return {a, b};
}

void run_workload(const char* name, const std::vector<BoxList>& epochs,
                  CsvWriter& csv) {
  const auto caps = exp::reference_capacities4();
  const WorkModel work;
  std::cout << "workload: " << name << "\n";
  Table t({"min box size", "longest-axis imbalance", "multi-axis imbalance",
           "splits (single/multi)"});
  for (coord_t min_size : {4, 8, 16, 24}) {
    PartitionConstraints constraints;
    constraints.min_box_size = min_size;
    HeterogeneousPartitioner single(constraints);
    MultiAxisPartitioner multi(constraints);

    real_t single_sum = 0, multi_sum = 0;
    int single_splits = 0, multi_splits = 0;
    for (const BoxList& boxes : epochs) {
      const auto rs = single.partition(boxes, caps, work);
      const auto rm = multi.partition(boxes, caps, work);
      single_sum += effective_imbalance_pct(rs);
      multi_sum += effective_imbalance_pct(rm);
      single_splits += rs.splits;
      multi_splits += rm.splits;
    }
    const auto n = static_cast<real_t>(epochs.size());
    t.add_row({std::to_string(min_size), fmt(single_sum / n, 2) + "%",
               fmt(multi_sum / n, 2) + "%",
               std::to_string(single_splits) + "/" +
                   std::to_string(multi_splits)});
    csv.add_row({name, std::to_string(min_size), fmt(single_sum / n, 3),
                 fmt(multi_sum / n, 3)});
  }
  std::cout << t.str() << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Ablation: longest-axis-only vs multi-axis box "
               "splitting (paper §8 future work) ===\n\n";
  CsvWriter csv(exp::results_path("ablation_multiaxis.csv"),
                {"workload", "min_box_size", "single_pct", "multi_pct"});
  run_workload("paper trace, coarse clustering", coarse_trace_epochs(6),
               csv);
  run_workload("large anisotropic patches", blocky_epochs(), csv);
  std::cout
      << "Expected shape: the multi-axis variant never increases the "
         "effective imbalance, and the gap\nwidens as the workload "
         "coarsens — the paper's predicted benefit of finer granularity.\n"
         "raw series written to results/ablation_multiaxis.csv\n";
  return 0;
}

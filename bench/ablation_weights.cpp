/// \file ablation_weights.cpp
/// Ablation of the paper's §8 future-work proposal: choosing the capacity
/// weights w_p, w_m, w_b "according to the computational needs of a
/// particular application.  For example, if the application is memory
/// intensive, then a larger value can be assigned to w_m".
///
/// The cluster is built so each resource is scarce on a *different* node
/// (CPU on node 0, memory on node 1, bandwidth on node 2; node 3 idle).
/// Weighting the metric toward the resource the application actually
/// stresses steers work away from the node where that resource is scarce.

#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

namespace {

struct Profile {
  const char* name;
  const char* matched_weights;
  ExecutorConfig executor;
};

std::vector<Profile> make_profiles() {
  std::vector<Profile> out;
  {
    ExecutorConfig e;  // CPU-bound: small footprint, light comm
    e.ncomp = 5;
    e.ghost = 1;
    e.time_levels = 1;
    e.app_base_memory_mb = MegaBytes{8.0};
    e.comm_overlap = Fraction{0.9};
    out.push_back({"cpu-bound", "cpu-weighted", e});
  }
  {
    ExecutorConfig e;  // memory-intensive: many stored time levels
    e.ncomp = 5;
    e.ghost = 1;
    e.time_levels = 4;
    e.app_base_memory_mb = MegaBytes{40.0};
    e.comm_overlap = Fraction{0.9};
    out.push_back({"memory-intensive", "memory-weighted", e});
  }
  {
    ExecutorConfig e;  // communication-heavy: wide stencils, no overlap
    e.ncomp = 10;
    e.ghost = 3;
    e.time_levels = 1;
    e.app_base_memory_mb = MegaBytes{8.0};
    e.comm_overlap = Fraction{0.0};
    out.push_back({"comm-heavy", "comm-weighted", e});
  }
  return out;
}

/// Each resource scarce on a different node.
Cluster skewed_cluster() {
  Cluster cluster = exp::paper_cluster(4);
  auto steady = [](real_t level, real_t memory, real_t traffic) {
    LoadRamp r;
    r.start_time = Seconds{-1.0};
    r.rate = 1.0e9;
    r.target_level = level;
    r.memory_mb = MegaBytes{memory};
    r.traffic_mbps = MbitsPerSec{traffic};
    return r;
  };
  cluster.add_load(0, steady(1.2, 10.0, 0.0));   // CPU-starved
  cluster.add_load(1, steady(0.05, 180.0, 0.0));  // memory-starved
  cluster.add_load(2, steady(0.05, 10.0, 80.0));  // bandwidth-starved
  return cluster;
}

real_t run_profile(const Profile& profile, CapacityWeights weights) {
  Cluster cluster = skewed_cluster();
  TraceWorkloadSource source(exp::paper_trace_config());
  HeterogeneousPartitioner het;
  RuntimeConfig cfg = exp::paper_runtime_config(/*iterations=*/100,
                                                /*sensing_interval=*/20);
  cfg.weights = weights;
  cfg.executor = profile.executor;
  AdaptiveRuntime runtime(cluster, source, het, cfg);
  return runtime.run().total_time.value();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: capacity weight choice vs application "
               "character (paper §8 future work) ===\n\n";
  std::cout << "cluster: node 0 CPU-starved, node 1 memory-starved, node 2 "
               "bandwidth-starved, node 3 idle\n\n";

  const std::pair<const char*, CapacityWeights> weight_sets[] = {
      {"equal", CapacityWeights::equal()},
      {"cpu-weighted", CapacityWeights::cpu_bound()},
      {"memory-weighted", CapacityWeights::memory_bound()},
      {"comm-weighted", CapacityWeights::comm_bound()},
  };

  Table t({"application \\ weights", "equal", "cpu-weighted",
           "memory-weighted", "comm-weighted", "best", "paper-matched"});
  CsvWriter csv(exp::results_path("ablation_weights.csv"),
                {"profile", "weights", "time_s"});

  for (const Profile& profile : make_profiles()) {
    std::vector<std::string> row{profile.name};
    real_t best = 1e30;
    const char* best_name = "";
    for (const auto& [wname, w] : weight_sets) {
      const real_t time = run_profile(profile, w);
      row.push_back(fmt(time, 1));
      csv.add_row({profile.name, wname, fmt(time, 2)});
      if (time < best) {
        best = time;
        best_name = wname;
      }
    }
    row.push_back(best_name);
    row.push_back(profile.matched_weights);
    t.add_row(row);
  }
  std::cout << t.str() << '\n';
  std::cout << "Execution time (virtual s) of a 100-iteration run per "
               "profile and weight choice.\nExpected shape: the weight "
               "profile matched to the application's dominant resource "
               "demand\nis at or near the per-row minimum — the paper's "
               "§8 conjecture.\nraw series written to "
               "results/ablation_weights.csv\n";
  return 0;
}

/// \file bench_amr.cpp
/// Microbenchmarks of the SAMR machinery: ghost planning/exchange, a full
/// Berger–Oliger coarse step with the advection and Euler kernels, and
/// regridding.

#include <benchmark/benchmark.h>

#include "amr/integrator.hpp"
#include "solver/advection.hpp"
#include "solver/richtmyer_meshkov.hpp"

namespace {

using namespace ssamr;

HierarchyConfig bench_hier(int ncomp, int max_levels) {
  HierarchyConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 16, 16), 0);
  cfg.max_levels = max_levels;
  cfg.ncomp = ncomp;
  cfg.ghost = 1;
  cfg.min_box_size = 2;
  return cfg;
}

IntegratorConfig bench_int() {
  IntegratorConfig cfg;
  cfg.dx0 = 1.0 / 32.0;
  cfg.regrid_interval = 5;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 64;
  return cfg;
}

void BM_GhostPlanBuild(benchmark::State& state) {
  GridLevel lvl(0, 1, 1);
  const coord_t n = state.range(0);
  for (coord_t i = 0; i < n; ++i)
    for (coord_t j = 0; j < n; ++j)
      lvl.add_patch(
          Box::from_extent(IntVec(i * 8, j * 8, 0), IntVec(8, 8, 8), 0));
  const Box domain =
      Box::from_extent(IntVec(0, 0, 0), IntVec(n * 8, n * 8, 8), 0);
  for (auto _ : state) {
    GhostPlan plan(lvl, domain);
    benchmark::DoNotOptimize(plan.ops().size());
  }
  state.counters["patches"] = static_cast<double>(n * n);
}
BENCHMARK(BM_GhostPlanBuild)->Arg(4)->Arg(8);

void BM_GhostExchange(benchmark::State& state) {
  GridLevel lvl(0, 1, 1);
  for (coord_t i = 0; i < 4; ++i)
    lvl.add_patch(
        Box::from_extent(IntVec(i * 8, 0, 0), IntVec(8, 16, 16), 0));
  const Box domain =
      Box::from_extent(IntVec(0, 0, 0), IntVec(32, 16, 16), 0);
  GhostPlan plan(lvl, domain);
  for (auto _ : state) plan.exchange(lvl);
}
BENCHMARK(BM_GhostExchange);

void BM_AdvectionCoarseStep(benchmark::State& state) {
  GridHierarchy h(bench_hier(1, static_cast<int>(state.range(0))));
  AdvectionOperator op(1, 0, 0, 0.3, 0.25, 0.25, 0.12);
  GradientFlagger fl(0, 0.08);
  BergerOliger bo(h, op, fl, bench_int());
  bo.initialize();
  for (auto _ : state) benchmark::DoNotOptimize(bo.advance_step());
  state.counters["cells"] = static_cast<double>(h.total_cells());
}
BENCHMARK(BM_AdvectionCoarseStep)->Arg(1)->Arg(2)->Arg(3);

void BM_EulerRmCoarseStep(benchmark::State& state) {
  GridHierarchy h(bench_hier(kEulerNcomp, 2));
  RichtmyerMeshkovConfig rm;
  rm.ly = rm.lz = 0.5;
  EulerOperator op = make_rm_operator(rm);
  GradientFlagger fl(kRho, 1.0);
  BergerOliger bo(h, op, fl, bench_int());
  bo.initialize();
  for (auto _ : state) benchmark::DoNotOptimize(bo.advance_step());
  state.counters["cells"] = static_cast<double>(h.total_cells());
}
BENCHMARK(BM_EulerRmCoarseStep);

void BM_RefluxCoarseStep(benchmark::State& state) {
  HierarchyConfig hc = bench_hier(1, 2);
  IntegratorConfig ic = bench_int();
  ic.bc = BoundaryKind::Periodic;
  ic.reflux = state.range(0) != 0;
  ic.regrid_interval = 100000;  // frozen hierarchy: measure stepping only
  GridHierarchy h(hc);
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(16, 8, 8), IntVec(32, 16, 16), 1));
  h.set_level_boxes(1, l1);
  AdvectionOperator op(1, 0.5, 0.25, 0.4, 0.25, 0.25, 0.12);
  for (int l = 0; l < h.num_levels(); ++l)
    for (Patch& p : h.level(l).patches())
      op.initialize(p, ic.dx0 / (l ? 2.0 : 1.0));
  GradientFlagger fl(0, 1e9);
  BergerOliger bo(h, op, fl, ic);
  for (auto _ : state) benchmark::DoNotOptimize(bo.advance_step());
  state.SetLabel(ic.reflux ? "reflux on" : "reflux off");
}
BENCHMARK(BM_RefluxCoarseStep)->Arg(0)->Arg(1);

void BM_Regrid(benchmark::State& state) {
  GridHierarchy h(bench_hier(1, 3));
  AdvectionOperator op(1, 0, 0, 0.3, 0.25, 0.25, 0.12);
  GradientFlagger fl(0, 0.08);
  BergerOliger bo(h, op, fl, bench_int());
  bo.initialize();
  for (auto _ : state) bo.regrid();
}
BENCHMARK(BM_Regrid);

}  // namespace

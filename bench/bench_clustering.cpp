/// \file bench_clustering.cpp
/// Microbenchmarks of Berger–Rigoutsos clustering on interface-band flag
/// clouds like the ones regridding produces.

#include <benchmark/benchmark.h>

#include <cmath>

#include "amr/cluster_br.hpp"

namespace {

using namespace ssamr;

/// A perturbed planar band of flags, n_y × n_z columns of ~2w cells.
std::vector<IntVec> band_flags(coord_t ny, coord_t nz, real_t amplitude) {
  std::vector<IntVec> flags;
  for (coord_t k = 0; k < nz; ++k)
    for (coord_t j = 0; j < ny; ++j) {
      const real_t xs =
          32.0 + amplitude * std::sin(2.0 * 3.14159 * j / ny) +
          0.5 * amplitude * std::cos(2.0 * 3.14159 * k / nz);
      for (coord_t i = static_cast<coord_t>(xs) - 2;
           i <= static_cast<coord_t>(xs) + 2; ++i)
        flags.emplace_back(i, j, k);
    }
  return flags;
}

void BM_ClusterPlanarBand(benchmark::State& state) {
  const auto flags =
      band_flags(state.range(0), state.range(0), /*amplitude=*/0.0);
  ClusterConfig cfg;
  for (auto _ : state) {
    auto boxes = cluster_flags(flags, 1, cfg);
    benchmark::DoNotOptimize(boxes.data());
  }
  state.counters["flags"] = static_cast<double>(flags.size());
}
BENCHMARK(BM_ClusterPlanarBand)->Arg(16)->Arg(32)->Arg(64);

void BM_ClusterWavyBand(benchmark::State& state) {
  const auto flags =
      band_flags(state.range(0), state.range(0), /*amplitude=*/6.0);
  ClusterConfig cfg;
  cfg.efficiency = 0.55;
  cfg.small_box_cells = 4096;
  for (auto _ : state) {
    auto boxes = cluster_flags(flags, 2, cfg);
    benchmark::DoNotOptimize(boxes.data());
  }
  state.counters["flags"] = static_cast<double>(flags.size());
}
BENCHMARK(BM_ClusterWavyBand)->Arg(16)->Arg(32)->Arg(64);

void BM_ClusterEfficiencySweep(benchmark::State& state) {
  const auto flags = band_flags(32, 32, 6.0);
  ClusterConfig cfg;
  cfg.efficiency = static_cast<real_t>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto boxes = cluster_flags(flags, 1, cfg);
    benchmark::DoNotOptimize(boxes.data());
  }
}
BENCHMARK(BM_ClusterEfficiencySweep)->Arg(30)->Arg(55)->Arg(70)->Arg(90);

}  // namespace

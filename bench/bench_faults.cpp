/// \file bench_faults.cpp
/// Microbenchmarks of the fault-tolerant sensing path: the fault-free
/// probe sweep (the hot path of every run — it must stay at its pre-fault
/// cost), the degraded sweep with retries and backoff, the forecaster's
/// bounded selector on long histories, and raw fault-plan queries.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "core/ssamr.hpp"

namespace {

using namespace ssamr;

Cluster bench_cluster(int n) {
  Cluster cluster = exp::paper_cluster(n);
  exp::apply_static_loads(cluster);
  return cluster;
}

FaultPlan faulty_plan(int nodes) {
  FaultProfile profile;
  profile.probe_timeout_rate = 0.1;
  profile.probe_drop_rate = 0.1;
  profile.stale_windows = 2;
  profile.crash_episodes = 1;
  return FaultPlan::scripted(nodes, /*horizon=*/Seconds{1000.0}, profile,
                             1724);
}

void BM_ProbeSweepNoFaults(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Cluster cluster = bench_cluster(n);
  ResourceMonitor monitor(cluster, MonitorConfig{});
  Seconds t{0};
  for (auto _ : state) {
    SweepResult sweep = monitor.probe_all(t);
    benchmark::DoNotOptimize(sweep.estimates.data());
    t += Seconds{10.0};
  }
}
BENCHMARK(BM_ProbeSweepNoFaults)->Arg(4)->Arg(32);

void BM_ProbeSweepFaulty(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Cluster cluster = bench_cluster(n);
  cluster.set_fault_plan(faulty_plan(n));
  ResourceMonitor monitor(cluster, MonitorConfig{});
  Seconds t{0};
  for (auto _ : state) {
    SweepResult sweep = monitor.probe_all(t);
    benchmark::DoNotOptimize(sweep.estimates.data());
    t += Seconds{10.0};
  }
}
BENCHMARK(BM_ProbeSweepFaulty)->Arg(4)->Arg(32);

void BM_ForecasterLongHistory(benchmark::State& state) {
  // The bounded selector's whole point: cost must not grow with history
  // length (it was O(members · n²) per forecast before).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<real_t> history(n);
  Rng rng(7);
  for (auto& v : history) v = 0.5 + 0.4 * rng.uniform();
  AdaptiveForecaster forecaster;
  for (auto _ : state)
    benchmark::DoNotOptimize(forecaster.forecast(history));
}
BENCHMARK(BM_ForecasterLongHistory)->Arg(64)->Arg(1024);

void BM_FaultPlanQuery(benchmark::State& state) {
  const FaultPlan plan = faulty_plan(32);
  std::uint64_t attempt = 0;
  Seconds t{0};
  for (auto _ : state) {
    const ProbeFault f =
        plan.probe_fault(static_cast<rank_t>(attempt % 32), t, attempt);
    benchmark::DoNotOptimize(f);
    ++attempt;
    t += Seconds{0.5};
  }
}
BENCHMARK(BM_FaultPlanQuery);

}  // namespace

/// \file bench_hdda.cpp
/// Microbenchmarks of the data-management substrate: extendible hashing
/// and the HDDA patch registry.

#include <benchmark/benchmark.h>

#include "hash/extendible_hash.hpp"
#include "hdda/hdda.hpp"
#include "util/rng.hpp"

namespace {

using namespace ssamr;

void BM_HashInsert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<ssamr::key_t> keys(n);
  for (auto& k : keys) k = rng();
  for (auto _ : state) {
    ExtendibleHash<std::int64_t> h;
    for (ssamr::key_t k : keys) h.insert(k, 1);
    benchmark::DoNotOptimize(h.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HashInsert)->Arg(1024)->Arg(16384);

void BM_HashLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<ssamr::key_t> keys(n);
  ExtendibleHash<std::int64_t> h;
  for (auto& k : keys) {
    k = rng();
    h.insert(k, 1);
  }
  for (auto _ : state)
    for (ssamr::key_t k : keys) benchmark::DoNotOptimize(h.find_ptr(k));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HashLookup)->Arg(1024)->Arg(16384);

std::vector<Box> patch_boxes(coord_t n) {
  std::vector<Box> boxes;
  for (coord_t i = 0; i < n; ++i)
    for (coord_t j = 0; j < n; ++j)
      boxes.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                       IntVec(8, 8, 8), 1));
  return boxes;
}

void BM_HddaRegisterLevel(benchmark::State& state) {
  const auto boxes = patch_boxes(state.range(0));
  for (auto _ : state) {
    Hdda h;
    for (std::size_t i = 0; i < boxes.size(); ++i)
      h.insert(boxes[i], static_cast<rank_t>(i % 8), 4096);
    benchmark::DoNotOptimize(h.size());
  }
  state.counters["patches"] = static_cast<double>(boxes.size());
}
BENCHMARK(BM_HddaRegisterLevel)->Arg(8)->Arg(16)->Arg(32);

void BM_HddaOrderedEnumeration(benchmark::State& state) {
  const auto boxes = patch_boxes(16);
  Hdda h;
  for (std::size_t i = 0; i < boxes.size(); ++i)
    h.insert(boxes[i], static_cast<rank_t>(i % 8), 4096);
  for (auto _ : state) {
    auto entries = h.ordered_entries();
    benchmark::DoNotOptimize(entries.data());
  }
}
BENCHMARK(BM_HddaOrderedEnumeration);

void BM_HddaOwnerMigration(benchmark::State& state) {
  const auto boxes = patch_boxes(16);
  Hdda h;
  for (std::size_t i = 0; i < boxes.size(); ++i)
    h.insert(boxes[i], 0, 4096);
  rank_t next = 1;
  for (auto _ : state) {
    std::int64_t moved = 0;
    for (const Box& b : boxes) moved += h.set_owner(b, next);
    benchmark::DoNotOptimize(moved);
    next = (next + 1) % 4;
  }
}
BENCHMARK(BM_HddaOwnerMigration);

}  // namespace

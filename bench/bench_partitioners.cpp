/// \file bench_partitioners.cpp
/// Microbenchmarks of the partitioners themselves: time to distribute the
/// paper-scale composite box list over P processors.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "core/ssamr.hpp"

namespace {

using namespace ssamr;

const BoxList& paper_boxes() {
  static const BoxList boxes = [] {
    SyntheticAmrTrace trace(exp::paper_trace_config());
    return trace.boxes_at_epoch(10);  // mid-run, ~100 boxes
  }();
  return boxes;
}

std::vector<real_t> caps_for(int nprocs) {
  std::vector<real_t> caps(static_cast<std::size_t>(nprocs));
  for (int k = 0; k < nprocs; ++k)
    caps[static_cast<std::size_t>(k)] =
        (1.0 + 0.5 * (k % 4)) /
        (static_cast<real_t>(nprocs) * (1.0 + 0.5 * 1.5));
  return caps;
}

void BM_HeterogeneousPartition(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto caps = caps_for(nprocs);
  const WorkModel work;
  HeterogeneousPartitioner p;
  for (auto _ : state) {
    auto r = p.partition(paper_boxes(), caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
  state.counters["boxes"] = static_cast<double>(paper_boxes().size());
}
BENCHMARK(BM_HeterogeneousPartition)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_GraceDefaultPartition(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto caps = caps_for(nprocs);
  const WorkModel work;
  GraceDefaultPartitioner p;
  for (auto _ : state) {
    auto r = p.partition(paper_boxes(), caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
}
BENCHMARK(BM_GraceDefaultPartition)->Arg(4)->Arg(32);

void BM_MultiAxisPartition(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto caps = caps_for(nprocs);
  const WorkModel work;
  MultiAxisPartitioner p;
  for (auto _ : state) {
    auto r = p.partition(paper_boxes(), caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
}
BENCHMARK(BM_MultiAxisPartition)->Arg(4)->Arg(32);

void BM_KnapsackPartition(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto caps = caps_for(nprocs);
  const WorkModel work;
  KnapsackPartitioner p;
  for (auto _ : state) {
    auto r = p.partition(paper_boxes(), caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
}
BENCHMARK(BM_KnapsackPartition)->Arg(4)->Arg(32);

void BM_SfcKnapsackPartition(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto caps = caps_for(nprocs);
  const WorkModel work;
  SfcKnapsackHybrid p;
  for (auto _ : state) {
    auto r = p.partition(paper_boxes(), caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
}
BENCHMARK(BM_SfcKnapsackPartition)->Arg(4)->Arg(32);

// The dual-constraint hot path: box pricing scans the particle field, so
// gate the particle-coupled partition cost separately.
void BM_KnapsackPartitionParticles(benchmark::State& state) {
  const auto caps = caps_for(8);
  const SyntheticAmrTrace trace([] {
    TraceConfig cfg = exp::paper_trace_config();
    cfg.particles.count = 4096;
    return cfg;
  }());
  const ParticleField field = trace.particles_at_epoch(10);
  WorkModel work;
  work.cost_per_particle = Work{50.0};
  work.particles = &field;
  KnapsackPartitioner p;
  for (auto _ : state) {
    auto r = p.partition(paper_boxes(), caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
  state.counters["particles"] = static_cast<double>(field.size());
}
BENCHMARK(BM_KnapsackPartitionParticles);

void BM_ImbalanceMetric(benchmark::State& state) {
  HeterogeneousPartitioner p;
  const auto caps = caps_for(8);
  const WorkModel work;
  const auto r = p.partition(paper_boxes(), caps, work);
  for (auto _ : state) {
    auto v = load_imbalance_pct(r);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_ImbalanceMetric);

void BM_CommVolumeMetric(benchmark::State& state) {
  HeterogeneousPartitioner p;
  const auto caps = caps_for(8);
  const WorkModel work;
  const auto r = p.partition(paper_boxes(), caps, work);
  for (auto _ : state)
    benchmark::DoNotOptimize(partition_comm_cells(r, 1));
}
BENCHMARK(BM_CommVolumeMetric);

}  // namespace

/// \file bench_scale.cpp
/// Microbenchmarks of the distributed-metadata scale path (DESIGN.md §11):
/// the prefix-sum partitioner, SFC-keyed ghost-flow discovery and the
/// indexed fluid network simulator at cluster sizes far beyond the paper's
/// P ≤ 32.  tools/bench_check.py gates these against
/// tools/bench_baseline.json, so large-P partition time and network
/// event throughput are regression-checked in CI.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "partition/distributed_sfc.hpp"
#include "partition/metrics.hpp"
#include "sim/event.hpp"
#include "sim/message_sim.hpp"

namespace {

using namespace ssamr;

/// The exp_scale workload shape: four 8³ level-0 boxes per rank on a
/// cube-ish lattice, every eighth box carrying a refined child.
const BoxList& scale_boxes(int nprocs) {
  static BoxList cache;
  static int cached_for = 0;
  if (cached_for != nprocs) {
    cache = BoxList{};
    const std::int64_t nboxes = 4 * static_cast<std::int64_t>(nprocs);
    coord_t side = 1;
    while (static_cast<std::int64_t>(side) * side * side < nboxes) ++side;
    std::int64_t placed = 0;
    for (coord_t k = 0; k < side && placed < nboxes; ++k)
      for (coord_t j = 0; j < side && placed < nboxes; ++j)
        for (coord_t i = 0; i < side && placed < nboxes; ++i) {
          cache.push_back(Box::from_extent(IntVec(i * 8, j * 8, k * 8),
                                           IntVec(8, 8, 8), 0));
          if (placed % 8 == 0)
            cache.push_back(Box::from_extent(
                IntVec(i * 16, j * 16, k * 16), IntVec(8, 8, 4), 1));
          ++placed;
        }
    cached_for = nprocs;
  }
  return cache;
}

std::vector<real_t> scale_caps(int nprocs) {
  std::vector<real_t> caps(static_cast<std::size_t>(nprocs));
  real_t sum = 0;
  for (int k = 0; k < nprocs; ++k) {
    caps[static_cast<std::size_t>(k)] = 1.0 + 0.25 * (k % 4);
    sum += caps[static_cast<std::size_t>(k)];
  }
  for (auto& c : caps) c /= sum;
  return caps;
}

void BM_DistributedSfcPartition(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const BoxList& boxes = scale_boxes(nprocs);
  const auto caps = scale_caps(nprocs);
  const WorkModel work;
  const DistributedSfcPartitioner p(SfcConfig{}, /*shards=*/64);
  for (auto _ : state) {
    auto r = p.partition(boxes, caps, work);
    benchmark::DoNotOptimize(r.assignments.data());
  }
  state.counters["boxes"] = static_cast<double>(boxes.size());
}
BENCHMARK(BM_DistributedSfcPartition)
    ->Arg(128)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_GhostFlowDiscovery(benchmark::State& state) {
  // pairwise_comm_bytes drives the SFC-keyed local-view build: the
  // per-partition neighbor-discovery cost of the event model.
  const int nprocs = static_cast<int>(state.range(0));
  const BoxList& boxes = scale_boxes(nprocs);
  const auto caps = scale_caps(nprocs);
  const DistributedSfcPartitioner p(SfcConfig{}, /*shards=*/64);
  const PartitionResult r = p.partition(boxes, caps, WorkModel{});
  for (auto _ : state) {
    auto flows = pairwise_comm_bytes(r, /*ghost=*/2, /*ncomp=*/5);
    benchmark::DoNotOptimize(flows.data());
  }
  state.counters["assignments"] = static_cast<double>(r.assignments.size());
}
BENCHMARK(BM_GhostFlowDiscovery)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

/// Ring-neighbor transfer waves: every rank sends to its four curve
/// neighbors in staggered waves — the traffic shape of a ghost exchange.
std::vector<sim::Transfer> ring_waves(int nprocs) {
  std::vector<sim::Transfer> ts;
  for (int w = 0; w < 4; ++w)
    for (int k = 0; k < nprocs; ++k)
      for (const int d : {1, 2}) {
        sim::Transfer t;
        t.src = static_cast<rank_t>(k);
        t.dst = static_cast<rank_t>((k + d) % nprocs);
        t.bytes = Bytes{40960 + 512 * (k % 7)};
        t.post_time = Seconds{0.01 * w + 0.0001 * (k % 13)};
        ts.push_back(t);
      }
  return ts;
}

void BM_IndexedFluidSim(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const std::vector<sim::Transfer> base = ring_waves(nprocs);
  const std::vector<MbitsPerSec> bw(static_cast<std::size_t>(nprocs),
                                    MbitsPerSec{100.0});
  const NetworkModel net;
  std::size_t events = 0;
  for (auto _ : state) {
    std::vector<sim::Transfer> ts = base;
    events = sim::simulate_transfers_indexed(ts, bw, net);
    benchmark::DoNotOptimize(ts.data());
  }
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_IndexedFluidSim)
    ->Arg(128)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond);

}  // namespace

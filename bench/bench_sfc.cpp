/// \file bench_sfc.cpp
/// Microbenchmarks of the space-filling-curve substrate.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "sfc/sfc_index.hpp"
#include "util/rng.hpp"

namespace {

using namespace ssamr;

std::vector<IntVec> random_points(std::size_t n, coord_t limit) {
  Rng rng(404);
  std::vector<IntVec> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    pts.emplace_back(rng.uniform_int(0, limit - 1),
                     rng.uniform_int(0, limit - 1),
                     rng.uniform_int(0, limit - 1));
  return pts;
}

void BM_MortonEncode(benchmark::State& state) {
  const auto pts = random_points(1024, 1 << 16);
  for (auto _ : state)
    for (const IntVec& p : pts) benchmark::DoNotOptimize(morton_encode(p));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonEncode);

void BM_MortonRoundtrip(benchmark::State& state) {
  const auto pts = random_points(1024, 1 << 16);
  for (auto _ : state)
    for (const IntVec& p : pts)
      benchmark::DoNotOptimize(morton_decode(morton_encode(p)));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MortonRoundtrip);

void BM_HilbertEncode(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const auto pts = random_points(1024, coord_t{1} << bits);
  for (auto _ : state)
    for (const IntVec& p : pts)
      benchmark::DoNotOptimize(hilbert_encode(p, bits));
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HilbertEncode)->Arg(8)->Arg(16)->Arg(21);

void BM_CompositeOrder(benchmark::State& state) {
  SyntheticAmrTrace trace(exp::paper_trace_config());
  const BoxList boxes = trace.boxes_at_epoch(10);
  SfcConfig cfg;
  cfg.curve =
      state.range(0) == 0 ? CurveKind::Morton : CurveKind::Hilbert;
  for (auto _ : state) {
    auto perm = sfc_order(boxes.boxes(), cfg);
    benchmark::DoNotOptimize(perm.data());
  }
  state.counters["boxes"] = static_cast<double>(boxes.size());
}
BENCHMARK(BM_CompositeOrder)->Arg(0)->Arg(1);

}  // namespace

/// \file exp_crossval.cpp
/// Cross-validation of the simulated cost models against real processes
/// (DESIGN.md §12, ROADMAP open item 2): the Table I scenario runs once
/// under the `proc` backend — P real forked rank processes exchanging
/// framed ghost/migration traffic over Unix-domain sockets — and once
/// under the discrete-event prediction, and the per-phase step times are
/// compared side by side.
///
/// Both runs share the identical workload, cluster, partitioner and
/// schedule: capacities are sensed once before the run and the trace
/// generator is deterministic, so the two models execute the *same*
/// sequence of partitions and migrations and the comparison isolates the
/// cost accounting itself.  The proc run reports measured wall-clock
/// normalized by ProcOptions::time_scale back into virtual seconds; its
/// numbers are real measurements and therefore machine-dependent — the CSV
/// this driver writes is NOT golden-pinned, and the deltas printed here
/// are expected to be honest, including where the model is wrong (see
/// EXPERIMENTS.md "Cross-validation").
///
/// The proc run executes FIRST: fork() only carries the calling thread
/// into the child, so the rank fleet must be spawned before anything warms
/// the process-wide thread pool.
///
/// Flags / environment:
///   --exec-model=bsp|event|proc  the measured side (default proc);
///                                the predicted side is always `event`
///   SSAMR_CROSSVAL_P        rank count, 1..64 (default 8)
///   SSAMR_EXP_ITERS         coarse iterations (default 200)
///   SSAMR_PROC_TIME_SCALE   wall seconds per virtual second (default 1e-3)
///   SSAMR_PROC_BYTES_SCALE  wire bytes per modeled byte (default 1.0)
///   SSAMR_PROC_TCP          1 = loopback TCP instead of AF_UNIX (0)

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/proc_model.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

namespace {

struct PhaseRow {
  const char* phase;
  Seconds predicted{0};
  Seconds measured{0};
};

std::string fmt_delta(Seconds predicted, Seconds measured) {
  // A near-zero prediction makes the relative delta meaningless (the
  // event model fully overlaps comm in some scenarios); print n/a
  // instead of an astronomic percentage.
  if (predicted.value() <= 1e-9 && measured.value() <= 1e-9) return "-";
  if (predicted.value() <= 1e-9) return "n/a";
  const double pct =
      (measured.value() - predicted.value()) / predicted.value() * 100.0;
  return fmt(pct, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Cross-validation: predicted (event) vs measured (proc)"
               " step time per phase ===\n\n";

  const int nprocs =
      exp::env_int("SSAMR_CROSSVAL_P", 8, 1, sim::kMaxProcRanks);
  const int iterations = exp::run_iterations(200);
  const double time_scale =
      exp::env_real("SSAMR_PROC_TIME_SCALE", 1e-3, 1e-6, 1.0);
  const double bytes_scale =
      exp::env_real("SSAMR_PROC_BYTES_SCALE", 1.0, 0.0, 1e3);
  const bool use_tcp = exp::env_int("SSAMR_PROC_TCP", 0, 0, 1) != 0;

  // The measured side defaults to proc; --exec-model / SSAMR_EXEC_MODEL
  // override it (running event-vs-event is a useful null check).
  ExecModelKind measured_kind = ExecModelKind::kProc;
  exp::set_exec_model(measured_kind);
  measured_kind = exp::select_exec_model(argc, argv);

  std::cout << "P = " << nprocs << ", " << iterations
            << " iterations, measured model = "
            << exec_model_name(measured_kind)
            << ", time_scale = " << time_scale
            << " wall s / virtual s, bytes_scale = " << bytes_scale
            << (use_tcp ? ", transport = loopback TCP" : ", transport = AF_UNIX")
            << "\n\n";

  const auto run_one = [&](ExecModelKind kind) {
    Cluster cluster = exp::paper_cluster(nprocs);
    exp::apply_static_loads(cluster);
    TraceWorkloadSource source(exp::paper_trace_config());
    HeterogeneousPartitioner het;
    RuntimeConfig cfg =
        exp::paper_runtime_config(iterations, /*sensing_interval=*/0);
    cfg.exec_model = kind;
    cfg.executor.proc.time_scale = time_scale;
    cfg.executor.proc.bytes_scale = bytes_scale;
    cfg.executor.proc.use_tcp = use_tcp;
    AdaptiveRuntime runtime(cluster, source, het, cfg);
    return runtime.run();
  };

  // Measured run first: the proc backend forks its rank fleet, and fork()
  // must happen before the event run (or anything else) starts pool
  // threads in this process.
  const RunTrace measured = run_one(measured_kind);
  const RunTrace predicted = run_one(ExecModelKind::kEvent);

  const std::vector<PhaseRow> rows = {
      {"compute", predicted.compute_time, measured.compute_time},
      {"comm", predicted.comm_time, measured.comm_time},
      {"sense", predicted.sense_time, measured.sense_time},
      {"regrid", predicted.regrid_time, measured.regrid_time},
      {"migrate", predicted.migrate_time, measured.migrate_time},
      {"total", predicted.total_time, measured.total_time},
  };

  Table table({"phase", "predicted event (s)",
               std::string("measured ") + exec_model_name(measured_kind) +
                   " (s)",
               "delta"});
  CsvWriter csv(exp::results_path("exp_crossval.csv"),
                {"phase", "predicted_s", "measured_s"});
  for (const PhaseRow& r : rows) {
    table.add_row({r.phase, fmt(r.predicted.value(), 3),
                   fmt(r.measured.value(), 3),
                   fmt_delta(r.predicted, r.measured)});
    csv.add_row({r.phase, fmt(r.predicted.value(), 6),
                 fmt(r.measured.value(), 6)});
  }
  std::cout << table.str() << '\n';

  std::cout << "sense and regrid are charged identically in both models\n"
               "(coordinator-side work), so their deltas isolate nothing;\n"
               "compute, comm and migrate are the phases the rank processes\n"
               "actually execute.  Measured numbers are wall-clock divided\n"
               "by time_scale: machine-dependent, never golden-pinned.\n\n";
  std::cout << "iterations: predicted = " << predicted.iterations
            << ", measured = " << measured.iterations << '\n';
  std::cout << "raw series written to "
            << exp::results_path("exp_crossval.csv") << " (not a golden)\n";
  return 0;
}

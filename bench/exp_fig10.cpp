/// \file exp_fig10.cpp
/// Reproduces **Figure 10**: percentage load imbalance per regrid, system
/// sensitive vs default (non system sensitive) partitioning.
///
/// Imbalance is the paper's Eq. 2, I_k = |W_k − L_k| / L_k · 100 %, with
/// L_k = C_k · L the capacity-proportional target.  The default partitioner
/// ignores the capacities (it splits equally), so measured against the
/// heterogeneous targets it shows large imbalance; the system-sensitive
/// partitioner's residual imbalance comes only from the minimum-box-size
/// and aspect-ratio constraints and stays below ~40 % (paper §6.2.2).

#include <algorithm>
#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

int main(int argc, char** argv) {
  std::cout << "=== Figure 10: % load imbalance per regrid ===\n\n";

  const ExecModelKind model = exp::select_exec_model(argc, argv);
  std::cout << "execution model: " << exec_model_name(model)
            << " (--exec-model=bsp|event|proc, or SSAMR_EXEC_MODEL)\n\n";

  const auto caps = exp::reference_capacities4();
  SyntheticAmrTrace trace(exp::paper_trace_config());
  const WorkModel work;
  CsvWriter csv(exp::results_path("fig10.csv"),
                {"min_box_size", "regrid", "default_pct", "system_pct"});

  // The residual imbalance of the system-sensitive scheme comes from the
  // minimum-box-size constraint (paper: "The amount of imbalance depends
  // on the grid structure.  We have found this to be less than 40%").
  // GrACE's patches were coarse; we report two granularities — our
  // fine-grained clustering (min box 4) and a GrACE-like coarse floor
  // (min box 16).
  for (coord_t min_size : {coord_t{4}, coord_t{16}}) {
    PartitionConstraints constraints;
    constraints.min_box_size = min_size;
    GraceDefaultPartitioner def(SfcConfig{}, constraints);
    HeterogeneousPartitioner het(constraints);

    std::cout << "minimum box size " << min_size << ":\n";
    Table t({"regrid", "non system sensitive", "system sensitive"});
    real_t worst_het = 0, sum_def = 0, sum_het = 0;
    const int regrids = 6;  // the paper plots regrids 1..6
    for (int regrid = 1; regrid <= regrids; ++regrid) {
      const BoxList boxes = trace.boxes_at_epoch(regrid - 1);
      const real_t total = total_work(boxes, work);

      PartitionResult het_r = het.partition(boxes, caps, work);
      PartitionResult def_r = def.partition(boxes, caps, work);
      // Both schemes are judged against the capacity-proportional targets.
      for (std::size_t k = 0; k < caps.size(); ++k)
        def_r.target_work[k] = caps[k] * total;

      const real_t def_imb = max_load_imbalance_pct(def_r);
      const real_t het_imb = max_load_imbalance_pct(het_r);
      worst_het = std::max(worst_het, het_imb);
      sum_def += def_imb;
      sum_het += het_imb;
      t.add_row({std::to_string(regrid), fmt(def_imb, 1) + "%",
                 fmt(het_imb, 1) + "%"});
      csv.add_row({std::to_string(min_size), std::to_string(regrid),
                   fmt(def_imb, 2), fmt(het_imb, 2)});
    }
    std::cout << t.str();
    std::cout << "  system-sensitive worst imbalance: " << fmt(worst_het, 1)
              << "% (paper: stays below ~40%)\n";
    std::cout << "  imbalance reduction vs default:   "
              << fmt_pct(1.0 - sum_het / sum_def)
              << " (paper: \"up to 45% lower\")\n\n";
  }
  std::cout << "raw series written to " << exp::results_path("fig10.csv")
            << "\n";
  return 0;
}

/// \file exp_fig11.cpp
/// Reproduces **Figure 11**: dynamic load allocation using the system-
/// sensitive partitioner when NWS is queried once before the start of the
/// application and two times during the run.
///
/// The figure plots the per-processor work assignment against the regrid
/// number (~30 regrids), annotated with the relative capacities computed
/// at each sampling; as the load (and hence the capacities) changes, the
/// partitioner redistributes accordingly.

#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

int main(int argc, char** argv) {
  std::cout << "=== Figure 11: dynamic load allocation, NWS queried once "
               "before the run + twice during it ===\n\n";

  const ExecModelKind model = exp::select_exec_model(argc, argv);
  std::cout << "execution model: " << exec_model_name(model)
            << " (--exec-model=bsp|event|proc, or SSAMR_EXEC_MODEL)\n\n";

  // ~30 regrids at regrid_interval 5 => 150 iterations; sensing every 50
  // iterations yields exactly two mid-run samplings.
  const int iterations = exp::run_iterations(150);
  const int sensing = 50;
  const real_t tau = exp::calibrate_timescale(4, iterations, sensing);

  Cluster cluster = exp::paper_cluster(4);
  exp::apply_dynamic_loads(cluster, tau);
  TraceWorkloadSource source(exp::paper_trace_config());
  HeterogeneousPartitioner het;
  AdaptiveRuntime runtime(cluster, source, het,
                          exp::paper_runtime_config(iterations, sensing));
  const RunTrace trace = runtime.run();

  std::cout << "capacity samplings (the figure's percentage labels):\n";
  Table st({"iteration", "C0", "C1", "C2", "C3"});
  for (const SenseRecord& s : trace.senses)
    st.add_row({std::to_string(s.iteration), fmt_pct(s.capacities[0], 0),
                fmt_pct(s.capacities[1], 0), fmt_pct(s.capacities[2], 0),
                fmt_pct(s.capacities[3], 0)});
  std::cout << st.str() << '\n';

  std::cout << "work-load assignment per regrid:\n";
  Table t({"regrid", "proc 0", "proc 1", "proc 2", "proc 3"});
  CsvWriter csv(exp::results_path("fig11.csv"),
                {"regrid", "proc", "work", "capacity"});
  for (const RegridRecord& r : trace.regrids) {
    t.add_row({std::to_string(r.regrid_index), fmt(r.assigned_work[0], 0),
               fmt(r.assigned_work[1], 0), fmt(r.assigned_work[2], 0),
               fmt(r.assigned_work[3], 0)});
    for (int k = 0; k < 4; ++k)
      csv.add_row(
          {std::to_string(r.regrid_index), std::to_string(k),
           fmt(r.assigned_work[static_cast<std::size_t>(k)], 1),
           fmt(r.capacities[static_cast<std::size_t>(k)], 4)});
  }
  std::cout << t.str() << '\n';
  std::cout
      << "Expected shape: assignments re-proportion after each sampling as "
         "the capacities change;\nbetween samplings the proportions hold "
         "while the total work drifts with the adapting hierarchy.\n"
         "raw series written to results/fig11.csv\n";
  return 0;
}

/// \file exp_fig7_table1.cpp
/// Reproduces **Figure 7** (total application execution time, system
/// sensitive vs default partitioning, P = 4, 8, 16, 32) and **Table I**
/// (percentage improvement of the system-sensitive partitioner).
///
/// Setup (paper §6.2.1): the RM-scale SAMR workload (128×32×32 base, 3
/// levels of factor-2 refinement, regrid every 5 iterations) runs on a
/// statically loaded cluster; relative capacities are computed once before
/// the start of the simulation.  Absolute seconds are virtual seconds of
/// the simulated cluster (DESIGN.md §2); the shape — who wins and by what
/// factor — is the reproduction target.

#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ssamr;

int main(int argc, char** argv) {
  std::cout << "=== Figure 7 + Table I: execution time, system-sensitive "
               "vs default partitioner ===\n\n";

  const ExecModelKind model = exp::select_exec_model(argc, argv);
  std::cout << "execution model: " << exec_model_name(model)
            << " (--exec-model=bsp|event|proc, or SSAMR_EXEC_MODEL)\n\n";

  const int iterations = exp::run_iterations(200);
  const double paper_improvement[] = {7.0, 6.0, 18.0, 18.0};

  Table fig7({"procs", "ACEHeterogeneous (s)", "ACEComposite (s)"});
  Table table1({"Number of Processors", "Percentage Improvement",
                "paper (Table I)"});
  CsvWriter csv(exp::results_path("fig7_table1.csv"),
                {"procs", "het_s", "def_s", "improvement_pct"});

  // The four cluster sizes are independent deterministic trials: run them
  // in parallel, then emit tables/CSV rows serially in the fixed order.
  const int procs[] = {4, 8, 16, 32};
  std::vector<exp::Comparison> cmps(4);
  ThreadPool::global().parallel_for(4, [&](std::size_t i) {
    cmps[i] = exp::compare_partitioners(procs[i], iterations,
                                        /*sensing_interval=*/0,
                                        /*dynamic_loads=*/false);
  });
  for (int i = 0; i < 4; ++i) {
    const int p = procs[i];
    const exp::Comparison& cmp = cmps[static_cast<std::size_t>(i)];
    fig7.add_row({std::to_string(p),
                  fmt(cmp.system_sensitive.total_time.value(), 1),
                  fmt(cmp.grace_default.total_time.value(), 1)});
    table1.add_row({std::to_string(p), fmt_pct(cmp.improvement()),
                    fmt(paper_improvement[i], 0) + "%"});
    csv.add_row({std::to_string(p),
                 fmt(cmp.system_sensitive.total_time.value(), 3),
                 fmt(cmp.grace_default.total_time.value(), 3),
                 fmt(cmp.improvement() * 100, 2)});
  }

  std::cout << "Figure 7 series (" << iterations
            << " iterations, capacities sensed once before the run):\n"
            << fig7.str() << '\n';
  std::cout << "Table I (percentage improvement of the system-sensitive "
               "partitioner):\n"
            << table1.str() << '\n';
  std::cout << "raw series written to " << exp::results_path("fig7_table1.csv")
            << "\n";

  // Per-rank timeline export of the P = 4 system-sensitive run (set
  // SSAMR_TRACE_JSON=/path/to/trace.json; open in ui.perfetto.dev).
  const std::string trace_path =
      exp::maybe_export_trace(cmps[0].system_sensitive);
  if (!trace_path.empty())
    std::cout << "Chrome trace (P=4, system-sensitive) written to "
              << trace_path << "\n";
  return 0;
}

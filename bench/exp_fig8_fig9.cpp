/// \file exp_fig8_fig9.cpp
/// Reproduces **Figure 8** (work-load assignment per regrid, GrACE default
/// "ACEComposite" scheme) and **Figure 9** (same, ACEHeterogeneous).
///
/// Setup (paper §6.2.2): four processors with relative capacities fixed at
/// approximately 16 %, 19 %, 31 %, 34 %; the application regrids every 5
/// iterations; eight regrids are plotted.  The default partitioner assigns
/// ~equal work to every processor regardless of capacity; the system-
/// sensitive partitioner assigns work proportional to capacity.

#include <iostream>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace ssamr;

namespace {

void run_scheme(const Partitioner& partitioner, const char* figure,
                CsvWriter& csv) {
  const auto caps = exp::reference_capacities4();
  SyntheticAmrTrace trace(exp::paper_trace_config());
  const WorkModel work;

  std::cout << figure << " — " << partitioner.name()
            << " work-load assignment (capacities 16% 19% 31% 34%):\n";
  Table t({"regrid", "proc 0", "proc 1", "proc 2", "proc 3", "total work"});
  for (int regrid = 1; regrid <= 8; ++regrid) {
    const BoxList boxes = trace.boxes_at_epoch(regrid - 1);
    const PartitionResult r = partitioner.partition(boxes, caps, work);
    t.add_row({std::to_string(regrid), fmt(r.assigned_work[0], 0),
               fmt(r.assigned_work[1], 0), fmt(r.assigned_work[2], 0),
               fmt(r.assigned_work[3], 0),
               fmt(total_work(boxes, work), 0)});
    for (int k = 0; k < 4; ++k)
      csv.add_row({partitioner.name(), std::to_string(regrid),
                   std::to_string(k),
                   fmt(r.assigned_work[static_cast<std::size_t>(k)], 1)});
  }
  std::cout << t.str() << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Figures 8 & 9: per-processor work-load assignment vs "
               "regrid number ===\n\n";
  CsvWriter csv(exp::results_path("fig8_fig9.csv"),
                {"scheme", "regrid", "proc", "work"});

  const ExecModelKind model = exp::select_exec_model(argc, argv);
  std::cout << "execution model: " << exec_model_name(model)
            << " (--exec-model=bsp|event|proc, or SSAMR_EXEC_MODEL)\n\n";

  GraceDefaultPartitioner def;
  HeterogeneousPartitioner het;
  run_scheme(def, "Figure 8", csv);
  run_scheme(het, "Figure 9", csv);

  std::cout << "Expected shape: the default scheme's four curves coincide "
               "(equal work irrespective of capacity);\n"
               "the system-sensitive curves are ordered by capacity, "
               "proc 3 > proc 2 > proc 1 > proc 0.\n"
               "raw series written to results/fig8_fig9.csv\n";
  return 0;
}

/// \file exp_partitioner_matrix.cpp
/// Partitioner zoo × workload family × execution model — the Table-I-style
/// win/loss matrix (ROADMAP open item 4).
///
/// The paper evaluates one partitioner pair against one RM3D-shaped kernel;
/// this driver crosses the entire registered zoo (partition/zoo.hpp)
/// against four workload families and both execution models:
///
///   rm3d      the paper's statically loaded RM3D trace (Fig. 7 conditions)
///   particle  the same trace with a tracer-particle cloud riding the
///             interface: the dual-constraint cost (cells + particles per
///             box) makes per-box work lumpy and capacity matching harder
///   comm      a communication-heavy variant (wide ghost shells, more
///             components, little comm/compute overlap): locality matters
///             more than balance
///   fault     dynamic loads with probe fault injection and periodic
///             sensing (ablation_faults conditions at one fault rate)
///
/// Every cell's partition additionally passes the full partition-audit
/// invariants (coverage, disjointness, W_k conservation, split
/// constraints) at a representative epoch; any audit error fails the run.
/// The per-cell rows land in results/partitioner_matrix.csv, which is
/// golden-pinned (tests/golden/partitioner_matrix.csv), so the whole
/// cross-product acts as a regression net for every future PR.
///
/// Flags / environment:
///   --exec-model=bsp|event|proc  run only that model (default: both)
///   SSAMR_EXP_ITERS         iterations per run (default 100)
///   SSAMR_FAULT_RATE        probe failure rate of the fault family (0.2)
///   SSAMR_FAULT_SEED / SSAMR_FAULT_STALE_WINDOWS / SSAMR_FAULT_CRASHES /
///   SSAMR_FAULT_TIMEOUT_FRACTION   as in ablation_faults

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "partition/partition_audit.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ssamr;

namespace {

const std::vector<std::string> kWorkloads = {"rm3d", "particle", "comm",
                                             "fault"};
constexpr int kProcs = 4;
constexpr std::int64_t kParticleCount = 4096;
constexpr real_t kParticleCost = 50.0;

/// Fault plan of the `fault` family (ablation_faults conventions).
FaultPlan fault_plan(real_t horizon) {
  const real_t rate = exp::env_real("SSAMR_FAULT_RATE", 0.2, 0.0, 1.0);
  if (rate <= 0) return FaultPlan{};
  const real_t timeout_frac =
      exp::env_real("SSAMR_FAULT_TIMEOUT_FRACTION", 0.5, 0.0, 1.0);
  FaultProfile profile;
  profile.probe_timeout_rate = rate * timeout_frac;
  profile.probe_drop_rate = rate * (1.0 - timeout_frac);
  profile.stale_windows = exp::env_int("SSAMR_FAULT_STALE_WINDOWS", 2, 0);
  profile.crash_episodes = exp::env_int("SSAMR_FAULT_CRASHES", 1, 0);
  return FaultPlan::scripted(
      kProcs, Seconds{horizon}, profile,
      static_cast<std::uint64_t>(exp::env_int("SSAMR_FAULT_SEED", 1724, 0)));
}

/// Trace configuration of one workload family.
TraceConfig trace_config_for(const std::string& workload) {
  TraceConfig tcfg = exp::paper_trace_config();
  if (workload == "particle") tcfg.particles.count = kParticleCount;
  return tcfg;
}

/// Runtime configuration of one workload family (exec model set by caller).
RuntimeConfig runtime_config_for(const std::string& workload,
                                 int iterations) {
  const int sensing = workload == "fault" ? 5 : 0;
  RuntimeConfig cfg = exp::paper_runtime_config(iterations, sensing);
  if (workload == "particle") {
    cfg.work.cost_per_particle = Work{kParticleCost};
  } else if (workload == "comm") {
    cfg.executor.ghost = 4;
    cfg.executor.ncomp = 10;
    cfg.executor.comm_overlap = Fraction{0.2};
  }
  return cfg;
}

/// One cell of the matrix: a full adaptive run of `partitioner` on the
/// workload family under the given execution model.
RunTrace run_cell(const std::string& workload, const Partitioner& p,
                  ExecModelKind kind, int iterations, real_t tau) {
  Cluster cluster = exp::paper_cluster(kProcs);
  if (workload == "fault") {
    exp::apply_dynamic_loads(cluster, tau);
    const FaultPlan plan = fault_plan(tau);
    if (!plan.benign()) cluster.set_fault_plan(plan);
  } else {
    exp::apply_static_loads(cluster);
  }
  TraceWorkloadSource source(trace_config_for(workload));
  RuntimeConfig cfg = runtime_config_for(workload, iterations);
  cfg.exec_model = kind;
  AdaptiveRuntime runtime(cluster, source, p, cfg);
  return runtime.run();
}

/// Explicit audit sweep: every zoo member's partition of every workload
/// family at a representative epoch must satisfy the full partition
/// invariants.  Returns the number of audit errors (0 = all clean).
int audit_matrix(int epoch) {
  int audit_errors = 0;
  for (const std::string& workload : kWorkloads) {
    const TraceConfig tcfg = trace_config_for(workload);
    const SyntheticAmrTrace trace(tcfg);
    const BoxList boxes = trace.boxes_at_epoch(epoch);
    WorkModel wm = runtime_config_for(workload, /*iterations=*/1).work;
    ParticleField field;
    if (workload == "particle") {
      field = trace.particles_at_epoch(epoch);
      wm.particles = &field;
    }
    const std::vector<real_t> caps = exp::reference_capacities4();
    for (const ZooEntry& entry : partitioner_zoo()) {
      const auto p = entry.make();
      const PartitionResult result = p->partition(boxes, caps, wm);
      const audit::AuditReport report = audit::validate_partition(
          boxes, result, caps, wm, p->constraints());
      if (!report.ok()) {
        std::cerr << "AUDIT FAILURE (" << workload << ", " << entry.id
                  << "):\n"
                  << report.summary() << '\n';
        ++audit_errors;
      }
    }
  }
  return audit_errors;
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Partitioner matrix: zoo x {rm3d, particle, comm, fault}"
               " x {bsp, event} ===\n\n";

  // Run both execution models unless one was requested explicitly.
  bool explicit_model = std::getenv("SSAMR_EXEC_MODEL") != nullptr;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--exec-model", 0) == 0)
      explicit_model = true;
  std::vector<ExecModelKind> kinds;
  if (explicit_model)
    kinds = {exp::select_exec_model(argc, argv)};
  else
    kinds = {ExecModelKind::kBsp, ExecModelKind::kEvent};

  const int iterations = exp::run_iterations(100);
  const auto& zoo = partitioner_zoo();

  // The fault family needs a calibrated dynamic-load timescale per model
  // (calibration runs under the globally selected model, so do it before
  // the parallel phase).
  std::map<ExecModelKind, real_t> tau;
  for (ExecModelKind kind : kinds) {
    exp::set_exec_model(kind);
    tau[kind] = exp::calibrate_timescale(kProcs, iterations, 5);
  }

  // Every partition the matrix produces must pass the audit invariants.
  const int audit_errors = audit_matrix(/*epoch=*/10);

  // All cells are independent deterministic runs: fan out on the pool.
  struct Cell {
    std::size_t workload, kind, scheme;
  };
  std::vector<Cell> cells;
  for (std::size_t w = 0; w < kWorkloads.size(); ++w)
    for (std::size_t k = 0; k < kinds.size(); ++k)
      for (std::size_t s = 0; s < zoo.size(); ++s) cells.push_back({w, k, s});
  std::vector<RunTrace> traces(cells.size());
  ThreadPool::global().parallel_for(cells.size(), [&](std::size_t i) {
    const Cell& c = cells[i];
    const auto p = zoo[c.scheme].make();
    traces[i] = run_cell(kWorkloads[c.workload], *p, kinds[c.kind],
                         iterations, tau[kinds[c.kind]]);
  });

  // Winner per (workload, exec model) group: smallest total time.
  std::vector<std::size_t> winner(kWorkloads.size() * kinds.size());
  for (std::size_t g = 0; g < winner.size(); ++g) {
    std::size_t best = 0;
    Seconds best_t{0};
    bool first = true;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].workload * kinds.size() + cells[i].kind != g) continue;
      if (first || traces[i].total_time < best_t) {
        first = false;
        best = i;
        best_t = traces[i].total_time;
      }
    }
    winner[g] = best;
  }

  CsvWriter csv(exp::results_path("partitioner_matrix.csv"),
                {"workload", "exec_model", "partitioner", "total_s",
                 "compute_s", "comm_s", "migrate_s", "mean_max_imb_pct",
                 "splits", "win"});
  Table table({"workload", "model", "partitioner", "total (s)", "imb %",
               "splits", "win"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const RunTrace& t = traces[i];
    const std::string model =
        kinds[c.kind] == ExecModelKind::kBsp ? "bsp" : "event";
    int splits = 0;
    for (const RegridRecord& r : t.regrids) splits += r.splits;
    const std::size_t g = c.workload * kinds.size() + c.kind;
    const bool win = winner[g] == i;
    csv.add_row({kWorkloads[c.workload], model, zoo[c.scheme].id,
                 fmt(t.total_time.value(), 2), fmt(t.compute_time.value(), 2),
                 fmt(t.comm_time.value(), 2), fmt(t.migrate_time.value(), 2),
                 fmt(t.mean_max_imbalance_pct().value(), 2),
                 std::to_string(splits), win ? "1" : "0"});
    table.add_row({kWorkloads[c.workload], model, zoo[c.scheme].id,
                   fmt(t.total_time.value(), 1),
                   fmt(t.mean_max_imbalance_pct().value(), 1),
                   std::to_string(splits), win ? "*" : ""});
  }
  std::cout << table.str() << '\n';

  std::cout << "Win counts (lowest total time per workload x model):\n";
  for (std::size_t s = 0; s < zoo.size(); ++s) {
    int wins = 0;
    for (std::size_t g = 0; g < winner.size(); ++g)
      if (cells[winner[g]].scheme == s) ++wins;
    std::cout << "  " << zoo[s].id << ": " << wins << '\n';
  }
  std::cout << "\naudit sweep: "
            << (audit_errors == 0 ? "all partitions clean"
                                  : "ERRORS — see above")
            << "\nraw matrix written to results/partitioner_matrix.csv\n";
  return audit_errors == 0 ? 0 : 1;
}

/// \file exp_scale.cpp
/// Distributed-metadata scale sweep: P = 128 / 1024 / 4096 / 16384 under
/// the event execution model (DESIGN.md §11, ROADMAP open item 1).
///
/// Each cluster size runs the same per-rank workload shape — four 8³
/// level-0 boxes per rank on a cube-ish lattice, every eighth box carrying
/// a refined child — so total box count grows linearly with P while the
/// local problem stays fixed.  The sweep drives the EventExecutor directly
/// (partition → iterate → periodic regrid/repartition with a rotated
/// capacity pattern → migrate), exercising every scale-path layer at once:
/// the distributed prefix-sum partitioner, SFC-keyed neighbor discovery
/// behind the comm metrics, and the indexed fluid network simulator.
///
/// The CSV (results/exp_scale.csv, golden-pinned) holds only deterministic
/// quantities: box/assignment/flow/event counts, local-view halo sizes,
/// key-index query statistics and the final virtual time.  Wall-clock
/// figures — partition seconds and network events processed per second —
/// go to stdout only, and the microbench twin (bench_scale.cpp) gates them
/// in CI via tools/bench_check.py.
///
/// Flags / environment:
///   SSAMR_EXP_ITERS     iterations per cluster size (default 40)
///   SSAMR_SCALE_MAX_P   cap on the sweep (default 16384; lower it for a
///                       quick local run, e.g. 1024)
///   SSAMR_SCALE_CHECK   when 1, enforce the scaling acceptance bounds —
///                       events/sec at the largest P within 2× of the
///                       P = 128 rate, and partition time growing
///                       sublinearly in total box count — exiting non-zero
///                       on violation.
///   SSAMR_SCALE_FLOOR   events/sec ratio floor for the check, ×100
///                       (default 50, i.e. within 2×).  The achievable
///                       ratio is machine-dependent — a single-process
///                       sweep holds all P ranks' simulator state in one
///                       address space, so the large-P rate is bounded by
///                       the last-level cache, not the algorithm (see
///                       EXPERIMENTS.md) — so CI boxes may need a lower
///                       floor to make the check a useful regression trap.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "capacity/capacity.hpp"
#include "core/experiment.hpp"
#include "hdda/local_view.hpp"
#include "partition/distributed_sfc.hpp"
#include "partition/metrics.hpp"
#include "sfc/key_index.hpp"
#include "sim/event_executor.hpp"
#include "util/csv.hpp"
#include "util/wallclock.hpp"

using namespace ssamr;

namespace {

/// Four 8³ level-0 boxes per rank on a cube-ish lattice; every eighth box
/// carries a half-depth refined child.  Linear in P, fixed per-rank shape.
BoxList scale_workload(int nprocs) {
  const std::int64_t nboxes = 4 * static_cast<std::int64_t>(nprocs);
  coord_t side = 1;
  while (static_cast<std::int64_t>(side) * side * side < nboxes) ++side;
  BoxList boxes;
  std::int64_t placed = 0;
  for (coord_t k = 0; k < side && placed < nboxes; ++k)
    for (coord_t j = 0; j < side && placed < nboxes; ++j)
      for (coord_t i = 0; i < side && placed < nboxes; ++i) {
        boxes.push_back(Box::from_extent(IntVec(i * 8, j * 8, k * 8),
                                         IntVec(8, 8, 8), 0));
        if (placed % 8 == 0)
          boxes.push_back(Box::from_extent(
              IntVec(i * 16, j * 16, k * 16), IntVec(8, 8, 4), 1));
        ++placed;
      }
  return boxes;
}

/// Relative capacities of the cluster's t = 0 state (Eq. 1, equal weights).
std::vector<real_t> capacities_at_start(const Cluster& cluster) {
  std::vector<ResourceEstimate> est;
  est.reserve(static_cast<std::size_t>(cluster.size()));
  for (rank_t k = 0; k < cluster.size(); ++k) {
    const NodeState s = cluster.state_at(k, Seconds{0});
    est.push_back(
        ResourceEstimate{s.cpu_available, s.memory_free_mb, s.bandwidth_mbps});
  }
  return CapacityCalculator().relative_capacities(est);
}

struct ScaleRow {
  int nprocs = 0;
  std::int64_t boxes = 0;
  std::int64_t assignments = 0;
  std::int64_t splits = 0;
  std::int64_t ghost_flows = 0;
  std::int64_t events = 0;
  std::int64_t halo_links = 0;
  std::int64_t halo_max = 0;
  std::int64_t index_candidates = 0;
  std::int64_t index_hits = 0;
  Seconds virtual_time{0};
  // Wall-clock (stdout + bench gate only; never in the CSV).
  double partition_seconds = 0;
  double advance_seconds = 0;
};

ScaleRow run_scale(int nprocs, int iterations) {
  ScaleRow row;
  row.nprocs = nprocs;

  Cluster cluster = Cluster::heterogeneous(nprocs, {1.0, 0.75, 1.5, 1.25});
  const ExecutorConfig ecfg;
  sim::EventExecutor exec(cluster, ecfg);

  const BoxList boxes = scale_workload(nprocs);
  row.boxes = static_cast<std::int64_t>(boxes.size());
  std::vector<real_t> caps = capacities_at_start(cluster);
  const DistributedSfcPartitioner partitioner(SfcConfig{}, /*shards=*/64);
  const WorkModel work;

  int partitions = 0;
  const auto partition_now = [&](const std::vector<real_t>& c) {
    const double w0 = wallclock_seconds();
    PartitionResult r = partitioner.partition(boxes, c, work);
    row.partition_seconds += wallclock_seconds() - w0;
    ++partitions;
    return r;
  };

  PartitionResult current = partition_now(caps);
  row.assignments = static_cast<std::int64_t>(current.assignments.size());
  row.splits = current.splits;
  row.ghost_flows = static_cast<std::int64_t>(
      pairwise_comm_bytes(current, ecfg.ghost, ecfg.ncomp).size());

  Seconds t{0};
  // One untimed warm-up advance: the executor fills its per-topology
  // caches (ghost-flow plans, simulator workspace) on first contact, a
  // one-time cost that would otherwise be billed to the first timed
  // iteration — at P = 16384 it is most of that iteration.  Events are
  // counted over the timed window only, so the throughput figure divides
  // matching numerators and denominators.
  t += exec.advance(current, t, /*iter=*/0).elapsed;
  const auto warm_events = static_cast<std::int64_t>(exec.events_processed());
  const double adv0 = wallclock_seconds();
  for (int iter = 0; iter < iterations; ++iter) {
    if (iter > 0 && iter % 10 == 0) {
      t += exec.regrid(t, boxes.size(), iter);
      // Rotate the capacity pattern one rank: quantile cuts shift, boxes
      // change owners, and the migration path runs at full scale.
      std::rotate(caps.begin(), caps.begin() + 1, caps.end());
      PartitionResult next = partition_now(caps);
      t += exec.migrate(current, next, t);
      current = std::move(next);
    }
    const StepCost cost = exec.advance(current, t, iter);
    t += cost.elapsed;
  }
  row.advance_seconds = wallclock_seconds() - adv0;
  row.partition_seconds /= partitions;
  row.events =
      static_cast<std::int64_t>(exec.events_processed()) - warm_events;
  row.virtual_time = t;

  // Local-view halo statistics of the final layout, via the shared key
  // index (its query counters land in the CSV as the determinism pin on
  // the near-linear discovery cost).
  std::vector<Box> owned_boxes;
  std::vector<rank_t> owners;
  owned_boxes.reserve(current.assignments.size());
  for (const auto& a : current.assignments) {
    owned_boxes.push_back(a.box);
    owners.push_back(a.owner);
  }
  const SfcKeyIndex index(owned_boxes);
  const auto views =
      build_local_views(owned_boxes, owners, nprocs, ecfg.ghost, index);
  for (const LocalBoxView& v : views) {
    row.halo_links += static_cast<std::int64_t>(v.links.size());
    row.halo_max =
        std::max(row.halo_max, static_cast<std::int64_t>(v.halo.size()));
  }
  row.index_candidates = index.stats().candidates;
  row.index_hits = index.stats().hits;
  return row;
}

std::string fmt_seconds(Seconds s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << s.value();
  return os.str();
}

}  // namespace

int main() {
  std::cout << "=== exp_scale: distributed-metadata sweep under the event"
               " model ===\n\n";
  const int iterations = exp::run_iterations(40);
  // Validated: a zero or negative cap (e.g. a stray SSAMR_SCALE_MAX_P=-4)
  // must not underflow scale_workload's 4·P box count — it falls back.
  const int max_p = exp::env_int("SSAMR_SCALE_MAX_P", 16384, /*min=*/1);

  std::vector<int> sweep;
  for (const int p : {128, 1024, 4096, 16384})
    if (p <= max_p) sweep.push_back(p);
  if (sweep.empty()) sweep.push_back(128);

  CsvWriter csv(exp::results_path("exp_scale.csv"),
                {"p", "boxes", "assignments", "splits", "ghost_flows",
                 "events", "halo_links", "halo_max", "index_candidates",
                 "index_hits", "virtual_time_s"});

  std::vector<ScaleRow> rows;
  for (const int p : sweep) {
    ScaleRow row = run_scale(p, iterations);
    csv.add_row({std::to_string(row.nprocs), std::to_string(row.boxes),
                 std::to_string(row.assignments), std::to_string(row.splits),
                 std::to_string(row.ghost_flows), std::to_string(row.events),
                 std::to_string(row.halo_links), std::to_string(row.halo_max),
                 std::to_string(row.index_candidates),
                 std::to_string(row.index_hits),
                 fmt_seconds(row.virtual_time)});
    const double evps =
        row.advance_seconds > 0 ? row.events / row.advance_seconds : 0;
    std::cout << "P = " << std::setw(5) << row.nprocs << "  boxes = "
              << std::setw(6) << row.boxes << "  events = " << std::setw(9)
              << row.events << "  partition = " << std::fixed
              << std::setprecision(4) << row.partition_seconds
              << " s  events/s = " << std::setprecision(0) << evps << '\n';
    rows.push_back(row);
  }

  std::cout << "\nwrote " << exp::results_path("exp_scale.csv") << '\n';

  if (exp::env_int("SSAMR_SCALE_CHECK", 0, 0, 1) != 0 && rows.size() >= 2) {
    const ScaleRow& small = rows.front();
    const ScaleRow& big = rows.back();
    const double evps_small = small.events / small.advance_seconds;
    const double evps_big = big.events / big.advance_seconds;
    const double floor = exp::env_int("SSAMR_SCALE_FLOOR", 50, 1, 100) / 100.0;
    const double boxes_ratio =
        static_cast<double>(big.boxes) / static_cast<double>(small.boxes);
    const double part_ratio = big.partition_seconds / small.partition_seconds;
    int failures = 0;
    std::cout << "\nscale check: events/s ratio "
              << std::setprecision(3) << evps_big / evps_small
              << " (floor " << floor << "), partition-time ratio "
              << part_ratio << " vs box ratio " << boxes_ratio << '\n';
    if (evps_big < floor * evps_small) {
      std::cerr << "SCALE CHECK FAILED: events/sec at P = " << big.nprocs
                << " fell below half the P = " << small.nprocs << " rate\n";
      ++failures;
    }
    if (part_ratio >= boxes_ratio) {
      std::cerr << "SCALE CHECK FAILED: partition time grew superlinearly"
                   " in total box count\n";
      ++failures;
    }
    if (failures > 0) return 1;
    std::cout << "scale check passed\n";
  }
  return 0;
}

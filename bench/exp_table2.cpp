/// \file exp_table2.cpp
/// Reproduces **Table II**: comparison of execution times using static
/// sensing (system state queried only once at the beginning) and dynamic
/// sensing (queried every 40 iterations) under identical synthetic load
/// dynamics, for 2, 4, 6 and 8 processors.

#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ssamr;

int main(int argc, char** argv) {
  std::cout << "=== Table II: execution time, dynamic sensing vs sensing "
               "only once ===\n\n";

  const ExecModelKind model = exp::select_exec_model(argc, argv);
  std::cout << "execution model: " << exec_model_name(model)
            << " (--exec-model=bsp|event|proc, or SSAMR_EXEC_MODEL)\n\n";

  const int iterations = exp::run_iterations(200);
  const int dynamic_interval = 40;
  const double paper_dyn[] = {423.7, 292.0, 272.0, 225.0};
  const double paper_stat[] = {805.5, 450.0, 442.0, 430.0};

  Table t({"Number of Processors", "Dynamic Sensing (s)",
           "Sensing only once (s)", "ratio", "paper ratio"});
  CsvWriter csv(exp::results_path("table2.csv"),
                {"procs", "dynamic_s", "static_s", "ratio"});

  // Each processor count is an independent deterministic trial
  // (calibration + the dynamic and static runs); run the four in parallel
  // and report in fixed order.
  const int procs[] = {2, 4, 6, 8};
  struct Trial {
    RunTrace dyn;
    RunTrace stat;
  };
  std::vector<Trial> trials(4);
  ThreadPool::global().parallel_for(4, [&](std::size_t i) {
    const int p = procs[i];
    // Match the load-dynamics timescale to the run duration, then face
    // both sensing policies with the *same* load script.
    const real_t tau =
        exp::calibrate_timescale(p, iterations, dynamic_interval);
    trials[i].dyn = exp::run_dynamic_het(p, iterations, dynamic_interval,
                                         tau);
    trials[i].stat = exp::run_dynamic_het(p, iterations, 0, tau);
  });
  for (int i = 0; i < 4; ++i) {
    const int p = procs[i];
    const RunTrace& dyn = trials[static_cast<std::size_t>(i)].dyn;
    const RunTrace& stat = trials[static_cast<std::size_t>(i)].stat;
    const real_t ratio = dyn.total_time / stat.total_time;
    t.add_row({std::to_string(p), fmt(dyn.total_time.value(), 1),
               fmt(stat.total_time.value(), 1), fmt(ratio, 2),
               fmt(paper_dyn[i] / paper_stat[i], 2)});
    csv.add_row({std::to_string(p), fmt(dyn.total_time.value(), 2),
                 fmt(stat.total_time.value(), 2), fmt(ratio, 4)});
  }
  std::cout << t.str() << '\n';
  std::cout << "Expected shape: dynamic runtime sensing significantly "
               "improves application performance at every P\n"
               "(paper: up to ~45-48% faster).  raw series written to "
            << exp::results_path("table2.csv") << "\n";
  return 0;
}

/// \file exp_table3_fig12_15.cpp
/// Reproduces **Table III** (execution time for a four-processor run when
/// NWS is probed every 10 / 20 / 30 / 40 iterations; the paper's best is
/// 20) and **Figures 12–15** (the per-frequency dynamic load-allocation
/// traces with capacity annotations).
///
/// The synthetic load dynamics are identical across the four runs (paper
/// §6.2.3); only the sensing frequency differs, trading probe overhead
/// (≈ probe cost × nodes per sweep) against staleness of the capacities.

#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace ssamr;

int main(int argc, char** argv) {
  std::cout << "=== Table III + Figures 12-15: sensitivity to the sensing "
               "frequency (P = 4) ===\n\n";

  const ExecModelKind model = exp::select_exec_model(argc, argv);
  std::cout << "execution model: " << exec_model_name(model)
            << " (--exec-model=bsp|event|proc, or SSAMR_EXEC_MODEL)\n\n";

  const int iterations = exp::run_iterations(200);
  const int paper_times[] = {316, 277, 286, 293};
  // One timescale for all runs: identical load dynamics across
  // frequencies.
  const real_t tau = exp::calibrate_timescale(4, iterations, 20);

  Table t({"Frequency of calculating capacities", "Execution time (s)",
           "paper (s)"});
  CsvWriter csv(exp::results_path("table3.csv"),
                {"frequency_iters", "time_s"});
  CsvWriter figcsv(exp::results_path("fig12_15.csv"),
                   {"frequency", "regrid", "proc", "work", "capacity"});

  // The four sensing frequencies are independent trials over the same
  // load script; run them in parallel, report in fixed order.
  const int freqs[] = {10, 20, 30, 40};
  std::vector<RunTrace> traces(4);
  ThreadPool::global().parallel_for(4, [&](std::size_t i) {
    traces[i] = exp::run_dynamic_het(4, iterations, freqs[i], tau);
  });
  real_t best_time = 1e30;
  int best_freq = 0;
  for (int i = 0; i < 4; ++i) {
    const int f = freqs[i];
    const RunTrace& trace = traces[static_cast<std::size_t>(i)];
    t.add_row({std::to_string(f) + " iterations",
               fmt(trace.total_time.value(), 0),
               std::to_string(paper_times[i])});
    csv.add_row({std::to_string(f), fmt(trace.total_time.value(), 2)});
    if (trace.total_time.value() < best_time) {
      best_time = trace.total_time.value();
      best_freq = f;
    }

    // Figures 12-15: allocation trace for this frequency.
    std::cout << "Figure " << 12 + i << " — sensing every " << f
              << " iterations (work per proc at selected regrids, "
                 "capacities in %):\n";
    Table ft({"regrid", "proc 0", "proc 1", "proc 2", "proc 3",
              "C0/C1/C2/C3"});
    for (std::size_t rix = 0; rix < trace.regrids.size(); rix += 4) {
      const RegridRecord& r = trace.regrids[rix];
      ft.add_row(
          {std::to_string(r.regrid_index), fmt(r.assigned_work[0], 0),
           fmt(r.assigned_work[1], 0), fmt(r.assigned_work[2], 0),
           fmt(r.assigned_work[3], 0),
           fmt(r.capacities[0] * 100, 0) + "/" +
               fmt(r.capacities[1] * 100, 0) + "/" +
               fmt(r.capacities[2] * 100, 0) + "/" +
               fmt(r.capacities[3] * 100, 0)});
    }
    std::cout << ft.str() << '\n';
    for (const RegridRecord& r : trace.regrids)
      for (int k = 0; k < 4; ++k)
        figcsv.add_row(
            {std::to_string(f), std::to_string(r.regrid_index),
             std::to_string(k),
             fmt(r.assigned_work[static_cast<std::size_t>(k)], 1),
             fmt(r.capacities[static_cast<std::size_t>(k)], 4)});
  }

  std::cout << "Table III:\n" << t.str() << '\n';
  std::cout << "best sensing frequency: every " << best_freq
            << " iterations (paper: 20)\n"
            << "raw series written to results/table3.csv and "
               "results/fig12_15.csv\n";
  return 0;
}

file(REMOVE_RECURSE
  "../bench/ablation_hysteresis"
  "../bench/ablation_hysteresis.pdb"
  "CMakeFiles/ablation_hysteresis.dir/ablation_hysteresis.cpp.o"
  "CMakeFiles/ablation_hysteresis.dir/ablation_hysteresis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ablation_multiaxis"
  "../bench/ablation_multiaxis.pdb"
  "CMakeFiles/ablation_multiaxis.dir/ablation_multiaxis.cpp.o"
  "CMakeFiles/ablation_multiaxis.dir/ablation_multiaxis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiaxis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_multiaxis.
# This may be replaced when dependencies are built.

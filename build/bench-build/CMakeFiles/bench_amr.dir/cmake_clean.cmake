file(REMOVE_RECURSE
  "../bench/bench_amr"
  "../bench/bench_amr.pdb"
  "CMakeFiles/bench_amr.dir/bench_amr.cpp.o"
  "CMakeFiles/bench_amr.dir/bench_amr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

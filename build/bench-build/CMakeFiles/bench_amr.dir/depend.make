# Empty dependencies file for bench_amr.
# This may be replaced when dependencies are built.

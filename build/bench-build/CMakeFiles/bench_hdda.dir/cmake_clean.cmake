file(REMOVE_RECURSE
  "../bench/bench_hdda"
  "../bench/bench_hdda.pdb"
  "CMakeFiles/bench_hdda.dir/bench_hdda.cpp.o"
  "CMakeFiles/bench_hdda.dir/bench_hdda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hdda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_hdda.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_partitioners"
  "../bench/bench_partitioners.pdb"
  "CMakeFiles/bench_partitioners.dir/bench_partitioners.cpp.o"
  "CMakeFiles/bench_partitioners.dir/bench_partitioners.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_sfc"
  "../bench/bench_sfc.pdb"
  "CMakeFiles/bench_sfc.dir/bench_sfc.cpp.o"
  "CMakeFiles/bench_sfc.dir/bench_sfc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/exp_fig10"
  "../bench/exp_fig10.pdb"
  "CMakeFiles/exp_fig10.dir/exp_fig10.cpp.o"
  "CMakeFiles/exp_fig10.dir/exp_fig10.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

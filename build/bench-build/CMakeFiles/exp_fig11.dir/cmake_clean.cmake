file(REMOVE_RECURSE
  "../bench/exp_fig11"
  "../bench/exp_fig11.pdb"
  "CMakeFiles/exp_fig11.dir/exp_fig11.cpp.o"
  "CMakeFiles/exp_fig11.dir/exp_fig11.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig11.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

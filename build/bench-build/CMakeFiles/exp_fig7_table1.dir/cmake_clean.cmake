file(REMOVE_RECURSE
  "../bench/exp_fig7_table1"
  "../bench/exp_fig7_table1.pdb"
  "CMakeFiles/exp_fig7_table1.dir/exp_fig7_table1.cpp.o"
  "CMakeFiles/exp_fig7_table1.dir/exp_fig7_table1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig7_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_fig7_table1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/exp_fig8_fig9"
  "../bench/exp_fig8_fig9.pdb"
  "CMakeFiles/exp_fig8_fig9.dir/exp_fig8_fig9.cpp.o"
  "CMakeFiles/exp_fig8_fig9.dir/exp_fig8_fig9.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fig8_fig9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

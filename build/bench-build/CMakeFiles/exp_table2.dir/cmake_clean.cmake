file(REMOVE_RECURSE
  "../bench/exp_table2"
  "../bench/exp_table2.pdb"
  "CMakeFiles/exp_table2.dir/exp_table2.cpp.o"
  "CMakeFiles/exp_table2.dir/exp_table2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/exp_table3_fig12_15"
  "../bench/exp_table3_fig12_15.pdb"
  "CMakeFiles/exp_table3_fig12_15.dir/exp_table3_fig12_15.cpp.o"
  "CMakeFiles/exp_table3_fig12_15.dir/exp_table3_fig12_15.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_table3_fig12_15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_table3_fig12_15.
# This may be replaced when dependencies are built.

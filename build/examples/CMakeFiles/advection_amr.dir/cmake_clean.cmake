file(REMOVE_RECURSE
  "CMakeFiles/advection_amr.dir/advection_amr.cpp.o"
  "CMakeFiles/advection_amr.dir/advection_amr.cpp.o.d"
  "advection_amr"
  "advection_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advection_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

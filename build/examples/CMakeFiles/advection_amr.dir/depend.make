# Empty dependencies file for advection_amr.
# This may be replaced when dependencies are built.

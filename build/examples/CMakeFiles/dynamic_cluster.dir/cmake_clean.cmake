file(REMOVE_RECURSE
  "CMakeFiles/dynamic_cluster.dir/dynamic_cluster.cpp.o"
  "CMakeFiles/dynamic_cluster.dir/dynamic_cluster.cpp.o.d"
  "dynamic_cluster"
  "dynamic_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

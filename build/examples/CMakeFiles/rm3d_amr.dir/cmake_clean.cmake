file(REMOVE_RECURSE
  "CMakeFiles/rm3d_amr.dir/rm3d_amr.cpp.o"
  "CMakeFiles/rm3d_amr.dir/rm3d_amr.cpp.o.d"
  "rm3d_amr"
  "rm3d_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rm3d_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

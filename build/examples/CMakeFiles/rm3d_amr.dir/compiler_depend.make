# Empty compiler generated dependencies file for rm3d_amr.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/cluster_br.cpp" "src/CMakeFiles/ssamr.dir/amr/cluster_br.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/cluster_br.cpp.o.d"
  "/root/repo/src/amr/flagging.cpp" "src/CMakeFiles/ssamr.dir/amr/flagging.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/flagging.cpp.o.d"
  "/root/repo/src/amr/flux_register.cpp" "src/CMakeFiles/ssamr.dir/amr/flux_register.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/flux_register.cpp.o.d"
  "/root/repo/src/amr/ghost.cpp" "src/CMakeFiles/ssamr.dir/amr/ghost.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/ghost.cpp.o.d"
  "/root/repo/src/amr/hierarchy.cpp" "src/CMakeFiles/ssamr.dir/amr/hierarchy.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/hierarchy.cpp.o.d"
  "/root/repo/src/amr/integrator.cpp" "src/CMakeFiles/ssamr.dir/amr/integrator.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/integrator.cpp.o.d"
  "/root/repo/src/amr/interp.cpp" "src/CMakeFiles/ssamr.dir/amr/interp.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/interp.cpp.o.d"
  "/root/repo/src/amr/level.cpp" "src/CMakeFiles/ssamr.dir/amr/level.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/level.cpp.o.d"
  "/root/repo/src/amr/patch.cpp" "src/CMakeFiles/ssamr.dir/amr/patch.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/patch.cpp.o.d"
  "/root/repo/src/amr/richardson.cpp" "src/CMakeFiles/ssamr.dir/amr/richardson.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/richardson.cpp.o.d"
  "/root/repo/src/amr/trace_generator.cpp" "src/CMakeFiles/ssamr.dir/amr/trace_generator.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/trace_generator.cpp.o.d"
  "/root/repo/src/amr/workload.cpp" "src/CMakeFiles/ssamr.dir/amr/workload.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/amr/workload.cpp.o.d"
  "/root/repo/src/capacity/capacity.cpp" "src/CMakeFiles/ssamr.dir/capacity/capacity.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/capacity/capacity.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/ssamr.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/load_generator.cpp" "src/CMakeFiles/ssamr.dir/cluster/load_generator.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/cluster/load_generator.cpp.o.d"
  "/root/repo/src/cluster/network.cpp" "src/CMakeFiles/ssamr.dir/cluster/network.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/cluster/network.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/ssamr.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/core/experiment.cpp.o.d"
  "/root/repo/src/geom/box.cpp" "src/CMakeFiles/ssamr.dir/geom/box.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/geom/box.cpp.o.d"
  "/root/repo/src/geom/box_algebra.cpp" "src/CMakeFiles/ssamr.dir/geom/box_algebra.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/geom/box_algebra.cpp.o.d"
  "/root/repo/src/geom/box_list.cpp" "src/CMakeFiles/ssamr.dir/geom/box_list.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/geom/box_list.cpp.o.d"
  "/root/repo/src/hash/extendible_hash.cpp" "src/CMakeFiles/ssamr.dir/hash/extendible_hash.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/hash/extendible_hash.cpp.o.d"
  "/root/repo/src/hdda/hdda.cpp" "src/CMakeFiles/ssamr.dir/hdda/hdda.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/hdda/hdda.cpp.o.d"
  "/root/repo/src/monitor/forecaster.cpp" "src/CMakeFiles/ssamr.dir/monitor/forecaster.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/monitor/forecaster.cpp.o.d"
  "/root/repo/src/monitor/monitor_service.cpp" "src/CMakeFiles/ssamr.dir/monitor/monitor_service.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/monitor/monitor_service.cpp.o.d"
  "/root/repo/src/monitor/sensor.cpp" "src/CMakeFiles/ssamr.dir/monitor/sensor.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/monitor/sensor.cpp.o.d"
  "/root/repo/src/partition/grace_default.cpp" "src/CMakeFiles/ssamr.dir/partition/grace_default.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/grace_default.cpp.o.d"
  "/root/repo/src/partition/greedy.cpp" "src/CMakeFiles/ssamr.dir/partition/greedy.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/greedy.cpp.o.d"
  "/root/repo/src/partition/heterogeneous.cpp" "src/CMakeFiles/ssamr.dir/partition/heterogeneous.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/heterogeneous.cpp.o.d"
  "/root/repo/src/partition/metrics.cpp" "src/CMakeFiles/ssamr.dir/partition/metrics.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/metrics.cpp.o.d"
  "/root/repo/src/partition/multiaxis.cpp" "src/CMakeFiles/ssamr.dir/partition/multiaxis.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/multiaxis.cpp.o.d"
  "/root/repo/src/partition/partitioner.cpp" "src/CMakeFiles/ssamr.dir/partition/partitioner.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/partitioner.cpp.o.d"
  "/root/repo/src/partition/sfc_heterogeneous.cpp" "src/CMakeFiles/ssamr.dir/partition/sfc_heterogeneous.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/partition/sfc_heterogeneous.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/ssamr.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/CMakeFiles/ssamr.dir/runtime/runtime.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/runtime/runtime.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/ssamr.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/sfc/hilbert.cpp" "src/CMakeFiles/ssamr.dir/sfc/hilbert.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/sfc/hilbert.cpp.o.d"
  "/root/repo/src/sfc/morton.cpp" "src/CMakeFiles/ssamr.dir/sfc/morton.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/sfc/morton.cpp.o.d"
  "/root/repo/src/sfc/sfc_index.cpp" "src/CMakeFiles/ssamr.dir/sfc/sfc_index.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/sfc/sfc_index.cpp.o.d"
  "/root/repo/src/solver/advection.cpp" "src/CMakeFiles/ssamr.dir/solver/advection.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/solver/advection.cpp.o.d"
  "/root/repo/src/solver/euler.cpp" "src/CMakeFiles/ssamr.dir/solver/euler.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/solver/euler.cpp.o.d"
  "/root/repo/src/solver/richtmyer_meshkov.cpp" "src/CMakeFiles/ssamr.dir/solver/richtmyer_meshkov.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/solver/richtmyer_meshkov.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/ssamr.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/ssamr.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/ssamr.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/ssamr.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/ssamr.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

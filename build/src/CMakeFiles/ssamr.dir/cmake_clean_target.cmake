file(REMOVE_RECURSE
  "libssamr.a"
)

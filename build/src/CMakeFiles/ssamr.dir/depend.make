# Empty dependencies file for ssamr.
# This may be replaced when dependencies are built.

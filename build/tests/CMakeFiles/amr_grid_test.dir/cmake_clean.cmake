file(REMOVE_RECURSE
  "CMakeFiles/amr_grid_test.dir/amr_grid_test.cpp.o"
  "CMakeFiles/amr_grid_test.dir/amr_grid_test.cpp.o.d"
  "amr_grid_test"
  "amr_grid_test.pdb"
  "amr_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

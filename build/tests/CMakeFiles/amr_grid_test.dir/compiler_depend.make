# Empty compiler generated dependencies file for amr_grid_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/flagging_cluster_test.dir/flagging_cluster_test.cpp.o"
  "CMakeFiles/flagging_cluster_test.dir/flagging_cluster_test.cpp.o.d"
  "flagging_cluster_test"
  "flagging_cluster_test.pdb"
  "flagging_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flagging_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for flagging_cluster_test.
# This may be replaced when dependencies are built.

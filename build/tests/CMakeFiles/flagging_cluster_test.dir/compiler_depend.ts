# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for flagging_cluster_test.

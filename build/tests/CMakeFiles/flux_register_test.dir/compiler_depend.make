# Empty compiler generated dependencies file for flux_register_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/geom_algebra_test.dir/geom_algebra_test.cpp.o"
  "CMakeFiles/geom_algebra_test.dir/geom_algebra_test.cpp.o.d"
  "geom_algebra_test"
  "geom_algebra_test.pdb"
  "geom_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

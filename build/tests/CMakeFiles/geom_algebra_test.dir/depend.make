# Empty dependencies file for geom_algebra_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ghost_interp_test.dir/ghost_interp_test.cpp.o"
  "CMakeFiles/ghost_interp_test.dir/ghost_interp_test.cpp.o.d"
  "ghost_interp_test"
  "ghost_interp_test.pdb"
  "ghost_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghost_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

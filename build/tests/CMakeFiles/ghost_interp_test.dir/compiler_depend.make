# Empty compiler generated dependencies file for ghost_interp_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/hdda_test.dir/hdda_test.cpp.o"
  "CMakeFiles/hdda_test.dir/hdda_test.cpp.o.d"
  "hdda_test"
  "hdda_test.pdb"
  "hdda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

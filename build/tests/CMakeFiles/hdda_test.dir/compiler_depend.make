# Empty compiler generated dependencies file for hdda_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/partition_fuzz_test.dir/partition_fuzz_test.cpp.o"
  "CMakeFiles/partition_fuzz_test.dir/partition_fuzz_test.cpp.o.d"
  "partition_fuzz_test"
  "partition_fuzz_test.pdb"
  "partition_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

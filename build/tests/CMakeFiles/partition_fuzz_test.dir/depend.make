# Empty dependencies file for partition_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/richardson_muscl_test.dir/richardson_muscl_test.cpp.o"
  "CMakeFiles/richardson_muscl_test.dir/richardson_muscl_test.cpp.o.d"
  "richardson_muscl_test"
  "richardson_muscl_test.pdb"
  "richardson_muscl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/richardson_muscl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

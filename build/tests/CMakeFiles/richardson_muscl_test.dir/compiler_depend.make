# Empty compiler generated dependencies file for richardson_muscl_test.
# This may be replaced when dependencies are built.

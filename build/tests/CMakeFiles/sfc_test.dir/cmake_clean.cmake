file(REMOVE_RECURSE
  "CMakeFiles/sfc_test.dir/sfc_test.cpp.o"
  "CMakeFiles/sfc_test.dir/sfc_test.cpp.o.d"
  "sfc_test"
  "sfc_test.pdb"
  "sfc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

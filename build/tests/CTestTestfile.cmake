# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/geom_box_test[1]_include.cmake")
include("/root/repo/build/tests/geom_algebra_test[1]_include.cmake")
include("/root/repo/build/tests/sfc_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/hdda_test[1]_include.cmake")
include("/root/repo/build/tests/amr_grid_test[1]_include.cmake")
include("/root/repo/build/tests/hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/flagging_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/ghost_interp_test[1]_include.cmake")
include("/root/repo/build/tests/integrator_test[1]_include.cmake")
include("/root/repo/build/tests/richardson_muscl_test[1]_include.cmake")
include("/root/repo/build/tests/flux_register_test[1]_include.cmake")
include("/root/repo/build/tests/trace_generator_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/capacity_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/partition_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")

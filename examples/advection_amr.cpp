/// \file advection_amr.cpp
/// A minimal end-to-end AMR run with the scalar advection kernel: a
/// Gaussian blob crosses the domain while the Berger–Oliger hierarchy
/// tracks it with two refinement levels.  Demonstrates the AMR substrate
/// on its own (no cluster, no partitioning) and verifies the solution
/// against the exact translated profile.

#include <cmath>
#include <iostream>

#include "core/ssamr.hpp"
#include "util/table.hpp"

using namespace ssamr;

int main() {
  std::cout << "=== AMR advection quick demo ===\n\n";

  HierarchyConfig hc;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 16, 16), 0);
  hc.ncomp = 1;
  hc.ghost = 1;
  hc.max_levels = 3;
  hc.min_box_size = 2;
  GridHierarchy hierarchy(hc);

  AdvectionOperator op(/*v=*/1.0, 0.0, 0.0, /*centre=*/0.2, 0.25, 0.25,
                       /*radius=*/0.1);
  GradientFlagger flagger(0, 0.1);
  IntegratorConfig ic;
  ic.dx0 = 1.0 / 32.0;
  ic.regrid_interval = 3;
  ic.cluster.min_box_size = 2;
  ic.cluster.small_box_cells = 16;
  BergerOliger integrator(hierarchy, op, flagger, ic);
  integrator.initialize();

  std::cout << "initial hierarchy: " << hierarchy.num_levels()
            << " levels, " << hierarchy.total_cells() << " cells\n\n";

  Table t({"step", "time", "levels", "fine boxes", "fine cells",
           "blob x (exact)"});
  while (integrator.time() < 0.4) {
    integrator.advance_step();
    if (integrator.step() % 4 == 0) {
      const int levels = hierarchy.num_levels();
      const std::size_t boxes =
          levels > 1 ? hierarchy.level(1).num_patches() : 0;
      const std::int64_t cells =
          levels > 1 ? hierarchy.level(1).total_cells() : 0;
      t.add_row({std::to_string(integrator.step()),
                 fmt(integrator.time(), 3), std::to_string(levels),
                 std::to_string(boxes), std::to_string(cells),
                 fmt(0.2 + integrator.time(), 3)});
    }
  }
  std::cout << t.str() << '\n';

  // Compare against the exact solution on the base level.
  real_t l1 = 0;
  std::int64_t n = 0;
  for (const Patch& p : hierarchy.level(0).patches()) {
    const Box& b = p.box();
    for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
      for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
        for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
          const real_t exact = op.exact(
              (static_cast<real_t>(i) + 0.5) / 32.0,
              (static_cast<real_t>(j) + 0.5) / 32.0,
              (static_cast<real_t>(k) + 0.5) / 32.0, integrator.time());
          l1 += std::abs(p.data()(0, i, j, k) - exact);
          ++n;
        }
  }
  std::cout << "L1 error vs exact translation after "
            << integrator.step() << " steps: "
            << fmt(l1 / static_cast<real_t>(n), 5)
            << "  (first-order upwind: diffusive but convergent)\n";
  std::cout << "regrids performed: " << integrator.regrid_count() << '\n';
  return 0;
}

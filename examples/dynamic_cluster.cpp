/// \file dynamic_cluster.cpp
/// Demonstrates dynamic load sensing (paper §6.2.3): background load
/// arrives on two nodes mid-run; the NWS-style monitor sees it, the
/// capacity metric shifts, and the partitioner re-proportions the work.
/// The same run with sensing disabled shows what staleness costs.

#include <iostream>

#include "core/experiment.hpp"
#include "core/ssamr.hpp"
#include "util/table.hpp"

using namespace ssamr;

namespace {

RunTrace run(Cluster& cluster, int sensing_interval) {
  TraceWorkloadSource source(exp::paper_trace_config());
  HeterogeneousPartitioner partitioner;
  AdaptiveRuntime runtime(
      cluster, source, partitioner,
      exp::paper_runtime_config(/*iterations=*/120, sensing_interval));
  return runtime.run();
}

}  // namespace

int main() {
  std::cout << "=== Adapting to cluster load dynamics ===\n\n";

  // Load script: node 0 gets busy early, node 1 later.
  auto make_cluster = [] {
    Cluster cluster = exp::paper_cluster(4);
    LoadRamp a;
    a.start_time = Seconds{30.0};
    a.stop_time = Seconds{160.0};
    a.rate = 0.1;
    a.target_level = 3.0;
    a.memory_mb = MegaBytes{160.0};
    a.traffic_mbps = MbitsPerSec{50.0};
    cluster.add_load(0, a);
    LoadRamp b;
    b.start_time = Seconds{150.0};
    b.rate = 0.05;
    b.target_level = 1.5;
    b.memory_mb = MegaBytes{90.0};
    b.traffic_mbps = MbitsPerSec{30.0};
    cluster.add_load(1, b);
    return cluster;
  };

  Cluster sensed = make_cluster();
  const RunTrace dynamic = run(sensed, /*sensing_interval=*/15);
  Cluster stale = make_cluster();
  const RunTrace once = run(stale, /*sensing_interval=*/0);

  std::cout << "capacity samplings over the dynamic run:\n";
  Table st({"iteration", "virtual t", "C0", "C1", "C2", "C3"});
  for (const SenseRecord& s : dynamic.senses)
    st.add_row({std::to_string(s.iteration), fmt(s.vtime.value(), 0),
                fmt_pct(s.capacities[0], 0), fmt_pct(s.capacities[1], 0),
                fmt_pct(s.capacities[2], 0), fmt_pct(s.capacities[3], 0)});
  std::cout << st.str() << '\n';

  std::cout << "work share of the two loaded nodes at each regrid "
               "(dynamic sensing):\n";
  Table wt({"regrid", "share node 0", "share node 1"});
  for (std::size_t i = 0; i < dynamic.regrids.size(); i += 3) {
    const RegridRecord& r = dynamic.regrids[i];
    real_t total = 0;
    for (real_t w : r.assigned_work) total += w;
    wt.add_row({std::to_string(r.regrid_index),
                fmt_pct(r.assigned_work[0] / total),
                fmt_pct(r.assigned_work[1] / total)});
  }
  std::cout << wt.str() << '\n';

  std::cout << "execution time with dynamic sensing: "
            << fmt(dynamic.total_time.value(), 1) << " s\n"
            << "execution time sensing only once:    "
            << fmt(once.total_time.value(), 1) << " s\n"
            << "dynamic sensing saves "
            << fmt_pct(1.0 - dynamic.total_time / once.total_time)
            << '\n';
  return 0;
}

/// \file quickstart.cpp
/// Quickstart: partition an adaptive grid hierarchy across a heterogeneous
/// 4-node cluster, compare the system-sensitive partitioner against the
/// homogeneous default, and print what each processor receives.

#include <iostream>

#include "core/experiment.hpp"
#include "core/ssamr.hpp"
#include "util/table.hpp"

using namespace ssamr;

int main() {
  std::cout << "=== ssamr quickstart ===\n\n";

  // 1. A 4-node cluster; two nodes are busy with background work.
  Cluster cluster = exp::paper_cluster(4);
  exp::apply_static_loads(cluster);

  // 2. Probe it (the NWS-style monitor) and compute relative capacities.
  MonitorConfig mon;
  mon.seed = 7;
  ResourceMonitor monitor(cluster, mon);
  const auto estimates = monitor.probe_all(/*t=*/Seconds{0.0}).estimates;
  CapacityCalculator calc(CapacityWeights::equal());
  const auto capacities = calc.relative_capacities(estimates);

  std::cout << "relative capacities (Eq. 1, equal weights):\n";
  for (std::size_t k = 0; k < capacities.size(); ++k)
    std::cout << "  processor " << k << ": " << fmt_pct(capacities[k])
              << "  (cpu " << fmt(estimates[k].cpu_available.value(), 2)
              << ", mem " << fmt(estimates[k].memory_free_mb.value(), 0)
              << " MB, bw " << fmt(estimates[k].bandwidth_mbps.value(), 0)
              << " Mbit/s)\n";

  // 3. An SAMR hierarchy (synthetic RM-style trace, paper scale).
  TraceWorkloadSource source(exp::paper_trace_config());
  const BoxList boxes = source.boxes_for_regrid(0);
  WorkModel work;
  std::cout << "\nhierarchy: " << boxes.size() << " boxes, "
            << boxes.total_cells() << " cells, total work "
            << fmt(total_work(boxes, work), 0) << " units/coarse step\n\n";

  // 4. Partition it both ways.
  HeterogeneousPartitioner het;
  GraceDefaultPartitioner def;
  for (const Partitioner* p :
       std::initializer_list<const Partitioner*>{&het, &def}) {
    const PartitionResult r = p->partition(boxes, capacities, work);
    const auto imb = load_imbalance_pct(r);
    Table t({"proc", "target work", "assigned work", "imbalance"});
    for (std::size_t k = 0; k < capacities.size(); ++k)
      t.add_row({std::to_string(k), fmt(r.target_work[k], 0),
                 fmt(r.assigned_work[k], 0), fmt(imb[k], 1) + "%"});
    std::cout << p->name() << " (" << r.splits << " splits):\n"
              << t.str() << '\n';
  }

  // 5. Full adaptive runs on the simulated cluster.
  const auto cmp = exp::compare_partitioners(
      /*nprocs=*/4, /*iterations=*/100, /*sensing_interval=*/20,
      /*dynamic_loads=*/false);
  std::cout << "100-iteration run, sensing every 20 iterations:\n"
            << "  ACEHeterogeneous: "
            << fmt(cmp.system_sensitive.total_time.value(), 1)
            << " s (virtual)\n"
            << "  ACEComposite:     "
            << fmt(cmp.grace_default.total_time.value(), 1)
            << " s (virtual)\n"
            << "  improvement:      " << fmt_pct(cmp.improvement()) << '\n';
  return 0;
}

/// \file rm3d_amr.cpp
/// The paper's application end-to-end, at laptop scale: a 3-D
/// Richtmyer–Meshkov instability solved with the real compressible Euler
/// kernel on the Berger–Oliger hierarchy, distributed over a simulated
/// heterogeneous 4-node cluster by the system-sensitive partitioner.
///
/// The run prints, per regrid: the hierarchy shape (levels, boxes, cells),
/// the capacities the monitor reported, and the resulting work
/// distribution — the same quantities the paper's figures plot, but driven
/// by a live PDE integration instead of the synthetic trace.

#include <iostream>

#include "core/experiment.hpp"
#include "core/ssamr.hpp"
#include "util/table.hpp"

using namespace ssamr;

int main() {
  std::cout << "=== Richtmyer-Meshkov 3D on an adaptively refined mesh, "
               "system-sensitive partitioning ===\n\n";

  // The real solver at reduced scale: 48x12x12 base, 2 refinement levels.
  HierarchyConfig hc;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(48, 12, 12), 0);
  hc.ncomp = kEulerNcomp;
  hc.ghost = 1;
  hc.max_levels = 3;
  hc.min_box_size = 2;
  GridHierarchy hierarchy(hc);

  RichtmyerMeshkovConfig rm;
  rm.lx = 1.0;
  rm.ly = rm.lz = 0.25;
  rm.mach = 1.5;
  rm.density_ratio = 3.0;
  EulerOperator op = make_rm_operator(rm);
  GradientFlagger flagger(kRho, 0.4);

  IntegratorConfig ic;
  ic.dx0 = 1.0 / 48.0;
  ic.regrid_interval = 4;
  ic.cluster.min_box_size = 2;
  ic.cluster.small_box_cells = 32;
  BergerOliger integrator(hierarchy, op, flagger, ic);

  // A loaded 4-node cluster and the adaptive runtime around the solver.
  Cluster cluster = exp::paper_cluster(4);
  exp::apply_static_loads(cluster);
  SolverWorkloadSource source(integrator, hierarchy,
                              /*steps_per_regrid=*/4);
  HeterogeneousPartitioner partitioner;
  RuntimeConfig rc = exp::paper_runtime_config(/*iterations=*/32,
                                               /*sensing_interval=*/8);
  rc.regrid_interval = 4;
  AdaptiveRuntime runtime(cluster, source, partitioner, rc);

  const RunTrace trace = runtime.run();

  Table t({"regrid", "boxes", "total work", "W0", "W1", "W2", "W3",
           "max imb"});
  for (const RegridRecord& r : trace.regrids) {
    real_t mx = 0;
    for (real_t i : r.imbalance_pct) mx = std::max(mx, i);
    t.add_row({std::to_string(r.regrid_index),
               std::to_string(r.num_boxes), fmt(r.total_work.value(), 0),
               fmt(r.assigned_work[0], 0), fmt(r.assigned_work[1], 0),
               fmt(r.assigned_work[2], 0), fmt(r.assigned_work[3], 0),
               fmt(mx, 1) + "%"});
  }
  std::cout << t.str() << '\n';

  std::cout << "solver: " << integrator.step() << " coarse steps to t = "
            << fmt(integrator.time(), 4) << ", "
            << hierarchy.num_levels() << " levels, "
            << hierarchy.total_cells() << " cells\n";
  std::cout << "virtual execution time: " << fmt(trace.total_time.value(), 1)
            << " s  (compute " << fmt(trace.compute_time.value(), 1)
            << ", comm " << fmt(trace.comm_time.value(), 1) << ", sense "
            << fmt(trace.sense_time.value(), 1) << ", regrid "
            << fmt(trace.regrid_time.value(), 1) << ", migrate "
            << fmt(trace.migrate_time.value(), 1) << ")\n";

  // Quick physics sanity: the shock has set the gas moving in +x.
  real_t momx = 0;
  for (const Patch& p : hierarchy.level(0).patches()) {
    const Box& b = p.box();
    for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
      for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
        for (coord_t i = b.lo().x; i <= b.hi().x; ++i)
          momx += p.data()(kMomX, i, j, k);
  }
  std::cout << "total x-momentum (should be > 0 after shock passage): "
            << fmt(momx, 2) << '\n';
  return 0;
}

#include "amr/cluster_br.hpp"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <iterator>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

namespace {

/// Bounding box of a span of points.
Box bbox_of(const std::vector<IntVec>& pts, std::size_t lo, std::size_t hi,
            level_t level) {
  IntVec mn = pts[lo], mx = pts[lo];
  for (std::size_t i = lo + 1; i < hi; ++i) {
    mn = min(mn, pts[i]);
    mx = max(mx, pts[i]);
  }
  return Box(mn, mx, level);
}

/// Signature (flag count per plane) of the span along `axis`, within `b`.
std::vector<std::int64_t> signature(const std::vector<IntVec>& pts,
                                    std::size_t lo, std::size_t hi,
                                    const Box& b, int axis) {
  std::vector<std::int64_t> sig(
      static_cast<std::size_t>(b.extent()[axis]), 0);
  for (std::size_t i = lo; i < hi; ++i)
    ++sig[static_cast<std::size_t>(pts[i][axis] - b.lo()[axis])];
  return sig;
}

struct Cut {
  int axis = -1;
  coord_t offset = 0;  // split offset within the box (first piece size)
  bool found() const { return axis >= 0; }
};

/// Find the most central zero-signature plane usable as a cut.
Cut find_hole(const std::vector<IntVec>& pts, std::size_t lo, std::size_t hi,
              const Box& b, coord_t min_size) {
  Cut best;
  real_t best_centrality = -1;
  for (int axis = 0; axis < kDim; ++axis) {
    const coord_t n = b.extent()[axis];
    if (n < 2 * min_size) continue;
    const auto sig = signature(pts, lo, hi, b, axis);
    for (coord_t c = min_size; c <= n - min_size; ++c) {
      // Cutting at offset c puts planes [0,c) left, [c,n) right.  A hole at
      // plane c-1 or c makes the cut clean; we just need a zero plane whose
      // cut position respects the margins.
      if (sig[static_cast<std::size_t>(c)] != 0 &&
          sig[static_cast<std::size_t>(c - 1)] != 0)
        continue;
      const real_t centrality =
          1.0 - std::abs(static_cast<real_t>(2 * c - n)) /
                    static_cast<real_t>(n);
      if (centrality > best_centrality) {
        best_centrality = centrality;
        best.axis = axis;
        best.offset = c;
      }
    }
  }
  return best;
}

/// Find the strongest inflection (sign change of the signature Laplacian).
Cut find_inflection(const std::vector<IntVec>& pts, std::size_t lo,
                    std::size_t hi, const Box& b, coord_t min_size) {
  Cut best;
  std::int64_t best_jump = -1;
  for (int axis = 0; axis < kDim; ++axis) {
    const coord_t n = b.extent()[axis];
    if (n < 2 * min_size || n < 4) continue;
    const auto sig = signature(pts, lo, hi, b, axis);
    // Laplacian on interior planes: lap[i] = sig[i-1] - 2 sig[i] + sig[i+1]
    std::vector<std::int64_t> lap(sig.size(), 0);
    for (std::size_t i = 1; i + 1 < sig.size(); ++i)
      lap[i] = sig[i - 1] - 2 * sig[i] + sig[i + 1];
    for (coord_t c = std::max<coord_t>(min_size, 2);
         c <= std::min<coord_t>(n - min_size, n - 2); ++c) {
      const std::int64_t a = lap[static_cast<std::size_t>(c - 1)];
      const std::int64_t d = lap[static_cast<std::size_t>(c)];
      if ((a < 0 && d > 0) || (a > 0 && d < 0)) {
        const std::int64_t jump = std::abs(a - d);
        if (jump > best_jump) {
          best_jump = jump;
          best.axis = axis;
          best.offset = c;
        }
      }
    }
  }
  return best;
}

/// Midpoint cut along the longest axis that can be cut.
Cut find_midpoint(const Box& b, coord_t min_size) {
  Cut cut;
  coord_t best_extent = 0;
  for (int axis = 0; axis < kDim; ++axis) {
    const coord_t n = b.extent()[axis];
    if (n >= 2 * min_size && n > best_extent) {
      best_extent = n;
      cut.axis = axis;
      cut.offset = n / 2;
    }
  }
  return cut;
}

void cluster_recursive(std::vector<IntVec>& pts, std::size_t lo,
                       std::size_t hi, level_t level,
                       const ClusterConfig& cfg, int depth,
                       std::vector<Box>& out) {
  SSAMR_ASSERT(lo < hi, "empty span in cluster_recursive");
  const Box b = bbox_of(pts, lo, hi, level);
  const real_t eff = static_cast<real_t>(hi - lo) /
                     static_cast<real_t>(b.cells());
  if (eff >= cfg.efficiency || b.cells() <= cfg.small_box_cells ||
      depth >= cfg.max_depth) {
    out.push_back(b);
    return;
  }

  Cut cut = find_hole(pts, lo, hi, b, cfg.min_box_size);
  if (!cut.found()) cut = find_inflection(pts, lo, hi, b, cfg.min_box_size);
  if (!cut.found()) cut = find_midpoint(b, cfg.min_box_size);
  if (!cut.found()) {
    out.push_back(b);  // nothing can be cut without violating min size
    return;
  }

  const coord_t split_coord = b.lo()[cut.axis] + cut.offset;
  const auto mid_it = std::partition(
      pts.begin() + static_cast<std::ptrdiff_t>(lo),
      pts.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](IntVec p) { return p[cut.axis] < split_coord; });
  const auto mid = static_cast<std::size_t>(mid_it - pts.begin());
  if (mid == lo || mid == hi) {
    out.push_back(b);  // degenerate cut (all flags on one side)
    return;
  }

  // Fork-join over the two disjoint spans when the left half is big
  // enough to pay for a task.  Each side writes its own vector; appending
  // left-then-right reproduces the serial depth-first output order
  // exactly, so box lists are bit-identical at any thread count.
  constexpr std::size_t kForkThreshold = 1024;
  ThreadPool& pool = ThreadPool::global();
  if (pool.worker_count() > 0 && mid - lo >= kForkThreshold) {
    std::vector<Box> left;
    std::future<void> fut = pool.async([&pts, lo, mid, level, &cfg, depth,
                                        &left] {
      cluster_recursive(pts, lo, mid, level, cfg, depth + 1, left);
    });
    std::vector<Box> right;
    cluster_recursive(pts, mid, hi, level, cfg, depth + 1, right);
    pool.wait(fut);
    out.insert(out.end(), std::make_move_iterator(left.begin()),
               std::make_move_iterator(left.end()));
    out.insert(out.end(), std::make_move_iterator(right.begin()),
               std::make_move_iterator(right.end()));
    return;
  }
  cluster_recursive(pts, lo, mid, level, cfg, depth + 1, out);
  cluster_recursive(pts, mid, hi, level, cfg, depth + 1, out);
}

}  // namespace

std::vector<Box> cluster_flags(const std::vector<IntVec>& flags,
                               level_t level, const ClusterConfig& cfg) {
  SSAMR_REQUIRE(cfg.efficiency > 0 && cfg.efficiency <= 1,
                "efficiency must be in (0,1]");
  SSAMR_REQUIRE(cfg.min_box_size >= 1, "min box size must be >= 1");
  if (flags.empty()) return {};
  // Deduplicate; duplicates would inflate the efficiency estimate.
  std::vector<IntVec> pts = flags;
  std::sort(pts.begin(), pts.end(), [](IntVec a, IntVec b) {
    if (a.z != b.z) return a.z < b.z;
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  std::vector<Box> out;
  cluster_recursive(pts, 0, pts.size(), level, cfg, 0, out);
  return out;
}

}  // namespace ssamr

#pragma once
/// \file cluster_br.hpp
/// Berger–Rigoutsos point clustering.
///
/// Regridding step (2) of the paper: "clustering flagged points" into a
/// small set of rectilinear boxes with bounded fill efficiency.  This is the
/// classic signature/hole/inflection algorithm of Berger & Rigoutsos (IEEE
/// Trans. Systems, Man & Cybernetics, 1991).

#include <vector>

#include "geom/box.hpp"
#include "geom/point.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Tuning knobs of the clustering pass.
struct ClusterConfig {
  /// Accept a box when (flagged cells / box cells) >= efficiency.
  real_t efficiency = 0.7;
  /// Splits never create a piece with extent < min_box_size along the cut
  /// axis (the paper's "minimum box size" constraint); an accepted box can
  /// still be smaller when its flag cloud is smaller.
  coord_t min_box_size = 4;
  /// Stop splitting when a box already holds <= this many cells.
  std::int64_t small_box_cells = 64;
  /// Hard cap on recursion depth (safety).
  int max_depth = 32;
};

/// Cluster flagged cells (at some level l) into boxes at the same level.
/// The returned boxes are disjoint, each contains every flag inside its
/// bounds, and their union covers all flags.  `flags` may contain
/// duplicates.  Returns an empty list when `flags` is empty.
std::vector<Box> cluster_flags(const std::vector<IntVec>& flags,
                               level_t level, const ClusterConfig& cfg);

}  // namespace ssamr

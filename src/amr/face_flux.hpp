#pragma once
/// \file face_flux.hpp
/// Per-patch storage of face fluxes, captured during a kernel update so
/// the flux register (flux_register.hpp) can enforce conservation at
/// coarse–fine boundaries.
///
/// Convention: for axis d, `flux(d)(c, i, j, k)` is the numerical flux
/// through the *low* face of cell (i,j,k) along d — the face shared with
/// cell (i,j,k) − e_d.  The storage box along d therefore has one extra
/// plane at the high end (the high face of the last cell is the low face
/// of the one-past-the-end index).

#include <array>

#include "amr/grid_function.hpp"
#include "geom/box.hpp"

namespace ssamr {

/// Face fluxes of one patch, all three axes.
class FaceFluxes {
 public:
  /// Empty fluxes (no storage) — a placeholder slot to be assigned later.
  FaceFluxes() = default;

  /// Allocate zeroed flux storage for a patch over `cell_box`.
  FaceFluxes(const Box& cell_box, int ncomp) : cell_box_(cell_box) {
    for (int d = 0; d < kDim; ++d) {
      IntVec hi = cell_box.hi();
      hi.at(d) += 1;  // faces: one more plane than cells along d
      flux_[static_cast<std::size_t>(d)] =
          GridFunction(Box(cell_box.lo(), hi, cell_box.level()), ncomp, 0);
    }
  }

  /// The cell box the fluxes belong to.
  const Box& cell_box() const { return cell_box_; }

  /// Flux field for one axis (indexed by face = low face of the cell at
  /// the same index).
  GridFunction& flux(int axis) {
    return flux_[static_cast<std::size_t>(axis)];
  }
  const GridFunction& flux(int axis) const {
    return flux_[static_cast<std::size_t>(axis)];
  }

 private:
  Box cell_box_;
  std::array<GridFunction, kDim> flux_;
};

}  // namespace ssamr

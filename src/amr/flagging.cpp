#include "amr/flagging.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

GradientFlagger::GradientFlagger(int component, real_t tol)
    : component_(component), tol_(tol) {
  SSAMR_REQUIRE(component >= 0, "component must be non-negative");
  SSAMR_REQUIRE(tol > 0, "tolerance must be positive");
}

void GradientFlagger::flag_level(const GridLevel& lvl,
                                 std::vector<IntVec>& flags) const {
  // Patches are scanned independently into per-patch buffers which are
  // concatenated in patch order — the flag sequence is bit-identical to
  // the serial single-vector scan at any thread count.
  std::vector<std::vector<IntVec>> per_patch(lvl.num_patches());
  ThreadPool::global().parallel_for(lvl.num_patches(), [&](std::size_t pi) {
    const Patch& p = lvl.patch(pi);
    std::vector<IntVec>& out = per_patch[pi];
    const GridFunction& u = p.data();
    SSAMR_REQUIRE(component_ < u.ncomp(), "component out of range");
    const Box& b = p.box();
    for (coord_t k = b.lo().z; k <= b.hi().z; ++k) {
      for (coord_t j = b.lo().y; j <= b.hi().y; ++j) {
        for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
          real_t g = 0;
          // One-sided differences at patch boundaries, centred inside.
          const coord_t im = std::max(i - 1, b.lo().x);
          const coord_t ip = std::min(i + 1, b.hi().x);
          const coord_t jm = std::max(j - 1, b.lo().y);
          const coord_t jp = std::min(j + 1, b.hi().y);
          const coord_t km = std::max(k - 1, b.lo().z);
          const coord_t kp = std::min(k + 1, b.hi().z);
          g = std::max(g, std::abs(u(component_, ip, j, k) -
                                   u(component_, im, j, k)) /
                              static_cast<real_t>(std::max<coord_t>(
                                  ip - im, 1)));
          g = std::max(g, std::abs(u(component_, i, jp, k) -
                                   u(component_, i, jm, k)) /
                              static_cast<real_t>(std::max<coord_t>(
                                  jp - jm, 1)));
          g = std::max(g, std::abs(u(component_, i, j, kp) -
                                   u(component_, i, j, km)) /
                              static_cast<real_t>(std::max<coord_t>(
                                  kp - km, 1)));
          if (g > tol_) out.emplace_back(i, j, k);
        }
      }
    }
  });
  for (const std::vector<IntVec>& buf : per_patch)
    flags.insert(flags.end(), buf.begin(), buf.end());
}

std::vector<IntVec> buffer_flags(const std::vector<IntVec>& flags,
                                 coord_t buffer, const Box& clip) {
  SSAMR_REQUIRE(buffer >= 0, "buffer must be non-negative");
  std::vector<IntVec> out;
  out.reserve(flags.size());
  for (const IntVec& f : flags) {
    for (coord_t dz = -buffer; dz <= buffer; ++dz)
      for (coord_t dy = -buffer; dy <= buffer; ++dy)
        for (coord_t dx = -buffer; dx <= buffer; ++dx) {
          const IntVec p = f + IntVec(dx, dy, dz);
          if (clip.contains(p)) out.push_back(p);
        }
  }
  std::sort(out.begin(), out.end(), [](IntVec a, IntVec b) {
    if (a.z != b.z) return a.z < b.z;
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace ssamr

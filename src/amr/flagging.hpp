#pragma once
/// \file flagging.hpp
/// Error estimation: tagging cells that need refinement.
///
/// Regridding step (1) of the paper's Berger–Oliger description: "flagging
/// regions needing refinement based on an application specific error
/// criterion".  The library ships a gradient detector (used by both solver
/// kernels) behind a small interface so applications can plug their own.

#include <memory>
#include <vector>

#include "amr/level.hpp"
#include "geom/point.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Application-specific error criterion.
class ErrorFlagger {
 public:
  virtual ~ErrorFlagger() = default;

  /// Append the flagged cells (global coordinates at lvl's level) of every
  /// patch on the level.
  virtual void flag_level(const GridLevel& lvl,
                          std::vector<IntVec>& flags) const = 0;
};

/// Flags cells where the undivided gradient of one component exceeds a
/// threshold: max_d |u(i+e_d) - u(i-e_d)| / 2 > tol.  Differences use only
/// interior neighbours at the patch boundary (one-sided).
class GradientFlagger final : public ErrorFlagger {
 public:
  /// \param component which field component to inspect
  /// \param tol absolute threshold on the undivided difference
  GradientFlagger(int component, real_t tol);

  void flag_level(const GridLevel& lvl,
                  std::vector<IntVec>& flags) const override;

 private:
  int component_;
  real_t tol_;
};

/// Grow each flag by `buffer` cells (clipped to `clip`), deduplicated.
/// Buffering keeps moving features inside the refined region between
/// regrids.
std::vector<IntVec> buffer_flags(const std::vector<IntVec>& flags,
                                 coord_t buffer, const Box& clip);

}  // namespace ssamr

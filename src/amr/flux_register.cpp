#include "amr/flux_register.hpp"

#include "sfc/morton.hpp"
#include "util/error.hpp"

namespace ssamr {

key_t FluxRegister::face_key(IntVec cell, int axis) {
  // Coarse cells are non-negative in our domains; shift defensively so
  // small negative ghost-adjacent indices cannot collide.
  const IntVec shifted = cell + IntVec::splat(4);
  SSAMR_ASSERT(shifted.x >= 0 && shifted.y >= 0 && shifted.z >= 0,
               "face key out of range");
  return (morton_encode(shifted) << 2) | static_cast<key_t>(axis);
}

FluxRegister::FluxRegister(const GridLevel& coarse, const GridLevel& fine,
                           const Box& coarse_domain, coord_t ratio,
                           int ncomp)
    : ratio_(ratio), ncomp_(ncomp) {
  SSAMR_REQUIRE(ratio >= 2, "ratio must be >= 2");
  SSAMR_REQUIRE(ncomp >= 1, "ncomp must be >= 1");

  // Coarsened fine region.
  std::vector<Box> shadow;
  shadow.reserve(fine.num_patches());
  for (const Patch& p : fine.patches())
    shadow.push_back(p.box().coarsened(ratio));
  auto in_shadow = [&](IntVec c) {
    for (const Box& b : shadow)
      if (b.contains(c)) return true;
    return false;
  };

  // Walk the boundary cells of every shadow box; register faces whose
  // neighbour is outside the fine region but inside the domain.
  auto try_register = [&](IntVec inside, IntVec outside, int axis,
                          IntVec face_cell, int sign) {
    if (!coarse_domain.contains(outside)) return;
    if (in_shadow(outside)) return;
    if (coarse.find_patch_containing(outside) == GridLevel::npos) return;
    (void)inside;
    const key_t key = face_key(face_cell, axis);
    if (index_.contains(key)) return;
    Record rec;
    rec.cell = face_cell;
    rec.axis = axis;
    rec.sign = sign;
    rec.outside = outside;
    rec.delta.assign(static_cast<std::size_t>(ncomp_), 0);
    index_.insert(key, records_.size());
    records_.push_back(std::move(rec));
  };

  for (const Box& b : shadow) {
    for (int axis = 0; axis < kDim; ++axis) {
      IntVec e(0, 0, 0);
      e.at(axis) = 1;
      // Low side: inside cells on the low face plane; outside = inside − e.
      // The shared face is the low face of `inside`.
      Box low = b;
      {
        IntVec hi = b.hi();
        hi.at(axis) = b.lo()[axis];
        low = Box(b.lo(), hi, b.level());
      }
      for (coord_t k = low.lo().z; k <= low.hi().z; ++k)
        for (coord_t j = low.lo().y; j <= low.hi().y; ++j)
          for (coord_t i = low.lo().x; i <= low.hi().x; ++i) {
            const IntVec inside(i, j, k);
            const IntVec outside = inside - e;
            // Outside is the LOW-side cell: mass into it is −F·A.
            try_register(inside, outside, axis, inside, -1);
          }
      // High side: inside cells on the high plane; outside = inside + e;
      // the shared face is the low face of `outside`.
      Box high = b;
      {
        IntVec lo = b.lo();
        lo.at(axis) = b.hi()[axis];
        high = Box(lo, b.hi(), b.level());
      }
      for (coord_t k = high.lo().z; k <= high.hi().z; ++k)
        for (coord_t j = high.lo().y; j <= high.hi().y; ++j)
          for (coord_t i = high.lo().x; i <= high.hi().x; ++i) {
            const IntVec inside(i, j, k);
            const IntVec outside = inside + e;
            // Outside is the HIGH-side cell: mass into it is +F·A.
            try_register(inside, outside, axis, outside, +1);
          }
    }
  }
}

const FluxRegister::Record* FluxRegister::find(IntVec cell, int axis) const {
  const auto idx = index_.find(face_key(cell, axis));
  return idx ? &records_[*idx] : nullptr;
}

FluxRegister::Record* FluxRegister::find(IntVec cell, int axis) {
  auto* idx = index_.find_ptr(face_key(cell, axis));
  return idx != nullptr ? &records_[*idx] : nullptr;
}

void FluxRegister::add_coarse(const std::vector<FaceFluxes>& fluxes,
                              real_t dt_c) {
  for (Record& rec : records_) {
    // The face is the low face of rec.cell along rec.axis; find a coarse
    // patch whose flux storage covers that face index.
    for (const FaceFluxes& ff : fluxes) {
      const GridFunction& f = ff.flux(rec.axis);
      if (!f.box().contains(rec.cell)) continue;
      for (int c = 0; c < ncomp_; ++c)
        rec.delta[static_cast<std::size_t>(c)] -=
            dt_c * f(c, rec.cell.x, rec.cell.y, rec.cell.z);
      break;
    }
  }
}

void FluxRegister::add_fine(const std::vector<FaceFluxes>& fluxes,
                            real_t dt_f) {
  const real_t area_scale =
      1.0 / (static_cast<real_t>(ratio_) * static_cast<real_t>(ratio_));
  for (Record& rec : records_) {
    // Fine faces covering the coarse face: along the axis the fine face
    // plane is at cell*r; transverse indices span r each.
    IntVec base = rec.cell * ratio_;
    for (const FaceFluxes& ff : fluxes) {
      const GridFunction& f = ff.flux(rec.axis);
      // Quick reject: the base face must lie in this fine patch's face box.
      if (!f.box().contains(base)) continue;
      const int a = rec.axis;
      const int t1 = (a + 1) % 3;
      const int t2 = (a + 2) % 3;
      for (coord_t u = 0; u < ratio_; ++u)
        for (coord_t v = 0; v < ratio_; ++v) {
          IntVec face = base;
          face.at(t1) += u;
          face.at(t2) += v;
          SSAMR_ASSERT(f.box().contains(face),
                       "fine face outside captured storage");
          for (int c = 0; c < ncomp_; ++c)
            rec.delta[static_cast<std::size_t>(c)] +=
                dt_f * area_scale * f(c, face.x, face.y, face.z);
        }
      break;
    }
  }
}

void FluxRegister::apply(GridLevel& coarse, real_t dx_c) const {
  SSAMR_REQUIRE(dx_c > 0, "dx must be positive");
  for (const Record& rec : records_) {
    const std::size_t pi = coarse.find_patch_containing(rec.outside);
    if (pi == GridLevel::npos) continue;
    GridFunction& u = coarse.patch(pi).data();
    for (int c = 0; c < ncomp_; ++c)
      u(c, rec.outside.x, rec.outside.y, rec.outside.z) +=
          static_cast<real_t>(rec.sign) *
          rec.delta[static_cast<std::size_t>(c)] / dx_c;
  }
}

}  // namespace ssamr

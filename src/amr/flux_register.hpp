#pragma once
/// \file flux_register.hpp
/// Conservative refluxing at coarse–fine boundaries (Berger & Colella
/// 1989).
///
/// When a fine level overlays part of a coarse level, the coarse cells
/// just *outside* the fine region were updated with the coarse face flux,
/// while the covered region evolved with the (better) fine fluxes.  The
/// mass books only balance if the coarse flux through every coarse–fine
/// boundary face is replaced by the time- and area-average of the fine
/// fluxes through it:
///
///     u_outside += s · ( Σ_subcycles Σ_finefaces Δt_f F_f A_f
///                        − Δt_c F_c A_c ) / V_c
///
/// The FluxRegister identifies those faces, accumulates both sides during
/// one coarse timestep, and applies the correction after the fine
/// subcycles are restricted.

#include <array>
#include <vector>

#include "amr/face_flux.hpp"
#include "amr/level.hpp"
#include "geom/box.hpp"
#include "hash/extendible_hash.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Register for one coarse/fine level pair over one coarse timestep.
class FluxRegister {
 public:
  /// Identify every coarse face on the boundary of the coarsened fine
  /// region (faces whose outside cell lies beyond the fine region but
  /// inside `coarse_domain`).
  FluxRegister(const GridLevel& coarse, const GridLevel& fine,
               const Box& coarse_domain, coord_t ratio, int ncomp);

  /// Record the coarse fluxes of one coarse step (call once, after the
  /// coarse level advanced).  `fluxes[i]` belongs to coarse patch i.
  void add_coarse(const std::vector<FaceFluxes>& fluxes, real_t dt_c);

  /// Accumulate the fine fluxes of one subcycle (call once per subcycle).
  /// `fluxes[i]` belongs to fine patch i.
  void add_fine(const std::vector<FaceFluxes>& fluxes, real_t dt_f);

  /// Apply the corrections to the coarse data.  `dx_c` is the coarse mesh
  /// width (the flux convention makes A/V = 1/dx_c after the ratio-squared
  /// area factor handled in add_fine).
  void apply(GridLevel& coarse, real_t dx_c) const;

  /// Number of registered coarse–fine boundary faces.
  std::size_t num_faces() const { return records_.size(); }

 private:
  struct Record {
    IntVec cell;     ///< high-side coarse cell of the face (face = its low
                     ///< face along `axis`)
    int axis = 0;
    int sign = 0;    ///< +1: outside cell is `cell`; −1: outside is cell−e
    IntVec outside;  ///< the coarse cell receiving the correction
    std::vector<real_t> delta;  ///< Σ Δt_f F_f / r² − Δt_c F_c, per comp
  };

  static key_t face_key(IntVec cell, int axis);
  const Record* find(IntVec cell, int axis) const;
  Record* find(IntVec cell, int axis);

  coord_t ratio_;
  int ncomp_;
  std::vector<Record> records_;
  ExtendibleHash<std::size_t> index_;
};

}  // namespace ssamr

#include "amr/ghost.hpp"

#include <algorithm>
#include <cstdint>

#include "sfc/key_index.hpp"
#include "util/error.hpp"

namespace ssamr {

namespace {
/// Offsets that wrap a region across a periodic domain: for each direction,
/// shift by -extent, 0, +extent.  Identity offset excluded by caller.
std::vector<IntVec> periodic_shifts(const Box& domain) {
  const IntVec e = domain.extent();
  std::vector<IntVec> shifts;
  for (coord_t sz = -1; sz <= 1; ++sz)
    for (coord_t sy = -1; sy <= 1; ++sy)
      for (coord_t sx = -1; sx <= 1; ++sx) {
        if (sx == 0 && sy == 0 && sz == 0) continue;
        shifts.emplace_back(sx * e.x, sy * e.y, sz * e.z);
      }
  return shifts;
}

/// Below this patch count the all-pairs scan is cheaper than building an
/// SFC key index (and is what the plan historically did).
constexpr std::size_t kIndexedBuildPatches = 64;
}  // namespace

GhostPlan::GhostPlan(const GridLevel& lvl, const Box& domain, BoundaryKind bc)
    : domain_(domain), bc_(bc), ncomp_(lvl.ncomp()) {
  const auto& patches = lvl.patches();
  const int g = lvl.ghost();
  // Large levels discover interior neighbors through an SFC key index
  // (O(N log N)) instead of the quadratic scan.  Query results come back
  // ascending, so the op order — (dst-major, src-minor) — is identical to
  // the scan's and the plan stays deterministic either way.  The periodic
  // image pass keeps the direct scan: shifted source frames leave the key
  // cube, and boundary patch counts don't grow with the interior.
  const bool indexed = patches.size() >= kIndexedBuildPatches;
  std::vector<Box> patch_boxes;
  if (indexed) {
    patch_boxes.reserve(patches.size());
    for (const auto& p : patches) patch_boxes.push_back(p.box());
  }
  const SfcKeyIndex index(patch_boxes);
  std::vector<std::uint32_t> candidates;
  for (std::size_t d = 0; d < patches.size(); ++d) {
    const Box dst_ghost = patches[d].box().grown(g);
    if (indexed) {
      index.query(dst_ghost, candidates);
      for (const std::uint32_t c : candidates) {
        const auto s = static_cast<std::size_t>(c);
        if (s == d) continue;
        ops_.push_back({s, d, dst_ghost.intersection(patches[s].box())});
      }
    } else {
      for (std::size_t s = 0; s < patches.size(); ++s) {
        if (s == d) continue;
        const Box overlap = dst_ghost.intersection(patches[s].box());
        if (!overlap.empty()) ops_.push_back({s, d, overlap});
      }
    }
    if (bc_ == BoundaryKind::Periodic) {
      // Ghost cells beyond the domain are images of patches shifted by the
      // domain extent; record a CopyOp whose region is in the *destination*
      // frame (outside the domain) — exchange() translates for the source.
      for (const IntVec& shift : periodic_shifts(domain_)) {
        for (std::size_t s = 0; s < patches.size(); ++s) {
          const Box shifted_src = patches[s].box().shifted(shift);
          const Box overlap = dst_ghost.intersection(shifted_src);
          if (!overlap.empty() && !domain_.contains(overlap))
            ops_.push_back({s, d, overlap});
        }
      }
    }
  }
}

void GhostPlan::exchange(GridLevel& lvl) const {
  auto& patches = lvl.patches();
  for (const CopyOp& op : ops_) {
    GridFunction& dst = patches[op.dst].data();
    const GridFunction& src = patches[op.src].data();
    // Direct copy only when the region lies in the source's *interior*
    // (valid cells); a region inside its ghost storage must be a periodic
    // image and take the wrapped path below.
    if (patches[op.src].box().contains(op.region)) {
      dst.copy_from(src, op.region);
    } else {
      // Periodic image: translate the region into the source frame.
      const IntVec e = domain_.extent();
      for (coord_t sz = -1; sz <= 1; ++sz)
        for (coord_t sy = -1; sy <= 1; ++sy)
          for (coord_t sx = -1; sx <= 1; ++sx) {
            if (sx == 0 && sy == 0 && sz == 0) continue;
            const IntVec shift(sx * e.x, sy * e.y, sz * e.z);
            const Box src_region = op.region.shifted(shift * -1);
            if (patches[op.src].box().contains(src_region)) {
              for (int c = 0; c < ncomp_; ++c)
                for (coord_t k = op.region.lo().z; k <= op.region.hi().z;
                     ++k)
                  for (coord_t j = op.region.lo().y;
                       j <= op.region.hi().y; ++j)
                    for (coord_t i = op.region.lo().x;
                         i <= op.region.hi().x; ++i)
                      dst(c, i, j, k) =
                          src(c, i - shift.x, j - shift.y, k - shift.z);
              goto next_op;
            }
          }
      SSAMR_ASSERT(false, "periodic copy source not found");
    next_op:;
    }
  }
}

void GhostPlan::fill_physical(GridLevel& lvl) const {
  if (bc_ != BoundaryKind::Outflow) return;
  for (Patch& p : lvl.patches()) {
    GridFunction& u = p.data();
    const Box sb = u.storage_box();
    const Box db = domain_;
    // Clamp-extrapolate every storage cell outside the domain to the
    // nearest domain cell (zero-gradient outflow).
    for (int c = 0; c < u.ncomp(); ++c)
      for (coord_t k = sb.lo().z; k <= sb.hi().z; ++k)
        for (coord_t j = sb.lo().y; j <= sb.hi().y; ++j)
          for (coord_t i = sb.lo().x; i <= sb.hi().x; ++i) {
            if (db.contains(IntVec(i, j, k))) continue;
            const coord_t ci = std::clamp(i, db.lo().x, db.hi().x);
            const coord_t cj = std::clamp(j, db.lo().y, db.hi().y);
            const coord_t ck = std::clamp(k, db.lo().z, db.hi().z);
            if (u.storage_box().contains(IntVec(ci, cj, ck)) &&
                p.box().contains(IntVec(ci, cj, ck)))
              u(c, i, j, k) = u(c, ci, cj, ck);
          }
  }
}

std::int64_t GhostPlan::remote_bytes(const GridLevel& lvl) const {
  std::int64_t total = 0;
  const auto& patches = lvl.patches();
  for (const CopyOp& op : ops_) {
    if (patches[op.src].owner() != patches[op.dst].owner())
      total += op.region.cells() * ncomp_ *
               static_cast<std::int64_t>(sizeof(real_t));
  }
  return total;
}

std::int64_t GhostPlan::remote_bytes_touching(const GridLevel& lvl,
                                              rank_t rank) const {
  std::int64_t total = 0;
  const auto& patches = lvl.patches();
  for (const CopyOp& op : ops_) {
    const rank_t so = patches[op.src].owner();
    const rank_t dok = patches[op.dst].owner();
    if (so != dok && (so == rank || dok == rank))
      total += op.region.cells() * ncomp_ *
               static_cast<std::int64_t>(sizeof(real_t));
  }
  return total;
}

}  // namespace ssamr

#pragma once
/// \file ghost.hpp
/// Intra-level ghost-cell exchange: planning (who copies what to whom, and
/// how many bytes that moves between owners) and execution.
///
/// The plan is consumed twice: by the data path (actually copying cells so
/// the solver sees its neighbours) and by the virtual-time executor (the
/// bytes crossing ownership boundaries are the per-iteration communication
/// volume of the paper's cost model).

#include <vector>

#include "amr/level.hpp"
#include "geom/box.hpp"
#include "util/types.hpp"

namespace ssamr {

/// One ghost copy: cells of `region` flow from patch `src` to patch `dst`
/// (indices into the level's patch array).
struct CopyOp {
  std::size_t src = 0;
  std::size_t dst = 0;
  Box region;
};

/// Physical boundary treatment for ghost cells outside the domain.
enum class BoundaryKind {
  Outflow,   ///< zero-gradient extrapolation
  Periodic,  ///< wrap-around
};

/// The ghost-exchange plan for one level.
class GhostPlan {
 public:
  /// Build the plan: for every patch, every ghost cell covered by a sibling
  /// patch becomes a CopyOp.
  /// \param domain the domain box at this level (for periodic wrap checks)
  GhostPlan(const GridLevel& lvl, const Box& domain,
            BoundaryKind bc = BoundaryKind::Outflow);

  const std::vector<CopyOp>& ops() const { return ops_; }

  /// Execute all copies on the level's current data.
  void exchange(GridLevel& lvl) const;

  /// Fill ghost cells outside the domain according to the boundary kind.
  /// (Periodic ghosts are filled by wrapped CopyOps already; this handles
  /// outflow extrapolation.)
  void fill_physical(GridLevel& lvl) const;

  /// Bytes that cross ownership boundaries given each patch's owner
  /// (CopyOps between patches on the same rank are free).
  std::int64_t remote_bytes(const GridLevel& lvl) const;

  /// Bytes sent or received by one rank under the current ownership.
  std::int64_t remote_bytes_touching(const GridLevel& lvl, rank_t rank) const;

 private:
  Box domain_;
  BoundaryKind bc_;
  std::vector<CopyOp> ops_;
  int ncomp_ = 1;
};

}  // namespace ssamr

#pragma once
/// \file grid_function.hpp
/// Cell-centred multi-component field data on one patch, with ghost cells.
///
/// Storage covers box.grown(ghost); indices are *global* index-space
/// coordinates of the patch's level, so copying between overlapping patches
/// needs no index translation.

#include <vector>

#include "geom/box.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Field data on one patch.
class GridFunction {
 public:
  GridFunction() = default;

  /// Allocate zero-initialized data over `box` with `ncomp` components and
  /// `ghost` ghost cells on every face.
  GridFunction(const Box& box, int ncomp, int ghost)
      : box_(box), ncomp_(ncomp), ghost_(ghost) {
    SSAMR_REQUIRE(!box.empty(), "grid function needs a non-empty box");
    SSAMR_REQUIRE(ncomp >= 1, "need at least one component");
    SSAMR_REQUIRE(ghost >= 0, "ghost width must be non-negative");
    storage_ = box.grown(ghost);
    const IntVec e = storage_.extent();
    stride_y_ = e.x;
    stride_z_ = e.x * e.y;
    stride_c_ = stride_z_ * e.z;
    data_.assign(static_cast<std::size_t>(stride_c_) *
                     static_cast<std::size_t>(ncomp),
                 real_t{0});
  }

  /// The interior (valid) region.
  const Box& box() const { return box_; }
  /// The allocated region (interior grown by the ghost width).
  const Box& storage_box() const { return storage_; }
  int ncomp() const { return ncomp_; }
  int ghost() const { return ghost_; }
  bool allocated() const { return !data_.empty(); }

  /// Mutable access at global cell (i,j,k), component c.
  real_t& operator()(int c, coord_t i, coord_t j, coord_t k) {
    return data_[index(c, i, j, k)];
  }
  /// Const access at global cell (i,j,k), component c.
  real_t operator()(int c, coord_t i, coord_t j, coord_t k) const {
    return data_[index(c, i, j, k)];
  }

  /// Fill every component (including ghosts) with a value.
  void fill(real_t v) { data_.assign(data_.size(), v); }

  /// Fill one component (including ghosts) with a value.
  void fill_component(int c, real_t v) {
    SSAMR_REQUIRE(c >= 0 && c < ncomp_, "component out of range");
    const auto begin = static_cast<std::size_t>(c) *
                       static_cast<std::size_t>(stride_c_);
    for (std::size_t i = 0; i < static_cast<std::size_t>(stride_c_); ++i)
      data_[begin + i] = v;
  }

  /// Copy the cells of `region` (global coordinates, must be inside both
  /// storage boxes) from another grid function, all components.
  void copy_from(const GridFunction& src, const Box& region) {
    SSAMR_REQUIRE(src.ncomp_ == ncomp_, "component count mismatch");
    SSAMR_REQUIRE(storage_.contains(region) && src.storage_.contains(region),
                  "copy region must lie in both storage boxes");
    for (int c = 0; c < ncomp_; ++c)
      for (coord_t k = region.lo().z; k <= region.hi().z; ++k)
        for (coord_t j = region.lo().y; j <= region.hi().y; ++j)
          for (coord_t i = region.lo().x; i <= region.hi().x; ++i)
            (*this)(c, i, j, k) = src(c, i, j, k);
  }

  /// Payload size in bytes (used for migration accounting).
  std::int64_t bytes() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(real_t));
  }

  /// Raw storage (test access).
  const std::vector<real_t>& raw() const { return data_; }

 private:
  std::size_t index(int c, coord_t i, coord_t j, coord_t k) const {
    SSAMR_ASSERT(c >= 0 && c < ncomp_, "component out of range");
    SSAMR_ASSERT(storage_.contains(IntVec(i, j, k)),
                 "cell outside storage box");
    const coord_t ox = i - storage_.lo().x;
    const coord_t oy = j - storage_.lo().y;
    const coord_t oz = k - storage_.lo().z;
    return static_cast<std::size_t>(ox + oy * stride_y_ + oz * stride_z_ +
                                    static_cast<coord_t>(c) * stride_c_);
  }

  Box box_;
  Box storage_;
  int ncomp_ = 0;
  int ghost_ = 0;
  coord_t stride_y_ = 0, stride_z_ = 0, stride_c_ = 0;
  std::vector<real_t> data_;
};

}  // namespace ssamr

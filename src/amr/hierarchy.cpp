#include "amr/hierarchy.hpp"

#include "amr/hierarchy_audit.hpp"
#include "util/audit.hpp"
#include "geom/box_algebra.hpp"
#include "util/error.hpp"

namespace ssamr {

GridHierarchy::GridHierarchy(const HierarchyConfig& cfg) : cfg_(cfg) {
  SSAMR_REQUIRE(!cfg.domain.empty(), "hierarchy needs a non-empty domain");
  SSAMR_REQUIRE(cfg.domain.level() == 0, "domain box must be at level 0");
  SSAMR_REQUIRE(cfg.ratio >= 2, "refinement ratio must be >= 2");
  SSAMR_REQUIRE(cfg.max_levels >= 1, "need at least one level");
  SSAMR_REQUIRE(cfg.min_box_size >= 1, "min box size must be >= 1");
  levels_.emplace_back(0, cfg.ncomp, cfg.ghost);
  levels_[0].add_patch(cfg.domain);
}

Box GridHierarchy::domain_at(level_t l) const {
  SSAMR_REQUIRE(l >= 0 && l < cfg_.max_levels, "level out of range");
  if (l == 0) return cfg_.domain;
  return cfg_.domain.refined(cfg_.ratio, l);
}

void GridHierarchy::set_level_boxes(level_t l, const BoxList& boxes) {
  SSAMR_REQUIRE(l >= 1 && l < cfg_.max_levels,
                "can only regrid levels 1..max_levels-1");
  SSAMR_REQUIRE(l <= num_levels(),
                "cannot create a level with no parent level");
  const Box dom = domain_at(l);
  for (const Box& b : boxes) {
    SSAMR_REQUIRE(b.level() == l, "box level mismatch in set_level_boxes");
    SSAMR_REQUIRE(dom.contains(b), "box outside domain");
  }
  SSAMR_REQUIRE(!boxes.has_overlap(), "level boxes must be disjoint");
  if (l >= 2)
    SSAMR_REQUIRE(properly_nested(l, boxes),
                  "level boxes must be properly nested in the parent level");

  if (l == num_levels())
    levels_.emplace_back(l, cfg_.ncomp, cfg_.ghost);
  GridLevel& lvl = levels_[static_cast<std::size_t>(l)];
  lvl.clear();
  for (const Box& b : boxes) lvl.add_patch(b);

  // An empty level truncates everything below it.
  if (boxes.empty()) {
    levels_.resize(static_cast<std::size_t>(l));
    return;
  }
  // Deeper levels must remain nested; drop any now-orphaned boxes.
  for (int deeper = l + 1; deeper < num_levels(); ++deeper) {
    BoxList kept;
    for (const Box& b :
         levels_[static_cast<std::size_t>(deeper)].box_list()) {
      if (properly_nested(deeper, BoxList({std::vector<Box>{b}})))
        kept.push_back(b);
    }
    GridLevel& dl = levels_[static_cast<std::size_t>(deeper)];
    if (kept.size() != dl.num_patches()) {
      dl.clear();
      for (const Box& b : kept) dl.add_patch(b);
    }
    if (dl.num_patches() == 0) {
      levels_.resize(static_cast<std::size_t>(deeper));
      break;
    }
  }

  // Re-audit the whole structure after the mutation: nesting, disjointness
  // and ghost-storage consistency across every surviving level.
  SSAMR_AUDIT(audit::validate_hierarchy(*this));
}

BoxList GridHierarchy::composite_box_list() const {
  BoxList out;
  for (const GridLevel& lvl : levels_) out.append(lvl.box_list());
  return out;
}

std::int64_t GridHierarchy::total_cells() const {
  std::int64_t n = 0;
  for (const GridLevel& lvl : levels_) n += lvl.total_cells();
  return n;
}

bool GridHierarchy::properly_nested(level_t l, const BoxList& boxes) const {
  SSAMR_REQUIRE(l >= 1, "nesting is defined for levels >= 1");
  if (l == 1) return true;  // level 0 covers the whole domain
  if (l > num_levels()) return false;
  const BoxList parents =
      levels_[static_cast<std::size_t>(l - 1)].box_list();
  std::vector<Box> parent_boxes(parents.begin(), parents.end());
  for (const Box& b : boxes) {
    const Box coarse = b.coarsened(cfg_.ratio);
    if (!box_difference(coarse, parent_boxes).empty()) return false;
  }
  return true;
}

}  // namespace ssamr

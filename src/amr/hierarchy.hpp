#pragma once
/// \file hierarchy.hpp
/// The Berger–Oliger adaptive grid hierarchy: a stack of refinement levels
/// over a rectilinear domain, with regridding support.

#include <vector>

#include "amr/level.hpp"
#include "geom/box_list.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Configuration of an adaptive grid hierarchy.
struct HierarchyConfig {
  /// Domain at the coarsest level (level of the box must be 0).
  Box domain;
  /// Refinement ratio between consecutive levels (paper: factor 2).
  coord_t ratio = 2;
  /// Maximum number of levels including the base (paper: 3 levels of
  /// refinement over the base = 4 total; experiments use max_levels = 4).
  int max_levels = 4;
  /// Field components per patch.
  int ncomp = 1;
  /// Ghost width per patch.
  int ghost = 2;
  /// Minimum extent of any refined patch per direction.
  coord_t min_box_size = 4;
  /// Flagged cells are grown by this many cells before clustering so that
  /// features cannot escape the fine region between regrids.
  coord_t flag_buffer = 1;
};

/// A dynamic adaptive grid hierarchy (Berger–Oliger structure).
///
/// Level 0 always covers the whole domain.  Finer levels are arbitrary
/// unions of boxes, properly nested inside their parents.
class GridHierarchy {
 public:
  explicit GridHierarchy(const HierarchyConfig& cfg);

  const HierarchyConfig& config() const { return cfg_; }

  /// Number of levels that currently exist (>= 1).
  int num_levels() const { return static_cast<int>(levels_.size()); }

  GridLevel& level(int l) { return levels_[static_cast<std::size_t>(l)]; }
  const GridLevel& level(int l) const {
    return levels_[static_cast<std::size_t>(l)];
  }

  /// The domain box mapped to level l's index space.
  Box domain_at(level_t l) const;

  /// Replace the patches of level l (and implicitly drop any levels deeper
  /// than the deepest non-empty new level).  Boxes must be at level l,
  /// non-overlapping, inside the domain, and — for l >= 2 — properly nested
  /// in level l-1.  The caller is responsible for re-initializing data
  /// (see interp.hpp for prolongation helpers).
  void set_level_boxes(level_t l, const BoxList& boxes);

  /// The composite box list of the whole hierarchy (all levels).
  BoxList composite_box_list() const;

  /// Total cells over all levels.
  std::int64_t total_cells() const;

  /// True when `boxes` at level l are properly nested in the current level
  /// l-1 patches (every cell's coarsening is covered).
  bool properly_nested(level_t l, const BoxList& boxes) const;

 private:
  HierarchyConfig cfg_;
  std::vector<GridLevel> levels_;
};

}  // namespace ssamr

#include "amr/hierarchy_audit.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "amr/level.hpp"
#include "amr/patch.hpp"
#include "geom/box.hpp"
#include "geom/box_list.hpp"
#include "geom/point.hpp"

namespace ssamr::audit {

namespace {

std::string str(const Box& b) {
  std::ostringstream os;
  os << b;
  return os.str();
}

std::string level_loc(int l) { return "level " + std::to_string(l); }

}  // namespace

AuditReport validate_hierarchy(const GridHierarchy& h,
                               const AuditConfig& /*cfg*/) {
  AuditReport r("hierarchy");
  const HierarchyConfig& cfg = h.config();

  // Level 0 must be exactly the domain.
  {
    const BoxList base = h.level(0).box_list();
    for (const Box& b : base)
      if (!cfg.domain.contains(b))
        r.add(Severity::Error, "hierarchy.bounds", level_loc(0),
              "box " + str(b) + " leaves the domain " + str(cfg.domain));
    if (base.empty() || !base.covers(cfg.domain))
      r.add(Severity::Error, "hierarchy.level0", level_loc(0),
            "level 0 does not cover the domain " + str(cfg.domain));
  }

  for (int l = 0; l < h.num_levels(); ++l) {
    const GridLevel& lvl = h.level(l);
    if (lvl.level() != l)
      r.add(Severity::Error, "hierarchy.level_index", level_loc(l),
            "GridLevel carries level " + std::to_string(lvl.level()));
    if (lvl.ncomp() != cfg.ncomp || lvl.ghost() != cfg.ghost)
      r.add(Severity::Error, "hierarchy.ghost_config", level_loc(l),
            "level has ncomp=" + std::to_string(lvl.ncomp()) + " ghost=" +
                std::to_string(lvl.ghost()) + ", config says ncomp=" +
                std::to_string(cfg.ncomp) + " ghost=" +
                std::to_string(cfg.ghost));

    const Box dom = h.domain_at(l);
    const BoxList boxes = lvl.box_list();
    for (const Box& b : boxes) {
      if (b.level() != l)
        r.add(Severity::Error, "hierarchy.box_level", level_loc(l),
              "box " + str(b) + " carries level " +
                  std::to_string(b.level()));
      if (l > 0 && !dom.contains(b))
        r.add(Severity::Error, "hierarchy.bounds", level_loc(l),
              "box " + str(b) + " leaves the domain " + str(dom));
      if (l >= 1) {
        // Refined patches come from coarse-cell clusters mapped down by the
        // refinement ratio, so their faces must lie on coarse-cell
        // boundaries.
        const IntVec lo = b.lo(), hi = b.hi();
        bool aligned = true;
        for (int d = 0; d < kDim; ++d)
          aligned = aligned && lo[d] % cfg.ratio == 0 &&
                    (hi[d] + 1) % cfg.ratio == 0;
        if (!aligned)
          r.add(Severity::Warning, "hierarchy.alignment", level_loc(l),
                "box " + str(b) + " is not aligned to the refinement ratio " +
                    std::to_string(cfg.ratio));
        const IntVec ext = b.extent();
        if (std::min({ext.x, ext.y, ext.z}) < cfg.min_box_size)
          r.add(Severity::Warning, "hierarchy.min_box", level_loc(l),
                "box " + str(b) + " is smaller than min_box_size " +
                    std::to_string(cfg.min_box_size));
      }
    }

    // Disjointness, pairwise so the offending pair is reported.
    for (std::size_t i = 0; i < boxes.size(); ++i)
      for (std::size_t j = i + 1; j < boxes.size(); ++j)
        if (boxes[i].level() == boxes[j].level() &&
            boxes[i].intersects(boxes[j]))
          r.add(Severity::Error, "hierarchy.overlap", level_loc(l),
                "boxes " + str(boxes[i]) + " and " + str(boxes[j]) +
                    " overlap");

    if (l >= 2 && !h.properly_nested(l, boxes))
      r.add(Severity::Error, "hierarchy.nesting", level_loc(l),
            "level is not properly nested in level " + std::to_string(l - 1));

    // Ghost-region/storage consistency of the patch data.
    for (std::size_t p = 0; p < lvl.num_patches(); ++p) {
      const Patch& patch = lvl.patch(p);
      const std::string loc =
          level_loc(l) + " patch " + std::to_string(p) + " " +
          str(patch.box());
      for (const GridFunction* gf : {&patch.data(), &patch.scratch()}) {
        if (!gf->allocated()) {
          r.add(Severity::Error, "hierarchy.ghost", loc,
                "patch field data is unallocated");
          continue;
        }
        if (gf->box() != patch.box() ||
            gf->storage_box() != patch.box().grown(gf->ghost()))
          r.add(Severity::Error, "hierarchy.ghost", loc,
                "field storage does not match the patch box grown by the "
                "ghost width");
        if (gf->ncomp() != cfg.ncomp || gf->ghost() != cfg.ghost)
          r.add(Severity::Error, "hierarchy.ghost", loc,
                "field has ncomp=" + std::to_string(gf->ncomp()) +
                    " ghost=" + std::to_string(gf->ghost()) +
                    ", config says ncomp=" + std::to_string(cfg.ncomp) +
                    " ghost=" + std::to_string(cfg.ghost));
      }
    }
  }
  return r;
}

}  // namespace ssamr::audit

#pragma once
/// \file hierarchy_audit.hpp
/// Invariant audit of the grid hierarchy.

#include "amr/hierarchy.hpp"
#include "util/audit.hpp"

namespace ssamr::audit {

/// Audit the grid hierarchy: per-level box/level agreement, domain
/// bounds, disjointness, proper nesting (l >= 2), refinement-ratio
/// alignment and minimum box size (warnings), and ghost-region/storage
/// consistency of every patch against the hierarchy configuration.
AuditReport validate_hierarchy(const GridHierarchy& h,
                               const AuditConfig& cfg = {});

}  // namespace ssamr::audit

#include "amr/integrator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "geom/box_algebra.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

BergerOliger::BergerOliger(GridHierarchy& hierarchy, const PatchOperator& op,
                           const ErrorFlagger& flagger, IntegratorConfig cfg)
    : hier_(hierarchy), op_(op), flagger_(flagger), cfg_(cfg) {
  SSAMR_REQUIRE(cfg.cfl > 0 && cfg.cfl < 1, "CFL must be in (0,1)");
  SSAMR_REQUIRE(cfg.regrid_interval >= 1, "regrid interval must be >= 1");
  SSAMR_REQUIRE(cfg.dx0 > 0, "dx0 must be positive");
  SSAMR_REQUIRE(hierarchy.config().ncomp == op.ncomp(),
                "hierarchy ncomp must match the operator");
  SSAMR_REQUIRE(hierarchy.config().ghost >= op.ghost(),
                "hierarchy ghost width must cover the operator stencil");
}

real_t BergerOliger::dx_at(level_t l) const {
  real_t dx = cfg_.dx0;
  for (level_t i = 0; i < l; ++i)
    dx /= static_cast<real_t>(hier_.config().ratio);
  return dx;
}

void BergerOliger::initialize() {
  // Initial data on the base level, then build finer levels by repeated
  // flagging until the hierarchy stops deepening.  Patches are independent,
  // so initial data is set in parallel.
  auto init_level = [this](int l) {
    GridLevel& lvl = hier_.level(l);
    const real_t dx = dx_at(static_cast<level_t>(l));
    ThreadPool::global().parallel_for(
        lvl.num_patches(),
        [&](std::size_t i) { op_.initialize(lvl.patch(i), dx); });
  };
  init_level(0);
  for (int pass = 0; pass < hier_.config().max_levels - 1; ++pass) {
    const int before = hier_.num_levels();
    regrid();
    // Newly created levels got data by prolongation; overwrite with exact
    // initial conditions for a clean start.
    for (int l = 1; l < hier_.num_levels(); ++l) init_level(l);
    if (hier_.num_levels() == before) break;
  }
}

real_t BergerOliger::compute_dt() const {
  real_t dt0 = std::numeric_limits<real_t>::infinity();
  for (int l = 0; l < hier_.num_levels(); ++l) {
    // Fixed-order max over the patches: the reduction is evaluated per
    // patch in parallel and combined in patch order, so the result is
    // bit-identical to the serial loop.
    const GridLevel& lvl = hier_.level(l);
    const real_t speed = ThreadPool::global().transform_reduce_ordered(
        lvl.num_patches(), real_t{0},
        [&](std::size_t i) { return op_.max_wave_speed(lvl.patch(i)); },
        [](real_t a, real_t b) { return std::max(a, b); });
    if (speed <= 0) continue;
    // A level-l step is dt0 / ratio^l; require cfl at every level.
    real_t scale = 1;
    for (int i = 0; i < l; ++i)
      scale *= static_cast<real_t>(hier_.config().ratio);
    dt0 = std::min(dt0, cfg_.cfl * dx_at(l) * scale / speed);
  }
  SSAMR_REQUIRE(std::isfinite(dt0),
                "no finite wave speed anywhere — cannot pick a timestep");
  return dt0;
}

void PatchOperator::advance_capture(Patch&, real_t, real_t,
                                    FaceFluxes&) const {
  SSAMR_REQUIRE(false,
                "this PatchOperator does not support flux capture");
}

real_t BergerOliger::advance_step() {
  if (step_ > 0 && step_ % cfg_.regrid_interval == 0) regrid();
  const real_t dt = compute_dt();
  advance_level(0, dt, nullptr);
  ++step_;
  time_ += dt;
  return dt;
}

void BergerOliger::fill_ghosts(int l) {
  GridLevel& lvl = hier_.level(l);
  if (l > 0)
    fill_coarse_fine_ghosts(hier_.level(l - 1), lvl, hier_.config().ratio,
                            cfg_.prolong);
  GhostPlan plan(lvl, hier_.domain_at(l), cfg_.bc);
  plan.exchange(lvl);
  plan.fill_physical(lvl);
}

void BergerOliger::advance_level(int l, real_t dt,
                                 FluxRegister* parent_register) {
  fill_ghosts(l);
  GridLevel& lvl = hier_.level(l);
  const real_t dx = dx_at(l);
  const bool has_child = l + 1 < hier_.num_levels();
  const bool want_own_register =
      cfg_.reflux && has_child && op_.supports_flux_capture();

  std::unique_ptr<FluxRegister> reg;
  if (want_own_register)
    reg = std::make_unique<FluxRegister>(lvl, hier_.level(l + 1),
                                         hier_.domain_at(l),
                                         hier_.config().ratio, op_.ncomp());

  // Per-patch advance: ghosts are already filled and each kernel touches
  // only its own patch (and its flux slot), so patches run in parallel.
  // Flux slots are indexed by patch, keeping the register updates below in
  // the same fixed patch order as the serial path.
  const bool capture = parent_register != nullptr || reg != nullptr;
  std::vector<FaceFluxes> fluxes;
  if (capture) fluxes.resize(lvl.num_patches());
  ThreadPool::global().parallel_for(
      lvl.num_patches(), [&](std::size_t i) {
        Patch& p = lvl.patch(i);
        if (capture) {
          fluxes[i] = FaceFluxes(p.box(), op_.ncomp());
          op_.advance_capture(p, dt, dx, fluxes[i]);
        } else {
          op_.advance(p, dt, dx);
        }
        p.swap_time_levels();
      });
  if (parent_register != nullptr) parent_register->add_fine(fluxes, dt);
  if (reg) reg->add_coarse(fluxes, dt);

  if (has_child) {
    const coord_t r = hier_.config().ratio;
    for (coord_t sub = 0; sub < r; ++sub)
      advance_level(l + 1, dt / static_cast<real_t>(r), reg.get());
    restrict_level(hier_.level(l + 1), lvl, r);
    if (reg) reg->apply(lvl, dx);
  }
}

void BergerOliger::regrid_level_above(int l) {
  // Flags on level l define the new level l+1.
  GridLevel& parent = hier_.level(l);
  std::vector<IntVec> flags;
  flagger_.flag_level(parent, flags);
  std::vector<IntVec> buffered =
      buffer_flags(flags, hier_.config().flag_buffer, hier_.domain_at(l));
  // Keep the flags inside the parent level's box union so the refined
  // boxes stay properly nested.
  if (l >= 1) {
    std::vector<IntVec> kept;
    kept.reserve(buffered.size());
    for (const IntVec& f : buffered)
      if (parent.find_patch_containing(f) != GridLevel::npos)
        kept.push_back(f);
    buffered = std::move(kept);
  }

  ClusterConfig ccfg = cfg_.cluster;
  ccfg.min_box_size =
      std::max<coord_t>(ccfg.min_box_size,
                        hier_.config().min_box_size / hier_.config().ratio);
  auto coarse_boxes = cluster_flags(buffered, l, ccfg);
  // Cluster bounding boxes can bridge gaps between disjoint parent
  // patches; clip against the parent union so the new level nests.
  if (l >= 1) {
    std::vector<Box> clipped;
    for (const Box& b : coarse_boxes)
      for (const Patch& pp : parent.patches()) {
        const Box piece = b.intersection(pp.box());
        if (!piece.empty()) clipped.push_back(piece);
      }
    coarse_boxes = coalesce(std::move(clipped));
  }
  BoxList fine_boxes;
  for (const Box& b : coarse_boxes)
    fine_boxes.push_back(b.refined(hier_.config().ratio));

  // Preserve data: remember the old level (if any), install the new boxes,
  // then fill by copy-overlap + prolongation.
  const bool existed = l + 1 < hier_.num_levels();
  GridLevel old_level =
      existed ? std::move(hier_.level(l + 1)) : GridLevel(l + 1, 0, 0);
  hier_.set_level_boxes(l + 1, fine_boxes);
  if (l + 1 >= hier_.num_levels()) return;  // level vanished
  // set_level_boxes can grow the hierarchy's level array, invalidating
  // references taken before the call — re-acquire the parent, do not reuse
  // `parent` from above.
  GridLevel& fresh = hier_.level(l + 1);
  prolong_level(hier_.level(l), fresh, hier_.config().ratio, cfg_.prolong);
  if (existed) copy_overlap(old_level, fresh);
}

void BergerOliger::regrid() {
  const int deepest_parent =
      std::min(hier_.num_levels(), hier_.config().max_levels - 1);
  for (int l = 0; l < deepest_parent; ++l) {
    if (l >= hier_.num_levels()) break;  // levels can vanish as we go
    regrid_level_above(l);
  }
  ++regrid_count_;
  SSAMR_DEBUG << "regrid #" << regrid_count_ << ": levels="
              << hier_.num_levels() << " cells=" << hier_.total_cells();
}

}  // namespace ssamr

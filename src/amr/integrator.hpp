#pragma once
/// \file integrator.hpp
/// Recursive Berger–Oliger time integration with subcycling, plus the
/// regridding driver (flag → cluster → rebuild levels → transfer data).
///
/// This is the "Time Integration / Inter-Grid Operations / Regriding"
/// triple of §3 of the paper.

#include <memory>
#include <vector>

#include "amr/cluster_br.hpp"
#include "amr/face_flux.hpp"
#include "amr/flux_register.hpp"
#include "amr/flagging.hpp"
#include "amr/ghost.hpp"
#include "amr/hierarchy.hpp"
#include "amr/interp.hpp"
#include "util/types.hpp"

namespace ssamr {

/// The numerical kernel applied to each patch (the application).
class PatchOperator {
 public:
  virtual ~PatchOperator() = default;

  /// Field components the kernel evolves.
  virtual int ncomp() const = 0;
  /// Ghost width the kernel's stencil needs.
  virtual int ghost() const = 0;

  /// Set initial conditions on a patch.  `dx` is the cell width at the
  /// patch's level; cell centres are at ((i+0.5)dx, (j+0.5)dx, (k+0.5)dx).
  virtual void initialize(Patch& p, real_t dx) const = 0;

  /// Largest signal speed on the patch (for CFL control); must be > 0 for
  /// any state the kernel can reach.
  virtual real_t max_wave_speed(const Patch& p) const = 0;

  /// Advance the patch by dt: read p.data() (ghosts pre-filled), write the
  /// updated interior into p.scratch().  The integrator swaps time levels.
  virtual void advance(Patch& p, real_t dt, real_t dx) const = 0;

  /// True when the kernel can report its face fluxes (required for
  /// conservative refluxing at coarse-fine boundaries).
  virtual bool supports_flux_capture() const { return false; }

  /// Like advance(), additionally storing the numerical face fluxes used
  /// for the update into `fluxes` (see face_flux.hpp for the convention).
  /// Only called when supports_flux_capture() is true.
  virtual void advance_capture(Patch& p, real_t dt, real_t dx,
                               FaceFluxes& fluxes) const;
};

/// Integration parameters.
struct IntegratorConfig {
  real_t cfl = 0.4;
  /// Regrid every this many coarse steps (the paper's experiments regrid
  /// every ~5 iterations).
  int regrid_interval = 5;
  /// Mesh width of the coarsest level.
  real_t dx0 = 1.0;
  BoundaryKind bc = BoundaryKind::Outflow;
  ProlongKind prolong = ProlongKind::Trilinear;
  ClusterConfig cluster;
  /// Enforce conservation at coarse-fine boundaries by refluxing
  /// (requires a PatchOperator with supports_flux_capture()).
  bool reflux = false;
};

/// The Berger–Oliger driver.
class BergerOliger {
 public:
  /// All referenced objects must outlive the integrator.
  BergerOliger(GridHierarchy& hierarchy, const PatchOperator& op,
               const ErrorFlagger& flagger, IntegratorConfig cfg);

  /// Set initial conditions and build the initial refined levels (repeated
  /// flag/cluster passes until the hierarchy is stable or max depth).
  void initialize();

  /// Stable coarse-level timestep under the configured CFL number.
  real_t compute_dt() const;

  /// Advance one coarse timestep (recursively subcycling finer levels),
  /// regridding every regrid_interval steps.  Returns the dt taken.
  real_t advance_step();

  /// Flag/cluster/rebuild all refinable levels now.
  void regrid();

  /// Coarse steps taken since initialize().
  int step() const { return step_; }
  /// Number of regrids performed (including the one in initialize()).
  int regrid_count() const { return regrid_count_; }
  /// Physical time reached.
  real_t time() const { return time_; }
  /// Mesh width at a level.
  real_t dx_at(level_t l) const;

  const IntegratorConfig& config() const { return cfg_; }

 private:
  void advance_level(int l, real_t dt, FluxRegister* parent_register);
  void fill_ghosts(int l);
  void regrid_level_above(int l);

  GridHierarchy& hier_;
  const PatchOperator& op_;
  const ErrorFlagger& flagger_;
  IntegratorConfig cfg_;
  int step_ = 0;
  int regrid_count_ = 0;
  real_t time_ = 0;
};

}  // namespace ssamr

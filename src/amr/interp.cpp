#include "amr/interp.hpp"

#include <algorithm>
#include <cmath>

#include "geom/box_algebra.hpp"
#include "util/error.hpp"

namespace ssamr {

namespace {

coord_t floor_div(coord_t a, coord_t b) {
  coord_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// minmod limiter for trilinear slopes.
real_t minmod(real_t a, real_t b) {
  if (a * b <= 0) return 0;
  return std::abs(a) < std::abs(b) ? a : b;
}

/// One-dimensional limited slope of the coarse field at cell i (global
/// coarse coordinates, clamped to the patch box).
real_t slope(const GridFunction& u, int c, IntVec cell, int axis,
             const Box& b) {
  IntVec lo = cell, hi = cell;
  lo.at(axis) = std::max(cell[axis] - 1, b.lo()[axis]);
  hi.at(axis) = std::min(cell[axis] + 1, b.hi()[axis]);
  if (lo[axis] == cell[axis] || hi[axis] == cell[axis]) return 0;
  const real_t left = u(c, cell.x, cell.y, cell.z) - u(c, lo.x, lo.y, lo.z);
  const real_t right = u(c, hi.x, hi.y, hi.z) - u(c, cell.x, cell.y, cell.z);
  return minmod(left, right);
}

}  // namespace

void prolong_region(const GridLevel& coarse, Patch& fine, const Box& region,
                    coord_t ratio, ProlongKind kind) {
  SSAMR_REQUIRE(ratio >= 2, "ratio must be >= 2");
  GridFunction& uf = fine.data();
  for (coord_t k = region.lo().z; k <= region.hi().z; ++k) {
    for (coord_t j = region.lo().y; j <= region.hi().y; ++j) {
      for (coord_t i = region.lo().x; i <= region.hi().x; ++i) {
        if (!uf.storage_box().contains(IntVec(i, j, k))) continue;
        const IntVec cc(floor_div(i, ratio), floor_div(j, ratio),
                        floor_div(k, ratio));
        const std::size_t pi = coarse.find_patch_containing(cc);
        if (pi == GridLevel::npos) continue;
        const GridFunction& uc = coarse.patch(pi).data();
        const Box& cb = coarse.patch(pi).box();
        for (int c = 0; c < uf.ncomp(); ++c) {
          real_t v = uc(c, cc.x, cc.y, cc.z);
          if (kind == ProlongKind::Trilinear) {
            // Offset of the fine cell centre from the coarse cell centre,
            // in coarse-cell units: ((sub + 0.5) / ratio) - 0.5.
            const real_t fx =
                (static_cast<real_t>(i - cc.x * ratio) + 0.5) /
                    static_cast<real_t>(ratio) -
                0.5;
            const real_t fy =
                (static_cast<real_t>(j - cc.y * ratio) + 0.5) /
                    static_cast<real_t>(ratio) -
                0.5;
            const real_t fz =
                (static_cast<real_t>(k - cc.z * ratio) + 0.5) /
                    static_cast<real_t>(ratio) -
                0.5;
            v += fx * slope(uc, c, cc, 0, cb) + fy * slope(uc, c, cc, 1, cb) +
                 fz * slope(uc, c, cc, 2, cb);
          }
          uf(c, i, j, k) = v;
        }
      }
    }
  }
}

void prolong_level(const GridLevel& coarse, GridLevel& fine_lvl,
                   coord_t ratio, ProlongKind kind) {
  for (Patch& p : fine_lvl.patches())
    prolong_region(coarse, p, p.box(), ratio, kind);
}

void copy_overlap(const GridLevel& old_lvl, GridLevel& fine_lvl) {
  for (Patch& np : fine_lvl.patches()) {
    for (const Patch& op : old_lvl.patches()) {
      const Box overlap = np.box().intersection(op.box());
      if (!overlap.empty()) np.data().copy_from(op.data(), overlap);
    }
  }
}

void fill_coarse_fine_ghosts(const GridLevel& coarse, GridLevel& fine_lvl,
                             coord_t ratio, ProlongKind kind) {
  for (Patch& p : fine_lvl.patches()) {
    const Box ghost_box = p.box().grown(p.data().ghost());
    // Prolong only the ghost shell (grown box minus interior); cells that
    // sibling patches cover will be overwritten by the subsequent
    // intra-level exchange with the exact fine values.
    for (const Box& shell : box_difference(ghost_box, p.box()))
      prolong_region(coarse, p, shell, ratio, kind);
  }
}

void restrict_level(const GridLevel& fine_lvl, GridLevel& coarse,
                    coord_t ratio) {
  SSAMR_REQUIRE(ratio >= 2, "ratio must be >= 2");
  const real_t inv = 1.0 / static_cast<real_t>(ratio * ratio * ratio);
  for (Patch& cp : coarse.patches()) {
    GridFunction& uc = cp.data();
    for (const Patch& fp : fine_lvl.patches()) {
      const Box shadow = fp.box().coarsened(ratio).intersection(cp.box());
      if (shadow.empty()) continue;
      const GridFunction& uf = fp.data();
      for (int c = 0; c < uc.ncomp(); ++c) {
        for (coord_t k = shadow.lo().z; k <= shadow.hi().z; ++k) {
          for (coord_t j = shadow.lo().y; j <= shadow.hi().y; ++j) {
            for (coord_t i = shadow.lo().x; i <= shadow.hi().x; ++i) {
              real_t sum = 0;
              for (coord_t dk = 0; dk < ratio; ++dk)
                for (coord_t dj = 0; dj < ratio; ++dj)
                  for (coord_t di = 0; di < ratio; ++di)
                    sum += uf(c, i * ratio + di, j * ratio + dj,
                              k * ratio + dk);
              uc(c, i, j, k) = sum * inv;
            }
          }
        }
      }
    }
  }
}

}  // namespace ssamr

#pragma once
/// \file interp.hpp
/// Inter-grid transfer operators of the Berger–Oliger scheme:
/// *prolongation* (coarse → fine, used to initialize newly refined patches
/// and to fill fine ghost cells at coarse-fine boundaries) and
/// *restriction* (fine → coarse, injecting the better fine solution back).

#include "amr/hierarchy.hpp"
#include "amr/level.hpp"
#include "util/types.hpp"

namespace ssamr {

/// How prolongation interpolates.
enum class ProlongKind {
  PiecewiseConstant,  ///< copy the parent cell value (conservative)
  Trilinear,          ///< limited trilinear from parent cell centres
};

/// Fill `region` (cells of fine patch `fine`, global fine coordinates) by
/// interpolating from the coarse level.  Cells whose parent is not found on
/// the coarse level are left untouched.
void prolong_region(const GridLevel& coarse, Patch& fine, const Box& region,
                    coord_t ratio, ProlongKind kind);

/// Initialize every cell of every patch of `fine_lvl` from `coarse`.
void prolong_level(const GridLevel& coarse, GridLevel& fine_lvl,
                   coord_t ratio, ProlongKind kind);

/// Copy data from `old_lvl` patches into `fine_lvl` patches where boxes
/// overlap (same level) — used during regridding so already-fine data is
/// not lost, then prolong the remainder.
void copy_overlap(const GridLevel& old_lvl, GridLevel& fine_lvl);

/// Fill fine ghost cells not covered by sibling patches by prolongation
/// from the coarse level (coarse-fine boundary treatment).
void fill_coarse_fine_ghosts(const GridLevel& coarse, GridLevel& fine_lvl,
                             coord_t ratio, ProlongKind kind);

/// Restrict (average) fine data onto the underlying coarse cells.
void restrict_level(const GridLevel& fine_lvl, GridLevel& coarse,
                    coord_t ratio);

}  // namespace ssamr

#include "amr/level.hpp"

#include "util/error.hpp"

namespace ssamr {

GridLevel::GridLevel(level_t level, int ncomp, int ghost)
    : level_(level), ncomp_(ncomp), ghost_(ghost) {
  SSAMR_REQUIRE(level >= 0, "level must be non-negative");
}

Patch& GridLevel::add_patch(const Box& box) {
  SSAMR_REQUIRE(box.level() == level_, "patch box level must match");
  SSAMR_REQUIRE(!box.empty(), "patch box must be non-empty");
  patches_.emplace_back(box, ncomp_, ghost_);
  return patches_.back();
}

BoxList GridLevel::box_list() const {
  BoxList out;
  for (const Patch& p : patches_) out.push_back(p.box());
  return out;
}

std::int64_t GridLevel::total_cells() const {
  std::int64_t n = 0;
  for (const Patch& p : patches_) n += p.box().cells();
  return n;
}

std::size_t GridLevel::find_patch_containing(IntVec cell) const {
  for (std::size_t i = 0; i < patches_.size(); ++i)
    if (patches_[i].box().contains(cell)) return i;
  return npos;
}

}  // namespace ssamr

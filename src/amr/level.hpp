#pragma once
/// \file level.hpp
/// One refinement level of the adaptive grid hierarchy: a set of
/// non-overlapping patches sharing a mesh resolution.

#include <vector>

#include "amr/patch.hpp"
#include "geom/box_list.hpp"
#include "util/types.hpp"

namespace ssamr {

/// A refinement level: patches plus level-wide metadata.
class GridLevel {
 public:
  GridLevel() = default;

  /// \param level level number (0 = coarsest)
  /// \param ncomp field components per patch
  /// \param ghost ghost width per patch
  GridLevel(level_t level, int ncomp, int ghost);

  level_t level() const { return level_; }
  int ncomp() const { return ncomp_; }
  int ghost() const { return ghost_; }

  std::size_t num_patches() const { return patches_.size(); }
  Patch& patch(std::size_t i) { return patches_[i]; }
  const Patch& patch(std::size_t i) const { return patches_[i]; }
  std::vector<Patch>& patches() { return patches_; }
  const std::vector<Patch>& patches() const { return patches_; }

  /// Append a new zero-initialized patch over `box` (whose level must match).
  Patch& add_patch(const Box& box);

  /// Remove every patch.
  void clear() { patches_.clear(); }

  /// The boxes of all patches, in patch order.
  BoxList box_list() const;

  /// Total interior cells over all patches.
  std::int64_t total_cells() const;

  /// Index of the first patch whose box contains the cell, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_patch_containing(IntVec cell) const;

 private:
  level_t level_ = 0;
  int ncomp_ = 1;
  int ghost_ = 1;
  std::vector<Patch> patches_;
};

}  // namespace ssamr

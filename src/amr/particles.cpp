#include "amr/particles.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ssamr {

namespace {

/// Reflect `v` into [0, span) by folding at the walls.  span must be > 0.
real_t reflect_into(real_t v, real_t span) {
  // Fold the real line onto [0, 2*span) then mirror the upper half.  A
  // couple of iterations suffice for the few-sigma excursions a Gaussian
  // draw can produce; the loop guards pathological inputs.
  const real_t period = 2 * span;
  real_t r = std::fmod(v, period);
  if (r < 0) r += period;
  if (r >= span) r = period - r;
  // fmod can land exactly on span after the mirror step when v is an exact
  // multiple; fold once more and clamp away from the open upper bound.
  if (r >= span)
    r = std::nextafter(span, real_t{0});
  return r;
}

}  // namespace

ParticleField ParticleField::gaussian_cloud(const Box& base_domain,
                                            const ParticleCloudConfig& cfg,
                                            real_t center_x) {
  SSAMR_REQUIRE(cfg.count >= 0, "particle count must be non-negative");
  SSAMR_REQUIRE(base_domain.level() == 0,
                "particle domain must be a level-0 box");
  ParticleField field;
  if (cfg.count == 0) return field;
  SSAMR_REQUIRE(!base_domain.empty(), "particle domain must be non-empty");

  const IntVec ext = base_domain.extent();
  const real_t ex = static_cast<real_t>(ext.x);
  const real_t ey = static_cast<real_t>(ext.y);
  const real_t ez = static_cast<real_t>(ext.z);
  const real_t cx = center_x * ex;
  const real_t sy = cfg.sigma_yz_frac * ey;
  const real_t sz = cfg.sigma_yz_frac * ez;

  field.xs_.reserve(static_cast<std::size_t>(cfg.count));
  field.ys_.reserve(static_cast<std::size_t>(cfg.count));
  field.zs_.reserve(static_cast<std::size_t>(cfg.count));
  Rng rng(cfg.seed);
  const real_t lox = static_cast<real_t>(base_domain.lo().x);
  const real_t loy = static_cast<real_t>(base_domain.lo().y);
  const real_t loz = static_cast<real_t>(base_domain.lo().z);
  for (std::int64_t i = 0; i < cfg.count; ++i) {
    // Fixed draw order (x, y, z) so the stream is position-independent of
    // any future config fields.
    const real_t px = rng.normal(cx, cfg.sigma_x);
    const real_t py = rng.normal(ey / 2, sy);
    const real_t pz = rng.normal(ez / 2, sz);
    field.xs_.push_back(lox + reflect_into(px, ex));
    field.ys_.push_back(loy + reflect_into(py, ey));
    field.zs_.push_back(loz + reflect_into(pz, ez));
  }
  return field;
}

std::int64_t ParticleField::count_in(const Box& b, coord_t ratio) const {
  if (xs_.empty() || b.empty()) return 0;
  SSAMR_REQUIRE(ratio >= 2, "refinement ratio must be >= 2");
  real_t scale = 1;
  for (level_t l = 0; l < b.level(); ++l)
    scale *= static_cast<real_t>(ratio);
  // Half-open interval [lo, hi+1) per dimension in the box's own index
  // space; the same scaled coordinate is compared against every box, so
  // counts are exactly additive across a partition of the index space.
  const real_t lox = static_cast<real_t>(b.lo().x);
  const real_t loy = static_cast<real_t>(b.lo().y);
  const real_t loz = static_cast<real_t>(b.lo().z);
  const real_t hix = static_cast<real_t>(b.hi().x + 1);
  const real_t hiy = static_cast<real_t>(b.hi().y + 1);
  const real_t hiz = static_cast<real_t>(b.hi().z + 1);
  std::int64_t count = 0;
  const std::size_t n = xs_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const real_t sx = xs_[i] * scale;
    if (sx < lox || sx >= hix) continue;
    const real_t sy = ys_[i] * scale;
    if (sy < loy || sy >= hiy) continue;
    const real_t sz = zs_[i] * scale;
    if (sz < loz || sz >= hiz) continue;
    ++count;
  }
  return count;
}

}  // namespace ssamr

#pragma once
/// \file particles.hpp
/// Deterministic particle clouds for the dual-constraint cost model.
///
/// The AMReX load-balancing study (PAPERS.md) shows that partitioner
/// rankings flip once particles impose a second cost constraint besides
/// cells: a box's load is then cells + particles it carries, and particle
/// density is far less uniform than cell count.  A ParticleField is a
/// fixed, seeded set of particle positions in *base-level* cell
/// coordinates; the work model (amr/workload.hpp) counts the particles a
/// box covers and prices them alongside its cells.
///
/// Two properties the partition audits rely on:
///   * Determinism: equal (config, center) always produces the identical
///     particle set (util/rng.hpp, fixed draw order).
///   * Exact additivity: a particle lies in a level-l box iff its scaled
///     position p * ratio^l falls in the box's half-open index interval
///     [lo, hi+1) per dimension.  Splitting a box partitions that integer
///     interval, so counts over split pieces sum to the parent's count
///     exactly — particle work is conserved bit-for-bit under splitting.

#include <cstdint>
#include <vector>

#include "geom/box.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Parameters of a deterministic Gaussian particle cloud.
struct ParticleCloudConfig {
  /// Number of particles; 0 disables the field entirely.
  std::int64_t count = 0;
  /// Seed for the position draws; equal seeds give identical clouds.
  std::uint64_t seed = 0x9a271e5ULL;
  /// Standard deviation of the cloud along x, in base-level cells.
  real_t sigma_x = 6.0;
  /// Standard deviation across y and z as a fraction of each extent
  /// (particles concentrate toward the transverse center of the domain).
  real_t sigma_yz_frac = 0.25;
};

/// A fixed set of particle positions in base-level cell coordinates.
class ParticleField {
 public:
  ParticleField() = default;

  /// A Gaussian cloud centered at `center_x` (fraction of the domain
  /// x-extent) inside `base_domain` (a level-0 box).  Positions falling
  /// outside the domain are reflected back in, so the count is always
  /// exactly cfg.count.  Equal (domain, cfg, center_x) yields the
  /// bit-identical cloud — the drift of a moving cloud is modelled by
  /// re-generating with the same seed at a new center, which translates
  /// every particle coherently.
  static ParticleField gaussian_cloud(const Box& base_domain,
                                      const ParticleCloudConfig& cfg,
                                      real_t center_x);

  /// Number of particles inside box `b` (level `b.level()`, refinement
  /// `ratio` between levels).  Exactly additive over same-level splits.
  std::int64_t count_in(const Box& b, coord_t ratio) const;

  std::int64_t size() const {
    return static_cast<std::int64_t>(xs_.size());
  }
  bool empty() const { return xs_.empty(); }

 private:
  // Structure-of-arrays: count_in is a hot, branchy scan.
  std::vector<real_t> xs_, ys_, zs_;
};

}  // namespace ssamr

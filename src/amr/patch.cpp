#include "amr/patch.hpp"

namespace ssamr {

Patch::Patch(const Box& box, int ncomp, int ghost)
    : box_(box),
      data_(box, ncomp, ghost),
      scratch_(box, ncomp, ghost) {}

}  // namespace ssamr

#pragma once
/// \file patch.hpp
/// A patch: one rectilinear component grid of the adaptive hierarchy,
/// carrying its field data and bookkeeping for distribution.

#include <cstdint>
#include <utility>

#include "amr/grid_function.hpp"
#include "geom/box.hpp"
#include "util/types.hpp"

namespace ssamr {

/// One component grid (bounding box + cell data) at some level.
class Patch {
 public:
  Patch() = default;

  /// Allocate a patch over `box` with `ncomp` components and `ghost` ghost
  /// cells.
  Patch(const Box& box, int ncomp, int ghost);

  const Box& box() const { return box_; }
  level_t level() const { return box_.level(); }

  /// Field data (current time level).
  GridFunction& data() { return data_; }
  const GridFunction& data() const { return data_; }

  /// Scratch data used as the update target during time integration; same
  /// shape as data().
  GridFunction& scratch() { return scratch_; }
  const GridFunction& scratch() const { return scratch_; }

  /// Swap data and scratch after an update.
  void swap_time_levels() { std::swap(data_, scratch_); }

  /// Rank that owns this patch in the (simulated) distribution.
  rank_t owner() const { return owner_; }
  void set_owner(rank_t r) { owner_ = r; }

  /// Bytes of field payload (both time levels).
  std::int64_t bytes() const { return data_.bytes() + scratch_.bytes(); }

 private:
  Box box_;
  GridFunction data_;
  GridFunction scratch_;
  rank_t owner_ = -1;
};

}  // namespace ssamr

#include "amr/richardson.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ssamr {

namespace {

coord_t floor_div(coord_t a, coord_t b) {
  coord_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

/// Fill the ghost shell of `u` by clamping to the nearest interior cell —
/// a zero-gradient probe boundary adequate for error estimation.
void clamp_fill_ghosts(GridFunction& u, const Box& interior) {
  const Box sb = u.storage_box();
  for (int c = 0; c < u.ncomp(); ++c)
    for (coord_t k = sb.lo().z; k <= sb.hi().z; ++k)
      for (coord_t j = sb.lo().y; j <= sb.hi().y; ++j)
        for (coord_t i = sb.lo().x; i <= sb.hi().x; ++i) {
          if (interior.contains(IntVec(i, j, k))) continue;
          const coord_t ci = std::clamp(i, interior.lo().x, interior.hi().x);
          const coord_t cj = std::clamp(j, interior.lo().y, interior.hi().y);
          const coord_t ck = std::clamp(k, interior.lo().z, interior.hi().z);
          u(c, i, j, k) = u(c, ci, cj, ck);
        }
}

}  // namespace

RichardsonFlagger::RichardsonFlagger(const PatchOperator& op, real_t tol,
                                     int order, real_t cfl)
    : op_(op), tol_(tol), order_(order), cfl_(cfl) {
  SSAMR_REQUIRE(tol > 0, "tolerance must be positive");
  SSAMR_REQUIRE(order >= 1, "order must be >= 1");
  SSAMR_REQUIRE(cfl > 0 && cfl < 1, "CFL must be in (0,1)");
}

GridFunction RichardsonFlagger::estimate_patch_error(const Patch& p) const {
  const Box& fbox = p.box();
  const int ncomp = op_.ncomp();
  const int ghost = std::max(op_.ghost(), 1);

  // Probe timestep from the patch's own wave speed (dx taken as 1: the
  // Richardson difference is invariant to the common scale).
  const real_t speed = std::max(op_.max_wave_speed(p), real_t{1e-12});
  const real_t dt = cfl_ / speed;

  // Fine probe: one step at the patch resolution.
  Patch fine(fbox, ncomp, ghost);
  fine.data().copy_from(p.data(), fbox);
  clamp_fill_ghosts(fine.data(), fbox);
  op_.advance(fine, dt, /*dx=*/1.0);
  fine.swap_time_levels();

  // Coarse probe: restrict the initial data to mesh width 2, take one
  // double step.  (Computed directly rather than via Box::coarsened so the
  // probe works on level-0 patches too; the level tag is irrelevant here.)
  const Box cbox(IntVec(floor_div(fbox.lo().x, 2), floor_div(fbox.lo().y, 2),
                        floor_div(fbox.lo().z, 2)),
                 IntVec(floor_div(fbox.hi().x, 2), floor_div(fbox.hi().y, 2),
                        floor_div(fbox.hi().z, 2)),
                 fbox.level());
  Patch coarse(cbox, ncomp, ghost);
  {
    GridFunction& uc = coarse.data();
    const GridFunction& uf = p.data();
    for (int c = 0; c < ncomp; ++c)
      for (coord_t k = cbox.lo().z; k <= cbox.hi().z; ++k)
        for (coord_t j = cbox.lo().y; j <= cbox.hi().y; ++j)
          for (coord_t i = cbox.lo().x; i <= cbox.hi().x; ++i) {
            real_t sum = 0;
            int n = 0;
            for (coord_t dk = 0; dk < 2; ++dk)
              for (coord_t dj = 0; dj < 2; ++dj)
                for (coord_t di = 0; di < 2; ++di) {
                  const IntVec child(i * 2 + di, j * 2 + dj, k * 2 + dk);
                  if (fbox.contains(child)) {
                    sum += uf(c, child.x, child.y, child.z);
                    ++n;
                  }
                }
            uc(c, i, j, k) = n > 0 ? sum / n : 0;
          }
  }
  clamp_fill_ghosts(coarse.data(), cbox);
  op_.advance(coarse, 2 * dt, /*dx=*/2.0);
  coarse.swap_time_levels();

  // Error per coarse cell: |restrict(fine) − coarse| / (2^{p+1} − 2),
  // max over components.
  const real_t denom = std::pow(2.0, order_ + 1) - 2.0;
  GridFunction err(cbox, 1, 0);
  for (coord_t k = cbox.lo().z; k <= cbox.hi().z; ++k)
    for (coord_t j = cbox.lo().y; j <= cbox.hi().y; ++j)
      for (coord_t i = cbox.lo().x; i <= cbox.hi().x; ++i) {
        real_t worst = 0;
        for (int c = 0; c < ncomp; ++c) {
          real_t sum = 0;
          int n = 0;
          for (coord_t dk = 0; dk < 2; ++dk)
            for (coord_t dj = 0; dj < 2; ++dj)
              for (coord_t di = 0; di < 2; ++di) {
                const IntVec child(i * 2 + di, j * 2 + dj, k * 2 + dk);
                if (fbox.contains(child)) {
                  sum += fine.data()(c, child.x, child.y, child.z);
                  ++n;
                }
              }
          if (n == 0) continue;
          const real_t fine_avg = sum / n;
          worst = std::max(
              worst, std::abs(fine_avg - coarse.data()(c, i, j, k)));
        }
        err(0, i, j, k) = worst / denom;
      }
  return err;
}

void RichardsonFlagger::flag_level(const GridLevel& lvl,
                                   std::vector<IntVec>& flags) const {
  for (const Patch& p : lvl.patches()) {
    SSAMR_REQUIRE(p.data().ncomp() == op_.ncomp(),
                  "patch/operator component mismatch");
    const GridFunction err = estimate_patch_error(p);
    const Box cbox = err.box();
    const Box& fbox = p.box();
    for (coord_t k = cbox.lo().z; k <= cbox.hi().z; ++k)
      for (coord_t j = cbox.lo().y; j <= cbox.hi().y; ++j)
        for (coord_t i = cbox.lo().x; i <= cbox.hi().x; ++i) {
          if (err(0, i, j, k) <= tol_) continue;
          for (coord_t dk = 0; dk < 2; ++dk)
            for (coord_t dj = 0; dj < 2; ++dj)
              for (coord_t di = 0; di < 2; ++di) {
                const IntVec child(i * 2 + di, j * 2 + dj, k * 2 + dk);
                if (fbox.contains(child)) flags.push_back(child);
              }
        }
  }
}

}  // namespace ssamr

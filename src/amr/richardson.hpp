#pragma once
/// \file richardson.hpp
/// Richardson-extrapolation error estimation (Berger & Oliger 1984, §3).
///
/// The original Berger–Oliger error estimator: advance the solution one
/// step at the patch resolution and one double-step at double the mesh
/// width; for a scheme of order p the difference of the two results is
/// (2^{p+1} − 2) times the local truncation error.  Cells whose estimated
/// error exceeds the tolerance are flagged.
///
/// This estimator is application-aware (it runs the real PatchOperator) —
/// the "application specific error criterion" of the paper's regridding
/// step (1) — whereas GradientFlagger is the cheap feature detector.

#include "amr/flagging.hpp"
#include "amr/integrator.hpp"

namespace ssamr {

/// Flags cells by Richardson extrapolation of the kernel's own update.
class RichardsonFlagger final : public ErrorFlagger {
 public:
  /// \param op the numerical kernel to estimate the error of
  /// \param tol absolute tolerance on the estimated local error
  /// \param order formal order of accuracy p of the kernel (>= 1)
  /// \param cfl CFL number for the internal probe steps
  RichardsonFlagger(const PatchOperator& op, real_t tol, int order = 1,
                    real_t cfl = 0.4);

  void flag_level(const GridLevel& lvl,
                  std::vector<IntVec>& flags) const override;

  /// Estimated local error per coarse cell of one patch (test access).
  /// The returned function lives on p.box().coarsened(2) with the error in
  /// component 0.
  GridFunction estimate_patch_error(const Patch& p) const;

 private:
  const PatchOperator& op_;
  real_t tol_;
  int order_;
  real_t cfl_;
};

}  // namespace ssamr

#include "amr/trace_generator.hpp"

#include <algorithm>
#include <cmath>

#include "geom/box_algebra.hpp"
#include "util/error.hpp"

namespace ssamr {

namespace {
constexpr real_t kPi = 3.14159265358979323846;

/// Reflect a position into [margin, 1-margin] (triangle wave).
real_t reflect01(real_t x, real_t margin) {
  const real_t span = 1.0 - 2.0 * margin;
  real_t t = std::fmod(std::abs(x - margin), 2.0 * span);
  if (t > span) t = 2.0 * span - t;
  return margin + t;
}
}  // namespace

SyntheticAmrTrace::SyntheticAmrTrace(TraceConfig cfg) : cfg_(cfg) {
  SSAMR_REQUIRE(!cfg.domain.empty(), "trace needs a non-empty domain");
  SSAMR_REQUIRE(cfg.domain.level() == 0, "trace domain must be level 0");
  SSAMR_REQUIRE(cfg.max_levels >= 1, "need at least one level");
  SSAMR_REQUIRE(cfg.ratio >= 2, "ratio must be >= 2");
  SSAMR_REQUIRE(cfg.band_halfwidth > 0, "band half-width must be positive");
}

real_t SyntheticAmrTrace::interface_position(int epoch) const {
  SSAMR_REQUIRE(epoch >= 0, "epoch must be non-negative");
  // Keep a margin so the refined band never leaves the domain.
  const real_t margin = 0.08;
  return reflect01(cfg_.interface_x0 +
                       cfg_.speed * static_cast<real_t>(epoch),
                   margin);
}

ParticleField SyntheticAmrTrace::particles_at_epoch(int epoch) const {
  return ParticleField::gaussian_cloud(cfg_.domain, cfg_.particles,
                                       interface_position(epoch));
}

BoxList SyntheticAmrTrace::boxes_at_epoch(int epoch) const {
  BoxList out;
  out.push_back(cfg_.domain);

  const real_t pos = interface_position(epoch);
  const real_t amp0 =
      std::min(cfg_.amplitude0 + cfg_.growth * static_cast<real_t>(epoch),
               cfg_.max_amplitude);
  const IntVec ext0 = cfg_.domain.extent();

  // parent_union: boxes of the previous level (flags must stay inside to
  // preserve proper nesting).
  std::vector<Box> parent_union{cfg_.domain};

  for (int l = 0; l + 1 < cfg_.max_levels; ++l) {
    // Flag cells of level l within the perturbed band around the interface.
    coord_t scale = 1;
    for (int i = 0; i < l; ++i) scale *= cfg_.ratio;
    const real_t nx = static_cast<real_t>(ext0.x * scale);
    const real_t ny = static_cast<real_t>(ext0.y * scale);
    const real_t nz = static_cast<real_t>(ext0.z * scale);
    const real_t amp = amp0 * static_cast<real_t>(scale);
    const real_t halfw = cfg_.band_halfwidth;

    std::vector<IntVec> flags;
    for (const Box& pb : parent_union) {
      for (coord_t k = pb.lo().z; k <= pb.hi().z; ++k) {
        for (coord_t j = pb.lo().y; j <= pb.hi().y; ++j) {
          const real_t yfrac = (static_cast<real_t>(j) + 0.5) / ny;
          const real_t zfrac = (static_cast<real_t>(k) + 0.5) / nz;
          const real_t xs =
              pos * nx +
              amp * (std::sin(2.0 * kPi * cfg_.waves_y * yfrac) +
                     0.5 * std::cos(2.0 * kPi * cfg_.waves_z * zfrac));
          // Clamp to the parent box IN FLOATING POINT before converting:
          // with extreme amplitudes/band widths the band edges can exceed
          // the range of coord_t, and casting an out-of-range double to an
          // integer is undefined behaviour (the planes_for_target class of
          // bug).  A band entirely outside the box is skipped instead of
          // clamped so the clamp cannot invent flags.
          const real_t band_lo = std::floor(xs - halfw);
          const real_t band_hi = std::ceil(xs + halfw);
          const real_t box_lo = static_cast<real_t>(pb.lo().x);
          const real_t box_hi = static_cast<real_t>(pb.hi().x);
          if (band_lo > box_hi || band_hi < box_lo) continue;
          const coord_t ilo =
              static_cast<coord_t>(std::clamp(band_lo, box_lo, box_hi));
          const coord_t ihi =
              static_cast<coord_t>(std::clamp(band_hi, box_lo, box_hi));
          for (coord_t i = ilo; i <= ihi; ++i) flags.emplace_back(i, j, k);
        }
      }
    }
    if (flags.empty()) break;

    ClusterConfig ccfg = cfg_.cluster;
    const auto coarse_boxes =
        cluster_flags(flags, static_cast<level_t>(l), ccfg);
    // A cluster's bounding box can bridge the gap between two disjoint
    // parent boxes; clip against the parent union (and re-coalesce) so the
    // refined level stays properly nested.
    std::vector<Box> clipped;
    for (const Box& b : coarse_boxes)
      for (const Box& pb : parent_union) {
        const Box piece = b.intersection(pb);
        if (!piece.empty()) clipped.push_back(piece);
      }
    clipped = coalesce(std::move(clipped));
    std::vector<Box> next_union;
    for (const Box& b : clipped) {
      const Box fine = b.refined(cfg_.ratio);
      out.push_back(fine);
      next_union.push_back(fine);
    }
    parent_union = std::move(next_union);
  }
  return out;
}

}  // namespace ssamr

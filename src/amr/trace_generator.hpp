#pragma once
/// \file trace_generator.hpp
/// Deterministic synthetic SAMR workload traces.
///
/// The paper's evaluation kernel (3-D Richtmyer–Meshkov on a 128×32×32 base
/// with 3 levels of factor-2 refinement) is too expensive to integrate for
/// hundreds of steps inside a benchmark on one core, so the full-scale
/// experiments use this generator instead: a travelling, increasingly
/// perturbed interface is flagged and clustered with the *same*
/// Berger–Rigoutsos machinery the real solver uses, producing composite box
/// lists whose population, clustering and drift mimic the RM run.  The real
/// solver (src/solver) drives the same pipeline at smaller scale in the
/// examples and integration tests.

#include <vector>

#include "amr/cluster_br.hpp"
#include "amr/particles.hpp"
#include "geom/box.hpp"
#include "geom/box_list.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Parameters of the synthetic interface evolution.
struct TraceConfig {
  /// Base-level domain (paper: 128×32×32).
  Box domain = Box::from_extent(IntVec(0, 0, 0), IntVec(128, 32, 32), 0);
  coord_t ratio = 2;
  /// Total levels including the base (paper: base + 3 refinements = 4).
  int max_levels = 4;
  /// Initial interface position as a fraction of the domain x-extent.
  real_t interface_x0 = 0.25;
  /// Interface speed in fractions of the x-extent per epoch; the interface
  /// reflects off the domain ends.
  real_t speed = 0.03;
  /// Perturbation amplitude at epoch 0, in base-level cells.
  real_t amplitude0 = 0.5;
  /// Amplitude growth per epoch, in base-level cells (RM growth is roughly
  /// linear after shock passage).
  real_t growth = 0.12;
  /// Saturation amplitude in base-level cells (nonlinear RM growth stalls;
  /// also keeps the refined workload bounded over long runs).
  real_t max_amplitude = 3.0;
  /// Transverse wave counts of the perturbation.
  int waves_y = 2;
  int waves_z = 1;
  /// Half-width of the flagged band around the interface, in cells of the
  /// level being flagged.
  real_t band_halfwidth = 2.0;
  ClusterConfig cluster;
  /// Optional particle cloud riding the interface (count 0 = no particles).
  /// The cloud is regenerated from the same seed at every epoch with its
  /// center at the interface position, so it drifts coherently with the
  /// refined band (a shocked tracer-particle sheet).
  ParticleCloudConfig particles;
};

/// Generates the hierarchy's composite box list at any regrid epoch.
class SyntheticAmrTrace {
 public:
  explicit SyntheticAmrTrace(TraceConfig cfg);

  /// The composite (all-levels) box list at a regrid epoch >= 0.  Level 0
  /// is always the whole domain; deeper levels are clustered bands around
  /// the interface, properly nested by construction.
  BoxList boxes_at_epoch(int epoch) const;

  /// Interface x-position (fraction of x-extent) at an epoch, after
  /// reflections.
  real_t interface_position(int epoch) const;

  /// The particle cloud at a regrid epoch, centered on the interface.
  /// Empty when config().particles.count == 0.
  ParticleField particles_at_epoch(int epoch) const;

  const TraceConfig& config() const { return cfg_; }

 private:
  TraceConfig cfg_;
};

}  // namespace ssamr

#include "amr/workload.hpp"

#include "util/error.hpp"

namespace ssamr {

namespace {

real_t subcycle_updates(const Box& b, const WorkModel& m) {
  real_t updates = 1;
  for (level_t l = 0; l < b.level(); ++l)
    updates *= static_cast<real_t>(m.ratio);
  return updates;
}

}  // namespace

Work box_cost(const Box& b, const WorkModel& m) {
  SSAMR_REQUIRE(m.ratio >= 2, "work model ratio must be >= 2");
  const real_t updates = subcycle_updates(b, m);
  // Keep the historical multiplication order (cells · updates · cost) so
  // the cells-only cost is bit-identical to the pre-particle model.
  real_t w = static_cast<real_t>(b.cells()) * updates * m.cost_per_cell.value();
  if (m.has_particles()) {
    const auto np = m.particles->count_in(b, m.ratio);
    w += static_cast<real_t>(np) * updates * m.cost_per_particle.value();
  }
  return Work{w};
}

Work total_cost(const BoxList& boxes, const WorkModel& m) {
  Work sum{0};
  for (const Box& b : boxes) sum += box_cost(b, m);
  return sum;
}

real_t box_work(const Box& b, const WorkModel& m) {
  return box_cost(b, m).value();
}

real_t total_work(const BoxList& boxes, const WorkModel& m) {
  return total_cost(boxes, m).value();
}

std::vector<real_t> per_box_work(const BoxList& boxes, const WorkModel& m) {
  std::vector<real_t> out;
  out.reserve(boxes.size());
  for (const Box& b : boxes) out.push_back(box_work(b, m));
  return out;
}

}  // namespace ssamr

#include "amr/workload.hpp"

#include "util/error.hpp"

namespace ssamr {

real_t box_work(const Box& b, const WorkModel& m) {
  SSAMR_REQUIRE(m.ratio >= 2, "work model ratio must be >= 2");
  real_t updates = 1;
  for (level_t l = 0; l < b.level(); ++l)
    updates *= static_cast<real_t>(m.ratio);
  return static_cast<real_t>(b.cells()) * updates * m.cost_per_cell;
}

real_t total_work(const BoxList& boxes, const WorkModel& m) {
  real_t sum = 0;
  for (const Box& b : boxes) sum += box_work(b, m);
  return sum;
}

std::vector<real_t> per_box_work(const BoxList& boxes, const WorkModel& m) {
  std::vector<real_t> out;
  out.reserve(boxes.size());
  for (const Box& b : boxes) out.push_back(box_work(b, m));
  return out;
}

}  // namespace ssamr

#pragma once
/// \file workload.hpp
/// Computational work estimation for SAMR box lists.
///
/// Under Berger–Oliger subcycling a level-ℓ grid is updated r^ℓ times per
/// coarsest timestep, so its load per coarse step is cells · r^ℓ (§3.1 of
/// the paper: refined grids "not only have a larger number of grid elements
/// but are also updated more frequently").  The partitioners distribute
/// exactly this quantity.

#include <vector>

#include "geom/box.hpp"
#include "geom/box_list.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Work model parameters.
struct WorkModel {
  /// Refinement ratio between levels.
  coord_t ratio = 2;
  /// Work units per cell update (scales everything uniformly; 1 = one cell
  /// update is one unit).
  real_t cost_per_cell = 1.0;
};

/// Work of one box per coarsest timestep: cells · ratio^level · cost.
real_t box_work(const Box& b, const WorkModel& m);

/// Total work of a box list.
real_t total_work(const BoxList& boxes, const WorkModel& m);

/// Work of each box, in list order.
std::vector<real_t> per_box_work(const BoxList& boxes, const WorkModel& m);

}  // namespace ssamr

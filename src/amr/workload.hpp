#pragma once
/// \file workload.hpp
/// Computational work estimation for SAMR box lists.
///
/// Under Berger–Oliger subcycling a level-ℓ grid is updated r^ℓ times per
/// coarsest timestep, so its load per coarse step is cells · r^ℓ (§3.1 of
/// the paper: refined grids "not only have a larger number of grid elements
/// but are also updated more frequently").  The partitioners distribute
/// exactly this quantity.
///
/// The model is dual-constraint (AMReX load-balancing study, PAPERS.md):
/// a box's cost is its cell-update cost plus the cost of the particles it
/// covers, both priced in `Work` units:
///
///   cost(b) = cells(b) · ratio^level · cost_per_cell
///           + particles_in(b) · ratio^level · cost_per_particle
///
/// With no particle field attached the particle term vanishes and the
/// arithmetic is exactly the historical cells-only expression, so existing
/// golden artifacts are unaffected.  Particle counts are exactly additive
/// under same-level box splits (see amr/particles.hpp), so the audit's
/// W_k-conservation invariants hold for the dual-constraint cost too.

#include <vector>

#include "amr/particles.hpp"
#include "geom/box.hpp"
#include "geom/box_list.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// Work model parameters.
struct WorkModel {
  /// Refinement ratio between levels.
  coord_t ratio = 2;
  /// Work units per cell update (scales everything uniformly; 1 = one cell
  /// update is one unit).
  Work cost_per_cell{1.0};
  /// Work units per particle update; only priced when a particle field is
  /// attached.
  Work cost_per_particle{0.0};
  /// Optional particle field (not owned; must outlive the model's use).
  /// Null means cells-only cost, bit-identical to the historical model.
  const ParticleField* particles = nullptr;

  /// True when the particle term contributes to box costs.
  bool has_particles() const {
    return particles != nullptr && !particles->empty() &&
           cost_per_particle > Work{0};
  }
};

/// Dual-constraint cost of one box per coarsest timestep.
Work box_cost(const Box& b, const WorkModel& m);

/// Total cost of a box list.
Work total_cost(const BoxList& boxes, const WorkModel& m);

/// Work of one box per coarsest timestep: cells · ratio^level · cost
/// (+ particle term when a field is attached).  Raw-valued view of
/// box_cost for the partitioner arithmetic.
real_t box_work(const Box& b, const WorkModel& m);

/// Total work of a box list.
real_t total_work(const BoxList& boxes, const WorkModel& m);

/// Work of each box, in list order.
std::vector<real_t> per_box_work(const BoxList& boxes, const WorkModel& m);

}  // namespace ssamr

#pragma once
/// \file audit.hpp
/// Aggregation header for the invariant-audit family.
///
/// Historically this header carried the SSAMR_AUDIT hook; the hook now
/// lives in util/audit.hpp (the bottom layer) so every subsystem can
/// enforce its own audits without an upward edge into this layer.  Upper
/// layers (runtime, tests, drivers) keep including this one name for the
/// hook plus the whole Validator facade.

#include "audit/validator.hpp"    // IWYU pragma: export
#include "util/audit.hpp"         // IWYU pragma: export
#include "util/audit_report.hpp"  // IWYU pragma: export

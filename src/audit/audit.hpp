#pragma once
/// \file audit.hpp
/// The SSAMR_AUDIT hook: enforce an AuditReport at a call site.
///
/// SSAMR_AUDIT(expr) evaluates `expr` (an expression yielding an
/// audit::AuditReport, typically a Validator call), throws ssamr::Error when
/// the report contains Error-severity violations, and logs a debug summary
/// when it only contains warnings.  The hook is compiled in for Debug
/// builds and for audit builds (cmake -DSSAMR_AUDIT=ON, which defines
/// SSAMR_ENABLE_AUDIT); in optimized NDEBUG builds without the option it
/// compiles to nothing, so hot paths pay nothing.
///
/// The validators themselves (validator.hpp) are always compiled and can be
/// called explicitly from tests and drivers regardless of the build mode.

#include "audit/report.hpp"
#include "audit/validator.hpp"

#if !defined(SSAMR_AUDIT_ENABLED)
#if defined(SSAMR_ENABLE_AUDIT) || !defined(NDEBUG)
#define SSAMR_AUDIT_ENABLED 1
#else
#define SSAMR_AUDIT_ENABLED 0
#endif
#endif

namespace ssamr::audit {
namespace detail {
/// Throw ssamr::Error on report errors; log warnings at Debug level.
void enforce(const AuditReport& report, const char* file, int line);
}  // namespace detail

/// True when SSAMR_AUDIT hooks are active in this translation unit's build.
constexpr bool hooks_enabled() { return SSAMR_AUDIT_ENABLED != 0; }

}  // namespace ssamr::audit

#if SSAMR_AUDIT_ENABLED
#define SSAMR_AUDIT(report_expr) \
  ::ssamr::audit::detail::enforce((report_expr), __FILE__, __LINE__)
#else
#define SSAMR_AUDIT(report_expr) ((void)0)
#endif

#include "audit/validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "amr/patch.hpp"
#include "amr/workload.hpp"
#include "geom/box_algebra.hpp"

namespace ssamr::audit {

namespace {

std::string str(const Box& b) {
  std::ostringstream os;
  os << b;
  return os.str();
}

std::string rank_loc(std::size_t k) {
  return "rank " + std::to_string(k);
}

std::string level_loc(int l) { return "level " + std::to_string(l); }

bool finite(real_t v) { return std::isfinite(v); }

}  // namespace

AuditReport Validator::validate_hierarchy(const GridHierarchy& h) const {
  AuditReport r("hierarchy");
  const HierarchyConfig& cfg = h.config();

  // Level 0 must be exactly the domain.
  {
    const BoxList base = h.level(0).box_list();
    for (const Box& b : base)
      if (!cfg.domain.contains(b))
        r.add(Severity::Error, "hierarchy.bounds", level_loc(0),
              "box " + str(b) + " leaves the domain " + str(cfg.domain));
    if (base.empty() || !base.covers(cfg.domain))
      r.add(Severity::Error, "hierarchy.level0", level_loc(0),
            "level 0 does not cover the domain " + str(cfg.domain));
  }

  for (int l = 0; l < h.num_levels(); ++l) {
    const GridLevel& lvl = h.level(l);
    if (lvl.level() != l)
      r.add(Severity::Error, "hierarchy.level_index", level_loc(l),
            "GridLevel carries level " + std::to_string(lvl.level()));
    if (lvl.ncomp() != cfg.ncomp || lvl.ghost() != cfg.ghost)
      r.add(Severity::Error, "hierarchy.ghost_config", level_loc(l),
            "level has ncomp=" + std::to_string(lvl.ncomp()) + " ghost=" +
                std::to_string(lvl.ghost()) + ", config says ncomp=" +
                std::to_string(cfg.ncomp) + " ghost=" +
                std::to_string(cfg.ghost));

    const Box dom = h.domain_at(l);
    const BoxList boxes = lvl.box_list();
    for (const Box& b : boxes) {
      if (b.level() != l)
        r.add(Severity::Error, "hierarchy.box_level", level_loc(l),
              "box " + str(b) + " carries level " +
                  std::to_string(b.level()));
      if (l > 0 && !dom.contains(b))
        r.add(Severity::Error, "hierarchy.bounds", level_loc(l),
              "box " + str(b) + " leaves the domain " + str(dom));
      if (l >= 1) {
        // Refined patches come from coarse-cell clusters mapped down by the
        // refinement ratio, so their faces must lie on coarse-cell
        // boundaries.
        const IntVec lo = b.lo(), hi = b.hi();
        bool aligned = true;
        for (int d = 0; d < kDim; ++d)
          aligned = aligned && lo[d] % cfg.ratio == 0 &&
                    (hi[d] + 1) % cfg.ratio == 0;
        if (!aligned)
          r.add(Severity::Warning, "hierarchy.alignment", level_loc(l),
                "box " + str(b) + " is not aligned to the refinement ratio " +
                    std::to_string(cfg.ratio));
        const IntVec ext = b.extent();
        if (std::min({ext.x, ext.y, ext.z}) < cfg.min_box_size)
          r.add(Severity::Warning, "hierarchy.min_box", level_loc(l),
                "box " + str(b) + " is smaller than min_box_size " +
                    std::to_string(cfg.min_box_size));
      }
    }

    // Disjointness, pairwise so the offending pair is reported.
    for (std::size_t i = 0; i < boxes.size(); ++i)
      for (std::size_t j = i + 1; j < boxes.size(); ++j)
        if (boxes[i].level() == boxes[j].level() &&
            boxes[i].intersects(boxes[j]))
          r.add(Severity::Error, "hierarchy.overlap", level_loc(l),
                "boxes " + str(boxes[i]) + " and " + str(boxes[j]) +
                    " overlap");

    if (l >= 2 && !h.properly_nested(l, boxes))
      r.add(Severity::Error, "hierarchy.nesting", level_loc(l),
            "level is not properly nested in level " + std::to_string(l - 1));

    // Ghost-region/storage consistency of the patch data.
    for (std::size_t p = 0; p < lvl.num_patches(); ++p) {
      const Patch& patch = lvl.patch(p);
      const std::string loc =
          level_loc(l) + " patch " + std::to_string(p) + " " +
          str(patch.box());
      for (const GridFunction* gf : {&patch.data(), &patch.scratch()}) {
        if (!gf->allocated()) {
          r.add(Severity::Error, "hierarchy.ghost", loc,
                "patch field data is unallocated");
          continue;
        }
        if (gf->box() != patch.box() ||
            gf->storage_box() != patch.box().grown(gf->ghost()))
          r.add(Severity::Error, "hierarchy.ghost", loc,
                "field storage does not match the patch box grown by the "
                "ghost width");
        if (gf->ncomp() != cfg.ncomp || gf->ghost() != cfg.ghost)
          r.add(Severity::Error, "hierarchy.ghost", loc,
                "field has ncomp=" + std::to_string(gf->ncomp()) +
                    " ghost=" + std::to_string(gf->ghost()) +
                    ", config says ncomp=" + std::to_string(cfg.ncomp) +
                    " ghost=" + std::to_string(cfg.ghost));
      }
    }
  }
  return r;
}

AuditReport Validator::validate_partition(
    const BoxList& input, const PartitionResult& result,
    const std::vector<real_t>& capacities, const WorkModel& work,
    const PartitionConstraints& constraints) const {
  AuditReport r("partition");
  const std::size_t nranks = capacities.size();
  if (nranks == 0) {
    r.add(Severity::Error, "partition.shape", "",
          "capacity vector is empty");
    return r;
  }
  if (result.assigned_work.size() != nranks ||
      result.target_work.size() != nranks) {
    r.add(Severity::Error, "partition.shape", "",
          "assigned_work/target_work sized " +
              std::to_string(result.assigned_work.size()) + "/" +
              std::to_string(result.target_work.size()) + " for " +
              std::to_string(nranks) + " capacities");
    return r;
  }

  // Owners in range, no degenerate pieces.
  for (const BoxAssignment& a : result.assignments) {
    if (a.owner < 0 || a.owner >= static_cast<rank_t>(nranks))
      r.add(Severity::Error, "partition.ranks", str(a.box),
            "owner " + std::to_string(a.owner) + " outside 0.." +
                std::to_string(nranks - 1));
    if (a.box.empty())
      r.add(Severity::Error, "partition.empty_box", str(a.box),
            "assignment contains an empty box");
  }

  // No two same-level pieces may overlap.
  for (std::size_t i = 0; i < result.assignments.size(); ++i)
    for (std::size_t j = i + 1; j < result.assignments.size(); ++j) {
      const Box& a = result.assignments[i].box;
      const Box& b = result.assignments[j].box;
      if (a.level() == b.level() && a.intersects(b))
        r.add(Severity::Error, "partition.overlap", str(a),
              "overlaps assigned box " + str(b));
    }

  // Each piece must lie inside exactly one input box; split pieces must
  // respect the minimum box size and the aspect-ratio bound reachable by
  // legal splitting (longest input extent over the smallest admissible
  // extent).
  for (const BoxAssignment& a : result.assignments) {
    if (a.box.empty()) continue;
    const Box* parent = nullptr;
    for (const Box& in : input)
      if (in.level() == a.box.level() && in.contains(a.box)) {
        parent = &in;
        break;
      }
    if (parent == nullptr) {
      r.add(Severity::Error, "partition.containment", str(a.box),
            "piece is not contained in any input box");
      continue;
    }
    if (a.box == *parent) continue;  // whole-box assignment, always legal
    const IntVec ext = a.box.extent();
    const IntVec in_ext = parent->extent();
    for (int d = 0; d < kDim; ++d)
      if (ext[d] < std::min(constraints.min_box_size, in_ext[d]))
        r.add(Severity::Error, "partition.min_box", str(a.box),
              "extent " + std::to_string(ext[d]) + " along axis " +
                  std::to_string(d) + " violates min_box_size " +
                  std::to_string(constraints.min_box_size) + " (input " +
                  str(*parent) + ")");
    const coord_t in_longest = std::max({in_ext.x, in_ext.y, in_ext.z});
    const coord_t in_shortest = std::min({in_ext.x, in_ext.y, in_ext.z});
    const coord_t admissible = std::min(constraints.min_box_size, in_shortest);
    if (admissible > 0) {
      const real_t bound = static_cast<real_t>(in_longest) /
                           static_cast<real_t>(admissible);
      if (a.box.aspect_ratio() > bound * cfg_.aspect_slack)
        r.add(Severity::Error, "partition.aspect_ratio", str(a.box),
              "aspect ratio " + std::to_string(a.box.aspect_ratio()) +
                  " exceeds the bound " + std::to_string(bound) +
                  " of legal splits of " + str(*parent));
    }
  }

  // Full coverage: every input cell is assigned (given the overlap check,
  // exactly once).
  for (const Box& in : input) {
    std::vector<Box> pieces;
    for (const BoxAssignment& a : result.assignments)
      if (a.box.level() == in.level() && a.box.intersects(in))
        pieces.push_back(a.box.intersection(in));
    if (!box_difference(in, pieces).empty())
      r.add(Severity::Error, "partition.coverage", str(in),
            "input box is not fully covered by assigned pieces");
  }

  // Work bookkeeping: W_k must equal the work of rank k's pieces, and the
  // total must equal the input work.
  const real_t total = total_work(input, work);
  std::vector<real_t> recomputed(nranks, 0);
  for (const BoxAssignment& a : result.assignments)
    if (a.owner >= 0 && a.owner < static_cast<rank_t>(nranks))
      recomputed[static_cast<std::size_t>(a.owner)] += box_work(a.box, work);
  real_t assigned_sum = 0;
  const real_t work_tol = std::max(total, real_t{1}) * cfg_.work_rel_tolerance;
  for (std::size_t k = 0; k < nranks; ++k) {
    if (!finite(result.assigned_work[k]) || result.assigned_work[k] < 0)
      r.add(Severity::Error, "partition.work_bookkeeping", rank_loc(k),
            "assigned work is negative or non-finite");
    else if (std::abs(result.assigned_work[k] - recomputed[k]) > work_tol)
      r.add(Severity::Error, "partition.work_bookkeeping", rank_loc(k),
            "assigned_work " + std::to_string(result.assigned_work[k]) +
                " does not match the work of the rank's pieces " +
                std::to_string(recomputed[k]));
    assigned_sum += result.assigned_work[k];
  }
  if (std::abs(assigned_sum - total) > work_tol)
    r.add(Severity::Error, "partition.work_sum", "",
          "assigned work sums to " + std::to_string(assigned_sum) +
              ", input work is " + std::to_string(total));

  // Load tracking (soft): W_k should stay near L_k, and L_k near C_k · L
  // (Eq. 1).  Deviations are expected — box granularity, the remainder
  // absorbed by the last rank, capacity-blind baselines — so these warn.
  const real_t mean_target =
      std::max(total / static_cast<real_t>(nranks), real_t{1e-12});
  for (std::size_t k = 0; k < nranks; ++k) {
    const real_t target = result.target_work[k];
    if (!finite(target) || target < 0) {
      r.add(Severity::Error, "partition.work_bookkeeping", rank_loc(k),
            "target work is negative or non-finite");
      continue;
    }
    if (std::abs(result.assigned_work[k] - target) >
        cfg_.load_rel_tolerance * mean_target)
      r.add(Severity::Warning, "partition.load_tracking", rank_loc(k),
            "assigned work " + std::to_string(result.assigned_work[k]) +
                " is far from the target " + std::to_string(target));
    if (std::abs(target - capacities[k] * total) >
        cfg_.load_rel_tolerance * mean_target)
      r.add(Severity::Warning, "partition.target_capacity", rank_loc(k),
            "target " + std::to_string(target) +
                " is far from the capacity share C_k * L = " +
                std::to_string(capacities[k] * total));
  }
  return r;
}

AuditReport Validator::validate_capacities(
    const std::vector<real_t>& capacities) const {
  AuditReport r("capacities");
  if (capacities.empty()) {
    r.add(Severity::Error, "capacity.size", "", "capacity vector is empty");
    return r;
  }
  real_t sum = 0;
  for (std::size_t k = 0; k < capacities.size(); ++k) {
    const real_t c = capacities[k];
    if (!finite(c) || c < -cfg_.capacity_tolerance ||
        c > 1 + cfg_.capacity_tolerance)
      r.add(Severity::Error, "capacity.range", rank_loc(k),
            "C_k = " + std::to_string(c) + " outside [0, 1]");
    else
      sum += c;
  }
  if (r.ok() && std::abs(sum - 1) > cfg_.capacity_tolerance)
    r.add(Severity::Error, "capacity.normalization", "",
          "capacities sum to " + std::to_string(sum) +
              ", Eq. 1 requires 1");
  return r;
}

AuditReport Validator::validate_capacities(
    const std::vector<real_t>& capacities,
    const CapacityWeights& weights) const {
  AuditReport r = validate_capacities(capacities);
  if (!weights.valid())
    r.add(Severity::Error, "capacity.weights", "",
          "weights (" + std::to_string(weights.cpu) + ", " +
              std::to_string(weights.memory) + ", " +
              std::to_string(weights.bandwidth) +
              ") must be non-negative and sum to 1");
  return r;
}

AuditReport Validator::validate_node_state(const NodeSpec& spec,
                                           const NodeState& state,
                                           const std::string& location) const {
  AuditReport r("cluster");
  const real_t tol = cfg_.capacity_tolerance;
  if (!(spec.peak_rate > 0) || !(spec.memory_mb > 0) ||
      !(spec.bandwidth_mbps > 0))
    r.add(Severity::Error, "cluster.spec", location,
          "node spec has non-positive peak rate, memory or bandwidth");
  if (!finite(state.cpu_available) || state.cpu_available < -tol ||
      state.cpu_available > 1 + tol)
    r.add(Severity::Error, "cluster.availability", location,
          "cpu availability " + std::to_string(state.cpu_available) +
              " outside [0, 1]");
  if (!finite(state.memory_free_mb) || state.memory_free_mb < -tol ||
      state.memory_free_mb > spec.memory_mb + tol)
    r.add(Severity::Error, "cluster.memory", location,
          "free memory " + std::to_string(state.memory_free_mb) +
              " outside [0, " + std::to_string(spec.memory_mb) + "]");
  // The network model never reports below 1 Mbit/s, so links slower than
  // that legitimately "exceed" their spec by the clamp amount.
  const real_t bw_cap = std::max(spec.bandwidth_mbps, real_t{1});
  if (!finite(state.bandwidth_mbps) || !(state.bandwidth_mbps > 0) ||
      state.bandwidth_mbps > bw_cap + tol)
    r.add(Severity::Error, "cluster.bandwidth", location,
          "bandwidth " + std::to_string(state.bandwidth_mbps) +
              " outside (0, " + std::to_string(bw_cap) + "]");
  return r;
}

AuditReport Validator::validate_cluster(const Cluster& cluster,
                                        real_t t) const {
  AuditReport r("cluster");
  for (rank_t k = 0; k < cluster.size(); ++k)
    r.merge(validate_node_state(cluster.spec(k), cluster.state_at(k, t),
                                rank_loc(static_cast<std::size_t>(k)) +
                                    " at t=" + std::to_string(t)));
  return r;
}

namespace {

/// `!(v >= 0)` rather than `v < 0`: the former also rejects NaN.
bool nonneg(real_t v) { return v >= 0 && finite(v); }

void require_nonneg(AuditReport& r, const char* check, const char* knob,
                    real_t v) {
  if (!nonneg(v))
    r.add(Severity::Error, check, "",
          std::string(knob) + " = " + std::to_string(v) +
              " must be finite and >= 0");
}

}  // namespace

AuditReport Validator::validate_executor_config(
    const ExecutorConfig& cfg) const {
  AuditReport r("executor-config");
  require_nonneg(r, "executor.regrid_cost", "regrid_cost_base_s",
                 cfg.regrid_cost_base_s);
  require_nonneg(r, "executor.regrid_cost", "regrid_cost_per_box_s",
                 cfg.regrid_cost_per_box_s);
  require_nonneg(r, "executor.partition_cost", "partition_cost_per_box_s",
                 cfg.partition_cost_per_box_s);
  require_nonneg(r, "executor.app_memory", "app_base_memory_mb",
                 cfg.app_base_memory_mb);
  if (cfg.ncomp < 1)
    r.add(Severity::Error, "executor.ncomp", "",
          "ncomp = " + std::to_string(cfg.ncomp) + " must be >= 1");
  if (cfg.ghost < 0)
    r.add(Severity::Error, "executor.ghost", "",
          "ghost = " + std::to_string(cfg.ghost) + " must be >= 0");
  if (cfg.bytes_per_value < 1)
    r.add(Severity::Error, "executor.bytes_per_value", "",
          "bytes_per_value = " + std::to_string(cfg.bytes_per_value) +
              " must be >= 1");
  if (cfg.time_levels < 1)
    r.add(Severity::Error, "executor.time_levels", "",
          "time_levels = " + std::to_string(cfg.time_levels) +
              " must be >= 1");
  if (!(cfg.monitor_intrusion_cpu >= 0) || !(cfg.monitor_intrusion_cpu < 1))
    r.add(Severity::Error, "executor.monitor_intrusion", "",
          "monitor_intrusion_cpu = " +
              std::to_string(cfg.monitor_intrusion_cpu) +
              " must lie in [0, 1)");
  if (!(cfg.comm_overlap >= 0) || !(cfg.comm_overlap <= 1))
    r.add(Severity::Error, "executor.comm_overlap", "",
          "comm_overlap = " + std::to_string(cfg.comm_overlap) +
              " must lie in [0, 1]");
  return r;
}

AuditReport Validator::validate_monitor_config(const MonitorConfig& cfg) const {
  AuditReport r("monitor-config");
  require_nonneg(r, "monitor.probe_cost", "probe_cost_s", cfg.probe_cost_s);
  if (!(cfg.intrusion_cpu >= 0) || !(cfg.intrusion_cpu < 1))
    r.add(Severity::Error, "monitor.intrusion_cpu", "",
          "intrusion_cpu = " + std::to_string(cfg.intrusion_cpu) +
              " must lie in [0, 1)");
  require_nonneg(r, "monitor.intrusion_memory", "intrusion_memory_mb",
                 cfg.intrusion_memory_mb);
  require_nonneg(r, "monitor.noise", "noise.cpu_sigma", cfg.noise.cpu_sigma);
  require_nonneg(r, "monitor.noise", "noise.memory_sigma",
                 cfg.noise.memory_sigma);
  require_nonneg(r, "monitor.noise", "noise.bandwidth_sigma",
                 cfg.noise.bandwidth_sigma);
  if (!(cfg.probe_deadline_s >= cfg.probe_cost_s))
    r.add(Severity::Error, "monitor.probe_deadline", "",
          "probe_deadline_s = " + std::to_string(cfg.probe_deadline_s) +
              " must be >= probe_cost_s (a timeout cannot cost less than "
              "a successful probe)");
  if (cfg.probe_max_retries < 0)
    r.add(Severity::Error, "monitor.probe_max_retries", "",
          "probe_max_retries = " + std::to_string(cfg.probe_max_retries) +
              " must be >= 0");
  require_nonneg(r, "monitor.backoff", "backoff_base_s", cfg.backoff_base_s);
  if (!(cfg.backoff_factor >= 1))
    r.add(Severity::Error, "monitor.backoff", "",
          "backoff_factor = " + std::to_string(cfg.backoff_factor) +
              " must be >= 1 (backoff never shrinks)");
  if (cfg.quarantine_after < 1)
    r.add(Severity::Error, "monitor.quarantine_after", "",
          "quarantine_after = " + std::to_string(cfg.quarantine_after) +
              " must be >= 1");
  if (!(cfg.staleness.decay_tau_s > 0))
    r.add(Severity::Error, "monitor.staleness", "",
          "staleness.decay_tau_s = " +
              std::to_string(cfg.staleness.decay_tau_s) +
              " must be positive");
  return r;
}

}  // namespace ssamr::audit

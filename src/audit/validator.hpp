#pragma once
/// \file validator.hpp
/// Runtime invariant audits over the core data structures.
///
/// The paper's correctness rests on structural invariants that the library
/// enforces locally (SSAMR_REQUIRE at mutation time) but never re-checks
/// globally: relative capacities must satisfy Σ C_k = 1 (Eq. 1), assigned
/// work must track L_k = C_k · L, box splitting must respect the minimum
/// box size and the aspect-ratio bound along the longest axis, and the grid
/// hierarchy must stay properly nested, disjoint and ratio-aligned.  The
/// Validator re-derives each invariant from the data alone and reports every
/// violation in a structured AuditReport instead of throwing, so corrupted
/// states can be inspected whole.
///
/// Use the SSAMR_AUDIT hook (audit.hpp) to enforce a report at a call site
/// in Debug/audit builds, or call the validators explicitly from tests and
/// drivers.

#include <string>
#include <vector>

#include "amr/hierarchy.hpp"
#include "audit/report.hpp"
#include "capacity/capacity.hpp"
#include "cluster/cluster.hpp"
#include "geom/box_list.hpp"
#include "monitor/monitor_service.hpp"
#include "partition/partitioner.hpp"
#include "runtime/executor.hpp"
#include "util/types.hpp"

namespace ssamr::audit {

/// Tolerances of the audit checks.
struct AuditConfig {
  /// Allowed deviation of Σ C_k from 1 and of any C_k outside [0, 1].
  real_t capacity_tolerance = 1e-6;
  /// Relative tolerance of exact bookkeeping identities (work sums).
  real_t work_rel_tolerance = 1e-6;
  /// Per-rank deviation of assigned from target work beyond which a
  /// load-tracking warning is issued, as a fraction of the mean target.
  real_t load_rel_tolerance = 0.5;
  /// Multiplicative slack on the aspect-ratio bound (numerical headroom).
  real_t aspect_slack = 1.0 + 1e-9;
};

/// Re-derives structural invariants and reports violations.
class Validator {
 public:
  explicit Validator(AuditConfig cfg = {}) : cfg_(cfg) {}

  const AuditConfig& config() const { return cfg_; }

  /// Audit the grid hierarchy: per-level box/level agreement, domain
  /// bounds, disjointness, proper nesting (l >= 2), refinement-ratio
  /// alignment and minimum box size (warnings), and ghost-region/storage
  /// consistency of every patch against the hierarchy configuration.
  AuditReport validate_hierarchy(const GridHierarchy& h) const;

  /// Audit one partitioning pass against its input: full coverage of every
  /// input box by same-level pieces, no overlap among pieces, owners in
  /// range, minimum box size and aspect-ratio bound for split pieces, work
  /// bookkeeping identities, and capacity-proportional load tracking
  /// (W_k vs L_k and L_k vs C_k · L, warnings).
  AuditReport validate_partition(const BoxList& input,
                                 const PartitionResult& result,
                                 const std::vector<real_t>& capacities,
                                 const WorkModel& work,
                                 const PartitionConstraints& constraints =
                                     PartitionConstraints{}) const;

  /// Audit a relative-capacity vector: non-empty, every C_k finite and in
  /// [0, 1], and Σ C_k = 1 within tolerance (Eq. 1).
  AuditReport validate_capacities(const std::vector<real_t>& capacities) const;

  /// As above, plus the Eq. 1 weight constraints (non-negative, sum 1).
  AuditReport validate_capacities(const std::vector<real_t>& capacities,
                                  const CapacityWeights& weights) const;

  /// Audit one node's spec and instantaneous state: positive peak rate,
  /// availability in [0, 1], free memory within [0, spec memory],
  /// deliverable bandwidth positive and within the link capacity.
  AuditReport validate_node_state(const NodeSpec& spec, const NodeState& state,
                                  const std::string& location) const;

  /// Audit the whole cluster's true state at virtual time t.
  AuditReport validate_cluster(const Cluster& cluster, real_t t) const;

  /// Audit the execution-model cost knobs: all costs and footprints
  /// non-negative and finite, ncomp/bytes_per_value/time_levels >= 1,
  /// ghost >= 0, monitor intrusion in [0,1), comm_overlap in [0,1].
  /// VirtualExecutor enforces this report at construction.
  AuditReport validate_executor_config(const ExecutorConfig& cfg) const;

  /// Audit the resource-monitor knobs: probe cost, memory footprint and
  /// noise sigmas non-negative and finite, CPU intrusion in [0,1).
  /// ResourceMonitor enforces this report at construction.
  AuditReport validate_monitor_config(const MonitorConfig& cfg) const;

 private:
  AuditConfig cfg_;
};

}  // namespace ssamr::audit

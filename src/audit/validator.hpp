#pragma once
/// \file validator.hpp
/// Runtime invariant audits over the core data structures.
///
/// The paper's correctness rests on structural invariants that the library
/// enforces locally (SSAMR_REQUIRE at mutation time) but never re-checks
/// globally: relative capacities must satisfy Σ C_k = 1 (Eq. 1), assigned
/// work must track L_k = C_k · L, box splitting must respect the minimum
/// box size and the aspect-ratio bound along the longest axis, and the grid
/// hierarchy must stay properly nested, disjoint and ratio-aligned.
///
/// The checks themselves live next to the data they audit — see
/// amr/hierarchy_audit.hpp, capacity/capacity_audit.hpp,
/// cluster/cluster_audit.hpp, monitor/monitor_audit.hpp,
/// partition/partition_audit.hpp and sim/executor_audit.hpp — so that each
/// subsystem can hook SSAMR_AUDIT (util/audit.hpp) without an upward edge
/// into this aggregation layer.  The Validator here is the historical
/// facade over the whole family: one object carrying the shared
/// AuditConfig, convenient for tests and drivers that audit everything.

#include <string>
#include <vector>

#include "amr/hierarchy.hpp"
#include "amr/hierarchy_audit.hpp"
#include "amr/workload.hpp"
#include "capacity/capacity.hpp"
#include "capacity/capacity_audit.hpp"
#include "cluster/cluster.hpp"
#include "cluster/cluster_audit.hpp"
#include "cluster/node.hpp"
#include "geom/box_list.hpp"
#include "monitor/monitor_audit.hpp"
#include "monitor/monitor_service.hpp"
#include "partition/partition_audit.hpp"
#include "partition/partitioner.hpp"
#include "sim/executor.hpp"
#include "sim/executor_audit.hpp"
#include "util/audit.hpp"
#include "util/audit_report.hpp"
#include "util/types.hpp"

namespace ssamr::audit {

/// Re-derives structural invariants and reports violations.  Facade over
/// the per-subsystem validate_* free functions.
class Validator {
 public:
  explicit Validator(AuditConfig cfg = {}) : cfg_(cfg) {}

  const AuditConfig& config() const { return cfg_; }

  /// See amr/hierarchy_audit.hpp.
  AuditReport validate_hierarchy(const GridHierarchy& h) const {
    return audit::validate_hierarchy(h, cfg_);
  }

  /// See partition/partition_audit.hpp.
  AuditReport validate_partition(const BoxList& input,
                                 const PartitionResult& result,
                                 const std::vector<real_t>& capacities,
                                 const WorkModel& work,
                                 const PartitionConstraints& constraints =
                                     PartitionConstraints{}) const {
    return audit::validate_partition(input, result, capacities, work,
                                     constraints, cfg_);
  }

  /// See capacity/capacity_audit.hpp.
  AuditReport validate_capacities(
      const std::vector<real_t>& capacities) const {
    return audit::validate_capacities(capacities, cfg_);
  }

  /// See capacity/capacity_audit.hpp.
  AuditReport validate_capacities(const std::vector<real_t>& capacities,
                                  const CapacityWeights& weights) const {
    return audit::validate_capacities(capacities, weights, cfg_);
  }

  /// See cluster/cluster_audit.hpp.
  AuditReport validate_node_state(const NodeSpec& spec, const NodeState& state,
                                  const std::string& location) const {
    return audit::validate_node_state(spec, state, location, cfg_);
  }

  /// See cluster/cluster_audit.hpp.
  AuditReport validate_cluster(const Cluster& cluster, Seconds t) const {
    return audit::validate_cluster(cluster, t, cfg_);
  }

  /// See sim/executor_audit.hpp.
  AuditReport validate_executor_config(const ExecutorConfig& cfg) const {
    return audit::validate_executor_config(cfg, cfg_);
  }

  /// See monitor/monitor_audit.hpp.
  AuditReport validate_monitor_config(const MonitorConfig& cfg) const {
    return audit::validate_monitor_config(cfg, cfg_);
  }

 private:
  AuditConfig cfg_;
};

}  // namespace ssamr::audit

#include "capacity/capacity.hpp"

#include <cmath>

#include "capacity/capacity_audit.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"

namespace ssamr {

bool CapacityWeights::valid() const {
  if (cpu < 0 || memory < 0 || bandwidth < 0) return false;
  return std::abs(cpu + memory + bandwidth - 1.0) < 1e-9;
}

CapacityCalculator::CapacityCalculator(CapacityWeights weights)
    : weights_(weights) {
  SSAMR_REQUIRE(weights_.valid(),
                "capacity weights must be non-negative and sum to 1");
}

void CapacityCalculator::set_weights(CapacityWeights w) {
  SSAMR_REQUIRE(w.valid(),
                "capacity weights must be non-negative and sum to 1");
  weights_ = w;
}

std::vector<real_t> CapacityCalculator::relative_capacities(
    const std::vector<ResourceEstimate>& estimates) const {
  SSAMR_REQUIRE(!estimates.empty(), "need at least one node estimate");
  const auto n = estimates.size();
  real_t cpu_total = 0, mem_total = 0, bw_total = 0;
  for (const auto& e : estimates) {
    SSAMR_REQUIRE(std::isfinite(e.cpu_available.value()) &&
                      std::isfinite(e.memory_free_mb.value()) &&
                      std::isfinite(e.bandwidth_mbps.value()),
                  "resource estimates must be finite");
    SSAMR_REQUIRE(e.cpu_available >= Fraction{0} &&
                      e.memory_free_mb >= MegaBytes{0} &&
                      e.bandwidth_mbps >= MbitsPerSec{0},
                  "resource estimates must be non-negative");
    cpu_total += e.cpu_available.value();
    mem_total += e.memory_free_mb.value();
    bw_total += e.bandwidth_mbps.value();
  }

  std::vector<real_t> cap(n, 0);
  real_t sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const real_t p_hat =
        cpu_total > 0 ? estimates[k].cpu_available.value() / cpu_total : 0;
    const real_t m_hat =
        mem_total > 0 ? estimates[k].memory_free_mb.value() / mem_total : 0;
    const real_t b_hat =
        bw_total > 0 ? estimates[k].bandwidth_mbps.value() / bw_total : 0;
    cap[k] = weights_.cpu * p_hat + weights_.memory * m_hat +
             weights_.bandwidth * b_hat;
    sum += cap[k];
  }
  if (!(sum > 0)) {
    // Degenerate input (all resources zero — e.g. every node quarantined):
    // fall back to uniform.
    for (auto& c : cap) c = 1.0 / static_cast<real_t>(n);
    return cap;
  }
  // Renormalize: when a resource total is zero its column drops out, so the
  // weighted sum can fall short of 1.
  for (auto& c : cap) c /= sum;
  SSAMR_AUDIT(audit::validate_capacities(cap, weights_));
  return cap;
}

std::vector<Work> CapacityCalculator::work_allocation(
    const std::vector<real_t>& capacities, Work total_work) {
  SSAMR_REQUIRE(total_work >= Work{0}, "total work must be non-negative");
  std::vector<Work> out;
  out.reserve(capacities.size());
  for (real_t c : capacities) {
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
    out.push_back(c * total_work);
  }
  return out;
}

}  // namespace ssamr

#pragma once
/// \file capacity.hpp
/// The relative capacity metric (paper §5.2, Eq. 1).
///
/// For node k with estimated CPU availability P_k, free memory M_k and link
/// bandwidth B_k, each resource is first normalized to a fraction of the
/// cluster total, then combined as
///
///     C_k = w_p · P̂_k + w_m · M̂_k + w_b · B̂_k,   Σ C_k = 1
///
/// with application-dependent weights w_p + w_m + w_b = 1.  A total work L
/// is split as L_k = C_k · L.

#include <vector>

#include "capacity/resource_estimate.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// Application-dependent resource weights (must sum to 1).
struct CapacityWeights {
  real_t cpu = 1.0 / 3.0;
  real_t memory = 1.0 / 3.0;
  real_t bandwidth = 1.0 / 3.0;

  /// Validate: non-negative and summing to 1 (within tolerance).
  bool valid() const;

  /// Equal weights (the paper's experimental choice).
  static CapacityWeights equal() { return {}; }
  /// Weight profile for a CPU-bound application.
  static CapacityWeights cpu_bound() { return {0.8, 0.1, 0.1}; }
  /// Weight profile for a memory-intensive application.
  static CapacityWeights memory_bound() { return {0.2, 0.6, 0.2}; }
  /// Weight profile for a communication-heavy application.
  static CapacityWeights comm_bound() { return {0.3, 0.1, 0.6}; }
};

/// The capacity calculator of Figure 5.
class CapacityCalculator {
 public:
  explicit CapacityCalculator(CapacityWeights weights = {});

  const CapacityWeights& weights() const { return weights_; }
  void set_weights(CapacityWeights w);

  /// Relative capacities C_k (Eq. 1) from per-node resource estimates.
  /// The result sums to 1 (all-zero estimates fall back to uniform).
  std::vector<real_t> relative_capacities(
      const std::vector<ResourceEstimate>& estimates) const;

  /// Work allocation L_k = C_k · L.
  static std::vector<Work> work_allocation(
      const std::vector<real_t>& capacities, Work total_work);

 private:
  CapacityWeights weights_;
};

}  // namespace ssamr

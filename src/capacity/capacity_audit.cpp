#include "capacity/capacity_audit.hpp"

#include <cmath>
#include <string>

namespace ssamr::audit {

namespace {
std::string rank_loc(std::size_t k) { return "rank " + std::to_string(k); }
}  // namespace

AuditReport validate_capacities(const std::vector<real_t>& capacities,
                                const AuditConfig& cfg) {
  AuditReport r("capacities");
  if (capacities.empty()) {
    r.add(Severity::Error, "capacity.size", "", "capacity vector is empty");
    return r;
  }
  real_t sum = 0;
  for (std::size_t k = 0; k < capacities.size(); ++k) {
    const real_t c = capacities[k];
    if (!std::isfinite(c) || c < -cfg.capacity_tolerance ||
        c > 1 + cfg.capacity_tolerance)
      r.add(Severity::Error, "capacity.range", rank_loc(k),
            "C_k = " + std::to_string(c) + " outside [0, 1]");
    else
      sum += c;
  }
  if (r.ok() && std::abs(sum - 1) > cfg.capacity_tolerance)
    r.add(Severity::Error, "capacity.normalization", "",
          "capacities sum to " + std::to_string(sum) +
              ", Eq. 1 requires 1");
  return r;
}

AuditReport validate_capacities(const std::vector<real_t>& capacities,
                                const CapacityWeights& weights,
                                const AuditConfig& cfg) {
  AuditReport r = validate_capacities(capacities, cfg);
  if (!weights.valid())
    r.add(Severity::Error, "capacity.weights", "",
          "weights (" + std::to_string(weights.cpu) + ", " +
              std::to_string(weights.memory) + ", " +
              std::to_string(weights.bandwidth) +
              ") must be non-negative and sum to 1");
  return r;
}

}  // namespace ssamr::audit

#pragma once
/// \file capacity_audit.hpp
/// Invariant audits of relative-capacity vectors (Eq. 1).
///
/// Free functions so the capacity layer can audit itself without reaching
/// up into the audit/ aggregation layer; audit::Validator delegates here.

#include <vector>

#include "capacity/capacity.hpp"
#include "util/audit.hpp"
#include "util/types.hpp"

namespace ssamr::audit {

/// Audit a relative-capacity vector: non-empty, every C_k finite and in
/// [0, 1], and Σ C_k = 1 within tolerance (Eq. 1).
AuditReport validate_capacities(const std::vector<real_t>& capacities,
                                const AuditConfig& cfg = {});

/// As above, plus the Eq. 1 weight constraints (non-negative, sum 1).
AuditReport validate_capacities(const std::vector<real_t>& capacities,
                                const CapacityWeights& weights,
                                const AuditConfig& cfg = {});

}  // namespace ssamr::audit

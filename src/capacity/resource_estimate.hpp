#pragma once
/// \file resource_estimate.hpp
/// What the monitor reports for one node — the input record of the
/// capacity calculation (Eq. 1).
///
/// Lives in capacity/ (not monitor/) because it is the contract between
/// the two layers: the capacity calculator consumes estimates, the monitor
/// produces them, and the monitor sits above capacity in the layering DAG.

#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// What the monitor reports for one node.
struct ResourceEstimate {
  Fraction cpu_available{1.0};
  MegaBytes memory_free_mb{0};
  MbitsPerSec bandwidth_mbps{0};
};

}  // namespace ssamr

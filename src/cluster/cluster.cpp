#include "cluster/cluster.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

Cluster::Cluster(std::vector<NodeSpec> nodes, NetworkModel network)
    : nodes_(std::move(nodes)),
      loads_(nodes_.size()),
      network_(network) {
  SSAMR_REQUIRE(!nodes_.empty(), "cluster needs at least one node");
  for (const NodeSpec& n : nodes_) {
    SSAMR_REQUIRE(n.peak_rate > WorkRate{0},
                  "node peak rate must be positive");
    SSAMR_REQUIRE(n.memory_mb > MegaBytes{0}, "node memory must be positive");
    SSAMR_REQUIRE(n.bandwidth_mbps > MbitsPerSec{0},
                  "node bandwidth must be positive");
  }
}

void Cluster::check_rank(rank_t rank) const {
  SSAMR_REQUIRE(rank >= 0 && rank < size(), "rank out of range");
}

const NodeSpec& Cluster::spec(rank_t rank) const {
  check_rank(rank);
  return nodes_[static_cast<std::size_t>(rank)];
}

void Cluster::add_load(rank_t rank, const LoadRamp& ramp) {
  check_rank(rank);
  loads_[static_cast<std::size_t>(rank)].add(ramp);
}

void Cluster::set_load_script(rank_t rank, LoadScript script) {
  check_rank(rank);
  loads_[static_cast<std::size_t>(rank)] = std::move(script);
}

const LoadScript& Cluster::load_script(rank_t rank) const {
  check_rank(rank);
  return loads_[static_cast<std::size_t>(rank)];
}

void Cluster::set_fault_plan(FaultPlan plan) {
  fault_plan_ = std::make_shared<const FaultPlan>(std::move(plan));
}

bool Cluster::node_down(rank_t rank, Seconds t) const {
  check_rank(rank);
  return fault_plan_ != nullptr && fault_plan_->node_down(rank, t);
}

Seconds Cluster::resume_time(rank_t rank, Seconds t) const {
  check_rank(rank);
  return fault_plan_ == nullptr ? t : fault_plan_->resume_time(rank, t);
}

NodeState Cluster::state_at(rank_t rank, Seconds t) const {
  check_rank(rank);
  const NodeSpec& spec = nodes_[static_cast<std::size_t>(rank)];
  const LoadScript& load = loads_[static_cast<std::size_t>(rank)];
  if (fault_plan_ != nullptr && fault_plan_->node_down(rank, t)) {
    NodeState down;
    down.cpu_available = Fraction{0};
    down.memory_free_mb = MegaBytes{0};
    down.bandwidth_mbps = NetworkModel::kMinBandwidthMbps;
    return down;
  }
  NodeState s;
  s.cpu_available = load.cpu_available_at(t);
  s.memory_free_mb =
      std::max(MegaBytes{0}, spec.memory_mb - load.memory_used_at(t));
  s.bandwidth_mbps =
      std::max(MbitsPerSec{1}, spec.bandwidth_mbps - load.traffic_at(t));
  return s;
}

WorkRate Cluster::effective_rate(rank_t rank, Seconds t,
                                 MegaBytes memory_demand_mb) const {
  const NodeState s = state_at(rank, t);
  const NodeSpec& spec = nodes_[static_cast<std::size_t>(rank)];
  WorkRate rate = spec.peak_rate * s.cpu_available;
  if (memory_demand_mb > s.memory_free_mb && memory_demand_mb > MegaBytes{0}) {
    // Paging penalty: throughput degrades with the over-commit factor.
    const real_t overcommit =
        memory_demand_mb / std::max(s.memory_free_mb, MegaBytes{1});
    rate /= (1.0 + 4.0 * (overcommit - 1.0));
  }
  return std::max(rate, spec.peak_rate * 1e-3);
}

Cluster Cluster::homogeneous(int n, const NodeSpec& spec) {
  SSAMR_REQUIRE(n >= 1, "cluster size must be >= 1");
  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeSpec s = spec;
    s.name = spec.name + "-" + std::to_string(i);
    nodes.push_back(std::move(s));
  }
  return Cluster(std::move(nodes));
}

Cluster Cluster::heterogeneous(int n, const std::vector<real_t>& multipliers,
                               const NodeSpec& base) {
  SSAMR_REQUIRE(n >= 1, "cluster size must be >= 1");
  SSAMR_REQUIRE(!multipliers.empty(), "need at least one multiplier");
  std::vector<NodeSpec> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeSpec s = base;
    s.name = base.name + "-" + std::to_string(i);
    s.peak_rate =
        base.peak_rate * multipliers[static_cast<std::size_t>(i) %
                                     multipliers.size()];
    nodes.push_back(std::move(s));
  }
  return Cluster(std::move(nodes));
}

}  // namespace ssamr

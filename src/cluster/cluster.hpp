#pragma once
/// \file cluster.hpp
/// The simulated heterogeneous cluster: node specs, per-node load scripts,
/// and true resource state as a function of virtual time.
///
/// This substitutes for the paper's physical 32-node Linux cluster (see
/// DESIGN.md §2): everything the partitioning framework can observe about
/// the machine — CPU availability, free memory, deliverable bandwidth —
/// is defined here, deterministically.

#include <memory>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "cluster/load_generator.hpp"
#include "cluster/network.hpp"
#include "cluster/node.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// A heterogeneous, dynamically loaded cluster.
class Cluster {
 public:
  /// Build a cluster of the given nodes with idle load scripts.
  explicit Cluster(std::vector<NodeSpec> nodes,
                   NetworkModel network = NetworkModel{});

  /// Number of nodes.
  int size() const { return static_cast<int>(nodes_.size()); }

  const NodeSpec& spec(rank_t rank) const;
  const NetworkModel& network() const { return network_; }

  /// Attach (append) a load generator to one node.
  void add_load(rank_t rank, const LoadRamp& ramp);

  /// Replace a node's load script.
  void set_load_script(rank_t rank, LoadScript script);

  const LoadScript& load_script(rank_t rank) const;

  /// Attach a fault plan (probe faults, stale windows, crash episodes).
  /// With no plan attached — the default — the cluster is fault-free and
  /// behaves bit-identically to a cluster built before fault injection
  /// existed.
  void set_fault_plan(FaultPlan plan);

  /// The attached fault plan, or nullptr when the cluster is fault-free.
  const FaultPlan* fault_plan() const { return fault_plan_.get(); }

  /// True while a crash episode of the fault plan covers (rank, t).
  bool node_down(rank_t rank, Seconds t) const;

  /// The virtual time at which the node is next up: t itself when the node
  /// is up (always, without a fault plan), else the rejoin time of the
  /// covering crash episode(s).  Execution models price work on a crashed
  /// node as a pause until this time, not as progress at the availability
  /// floor.
  Seconds resume_time(rank_t rank, Seconds t) const;

  /// True resource state of a node at virtual time t.  During a crash
  /// episode the node is down: no CPU, no free memory, and only the
  /// bandwidth floor (in-flight messages stall rather than vanish).
  NodeState state_at(rank_t rank, Seconds t) const;

  /// Effective application compute rate (work units/second) of a node at
  /// time t: peak_rate · cpu_available, degraded when the application's
  /// memory need exceeds free memory (paging penalty).
  /// \param memory_demand_mb memory the application needs on this node
  WorkRate effective_rate(rank_t rank, Seconds t,
                           MegaBytes memory_demand_mb = MegaBytes{0}) const;

  // ---- factory helpers used by experiments -------------------------------

  /// A uniform cluster of n identical nodes.
  static Cluster homogeneous(int n, const NodeSpec& spec = NodeSpec{});

  /// A cluster whose node peak rates follow a repeating pattern of
  /// multipliers (e.g. {1.0, 0.75, 1.5, 1.25}) over a base spec — a simple
  /// way to express hardware heterogeneity.
  static Cluster heterogeneous(int n, const std::vector<real_t>& multipliers,
                               const NodeSpec& base = NodeSpec{});

 private:
  void check_rank(rank_t rank) const;
  std::vector<NodeSpec> nodes_;
  std::vector<LoadScript> loads_;
  NetworkModel network_;
  /// Heap-held so copies of a fault-free cluster stay cheap; null = none.
  std::shared_ptr<const FaultPlan> fault_plan_;
};

}  // namespace ssamr

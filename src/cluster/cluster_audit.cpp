#include "cluster/cluster_audit.hpp"

#include <algorithm>
#include <cmath>

namespace ssamr::audit {

AuditReport validate_node_state(const NodeSpec& spec, const NodeState& state,
                                const std::string& location,
                                const AuditConfig& cfg) {
  AuditReport r("cluster");
  const real_t tol = cfg.capacity_tolerance;
  if (!(spec.peak_rate > WorkRate{0}) || !(spec.memory_mb > MegaBytes{0}) ||
      !(spec.bandwidth_mbps > MbitsPerSec{0}))
    r.add(Severity::Error, "cluster.spec", location,
          "node spec has non-positive peak rate, memory or bandwidth");
  if (!std::isfinite(state.cpu_available.value()) ||
      state.cpu_available < Fraction{-tol} ||
      state.cpu_available > Fraction{1 + tol})
    r.add(Severity::Error, "cluster.availability", location,
          "cpu availability " + std::to_string(state.cpu_available.value()) +
              " outside [0, 1]");
  if (!std::isfinite(state.memory_free_mb.value()) ||
      state.memory_free_mb < MegaBytes{-tol} ||
      state.memory_free_mb > spec.memory_mb + MegaBytes{tol})
    r.add(Severity::Error, "cluster.memory", location,
          "free memory " + std::to_string(state.memory_free_mb.value()) +
              " outside [0, " + std::to_string(spec.memory_mb.value()) + "]");
  // The network model never reports below 1 Mbit/s, so links slower than
  // that legitimately "exceed" their spec by the clamp amount.
  const MbitsPerSec bw_cap = std::max(spec.bandwidth_mbps, MbitsPerSec{1});
  if (!std::isfinite(state.bandwidth_mbps.value()) ||
      !(state.bandwidth_mbps > MbitsPerSec{0}) ||
      state.bandwidth_mbps > bw_cap + MbitsPerSec{tol})
    r.add(Severity::Error, "cluster.bandwidth", location,
          "bandwidth " + std::to_string(state.bandwidth_mbps.value()) +
              " outside (0, " + std::to_string(bw_cap.value()) + "]");
  return r;
}

AuditReport validate_cluster(const Cluster& cluster, Seconds t,
                             const AuditConfig& cfg) {
  AuditReport r("cluster");
  for (rank_t k = 0; k < cluster.size(); ++k)
    r.merge(validate_node_state(cluster.spec(k), cluster.state_at(k, t),
                                "rank " + std::to_string(k) +
                                    " at t=" + std::to_string(t.value()),
                                cfg));
  return r;
}

}  // namespace ssamr::audit

#pragma once
/// \file cluster_audit.hpp
/// Invariant audits of node specs/states and whole-cluster snapshots.

#include <string>

#include "cluster/cluster.hpp"
#include "cluster/node.hpp"
#include "util/audit.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr::audit {

/// Audit one node's spec and instantaneous state: positive peak rate,
/// availability in [0, 1], free memory within [0, spec memory],
/// deliverable bandwidth positive and within the link capacity.
AuditReport validate_node_state(const NodeSpec& spec, const NodeState& state,
                                const std::string& location,
                                const AuditConfig& cfg = {});

/// Audit the whole cluster's true state at virtual time t.
AuditReport validate_cluster(const Cluster& cluster, Seconds t,
                             const AuditConfig& cfg = {});

}  // namespace ssamr::audit

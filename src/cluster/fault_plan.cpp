#include "cluster/fault_plan.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ssamr {

namespace {

/// Counter-based hash to a uniform real in [0, 1): stateless, so the
/// outcome of (seed, rank, attempt) never depends on evaluation order.
real_t hash_uniform(std::uint64_t seed, rank_t rank, std::uint64_t attempt) {
  std::uint64_t s = seed ^ (0x9e3779b97f4a7c15ULL *
                            (static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(rank)) +
                             1));
  s ^= 0xda3e39cb94b95bdbULL * (attempt + 1);
  const std::uint64_t z = splitmix64(s);
  return static_cast<real_t>(z >> 11) * 0x1.0p-53;
}

}  // namespace

const char* probe_fault_name(ProbeFault f) {
  switch (f) {
    case ProbeFault::kNone: return "ok";
    case ProbeFault::kTimeout: return "timeout";
    case ProbeFault::kDrop: return "drop";
    case ProbeFault::kStale: return "stale";
  }
  return "?";
}

void FaultPlan::add(const FaultEpisode& e) {
  SSAMR_REQUIRE(e.rank >= 0, "fault episode rank must be non-negative");
  SSAMR_REQUIRE(e.t0 < e.t1, "fault episode window must be non-empty");
  episodes_.push_back(e);
}

ProbeFault FaultPlan::probe_fault(rank_t rank, Seconds t,
                                  std::uint64_t attempt) const {
  // Scripted episodes win over random draws; among overlapping episodes
  // the first added wins (crash and timeout both read as kTimeout).
  for (const FaultEpisode& e : episodes_) {
    if (e.rank != rank || t < e.t0 || t >= e.t1) continue;
    switch (e.kind) {
      case FaultKind::kProbeTimeout:
      case FaultKind::kCrash:
        return ProbeFault::kTimeout;
      case FaultKind::kProbeDrop:
        return ProbeFault::kDrop;
      case FaultKind::kStaleWindow:
        return ProbeFault::kStale;
    }
  }
  if (probe_timeout_rate > 0 || probe_drop_rate > 0) {
    const real_t u = hash_uniform(seed, rank, attempt);
    if (u < probe_timeout_rate) return ProbeFault::kTimeout;
    if (u < probe_timeout_rate + probe_drop_rate) return ProbeFault::kDrop;
  }
  return ProbeFault::kNone;
}

bool FaultPlan::node_down(rank_t rank, Seconds t) const {
  for (const FaultEpisode& e : episodes_)
    if (e.kind == FaultKind::kCrash && e.rank == rank && t >= e.t0 &&
        t < e.t1)
      return true;
  return false;
}

Seconds FaultPlan::resume_time(rank_t rank, Seconds t) const {
  Seconds r = t;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const FaultEpisode& e : episodes_)
      if (e.kind == FaultKind::kCrash && e.rank == rank && r >= e.t0 &&
          r < e.t1) {
        r = e.t1;
        moved = true;
      }
  }
  return r;
}

Seconds FaultPlan::observable_time(rank_t rank, Seconds t) const {
  for (const FaultEpisode& e : episodes_)
    if (e.kind == FaultKind::kStaleWindow && e.rank == rank && t >= e.t0 &&
        t < e.t1)
      return e.t0;
  return t;
}

FaultPlan FaultPlan::scripted(int nodes, Seconds horizon,
                              const FaultProfile& profile,
                              std::uint64_t seed) {
  SSAMR_REQUIRE(nodes >= 1, "fault plan needs at least one node");
  SSAMR_REQUIRE(horizon > Seconds{0}, "fault plan horizon must be positive");
  SSAMR_REQUIRE(profile.probe_timeout_rate >= 0 &&
                    profile.probe_drop_rate >= 0 &&
                    profile.probe_timeout_rate + profile.probe_drop_rate <=
                        1.0,
                "probe fault rates must be probabilities summing to <= 1");
  SSAMR_REQUIRE(profile.episode_fraction > 0 &&
                    profile.episode_fraction <= 1,
                "episode fraction must lie in (0, 1]");

  FaultPlan plan;
  plan.seed = seed;
  plan.probe_timeout_rate = profile.probe_timeout_rate;
  plan.probe_drop_rate = profile.probe_drop_rate;

  Rng rng(seed);
  const Seconds span = profile.episode_fraction * horizon;
  // The RNG is a raw-double seam: unwrap the start-time bound once, here.
  const real_t max_start_s = std::max(horizon - span, Seconds{0}).value();
  auto scatter = [&](FaultKind kind, int count) {
    for (int i = 0; i < count; ++i) {
      FaultEpisode e;
      e.rank = static_cast<rank_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1));
      e.kind = kind;
      e.t0 = Seconds{rng.uniform(0.0, max_start_s)};
      e.t1 = e.t0 + span;
      plan.add(e);
    }
  };
  scatter(FaultKind::kStaleWindow, profile.stale_windows);
  scatter(FaultKind::kCrash, profile.crash_episodes);
  return plan;
}

}  // namespace ssamr

#pragma once
/// \file fault_plan.hpp
/// Deterministic, seeded fault injection for the simulated cluster.
///
/// The paper's premise is that clusters are dynamically loaded *and*
/// unreliable: NWS probes cost ~0.5 s per node, can time out or return
/// stale data, and nodes come and go.  A FaultPlan scripts exactly that,
/// in virtual time and fully reproducibly: scripted episodes (probe
/// timeout / dropout windows, stale-reading windows, transient node
/// crash/rejoin episodes) plus seeded per-attempt probe failures drawn
/// from a counter-based hash, so the outcome of attempt k on node r is a
/// pure function of (seed, rank, attempt) — independent of call order and
/// thread count.
///
/// The plan is attached to a Cluster (cluster.hpp).  With no plan
/// attached every probe succeeds and the cluster behaves exactly as
/// before — the zero-fault path is bit-identical.

#include <cstdint>
#include <vector>

#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// What one probe attempt experiences.
enum class ProbeFault : std::uint8_t {
  kNone,     ///< the probe answers normally
  kTimeout,  ///< no answer within the deadline (costs the full deadline)
  kDrop,     ///< fast failure (connection refused, costs one probe)
  kStale,    ///< an answer arrives but reflects an earlier system state
};

/// Human-readable name of a probe fault ("ok", "timeout", ...).
const char* probe_fault_name(ProbeFault f);

/// Kinds of scripted fault episodes.
enum class FaultKind : std::uint8_t {
  kProbeTimeout,  ///< probes of the node time out during the window
  kProbeDrop,     ///< probes of the node fail fast during the window
  kStaleWindow,   ///< probes answer with readings frozen at the window start
  kCrash,         ///< node down: probes fail and the node does no work
};

/// One scripted fault episode on one node over a virtual-time window.
struct FaultEpisode {
  rank_t rank = 0;
  FaultKind kind = FaultKind::kProbeTimeout;
  Seconds t0{0};       ///< window start (inclusive)
  Seconds t1{1.0e30};  ///< window end (exclusive)
};

/// Rates and episode counts for the scripted() factory.
struct FaultProfile {
  /// Per-attempt probability that a probe times out (counter-hashed).
  real_t probe_timeout_rate = 0;
  /// Per-attempt probability that a probe fails fast (counter-hashed).
  real_t probe_drop_rate = 0;
  /// Number of stale-reading windows scattered over nodes and time.
  int stale_windows = 0;
  /// Number of transient crash/rejoin episodes scattered over nodes.
  int crash_episodes = 0;
  /// Duration of each scripted episode as a fraction of the horizon.
  real_t episode_fraction = 0.12;
};

/// A deterministic fault script for one cluster.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Per-attempt random fault rates (on top of scripted episodes).
  real_t probe_timeout_rate = 0;
  real_t probe_drop_rate = 0;
  std::uint64_t seed = 0x5eedfa17ULL;

  /// Add one scripted episode.
  void add(const FaultEpisode& e);

  const std::vector<FaultEpisode>& episodes() const { return episodes_; }

  /// True when the plan can never produce a fault.
  bool benign() const {
    return episodes_.empty() && probe_timeout_rate <= 0 &&
           probe_drop_rate <= 0;
  }

  /// Outcome of probe attempt number `attempt` (a per-(node, monitor)
  /// counter) against node `rank` at virtual time t.  Scripted episodes
  /// win over random draws; crash episodes answer kTimeout (the node is
  /// unreachable).
  ProbeFault probe_fault(rank_t rank, Seconds t,
                         std::uint64_t attempt) const;

  /// True while a crash episode covers (rank, t): the node does no work
  /// and delivers no bandwidth.
  bool node_down(rank_t rank, Seconds t) const;

  /// The virtual time at which the node is next up: t itself when no crash
  /// episode covers (rank, t), else the end of the covering episode(s) —
  /// chained/overlapping episodes are followed through.
  Seconds resume_time(rank_t rank, Seconds t) const;

  /// The virtual time a probe answer at time t actually reflects: the
  /// start of the covering stale window, or t when none covers.
  Seconds observable_time(rank_t rank, Seconds t) const;

  /// Seeded random plan: per-attempt timeout/drop rates plus scripted
  /// stale windows and crash/rejoin episodes scattered over `nodes` nodes
  /// and the virtual-time horizon.  Equal inputs yield identical plans.
  static FaultPlan scripted(int nodes, Seconds horizon,
                            const FaultProfile& profile, std::uint64_t seed);

 private:
  std::vector<FaultEpisode> episodes_;
};

}  // namespace ssamr

#include "cluster/load_generator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

real_t LoadRamp::level_at(Seconds t) const {
  if (t < start_time || t >= stop_time) return 0;
  if (rate <= 0) return target_level;
  const real_t ramped = rate * (t - start_time).value();
  return std::min(ramped, target_level);
}

real_t LoadScript::load_at(Seconds t) const {
  real_t sum = 0;
  for (const LoadRamp& r : ramps_) sum += r.level_at(t);
  return sum;
}

MegaBytes LoadScript::memory_used_at(Seconds t) const {
  MegaBytes sum{0};
  for (const LoadRamp& r : ramps_) {
    if (r.target_level <= 0) {
      if (r.level_at(t) == 0 && (t < r.start_time || t >= r.stop_time))
        continue;
      sum += r.memory_mb;
      continue;
    }
    sum += r.memory_mb * (r.level_at(t) / r.target_level);
  }
  return sum;
}

MbitsPerSec LoadScript::traffic_at(Seconds t) const {
  MbitsPerSec sum{0};
  for (const LoadRamp& r : ramps_) {
    if (r.target_level <= 0) continue;
    sum += r.traffic_mbps * (r.level_at(t) / r.target_level);
  }
  return sum;
}

Fraction LoadScript::cpu_available_at(Seconds t) const {
  return Fraction{1.0 / (1.0 + load_at(t))};
}

}  // namespace ssamr

#pragma once
/// \file load_generator.hpp
/// Synthetic load generation (paper §6.1.1).
///
/// "The load generator decreased the available memory and increased CPU
///  load on a processor ... The load generated on the processor increased
///  linearly at a specified rate until it reached the desired load level.
///  Note that multiple load generators were run on a processor to create
///  interesting load dynamics."
///
/// A LoadRamp is one such generator; a LoadScript composes several per
/// node and evaluates the resulting CPU / memory pressure at any virtual
/// time.  CPU sharing is fair-share: with background load L (in runnable
/// processes), the application obtains 1 / (1 + L) of the CPU.

#include <vector>

#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// One synthetic load generator process.
struct LoadRamp {
  /// Virtual time at which the generator starts.
  Seconds start_time{0.0};
  /// Virtual time at which the generator exits (inf = forever).
  Seconds stop_time{1.0e30};
  /// Load increase per second until the target is reached.
  real_t rate = 0.1;
  /// Target load level (number of runnable background processes added).
  real_t target_level = 1.0;
  /// Memory the generator consumes in MB, proportional to its current load
  /// fraction of target.
  MegaBytes memory_mb{0.0};
  /// Network traffic the generator injects, in Mbit/s at full level.
  MbitsPerSec traffic_mbps{0.0};

  /// Current load level at virtual time t (0 outside the active window,
  /// ramping linearly to target inside).
  real_t level_at(Seconds t) const;
};

/// The composed load on one node.
class LoadScript {
 public:
  LoadScript() = default;

  /// Add one generator to the composition.
  void add(const LoadRamp& ramp) { ramps_.push_back(ramp); }

  /// Total background load level at time t (sum over generators).
  real_t load_at(Seconds t) const;

  /// Memory consumed by generators at time t, in MB.
  MegaBytes memory_used_at(Seconds t) const;

  /// Network traffic injected at time t, in Mbit/s.
  MbitsPerSec traffic_at(Seconds t) const;

  /// Fraction of CPU available to the application at time t under
  /// fair-share scheduling: 1 / (1 + load).
  Fraction cpu_available_at(Seconds t) const;

  bool empty() const { return ramps_.empty(); }
  std::size_t size() const { return ramps_.size(); }

 private:
  std::vector<LoadRamp> ramps_;
};

}  // namespace ssamr

#include "cluster/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

namespace {
constexpr real_t kMinBandwidthMbps = NetworkModel::kMinBandwidthMbps;
}

real_t NetworkModel::transfer_time(std::int64_t bytes, real_t src_mbps,
                                   real_t dst_mbps) const {
  SSAMR_REQUIRE(bytes >= 0, "negative transfer size");
  if (bytes == 0) return 0;
  const real_t mbps = std::max(
      kMinBandwidthMbps, std::min(src_mbps, dst_mbps) * efficiency);
  const real_t bits = static_cast<real_t>(bytes) * 8.0;
  return latency_s + bits / (mbps * 1.0e6);
}

real_t NetworkModel::exchange_time(std::int64_t bytes,
                                   real_t self_mbps) const {
  SSAMR_REQUIRE(bytes >= 0, "negative exchange size");
  if (bytes == 0) return 0;
  const real_t mbps = std::max(kMinBandwidthMbps, self_mbps * efficiency);
  const real_t bits = static_cast<real_t>(bytes) * 8.0;
  return latency_s + bits / (mbps * 1.0e6);
}

}  // namespace ssamr

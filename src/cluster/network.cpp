#include "cluster/network.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

namespace {
constexpr MbitsPerSec kMinBandwidthMbps = NetworkModel::kMinBandwidthMbps;
}

Seconds NetworkModel::transfer_time(Bytes bytes, MbitsPerSec src_mbps,
                                    MbitsPerSec dst_mbps) const {
  SSAMR_REQUIRE(bytes >= Bytes{0}, "negative transfer size");
  if (bytes == Bytes{0}) return Seconds{0};
  // Bytes / MbitsPerSec -> Seconds carries the historical scaling
  // (bytes * 8.0, then / (mbps * 1.0e6)) inside units.hpp, so the result
  // is bit-identical to the raw-double model.
  const MbitsPerSec mbps = std::max(
      kMinBandwidthMbps, std::min(src_mbps, dst_mbps) * efficiency);
  return latency_s + bytes / mbps;
}

Seconds NetworkModel::exchange_time(Bytes bytes,
                                    MbitsPerSec self_mbps) const {
  SSAMR_REQUIRE(bytes >= Bytes{0}, "negative exchange size");
  if (bytes == Bytes{0}) return Seconds{0};
  const MbitsPerSec mbps = std::max(kMinBandwidthMbps, self_mbps * efficiency);
  return latency_s + bytes / mbps;
}

}  // namespace ssamr

#pragma once
/// \file network.hpp
/// Communication cost model for the simulated cluster interconnect.
///
/// The paper's testbed uses switched Fast Ethernet.  Transfer time follows
/// the classic latency + size/bandwidth model, where the deliverable
/// bandwidth of each endpoint is its NIC bandwidth minus background
/// traffic (from the load generators), and a transfer is limited by the
/// slower endpoint.

#include "cluster/node.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// Parameters of the interconnect.
struct NetworkModel {
  /// Floor on any deliverable bandwidth (keeps transfer times finite when
  /// background traffic saturates a link).
  static constexpr MbitsPerSec kMinBandwidthMbps{0.1};

  /// One-way message latency in seconds (Fast Ethernet + TCP ≈ 100 µs).
  Seconds latency_s{1.0e-4};
  /// Protocol efficiency: fraction of nominal link bandwidth achievable by
  /// a single TCP stream.
  Fraction efficiency{0.85};

  /// Seconds to move `bytes` between endpoints whose deliverable
  /// bandwidths are src_mbps and dst_mbps.  Zero bytes cost nothing.
  Seconds transfer_time(Bytes bytes, MbitsPerSec src_mbps,
                        MbitsPerSec dst_mbps) const;

  /// Seconds for one rank to move `bytes` of ghost data given its own
  /// deliverable bandwidth (the aggregate of its exchanges; peers assumed
  /// no slower on average).
  Seconds exchange_time(Bytes bytes, MbitsPerSec self_mbps) const;
};

}  // namespace ssamr

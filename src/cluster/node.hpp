#pragma once
/// \file node.hpp
/// Static description and instantaneous state of one cluster node.
///
/// The paper's testbed is a 32-node Linux cluster on Fast Ethernet; nodes
/// differ in capability (heterogeneity) and in background load (dynamism).
/// NodeSpec captures the former, NodeState the latter at one instant of
/// virtual time.

#include <string>

#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// Hardware capability of a node (time-invariant).
struct NodeSpec {
  std::string name = "node";
  /// Work units the node retires per virtual second at 100 % CPU
  /// availability (1 work unit = one cell update of the work model).
  WorkRate peak_rate{1.0e6};
  /// Physical memory in MB.
  MegaBytes memory_mb{512.0};
  /// Link bandwidth in Mbit/s (paper: Fast Ethernet, 100 Mbit/s).
  MbitsPerSec bandwidth_mbps{100.0};
};

/// True resource availability of a node at one virtual time.
struct NodeState {
  /// Fraction of CPU an application process can obtain (0..1].
  Fraction cpu_available{1.0};
  /// Free memory in MB.
  MegaBytes memory_free_mb{512.0};
  /// Currently deliverable link bandwidth in Mbit/s.
  MbitsPerSec bandwidth_mbps{100.0};
};

}  // namespace ssamr

#include "core/experiment.hpp"

#include <cstdlib>
#include <filesystem>

#include "util/error.hpp"

namespace ssamr::exp {

int env_int(const char* name, int fallback, int min_value, int max_value) {
  SSAMR_REQUIRE(min_value <= max_value, "env_int: empty valid range");
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  if (parsed < static_cast<long>(min_value) ||
      parsed > static_cast<long>(max_value))
    return fallback;
  return static_cast<int>(parsed);
}

real_t env_real(const char* name, real_t fallback, real_t min_value,
                real_t max_value) {
  SSAMR_REQUIRE(min_value <= max_value, "env_real: empty valid range");
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0') return fallback;
  // Written so NaN fails: !(lo <= x && x <= hi), not (x < lo || x > hi).
  if (!(parsed >= min_value && parsed <= max_value)) return fallback;
  return static_cast<real_t>(parsed);
}

std::string results_path(const std::string& filename) {
  namespace fs = std::filesystem;
  const char* env = std::getenv("SSAMR_RESULTS_DIR");
  const fs::path dir = (env != nullptr && *env != '\0') ? fs::path(env)
                                                        : fs::path("results");
  std::error_code ec;
  fs::create_directories(dir, ec);  // best-effort; CsvWriter reports failure
  return (dir / filename).string();
}

int run_iterations(int default_iters) {
  if (const char* env = std::getenv("SSAMR_EXP_ITERS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  return default_iters;
}

TraceConfig paper_trace_config() {
  TraceConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(128, 32, 32), 0);
  cfg.ratio = 2;
  cfg.max_levels = 4;  // base + 3 levels of factor-2 refinement
  cfg.interface_x0 = 0.25;
  cfg.speed = 0.03;
  cfg.amplitude0 = 0.5;
  cfg.growth = 0.12;
  cfg.max_amplitude = 2.0;
  cfg.waves_y = 2;
  cfg.waves_z = 1;
  cfg.band_halfwidth = 2.0;
  // Clustering tuned for realistic box counts (tens to low hundreds):
  // modest fill efficiency and a coarse acceptance size keep the wavy
  // interface from fragmenting into thousands of slivers.
  cfg.cluster.efficiency = 0.55;
  cfg.cluster.min_box_size = 8;
  cfg.cluster.small_box_cells = 4096;
  return cfg;
}

std::vector<real_t> reference_capacities4() {
  return {0.16, 0.19, 0.31, 0.34};
}

Cluster paper_cluster(int n) {
  NodeSpec spec;
  spec.name = "linux";
  spec.peak_rate = WorkRate{4.2e6};  // cell updates per second
  spec.memory_mb = MegaBytes{256.0};
  spec.bandwidth_mbps = MbitsPerSec{100.0};  // Fast Ethernet
  return Cluster::homogeneous(n, spec);
}

void apply_static_loads(Cluster& cluster) {
  // §6.2.1 setup: the synthetic load generator keeps a subset of the
  // machines busy for the whole run.  The paper does not report its load
  // levels per configuration; we model a shared cluster whose background
  // load grows with its size (small partitions borrow lightly loaded
  // nodes, large ones inevitably include busy ones), which reproduces the
  // reported trend of the improvement growing with the processor count.
  SSAMR_REQUIRE(cluster.size() >= 2, "need at least two nodes");
  auto steady = [](real_t level, real_t memory, real_t traffic) {
    LoadRamp r;
    r.start_time = Seconds{-1.0};  // already at level when the run starts
    r.rate = 1.0e9;
    r.target_level = level;
    r.memory_mb = MegaBytes{memory};
    r.traffic_mbps = MbitsPerSec{traffic};
    return r;
  };
  const int n = cluster.size();
  if (n <= 8) {
    cluster.add_load(0, steady(0.55, 80.0, 26.0));  // cpu_avail ≈ 0.65
    cluster.add_load(1, steady(0.25, 45.0, 13.0));  // cpu_avail = 0.80
  } else {
    cluster.add_load(0, steady(1.10, 118.0, 42.0));  // cpu_avail ≈ 0.48
    cluster.add_load(1, steady(0.50, 70.0, 25.0));  // cpu_avail ≈ 0.67
    // Every further group of 8 nodes contributes one moderately busy node,
    // and every group of 16 one heavily loaded node.
    for (rank_t r = 8; r < n; r += 8)
      cluster.add_load(r, steady(0.30, 40.0, 12.0));  // cpu_avail ≈ 0.77
    for (rank_t r = 16; r < n; r += 16)
      cluster.add_load(r, steady(1.10, 110.0, 40.0));  // cpu_avail ≈ 0.48
  }
}

void apply_dynamic_loads(Cluster& cluster, real_t timescale_s) {
  SSAMR_REQUIRE(cluster.size() >= 2, "need at least two nodes");
  SSAMR_REQUIRE(timescale_s > 0, "timescale must be positive");
  const real_t tau = timescale_s;

  // The generators consume CPU and memory and inject network traffic, so
  // all three Eq. 1 resource columns track the disturbance.  Two long
  // plateaus (heavy on node 0, then moderate on node 1) plus a light late
  // generator create the paper's "interesting load dynamics": a sensing
  // scheme reacting within a few regrids captures nearly the whole
  // benefit, while sensing only once misses all of it.
  // Node 0: a heavy generator ramps up slowly (the paper's generators
  // "increased linearly at a specified rate until [reaching] the desired
  // load level") and exits past mid-run.
  {
    LoadRamp r;
    r.start_time = Seconds{0.05 * tau};
    r.stop_time = Seconds{0.55 * tau};
    r.rate = 4.5 / (0.20 * tau);  // reaches level 4.5 in 0.20 τ
    r.target_level = 4.5;
    r.memory_mb = MegaBytes{185.0};
    r.traffic_mbps = MbitsPerSec{80.0};
    cluster.add_load(0, r);
  }
  // Node 1: a moderate generator ramps through the second half and stays.
  {
    LoadRamp r;
    r.start_time = Seconds{0.55 * tau};
    r.rate = 2.6 / (0.18 * tau);
    r.target_level = 2.6;
    r.memory_mb = MegaBytes{150.0};
    r.traffic_mbps = MbitsPerSec{58.0};
    cluster.add_load(1, r);
  }
  // Node 0 again: a second, lighter generator late in the run ("multiple
  // load generators were run on a processor to create interesting load
  // dynamics").
  {
    LoadRamp r;
    r.start_time = Seconds{0.85 * tau};
    r.rate = 0.6 / (0.05 * tau);
    r.target_level = 0.6;
    r.memory_mb = MegaBytes{40.0};
    r.traffic_mbps = MbitsPerSec{15.0};
    cluster.add_load(0, r);
  }
}

namespace {

/// Process-wide model selection (bench drivers pick once in main()).
ExecModelKind g_exec_model = ExecModelKind::kBsp;
bool g_exec_model_forced = false;

}  // namespace

void set_exec_model(ExecModelKind kind) {
  g_exec_model = kind;
  g_exec_model_forced = true;
}

ExecModelKind current_exec_model() {
  if (g_exec_model_forced) return g_exec_model;
  if (const char* env = std::getenv("SSAMR_EXEC_MODEL");
      env != nullptr && *env != '\0')
    return parse_exec_model_name(env);
  return ExecModelKind::kBsp;
}

ExecModelKind select_exec_model(int argc, char** argv) {
  const std::string flag = "--exec-model=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(flag, 0) == 0)
      set_exec_model(parse_exec_model_name(arg.substr(flag.size())));
  }
  return current_exec_model();
}

std::string maybe_export_trace(const RunTrace& trace) {
  const char* env = std::getenv("SSAMR_TRACE_JSON");
  if (env == nullptr || *env == '\0') return {};
  sim::write_chrome_trace_file(env, trace);
  return env;
}

RuntimeConfig paper_runtime_config(int iterations, int sensing_interval) {
  RuntimeConfig cfg;
  cfg.total_iterations = iterations;
  cfg.regrid_interval = 5;
  cfg.sensing.interval = sensing_interval;
  cfg.weights = CapacityWeights::equal();
  cfg.work.ratio = 2;
  cfg.work.cost_per_cell = Work{1.0};
  cfg.monitor.probe_cost_s = Seconds{1.0};
  cfg.monitor.noise.cpu_sigma = 0.05;
  cfg.monitor.noise.memory_sigma = 0.02;
  cfg.monitor.noise.bandwidth_sigma = 0.08;
  cfg.monitor.seed = 2001;
  cfg.executor.ncomp = 5;
  cfg.executor.ghost = 1;  // first-order Rusanov stencil
  cfg.executor.comm_overlap = Fraction{0.8};
  cfg.exec_model = current_exec_model();
  return cfg;
}

real_t Comparison::improvement() const {
  if (grace_default.total_time <= Seconds{0}) return 0;
  return (grace_default.total_time - system_sensitive.total_time) /
         grace_default.total_time;
}

Comparison compare_partitioners(int nprocs, int iterations,
                                int sensing_interval, bool dynamic_loads,
                                real_t dynamic_timescale_s) {
  Comparison out;
  const RuntimeConfig cfg =
      paper_runtime_config(iterations, sensing_interval);

  auto run_one = [&](const Partitioner& p) {
    Cluster cluster = paper_cluster(nprocs);
    if (dynamic_loads)
      apply_dynamic_loads(cluster, dynamic_timescale_s);
    else
      apply_static_loads(cluster);
    TraceWorkloadSource source(paper_trace_config());
    AdaptiveRuntime runtime(cluster, source, p, cfg);
    return runtime.run();
  };

  HeterogeneousPartitioner het;
  GraceDefaultPartitioner def;
  out.system_sensitive = run_one(het);
  out.grace_default = run_one(def);
  return out;
}

RunTrace run_dynamic_het(int nprocs, int iterations, int sensing_interval,
                         real_t tau) {
  Cluster cluster = paper_cluster(nprocs);
  apply_dynamic_loads(cluster, tau);
  TraceWorkloadSource source(paper_trace_config());
  HeterogeneousPartitioner het;
  const RuntimeConfig cfg =
      paper_runtime_config(iterations, sensing_interval);
  AdaptiveRuntime runtime(cluster, source, het, cfg);
  return runtime.run();
}

real_t calibrate_timescale(int nprocs, int iterations, int sensing_interval,
                           int passes) {
  SSAMR_REQUIRE(passes >= 1, "need at least one pass");
  real_t tau = 300.0;
  for (int i = 0; i < passes; ++i) {
    const RunTrace t =
        run_dynamic_het(nprocs, iterations, sensing_interval, tau);
    tau = 0.95 * t.total_time.value();
  }
  return tau;
}

}  // namespace ssamr::exp

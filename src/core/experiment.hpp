#pragma once
/// \file experiment.hpp
/// Shared experiment setups for the paper's evaluation (§6).
///
/// Every bench binary (bench/) and several integration tests build their
/// scenarios through these helpers so that cluster configurations, load
/// scripts and runtime parameters stay consistent with the descriptions in
/// EXPERIMENTS.md.

#include <limits>
#include <string>
#include <vector>

#include "core/ssamr.hpp"

namespace ssamr::exp {

/// Validated integer environment knob: parse `$name` as a base-10 integer
/// and return it when the whole string parses and the value lies in
/// [min_value, max_value]; otherwise return `fallback` (unset, empty,
/// trailing garbage, and out-of-range values all fall back — an operator
/// typo must never smuggle a zero or negative count into a driver).
int env_int(const char* name, int fallback, int min_value,
            int max_value = std::numeric_limits<int>::max());

/// Validated floating-point environment knob; same fallback-on-garbage
/// contract as env_int (NaN never passes the range check).
real_t env_real(const char* name, real_t fallback, real_t min_value,
                real_t max_value);

/// Path for a generated result file: `$SSAMR_RESULTS_DIR/filename`
/// (default directory `results/`, created on demand).  Keeps generated
/// CSVs out of the repo root; the golden-file regression tests point
/// SSAMR_RESULTS_DIR at a scratch directory.
std::string results_path(const std::string& filename);

/// Iteration count for an experiment driver: `$SSAMR_EXP_ITERS` when set
/// (the golden regression tests run the drivers at a small trial count),
/// otherwise `default_iters` (the paper-scale run).
int run_iterations(int default_iters);

/// The paper's application scale: 128×32×32 base mesh, 3 levels of
/// factor-2 refinement, regrid every 5 iterations.
TraceConfig paper_trace_config();

/// Fixed reference capacities of the 4-processor experiments
/// (≈ 16 %, 19 %, 31 %, 34 % — Figs. 8–10).
std::vector<real_t> reference_capacities4();

/// A cluster of n identical nodes (paper hardware: Linux boxes on
/// 100 Mbit Fast Ethernet).
Cluster paper_cluster(int n);

/// Load a cluster the way §6.1.3 describes: synthetic generators on a
/// subset of nodes, producing relative capacities ≈ reference_capacities4()
/// on 4 nodes (and the analogous pattern, repeated, on larger clusters).
/// Loads are constant in time (ramps complete before t=0 effectively).
void apply_static_loads(Cluster& cluster);

/// Load scripts with strong dynamics for the sensing experiments
/// (Fig. 11, Tables II & III): generators start/stop at different virtual
/// times on two of every four nodes.
void apply_dynamic_loads(Cluster& cluster, real_t timescale_s);

/// Baseline runtime configuration of the paper runs.  Uses the execution
/// model selected via select_exec_model()/set_exec_model() (default: BSP,
/// which reproduces the golden CSVs bit-for-bit).
/// \param iterations total coarse iterations
/// \param sensing_interval iterations between probes (0 = sense once)
RuntimeConfig paper_runtime_config(int iterations, int sensing_interval);

/// Select the execution model for subsequent paper_runtime_config() calls:
/// a `--exec-model=bsp|event|proc` argument wins, else the
/// SSAMR_EXEC_MODEL environment variable, else the BSP default.  Bench
/// drivers call this from main(); returns the selection so drivers can
/// print it.
ExecModelKind select_exec_model(int argc, char** argv);

/// Force the execution model programmatically (overrides the environment).
void set_exec_model(ExecModelKind kind);

/// The execution model subsequent paper_runtime_config() calls will use.
ExecModelKind current_exec_model();

/// When $SSAMR_TRACE_JSON names a file, export `trace` there as Chrome
/// trace-event JSON (load it in chrome://tracing or ui.perfetto.dev).
/// Returns the path written, or empty when the variable is unset.
std::string maybe_export_trace(const RunTrace& trace);

/// Outcome of running both partitioners on identical setups.
struct Comparison {
  RunTrace system_sensitive;
  RunTrace grace_default;
  /// (T_default − T_system) / T_default, as a fraction.
  real_t improvement() const;
};

/// Run the default and the system-sensitive partitioner under identical
/// cluster/load/workload conditions (fresh, deterministic state per run).
Comparison compare_partitioners(int nprocs, int iterations,
                                int sensing_interval, bool dynamic_loads,
                                real_t dynamic_timescale_s = 120.0);

/// One run of the system-sensitive partitioner under the dynamic load
/// script with timescale `tau` (fresh deterministic state).
RunTrace run_dynamic_het(int nprocs, int iterations, int sensing_interval,
                         real_t tau);

/// Fixed-point calibration of the dynamic-load timescale: iterate until
/// the scripted load events span the actual run duration.  The returned τ
/// is then reused across the runs being compared, so every configuration
/// faces the *same* load dynamics (paper §6.2.3: "The synthetic load
/// dynamics are the same in each case").
real_t calibrate_timescale(int nprocs, int iterations, int sensing_interval,
                           int passes = 3);

}  // namespace ssamr::exp

#pragma once
/// \file ssamr.hpp
/// Umbrella header for the ssamr library — adaptive system-sensitive
/// partitioning of SAMR applications on (simulated) heterogeneous clusters,
/// reproducing Sinha & Parashar, CLUSTER 2001.
///
/// Typical use (see examples/quickstart.cpp):
///
///   using namespace ssamr;
///   Cluster cluster = Cluster::homogeneous(4);
///   cluster.add_load(0, LoadRamp{...});           // make it heterogeneous
///   TraceWorkloadSource source(TraceConfig{});    // or a live solver
///   HeterogeneousPartitioner partitioner;
///   AdaptiveRuntime runtime(cluster, source, partitioner, RuntimeConfig{});
///   RunTrace trace = runtime.run();

#include "amr/cluster_br.hpp"       // IWYU pragma: export
#include "amr/flagging.hpp"         // IWYU pragma: export
#include "amr/flux_register.hpp"    // IWYU pragma: export
#include "amr/hierarchy.hpp"        // IWYU pragma: export
#include "amr/integrator.hpp"       // IWYU pragma: export
#include "amr/particles.hpp"        // IWYU pragma: export
#include "amr/richardson.hpp"       // IWYU pragma: export
#include "amr/trace_generator.hpp"  // IWYU pragma: export
#include "amr/workload.hpp"         // IWYU pragma: export
#include "audit/audit.hpp"          // IWYU pragma: export
#include "audit/validator.hpp"      // IWYU pragma: export
#include "capacity/capacity.hpp"    // IWYU pragma: export
#include "cluster/cluster.hpp"      // IWYU pragma: export
#include "geom/box.hpp"             // IWYU pragma: export
#include "geom/box_list.hpp"        // IWYU pragma: export
#include "hdda/hdda.hpp"            // IWYU pragma: export
#include "monitor/monitor_service.hpp"  // IWYU pragma: export
#include "partition/grace_default.hpp"  // IWYU pragma: export
#include "partition/greedy.hpp"         // IWYU pragma: export
#include "partition/heterogeneous.hpp"  // IWYU pragma: export
#include "partition/knapsack.hpp"       // IWYU pragma: export
#include "partition/metrics.hpp"        // IWYU pragma: export
#include "partition/multiaxis.hpp"      // IWYU pragma: export
#include "partition/sfc_heterogeneous.hpp"  // IWYU pragma: export
#include "partition/sfc_knapsack.hpp"   // IWYU pragma: export
#include "partition/zoo.hpp"            // IWYU pragma: export
#include "runtime/runtime.hpp"          // IWYU pragma: export
#include "sim/chrome_trace.hpp"         // IWYU pragma: export
#include "sim/exec_model.hpp"           // IWYU pragma: export
#include "solver/advection.hpp"         // IWYU pragma: export
#include "solver/euler.hpp"             // IWYU pragma: export
#include "solver/richtmyer_meshkov.hpp" // IWYU pragma: export

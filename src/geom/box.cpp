#include "geom/box.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/error.hpp"

namespace ssamr {

std::ostream& operator<<(std::ostream& os, IntVec v) {
  return os << '(' << v.x << ',' << v.y << ',' << v.z << ')';
}

Box::Box() : lo_(IntVec::splat(0)), hi_(IntVec::splat(-1)), level_(0) {}

Box::Box(IntVec lo, IntVec hi, level_t level)
    : lo_(lo), hi_(hi), level_(level) {
  SSAMR_REQUIRE(level >= 0, "refinement level must be non-negative");
}

Box Box::from_extent(IntVec lo, IntVec extent, level_t level) {
  return Box(lo, lo + extent - IntVec::splat(1), level);
}

bool Box::empty() const {
  return hi_.x < lo_.x || hi_.y < lo_.y || hi_.z < lo_.z;
}

IntVec Box::extent() const {
  if (empty()) return IntVec::splat(0);
  return hi_ - lo_ + IntVec::splat(1);
}

std::int64_t Box::cells() const { return extent().product(); }

bool Box::contains(IntVec p) const { return p.all_ge(lo_) && p.all_le(hi_); }

bool Box::contains(const Box& other) const {
  if (other.empty()) return true;
  SSAMR_REQUIRE(level_ == other.level_, "level mismatch in Box::contains");
  return other.lo_.all_ge(lo_) && other.hi_.all_le(hi_);
}

bool Box::intersects(const Box& other) const {
  return !intersection(other).empty();
}

Box Box::intersection(const Box& other) const {
  if (empty() || other.empty()) return Box();
  SSAMR_REQUIRE(level_ == other.level_,
                "level mismatch in Box::intersection");
  return Box(max(lo_, other.lo_), min(hi_, other.hi_), level_);
}

Box Box::grown(coord_t n) const {
  if (empty()) return *this;
  return Box(lo_ - IntVec::splat(n), hi_ + IntVec::splat(n), level_);
}

Box Box::shifted(IntVec offset) const {
  if (empty()) return *this;
  return Box(lo_ + offset, hi_ + offset, level_);
}

Box Box::refined(coord_t ratio, int levels_up) const {
  SSAMR_REQUIRE(ratio >= 2, "refinement ratio must be >= 2");
  SSAMR_REQUIRE(levels_up >= 1, "levels_up must be >= 1");
  if (empty()) return Box(lo_, hi_, level_ + levels_up);
  coord_t r = 1;
  for (int i = 0; i < levels_up; ++i) r *= ratio;
  return Box(lo_ * r, (hi_ + IntVec::splat(1)) * r - IntVec::splat(1),
             level_ + levels_up);
}

namespace {
coord_t floor_div(coord_t a, coord_t b) {
  coord_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
}  // namespace

Box Box::coarsened(coord_t ratio) const {
  SSAMR_REQUIRE(ratio >= 2, "refinement ratio must be >= 2");
  SSAMR_REQUIRE(level_ >= 1, "cannot coarsen a level-0 box");
  if (empty()) return Box(lo_, hi_, level_ - 1);
  const IntVec lo(floor_div(lo_.x, ratio), floor_div(lo_.y, ratio),
                  floor_div(lo_.z, ratio));
  const IntVec hi(floor_div(hi_.x, ratio), floor_div(hi_.y, ratio),
                  floor_div(hi_.z, ratio));
  return Box(lo, hi, level_ - 1);
}

int Box::longest_axis() const {
  const IntVec e = extent();
  int axis = 0;
  for (int d = 1; d < kDim; ++d)
    if (e[d] > e[axis]) axis = d;
  return axis;
}

int Box::shortest_axis() const {
  const IntVec e = extent();
  int axis = 0;
  for (int d = 1; d < kDim; ++d)
    if (e[d] < e[axis]) axis = d;
  return axis;
}

real_t Box::aspect_ratio() const {
  if (empty()) return 0;
  const IntVec e = extent();
  return static_cast<real_t>(e[longest_axis()]) /
         static_cast<real_t>(e[shortest_axis()]);
}

std::pair<Box, Box> Box::split(int axis, coord_t offset) const {
  SSAMR_REQUIRE(axis >= 0 && axis < kDim, "split axis out of range");
  SSAMR_REQUIRE(offset > 0 && offset < extent()[axis],
                "split offset must fall strictly inside the box");
  IntVec left_hi = hi_;
  left_hi.at(axis) = lo_[axis] + offset - 1;
  IntVec right_lo = lo_;
  right_lo.at(axis) = lo_[axis] + offset;
  return {Box(lo_, left_hi, level_), Box(right_lo, hi_, level_)};
}

std::pair<Box, Box> Box::halved() const {
  const int axis = longest_axis();
  return split(axis, extent()[axis] / 2);
}

bool operator==(const Box& a, const Box& b) {
  if (a.empty() && b.empty()) return true;
  return a.lo_ == b.lo_ && a.hi_ == b.hi_ && a.level_ == b.level_;
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
  return os << "Box[L" << b.level() << ' ' << b.lo() << ".." << b.hi() << ']';
}

Box bounding_union(const Box& a, const Box& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  SSAMR_REQUIRE(a.level() == b.level(), "level mismatch in bounding_union");
  return Box(min(a.lo(), b.lo()), max(a.hi(), b.hi()), a.level());
}

}  // namespace ssamr

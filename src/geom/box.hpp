#pragma once
/// \file box.hpp
/// Rectilinear index-space regions ("bounding boxes").
///
/// GrACE maintains the component grids of the adaptive hierarchy as lists of
/// bounding boxes, each a rectilinear region with a lower bound, an upper
/// bound, and a stride given by its refinement level.  Box is the same
/// abstraction: inclusive cell bounds [lo, hi] expressed in the index space
/// of the box's own refinement level.

#include <iosfwd>
#include <utility>

#include "geom/point.hpp"
#include "util/types.hpp"

namespace ssamr {

/// A rectilinear region of cells at one refinement level.
///
/// Bounds are inclusive: the box covers cells lo..hi in each direction.
/// A default-constructed Box is empty.
class Box {
 public:
  /// Construct the empty box (level 0).
  Box();

  /// Construct from inclusive bounds.  If any hi component is < the matching
  /// lo component the box is empty.
  Box(IntVec lo, IntVec hi, level_t level = 0);

  /// Box of given extent anchored at `lo`.
  static Box from_extent(IntVec lo, IntVec extent, level_t level = 0);

  /// Inclusive lower bound.
  IntVec lo() const { return lo_; }
  /// Inclusive upper bound.
  IntVec hi() const { return hi_; }
  /// Refinement level the bounds are expressed in (0 = coarsest).
  level_t level() const { return level_; }

  /// True when the box covers no cells.
  bool empty() const;

  /// Number of cells per direction (0 when empty).
  IntVec extent() const;

  /// Total number of cells (0 when empty).
  std::int64_t cells() const;

  /// True when the cell `p` lies inside the box.
  bool contains(IntVec p) const;

  /// True when `other` lies entirely inside this box (same level required).
  bool contains(const Box& other) const;

  /// True when this box and `other` share at least one cell.
  bool intersects(const Box& other) const;

  /// The overlap region (empty box when disjoint).  Levels must match.
  Box intersection(const Box& other) const;

  /// Grow by n cells on every face (shrink with negative n).
  Box grown(coord_t n) const;

  /// Translate by the given offset.
  Box shifted(IntVec offset) const;

  /// Map to the index space `levels_up` levels finer (each cell becomes
  /// ratio^levels_up cells per direction).
  Box refined(coord_t ratio, int levels_up = 1) const;

  /// Map to the index space one level coarser (floor/ceil so the coarse box
  /// covers the fine one).
  Box coarsened(coord_t ratio) const;

  /// Direction with the largest extent (ties broken toward x).
  int longest_axis() const;

  /// Direction with the smallest extent (ties broken toward x).
  int shortest_axis() const;

  /// Longest extent divided by shortest extent; 0 for the empty box.
  real_t aspect_ratio() const;

  /// Split into two boxes along `axis`: the first keeps cells
  /// [lo, lo+offset-1], the second [lo+offset, hi].  Requires
  /// 0 < offset < extent()[axis].
  std::pair<Box, Box> split(int axis, coord_t offset) const;

  /// Split in half along the longest axis.
  std::pair<Box, Box> halved() const;

  friend bool operator==(const Box& a, const Box& b);
  friend bool operator!=(const Box& a, const Box& b) { return !(a == b); }

 private:
  IntVec lo_;
  IntVec hi_;
  level_t level_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Box& b);

/// Smallest box (at the common level) containing both arguments; if either
/// is empty the other is returned.  Levels must match when both non-empty.
Box bounding_union(const Box& a, const Box& b);

}  // namespace ssamr

#include "geom/box_algebra.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

std::vector<Box> box_difference(const Box& a, const Box& b) {
  if (a.empty()) return {};
  const Box overlap = a.intersection(b);
  if (overlap.empty()) return {a};
  if (overlap == a) return {};

  // Carve a into slabs around the overlap, axis by axis.
  std::vector<Box> out;
  Box core = a;  // region still to be carved; shrinks toward the overlap
  for (int d = 0; d < kDim; ++d) {
    if (overlap.lo()[d] > core.lo()[d]) {
      IntVec hi = core.hi();
      hi.at(d) = overlap.lo()[d] - 1;
      out.emplace_back(core.lo(), hi, a.level());
      IntVec lo = core.lo();
      lo.at(d) = overlap.lo()[d];
      core = Box(lo, core.hi(), a.level());
    }
    if (overlap.hi()[d] < core.hi()[d]) {
      IntVec lo = core.lo();
      lo.at(d) = overlap.hi()[d] + 1;
      out.emplace_back(lo, core.hi(), a.level());
      IntVec hi = core.hi();
      hi.at(d) = overlap.hi()[d];
      core = Box(core.lo(), hi, a.level());
    }
  }
  SSAMR_ASSERT(core == overlap, "difference carving must end at the overlap");
  return out;
}

std::vector<Box> box_difference(const Box& a,
                                const std::vector<Box>& subtrahends) {
  std::vector<Box> remaining{a};
  if (a.empty()) return {};
  for (const Box& s : subtrahends) {
    std::vector<Box> next;
    next.reserve(remaining.size());
    for (const Box& r : remaining) {
      auto diff = box_difference(r, s);
      next.insert(next.end(), diff.begin(), diff.end());
    }
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
  return remaining;
}

std::int64_t union_cells(const std::vector<Box>& boxes) {
  // Incremental sweep: add each box's cells not covered by earlier boxes.
  std::int64_t total = 0;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    std::vector<Box> earlier(boxes.begin(),
                             boxes.begin() + static_cast<std::ptrdiff_t>(i));
    for (const Box& piece : box_difference(boxes[i], earlier))
      total += piece.cells();
  }
  return total;
}

namespace {
/// True when a and b can merge into one box (equal bounds in all directions
/// except one, where they are exactly adjacent).
bool mergeable(const Box& a, const Box& b, Box& merged) {
  if (a.level() != b.level()) return false;
  int diff_axis = -1;
  for (int d = 0; d < kDim; ++d) {
    if (a.lo()[d] == b.lo()[d] && a.hi()[d] == b.hi()[d]) continue;
    if (diff_axis >= 0) return false;
    diff_axis = d;
  }
  if (diff_axis < 0) return false;  // identical boxes — caller's bug
  const int d = diff_axis;
  if (a.hi()[d] + 1 == b.lo()[d] || b.hi()[d] + 1 == a.lo()[d]) {
    merged = bounding_union(a, b);
    return true;
  }
  return false;
}
}  // namespace

std::vector<Box> coalesce(std::vector<Box> boxes) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < boxes.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < boxes.size() && !changed; ++j) {
        Box merged;
        if (mergeable(boxes[i], boxes[j], merged)) {
          boxes[i] = merged;
          boxes.erase(boxes.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
  }
  return boxes;
}

std::vector<Box> clip_all(const std::vector<Box>& list, const Box& clip) {
  std::vector<Box> out;
  out.reserve(list.size());
  for (const Box& b : list) {
    const Box c = b.intersection(clip);
    if (!c.empty()) out.push_back(c);
  }
  return out;
}

}  // namespace ssamr

#pragma once
/// \file box_algebra.hpp
/// Set-like operations on boxes and box lists: difference, coverage,
/// union volume, and simple coalescing.  These underpin ghost-region
/// planning and regridding (computing newly refined / de-refined regions).

#include <vector>

#include "geom/box.hpp"
#include "geom/box_list.hpp"

namespace ssamr {

/// a \ b as a list of up to six disjoint boxes.  Returns {a} when disjoint,
/// {} when b covers a.  Levels must match.
std::vector<Box> box_difference(const Box& a, const Box& b);

/// a \ (union of subtrahends): disjoint boxes covering exactly the cells of
/// `a` not covered by any subtrahend.
std::vector<Box> box_difference(const Box& a,
                                const std::vector<Box>& subtrahends);

/// Number of distinct cells covered by the (possibly overlapping) boxes.
std::int64_t union_cells(const std::vector<Box>& boxes);

/// Merge adjacent boxes that form a rectilinear union (simple pairwise
/// face-merge until a fixed point).  Input boxes must be disjoint.
std::vector<Box> coalesce(std::vector<Box> boxes);

/// Intersect every box in `list` with `clip`, dropping empties.
std::vector<Box> clip_all(const std::vector<Box>& list, const Box& clip);

}  // namespace ssamr

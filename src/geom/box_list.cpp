#include "geom/box_list.hpp"

#include <algorithm>

#include "geom/box_algebra.hpp"

namespace ssamr {

std::int64_t BoxList::total_cells() const {
  std::int64_t n = 0;
  for (const Box& b : boxes_) n += b.cells();
  return n;
}

bool BoxList::has_overlap() const {
  for (std::size_t i = 0; i < boxes_.size(); ++i)
    for (std::size_t j = i + 1; j < boxes_.size(); ++j)
      if (boxes_[i].level() == boxes_[j].level() &&
          boxes_[i].intersects(boxes_[j]))
        return true;
  return false;
}

bool BoxList::covers(const Box& probe) const {
  if (probe.empty()) return true;
  std::vector<Box> remaining{probe};
  for (const Box& b : boxes_) {
    std::vector<Box> next;
    for (const Box& r : remaining) {
      auto diff = box_difference(r, b);
      next.insert(next.end(), diff.begin(), diff.end());
    }
    remaining = std::move(next);
    if (remaining.empty()) return true;
  }
  return remaining.empty();
}

void BoxList::prune_empty() {
  boxes_.erase(std::remove_if(boxes_.begin(), boxes_.end(),
                              [](const Box& b) { return b.empty(); }),
               boxes_.end());
}

}  // namespace ssamr

#pragma once
/// \file box_list.hpp
/// Lists of bounding boxes — the unit of exchange between the AMR hierarchy
/// and the partitioners, mirroring GrACE's "bounding box list" interface
/// (§5.3 of the paper).

#include <vector>

#include "geom/box.hpp"

namespace ssamr {

/// An ordered list of boxes (all at the same or mixed levels, caller's
/// choice) with a few aggregate helpers.
class BoxList {
 public:
  BoxList() = default;
  explicit BoxList(std::vector<Box> boxes) : boxes_(std::move(boxes)) {}

  /// Append one box (empty boxes are skipped).
  void push_back(const Box& b) {
    if (!b.empty()) boxes_.push_back(b);
  }

  /// Append all boxes of another list.
  void append(const BoxList& other) {
    boxes_.insert(boxes_.end(), other.boxes_.begin(), other.boxes_.end());
  }

  bool empty() const { return boxes_.empty(); }
  std::size_t size() const { return boxes_.size(); }
  const Box& operator[](std::size_t i) const { return boxes_[i]; }
  Box& operator[](std::size_t i) { return boxes_[i]; }

  auto begin() const { return boxes_.begin(); }
  auto end() const { return boxes_.end(); }
  auto begin() { return boxes_.begin(); }
  auto end() { return boxes_.end(); }

  const std::vector<Box>& boxes() const { return boxes_; }

  /// Sum of cells() over all boxes (boxes are assumed disjoint; overlaps are
  /// counted multiply).
  std::int64_t total_cells() const;

  /// True when any pair of boxes in the list overlaps (same-level pairs
  /// only; boxes at different levels never count as overlapping).
  bool has_overlap() const;

  /// True when every cell of `probe` is covered by some box in the list
  /// (all boxes must share probe's level).
  bool covers(const Box& probe) const;

  /// Remove empty boxes.
  void prune_empty();

 private:
  std::vector<Box> boxes_;
};

}  // namespace ssamr

#pragma once
/// \file point.hpp
/// 3-D integer index-space vectors.
///
/// All SAMR geometry in this library is three dimensional (the paper's
/// evaluation kernel is 3-D); lower-dimensional problems use extent 1 in the
/// unused directions.

#include <array>
#include <cstddef>
#include <iosfwd>

#include "util/error.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Number of spatial dimensions.
inline constexpr int kDim = 3;

/// A point (or extent vector) in the 3-D integer index space.
struct IntVec {
  coord_t x = 0, y = 0, z = 0;

  constexpr IntVec() = default;
  constexpr IntVec(coord_t x_, coord_t y_, coord_t z_) : x(x_), y(y_), z(z_) {}

  /// Vector with all components equal to v.
  static constexpr IntVec splat(coord_t v) { return {v, v, v}; }

  constexpr coord_t operator[](int d) const {
    return d == 0 ? x : (d == 1 ? y : z);
  }
  /// Mutable component access.
  coord_t& at(int d) {
    SSAMR_ASSERT(d >= 0 && d < kDim, "dimension out of range");
    return d == 0 ? x : (d == 1 ? y : z);
  }

  friend constexpr IntVec operator+(IntVec a, IntVec b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr IntVec operator-(IntVec a, IntVec b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr IntVec operator*(IntVec a, coord_t s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr IntVec operator*(coord_t s, IntVec a) { return a * s; }
  friend constexpr bool operator==(IntVec a, IntVec b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  friend constexpr bool operator!=(IntVec a, IntVec b) { return !(a == b); }

  /// Component-wise minimum.
  friend constexpr IntVec min(IntVec a, IntVec b) {
    return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
            a.z < b.z ? a.z : b.z};
  }
  /// Component-wise maximum.
  friend constexpr IntVec max(IntVec a, IntVec b) {
    return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y,
            a.z > b.z ? a.z : b.z};
  }

  /// True when every component of *this is <= the matching component of o.
  constexpr bool all_le(IntVec o) const {
    return x <= o.x && y <= o.y && z <= o.z;
  }
  /// True when every component of *this is >= the matching component of o.
  constexpr bool all_ge(IntVec o) const {
    return x >= o.x && y >= o.y && z >= o.z;
  }

  /// Product of components (e.g. cell count of an extent vector).
  constexpr std::int64_t product() const {
    return static_cast<std::int64_t>(x) * y * z;
  }
};

std::ostream& operator<<(std::ostream& os, IntVec v);

}  // namespace ssamr

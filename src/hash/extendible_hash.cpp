#include "hash/extendible_hash.hpp"

#include <cstdint>

namespace ssamr {

// Explicit instantiations for the value types the library stores, keeping
// template bloat out of client translation units.
template class ExtendibleHash<std::int64_t>;
template class ExtendibleHash<std::size_t>;

}  // namespace ssamr

#pragma once
/// \file extendible_hash.hpp
/// Extendible hashing (Fagin et al., ACM TODS 1979).
///
/// GrACE's HDDA uses extendible hashing as its dynamic storage/access
/// mechanism: a directory of 2^d pointers indexed by the top d bits of the
/// hashed key, pointing at buckets with local depth <= d.  Buckets split
/// (and the directory doubles) on overflow, so the table grows gracefully
/// with the dynamic grid hierarchy without full rehashes.

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace ssamr {

/// 64-bit mix (Stafford variant 13) used to hash keys before taking
/// directory bits.
inline key_t hash_mix64(key_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// An extendible hash table from key_t to V.
///
/// Complexity: find/insert/erase are O(bucket) = O(capacity) worst case in
/// a bucket; amortized O(1).  Directory doubling copies pointers only.
template <class V>
class ExtendibleHash {
 public:
  /// \param bucket_capacity entries per bucket before a split is attempted.
  explicit ExtendibleHash(std::size_t bucket_capacity = 8)
      : bucket_capacity_(bucket_capacity) {
    SSAMR_REQUIRE(bucket_capacity >= 1, "bucket capacity must be >= 1");
    auto b = std::make_shared<Bucket>();
    b->local_depth = 0;
    directory_ = {b};
    global_depth_ = 0;
  }

  /// Insert or overwrite.  Returns true when the key was newly inserted.
  bool insert(key_t key, V value) {
    for (;;) {
      Bucket& b = bucket_for(key);
      for (auto& kv : b.entries) {
        if (kv.first == key) {
          kv.second = std::move(value);
          return false;
        }
      }
      if (b.entries.size() < bucket_capacity_) {
        b.entries.emplace_back(key, std::move(value));
        ++size_;
        return true;
      }
      split(key);
    }
  }

  /// Look up a key; nullopt when absent.
  std::optional<V> find(key_t key) const {
    const Bucket& b = bucket_for(key);
    for (const auto& kv : b.entries)
      if (kv.first == key) return kv.second;
    return std::nullopt;
  }

  /// Pointer to the stored value, or nullptr when absent.  Invalidated by
  /// any mutation.
  V* find_ptr(key_t key) {
    Bucket& b = bucket_for(key);
    for (auto& kv : b.entries)
      if (kv.first == key) return &kv.second;
    return nullptr;
  }

  /// Remove a key.  Returns true when present.
  bool erase(key_t key) {
    Bucket& b = bucket_for(key);
    for (std::size_t i = 0; i < b.entries.size(); ++i) {
      if (b.entries[i].first == key) {
        b.entries[i] = std::move(b.entries.back());
        b.entries.pop_back();
        --size_;
        return true;
      }
    }
    return false;
  }

  /// True when the key is present.
  bool contains(key_t key) const { return find(key).has_value(); }

  /// Remove every entry and reset the directory to depth 0.
  void clear() {
    auto b = std::make_shared<Bucket>();
    b->local_depth = 0;
    directory_ = {b};
    global_depth_ = 0;
    size_ = 0;
  }

  /// Number of stored entries.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Directory depth d (directory has 2^d slots).
  int global_depth() const { return global_depth_; }

  /// Number of distinct buckets.
  std::size_t bucket_count() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < directory_.size(); ++i) {
      bool first = true;
      for (std::size_t j = 0; j < i; ++j)
        if (directory_[j] == directory_[i]) {
          first = false;
          break;
        }
      if (first) ++n;
    }
    return n;
  }

  /// Visit every (key, value) pair.
  template <class F>
  void for_each(F&& f) const {
    std::vector<const Bucket*> seen;
    for (const auto& bp : directory_) {
      bool dup = false;
      for (const Bucket* s : seen)
        if (s == bp.get()) {
          dup = true;
          break;
        }
      if (dup) continue;
      seen.push_back(bp.get());
      for (const auto& kv : bp->entries) f(kv.first, kv.second);
    }
  }

 private:
  struct Bucket {
    int local_depth = 0;
    std::vector<std::pair<key_t, V>> entries;
  };

  std::size_t slot_of(key_t key) const {
    if (global_depth_ == 0) return 0;
    return static_cast<std::size_t>(hash_mix64(key) >>
                                    (64 - global_depth_));
  }

  Bucket& bucket_for(key_t key) { return *directory_[slot_of(key)]; }
  const Bucket& bucket_for(key_t key) const {
    return *directory_[slot_of(key)];
  }

  void split(key_t key) {
    const std::size_t slot = slot_of(key);
    auto old = directory_[slot];
    if (old->local_depth == global_depth_) double_directory();

    auto b0 = std::make_shared<Bucket>();
    auto b1 = std::make_shared<Bucket>();
    b0->local_depth = b1->local_depth = old->local_depth + 1;
    // Distinguishing bit: the (local_depth+1)-th most significant hash bit.
    const int shift = 64 - (old->local_depth + 1);
    for (auto& kv : old->entries) {
      const bool high = (hash_mix64(kv.first) >> shift) & 1;
      (high ? b1 : b0)->entries.push_back(std::move(kv));
    }
    // Slot index carries the top global_depth_ bits of the hash, so the
    // child choice for each slot is the slot's bit at the new local depth.
    for (std::size_t i = 0; i < directory_.size(); ++i) {
      if (directory_[i] != old) continue;
      const bool high =
          (i >> (static_cast<std::size_t>(global_depth_) -
                 static_cast<std::size_t>(old->local_depth + 1))) &
          1;
      directory_[i] = high ? b1 : b0;
    }
  }

  void double_directory() {
    SSAMR_REQUIRE(global_depth_ < 48, "extendible hash directory too deep");
    std::vector<std::shared_ptr<Bucket>> next(directory_.size() * 2);
    for (std::size_t i = 0; i < directory_.size(); ++i) {
      next[2 * i] = directory_[i];
      next[2 * i + 1] = directory_[i];
    }
    directory_ = std::move(next);
    ++global_depth_;
  }

  std::size_t bucket_capacity_;
  std::vector<std::shared_ptr<Bucket>> directory_;
  int global_depth_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ssamr

#include "hdda/hdda.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

Hdda::Hdda(SfcConfig cfg) : cfg_(cfg) {}

key_t Hdda::key_of(const Box& b) const {
  SSAMR_REQUIRE(!b.empty(), "cannot key an empty box");
  // Composite SFC key in the high bits, level tag in the low 5 bits: boxes
  // that coincide spatially across levels stay distinct, while the ordered
  // enumeration still interleaves levels by spatial position.
  return (sfc_box_key(b, cfg_) << 5) |
         static_cast<key_t>(b.level() & 0x1f);
}

key_t Hdda::insert(const Box& b, rank_t owner, std::int64_t bytes) {
  const key_t k = key_of(b);
  table_.insert(k, HddaEntry{b, owner, bytes});
  return k;
}

bool Hdda::erase(const Box& b) { return table_.erase(key_of(b)); }

void Hdda::clear() { table_.clear(); }

std::size_t Hdda::erase_level(level_t level) {
  std::vector<key_t> victims;
  table_.for_each([&](key_t k, const HddaEntry& e) {
    if (e.box.level() == level) victims.push_back(k);
  });
  for (key_t k : victims) table_.erase(k);
  return victims.size();
}

std::optional<HddaEntry> Hdda::find(const Box& b) const {
  return table_.find(key_of(b));
}

rank_t Hdda::owner_of(const Box& b) const {
  const auto e = find(b);
  return e ? e->owner : rank_t{-1};
}

std::int64_t Hdda::set_owner(const Box& b, rank_t new_owner) {
  HddaEntry* e = table_.find_ptr(key_of(b));
  if (e == nullptr) {
    insert(b, new_owner, 0);
    return 0;
  }
  if (e->owner == new_owner || e->owner < 0) {
    e->owner = new_owner;
    return 0;
  }
  e->owner = new_owner;
  return e->bytes;
}

std::size_t Hdda::size() const { return table_.size(); }

std::int64_t Hdda::bytes_on(rank_t rank) const {
  std::int64_t total = 0;
  table_.for_each([&](key_t, const HddaEntry& e) {
    if (e.owner == rank) total += e.bytes;
  });
  return total;
}

std::vector<HddaEntry> Hdda::ordered_entries() const {
  std::vector<std::pair<key_t, HddaEntry>> all;
  all.reserve(table_.size());
  table_.for_each([&](key_t k, const HddaEntry& e) { all.emplace_back(k, e); });
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<HddaEntry> out;
  out.reserve(all.size());
  for (auto& kv : all) out.push_back(std::move(kv.second));
  return out;
}

LocalBoxView Hdda::local_view(rank_t rank, coord_t ghost) const {
  SSAMR_REQUIRE(rank >= 0, "rank must be non-negative");
  const std::vector<HddaEntry> entries = ordered_entries();
  std::vector<Box> boxes;
  std::vector<rank_t> owners;
  boxes.reserve(entries.size());
  owners.reserve(entries.size());
  rank_t max_owner = rank;
  for (const HddaEntry& e : entries) {
    boxes.push_back(e.box);
    // Unowned entries (-1) are parked on rank 0 so the view builder's
    // range check holds; they still count as remote halo for rank > 0.
    owners.push_back(e.owner < 0 ? rank_t{0} : e.owner);
    max_owner = std::max(max_owner, owners.back());
  }
  return build_local_views(boxes, owners, max_owner + 1,
                           ghost)[static_cast<std::size_t>(rank)];
}

}  // namespace ssamr

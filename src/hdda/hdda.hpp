#pragma once
/// \file hdda.hpp
/// Hierarchical Distributed Dynamic Array (HDDA).
///
/// The HDDA is GrACE's data-management substrate: a dynamically growing /
/// shrinking array of application objects (grid patches) indexed by a
/// hierarchical, locality-preserving index space.  Our in-process
/// reproduction keeps the two defining mechanisms:
///
///  * the index space is derived from the application domain via
///    space-filling mappings (sfc/), so index locality == spatial locality;
///  * storage and access use extendible hashing (hash/), so the table grows
///    with the adaptive hierarchy without global rehashes.
///
/// Each entry records the patch's bounding box, its payload size in bytes,
/// and the rank that currently owns it.  The distributed aspect of the
/// paper's cluster runs is captured by the ownership map plus
/// migration-volume accounting (consumed by the virtual-time executor).

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/box.hpp"
#include "hash/extendible_hash.hpp"
#include "hdda/local_view.hpp"
#include "sfc/sfc_index.hpp"
#include "util/types.hpp"

namespace ssamr {

/// One object stored in the HDDA.
struct HddaEntry {
  Box box;               ///< Index-space region of the patch.
  rank_t owner = -1;     ///< Rank currently storing the payload (-1: none).
  std::int64_t bytes = 0;  ///< Payload size used for migration accounting.
};

/// The hierarchical distributed dynamic array.
class Hdda {
 public:
  /// \param cfg curve configuration used to derive the index space.
  explicit Hdda(SfcConfig cfg = {});

  /// The key of a box in the hierarchical index space (level-tagged
  /// composite SFC key).  Stable across insert/erase.
  key_t key_of(const Box& b) const;

  /// Insert (or overwrite) the entry for a box.  Returns its key.
  key_t insert(const Box& b, rank_t owner, std::int64_t bytes);

  /// Remove a box's entry.  Returns true when present.
  bool erase(const Box& b);

  /// Remove every entry.
  void clear();

  /// Remove every entry at the given level (regridding replaces whole
  /// levels).  Returns the number of entries removed.
  std::size_t erase_level(level_t level);

  /// Look up an entry.
  std::optional<HddaEntry> find(const Box& b) const;

  /// Owner of a box, or -1 when unknown.
  rank_t owner_of(const Box& b) const;

  /// Re-assign ownership of a box.  Returns the number of bytes that had to
  /// move (0 when the owner is unchanged or the box is new to the array).
  std::int64_t set_owner(const Box& b, rank_t new_owner);

  /// Total entries stored.
  std::size_t size() const;

  /// Bytes resident on one rank.
  std::int64_t bytes_on(rank_t rank) const;

  /// Every entry, sorted by hierarchical index (composite SFC order).
  /// This materializes the *global* metadata and is intended for audits,
  /// debugging and small-P paths; scale-path consumers use local_view().
  std::vector<HddaEntry> ordered_entries() const;

  /// Rank-local view of the array: the boxes `rank` owns plus the
  /// Morton-keyed halo of same-level neighbor boxes within `ghost` cells
  /// that other ranks own (DESIGN.md §11).  Box ids refer to positions in
  /// ordered_entries(), so views are stable for a fixed contents snapshot.
  /// Builds a fresh key index per call — callers iterating many ranks
  /// should use build_local_views (hdda/local_view.hpp) directly.
  LocalBoxView local_view(rank_t rank, coord_t ghost) const;

  /// Curve configuration in force.
  const SfcConfig& config() const { return cfg_; }

 private:
  SfcConfig cfg_;
  ExtendibleHash<HddaEntry> table_;
};

}  // namespace ssamr

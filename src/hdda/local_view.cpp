#include "hdda/local_view.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

std::vector<LocalBoxView> build_local_views(const std::vector<Box>& boxes,
                                            const std::vector<rank_t>& owners,
                                            int nranks, coord_t ghost,
                                            const SfcKeyIndex& index,
                                            HaloPolicy halos) {
  SSAMR_REQUIRE(boxes.size() == owners.size(),
                "boxes/owners size mismatch");
  SSAMR_REQUIRE(nranks >= 1, "need at least one rank");
  SSAMR_REQUIRE(index.size() == boxes.size(),
                "key index was built over a different box set");
  SSAMR_REQUIRE(ghost >= 0, "ghost width must be non-negative");

  std::vector<LocalBoxView> views(static_cast<std::size_t>(nranks));
  for (std::size_t k = 0; k < views.size(); ++k)
    views[k].rank = static_cast<rank_t>(k);

  const std::size_t nb = boxes.size();
  for (std::size_t i = 0; i < nb; ++i)
    SSAMR_REQUIRE(owners[i] >= 0 && owners[i] < nranks, "owner out of range");
  if (nb == 0) return views;

  // Neighbor discovery runs in parallel over contiguous box shards: each
  // shard queries the shared (read-only) index with its own scratch and
  // stats, and the shards are stitched back in shard order — box order —
  // so the output is identical for any shard or thread count.  Stats are
  // integer sums, so the merged counters are too.
  ThreadPool& pool = ThreadPool::global();
  // One shard per unit of concurrency times a small oversubscription for
  // balance; exactly one on the serial path, where sharding would only buy
  // a pointless copy.
  const std::size_t nshards =
      pool.worker_count() == 0
          ? 1
          : std::min(nb, static_cast<std::size_t>(pool.concurrency()) * 8);
  const std::size_t chunk = (nb + nshards - 1) / nshards;
  std::vector<std::vector<NeighborLink>> shard_links(nshards);
  std::vector<SfcKeyIndexStats> shard_stats(nshards);
  pool.parallel_for(nshards, [&](std::size_t sh) {
    std::vector<std::uint32_t> candidates;
    std::vector<NeighborLink>& links = shard_links[sh];
    const std::size_t lo = sh * chunk;
    const std::size_t hi = std::min(nb, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      if (boxes[i].empty()) continue;
      const rank_t owner = owners[i];
      index.query(boxes[i].grown(ghost), candidates, shard_stats[sh]);
      for (const std::uint32_t j : candidates) {
        if (j == i || owners[j] == owner) continue;
        links.push_back({static_cast<std::uint32_t>(i), j});
      }
    }
  });
  for (const SfcKeyIndexStats& st : shard_stats) index.merge_stats(st);

  for (std::size_t i = 0; i < nb; ++i)
    if (!boxes[i].empty())
      views[static_cast<std::size_t>(owners[i])].owned.push_back(
          static_cast<std::uint32_t>(i));
  for (const std::vector<NeighborLink>& links : shard_links)
    for (const NeighborLink& l : links)
      views[static_cast<std::size_t>(owners[l.owned])].links.push_back(l);

  if (halos == HaloPolicy::kLinksOnly) return views;

  // Halo = the distinct neighbor ids of a view's links, in curve order.
  // Views own disjoint state, so this pass is parallel too.
  pool.parallel_for(views.size(), [&](std::size_t k) {
    LocalBoxView& view = views[k];
    std::vector<std::uint32_t> ids;
    ids.reserve(view.links.size());
    for (const NeighborLink& l : view.links) ids.push_back(l.neighbor);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    view.halo.reserve(ids.size());
    for (const std::uint32_t j : ids)
      view.halo.push_back({j, owners[j], index.anchor_key(j)});
    std::sort(view.halo.begin(), view.halo.end(),
              [](const HaloBox& a, const HaloBox& b) {
                if (a.key != b.key) return a.key < b.key;
                return a.id < b.id;
              });
  });
  return views;
}

std::vector<LocalBoxView> build_local_views(const std::vector<Box>& boxes,
                                            const std::vector<rank_t>& owners,
                                            int nranks, coord_t ghost) {
  const SfcKeyIndex index(boxes);
  return build_local_views(boxes, owners, nranks, ghost, index);
}

}  // namespace ssamr

#pragma once
/// \file local_view.hpp
/// Rank-local box metadata: the primary representation of ownership at
/// scale (DESIGN.md §11).
///
/// Following Schornbaum & Rüde (*Extreme-Scale Block-Structured AMR*), no
/// rank needs the global box list to run a step: it needs (a) the boxes it
/// owns and (b) a Morton-keyed halo — the neighbor boxes, owned elsewhere,
/// whose ghost regions touch its own.  A LocalBoxView is exactly that
/// record.  The comm-volume metrics, the event model's message generation
/// and the scale experiment all derive their per-rank traffic from these
/// views; the global composite list remains available only as a
/// debug/audit construct (GridHierarchy::composite_box_list, the partition
/// audits).
///
/// Views are built with SFC interval queries against SfcKeyIndex — one
/// query per owned box — so construction is O(N · (log N + k)) for k-bounded
/// neighborhoods instead of the historical all-to-all O(N²) scan, and the
/// per-rank footprint is O(owned + halo), independent of the global box
/// count.

#include <cstdint>
#include <vector>

#include "geom/box.hpp"
#include "sfc/key_index.hpp"
#include "util/types.hpp"

namespace ssamr {

/// One neighbor box in a rank's halo.
struct HaloBox {
  std::uint32_t id = 0;  ///< global box id (position in the build input)
  rank_t owner = -1;     ///< rank storing the box
  key_t key = 0;         ///< Morton anchor key (SfcKeyIndex::anchor_key)

  bool operator==(const HaloBox&) const = default;
};

/// One adjacency: an owned box whose ghost shell touches a neighbor box.
struct NeighborLink {
  std::uint32_t owned = 0;     ///< global id of the owned box
  std::uint32_t neighbor = 0;  ///< global id of the touching box

  bool operator==(const NeighborLink&) const = default;
};

/// Everything one rank must know about the box layout.
struct LocalBoxView {
  rank_t rank = 0;
  /// Boxes this rank owns, as ascending global ids.
  std::vector<std::uint32_t> owned;
  /// Neighbor boxes owned by other ranks whose extent intersects the
  /// ghost-grown region of an owned box, deduplicated and sorted by
  /// (Morton key, id) — curve order, the deterministic iteration order of
  /// everything derived from a halo.
  std::vector<HaloBox> halo;
  /// The individual (owned, neighbor) adjacencies behind the halo, in
  /// ascending (owned, neighbor) order.  Includes same-rank pairs'
  /// *exclusion*: only cross-rank adjacencies are recorded, so iterating
  /// links enumerates exactly the remote ghost-exchange pairs.
  std::vector<NeighborLink> links;
};

/// Whether build_local_views materializes per-rank halos.  Consumers that
/// only walk links (the comm-volume metrics) can skip the halo pass — the
/// per-view sort and anchor-key encoding are a measurable fraction of
/// discovery time at large rank counts.
enum class HaloPolicy { kBuildHalos, kLinksOnly };

/// Build every rank's local view of (boxes, owners): for each box, its
/// same-level neighbors within `ghost` cells are discovered through
/// `index` (which must have been built over the same `boxes` vector).
/// Owners must lie in [0, nranks).  With HaloPolicy::kLinksOnly the halo
/// vectors are left empty.
std::vector<LocalBoxView> build_local_views(
    const std::vector<Box>& boxes, const std::vector<rank_t>& owners,
    int nranks, coord_t ghost, const SfcKeyIndex& index,
    HaloPolicy halos = HaloPolicy::kBuildHalos);

/// Convenience overload that builds the key index internally.
std::vector<LocalBoxView> build_local_views(const std::vector<Box>& boxes,
                                            const std::vector<rank_t>& owners,
                                            int nranks, coord_t ghost);

}  // namespace ssamr

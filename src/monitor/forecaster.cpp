#include "monitor/forecaster.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ssamr {

real_t LastValueForecaster::forecast(
    const std::vector<real_t>& history) const {
  return history.empty() ? 0 : history.back();
}

real_t RunningMeanForecaster::forecast(
    const std::vector<real_t>& history) const {
  return mean_of(history);
}

SlidingMeanForecaster::SlidingMeanForecaster(std::size_t window)
    : window_(window) {
  SSAMR_REQUIRE(window >= 1, "window must be >= 1");
}

real_t SlidingMeanForecaster::forecast(
    const std::vector<real_t>& history) const {
  if (history.empty()) return 0;
  const std::size_t n = std::min(window_, history.size());
  real_t s = 0;
  for (std::size_t i = history.size() - n; i < history.size(); ++i)
    s += history[i];
  return s / static_cast<real_t>(n);
}

std::string SlidingMeanForecaster::name() const {
  return "sliding_mean(" + std::to_string(window_) + ")";
}

SlidingMedianForecaster::SlidingMedianForecaster(std::size_t window)
    : window_(window) {
  SSAMR_REQUIRE(window >= 1, "window must be >= 1");
}

real_t SlidingMedianForecaster::forecast(
    const std::vector<real_t>& history) const {
  if (history.empty()) return 0;
  const std::size_t n = std::min(window_, history.size());
  std::vector<real_t> tail(history.end() - static_cast<std::ptrdiff_t>(n),
                           history.end());
  return median_of(std::move(tail));
}

std::string SlidingMedianForecaster::name() const {
  return "sliding_median(" + std::to_string(window_) + ")";
}

AdaptiveForecaster::AdaptiveForecaster() {
  members_.push_back(std::make_unique<LastValueForecaster>());
  members_.push_back(std::make_unique<RunningMeanForecaster>());
  members_.push_back(std::make_unique<SlidingMeanForecaster>(5));
  members_.push_back(std::make_unique<SlidingMeanForecaster>(10));
  members_.push_back(std::make_unique<SlidingMedianForecaster>(5));
  members_.push_back(std::make_unique<SlidingMedianForecaster>(10));
}

AdaptiveForecaster::AdaptiveForecaster(
    std::vector<std::unique_ptr<Forecaster>> members)
    : members_(std::move(members)) {
  SSAMR_REQUIRE(!members_.empty(), "adaptive forecaster needs members");
}

std::size_t AdaptiveForecaster::best_index(
    const std::vector<real_t>& history) const {
  const std::size_t n = history.size();
  if (n < 2) return 0;

  // Score only the trailing kScoreWindow predictions (plus kContext leading
  // measurements so windowed members see full windows and the running mean
  // scores a bounded, regime-local mean).  Scoring the whole history made
  // every forecast O(members · n²): each probe replays every member over
  // every prefix, and the prefix itself grows with the run.  For histories
  // of at most kScoreWindow + 1 measurements the scored predictions, their
  // accumulation order, and therefore the selected member are identical to
  // the unbounded selector.
  constexpr std::size_t kScoreWindow = 32;
  constexpr std::size_t kContext = 16;
  std::size_t first = 1;  // index of the first scored prediction
  std::size_t base = 0;   // start of the context the members see
  if (n - 1 > kScoreWindow) {
    first = n - 1 - kScoreWindow;
    base = first > kContext ? first - kContext : 0;
  }

  sse_.assign(members_.size(), 0);
  scratch_.assign(history.begin() + static_cast<std::ptrdiff_t>(base),
                  history.begin() + static_cast<std::ptrdiff_t>(first));
  for (std::size_t i = first; i < n; ++i) {
    for (std::size_t m = 0; m < members_.size(); ++m) {
      const real_t err = members_[m]->forecast(scratch_) - history[i];
      sse_[m] += err * err;
    }
    scratch_.push_back(history[i]);
  }

  real_t best_mse = std::numeric_limits<real_t>::infinity();
  std::size_t best = 0;
  const real_t count = static_cast<real_t>(n - first);
  for (std::size_t m = 0; m < members_.size(); ++m) {
    const real_t mse = sse_[m] / count;
    if (mse < best_mse) {
      best_mse = mse;
      best = m;
    }
  }
  return best;
}

real_t AdaptiveForecaster::forecast(
    const std::vector<real_t>& history) const {
  return members_[best_index(history)]->forecast(history);
}

std::string AdaptiveForecaster::best_member(
    const std::vector<real_t>& history) const {
  return members_[best_index(history)]->name();
}

}  // namespace ssamr

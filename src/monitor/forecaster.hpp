#pragma once
/// \file forecaster.hpp
/// NWS-style resource forecasting.
///
/// The Network Weather Service "periodically monitors and dynamically
/// forecasts the performance delivered by the various network and
/// computational resources".  Its forecasting engine runs a family of
/// cheap predictors over the measurement history and reports, for each new
/// forecast, the prediction of whichever predictor has had the lowest
/// error so far.  This file reproduces that design: a predictor interface,
/// the classic members of the family, and the adaptive min-MSE selector.

#include <memory>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssamr {

/// One predictor over a measurement history (oldest first).
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  /// Predict the next value from the history; history may be empty, in
  /// which case implementations return a neutral default (0).
  virtual real_t forecast(const std::vector<real_t>& history) const = 0;
  /// Identifier for reporting.
  virtual std::string name() const = 0;
};

/// Predicts the most recent measurement.
class LastValueForecaster final : public Forecaster {
 public:
  real_t forecast(const std::vector<real_t>& history) const override;
  std::string name() const override { return "last"; }
};

/// Predicts the mean of the whole history.
class RunningMeanForecaster final : public Forecaster {
 public:
  real_t forecast(const std::vector<real_t>& history) const override;
  std::string name() const override { return "mean"; }
};

/// Predicts the mean of the last `window` measurements.
class SlidingMeanForecaster final : public Forecaster {
 public:
  explicit SlidingMeanForecaster(std::size_t window);
  real_t forecast(const std::vector<real_t>& history) const override;
  std::string name() const override;

 private:
  std::size_t window_;
};

/// Predicts the median of the last `window` measurements.
class SlidingMedianForecaster final : public Forecaster {
 public:
  explicit SlidingMedianForecaster(std::size_t window);
  real_t forecast(const std::vector<real_t>& history) const override;
  std::string name() const override;

 private:
  std::size_t window_;
};

/// NWS's adaptive selector: runs every member predictor postcastingly over
/// a bounded trailing window of the history (predict value i from the
/// values before it), accumulates each member's MSE, and forecasts with
/// the current best member.  On histories short enough to fit the window
/// the selection matches the unbounded selector exactly.
class AdaptiveForecaster final : public Forecaster {
 public:
  /// Build with the standard family (last, mean, sliding mean/median of 5
  /// and 10).
  AdaptiveForecaster();
  /// Build with a custom family (takes ownership; must be non-empty).
  explicit AdaptiveForecaster(
      std::vector<std::unique_ptr<Forecaster>> members);

  real_t forecast(const std::vector<real_t>& history) const override;
  std::string name() const override { return "adaptive"; }

  /// Which member the selector would use for this history.
  std::string best_member(const std::vector<real_t>& history) const;

 private:
  std::size_t best_index(const std::vector<real_t>& history) const;
  std::vector<std::unique_ptr<Forecaster>> members_;
  /// Scoring scratch reused across calls (the selector is called for every
  /// probe of every resource; reallocating per call showed up in profiles).
  /// Not thread-safe — each monitor owns its forecaster.
  mutable std::vector<real_t> scratch_;
  mutable std::vector<real_t> sse_;
};

}  // namespace ssamr

#include "monitor/monitor_audit.hpp"

#include <cmath>
#include <string>

namespace ssamr::audit {

namespace {

/// `!(v >= 0)` rather than `v < 0`: the former also rejects NaN.
bool nonneg(real_t v) { return v >= 0 && std::isfinite(v); }

void require_nonneg(AuditReport& r, const char* check, const char* knob,
                    real_t v) {
  if (!nonneg(v))
    r.add(Severity::Error, check, "",
          std::string(knob) + " = " + std::to_string(v) +
              " must be finite and >= 0");
}

}  // namespace

AuditReport validate_monitor_config(const MonitorConfig& cfg,
                                    const AuditConfig& /*audit_cfg*/) {
  AuditReport r("monitor-config");
  require_nonneg(r, "monitor.probe_cost", "probe_cost_s",
                 cfg.probe_cost_s.value());
  if (!(cfg.intrusion_cpu >= Fraction{0}) || !(cfg.intrusion_cpu < Fraction{1}))
    r.add(Severity::Error, "monitor.intrusion_cpu", "",
          "intrusion_cpu = " + std::to_string(cfg.intrusion_cpu.value()) +
              " must lie in [0, 1)");
  require_nonneg(r, "monitor.intrusion_memory", "intrusion_memory_mb",
                 cfg.intrusion_memory_mb.value());
  require_nonneg(r, "monitor.noise", "noise.cpu_sigma", cfg.noise.cpu_sigma);
  require_nonneg(r, "monitor.noise", "noise.memory_sigma",
                 cfg.noise.memory_sigma);
  require_nonneg(r, "monitor.noise", "noise.bandwidth_sigma",
                 cfg.noise.bandwidth_sigma);
  if (!(cfg.probe_deadline_s >= cfg.probe_cost_s))
    r.add(Severity::Error, "monitor.probe_deadline", "",
          "probe_deadline_s = " + std::to_string(cfg.probe_deadline_s.value()) +
              " must be >= probe_cost_s (a timeout cannot cost less than "
              "a successful probe)");
  if (cfg.probe_max_retries < 0)
    r.add(Severity::Error, "monitor.probe_max_retries", "",
          "probe_max_retries = " + std::to_string(cfg.probe_max_retries) +
              " must be >= 0");
  require_nonneg(r, "monitor.backoff", "backoff_base_s",
                 cfg.backoff_base_s.value());
  if (!(cfg.backoff_factor >= 1))
    r.add(Severity::Error, "monitor.backoff", "",
          "backoff_factor = " + std::to_string(cfg.backoff_factor) +
              " must be >= 1 (backoff never shrinks)");
  if (cfg.quarantine_after < 1)
    r.add(Severity::Error, "monitor.quarantine_after", "",
          "quarantine_after = " + std::to_string(cfg.quarantine_after) +
              " must be >= 1");
  if (!(cfg.staleness.decay_tau_s > Seconds{0}))
    r.add(Severity::Error, "monitor.staleness", "",
          "staleness.decay_tau_s = " +
              std::to_string(cfg.staleness.decay_tau_s.value()) +
              " must be positive");
  return r;
}

}  // namespace ssamr::audit

#pragma once
/// \file monitor_audit.hpp
/// Invariant audit of the resource-monitor knobs.

#include "monitor/monitor_service.hpp"
#include "util/audit.hpp"

namespace ssamr::audit {

/// Audit the resource-monitor knobs: probe cost, memory footprint and
/// noise sigmas non-negative and finite, CPU intrusion in [0,1).
/// ResourceMonitor enforces this report at construction.
AuditReport validate_monitor_config(const MonitorConfig& cfg,
                                    const AuditConfig& audit_cfg = {});

}  // namespace ssamr::audit

#include "monitor/monitor_service.hpp"

#include <cmath>

#include "cluster/cluster_audit.hpp"
#include "monitor/monitor_audit.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"

namespace ssamr {

void HealthLedger::record_sweep(const SweepResult& sweep) {
  MutexLock lock(mutex_);
  totals_.ok += sweep.ok;
  totals_.stale += sweep.stale;
  totals_.timeouts += sweep.timeouts;
  totals_.failures += sweep.failures;
  totals_.quarantines += static_cast<int>(sweep.quarantined.size());
  totals_.readmissions += static_cast<int>(sweep.readmitted.size());
}

void HealthLedger::record_forced_repartition() {
  MutexLock lock(mutex_);
  ++totals_.forced_repartitions;
}

ProbeHealth HealthLedger::snapshot() const {
  MutexLock lock(mutex_);
  return totals_;
}

const char* probe_status_name(ProbeStatus s) {
  switch (s) {
    case ProbeStatus::kOk: return "ok";
    case ProbeStatus::kStale: return "stale";
    case ProbeStatus::kTimeout: return "timeout";
    case ProbeStatus::kFailed: return "failed";
  }
  return "?";
}

ResourceEstimate StalenessPolicy::degrade(
    const ResourceEstimate& last_good, Seconds age,
    const ResourceEstimate& cluster_mean) const {
  // Exponential decay toward the population mean: a reading of age zero is
  // trusted fully; one many tau old says little more than "the node looked
  // like an average node once".  Seconds / Seconds yields the raw ratio.
  const real_t w = std::exp(-std::max(age, Seconds{0}) / decay_tau_s);
  ResourceEstimate e;
  e.cpu_available =
      w * last_good.cpu_available + (1.0 - w) * cluster_mean.cpu_available;
  e.memory_free_mb =
      w * last_good.memory_free_mb + (1.0 - w) * cluster_mean.memory_free_mb;
  e.bandwidth_mbps =
      w * last_good.bandwidth_mbps + (1.0 - w) * cluster_mean.bandwidth_mbps;
  return e;
}

ResourceMonitor::ResourceMonitor(const Cluster& cluster, MonitorConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      sensor_(cluster, cfg.noise, cfg.seed),
      cpu_hist_(static_cast<std::size_t>(cluster.size())),
      mem_hist_(static_cast<std::size_t>(cluster.size())),
      bw_hist_(static_cast<std::size_t>(cluster.size())),
      last_good_(static_cast<std::size_t>(cluster.size())),
      last_good_time_(static_cast<std::size_t>(cluster.size()),
                      Seconds{0}),
      has_good_(static_cast<std::size_t>(cluster.size()), 0),
      fail_streak_(static_cast<std::size_t>(cluster.size()), 0),
      quarantined_(static_cast<std::size_t>(cluster.size()), 0),
      attempt_counter_(static_cast<std::size_t>(cluster.size()), 0) {
  const audit::AuditReport report =
      audit::validate_monitor_config(cfg);
  SSAMR_REQUIRE(report.ok(), report.summary());
}

std::size_t ResourceMonitor::index_of(rank_t rank) const {
  SSAMR_REQUIRE(rank >= 0 && rank < cluster_.size(), "rank out of range");
  return static_cast<std::size_t>(rank);
}

ResourceEstimate ResourceMonitor::fresh_probe(rank_t rank, Seconds t_obs) {
  const std::size_t i = static_cast<std::size_t>(rank);
  const Measurement m = sensor_.measure(rank, t_obs);
  auto& cpu = cpu_hist_[i];
  auto& mem = mem_hist_[i];
  auto& bw = bw_hist_[i];
  cpu.push_back(m.cpu_available);
  mem.push_back(m.memory_free_mb);
  bw.push_back(m.bandwidth_mbps);
  ++probe_count_;

  // Forecasts and raw measurements are dimensionless wire data; wrapping
  // them here is where each value acquires its dimension.
  ResourceEstimate e;
  if (cfg_.forecast) {
    e.cpu_available = Fraction{forecaster_.forecast(cpu)};
    e.memory_free_mb = MegaBytes{forecaster_.forecast(mem)};
    e.bandwidth_mbps = MbitsPerSec{forecaster_.forecast(bw)};
  } else {
    e.cpu_available = Fraction{m.cpu_available};
    e.memory_free_mb = MegaBytes{m.memory_free_mb};
    e.bandwidth_mbps = MbitsPerSec{m.bandwidth_mbps};
  }
  last_good_[i] = e;
  last_good_time_[i] = t_obs;
  has_good_[i] = 1;
  return e;
}

ResourceEstimate ResourceMonitor::probe(rank_t rank, Seconds t) {
  (void)index_of(rank);
  return fresh_probe(rank, t);
}

ResourceEstimate ResourceMonitor::known_good_mean() const {
  ResourceEstimate mean;
  mean.cpu_available = Fraction{0};
  int count = 0;
  for (std::size_t i = 0; i < has_good_.size(); ++i) {
    if (has_good_[i] == 0 || quarantined_[i] != 0) continue;
    mean.cpu_available += last_good_[i].cpu_available;
    mean.memory_free_mb += last_good_[i].memory_free_mb;
    mean.bandwidth_mbps += last_good_[i].bandwidth_mbps;
    ++count;
  }
  if (count == 0) return ResourceEstimate{Fraction{0}, MegaBytes{0}, MbitsPerSec{0}};
  mean.cpu_available /= count;
  mean.memory_free_mb /= count;
  mean.bandwidth_mbps /= count;
  return mean;
}

ProbeOutcome ResourceMonitor::probe_outcome(rank_t rank, Seconds t) {
  const std::size_t i = index_of(rank);
  const FaultPlan* plan = cluster_.fault_plan();

  ProbeOutcome out;
  if (plan == nullptr || plan->benign()) {
    out.estimate = fresh_probe(rank, t);
    out.status = ProbeStatus::kOk;
    out.attempts = 1;
    out.elapsed_s = cfg_.probe_cost_s;
    fail_streak_[i] = 0;
    return out;
  }

  // A quarantined node gets one attempt per sweep (no retry budget): the
  // monitor keeps listening for recovery but stops paying for backoff.
  const int max_attempts =
      quarantined_[i] != 0 ? 1 : 1 + cfg_.probe_max_retries;
  ProbeFault last_fault = ProbeFault::kNone;
  Seconds cost{0};
  int attempts = 0;
  bool answered = false;
  bool stale = false;
  for (int a = 0; a < max_attempts; ++a) {
    ++attempts;
    const ProbeFault f = plan->probe_fault(rank, t, attempt_counter_[i]++);
    if (f == ProbeFault::kNone || f == ProbeFault::kStale) {
      cost += cfg_.probe_cost_s;
      answered = true;
      stale = (f == ProbeFault::kStale);
      break;
    }
    last_fault = f;
    // A timeout costs the full deadline; a fast failure costs one probe.
    cost += f == ProbeFault::kTimeout ? cfg_.probe_deadline_s
                                      : cfg_.probe_cost_s;
    if (a + 1 < max_attempts)
      cost += cfg_.backoff_base_s * std::pow(cfg_.backoff_factor, a);
  }

  out.attempts = attempts;
  out.elapsed_s = cost;
  if (answered) {
    // A stale answer is a real (old) reading: it enters the history and
    // counts as contact for quarantine purposes.
    const Seconds t_obs = stale ? plan->observable_time(rank, t) : t;
    out.estimate = fresh_probe(rank, t_obs);
    out.status = stale ? ProbeStatus::kStale : ProbeStatus::kOk;
    fail_streak_[i] = 0;
    quarantined_[i] = 0;
    return out;
  }

  out.status = last_fault == ProbeFault::kTimeout ? ProbeStatus::kTimeout
                                                  : ProbeStatus::kFailed;
  ++fail_streak_[i];
  if (fail_streak_[i] >= cfg_.quarantine_after) quarantined_[i] = 1;
  if (quarantined_[i] != 0) {
    // Quarantined: report zero capacity so normalization routes no work
    // here until the node answers again.
    out.estimate = ResourceEstimate{Fraction{0}, MegaBytes{0}, MbitsPerSec{0}};
  } else if (has_good_[i] != 0) {
    out.estimate = cfg_.staleness.degrade(
        last_good_[i], t - last_good_time_[i], known_good_mean());
  } else {
    // Never reached the node at all: assume nothing (zero capacity) rather
    // than inventing an average node that may not exist.
    out.estimate = ResourceEstimate{Fraction{0}, MegaBytes{0}, MbitsPerSec{0}};
  }
  return out;
}

SweepResult ResourceMonitor::probe_all(Seconds t) {
  const std::size_t n = static_cast<std::size_t>(cluster_.size());
  SweepResult out;
  out.estimates.reserve(n);
  out.statuses.reserve(n);

  const FaultPlan* plan = cluster_.fault_plan();
  if (plan == nullptr || plan->benign()) {
    // Fault-free fast path, bit-identical to the pre-fault monitor: one
    // measurement per node and the flat sweep price.
    for (rank_t r = 0; r < cluster_.size(); ++r) {
      out.estimates.push_back(probe(r, t));
      out.statuses.push_back(ProbeStatus::kOk);
    }
    out.overhead_s = sweep_cost();
    out.ok = cluster_.size();
    SSAMR_AUDIT(audit::validate_cluster(cluster_, t));
    health_.record_sweep(out);
    return out;
  }

  const std::vector<char> was_quarantined = quarantined_;
  for (rank_t r = 0; r < cluster_.size(); ++r) {
    const ProbeOutcome o = probe_outcome(r, t);
    out.estimates.push_back(o.estimate);
    out.statuses.push_back(o.status);
    out.overhead_s += o.elapsed_s;
    switch (o.status) {
      case ProbeStatus::kOk: ++out.ok; break;
      case ProbeStatus::kStale: ++out.stale; break;
      case ProbeStatus::kTimeout: ++out.timeouts; break;
      case ProbeStatus::kFailed: ++out.failures; break;
    }
  }
  for (rank_t r = 0; r < cluster_.size(); ++r) {
    const std::size_t i = static_cast<std::size_t>(r);
    if (was_quarantined[i] == 0 && quarantined_[i] != 0)
      out.quarantined.push_back(r);
    else if (was_quarantined[i] != 0 && quarantined_[i] == 0)
      out.readmitted.push_back(r);
  }
  // The probed truth must itself be consistent: availabilities in [0, 1],
  // free memory and bandwidth within each node's spec.
  SSAMR_AUDIT(audit::validate_cluster(cluster_, t));
  health_.record_sweep(out);
  return out;
}

Seconds ResourceMonitor::sweep_cost() const {
  return cfg_.probe_cost_s * static_cast<real_t>(cluster_.size());
}

bool ResourceMonitor::quarantined(rank_t rank) const {
  return quarantined_[index_of(rank)] != 0;
}

int ResourceMonitor::fail_streak(rank_t rank) const {
  return fail_streak_[index_of(rank)];
}

const std::vector<real_t>& ResourceMonitor::cpu_history(rank_t rank) const {
  return cpu_hist_[index_of(rank)];
}

}  // namespace ssamr

#include "monitor/monitor_service.hpp"

#include "audit/audit.hpp"
#include "util/error.hpp"

namespace ssamr {

ResourceMonitor::ResourceMonitor(const Cluster& cluster, MonitorConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      sensor_(cluster, cfg.noise, cfg.seed),
      cpu_hist_(static_cast<std::size_t>(cluster.size())),
      mem_hist_(static_cast<std::size_t>(cluster.size())),
      bw_hist_(static_cast<std::size_t>(cluster.size())) {
  const audit::AuditReport report =
      audit::Validator{}.validate_monitor_config(cfg);
  SSAMR_REQUIRE(report.ok(), report.summary());
}

ResourceEstimate ResourceMonitor::probe(rank_t rank, real_t t) {
  const Measurement m = sensor_.measure(rank, t);
  auto& cpu = cpu_hist_[static_cast<std::size_t>(rank)];
  auto& mem = mem_hist_[static_cast<std::size_t>(rank)];
  auto& bw = bw_hist_[static_cast<std::size_t>(rank)];
  cpu.push_back(m.cpu_available);
  mem.push_back(m.memory_free_mb);
  bw.push_back(m.bandwidth_mbps);
  ++probe_count_;

  ResourceEstimate e;
  if (cfg_.forecast) {
    e.cpu_available = forecaster_.forecast(cpu);
    e.memory_free_mb = forecaster_.forecast(mem);
    e.bandwidth_mbps = forecaster_.forecast(bw);
  } else {
    e.cpu_available = m.cpu_available;
    e.memory_free_mb = m.memory_free_mb;
    e.bandwidth_mbps = m.bandwidth_mbps;
  }
  return e;
}

SweepResult ResourceMonitor::probe_all(real_t t) {
  SweepResult out;
  out.estimates.reserve(static_cast<std::size_t>(cluster_.size()));
  for (rank_t r = 0; r < cluster_.size(); ++r)
    out.estimates.push_back(probe(r, t));
  out.overhead_s = sweep_cost();
  // The probed truth must itself be consistent: availabilities in [0, 1],
  // free memory and bandwidth within each node's spec.
  SSAMR_AUDIT(audit::Validator{}.validate_cluster(cluster_, t));
  return out;
}

real_t ResourceMonitor::sweep_cost() const {
  return cfg_.probe_cost_s * static_cast<real_t>(cluster_.size());
}

const std::vector<real_t>& ResourceMonitor::cpu_history(rank_t rank) const {
  SSAMR_REQUIRE(rank >= 0 && rank < cluster_.size(), "rank out of range");
  return cpu_hist_[static_cast<std::size_t>(rank)];
}

}  // namespace ssamr

#pragma once
/// \file monitor_service.hpp
/// The resource-monitoring facade (the paper's "Resource Monitoring Tool",
/// played by NWS on the real cluster).
///
/// The service measures each node (sensor.hpp), keeps per-node, per-resource
/// measurement histories, and answers queries with NWS-style forecasts
/// (forecaster.hpp).  Querying is not free: the paper measures "the
/// overhead of probing NWS on a node, retrieving its system state, and
/// computing its relative capacity" at about 0.5 seconds — the service
/// accounts that cost so the runtime can charge it to execution time.

#include <memory>
#include <vector>

#include "cluster/cluster.hpp"
#include "monitor/forecaster.hpp"
#include "monitor/sensor.hpp"
#include "util/types.hpp"

namespace ssamr {

/// What the monitor reports for one node.
struct ResourceEstimate {
  real_t cpu_available = 1.0;
  real_t memory_free_mb = 0;
  real_t bandwidth_mbps = 0;
};

/// One full probe sweep: the per-node estimates plus what the sweep cost.
struct SweepResult {
  std::vector<ResourceEstimate> estimates;
  /// Virtual-time cost of the sweep (probe_cost_s × nodes).
  real_t overhead_s = 0;
};

/// Monitor configuration.
struct MonitorConfig {
  SensorNoise noise;
  /// Seconds charged per node probed (paper: ≈ 0.5 s per node).
  real_t probe_cost_s = 0.5;
  /// CPU fraction the monitor steals on monitored nodes (NWS: < 3 %).
  real_t intrusion_cpu = 0.02;
  /// Memory footprint of the monitor per node in MB (NWS: ≈ 3300 KB).
  real_t intrusion_memory_mb = 3.3;
  /// Use the adaptive forecaster over the history; when false, report the
  /// raw last measurement (no forecasting).
  bool forecast = true;
  std::uint64_t seed = 42;
};

/// The monitoring service for one cluster.
class ResourceMonitor {
 public:
  ResourceMonitor(const Cluster& cluster, MonitorConfig cfg);

  /// Probe one node at virtual time t: take a measurement, extend the
  /// history, and return the forecasted estimate.
  ResourceEstimate probe(rank_t rank, real_t t);

  /// Probe every node and report the sweep's virtual-time cost alongside
  /// the estimates.
  SweepResult probe_all(real_t t);

  /// Virtual-time cost of probing the whole cluster once.
  real_t sweep_cost() const;

  /// CPU fraction stolen by the monitor on every node.
  real_t intrusion_cpu() const { return cfg_.intrusion_cpu; }

  /// Number of probes issued so far (all nodes).
  std::size_t probe_count() const { return probe_count_; }

  /// Measurement history of one node's CPU availability (test access).
  const std::vector<real_t>& cpu_history(rank_t rank) const;

 private:
  const Cluster& cluster_;
  MonitorConfig cfg_;
  Sensor sensor_;
  AdaptiveForecaster forecaster_;
  std::vector<std::vector<real_t>> cpu_hist_;
  std::vector<std::vector<real_t>> mem_hist_;
  std::vector<std::vector<real_t>> bw_hist_;
  std::size_t probe_count_ = 0;
};

}  // namespace ssamr

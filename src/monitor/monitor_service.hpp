#pragma once
/// \file monitor_service.hpp
/// The resource-monitoring facade (the paper's "Resource Monitoring Tool",
/// played by NWS on the real cluster).
///
/// The service measures each node (sensor.hpp), keeps per-node, per-resource
/// measurement histories, and answers queries with NWS-style forecasts
/// (forecaster.hpp).  Querying is not free: the paper measures "the
/// overhead of probing NWS on a node, retrieving its system state, and
/// computing its relative capacity" at about 0.5 seconds — the service
/// accounts that cost so the runtime can charge it to execution time.
///
/// Probes can fail.  When the cluster carries a FaultPlan
/// (cluster/fault_plan.hpp), a probe may time out (costing the full
/// per-probe deadline), fail fast, or answer with stale readings.  The
/// monitor retries with bounded exponential backoff; when every attempt
/// fails it falls back to the last-known-good reading decayed toward the
/// cluster mean (StalenessPolicy), and nodes that fail
/// `quarantine_after` consecutive sweeps are quarantined — reported at
/// zero capacity and probed with a single attempt (no retry budget) until
/// a probe succeeds again, at which point they are re-admitted.  Without
/// a fault plan every probe succeeds on the first attempt and the sweep
/// accounting is bit-identical to the pre-fault monitor.

#include <cstdint>
#include <memory>
#include <vector>

#include "capacity/resource_estimate.hpp"
#include "cluster/cluster.hpp"
#include "monitor/forecaster.hpp"
#include "monitor/probe_health.hpp"
#include "monitor/sensor.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// How one probe (after retries) ended.
enum class ProbeStatus : std::uint8_t {
  kOk,       ///< a fresh measurement was obtained
  kStale,    ///< the node answered with readings from an earlier time
  kTimeout,  ///< every attempt timed out; estimate is a decayed fallback
  kFailed,   ///< every attempt failed fast; estimate is a decayed fallback
};

/// Human-readable name of a probe status ("ok", "stale", ...).
const char* probe_status_name(ProbeStatus s);

/// Fallback policy for nodes the monitor cannot reach: report the
/// last-known-good reading, decayed exponentially toward the cluster mean
/// as it ages (an unreachable node's state is unknown, so the best
/// unbiased guess drifts to the population average).
struct StalenessPolicy {
  /// e-folding time of the decay, in virtual seconds.
  Seconds decay_tau_s{60.0};

  /// Blend `last_good` toward `cluster_mean` for a reading `age` old.
  ResourceEstimate degrade(const ResourceEstimate& last_good, Seconds age,
                           const ResourceEstimate& cluster_mean) const;
};

/// One probe of one node: status, the estimate to use, and what it cost.
struct ProbeOutcome {
  ProbeStatus status = ProbeStatus::kOk;
  ResourceEstimate estimate;
  /// Probe attempts issued (1 = the first try answered).
  int attempts = 1;
  /// Virtual-time cost of the probe including timeouts, retries and
  /// backoff waits.  Equals MonitorConfig::probe_cost_s when the first
  /// attempt succeeds.
  Seconds elapsed_s{0};
};

/// One full probe sweep: the per-node estimates plus what the sweep cost
/// and how healthy it was.
struct SweepResult {
  std::vector<ResourceEstimate> estimates;
  /// Per-node probe status, parallel to `estimates`.
  std::vector<ProbeStatus> statuses;
  /// Virtual-time cost of the sweep (probe_cost_s × nodes when fault-free;
  /// larger when probes timed out, retried or backed off).
  Seconds overhead_s{0};
  /// Probe-health tallies of this sweep.
  int ok = 0;
  int stale = 0;
  int timeouts = 0;
  int failures = 0;
  /// Nodes newly quarantined / re-admitted by this sweep.
  std::vector<rank_t> quarantined;
  std::vector<rank_t> readmitted;

  /// True when this sweep changed any node's quarantine state — the
  /// runtime forces a repartition on such events.
  bool health_event() const {
    return !quarantined.empty() || !readmitted.empty();
  }
};

/// Monitor configuration.
struct MonitorConfig {
  SensorNoise noise;
  /// Seconds charged per node probed (paper: ≈ 0.5 s per node).
  Seconds probe_cost_s{0.5};
  /// Seconds after which an unanswered probe counts as timed out (each
  /// timed-out attempt costs this much virtual time).
  Seconds probe_deadline_s{2.0};
  /// Retries after a failed or timed-out attempt (bounded; quarantined
  /// nodes get a single attempt regardless).
  int probe_max_retries = 2;
  /// Wait before the first retry; each further retry multiplies it by
  /// backoff_factor (exponential backoff).
  Seconds backoff_base_s{0.25};
  real_t backoff_factor = 2.0;
  /// Consecutive failed sweeps after which a node is quarantined
  /// (reported at zero capacity until a probe succeeds again).
  int quarantine_after = 2;
  /// Fallback decay for unreachable nodes.
  StalenessPolicy staleness;
  /// CPU fraction the monitor steals on monitored nodes (NWS: < 3 %).
  Fraction intrusion_cpu{0.02};
  /// Memory footprint of the monitor per node in MB (NWS: ≈ 3300 KB).
  MegaBytes intrusion_memory_mb{3.3};
  /// Use the adaptive forecaster over the history; when false, report the
  /// raw last measurement (no forecasting).
  bool forecast = true;
  std::uint64_t seed = 42;
};

/// The monitoring service for one cluster.
class ResourceMonitor {
 public:
  ResourceMonitor(const Cluster& cluster, MonitorConfig cfg);

  /// Probe one node at virtual time t: take a measurement (retrying on
  /// faults), extend the history, and return the forecasted estimate.
  ResourceEstimate probe(rank_t rank, Seconds t);

  /// As probe(), but report the full outcome (status, attempts, cost).
  ProbeOutcome probe_outcome(rank_t rank, Seconds t);

  /// Probe every node and report the sweep's virtual-time cost, health
  /// tallies and quarantine transitions alongside the estimates.  Each
  /// sweep's tallies are also folded into the health ledger.
  SweepResult probe_all(Seconds t);

  /// Running probe-health totals across all sweeps of this monitor's
  /// lifetime — the shared state between the monitor (writing on the
  /// sensing lane) and the runtime (reading when a trace is finalized).
  HealthLedger& health() { return health_; }
  const HealthLedger& health() const { return health_; }

  /// Virtual-time cost of probing the whole cluster once, fault-free.
  Seconds sweep_cost() const;

  /// CPU fraction stolen by the monitor on every node.
  Fraction intrusion_cpu() const { return cfg_.intrusion_cpu; }

  /// Number of probes issued so far (all nodes, successful or not).
  std::size_t probe_count() const { return probe_count_; }

  /// True while `rank` is quarantined (capacity reported as zero).
  bool quarantined(rank_t rank) const;

  /// Consecutive failed probes of `rank` (0 after any success).
  int fail_streak(rank_t rank) const;

  /// Measurement history of one node's CPU availability (test access).
  const std::vector<real_t>& cpu_history(rank_t rank) const;

 private:
  /// Take a fresh measurement of `rank` as of virtual time t_obs, extend
  /// the history, and record the result as last-known-good.
  ResourceEstimate fresh_probe(rank_t rank, Seconds t_obs);
  /// Mean of the last-known-good estimates over non-quarantined nodes
  /// (the decay target of the staleness fallback).
  ResourceEstimate known_good_mean() const;
  std::size_t index_of(rank_t rank) const;

  const Cluster& cluster_;
  MonitorConfig cfg_;
  Sensor sensor_;
  AdaptiveForecaster forecaster_;
  std::vector<std::vector<real_t>> cpu_hist_;
  std::vector<std::vector<real_t>> mem_hist_;
  std::vector<std::vector<real_t>> bw_hist_;
  /// Fault-tolerance state, one slot per node.
  std::vector<ResourceEstimate> last_good_;
  std::vector<Seconds> last_good_time_;
  std::vector<char> has_good_;
  std::vector<int> fail_streak_;
  std::vector<char> quarantined_;
  std::vector<std::uint64_t> attempt_counter_;
  std::size_t probe_count_ = 0;
  HealthLedger health_;
};

}  // namespace ssamr

#pragma once
/// \file probe_health.hpp
/// Probe-health counters and the thread-safe ledger that accumulates them.
///
/// The counters are produced by the monitor's sensing sweeps
/// (monitor_service.hpp) and consumed by the runtime when it finalizes a
/// RunTrace — two subsystems that run on different lanes under the event
/// executor (the monitor lane overlaps rank compute).  The ledger is the
/// one piece of health state they share, so it is a capability-annotated
/// critical section: every access to the totals goes through the Mutex,
/// and a Clang `-Wthread-safety` build proves no path around it.

#include "util/thread_safety.hpp"

namespace ssamr {

struct SweepResult;

/// Probe-health counters accumulated over a run's sensing sweeps.
/// All zero on a fault-free run except `ok`.
struct ProbeHealth {
  int ok = 0;         ///< probes answered fresh
  int stale = 0;      ///< probes answered with stale readings
  int timeouts = 0;   ///< probes that exhausted retries timing out
  int failures = 0;   ///< probes that exhausted retries failing fast
  int quarantines = 0;    ///< quarantine events (nodes dropped to zero)
  int readmissions = 0;   ///< recovery events (nodes re-admitted)
  /// Repartitions forced by quarantine/readmission events outside the
  /// regular regrid cadence.
  int forced_repartitions = 0;

  bool operator==(const ProbeHealth&) const = default;
};

/// Mutex-guarded accumulator of ProbeHealth shared between the monitor
/// (writer: one record_sweep per probe sweep) and the runtime (writer of
/// forced-repartition events, reader of the final snapshot).
class HealthLedger {
 public:
  /// Fold one sweep's tallies and quarantine transitions into the totals.
  void record_sweep(const SweepResult& sweep);

  /// Count a repartition forced off-cadence by a health event.
  void record_forced_repartition();

  /// Consistent copy of the accumulated counters.
  ProbeHealth snapshot() const;

 private:
  mutable Mutex mutex_;
  ProbeHealth totals_ SSAMR_GUARDED_BY(mutex_);
};

}  // namespace ssamr

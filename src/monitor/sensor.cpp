#include "monitor/sensor.hpp"

#include <algorithm>

namespace ssamr {

Sensor::Sensor(const Cluster& cluster, SensorNoise noise, std::uint64_t seed)
    : cluster_(cluster), noise_(noise), rng_(seed) {}

real_t Sensor::perturb(real_t value, real_t sigma, real_t lo, real_t hi) {
  if (sigma <= 0) return std::clamp(value, lo, hi);
  const real_t noisy = value * (1.0 + rng_.normal(0.0, sigma));
  return std::clamp(noisy, lo, hi);
}

Measurement Sensor::measure(rank_t rank, Seconds t) {
  const NodeState s = cluster_.state_at(rank, t);
  const NodeSpec& spec = cluster_.spec(rank);
  // Raw-reading boundary: .value() unwraps are sanctioned here (and only
  // here on the sensing path) because a measurement is dimensionless wire
  // data until the monitor classifies it.
  Measurement m;
  m.time = t.value();
  m.cpu_available =
      perturb(s.cpu_available.value(), noise_.cpu_sigma, 0.0, 1.0);
  m.memory_free_mb = perturb(s.memory_free_mb.value(), noise_.memory_sigma,
                             0.0, spec.memory_mb.value());
  m.bandwidth_mbps = perturb(s.bandwidth_mbps.value(), noise_.bandwidth_sigma,
                             0.0, spec.bandwidth_mbps.value());
  return m;
}

}  // namespace ssamr

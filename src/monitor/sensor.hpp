#pragma once
/// \file sensor.hpp
/// Noisy measurement of node resource state.
///
/// NWS sensors do not see the true instantaneous state: CPU monitors
/// sample /proc, bandwidth probes send finite messages.  The Sensor applies
/// bounded multiplicative noise to the cluster's true state so forecasting
/// (forecaster.hpp) has something real to do.

#include "cluster/cluster.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// One measurement of a node's resources.
///
/// Raw-reading boundary: a sensor sample is an unvalidated wire reading,
/// so its fields stay raw `real_t`; typed units begin at ResourceEstimate
/// (capacity/resource_estimate.hpp), where the monitor vouches for the
/// dimension of each value.
struct Measurement {
  real_t time = 0;
  real_t cpu_available = 1.0;
  real_t memory_free_mb = 0;
  real_t bandwidth_mbps = 0;
};

/// Measurement noise configuration (standard deviations, multiplicative).
struct SensorNoise {
  real_t cpu_sigma = 0.03;
  real_t memory_sigma = 0.01;
  real_t bandwidth_sigma = 0.05;
};

/// Samples the true cluster state with noise.
class Sensor {
 public:
  Sensor(const Cluster& cluster, SensorNoise noise, std::uint64_t seed);

  /// Measure one node at virtual time t.
  Measurement measure(rank_t rank, Seconds t);

 private:
  real_t perturb(real_t value, real_t sigma, real_t lo, real_t hi);
  const Cluster& cluster_;
  SensorNoise noise_;
  Rng rng_;
};

}  // namespace ssamr

#include "net/frame.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstring>

#include "util/wallclock.hpp"

namespace ssamr::net {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    table[i] = c;
  }
  return table;
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

void store_u32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}

/// Remaining poll budget in whole milliseconds, at least 1 while the
/// deadline has not passed so short deadlines still get one poll cycle.
int remaining_ms(double deadline_s) {
  const double left = deadline_s - wallclock_seconds();
  if (left <= 0) return 0;
  const double ms = std::clamp(left * 1e3, 1.0, 60'000.0);
  return static_cast<int>(ms);
}

/// poll(2) for `events` with EINTR retry.  Returns false iff the deadline
/// expired with the fd never becoming ready.
bool poll_until(int fd, short events, double deadline_s) {
  for (;;) {
    const int ms = remaining_ms(deadline_s);
    if (ms == 0) return false;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, ms);
    if (rc > 0) return true;
    if (rc == 0) continue;  // timeout slice elapsed; re-check deadline
    if (errno == EINTR) continue;
    return false;
  }
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (error_ != FrameError::kNone) return;
  buf_.insert(buf_.end(), data, data + size);
}

bool FrameDecoder::next(Frame& out) {
  if (error_ != FrameError::kNone) return false;
  if (buf_.size() - off_ < kFrameHeaderSize) return false;
  const std::uint8_t* h = buf_.data() + off_;
  const std::uint32_t magic = load_u32(h);
  const std::uint32_t type = load_u32(h + 4);
  const std::uint32_t length = load_u32(h + 8);
  const std::uint32_t crc = load_u32(h + 12);
  // Validate the prefix BEFORE trusting `length` for anything: a bad magic
  // or CRC means the stream is desynchronized and the length field is
  // garbage; an oversized length (>= 2^31 covers negative i32s) must be
  // rejected without reserving payload storage.
  if (magic != kFrameMagic) {
    error_ = FrameError::kBadMagic;
    return false;
  }
  if (crc != crc32(h, 12)) {
    error_ = FrameError::kBadCrc;
    return false;
  }
  if (length > kMaxFramePayload) {
    error_ = FrameError::kOversized;
    return false;
  }
  if (buf_.size() - off_ < kFrameHeaderSize + length) return false;
  out.type = type;
  out.payload.assign(h + kFrameHeaderSize, h + kFrameHeaderSize + length);
  off_ += kFrameHeaderSize + length;
  // Compact once the consumed prefix dominates, so long-lived decoders do
  // not grow without bound.
  if (off_ > (1u << 16) && off_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  return true;
}

std::vector<std::uint8_t> encode_frame(std::uint32_t type,
                                       const std::uint8_t* payload,
                                       std::size_t size) {
  std::vector<std::uint8_t> out(kFrameHeaderSize + size);
  store_u32(out.data(), kFrameMagic);
  store_u32(out.data() + 4, type);
  store_u32(out.data() + 8, static_cast<std::uint32_t>(size));
  store_u32(out.data() + 12, crc32(out.data(), 12));
  if (size > 0) std::memcpy(out.data() + kFrameHeaderSize, payload, size);
  return out;
}

IoStatus read_some(int fd, std::uint8_t* buf, std::size_t cap,
                   std::size_t* got) {
  *got = 0;
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n > 0) {
      *got = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    return IoStatus::kError;
  }
}

IoStatus write_some(int fd, const std::uint8_t* buf, std::size_t size,
                    std::size_t* put) {
  *put = 0;
  for (;;) {
    // send(MSG_NOSIGNAL) so a dead peer yields EPIPE instead of killing the
    // process with SIGPIPE; falls back to write(2) for non-socket fds
    // (ENOTSOCK), e.g. pipes in tests.
    ssize_t n = ::send(fd, buf, size, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, buf, size);
    if (n >= 0) {
      *put = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kOk;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
}

IoStatus write_frame(int fd, std::uint32_t type, const std::uint8_t* payload,
                     std::size_t size, double timeout_s) {
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload, size);
  const double deadline = wallclock_seconds() + timeout_s;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    std::size_t put = 0;
    const IoStatus st =
        write_some(fd, bytes.data() + sent, bytes.size() - sent, &put);
    if (st != IoStatus::kOk) return st;
    sent += put;
    if (put == 0 && sent < bytes.size() &&
        !poll_until(fd, POLLOUT, deadline))
      return IoStatus::kTimeout;
  }
  return IoStatus::kOk;
}

IoStatus read_frame(int fd, FrameDecoder& decoder, Frame& out,
                    double timeout_s) {
  const double deadline = wallclock_seconds() + timeout_s;
  for (;;) {
    if (decoder.next(out)) return IoStatus::kOk;
    if (decoder.error() != FrameError::kNone) return IoStatus::kProtocol;
    std::uint8_t chunk[4096];
    std::size_t got = 0;
    const IoStatus st = read_some(fd, chunk, sizeof chunk, &got);
    if (st == IoStatus::kClosed) return IoStatus::kClosed;
    if (st == IoStatus::kError) return IoStatus::kError;
    if (got > 0) {
      decoder.feed(chunk, got);
      continue;
    }
    if (!poll_until(fd, POLLIN, deadline)) return IoStatus::kTimeout;
  }
}

}  // namespace ssamr::net

#pragma once
/// \file frame.hpp
/// Length-prefixed message framing over byte-stream sockets (DESIGN.md §12).
///
/// Every message on a proc-backend socket is one frame:
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  magic   0x53414D52 ("SAMR", host-endian)
///        4     4  type    application message id (sim/proc_protocol.hpp)
///        8     4  length  payload bytes, <= kMaxFramePayload
///       12     4  crc     CRC-32 of header bytes [0, 12)
///       16     n  payload
///
/// The CRC covers the header only: its job is to reject a desynchronized or
/// corrupted length prefix *before* the reader allocates `length` bytes, so
/// a garbage prefix (including a "negative" length, i.e. >= 2^31) can never
/// drive an attacker- or corruption-controlled allocation.  Payload
/// integrity is the transport's job — these are local SOCK_STREAM /
/// loopback-TCP sockets, not a lossy network.
///
/// Two layers of API:
///   - FrameDecoder: incremental, push-based — feed() arbitrary byte chunks
///     (partial reads are the normal case), next() pops completed frames.
///   - read_frame()/write_frame(): blocking-with-deadline convenience on a
///     nonblocking fd, built on poll(2) + read_some()/write_some() which
///     retry EINTR and surface EAGAIN as "made no progress".

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ssamr::net {

inline constexpr std::uint32_t kFrameMagic = 0x53414D52u;  // "SAMR"
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Hard payload cap (64 MiB).  Larger lengths are protocol errors and are
/// rejected without allocating.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;

/// CRC-32 (IEEE 802.3, reflected) over a byte span.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// One completed application message.
struct Frame {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
};

enum class FrameError {
  kNone = 0,
  kBadMagic,   ///< header did not start with "SAMR" — stream desynchronized
  kBadCrc,     ///< header checksum mismatch — corrupted length/type
  kOversized,  ///< length > kMaxFramePayload (covers negative i32 lengths)
};

/// Incremental decoder: feed() bytes as they arrive, next() pops frames.
/// After any error() != kNone the decoder is poisoned — the stream has no
/// recoverable framing — and feed() becomes a no-op.
class FrameDecoder {
 public:
  /// Append raw bytes from the stream (any chunking, including 1 byte).
  void feed(const std::uint8_t* data, std::size_t size);

  /// Pop the next completed frame into `out`.  Returns false when no full
  /// frame is buffered (or the decoder is poisoned).
  bool next(Frame& out);

  FrameError error() const { return error_; }

  /// Bytes buffered but not yet consumed as frames (test observability).
  std::size_t pending_bytes() const { return buf_.size() - off_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t off_ = 0;  // consumed prefix of buf_
  FrameError error_ = FrameError::kNone;
};

/// Serialize a frame (header + payload) into a contiguous byte buffer.
std::vector<std::uint8_t> encode_frame(std::uint32_t type,
                                       const std::uint8_t* payload,
                                       std::size_t size);

enum class IoStatus {
  kOk = 0,
  kClosed,    ///< peer closed the stream (EOF mid-frame counts as kClosed)
  kTimeout,   ///< per-message deadline expired
  kProtocol,  ///< framing error — see FrameDecoder::error()
  kError,     ///< errno-level failure (EPIPE, ECONNRESET, ...)
};

/// read(2) once into [buf, buf+cap), retrying EINTR.  EAGAIN/EWOULDBLOCK
/// returns kOk with *got == 0; EOF returns kClosed.
IoStatus read_some(int fd, std::uint8_t* buf, std::size_t cap,
                   std::size_t* got);

/// write(2) once from [buf, buf+size), retrying EINTR.  EAGAIN returns kOk
/// with *put == 0.  EPIPE returns kClosed (install SIG_IGN for SIGPIPE or
/// use MSG_NOSIGNAL upstream; we use send() with MSG_NOSIGNAL on sockets).
IoStatus write_some(int fd, const std::uint8_t* buf, std::size_t size,
                    std::size_t* put);

/// Write one whole frame to a nonblocking fd, polling until done or until
/// `timeout_s` wall-clock seconds elapse.
IoStatus write_frame(int fd, std::uint32_t type, const std::uint8_t* payload,
                     std::size_t size, double timeout_s);

/// Read one whole frame from a nonblocking fd under a deadline.  Bytes
/// beyond the first frame stay buffered in `decoder` for the next call.
IoStatus read_frame(int fd, FrameDecoder& decoder, Frame& out,
                    double timeout_s);

}  // namespace ssamr::net

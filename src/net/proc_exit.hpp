#pragma once
/// \file proc_exit.hpp
/// The sanctioned process-exit seam for forked rank processes.
///
/// A forked child must NEVER return into the parent's stack or run the
/// parent's atexit handlers / static destructors — the coordinator still
/// owns those (flushing its stdio or tearing down its thread pool from the
/// child would corrupt shared fds and double-run cleanup).  _exit(2) is the
/// only correct way out, so this header is the one place allowed to call it
/// (tools/lint.sh excludes this file from the exit-call ban; everywhere
/// else, raw exit calls stay forbidden).

#include <unistd.h>

namespace ssamr::net {

/// Terminate the calling (forked) process immediately: no atexit handlers,
/// no static destructors, no stdio flush.  Child-process use only.
[[noreturn]] inline void hard_exit(int code) {
  ::_exit(code);
}

}  // namespace ssamr::net

#include "net/socket.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "net/sysio.hpp"
#include "util/error.hpp"

namespace ssamr::net {
namespace {

[[noreturn]] void fail(const char* what) {
  throw Error(std::string("net: ") + what + ": " + ::strerror(errno));
}

/// Nonblocking only.  CLOEXEC is never set here — descriptors must be born
/// CLOEXEC (SOCK_CLOEXEC / accept4) or a fork between creation and fcntl
/// leaks them into the child's exec image.
void set_nonblock(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  SSAMR_REQUIRE(fl >= 0, "fcntl(F_GETFL)");
  SSAMR_REQUIRE(::fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK)");
}

StreamPair make_unix_pair() {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0,
                   sv) != 0)
    fail("socketpair(AF_UNIX)");
  return StreamPair{sv[0], sv[1]};
}

/// Loopback TCP self-connect: listen on an ephemeral 127.0.0.1 port,
/// connect a client socket to it, accept — then throw the listener away.
/// Every fd is held by a UniqueFd until the pair is assembled, so the
/// throwing fail() paths cannot leak a descriptor.
StreamPair make_tcp_pair() {
  UniqueFd listener(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (listener.get() < 0) fail("socket(AF_INET) listener");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    fail("bind(127.0.0.1:0)");
  socklen_t alen = sizeof addr;
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &alen) != 0)
    fail("getsockname");
  if (::listen(listener.get(), 1) != 0) fail("listen");
  UniqueFd client(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (client.get() < 0) fail("socket(AF_INET) client");
  // Blocking connect to our own listener: loopback completes immediately,
  // and an EINTR mid-handshake resumes via the poll path in connect_retry.
  // The client stays blocking until after the connect — a nonblocking
  // connect would return EINPROGRESS instead.
  if (connect_retry(client.get(), reinterpret_cast<const sockaddr*>(&addr),
                    sizeof addr) != 0)
    fail("connect(loopback)");
  UniqueFd accepted;
  for (;;) {
    accepted.reset(::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC));
    if (accepted.get() >= 0 || errno != EINTR) break;
  }
  if (accepted.get() < 0) fail("accept4");
  const int one = 1;
  ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  ::setsockopt(accepted.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_nonblock(client.get());
  set_nonblock(accepted.get());
  return StreamPair{client.release(), accepted.release()};
}

}  // namespace

void UniqueFd::reset(int fd) {
  close_fd(fd_);
  fd_ = fd;
}

StreamPair make_stream_pair(bool use_tcp) {
  return use_tcp ? make_tcp_pair() : make_unix_pair();
}

void close_fd(int fd) {
  if (fd < 0) return;
  // One shot, EINTR deliberately not retried: Linux releases the fd even
  // when close() is interrupted, so a retry could close an fd another
  // thread has already been handed under the same number.
  ::close(fd);
}

}  // namespace ssamr::net

#include "net/socket.hpp"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

#include "util/error.hpp"

namespace ssamr::net {
namespace {

[[noreturn]] void fail(const char* what) {
  throw Error(std::string("net: ") + what + ": " + ::strerror(errno));
}

void set_nonblock_cloexec(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  SSAMR_REQUIRE(fl >= 0, "fcntl(F_GETFL)");
  SSAMR_REQUIRE(::fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK)");
  const int fd_fl = ::fcntl(fd, F_GETFD, 0);
  SSAMR_REQUIRE(fd_fl >= 0, "fcntl(F_GETFD)");
  SSAMR_REQUIRE(::fcntl(fd, F_SETFD, fd_fl | FD_CLOEXEC) == 0,
                "fcntl(F_SETFD, FD_CLOEXEC)");
}

StreamPair make_unix_pair() {
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
    fail("socketpair(AF_UNIX)");
  set_nonblock_cloexec(sv[0]);
  set_nonblock_cloexec(sv[1]);
  return StreamPair{sv[0], sv[1]};
}

/// Loopback TCP self-connect: listen on an ephemeral 127.0.0.1 port,
/// connect a client socket to it, accept — then throw the listener away.
StreamPair make_tcp_pair() {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) fail("socket(AF_INET) listener");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(lfd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    close_fd(lfd);
    fail("bind(127.0.0.1:0)");
  }
  socklen_t alen = sizeof addr;
  if (::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen) != 0) {
    close_fd(lfd);
    fail("getsockname");
  }
  if (::listen(lfd, 1) != 0) {
    close_fd(lfd);
    fail("listen");
  }
  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (cfd < 0) {
    close_fd(lfd);
    fail("socket(AF_INET) client");
  }
  // Blocking connect to our own listener: loopback, completes immediately.
  if (::connect(cfd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    close_fd(cfd);
    close_fd(lfd);
    fail("connect(loopback)");
  }
  int afd = -1;
  for (;;) {
    afd = ::accept(lfd, nullptr, nullptr);
    if (afd >= 0 || errno != EINTR) break;
  }
  close_fd(lfd);
  if (afd < 0) {
    close_fd(cfd);
    fail("accept");
  }
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  ::setsockopt(afd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_nonblock_cloexec(cfd);
  set_nonblock_cloexec(afd);
  return StreamPair{cfd, afd};
}

}  // namespace

StreamPair make_stream_pair(bool use_tcp) {
  return use_tcp ? make_tcp_pair() : make_unix_pair();
}

void close_fd(int fd) {
  if (fd < 0) return;
  for (;;) {
    if (::close(fd) == 0 || errno != EINTR) return;
  }
}

}  // namespace ssamr::net

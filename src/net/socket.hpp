#pragma once
/// \file socket.hpp
/// Connected stream-socket pairs for the proc backend (DESIGN.md §12).
///
/// The default transport is an AF_UNIX socketpair — the coordinator forks
/// its ranks, so both ends exist before fork() and no filesystem path or
/// port is ever exposed.  The TCP fallback binds a loopback listener on an
/// ephemeral port and connects to itself, for environments where
/// AF_UNIX is unavailable (some containers) or when cross-checking the
/// framing layer over a real TCP stack.  Both ends come back nonblocking
/// and CLOEXEC; TCP ends additionally have TCP_NODELAY set so small control
/// frames are not Nagle-delayed.

namespace ssamr::net {

/// Two connected nonblocking stream endpoints.  After fork(), the parent
/// keeps one end and closes the other; the child does the reverse.
struct StreamPair {
  int a = -1;
  int b = -1;
};

/// Create a connected pair.  Throws ssamr::Error on resource exhaustion.
StreamPair make_stream_pair(bool use_tcp);

/// close(2) with EINTR retry; ignores already-closed fds (fd < 0).
void close_fd(int fd);

}  // namespace ssamr::net

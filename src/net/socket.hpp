#pragma once
/// \file socket.hpp
/// Connected stream-socket pairs for the proc backend (DESIGN.md §12).
///
/// The default transport is an AF_UNIX socketpair — the coordinator forks
/// its ranks, so both ends exist before fork() and no filesystem path or
/// port is ever exposed.  The TCP fallback binds a loopback listener on an
/// ephemeral port and connects to itself, for environments where
/// AF_UNIX is unavailable (some containers) or when cross-checking the
/// framing layer over a real TCP stack.  Both ends come back nonblocking
/// and CLOEXEC; TCP ends additionally have TCP_NODELAY set so small control
/// frames are not Nagle-delayed.
///
/// Every descriptor is CLOEXEC *at creation* (SOCK_CLOEXEC / accept4),
/// never via a later fcntl: a window between socket() and F_SETFD is a
/// window in which a concurrent fork+exec inherits the fd.  The
/// fd-lifecycle lint rule enforces this, and UniqueFd below is the RAII
/// shape it recognizes as an ownership transfer.

namespace ssamr::net {

/// Owning file descriptor: closes on destruction, so a throwing path
/// between creation and handoff can never leak the fd.  Movable, not
/// copyable; release() transfers ownership out (to a StreamPair, a child
/// process table, ...).
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.fd_);
      other.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }

  /// Give up ownership; the caller must close the returned fd.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Close the held fd (if any) and adopt `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Two connected nonblocking stream endpoints.  After fork(), the parent
/// keeps one end and closes the other; the child does the reverse.
struct StreamPair {
  int a = -1;
  int b = -1;
};

/// Create a connected pair.  Throws ssamr::Error on resource exhaustion.
StreamPair make_stream_pair(bool use_tcp);

/// close(2); ignores already-closed fds (fd < 0).  Deliberately does NOT
/// retry EINTR: on Linux the descriptor is released even when close() is
/// interrupted, so a retry races against another thread reusing the fd
/// number and can close an unrelated descriptor.
void close_fd(int fd);

}  // namespace ssamr::net

#include "net/sysio.hpp"

#include <errno.h>
#include <sys/wait.h>

namespace ssamr::net {

int poll_retry(struct pollfd* fds, nfds_t nfds, int timeout_ms) {
  for (;;) {
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc >= 0 || errno != EINTR) return rc;
  }
}

pid_t waitpid_retry(pid_t pid, int* status, int options) {
  for (;;) {
    const pid_t got = ::waitpid(pid, status, options);
    if (got >= 0 || errno != EINTR) return got;
  }
}

int connect_retry(int fd, const struct sockaddr* addr, socklen_t addrlen) {
  // Retrying connect() after EINTR is wrong (the second call reports
  // EALREADY while the first attempt is still in flight); the sanctioned
  // resume is the writability wait below, so this one raw call is
  // exempted from the in-loop requirement.
  // ssamr-lint: allow(eintr-retry)
  if (::connect(fd, addr, addrlen) == 0) return 0;
  if (errno != EINTR && errno != EINPROGRESS) return -1;
  // The interrupted attempt completes in the background; wait for the
  // socket to become writable, then surface the attempt's real outcome.
  struct pollfd pfd {};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  for (;;) {
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/-1);
    if (rc > 0) break;
    if (rc < 0 && errno == EINTR) continue;
    return -1;
  }
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return -1;
  if (err != 0) {
    errno = err;
    return -1;
  }
  return 0;
}

}  // namespace ssamr::net

#pragma once
/// \file sysio.hpp
/// The sanctioned raw-syscall seam of the proc backend (DESIGN.md §13).
///
/// Raw read/write/poll/waitpid/connect are banned outside src/net by the
/// `eintr-retry` lint rule: every one of them can return EINTR mid-run
/// (the proc backend forks, reaps and measures under real signals), and a
/// call site that forgets the retry loop turns a benign signal into a
/// spurious phase failure.  Inside src/net the same rule requires every
/// raw call site to sit under an EINTR retry loop — these wrappers are
/// where those loops live exactly once, so callers outside the seam can
/// never get the retry protocol wrong.
///
/// Frame-level I/O keeps its own loops in frame.cpp (read_some/write_some
/// fold EINTR handling into partial-I/O handling); everything else routes
/// through here.

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>

namespace ssamr::net {

/// poll(2), retrying EINTR with the same timeout slice.  Callers run
/// bounded slices under their own deadline arithmetic (net/frame.cpp
/// style), so a retried slice can only delay one deadline re-check, never
/// extend the deadline itself.
int poll_retry(struct pollfd* fds, nfds_t nfds, int timeout_ms);

/// waitpid(2) with EINTR retry.  WNOHANG calls pass through unchanged
/// (they cannot block, hence cannot be meaningfully interrupted).
pid_t waitpid_retry(pid_t pid, int* status, int options);

/// connect(2) that survives interruption.  A blocking connect interrupted
/// by a signal keeps establishing the connection asynchronously — calling
/// connect() again yields EALREADY, not a retry — so the correct resume is
/// to wait for writability and read SO_ERROR.  Returns 0 on success, -1
/// with errno set on failure.
int connect_retry(int fd, const struct sockaddr* addr, socklen_t addrlen);

}  // namespace ssamr::net

#pragma once
/// \file wire.hpp
/// Minimal binary serialization for the proc backend's control frames.
///
/// The coordinator and its rank processes always share one machine (they
/// are fork()ed from the same image), so the wire format is host-endian
/// fixed-width scalars — no byte swapping, no varints.  WireWriter appends
/// scalars to a byte buffer; WireReader consumes them with hard bounds
/// checks so a truncated or corrupted payload surfaces as ssamr::Error at
/// the decode site instead of as garbage values downstream.

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/error.hpp"

namespace ssamr::net {

/// Appends host-endian scalars to a growing byte buffer.
class WireWriter {
 public:
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void i32(std::int32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { append(&v, sizeof v); }
  void f64(double v) { append(&v, sizeof v); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::uint8_t> buf_;
};

/// Consumes scalars from a byte span; throws ssamr::Error on underrun.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::int32_t i32() { return take<std::int32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int64_t i64() { return take<std::int64_t>(); }
  double f64() { return take<double>(); }

  /// Every byte consumed (decoders assert this to catch drifting schemas).
  bool done() const { return off_ == size_; }

 private:
  template <class T>
  T take() {
    SSAMR_REQUIRE(off_ + sizeof(T) <= size_, "wire: truncated message");
    T v;
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

}  // namespace ssamr::net

#include "partition/distributed_sfc.hpp"

#include <algorithm>
#include <numeric>

#include "partition/partition_audit.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

DistributedSfcPartitioner::DistributedSfcPartitioner(
    SfcConfig sfc, int shard_count, PartitionConstraints constraints)
    : sfc_(sfc), shard_count_(shard_count), constraints_(constraints) {
  SSAMR_REQUIRE(shard_count >= 1, "need at least one shard");
}

PartitionResult DistributedSfcPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  for (real_t c : capacities)
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
  const real_t cap_sum =
      std::accumulate(capacities.begin(), capacities.end(), real_t{0});
  SSAMR_REQUIRE(cap_sum > 0, "capacities must not all be zero");
  const std::size_t nproc = capacities.size();

  const std::size_t n = boxes.size();
  const std::size_t nshards = static_cast<std::size_t>(std::clamp(
      shard_count_, 1, std::max(1, static_cast<int>(n))));
  const auto shard_begin = [&](std::size_t s) { return s * n / nshards; };

  // Phase 1 — shard-local keying and sorting.  Each shard owns a contiguous
  // slice of the input list (a rank's local boxes) and orders it by the
  // global comparator (key, level, input position); no shard looks at
  // another shard's boxes.
  std::vector<key_t> keys(n);
  std::vector<std::vector<std::size_t>> runs(nshards);
  const auto curve_less = [&](std::size_t a, std::size_t b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    if (boxes[a].level() != boxes[b].level())
      return boxes[a].level() < boxes[b].level();
    return a < b;
  };
  ThreadPool::global().parallel_for(nshards, [&](std::size_t s) {
    const std::size_t lo = shard_begin(s);
    const std::size_t hi = shard_begin(s + 1);
    std::vector<std::size_t>& run = runs[s];
    run.reserve(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      keys[i] = sfc_box_key(boxes[i], sfc_);
      run.push_back(i);
    }
    std::sort(run.begin(), run.end(), curve_less);
  });

  // Phase 2 — exscan of the total work: an ordered carry chain over the
  // shards, each adding its boxes in input order to the running sum.  This
  // is the serial left fold of total_work split at shard boundaries, so the
  // floating-point result is bit-identical to the global-view schemes.
  Work total{0};
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::size_t hi = shard_begin(s + 1);
    for (std::size_t i = shard_begin(s); i < hi; ++i)
      total += box_cost(boxes[i], work);
  }

  // Capacity-proportional quantile targets L_p = C_p / ΣC · L, cut in rank
  // order — same expressions, same order as SfcHeterogeneousPartitioner.
  std::vector<real_t> targets(nproc);
  std::vector<rank_t> proc_order(nproc);
  std::iota(proc_order.begin(), proc_order.end(), rank_t{0});
  for (std::size_t p = 0; p < nproc; ++p)
    targets[p] = total.value() * capacities[p] / cap_sum;

  // Phase 3 — cut walk over a K-way merge of the shard runs.  The merge
  // reproduces the global curve order one box at a time (heap of shard
  // heads, O(log K) per box); the AssignmentWalk carries the O(P) cursor a
  // real implementation would pipeline along the curve.  No globally sorted
  // box list is ever materialized.
  AssignmentWalk walk(targets, proc_order, work, constraints_);
  std::vector<std::size_t> cursor(nshards, 0);
  const auto head_after = [&](std::size_t sa, std::size_t sb) {
    return curve_less(runs[sb][cursor[sb]], runs[sa][cursor[sa]]);
  };
  std::vector<std::size_t> heap;
  heap.reserve(nshards);
  for (std::size_t s = 0; s < nshards; ++s)
    if (!runs[s].empty()) heap.push_back(s);
  std::make_heap(heap.begin(), heap.end(), head_after);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), head_after);
    const std::size_t s = heap.back();
    heap.pop_back();
    walk.feed(boxes[runs[s][cursor[s]]]);
    if (++cursor[s] < runs[s].size()) {
      heap.push_back(s);
      std::push_heap(heap.begin(), heap.end(), head_after);
    }
  }
  PartitionResult result = walk.take();

  // Debug/audit builds cross-check against the global invariants; this is
  // the only place the scheme touches a global box list.
  SSAMR_AUDIT([&] {
    std::vector<real_t> caps(nproc);
    for (std::size_t p = 0; p < nproc; ++p) caps[p] = capacities[p] / cap_sum;
    return audit::validate_partition(boxes, result, caps, work, constraints_);
  }());
  return result;
}

}  // namespace ssamr

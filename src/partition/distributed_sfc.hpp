#pragma once
/// \file distributed_sfc.hpp
/// Distributed capacity-weighted SFC partitioning ("DistributedSfcPrefix").
///
/// The global-view SfcHeterogeneousPartitioner sorts the entire composite
/// box list on one rank and walks it greedily — O(N log N) memory and time
/// on a single process, which caps the virtual cluster well below real
/// machine sizes.  This scheme executes the Schornbaum & Rüde distributed
/// load-balancing recipe instead, phrased over curve *shards* (the role a
/// rank's local box set plays in a real deployment):
///
///   1. each shard keys and sorts only its own boxes (parallel, local);
///   2. an ordered carry-chain scan accumulates the total work shard by
///      shard in input order — a prefix-sum (exscan) over curve weights,
///      reproducing total_work's left fold bit-exactly;
///   3. capacity-proportional quantile targets L_p = C_p/ΣC · L cut the
///      curve; the cut walk streams boxes out of a K-way shard merge
///      through the shared AssignmentWalk, carrying only an O(P) cursor —
///      the pipelined prefix walk of the paper, never a global sorted list.
///
/// Because the shard merge reproduces the global stable sfc_order total
/// order (key, level, input position) and the walk is the same resumable
/// state machine assign_sequence uses, the output is **bit-identical** to
/// SfcHeterogeneousPartitioner for every input, at every shard count
/// (pinned by tests/distributed_partition_test.cpp).  The global box list
/// appears only inside the SSAMR_AUDIT hook — a debug/audit construct.

#include "partition/partitioner.hpp"
#include "sfc/sfc_index.hpp"

namespace ssamr {

/// Distributed prefix-sum partitioner over capacity-proportional quantiles
/// of the curve-ordered work.
class DistributedSfcPartitioner final : public Partitioner {
 public:
  /// \param shard_count curve shards the metadata is split into (a stand-in
  ///        for "ranks" of the metadata plane; clamped to the box count).
  explicit DistributedSfcPartitioner(SfcConfig sfc = {}, int shard_count = 8,
                                     PartitionConstraints constraints = {});

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "DistributedSfcPrefix"; }

  PartitionConstraints constraints() const override { return constraints_; }

  int shard_count() const { return shard_count_; }

 private:
  SfcConfig sfc_;
  int shard_count_;
  PartitionConstraints constraints_;
};

}  // namespace ssamr

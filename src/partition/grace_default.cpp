#include "partition/grace_default.hpp"

#include <numeric>

#include "util/error.hpp"

namespace ssamr {

GraceDefaultPartitioner::GraceDefaultPartitioner(
    SfcConfig sfc, PartitionConstraints constraints)
    : sfc_(sfc), constraints_(constraints) {}

PartitionResult GraceDefaultPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  const std::size_t nproc = capacities.size();

  // Composite SFC order of the hierarchy.
  const auto perm = sfc_order(boxes.boxes(), sfc_);
  std::vector<Box> ordered;
  ordered.reserve(boxes.size());
  for (std::size_t i : perm) ordered.push_back(boxes[i]);

  // Equal work per processor — capacities deliberately ignored (the
  // baseline assumes homogeneity).
  const real_t total = total_work(boxes, work);
  std::vector<real_t> targets(nproc, total / static_cast<real_t>(nproc));
  std::vector<rank_t> proc_order(nproc);
  std::iota(proc_order.begin(), proc_order.end(), rank_t{0});

  return assign_sequence(ordered, targets, proc_order, work, constraints_);
}

}  // namespace ssamr

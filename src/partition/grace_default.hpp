#pragma once
/// \file grace_default.hpp
/// GrACE's default composite partitioner ("ACEComposite") — the paper's
/// baseline.
///
/// "This latter scheme assumes homogeneous processors and performs an
///  equal distribution of the workload on the processors."
///
/// The composite grid hierarchy is linearized along a space-filling curve
/// (preserving inter- and intra-level locality) and the ordered sequence is
/// cut into P contiguous chunks of equal work L/P, breaking boxes (longest
/// axis, min-box-size) where a chunk boundary falls inside one.

#include "partition/partitioner.hpp"
#include "sfc/sfc_index.hpp"

namespace ssamr {

/// The homogeneous equal-work baseline.
class GraceDefaultPartitioner final : public Partitioner {
 public:
  explicit GraceDefaultPartitioner(SfcConfig sfc = {},
                                   PartitionConstraints constraints = {});

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "ACEComposite"; }

  PartitionConstraints constraints() const override { return constraints_; }

 private:
  SfcConfig sfc_;
  PartitionConstraints constraints_;
};

}  // namespace ssamr

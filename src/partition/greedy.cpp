#include "partition/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace ssamr {

PartitionResult GreedyPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  for (real_t c : capacities)
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
  const real_t cap_sum =
      std::accumulate(capacities.begin(), capacities.end(), real_t{0});
  SSAMR_REQUIRE(cap_sum > 0, "capacities must not all be zero");
  const std::size_t nproc = capacities.size();

  // Price each box once (particle-coupled models make box_work a scan),
  // then take the largest boxes first.
  std::vector<real_t> works = per_box_work(boxes, work);
  std::vector<std::size_t> order(boxes.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return works[a] > works[b];
                   });

  PartitionResult result;
  result.assigned_work.assign(nproc, 0);
  result.target_work.assign(nproc, 0);
  const real_t total = total_work(boxes, work);
  for (std::size_t k = 0; k < nproc; ++k)
    result.target_work[k] = total * capacities[k] / cap_sum;

  for (std::size_t i : order) {
    // Rank with the smallest relative load (ranks with zero capacity are
    // used only if every capacity is zero, which the REQUIRE rules out).
    // Exact ties go to the larger capacity — a value-keyed tie-break, so
    // permuting a distinct-valued capacity vector permutes the assignment
    // identically (then to the lower index, for equal capacities).
    std::size_t best = 0;
    real_t best_rel = std::numeric_limits<real_t>::infinity();
    for (std::size_t k = 0; k < nproc; ++k) {
      if (capacities[k] <= 0) continue;
      const real_t rel = (result.assigned_work[k] + works[i]) / capacities[k];
      if (rel < best_rel ||
          (rel == best_rel && capacities[k] > capacities[best])) {
        best_rel = rel;
        best = k;
      }
    }
    result.assignments.push_back({boxes[i], static_cast<rank_t>(best)});
    result.assigned_work[best] += works[i];
  }
  return result;
}

}  // namespace ssamr

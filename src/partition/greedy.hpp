#pragma once
/// \file greedy.hpp
/// Capacity-aware greedy bin packing ("largest box first").
///
/// A classic alternative to the paper's sorted-walk scheme: boxes are
/// taken largest-first and each goes to the processor with the smallest
/// *relative* load W_k / C_k (LPT scheduling generalized to heterogeneous
/// machines).  It never splits boxes — balance quality is limited by the
/// box granularity, which makes it a useful contrast to ACEHeterogeneous
/// in the locality/balance ablation.

#include "partition/partitioner.hpp"

namespace ssamr {

/// Largest-first greedy assignment to the relatively least-loaded rank.
class GreedyPartitioner final : public Partitioner {
 public:
  GreedyPartitioner() = default;

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "GreedyLPT"; }
};

}  // namespace ssamr

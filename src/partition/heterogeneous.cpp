#include "partition/heterogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace ssamr {

HeterogeneousPartitioner::HeterogeneousPartitioner(
    PartitionConstraints constraints)
    : constraints_(constraints) {}

PartitionResult HeterogeneousPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  for (real_t c : capacities)
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
  const real_t cap_sum =
      std::accumulate(capacities.begin(), capacities.end(), real_t{0});
  SSAMR_REQUIRE(cap_sum > 0, "capacities must not all be zero");
  const std::size_t nproc = capacities.size();

  // Sort boxes ascending by work.  Price each box once up front — under a
  // particle-coupled model box_work scans the particle field, which the
  // sort comparator must not re-trigger per comparison.
  std::vector<real_t> works = per_box_work(boxes, work);
  std::vector<std::size_t> perm(boxes.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     return works[a] < works[b];
                   });
  std::vector<Box> ordered;
  ordered.reserve(boxes.size());
  for (std::size_t i : perm) ordered.push_back(boxes[i]);

  // Sort processors ascending by capacity; targets L_k = C_k · L
  // (capacities renormalized defensively).
  std::vector<rank_t> proc_order(nproc);
  std::iota(proc_order.begin(), proc_order.end(), rank_t{0});
  std::stable_sort(proc_order.begin(), proc_order.end(),
                   [&](rank_t a, rank_t b) {
                     return capacities[static_cast<std::size_t>(a)] <
                            capacities[static_cast<std::size_t>(b)];
                   });
  const real_t total = total_work(boxes, work);
  std::vector<real_t> targets(nproc);
  for (std::size_t p = 0; p < nproc; ++p)
    targets[p] = total *
                 capacities[static_cast<std::size_t>(proc_order[p])] /
                 cap_sum;

  return assign_sequence(ordered, targets, proc_order, work, constraints_);
}

}  // namespace ssamr

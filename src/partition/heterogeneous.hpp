#pragma once
/// \file heterogeneous.hpp
/// The ACEHeterogeneous system-sensitive partitioner (paper §5.3) — the
/// paper's primary contribution.
///
/// Given relative capacities C_k (capacity/capacity.hpp), processor k is
/// targeted with work L_k = C_k · L.  Both the bounding-box list and the
/// capacities are sorted ascending, the smallest box going to the
/// smallest-capacity processor, "eliminating unnecessary breaking of
/// boxes"; a box exceeding its processor's remaining target is broken in
/// two along its longest dimension such that at least one piece fits,
/// subject to the minimum-box-size and aspect-ratio constraints.

#include "partition/partitioner.hpp"

namespace ssamr {

/// The system-sensitive partitioner.
class HeterogeneousPartitioner final : public Partitioner {
 public:
  explicit HeterogeneousPartitioner(PartitionConstraints constraints = {});

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "ACEHeterogeneous"; }

  PartitionConstraints constraints() const override { return constraints_; }

 private:
  PartitionConstraints constraints_;
};

}  // namespace ssamr

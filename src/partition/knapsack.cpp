#include "partition/knapsack.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace ssamr {

namespace {

/// Peak relative load over all ranks given per-rank work and capacities.
/// Ranks with zero capacity but zero work do not contribute.
real_t peak_relative_load(const std::vector<real_t>& loads,
                          const std::vector<real_t>& capacities) {
  real_t peak = 0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    if (capacities[k] > 0)
      peak = std::max(peak, loads[k] / capacities[k]);
    else if (loads[k] > 0)
      peak = std::numeric_limits<real_t>::infinity();
  }
  return peak;
}

}  // namespace

PartitionResult KnapsackPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  for (real_t c : capacities)
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
  const real_t cap_sum =
      std::accumulate(capacities.begin(), capacities.end(), real_t{0});
  SSAMR_REQUIRE(cap_sum > 0, "capacities must not all be zero");
  const std::size_t nproc = capacities.size();
  const std::size_t nbox = boxes.size();

  // Price every box once: with a particle-coupled model box_work scans the
  // particle field, so the packing loops must not re-evaluate it.
  std::vector<real_t> works(nbox);
  for (std::size_t i = 0; i < nbox; ++i) works[i] = box_work(boxes[i], work);

  // Phase 1 — LPT seed: largest box first onto the relatively
  // least-loaded bin.  Identical to GreedyPartitioner's walk, including
  // the value-keyed tie-break (larger capacity, then lower index), so the
  // refinement below can only improve on greedy's result.
  std::vector<std::size_t> order(nbox);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return works[a] > works[b];
                   });

  std::vector<rank_t> owner(nbox, 0);
  std::vector<real_t> loads(nproc, 0);
  for (std::size_t i : order) {
    std::size_t best = 0;
    real_t best_rel = std::numeric_limits<real_t>::infinity();
    for (std::size_t k = 0; k < nproc; ++k) {
      if (capacities[k] <= 0) continue;
      const real_t rel = (loads[k] + works[i]) / capacities[k];
      if (rel < best_rel ||
          (rel == best_rel && capacities[k] > capacities[best])) {
        best_rel = rel;
        best = k;
      }
    }
    owner[i] = static_cast<rank_t>(best);
    loads[best] += works[i];
  }

  // Phase 2 — exchange refinement: per step, consider moving one box off
  // the peak rank or swapping one of its boxes with a box of another
  // rank, and apply the candidate that most lowers the peak relative
  // load.  The swap neighbourhood matters: LPT seeds are typically
  // "jump-optimal" (no single move improves the peak), but exchanges
  // still do — that is what distinguishes this scheme from the one-shot
  // GreedyPartitioner.  Deterministic, and tie-broken by *values*
  // (capacities and works), not rank indices, so that permuting a
  // distinct-valued capacity vector permutes the outcome identically:
  // the donor is the largest-capacity peak rank, and candidates tying on
  // the resulting peak are ordered by given work, destination capacity,
  // then taken work (all descending).  Bounded so adversarial inputs
  // terminate.
  const auto trial_peak = [&](std::size_t give_box, std::size_t dst,
                              std::size_t take_box) {
    // give_box: donor -> dst; take_box (or nbox for a pure move):
    // dst -> donor.
    real_t peak = 0;
    const std::size_t donor = static_cast<std::size_t>(owner[give_box]);
    for (std::size_t j = 0; j < nproc; ++j) {
      real_t lj = loads[j];
      if (j == donor) lj -= works[give_box];
      if (j == dst) lj += works[give_box];
      if (take_box != nbox) {
        if (j == dst) lj -= works[take_box];
        if (j == donor) lj += works[take_box];
      }
      if (capacities[j] > 0)
        peak = std::max(peak, lj / capacities[j]);
      else if (lj > 0)
        peak = std::numeric_limits<real_t>::infinity();
    }
    return peak;
  };
  const std::size_t max_moves = 2 * nbox + 8;
  for (std::size_t move = 0; move < max_moves; ++move) {
    const real_t cur_peak = peak_relative_load(loads, capacities);
    if (!(cur_peak > 0)) break;
    std::size_t donor = nproc;
    for (std::size_t k = 0; k < nproc; ++k) {
      const bool at_peak = capacities[k] > 0
                               ? loads[k] / capacities[k] == cur_peak
                               : loads[k] > 0;
      if (at_peak && (donor == nproc || capacities[k] > capacities[donor]))
        donor = k;
    }
    if (donor == nproc) break;

    std::size_t best_give = nbox, best_dst = nproc, best_take = nbox;
    real_t best_peak = cur_peak;
    // Value key of the current best candidate (give work, destination
    // capacity, take work; -1 marks a pure move's absent take).
    real_t best_wi = -1, best_cdst = -1, best_wj = -1;
    const auto better = [&](real_t peak, real_t wi, real_t cdst, real_t wj) {
      if (peak != best_peak) return peak < best_peak;
      if (best_give == nbox) return false;  // equal to the no-op peak
      if (wi != best_wi) return wi > best_wi;
      if (cdst != best_cdst) return cdst > best_cdst;
      return wj > best_wj;
    };
    const auto take_candidate = [&](std::size_t i, std::size_t k,
                                    std::size_t j, real_t peak) {
      best_peak = peak;
      best_give = i;
      best_dst = k;
      best_take = j;
      best_wi = works[i];
      best_cdst = capacities[k];
      best_wj = j != nbox ? works[j] : real_t{-1};
    };
    for (std::size_t i = 0; i < nbox; ++i) {
      if (owner[i] != static_cast<rank_t>(donor)) continue;
      for (std::size_t k = 0; k < nproc; ++k) {
        if (k == donor || capacities[k] <= 0) continue;
        const real_t moved = trial_peak(i, k, nbox);
        if (moved < cur_peak &&
            better(moved, works[i], capacities[k], real_t{-1}))
          take_candidate(i, k, nbox, moved);
        for (std::size_t j = 0; j < nbox; ++j) {
          if (owner[j] != static_cast<rank_t>(k)) continue;
          const real_t swapped = trial_peak(i, k, j);
          if (swapped < cur_peak &&
              better(swapped, works[i], capacities[k], works[j]))
            take_candidate(i, k, j, swapped);
        }
      }
    }
    if (best_give == nbox) break;  // no strictly improving exchange
    loads[donor] -= works[best_give];
    loads[best_dst] += works[best_give];
    owner[best_give] = static_cast<rank_t>(best_dst);
    if (best_take != nbox) {
      loads[best_dst] -= works[best_take];
      loads[donor] += works[best_take];
      owner[best_take] = static_cast<rank_t>(donor);
    }
  }

  PartitionResult result;
  result.assigned_work.assign(nproc, 0);
  result.target_work.assign(nproc, 0);
  const real_t total = total_work(boxes, work);
  for (std::size_t k = 0; k < nproc; ++k)
    result.target_work[k] = total * capacities[k] / cap_sum;
  // Emit in input order and recompute W_k from final ownership, so the
  // bookkeeping is a plain left-to-right sum over the input list rather
  // than the move history.
  result.assignments.reserve(nbox);
  for (std::size_t i = 0; i < nbox; ++i) {
    result.assignments.push_back({boxes[i], owner[i]});
    result.assigned_work[static_cast<std::size_t>(owner[i])] += works[i];
  }
  return result;
}

}  // namespace ssamr

#pragma once
/// \file knapsack.hpp
/// Knapsack bin-packing partitioner (AMReX "knapsack" strategy).
///
/// Boxes are packed largest-first onto capacity-weighted bins, then a
/// deterministic local-search pass repeatedly moves one box off the
/// relatively most-loaded rank whenever that strictly lowers the peak
/// relative load W_k / C_k.  The refinement pass is what distinguishes it
/// from the one-shot GreedyPartitioner seed: on box distributions where
/// LPT's myopic placement strands a large box on a slow rank, the exchange
/// phase recovers the balance.  Like the AMReX original it never splits
/// boxes, so balance quality is bounded by box granularity — the
/// partitioner-matrix experiment quantifies exactly when that bound bites.

#include "partition/partitioner.hpp"

namespace ssamr {

/// Descending-work bin packing with bounded exchange refinement.
class KnapsackPartitioner final : public Partitioner {
 public:
  KnapsackPartitioner() = default;

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "Knapsack"; }
};

}  // namespace ssamr

#include "partition/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "geom/box_algebra.hpp"
#include "util/error.hpp"

namespace ssamr {

std::vector<real_t> load_imbalance_pct(const PartitionResult& r) {
  SSAMR_REQUIRE(r.assigned_work.size() == r.target_work.size(),
                "malformed partition result");
  std::vector<real_t> out(r.assigned_work.size(), 0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const real_t W = r.assigned_work[k];
    const real_t L = r.target_work[k];
    if (L <= 0) {
      out[k] = W <= 0 ? 0 : 1.0e4;
      continue;
    }
    out[k] = std::abs(W - L) / L * 100.0;
  }
  return out;
}

real_t max_load_imbalance_pct(const PartitionResult& r) {
  const auto v = load_imbalance_pct(r);
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}

real_t effective_imbalance_pct(const PartitionResult& r) {
  real_t worst = 0;
  for (std::size_t k = 0; k < r.assigned_work.size(); ++k) {
    const real_t L = r.target_work[k];
    if (L <= 0) continue;
    worst = std::max(worst, r.assigned_work[k] / L);
  }
  return worst > 1 ? (worst - 1) * 100.0 : 0.0;
}

namespace {
/// Cells of `a`'s ghost shell covered by `b` (same level only).
std::int64_t shell_overlap_cells(const Box& a, const Box& b, coord_t ghost) {
  if (a.level() != b.level()) return 0;
  const Box shell_bound = a.grown(ghost);
  const Box overlap = shell_bound.intersection(b);
  if (overlap.empty()) return 0;
  // Subtract the part overlapping a's interior.
  const Box inner = a.intersection(b);
  return overlap.cells() - inner.cells();
}
}  // namespace

std::int64_t partition_comm_cells(const PartitionResult& r, coord_t ghost) {
  SSAMR_REQUIRE(ghost >= 0, "ghost width must be non-negative");
  std::int64_t total = 0;
  const auto& as = r.assignments;
  for (std::size_t i = 0; i < as.size(); ++i)
    for (std::size_t j = 0; j < as.size(); ++j) {
      if (i == j || as[i].owner == as[j].owner) continue;
      total += shell_overlap_cells(as[i].box, as[j].box, ghost);
    }
  return total;
}

std::int64_t rank_comm_bytes(const PartitionResult& r, rank_t rank,
                             coord_t ghost, int ncomp) {
  SSAMR_REQUIRE(ncomp >= 1, "ncomp must be >= 1");
  std::int64_t cells = 0;
  const auto& as = r.assignments;
  for (std::size_t i = 0; i < as.size(); ++i)
    for (std::size_t j = 0; j < as.size(); ++j) {
      if (i == j || as[i].owner == as[j].owner) continue;
      if (as[i].owner != rank && as[j].owner != rank) continue;
      cells += shell_overlap_cells(as[i].box, as[j].box, ghost);
    }
  return cells * ncomp * static_cast<std::int64_t>(sizeof(real_t));
}

std::vector<RankFlow> pairwise_comm_bytes(const PartitionResult& r,
                                          coord_t ghost, int ncomp) {
  SSAMR_REQUIRE(ghost >= 0, "ghost width must be non-negative");
  SSAMR_REQUIRE(ncomp >= 1, "ncomp must be >= 1");
  const auto n = r.assigned_work.size();
  std::vector<std::int64_t> cells(n * n, 0);
  const auto& as = r.assignments;
  for (std::size_t i = 0; i < as.size(); ++i)
    for (std::size_t j = 0; j < as.size(); ++j) {
      if (i == j || as[i].owner == as[j].owner) continue;
      const auto src = static_cast<std::size_t>(as[j].owner);
      const auto dst = static_cast<std::size_t>(as[i].owner);
      SSAMR_REQUIRE(src < n && dst < n, "owner out of range");
      // as[i]'s ghost shell filled from as[j]: data flows owner(j) -> owner(i).
      cells[src * n + dst] += shell_overlap_cells(as[i].box, as[j].box, ghost);
    }
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(ncomp) *
      static_cast<std::int64_t>(sizeof(real_t));
  std::vector<RankFlow> flows;
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t d = 0; d < n; ++d)
      if (cells[s * n + d] > 0)
        flows.push_back({static_cast<rank_t>(s), static_cast<rank_t>(d),
                         cells[s * n + d] * cell_bytes});
  return flows;
}

}  // namespace ssamr

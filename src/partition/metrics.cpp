#include "partition/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

#include "hdda/local_view.hpp"
#include "sfc/key_index.hpp"
#include "util/error.hpp"

namespace ssamr {

std::vector<real_t> load_imbalance_pct(const PartitionResult& r) {
  SSAMR_REQUIRE(r.assigned_work.size() == r.target_work.size(),
                "malformed partition result");
  std::vector<real_t> out(r.assigned_work.size(), 0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const real_t W = r.assigned_work[k];
    const real_t L = r.target_work[k];
    if (L <= 0) {
      out[k] = W <= 0 ? 0 : 1.0e4;
      continue;
    }
    out[k] = std::abs(W - L) / L * 100.0;
  }
  return out;
}

real_t max_load_imbalance_pct(const PartitionResult& r) {
  const auto v = load_imbalance_pct(r);
  return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
}

real_t effective_imbalance_pct(const PartitionResult& r) {
  real_t worst = 0;
  for (std::size_t k = 0; k < r.assigned_work.size(); ++k) {
    const real_t L = r.target_work[k];
    if (L <= 0) continue;
    worst = std::max(worst, r.assigned_work[k] / L);
  }
  return worst > 1 ? (worst - 1) * 100.0 : 0.0;
}

namespace {
/// Cells of `a`'s ghost shell covered by `b` (same level only).
std::int64_t shell_overlap_cells(const Box& a, const Box& b, coord_t ghost) {
  if (a.level() != b.level()) return 0;
  const Box shell_bound = a.grown(ghost);
  const Box overlap = shell_bound.intersection(b);
  if (overlap.empty()) return 0;
  // Subtract the part overlapping a's interior.
  const Box inner = a.intersection(b);
  return overlap.cells() - inner.cells();
}

/// (src, dst) -> cells, sorted ascending by pair.
using FlowCells = std::vector<std::pair<std::pair<rank_t, rank_t>, std::int64_t>>;

/// Directed cross-owner ghost-shell cells keyed by (src, dst), discovered
/// through rank-local box views (each view links its owned boxes to the
/// remote same-level boxes within `ghost` cells) instead of the historical
/// all-pairs scan.  Every cross-owner pair with a non-empty shell overlap
/// appears in exactly one view's link list, and the per-pair counts are
/// integers, so the accumulated totals are identical to the O(N²) loop.
FlowCells ghost_flow_cells(const PartitionResult& r, coord_t ghost) {
  const auto& as = r.assignments;
  std::vector<Box> boxes;
  std::vector<rank_t> owners;
  boxes.reserve(as.size());
  owners.reserve(as.size());
  rank_t max_owner = 0;
  for (const BoxAssignment& a : as) {
    boxes.push_back(a.box);
    owners.push_back(a.owner);
    max_owner = std::max(max_owner, a.owner);
  }
  // Per-link contributions, then a sort-and-merge: far cheaper than an
  // ordered-map upsert per link, and the merged output is sorted by
  // (src, dst) exactly as the map iteration was.
  FlowCells cells;
  const SfcKeyIndex index(boxes);
  for (const LocalBoxView& view :
       build_local_views(boxes, owners, max_owner + 1, ghost, index,
                         HaloPolicy::kLinksOnly))
    for (const NeighborLink& l : view.links) {
      // Box l.owned's ghost shell filled from box l.neighbor: data flows
      // owner(neighbor) -> view.rank.
      const std::int64_t c =
          shell_overlap_cells(boxes[l.owned], boxes[l.neighbor], ghost);
      if (c > 0) cells.push_back({{owners[l.neighbor], view.rank}, c});
    }
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < cells.size();) {
    std::size_t j = i + 1;
    while (j < cells.size() && cells[j].first == cells[i].first) {
      cells[i].second += cells[j].second;
      ++j;
    }
    cells[out++] = cells[i];
    i = j;
  }
  cells.resize(out);
  return cells;
}

}  // namespace

std::int64_t partition_comm_cells(const PartitionResult& r, coord_t ghost) {
  SSAMR_REQUIRE(ghost >= 0, "ghost width must be non-negative");
  std::int64_t total = 0;
  for (const auto& [pair, cells] : ghost_flow_cells(r, ghost)) total += cells;
  return total;
}

std::int64_t rank_comm_bytes(const PartitionResult& r, rank_t rank,
                             coord_t ghost, int ncomp) {
  SSAMR_REQUIRE(ncomp >= 1, "ncomp must be >= 1");
  std::int64_t cells = 0;
  for (const auto& [pair, c] : ghost_flow_cells(r, ghost))
    if (pair.first == rank || pair.second == rank) cells += c;
  return cells * ncomp * static_cast<std::int64_t>(sizeof(real_t));
}

std::vector<RankFlow> pairwise_comm_bytes(const PartitionResult& r,
                                          coord_t ghost, int ncomp) {
  SSAMR_REQUIRE(ghost >= 0, "ghost width must be non-negative");
  SSAMR_REQUIRE(ncomp >= 1, "ncomp must be >= 1");
  const auto n = r.assigned_work.size();
  const auto& as = r.assignments;
  // The historical all-pairs scan range-checked every owner as soon as two
  // assignments disagreed; preserve that contract.
  bool mixed = false;
  for (const BoxAssignment& a : as)
    if (a.owner != as.front().owner) mixed = true;
  if (mixed)
    for (const BoxAssignment& a : as)
      SSAMR_REQUIRE(a.owner >= 0 && static_cast<std::size_t>(a.owner) < n,
                    "owner out of range");
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(ncomp) *
      static_cast<std::int64_t>(sizeof(real_t));
  std::vector<RankFlow> flows;
  for (const auto& [pair, cells] : ghost_flow_cells(r, ghost))
    if (cells > 0) flows.push_back({pair.first, pair.second,
                                    cells * cell_bytes});
  return flows;
}

std::vector<RankFlow> ownership_transfer_flows(const PartitionResult& previous,
                                               const PartitionResult& next,
                                               std::int64_t cell_bytes) {
  SSAMR_REQUIRE(cell_bytes > 0, "cell_bytes must be positive");
  std::map<std::pair<rank_t, rank_t>, std::int64_t> bytes;
  if (previous.assignments.empty()) {
    // Initial scatter from rank 0.
    for (const BoxAssignment& a : next.assignments)
      if (a.owner != 0)
        bytes[{rank_t{0}, a.owner}] += a.box.cells() * cell_bytes;
  } else {
    std::vector<Box> prev_boxes;
    prev_boxes.reserve(previous.assignments.size());
    for (const BoxAssignment& ob : previous.assignments)
      prev_boxes.push_back(ob.box);
    const SfcKeyIndex index(prev_boxes);
    std::vector<std::uint32_t> cand;
    for (const BoxAssignment& nb : next.assignments) {
      index.query(nb.box, cand);
      for (std::uint32_t j : cand) {
        const BoxAssignment& ob = previous.assignments[j];
        if (nb.owner == ob.owner) continue;
        const Box overlap = nb.box.intersection(ob.box);
        // Cells in the overlap move from the old owner to the new one.
        bytes[{ob.owner, nb.owner}] += overlap.cells() * cell_bytes;
      }
    }
  }
  std::vector<RankFlow> flows;
  for (const auto& [pair, b] : bytes)
    if (b > 0) flows.push_back({pair.first, pair.second, b});
  return flows;
}

}  // namespace ssamr

#pragma once
/// \file metrics.hpp
/// Quality metrics for partitions: the paper's load-imbalance percentage
/// (Eq. 2) and communication-volume estimates.

#include <vector>

#include "partition/partitioner.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Per-processor load imbalance (paper Eq. 2):
///     I_k = |W_k − L_k| / L_k · 100 %
/// Processors with zero target report 0 when also assigned zero, else a
/// large sentinel (10⁴ %).
std::vector<real_t> load_imbalance_pct(const PartitionResult& r);

/// The largest I_k over all processors.
real_t max_load_imbalance_pct(const PartitionResult& r);

/// Work-weighted aggregate imbalance: max_k(W_k / L_k) − 1, as a
/// percentage.  This is the slowdown the partition costs under perfectly
/// capacity-proportional execution.
real_t effective_imbalance_pct(const PartitionResult& r);

/// Estimated ghost-communication volume in cells: for every assigned box,
/// the cells of its `ghost`-wide shell covered by same-level boxes owned by
/// *other* ranks (counted once per (src,dst) direction).
std::int64_t partition_comm_cells(const PartitionResult& r, coord_t ghost);

/// Bytes a given rank exchanges per coarse step under the assignment
/// (remote shell cells × ncomp × sizeof(real), both directions).
std::int64_t rank_comm_bytes(const PartitionResult& r, rank_t rank,
                             coord_t ghost, int ncomp);

/// One directed rank-to-rank traffic aggregate.
struct RankFlow {
  rank_t src = 0;
  rank_t dst = 0;
  std::int64_t bytes = 0;

  bool operator==(const RankFlow&) const = default;
};

/// Directed point-to-point ghost traffic of one coarse step: for every
/// ordered rank pair (src → dst), the bytes dst's ghost shells receive
/// from boxes owned by src.  Sorted by (src, dst), zero flows omitted.
/// Summing the flows incident to a rank (either side) reproduces
/// rank_comm_bytes for that rank.
///
/// The comm metrics discover adjacencies through rank-local box views
/// (hdda/local_view.hpp) rather than the historical all-pairs scan; the
/// per-pair cell counts are integers, so the totals are identical.
std::vector<RankFlow> pairwise_comm_bytes(const PartitionResult& r,
                                          coord_t ghost, int ncomp);

/// Directed data movement when ownership changes from `previous` to `next`:
/// for every same-level overlap whose owner differs between the two
/// partitions, `overlap.cells() × cell_bytes` flows old owner → new owner.
/// An empty `previous` means initial placement: everything scatters from
/// rank 0 (flows 0 → owner for every box not owned by rank 0).  Sorted by
/// (src, dst), zero flows omitted.  Overlaps are discovered with an SFC key
/// index over `previous` (O((|prev|+|next|) log |prev|)), not the
/// historical |prev|·|next| double loop; byte counts are identical.
std::vector<RankFlow> ownership_transfer_flows(const PartitionResult& previous,
                                               const PartitionResult& next,
                                               std::int64_t cell_bytes);

}  // namespace ssamr

#include "partition/multiaxis.hpp"

#include "partition/heterogeneous.hpp"

namespace ssamr {

MultiAxisPartitioner::MultiAxisPartitioner(PartitionConstraints constraints)
    : constraints_(constraints) {
  constraints_.longest_axis_only = false;
}

PartitionResult MultiAxisPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  // Delegate to the heterogeneous walk with the relaxed splitting rule.
  HeterogeneousPartitioner inner(constraints_);
  return inner.partition(boxes, capacities, work);
}

}  // namespace ssamr

#pragma once
/// \file multiaxis.hpp
/// Multi-axis splitting extension (paper §8, future work).
///
/// "A primary cause of load-imbalance in the ACEHeterogeneous scheme can
///  be attributed to the fact that the bounding box is cut only along the
///  longest axis.  If the box is instead cut along more axes, it could
///  lead to finer partitioning granularity and hence better work
///  assignments, which would in turn reduce the load-imbalance."
///
/// This partitioner is ACEHeterogeneous with longest_axis_only relaxed:
/// splits pick whichever axis yields the work fit closest to the target.
/// The ablation bench (bench/ablation_multiaxis) quantifies the imbalance
/// reduction the paper predicts.

#include "partition/partitioner.hpp"

namespace ssamr {

/// Capacity-proportional partitioner with best-fit-axis splitting.
class MultiAxisPartitioner final : public Partitioner {
 public:
  explicit MultiAxisPartitioner(PartitionConstraints constraints = {});

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "ACEHeterogeneousMultiAxis"; }

  PartitionConstraints constraints() const override { return constraints_; }

 private:
  PartitionConstraints constraints_;
};

}  // namespace ssamr

#include "partition/partition_audit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "geom/box.hpp"
#include "geom/box_algebra.hpp"
#include "geom/point.hpp"

namespace ssamr::audit {

namespace {

std::string str(const Box& b) {
  std::ostringstream os;
  os << b;
  return os.str();
}

std::string rank_loc(std::size_t k) { return "rank " + std::to_string(k); }

bool finite(real_t v) { return std::isfinite(v); }

}  // namespace

AuditReport validate_partition(const BoxList& input,
                               const PartitionResult& result,
                               const std::vector<real_t>& capacities,
                               const WorkModel& work,
                               const PartitionConstraints& constraints,
                               const AuditConfig& cfg) {
  AuditReport r("partition");
  const std::size_t nranks = capacities.size();
  if (nranks == 0) {
    r.add(Severity::Error, "partition.shape", "",
          "capacity vector is empty");
    return r;
  }
  if (result.assigned_work.size() != nranks ||
      result.target_work.size() != nranks) {
    r.add(Severity::Error, "partition.shape", "",
          "assigned_work/target_work sized " +
              std::to_string(result.assigned_work.size()) + "/" +
              std::to_string(result.target_work.size()) + " for " +
              std::to_string(nranks) + " capacities");
    return r;
  }

  // Owners in range, no degenerate pieces.
  for (const BoxAssignment& a : result.assignments) {
    if (a.owner < 0 || a.owner >= static_cast<rank_t>(nranks))
      r.add(Severity::Error, "partition.ranks", str(a.box),
            "owner " + std::to_string(a.owner) + " outside 0.." +
                std::to_string(nranks - 1));
    if (a.box.empty())
      r.add(Severity::Error, "partition.empty_box", str(a.box),
            "assignment contains an empty box");
  }

  // No two same-level pieces may overlap.
  for (std::size_t i = 0; i < result.assignments.size(); ++i)
    for (std::size_t j = i + 1; j < result.assignments.size(); ++j) {
      const Box& a = result.assignments[i].box;
      const Box& b = result.assignments[j].box;
      if (a.level() == b.level() && a.intersects(b))
        r.add(Severity::Error, "partition.overlap", str(a),
              "overlaps assigned box " + str(b));
    }

  // Each piece must lie inside exactly one input box; split pieces must
  // respect the minimum box size and the aspect-ratio bound reachable by
  // legal splitting (longest input extent over the smallest admissible
  // extent).
  for (const BoxAssignment& a : result.assignments) {
    if (a.box.empty()) continue;
    const Box* parent = nullptr;
    for (const Box& in : input)
      if (in.level() == a.box.level() && in.contains(a.box)) {
        parent = &in;
        break;
      }
    if (parent == nullptr) {
      r.add(Severity::Error, "partition.containment", str(a.box),
            "piece is not contained in any input box");
      continue;
    }
    if (a.box == *parent) continue;  // whole-box assignment, always legal
    const IntVec ext = a.box.extent();
    const IntVec in_ext = parent->extent();
    for (int d = 0; d < kDim; ++d)
      if (ext[d] < std::min(constraints.min_box_size, in_ext[d]))
        r.add(Severity::Error, "partition.min_box", str(a.box),
              "extent " + std::to_string(ext[d]) + " along axis " +
                  std::to_string(d) + " violates min_box_size " +
                  std::to_string(constraints.min_box_size) + " (input " +
                  str(*parent) + ")");
    const coord_t in_longest = std::max({in_ext.x, in_ext.y, in_ext.z});
    const coord_t in_shortest = std::min({in_ext.x, in_ext.y, in_ext.z});
    const coord_t admissible = std::min(constraints.min_box_size, in_shortest);
    if (admissible > 0) {
      const real_t bound = static_cast<real_t>(in_longest) /
                           static_cast<real_t>(admissible);
      if (a.box.aspect_ratio() > bound * cfg.aspect_slack)
        r.add(Severity::Error, "partition.aspect_ratio", str(a.box),
              "aspect ratio " + std::to_string(a.box.aspect_ratio()) +
                  " exceeds the bound " + std::to_string(bound) +
                  " of legal splits of " + str(*parent));
    }
  }

  // Full coverage: every input cell is assigned (given the overlap check,
  // exactly once).
  for (const Box& in : input) {
    std::vector<Box> pieces;
    for (const BoxAssignment& a : result.assignments)
      if (a.box.level() == in.level() && a.box.intersects(in))
        pieces.push_back(a.box.intersection(in));
    if (!box_difference(in, pieces).empty())
      r.add(Severity::Error, "partition.coverage", str(in),
            "input box is not fully covered by assigned pieces");
  }

  // Work bookkeeping: W_k must equal the work of rank k's pieces, and the
  // total must equal the input work.
  const real_t total = total_work(input, work);
  std::vector<real_t> recomputed(nranks, 0);
  for (const BoxAssignment& a : result.assignments)
    if (a.owner >= 0 && a.owner < static_cast<rank_t>(nranks))
      recomputed[static_cast<std::size_t>(a.owner)] += box_work(a.box, work);
  real_t assigned_sum = 0;
  const real_t work_tol = std::max(total, real_t{1}) * cfg.work_rel_tolerance;
  for (std::size_t k = 0; k < nranks; ++k) {
    if (!finite(result.assigned_work[k]) || result.assigned_work[k] < 0)
      r.add(Severity::Error, "partition.work_bookkeeping", rank_loc(k),
            "assigned work is negative or non-finite");
    else if (std::abs(result.assigned_work[k] - recomputed[k]) > work_tol)
      r.add(Severity::Error, "partition.work_bookkeeping", rank_loc(k),
            "assigned_work " + std::to_string(result.assigned_work[k]) +
                " does not match the work of the rank's pieces " +
                std::to_string(recomputed[k]));
    assigned_sum += result.assigned_work[k];
  }
  if (std::abs(assigned_sum - total) > work_tol)
    r.add(Severity::Error, "partition.work_sum", "",
          "assigned work sums to " + std::to_string(assigned_sum) +
              ", input work is " + std::to_string(total));

  // Load tracking (soft): W_k should stay near L_k, and L_k near C_k · L
  // (Eq. 1).  Deviations are expected — box granularity, the remainder
  // absorbed by the last rank, capacity-blind baselines — so these warn.
  const real_t mean_target =
      std::max(total / static_cast<real_t>(nranks), real_t{1e-12});
  for (std::size_t k = 0; k < nranks; ++k) {
    const real_t target = result.target_work[k];
    if (!finite(target) || target < 0) {
      r.add(Severity::Error, "partition.work_bookkeeping", rank_loc(k),
            "target work is negative or non-finite");
      continue;
    }
    if (std::abs(result.assigned_work[k] - target) >
        cfg.load_rel_tolerance * mean_target)
      r.add(Severity::Warning, "partition.load_tracking", rank_loc(k),
            "assigned work " + std::to_string(result.assigned_work[k]) +
                " is far from the target " + std::to_string(target));
    if (std::abs(target - capacities[k] * total) >
        cfg.load_rel_tolerance * mean_target)
      r.add(Severity::Warning, "partition.target_capacity", rank_loc(k),
            "target " + std::to_string(target) +
                " is far from the capacity share C_k * L = " +
                std::to_string(capacities[k] * total));
  }
  return r;
}

}  // namespace ssamr::audit

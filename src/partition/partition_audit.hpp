#pragma once
/// \file partition_audit.hpp
/// Invariant audit of one partitioning pass against its input.

#include <vector>

#include "amr/workload.hpp"
#include "geom/box_list.hpp"
#include "partition/partitioner.hpp"
#include "util/audit.hpp"
#include "util/types.hpp"

namespace ssamr::audit {

/// Audit one partitioning pass against its input: full coverage of every
/// input box by same-level pieces, no overlap among pieces, owners in
/// range, minimum box size and aspect-ratio bound for split pieces, work
/// bookkeeping identities, and capacity-proportional load tracking
/// (W_k vs L_k and L_k vs C_k · L, warnings).
AuditReport validate_partition(const BoxList& input,
                               const PartitionResult& result,
                               const std::vector<real_t>& capacities,
                               const WorkModel& work,
                               const PartitionConstraints& constraints =
                                   PartitionConstraints{},
                               const AuditConfig& cfg = {});

}  // namespace ssamr::audit

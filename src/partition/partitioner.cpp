#include "partition/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "partition/partition_audit.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"

namespace ssamr {

BoxList PartitionResult::boxes_of(rank_t rank) const {
  BoxList out;
  for (const BoxAssignment& a : assignments)
    if (a.owner == rank) out.push_back(a.box);
  return out;
}

namespace {

/// Work of one index-space plane of `b` perpendicular to `axis`, cells
/// only — valid when the model has no particle term.
real_t plane_work(const Box& b, int axis, const WorkModel& work) {
  const IntVec e = b.extent();
  std::int64_t cells_per_plane = 1;
  for (int d = 0; d < kDim; ++d)
    if (d != axis) cells_per_plane *= e[d];
  real_t updates = 1;
  for (level_t l = 0; l < b.level(); ++l)
    updates *= static_cast<real_t>(work.ratio);
  return static_cast<real_t>(cells_per_plane) * updates *
         work.cost_per_cell.value();
}

/// Exact work of the first `planes` planes of `b` along `axis` under a
/// particle-coupled model (particle density varies across planes, so the
/// uniform plane_work estimate does not apply).
real_t prefix_work(const Box& b, int axis, coord_t planes,
                   const WorkModel& work) {
  return box_work(b.split(axis, planes).first, work);
}

/// Best split of `b` along `axis` for a first-piece work target.  Returns
/// the number of planes for the first piece, or 0 when no admissible cut
/// exists on this axis.
coord_t planes_for_target(const Box& b, int axis, real_t target_work,
                          const WorkModel& work, coord_t min_size) {
  const coord_t n = b.extent()[axis];
  if (n < 2 * min_size) return 0;

  if (work.has_particles()) {
    if (!(box_work(b, work) > 0)) return 0;
    // Prefix work is monotone non-decreasing in the plane count (cell and
    // particle costs are non-negative), so binary-search the largest
    // admissible cut whose first piece stays within the target; when even
    // the smallest admissible piece exceeds it, take that smallest piece
    // (mirrors the floating-point clamp below).
    coord_t lo = min_size, hi = n - min_size;
    if (prefix_work(b, axis, lo, work) > target_work) return lo;
    while (lo < hi) {
      const coord_t mid = lo + (hi - lo + 1) / 2;
      if (prefix_work(b, axis, mid, work) <= target_work)
        lo = mid;
      else
        hi = mid - 1;
    }
    return lo;
  }

  const real_t pw = plane_work(b, axis, work);
  if (!(pw > 0)) return 0;
  // Clamp in floating point BEFORE converting: target_work / pw can exceed
  // the range of coord_t (huge targets, tiny per-plane work), and casting
  // an out-of-range double to an integer is undefined behaviour.
  const real_t clamped =
      std::clamp(std::floor(target_work / pw), static_cast<real_t>(min_size),
                 static_cast<real_t>(n - min_size));
  return static_cast<coord_t>(clamped);
}

}  // namespace

std::optional<std::pair<Box, Box>> split_for_work(
    const Box& b, real_t target_work, const WorkModel& work,
    const PartitionConstraints& constraints) {
  SSAMR_REQUIRE(!b.empty(), "cannot split an empty box");
  SSAMR_REQUIRE(target_work >= 0, "target work must be non-negative");
  const coord_t min_size = std::max<coord_t>(constraints.min_box_size, 1);

  if (constraints.longest_axis_only) {
    const int axis = b.longest_axis();
    const coord_t planes =
        planes_for_target(b, axis, target_work, work, min_size);
    if (planes == 0) return std::nullopt;
    return b.split(axis, planes);
  }

  // Multi-axis mode: choose the axis whose admissible cut lands closest to
  // the target without exceeding it (ties: prefer the longest axis, which
  // keeps aspect ratios healthy).
  int best_axis = -1;
  coord_t best_planes = 0;
  real_t best_err = std::numeric_limits<real_t>::infinity();
  for (int axis = 0; axis < kDim; ++axis) {
    const coord_t planes =
        planes_for_target(b, axis, target_work, work, min_size);
    if (planes == 0) continue;
    const real_t piece = work.has_particles()
                             ? prefix_work(b, axis, planes, work)
                             : plane_work(b, axis, work) *
                                   static_cast<real_t>(planes);
    real_t err = std::abs(piece - target_work);
    // Penalize overshoot slightly: undershoot leaves the remainder for the
    // next processor, overshoot overloads this one.
    if (piece > target_work) err *= 1.5;
    const bool better =
        err < best_err ||
        (err == best_err && best_axis >= 0 &&
         b.extent()[axis] > b.extent()[best_axis]);
    if (better) {
      best_err = err;
      best_axis = axis;
      best_planes = planes;
    }
  }
  if (best_axis < 0) return std::nullopt;
  return b.split(best_axis, best_planes);
}

AssignmentWalk::AssignmentWalk(const std::vector<real_t>& targets,
                               const std::vector<rank_t>& proc_order,
                               const WorkModel& work,
                               const PartitionConstraints& constraints)
    : work_(work),
      constraints_(constraints),
      targets_(targets),
      proc_order_(proc_order) {
  SSAMR_REQUIRE(!targets_.empty(), "need at least one processor");
  SSAMR_REQUIRE(targets_.size() == proc_order_.size(),
                "targets/proc_order size mismatch");
  const std::size_t nproc = targets_.size();
  result_.assigned_work.assign(nproc, 0);
  result_.target_work.assign(nproc, 0);
  for (std::size_t p = 0; p < nproc; ++p)
    result_.target_work[static_cast<std::size_t>(proc_order_[p])] =
        targets_[p];
}

void AssignmentWalk::feed(const Box& box) {
  // This is the historical deque walk of assign_sequence with the queue
  // replaced by one in-flight box: the original only ever re-examined the
  // *front* remainder before consuming the next input box, so a single
  // `cur` carries the identical state — and the identical FP operation
  // sequence, which the bit-identity tests rely on.
  const std::size_t nproc = targets_.size();
  Box cur = box;
  for (;;) {
    const rank_t rank = proc_order_[p_];
    auto& assigned = result_.assigned_work[static_cast<std::size_t>(rank)];
    const bool last = (p_ + 1 == nproc);

    if (!last && assigned >= targets_[p_]) {
      ++p_;
      continue;
    }

    const real_t w = box_work(cur, work_);
    const real_t remaining = targets_[p_] - assigned;

    if (last || w <= remaining) {
      result_.assignments.push_back({cur, rank});
      assigned += w;
      return;
    }

    const auto pieces = split_for_work(cur, remaining, work_, constraints_);
    if (pieces) {
      ++result_.splits;
      result_.assignments.push_back({pieces->first, rank});
      assigned += box_work(pieces->first, work_);
      cur = pieces->second;
      ++p_;
      continue;
    }

    // Unsplittable box larger than the remaining target: take it when more
    // than half of it fits (better here than overloading a later
    // processor), otherwise hand it to the next processor.
    if (remaining >= 0.5 * w) {
      result_.assignments.push_back({cur, rank});
      assigned += w;
      ++p_;
      return;
    }
    ++p_;
  }
}

PartitionResult AssignmentWalk::take() { return std::move(result_); }

PartitionResult assign_sequence(const std::vector<Box>& ordered_boxes,
                                const std::vector<real_t>& targets,
                                const std::vector<rank_t>& proc_order,
                                const WorkModel& work,
                                const PartitionConstraints& constraints) {
  AssignmentWalk walk(targets, proc_order, work, constraints);
  for (const Box& b : ordered_boxes) walk.feed(b);
  PartitionResult result = walk.take();

  // Self-audit the walk in Debug/audit builds: coverage, disjointness and
  // split legality against the capacities implied by the targets.
  SSAMR_AUDIT([&] {
    const std::size_t nproc = targets.size();
    const real_t sum =
        std::accumulate(targets.begin(), targets.end(), real_t{0});
    std::vector<real_t> caps(nproc, real_t{1} / static_cast<real_t>(nproc));
    if (sum > 0)
      for (std::size_t q = 0; q < nproc; ++q)
        caps[static_cast<std::size_t>(proc_order[q])] = targets[q] / sum;
    return audit::validate_partition(
        BoxList(ordered_boxes), result, caps, work, constraints);
  }());
  return result;
}

}  // namespace ssamr

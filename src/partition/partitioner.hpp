#pragma once
/// \file partitioner.hpp
/// The partitioner interface and shared box-splitting machinery.
///
/// A partitioner receives the hierarchy's bounding-box list (as GrACE hands
/// it over at every regrid) plus the relative capacities C_k, and returns
/// an ownership assignment, possibly breaking boxes subject to the paper's
/// constraints: minimum box size, and splits along the longest dimension to
/// maintain aspect ratio.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "amr/workload.hpp"
#include "geom/box.hpp"
#include "geom/box_list.hpp"
#include "util/types.hpp"

namespace ssamr {

/// One assigned box.
struct BoxAssignment {
  Box box;
  rank_t owner = 0;

  bool operator==(const BoxAssignment&) const = default;
};

/// Output of a partitioning pass.
struct PartitionResult {
  /// Every (possibly split) box with its owner.
  std::vector<BoxAssignment> assignments;
  /// W_k: work actually assigned to each rank.
  std::vector<real_t> assigned_work;
  /// L_k: the ideal (capacity-proportional) work targets the partitioner
  /// aimed for.
  std::vector<real_t> target_work;
  /// Number of box splits performed.
  int splits = 0;

  /// Boxes owned by one rank.
  BoxList boxes_of(rank_t rank) const;

  /// Bit-exact comparison (the determinism tests diff whole results).
  bool operator==(const PartitionResult&) const = default;
};

/// The paper's splitting constraints (§5.3).
struct PartitionConstraints {
  /// No split may create a box with extent < min_box_size along the cut
  /// axis ("Minimum box size: all boxes must be greater than or equal to
  /// this size").
  coord_t min_box_size = 4;
  /// Boxes are always cut along their longest dimension ("Aspect ratio: …
  /// a box is always broken along the longest dimension").  Partitioners
  /// honouring the paper exactly keep this true; the multi-axis extension
  /// (paper §8 future work) relaxes it.
  bool longest_axis_only = true;
};

/// Abstract partitioner.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Distribute `boxes` over capacities.size() processors.
  /// \param boxes the composite bounding-box list from the hierarchy
  /// \param capacities relative capacities C_k (must sum to ≈ 1); the
  ///        homogeneous baseline ignores the values but uses the count
  /// \param work the work model translating boxes into load
  virtual PartitionResult partition(const BoxList& boxes,
                                    const std::vector<real_t>& capacities,
                                    const WorkModel& work) const = 0;

  /// Identifier for reporting (e.g. "ACEComposite", "ACEHeterogeneous").
  virtual std::string name() const = 0;

  /// The splitting constraints this partitioner honours.  Audits
  /// (partition/partition_audit.hpp) check partition results against these; the
  /// default matches the paper's constraints.
  virtual PartitionConstraints constraints() const {
    return PartitionConstraints{};
  }
};

/// Split `b` so that the first piece's work is as close as possible to
/// `target_work` without (if feasible) exceeding it, cutting along the
/// longest axis (or, when `constraints.longest_axis_only` is false, along
/// the axis giving the best fit).  Returns nullopt when the box cannot be
/// split without violating min_box_size, or when target_work is too small
/// for even the smallest admissible piece (callers then assign the whole
/// box).
std::optional<std::pair<Box, Box>> split_for_work(
    const Box& b, real_t target_work, const WorkModel& work,
    const PartitionConstraints& constraints);

/// The greedy assignment walk of paper §5.3 as a resumable state machine:
/// processors are visited in `proc_order`, the p-th visited processor aims
/// for `targets[p]` work; curve-ordered boxes are fed one at a time,
/// splitting (split_for_work) when a box exceeds the processor's remaining
/// target and assigning whole otherwise.  The last processor absorbs the
/// remainder.
///
/// Extracting the walk from assign_sequence lets producers that never
/// materialize the global ordered box list — the distributed prefix-sum
/// partitioner streams boxes out of a shard merge — execute the *identical*
/// floating-point operation sequence as the global-view schemes.  Between
/// feed() calls the walk's state is one cursor plus the per-rank
/// accumulators (O(P)), which is exactly the pipelined carry a real
/// distributed implementation would pass along the curve; bit-identity to
/// assign_sequence is pinned by tests/distributed_partition_test.cpp.
///
/// `work` is captured by reference and must outlive the walk.
class AssignmentWalk {
 public:
  /// `targets` and `proc_order` must have equal, non-zero size.
  AssignmentWalk(const std::vector<real_t>& targets,
                 const std::vector<rank_t>& proc_order, const WorkModel& work,
                 const PartitionConstraints& constraints);

  /// Consume the next box along the curve order.
  void feed(const Box& box);

  /// Finish the walk and surrender the accumulated result.  The walk must
  /// not be fed afterwards.
  PartitionResult take();

 private:
  const WorkModel& work_;
  PartitionConstraints constraints_;
  std::vector<real_t> targets_;
  std::vector<rank_t> proc_order_;
  std::size_t p_ = 0;  ///< position in proc_order
  PartitionResult result_;
};

/// The greedy assignment walk over a fully materialized box order (the
/// global-view partitioners' entry point): feeds `ordered_boxes` through an
/// AssignmentWalk front to back.  `targets` and `proc_order` must have
/// equal, non-zero size.
PartitionResult assign_sequence(const std::vector<Box>& ordered_boxes,
                                const std::vector<real_t>& targets,
                                const std::vector<rank_t>& proc_order,
                                const WorkModel& work,
                                const PartitionConstraints& constraints);

}  // namespace ssamr

#include "partition/sfc_heterogeneous.hpp"

#include <numeric>

#include "util/error.hpp"

namespace ssamr {

SfcHeterogeneousPartitioner::SfcHeterogeneousPartitioner(
    SfcConfig sfc, PartitionConstraints constraints)
    : sfc_(sfc), constraints_(constraints) {}

PartitionResult SfcHeterogeneousPartitioner::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  for (real_t c : capacities)
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
  const real_t cap_sum =
      std::accumulate(capacities.begin(), capacities.end(), real_t{0});
  SSAMR_REQUIRE(cap_sum > 0, "capacities must not all be zero");
  const std::size_t nproc = capacities.size();

  // Composite SFC order (locality), capacity-proportional targets.
  const auto perm = sfc_order(boxes.boxes(), sfc_);
  std::vector<Box> ordered;
  ordered.reserve(boxes.size());
  for (std::size_t i : perm) ordered.push_back(boxes[i]);

  const real_t total = total_work(boxes, work);
  std::vector<real_t> targets(nproc);
  std::vector<rank_t> proc_order(nproc);
  std::iota(proc_order.begin(), proc_order.end(), rank_t{0});
  for (std::size_t p = 0; p < nproc; ++p)
    targets[p] = total * capacities[p] / cap_sum;

  return assign_sequence(ordered, targets, proc_order, work, constraints_);
}

}  // namespace ssamr

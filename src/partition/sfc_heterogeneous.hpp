#pragma once
/// \file sfc_heterogeneous.hpp
/// Locality-preserving system-sensitive partitioner
/// ("ACECompositeHeterogeneous").
///
/// ACEHeterogeneous (§5.3) orders boxes by *size*, which matches boxes to
/// capacities with minimal splitting but scatters each processor's boxes
/// across the domain, inflating ghost-exchange volume.  This variant keeps
/// GrACE's composite space-filling-curve order — each processor receives a
/// spatially contiguous segment of the curve — but cuts the segment
/// boundaries at the capacity-proportional targets L_k = C_k · L instead
/// of at equal work.  It trades a little extra splitting for much lower
/// communication volume; the `ablation_locality` bench quantifies the
/// trade.

#include "partition/partitioner.hpp"
#include "sfc/sfc_index.hpp"

namespace ssamr {

/// Capacity-proportional cuts of the composite SFC order.
class SfcHeterogeneousPartitioner final : public Partitioner {
 public:
  explicit SfcHeterogeneousPartitioner(
      SfcConfig sfc = {}, PartitionConstraints constraints = {});

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "ACECompositeHeterogeneous"; }

  PartitionConstraints constraints() const override { return constraints_; }

 private:
  SfcConfig sfc_;
  PartitionConstraints constraints_;
};

}  // namespace ssamr

#include "partition/sfc_knapsack.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace ssamr {

namespace {

/// Peak relative load given per-segment work sums.
real_t peak_relative_load(const std::vector<real_t>& loads,
                          const std::vector<real_t>& capacities) {
  real_t peak = 0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    if (capacities[k] > 0)
      peak = std::max(peak, loads[k] / capacities[k]);
    else if (loads[k] > 0)
      peak = std::numeric_limits<real_t>::infinity();
  }
  return peak;
}

}  // namespace

SfcKnapsackHybrid::SfcKnapsackHybrid(SfcConfig sfc) : sfc_(sfc) {}

PartitionResult SfcKnapsackHybrid::partition(
    const BoxList& boxes, const std::vector<real_t>& capacities,
    const WorkModel& work) const {
  SSAMR_REQUIRE(!capacities.empty(), "need at least one processor");
  for (real_t c : capacities)
    SSAMR_REQUIRE(c >= 0, "capacities must be non-negative");
  const real_t cap_sum =
      std::accumulate(capacities.begin(), capacities.end(), real_t{0});
  SSAMR_REQUIRE(cap_sum > 0, "capacities must not all be zero");
  const std::size_t nproc = capacities.size();
  const std::size_t nbox = boxes.size();

  // Lay the boxes out along the composite SFC and price each one once.
  const auto perm = sfc_order(boxes.boxes(), sfc_);
  std::vector<real_t> works(nbox);
  for (std::size_t i = 0; i < nbox; ++i)
    works[i] = box_work(boxes[perm[i]], work);
  const real_t total =
      std::accumulate(works.begin(), works.end(), real_t{0});

  // Initial segment boundaries at the capacity-proportional prefix
  // targets: cuts[k] is the first curve position of segment k, so rank k
  // owns curve positions [cuts[k], cuts[k+1]).
  std::vector<std::size_t> cuts(nproc + 1, nbox);
  cuts[0] = 0;
  {
    real_t prefix = 0;
    real_t cum_target = 0;
    std::size_t pos = 0;
    for (std::size_t k = 0; k + 1 < nproc; ++k) {
      cum_target += total * capacities[k] / cap_sum;
      while (pos < nbox && prefix + works[pos] <= cum_target)
        prefix += works[pos++];
      cuts[k + 1] = pos;
    }
  }

  std::vector<real_t> loads(nproc, 0);
  for (std::size_t k = 0; k < nproc; ++k)
    for (std::size_t i = cuts[k]; i < cuts[k + 1]; ++i)
      loads[k] += works[i];

  // Knapsack refinement on the boundaries: shifting cuts[k] left moves
  // one box from segment k-1 to k, shifting right moves one from k to
  // k-1.  Apply the first strictly-improving shift per sweep (lowest
  // boundary, left before right), bounded so every input terminates.
  // Shifts only ever exchange boxes between adjacent segments, so each
  // rank's ownership stays a contiguous curve interval.
  const std::size_t max_sweeps = 2 * nbox + 8;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    const real_t cur_peak = peak_relative_load(loads, capacities);
    if (!(cur_peak > 0)) break;
    bool shifted = false;
    for (std::size_t k = 1; k < nproc && !shifted; ++k) {
      // Left shift: last box of segment k-1 moves into segment k.
      if (cuts[k] > cuts[k - 1]) {
        const real_t w = works[cuts[k] - 1];
        std::vector<real_t> trial = loads;
        trial[k - 1] -= w;
        trial[k] += w;
        if (peak_relative_load(trial, capacities) < cur_peak) {
          loads = trial;
          --cuts[k];
          shifted = true;
          break;
        }
      }
      // Right shift: first box of segment k moves into segment k-1.
      if (cuts[k] < cuts[k + 1]) {
        const real_t w = works[cuts[k]];
        std::vector<real_t> trial = loads;
        trial[k - 1] += w;
        trial[k] -= w;
        if (peak_relative_load(trial, capacities) < cur_peak) {
          loads = trial;
          ++cuts[k];
          shifted = true;
          break;
        }
      }
    }
    if (!shifted) break;
  }

  PartitionResult result;
  result.assigned_work.assign(nproc, 0);
  result.target_work.assign(nproc, 0);
  for (std::size_t k = 0; k < nproc; ++k)
    result.target_work[k] = total * capacities[k] / cap_sum;
  result.assignments.reserve(nbox);
  for (std::size_t k = 0; k < nproc; ++k)
    for (std::size_t i = cuts[k]; i < cuts[k + 1]; ++i) {
      result.assignments.push_back({boxes[perm[i]], static_cast<rank_t>(k)});
      result.assigned_work[k] += works[i];
    }
  return result;
}

}  // namespace ssamr

#pragma once
/// \file sfc_knapsack.hpp
/// SFC-ordered knapsack hybrid (AMReX "sfc+knapsack" strategy).
///
/// Pure knapsack packing balances well but scatters each rank's boxes
/// across the domain; pure SFC cutting keeps locality but can only place
/// segment boundaries where the capacity-proportional prefix says, however
/// lumpy the boxes there are.  The hybrid does both: boxes are laid out
/// along the composite space-filling curve, segment boundaries start at
/// the capacity-proportional prefix targets, and a bounded refinement pass
/// then shifts whole boxes across *adjacent* boundaries whenever that
/// strictly lowers the peak relative load W_k / C_k.  Every rank always
/// owns a contiguous SFC segment (rank k is the k-th segment along the
/// curve) and no box is ever split — both properties are asserted by the
/// differential tests.

#include "partition/partitioner.hpp"
#include "sfc/sfc_index.hpp"

namespace ssamr {

/// Contiguous SFC segments with knapsack-style boundary refinement.
class SfcKnapsackHybrid final : public Partitioner {
 public:
  explicit SfcKnapsackHybrid(SfcConfig sfc = {});

  PartitionResult partition(const BoxList& boxes,
                            const std::vector<real_t>& capacities,
                            const WorkModel& work) const override;

  std::string name() const override { return "SfcKnapsackHybrid"; }

 private:
  SfcConfig sfc_;
};

}  // namespace ssamr

#include "partition/zoo.hpp"

#include "partition/distributed_sfc.hpp"
#include "partition/grace_default.hpp"
#include "partition/greedy.hpp"
#include "partition/heterogeneous.hpp"
#include "partition/knapsack.hpp"
#include "partition/multiaxis.hpp"
#include "partition/sfc_heterogeneous.hpp"
#include "partition/sfc_knapsack.hpp"
#include "util/error.hpp"

namespace ssamr {

const std::vector<ZooEntry>& partitioner_zoo() {
  // Registration order is part of the contract: CSVs and differential
  // tests iterate it, so append new schemes at the end.
  static const std::vector<ZooEntry> zoo = {
      {"default", /*capacity_aware=*/false, /*splits_boxes=*/true,
       /*sfc_contiguous=*/true, /*permutation_equivariant=*/false,
       /*local_view=*/false, [] { return std::make_unique<GraceDefaultPartitioner>(); }},
      {"heterogeneous", /*capacity_aware=*/true, /*splits_boxes=*/true,
       /*sfc_contiguous=*/false, /*permutation_equivariant=*/true,
       /*local_view=*/false, [] { return std::make_unique<HeterogeneousPartitioner>(); }},
      {"multiaxis", /*capacity_aware=*/true, /*splits_boxes=*/true,
       /*sfc_contiguous=*/false, /*permutation_equivariant=*/true,
       /*local_view=*/false, [] { return std::make_unique<MultiAxisPartitioner>(); }},
      {"sfc-heterogeneous", /*capacity_aware=*/true, /*splits_boxes=*/true,
       /*sfc_contiguous=*/true, /*permutation_equivariant=*/false,
       /*local_view=*/false, [] { return std::make_unique<SfcHeterogeneousPartitioner>(); }},
      {"greedy", /*capacity_aware=*/true, /*splits_boxes=*/false,
       /*sfc_contiguous=*/false, /*permutation_equivariant=*/true,
       /*local_view=*/false, [] { return std::make_unique<GreedyPartitioner>(); }},
      {"knapsack", /*capacity_aware=*/true, /*splits_boxes=*/false,
       /*sfc_contiguous=*/false, /*permutation_equivariant=*/true,
       /*local_view=*/false, [] { return std::make_unique<KnapsackPartitioner>(); }},
      {"sfc-knapsack", /*capacity_aware=*/true, /*splits_boxes=*/false,
       /*sfc_contiguous=*/true, /*permutation_equivariant=*/false,
       /*local_view=*/false, [] { return std::make_unique<SfcKnapsackHybrid>(); }},
      {"distributed-sfc", /*capacity_aware=*/true, /*splits_boxes=*/true,
       /*sfc_contiguous=*/true, /*permutation_equivariant=*/false,
       /*local_view=*/true,
       [] { return std::make_unique<DistributedSfcPartitioner>(); }},
  };
  return zoo;
}

std::unique_ptr<Partitioner> make_partitioner(const std::string& id) {
  for (const ZooEntry& e : partitioner_zoo())
    if (e.id == id) return e.make();
  SSAMR_REQUIRE(false, "unknown partitioner id: " + id);
  return nullptr;
}

}  // namespace ssamr

#pragma once
/// \file zoo.hpp
/// The partitioner zoo: every registered scheme with capability metadata.
///
/// The differential/property test harness (tests/partition_differential_test)
/// and the partitioner-matrix experiment (bench/exp_partitioner_matrix) both
/// need "every partitioner we have, on identical inputs".  This registry is
/// that single source of truth: one entry per scheme, carrying the
/// capability flags the harness needs to know which properties apply —
/// e.g. permutation equivariance only holds for schemes that match work to
/// capacity *values* rather than to rank positions, and SFC contiguity only
/// for schemes that hand each rank one curve segment.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "partition/partitioner.hpp"

namespace ssamr {

/// One registered partitioner with the properties the harness may assert.
struct ZooEntry {
  /// Stable short identifier (CLI / CSV key), e.g. "knapsack".
  std::string id;
  /// True when the scheme reads the capacity values (a capacity-blind
  /// scheme only uses capacities.size()).
  bool capacity_aware = false;
  /// True when the scheme may split boxes to hit its targets.
  bool splits_boxes = false;
  /// True when every rank owns a contiguous segment of the composite SFC
  /// order, with rank k the k-th segment along the curve.
  bool sfc_contiguous = false;
  /// True when permuting the capacity vector (all values distinct) permutes
  /// `assigned_work` and `target_work` identically — i.e. assignment
  /// depends on capacity values, not rank positions.
  bool permutation_equivariant = false;
  /// True when the scheme decides from shard-local curve scans (local box
  /// views + prefix sums) rather than a materialized global box list; the
  /// global list appears only inside its debug audits (DESIGN.md §11).
  bool local_view = false;
  /// Construct a fresh instance of the scheme.
  std::function<std::unique_ptr<Partitioner>()> make;
};

/// All registered partitioners, in stable registration order.
const std::vector<ZooEntry>& partitioner_zoo();

/// Construct the scheme registered under `id`; throws on unknown ids.
std::unique_ptr<Partitioner> make_partitioner(const std::string& id);

}  // namespace ssamr

#include "runtime/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "audit/audit.hpp"
#include "partition/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace ssamr {

SolverWorkloadSource::SolverWorkloadSource(BergerOliger& integrator,
                                           GridHierarchy& hierarchy,
                                           int steps_per_regrid)
    : integrator_(integrator),
      hierarchy_(hierarchy),
      steps_per_regrid_(steps_per_regrid) {
  SSAMR_REQUIRE(steps_per_regrid >= 1, "steps_per_regrid must be >= 1");
}

BoxList SolverWorkloadSource::boxes_for_regrid(int regrid_index) {
  if (!initialized_) {
    integrator_.initialize();
    initialized_ = true;
  } else {
    for (int s = 0; s < steps_per_regrid_; ++s) integrator_.advance_step();
  }
  (void)regrid_index;
  return hierarchy_.composite_box_list();
}

AdaptiveRuntime::AdaptiveRuntime(Cluster& cluster, WorkloadSource& source,
                                 const Partitioner& partitioner,
                                 RuntimeConfig cfg)
    : cluster_(cluster),
      source_(source),
      partitioner_(partitioner),
      cfg_(cfg),
      monitor_(cluster, cfg.monitor),
      capacity_(cfg.weights),
      model_(make_execution_model(cfg.exec_model, cluster, cfg.executor)) {
  SSAMR_REQUIRE(cfg.total_iterations >= 1, "need at least one iteration");
  SSAMR_REQUIRE(cfg.regrid_interval >= 1, "regrid interval must be >= 1");
  SSAMR_REQUIRE(cfg.sensing.interval >= 0,
                "sensing interval must be non-negative");
  SSAMR_REQUIRE(cfg.sensing.capacity_change_threshold >= 0,
                "capacity change threshold must be non-negative");
}

RunTrace AdaptiveRuntime::run() {
  RunTrace trace;
  trace.model = model_->name();
  trace.num_ranks = cluster_.size();
  Seconds t{0};

  // Initial sensing sweep: capacities used until the first periodic probe.
  stage_sense(trace, t, /*iteration=*/0, /*initial=*/true);

  PartitionResult current;  // empty until the first regrid
  int regrid_index = 0;

  for (int iter = 0; iter < cfg_.total_iterations; ++iter) {
    // Periodic sensing (paper: every N iterations).
    if (cfg_.sensing.interval > 0 && iter > 0 &&
        iter % cfg_.sensing.interval == 0)
      stage_sense(trace, t, iter, /*initial=*/false);

    // Regrid + repartition every regrid_interval iterations (including
    // iteration 0: the initial distribution) — and immediately when a
    // sensing sweep quarantined or re-admitted a node, even off the
    // cadence: running on a dead node's stale distribution until the next
    // scheduled regrid wastes every iteration in between.
    const bool scheduled = iter % cfg_.regrid_interval == 0;
    if (scheduled || force_repartition_) {
      if (!scheduled) monitor_.health().record_forced_repartition();
      force_repartition_ = false;
      stage_repartition(trace, t, iter, regrid_index, current);
    }

    stage_advance(trace, t, iter, current);
  }

  model_->finish(trace, t);
  trace.total_time = t;
  // The health totals accumulated on the sensing lane (HealthLedger,
  // monitor/probe_health.hpp) become part of the finalized trace.
  trace.health = monitor_.health().snapshot();
  SSAMR_INFO << partitioner_.name() << ": " << trace.iterations
             << " iterations in " << trace.total_time.value()
             << " virtual s ("
             << trace.model << " model)";
  return trace;
}

void AdaptiveRuntime::stage_sense(RunTrace& trace, Seconds& t, int iteration,
                                  bool initial) {
  // probe_all folds the sweep's tallies into the monitor's HealthLedger;
  // run() snapshots the ledger into the trace once the run is over.
  const SweepResult sweep = monitor_.probe_all(t);
  const std::vector<real_t> fresh =
      capacity_.relative_capacities(sweep.estimates);
  if (initial) {
    capacities_ = fresh;
    SSAMR_AUDIT(audit::Validator{}.validate_capacities(capacities_,
                                                       cfg_.weights));
    if (cfg_.sensing.charge_initial_sweep) {
      t += model_->sense(t, sweep.overhead_s, iteration);
      trace.sense_time += sweep.overhead_s;
    }
  } else {
    t += model_->sense(t, sweep.overhead_s, iteration);
    trace.sense_time += sweep.overhead_s;
    if (sweep.health_event()) {
      // A node just dropped to zero or came back: hysteresis must not
      // swallow that, and the next iteration must repartition.
      capacities_ = fresh;
    } else {
      stage_adopt_capacities(fresh);
    }
  }
  if (sweep.health_event()) force_repartition_ = true;
  trace.senses.push_back({iteration, t, capacities_});
}

void AdaptiveRuntime::stage_adopt_capacities(
    const std::vector<real_t>& fresh) {
  // Hysteresis: ignore jitter below the configured threshold so the
  // partitioner does not migrate data chasing sensor noise.
  real_t worst_shift = 0;
  for (std::size_t k = 0; k < fresh.size(); ++k) {
    const real_t base = std::max(capacities_[k], real_t{1e-9});
    worst_shift =
        std::max(worst_shift, std::abs(fresh[k] - capacities_[k]) / base);
  }
  if (worst_shift >= cfg_.sensing.capacity_change_threshold)
    capacities_ = fresh;
}

void AdaptiveRuntime::stage_repartition(RunTrace& trace, Seconds& t,
                                        int iteration, int& regrid_index,
                                        PartitionResult& current) {
  const BoxList boxes = source_.boxes_for_regrid(regrid_index);
  SSAMR_REQUIRE(!boxes.empty(), "workload source produced no boxes");
  // Attach the regrid's particle field (if any) so the dual-constraint
  // cost prices cells + particles; nullptr leaves the cells-only model.
  cfg_.work.particles = source_.particles_for_regrid(regrid_index);
  PartitionResult next = partitioner_.partition(boxes, capacities_, cfg_.work);
  // Audit every regrid's distribution before acting on it: coverage,
  // disjointness, split legality and Eq. 1 work tracking.
  SSAMR_AUDIT(audit::Validator{}.validate_partition(
      boxes, next, capacities_, cfg_.work, partitioner_.constraints()));

  // Migration is priced at the pre-regrid time t (the bandwidths in effect
  // when the repartition was decided) — the BSP model depends on this for
  // bit-identity with the pre-seam accounting.
  const Seconds t_regrid = model_->regrid(t, boxes.size(), iteration);
  const Seconds t_migrate = model_->migrate(current, next, t);
  t += t_regrid + t_migrate;
  trace.regrid_time += t_regrid;
  trace.migrate_time += t_migrate;

  RegridRecord rec;
  rec.iteration = iteration;
  rec.regrid_index = regrid_index + 1;
  rec.vtime = t;
  rec.capacities = capacities_;
  rec.assigned_work = next.assigned_work;
  rec.target_work = next.target_work;
  rec.imbalance_pct = load_imbalance_pct(next);
  rec.splits = next.splits;
  rec.num_boxes = boxes.size();
  rec.total_work = Work{total_work(boxes, cfg_.work)};
  trace.regrids.push_back(std::move(rec));

  // Refresh the HDDA registry with the new distribution.
  registry_.clear();
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(cfg_.executor.ncomp) *
      cfg_.executor.bytes_per_value * cfg_.executor.time_levels;
  for (const BoxAssignment& a : next.assignments)
    registry_.insert(a.box, a.owner, a.box.cells() * cell_bytes);

  current = std::move(next);
  ++regrid_index;
}

void AdaptiveRuntime::stage_advance(RunTrace& trace, Seconds& t, int iteration,
                                    const PartitionResult& current) {
  const StepCost step = model_->advance(current, t, iteration);
  trace.compute_time += step.compute;
  trace.comm_time += step.comm;
  t += step.elapsed;
  ++trace.iterations;
}

}  // namespace ssamr

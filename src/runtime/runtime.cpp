#include "runtime/runtime.hpp"

#include <algorithm>
#include <cmath>

#include "audit/audit.hpp"
#include "partition/metrics.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace ssamr {

SolverWorkloadSource::SolverWorkloadSource(BergerOliger& integrator,
                                           GridHierarchy& hierarchy,
                                           int steps_per_regrid)
    : integrator_(integrator),
      hierarchy_(hierarchy),
      steps_per_regrid_(steps_per_regrid) {
  SSAMR_REQUIRE(steps_per_regrid >= 1, "steps_per_regrid must be >= 1");
}

BoxList SolverWorkloadSource::boxes_for_regrid(int regrid_index) {
  if (!initialized_) {
    integrator_.initialize();
    initialized_ = true;
  } else {
    for (int s = 0; s < steps_per_regrid_; ++s) integrator_.advance_step();
  }
  (void)regrid_index;
  return hierarchy_.composite_box_list();
}

AdaptiveRuntime::AdaptiveRuntime(Cluster& cluster, WorkloadSource& source,
                                 const Partitioner& partitioner,
                                 RuntimeConfig cfg)
    : cluster_(cluster),
      source_(source),
      partitioner_(partitioner),
      cfg_(cfg),
      monitor_(cluster, cfg.monitor),
      capacity_(cfg.weights),
      executor_(cluster, cfg.executor) {
  SSAMR_REQUIRE(cfg.total_iterations >= 1, "need at least one iteration");
  SSAMR_REQUIRE(cfg.regrid_interval >= 1, "regrid interval must be >= 1");
  SSAMR_REQUIRE(cfg.sensing.interval >= 0,
                "sensing interval must be non-negative");
  SSAMR_REQUIRE(cfg.sensing.capacity_change_threshold >= 0,
                "capacity change threshold must be non-negative");
}

RunTrace AdaptiveRuntime::run() {
  RunTrace trace;
  real_t t = 0;

  // Initial sensing sweep: capacities used until the first periodic probe.
  real_t sweep_cost = 0;
  auto estimates = monitor_.probe_all(t, &sweep_cost);
  std::vector<real_t> capacities = capacity_.relative_capacities(estimates);
  SSAMR_AUDIT(audit::Validator{}.validate_capacities(capacities,
                                                     cfg_.weights));
  if (cfg_.sensing.charge_initial_sweep) {
    t += sweep_cost;
    trace.sense_time += sweep_cost;
  }
  trace.senses.push_back({0, t, capacities});

  PartitionResult current;  // empty until the first regrid
  int regrid_index = 0;

  for (int iter = 0; iter < cfg_.total_iterations; ++iter) {
    // Periodic sensing (paper: every N iterations).
    if (cfg_.sensing.interval > 0 && iter > 0 &&
        iter % cfg_.sensing.interval == 0) {
      estimates = monitor_.probe_all(t, &sweep_cost);
      const auto fresh = capacity_.relative_capacities(estimates);
      t += sweep_cost;
      trace.sense_time += sweep_cost;
      // Hysteresis: ignore jitter below the configured threshold so the
      // partitioner does not migrate data chasing sensor noise.
      real_t worst_shift = 0;
      for (std::size_t k = 0; k < fresh.size(); ++k) {
        const real_t base = std::max(capacities[k], real_t{1e-9});
        worst_shift =
            std::max(worst_shift, std::abs(fresh[k] - capacities[k]) / base);
      }
      if (worst_shift >= cfg_.sensing.capacity_change_threshold)
        capacities = fresh;
      trace.senses.push_back({iter, t, capacities});
    }

    // Regrid + repartition every regrid_interval iterations (including
    // iteration 0: the initial distribution).
    if (iter % cfg_.regrid_interval == 0) {
      const BoxList boxes = source_.boxes_for_regrid(regrid_index);
      SSAMR_REQUIRE(!boxes.empty(), "workload source produced no boxes");
      PartitionResult next =
          partitioner_.partition(boxes, capacities, cfg_.work);
      // Audit every regrid's distribution before acting on it: coverage,
      // disjointness, split legality and Eq. 1 work tracking.
      SSAMR_AUDIT(audit::Validator{}.validate_partition(
          boxes, next, capacities, cfg_.work, partitioner_.constraints()));

      const real_t t_regrid = executor_.regrid_time(boxes.size()) +
                              executor_.partition_time(boxes.size());
      const real_t t_migrate = executor_.migration_time(current, next, t);
      t += t_regrid + t_migrate;
      trace.regrid_time += t_regrid;
      trace.migrate_time += t_migrate;

      RegridRecord rec;
      rec.iteration = iter;
      rec.regrid_index = regrid_index + 1;
      rec.vtime = t;
      rec.capacities = capacities;
      rec.assigned_work = next.assigned_work;
      rec.target_work = next.target_work;
      rec.imbalance_pct = load_imbalance_pct(next);
      rec.splits = next.splits;
      rec.num_boxes = boxes.size();
      rec.total_work = total_work(boxes, cfg_.work);
      trace.regrids.push_back(std::move(rec));

      // Refresh the HDDA registry with the new distribution.
      registry_.clear();
      const std::int64_t cell_bytes =
          static_cast<std::int64_t>(cfg_.executor.ncomp) *
          cfg_.executor.bytes_per_value * cfg_.executor.time_levels;
      for (const BoxAssignment& a : next.assignments)
        registry_.insert(a.box, a.owner, a.box.cells() * cell_bytes);

      current = std::move(next);
      ++regrid_index;
    }

    const real_t t_iter = executor_.iteration_time(current, t);
    // Split the step into its compute and comm parts for the breakdown.
    {
      const auto comp = executor_.compute_times(current, t);
      const auto comm = executor_.effective_comm_times(current, t);
      real_t worst_comp = 0, worst_total = 0;
      std::size_t worst_k = 0;
      for (std::size_t k = 0; k < comp.size(); ++k) {
        if (comp[k] + comm[k] > worst_total) {
          worst_total = comp[k] + comm[k];
          worst_k = k;
        }
      }
      worst_comp = comp[worst_k];
      trace.compute_time += worst_comp;
      trace.comm_time += worst_total - worst_comp;
    }
    t += t_iter;
    ++trace.iterations;
  }

  trace.total_time = t;
  SSAMR_INFO << partitioner_.name() << ": " << trace.iterations
             << " iterations in " << trace.total_time << " virtual s";
  return trace;
}

}  // namespace ssamr

#pragma once
/// \file runtime.hpp
/// The adaptive system-sensitive runtime (paper Figure 5 / Figure 6).
///
/// Couples the four components of the paper's architecture:
///   application (a WorkloadSource producing bounding-box lists at each
///   regrid) → resource monitoring tool (ResourceMonitor) → capacity
///   calculator (CapacityCalculator) → heterogeneous partitioner
///   (any Partitioner) — and prices execution on the simulated cluster
///   through an ExecutionModel (closed-form BSP accounting or the
///   message-level discrete-event simulation), producing a RunTrace.
///
/// run() is decomposed into named stages — sense, adopt-capacities,
/// repartition (partition + migrate), advance — each charging its cost to
/// the global virtual clock through the model.

#include <memory>
#include <vector>

#include "amr/integrator.hpp"
#include "amr/trace_generator.hpp"
#include "capacity/capacity.hpp"
#include "hdda/hdda.hpp"
#include "cluster/cluster.hpp"
#include "monitor/monitor_service.hpp"
#include "partition/partitioner.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "sim/exec_model.hpp"

namespace ssamr {

/// Produces the application's composite bounding-box list at each regrid.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;
  /// Boxes for the `regrid_index`-th regrid (0-based, called in order).
  virtual BoxList boxes_for_regrid(int regrid_index) = 0;
  /// Particle field coupled to the same regrid, or nullptr when the
  /// workload carries no particles (the default).  The pointer must stay
  /// valid until the next boxes_for_regrid/particles_for_regrid call; the
  /// runtime attaches it to the work model for the repartition.
  virtual const ParticleField* particles_for_regrid(int regrid_index) {
    (void)regrid_index;
    return nullptr;
  }
};

/// WorkloadSource over the deterministic synthetic SAMR trace.
class TraceWorkloadSource final : public WorkloadSource {
 public:
  explicit TraceWorkloadSource(TraceConfig cfg) : trace_(cfg) {}
  BoxList boxes_for_regrid(int regrid_index) override {
    return trace_.boxes_at_epoch(regrid_index);
  }
  const ParticleField* particles_for_regrid(int regrid_index) override {
    if (trace_.config().particles.count == 0) return nullptr;
    particles_ = trace_.particles_at_epoch(regrid_index);
    return &particles_;
  }

 private:
  SyntheticAmrTrace trace_;
  ParticleField particles_;
};

/// WorkloadSource over a live Berger–Oliger integration: advances the real
/// solver between regrids and hands out the actual hierarchy.
class SolverWorkloadSource final : public WorkloadSource {
 public:
  /// \param steps_per_regrid coarse steps to advance between regrids; the
  ///        integrator's own regrid_interval should match the runtime's.
  SolverWorkloadSource(BergerOliger& integrator, GridHierarchy& hierarchy,
                       int steps_per_regrid);
  BoxList boxes_for_regrid(int regrid_index) override;

 private:
  BergerOliger& integrator_;
  GridHierarchy& hierarchy_;
  int steps_per_regrid_;
  bool initialized_ = false;
};

/// Sensing policy (paper §6.1.4 "Dynamic Load Sensing").
struct SensingPolicy {
  /// Probe the monitor every this many iterations; 0 = sense only once
  /// before the start of the simulation (the paper's "static" mode).
  int interval = 0;
  /// Charge the initial sweep to execution time as well.
  bool charge_initial_sweep = true;
  /// Adopt freshly sensed capacities only when some node's relative
  /// capacity moved by more than this fraction since the capacities the
  /// partitioner is currently using (hysteresis against sensor noise:
  /// repartitioning on jitter migrates data for nothing).  0 = always
  /// adopt.
  real_t capacity_change_threshold = 0.0;
};

/// Runtime configuration.
struct RuntimeConfig {
  int total_iterations = 200;
  /// Repartition every this many iterations (paper: regrid every 5).
  int regrid_interval = 5;
  SensingPolicy sensing;
  CapacityWeights weights;  ///< Eq. 1 weights (paper: equal)
  WorkModel work;
  MonitorConfig monitor;
  ExecutorConfig executor;
  /// How stages are priced on the virtual cluster.  kBsp reproduces the
  /// original closed-form accounting bit-for-bit; kEvent simulates
  /// message-level traffic with per-rank timelines (exec_model.hpp).
  ExecModelKind exec_model = ExecModelKind::kBsp;
};

/// The system-sensitive runtime driver.
class AdaptiveRuntime {
 public:
  /// All referenced objects must outlive the runtime.
  AdaptiveRuntime(Cluster& cluster, WorkloadSource& source,
                  const Partitioner& partitioner, RuntimeConfig cfg);

  /// Execute the configured number of iterations; returns the full trace.
  RunTrace run();

  /// The monitor (exposed for inspection after run()).
  ResourceMonitor& monitor() { return monitor_; }

  /// The execution model pricing the stages (exposed for inspection).
  const ExecutionModel& model() const { return *model_; }

  /// The HDDA patch registry: the current distribution (box -> owner,
  /// payload bytes), refreshed at every repartition.  The index space is
  /// sized for the paper workload (4 levels, factor 2); adjust via
  /// set_registry_config before run() for deeper hierarchies.
  const Hdda& registry() const { return registry_; }
  void set_registry_config(const SfcConfig& cfg) { registry_ = Hdda(cfg); }

 private:
  /// Probe the monitor, recompute relative capacities and charge the sweep
  /// to the model.  The initial sweep always adopts what it sensed (there
  /// is nothing to be hysteretic against); periodic sweeps go through
  /// stage_adopt_capacities.
  void stage_sense(RunTrace& trace, Seconds& t, int iteration, bool initial);

  /// Hysteresis: adopt freshly sensed capacities only when some node moved
  /// by more than the configured threshold.
  void stage_adopt_capacities(const std::vector<real_t>& fresh);

  /// Regrid the application, repartition under the current capacities,
  /// charge regrid + migration to the model, and refresh the registry.
  void stage_repartition(RunTrace& trace, Seconds& t, int iteration,
                         int& regrid_index, PartitionResult& current);

  /// One coarse iteration under the current assignment.
  void stage_advance(RunTrace& trace, Seconds& t, int iteration,
                     const PartitionResult& current);

  Cluster& cluster_;
  WorkloadSource& source_;
  const Partitioner& partitioner_;
  RuntimeConfig cfg_;
  ResourceMonitor monitor_;
  CapacityCalculator capacity_;
  std::unique_ptr<ExecutionModel> model_;
  Hdda registry_;
  /// Capacities the partitioner currently uses (updated by sensing).
  std::vector<real_t> capacities_;
  /// Set when a sweep quarantined or re-admitted a node: the next
  /// iteration repartitions even off the regrid cadence.
  bool force_repartition_ = false;
};

}  // namespace ssamr

#include "runtime/trace.hpp"

#include <algorithm>

namespace ssamr {

real_t RunTrace::mean_max_imbalance_pct() const {
  if (regrids.empty()) return 0;
  real_t sum = 0;
  for (const RegridRecord& r : regrids) {
    real_t mx = 0;
    for (real_t i : r.imbalance_pct) mx = std::max(mx, i);
    sum += mx;
  }
  return sum / static_cast<real_t>(regrids.size());
}

}  // namespace ssamr

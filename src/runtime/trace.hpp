#pragma once
/// \file trace.hpp
/// Execution traces recorded by the adaptive runtime — exactly the series
/// the paper plots: per-regrid workload assignments (Figs. 8, 9, 11–15),
/// capacities at each sensing point, imbalance percentages (Fig. 10), and
/// the execution-time breakdown behind Fig. 7 / Tables I–III.

#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssamr {

/// One repartitioning event.
struct RegridRecord {
  int iteration = 0;       ///< coarse iteration at which the regrid ran
  int regrid_index = 0;    ///< 1-based regrid number (paper's x-axes)
  real_t vtime = 0;        ///< virtual time when it happened
  std::vector<real_t> capacities;     ///< C_k used by the partitioner
  std::vector<real_t> assigned_work;  ///< W_k
  std::vector<real_t> target_work;    ///< L_k = C_k · L
  std::vector<real_t> imbalance_pct;  ///< I_k (Eq. 2)
  int splits = 0;          ///< boxes broken by the partitioner
  std::size_t num_boxes = 0;  ///< composite boxes before splitting
  real_t total_work = 0;   ///< L

  /// Bit-exact comparison (the determinism tests diff whole traces).
  bool operator==(const RegridRecord&) const = default;
};

/// One sensing (NWS probe sweep) event.
struct SenseRecord {
  int iteration = 0;
  real_t vtime = 0;
  std::vector<real_t> capacities;  ///< capacities computed from this sweep

  bool operator==(const SenseRecord&) const = default;
};

/// Complete record of one run.
struct RunTrace {
  std::vector<RegridRecord> regrids;
  std::vector<SenseRecord> senses;
  int iterations = 0;
  /// Virtual execution time, total and by component.
  real_t total_time = 0;
  real_t compute_time = 0;
  real_t comm_time = 0;
  real_t sense_time = 0;
  real_t regrid_time = 0;
  real_t migrate_time = 0;

  /// Mean of the per-regrid max imbalance.
  real_t mean_max_imbalance_pct() const;

  bool operator==(const RunTrace&) const = default;
};

}  // namespace ssamr

#include "sfc/hilbert.hpp"

#include <array>
#include <cstdint>

#include "util/error.hpp"

namespace ssamr {

namespace {

using U = std::uint64_t;

/// Skilling's "TransposetoAxes": convert Hilbert transpose form to axes.
void transpose_to_axes(std::array<U, 3>& x, int bits) {
  const int n = 3;
  U t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Gray decode and undo excess rotations.
  for (U q = U{2}; q != (U{1} << bits); q <<= 1) {
    const U p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

/// Skilling's "AxestoTranspose": convert axes to Hilbert transpose form.
void axes_to_transpose(std::array<U, 3>& x, int bits) {
  const int n = 3;
  U t;
  for (U q = U{1} << (bits - 1); q > 1; q >>= 1) {
    const U p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  t = 0;
  for (U q = U{1} << (bits - 1); q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

/// Interleave transpose form into a single key: bit b of dimension d of the
/// transpose goes to key bit (b*3 + (2-d)).
key_t transpose_to_key(const std::array<U, 3>& x, int bits) {
  key_t key = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int d = 0; d < 3; ++d)
      key = (key << 1) | ((x[static_cast<std::size_t>(d)] >> b) & 1);
  return key;
}

std::array<U, 3> key_to_transpose(key_t key, int bits) {
  std::array<U, 3> x{0, 0, 0};
  for (int i = 3 * bits - 1; i >= 0; --i) {
    const int d = (3 * bits - 1 - i) % 3;
    const int b = bits - 1 - (3 * bits - 1 - i) / 3;
    x[static_cast<std::size_t>(d)] |= ((key >> i) & 1) << b;
  }
  return x;
}

}  // namespace

key_t hilbert_encode(IntVec p, int bits) {
  SSAMR_REQUIRE(bits >= 1 && bits <= 21, "hilbert bits must be in [1,21]");
  SSAMR_REQUIRE(p.x >= 0 && p.y >= 0 && p.z >= 0,
                "hilbert coordinates must be non-negative");
  const coord_t limit = coord_t{1} << bits;
  SSAMR_REQUIRE(p.x < limit && p.y < limit && p.z < limit,
                "hilbert coordinate exceeds bits");
  std::array<U, 3> x{static_cast<U>(p.x), static_cast<U>(p.y),
                     static_cast<U>(p.z)};
  axes_to_transpose(x, bits);
  return transpose_to_key(x, bits);
}

IntVec hilbert_decode(key_t key, int bits) {
  SSAMR_REQUIRE(bits >= 1 && bits <= 21, "hilbert bits must be in [1,21]");
  auto x = key_to_transpose(key, bits);
  transpose_to_axes(x, bits);
  return IntVec(static_cast<coord_t>(x[0]), static_cast<coord_t>(x[1]),
                static_cast<coord_t>(x[2]));
}

}  // namespace ssamr

#pragma once
/// \file hilbert.hpp
/// 3-D Hilbert curve encoding (Skilling's transpose algorithm).
///
/// Hilbert order preserves spatial locality better than Morton order: any
/// two consecutive keys are face-adjacent cells.  GrACE's default composite
/// partitioner orders the grid hierarchy along a space-filling curve; this
/// is the high-quality curve option.

#include "geom/point.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Encode a 3-D point into its Hilbert curve index using `bits` bits per
/// dimension (1..21).  Coordinates must be in [0, 2^bits).
key_t hilbert_encode(IntVec p, int bits);

/// Inverse of hilbert_encode.
IntVec hilbert_decode(key_t key, int bits);

}  // namespace ssamr

#include "sfc/key_index.hpp"

#include <algorithm>
#include <cstddef>

#include "util/error.hpp"

namespace ssamr {

namespace {
constexpr coord_t kCoordLimit = coord_t{1} << kMortonBitsPerDim;
}  // namespace

SfcKeyIndex::SfcKeyIndex(const std::vector<Box>& boxes, int max_intervals)
    : boxes_(boxes), max_intervals_(std::max(max_intervals, 1)) {
  level_t max_level = -1;
  for (const Box& b : boxes_)
    if (!b.empty()) max_level = std::max(max_level, b.level());
  levels_.resize(static_cast<std::size_t>(max_level + 1));

  // Pass 1: per-level bias (minimum low corner) and maximum extent.
  std::vector<bool> seen(levels_.size(), false);
  for (const Box& b : boxes_) {
    if (b.empty()) continue;
    auto& li = levels_[static_cast<std::size_t>(b.level())];
    const IntVec lo = b.lo();
    const IntVec e = b.extent();
    if (!seen[static_cast<std::size_t>(b.level())]) {
      li.bias = lo;
      li.max_extent = e;
      seen[static_cast<std::size_t>(b.level())] = true;
    } else {
      li.bias = IntVec(std::min(li.bias.x, lo.x), std::min(li.bias.y, lo.y),
                       std::min(li.bias.z, lo.z));
      li.max_extent =
          IntVec(std::max(li.max_extent.x, e.x),
                 std::max(li.max_extent.y, e.y),
                 std::max(li.max_extent.z, e.z));
    }
  }

  // Pass 2: anchor keys, sorted per level.
  for (std::size_t i = 0; i < boxes_.size(); ++i) {
    const Box& b = boxes_[i];
    if (b.empty()) continue;
    auto& li = levels_[static_cast<std::size_t>(b.level())];
    const IntVec p = b.lo() - li.bias;
    SSAMR_REQUIRE(p.x < kCoordLimit && p.y < kCoordLimit && p.z < kCoordLimit,
                  "level domain exceeds the 21-bit Morton cube");
    li.keys.emplace_back(morton_encode(p), static_cast<std::uint32_t>(i));
  }
  for (LevelIndex& li : levels_) std::sort(li.keys.begin(), li.keys.end());
}

key_t SfcKeyIndex::anchor_key(std::uint32_t id) const {
  SSAMR_REQUIRE(id < boxes_.size(), "key-index id out of range");
  const Box& b = boxes_[id];
  SSAMR_REQUIRE(!b.empty(), "anchor_key of an empty box");
  const auto& li = levels_[static_cast<std::size_t>(b.level())];
  return morton_encode(b.lo() - li.bias);
}

namespace {

/// Key-narrowed octree join behind SfcKeyIndex::query.  The naive scheme —
/// decompose the query region into Morton intervals, then binary-search
/// each — pays O(w²) intervals for a width-w region no matter how few keys
/// it holds; at P = 16384 the decomposition alone cost more than the
/// candidate scan it saved.  This descent instead carries the sorted key
/// subrange alongside the octree node: empty nodes prune instantly, child
/// keys are incremental (no per-node morton_encode), and once a subrange
/// is small — or the node is certainly inside the query — it is scanned
/// directly.  Work is O(k · depth) for k keys near the region, independent
/// of region surface area.
struct KeyJoin {
  using Entry = std::pair<key_t, std::uint32_t>;
  IntVec qlo, qhi;              ///< widened anchor region, biased coords
  const Box* region;            ///< exact-filter target
  const std::vector<Box>* boxes;
  SfcKeyIndexStats* stats;
  std::vector<std::uint32_t>* out;
  int budget = 0;  ///< subrange scans left before coarse fallback
  /// Below this many keys a linear scan beats further descent.
  static constexpr std::ptrdiff_t kScanThreshold = 8;

  void scan(const Entry* lo, const Entry* hi) {
    ++stats->intervals;
    --budget;
    for (const Entry* e = lo; e != hi; ++e) {
      ++stats->candidates;
      if ((*boxes)[e->second].intersects(*region)) {
        ++stats->hits;
        out->push_back(e->second);
      }
    }
  }

  /// Visit the node of side 2^bits at `origin` (biased coords) whose keys
  /// occupy [base, base + 8^bits); [lo, hi) is the key subrange inside it.
  void visit(IntVec origin, int bits, key_t base, const Entry* lo,
             const Entry* hi) {
    if (lo == hi) return;
    const coord_t side = coord_t{1} << bits;
    const IntVec node_hi = origin + IntVec::splat(side - 1);
    if (origin.x > qhi.x || origin.y > qhi.y || origin.z > qhi.z ||
        node_hi.x < qlo.x || node_hi.y < qlo.y || node_hi.z < qlo.z)
      return;  // disjoint from the query
    const bool inside = origin.x >= qlo.x && origin.y >= qlo.y &&
                        origin.z >= qlo.z && node_hi.x <= qhi.x &&
                        node_hi.y <= qhi.y && node_hi.z <= qhi.z;
    if (inside || bits == 0 || hi - lo <= kScanThreshold || budget <= 0) {
      scan(lo, hi);
      return;
    }
    const coord_t half = side / 2;
    const key_t child_span = key_t{1} << (3 * (bits - 1));
    const Entry* it = lo;
    for (int c = 0; c < 8 && it != hi; ++c) {
      const key_t child_end = base + child_span * static_cast<key_t>(c + 1);
      const Entry* end = std::lower_bound(
          it, hi, std::make_pair(child_end, std::uint32_t{0}));
      if (it != end)
        visit(origin + IntVec((c & 1) ? half : 0, (c & 2) ? half : 0,
                              (c & 4) ? half : 0),
              bits - 1, child_end - child_span, it, end);
      it = end;
    }
  }
};

}  // namespace

void SfcKeyIndex::query(const Box& region, std::vector<std::uint32_t>& out,
                        SfcKeyIndexStats& stats) const {
  out.clear();
  if (region.empty()) return;
  const auto lvl = static_cast<std::size_t>(region.level());
  if (region.level() < 0 || lvl >= levels_.size()) return;
  const LevelIndex& li = levels_[lvl];
  if (li.keys.empty()) return;
  ++stats.queries;

  // A box intersects `region` iff its low corner lies in the region widened
  // low-side by (max_extent − 1): anchors below that can never reach the
  // region, anchors above region.hi() start past it.
  IntVec qlo = region.lo() - (li.max_extent - IntVec::splat(1)) - li.bias;
  IntVec qhi = region.hi() - li.bias;
  qlo = IntVec(std::max<coord_t>(qlo.x, 0), std::max<coord_t>(qlo.y, 0),
               std::max<coord_t>(qlo.z, 0));
  if (qhi.x < 0 || qhi.y < 0 || qhi.z < 0) return;
  qhi = IntVec(std::min(qhi.x, kCoordLimit - 1),
               std::min(qhi.y, kCoordLimit - 1),
               std::min(qhi.z, kCoordLimit - 1));

  KeyJoin join{qlo, qhi, &region, &boxes_, &stats, &out, max_intervals_};
  join.visit(IntVec::splat(0), kMortonBitsPerDim, key_t{0}, li.keys.data(),
             li.keys.data() + li.keys.size());
  // Subranges are disjoint, so no id appears twice; candidates arrive in
  // key order — restore the historical ascending-id scan order.
  std::sort(out.begin(), out.end());
}

void SfcKeyIndex::query(const Box& region,
                        std::vector<std::uint32_t>& out) const {
  query(region, out, stats_);
}

std::vector<std::uint32_t> SfcKeyIndex::query(const Box& region) const {
  std::vector<std::uint32_t> out;
  query(region, out);
  return out;
}

void SfcKeyIndex::merge_stats(const SfcKeyIndexStats& s) const {
  stats_.queries += s.queries;
  stats_.intervals += s.intervals;
  stats_.candidates += s.candidates;
  stats_.hits += s.hits;
}

}  // namespace ssamr

#pragma once
/// \file key_index.hpp
/// Morton-keyed spatial index for neighbor discovery at scale.
///
/// The historical neighbor-discovery paths (ghost planning, comm-volume
/// metrics, migration overlap) scan every box against every other box —
/// O(N²) — which caps the virtual cluster far below real machine sizes.
/// This index realizes the Schornbaum & Rüde design point instead: boxes
/// are keyed by the Morton code of their (level-biased) low corner and a
/// range query walks the implicit Morton octree while narrowing the sorted
/// key array in lockstep — empty nodes prune instantly, small subranges
/// are scanned directly, and the candidate superset is filtered with an
/// exact intersection test.  For the quasi-uniform lattices AMR regrids
/// produce, a query touches O(log N + k) keys for k true neighbors,
/// independent of the query region's surface area (the fixed-budget
/// interval decomposition it replaces — morton_covering_intervals — cost
/// O(w²) intervals for a width-w region, which dominated at P = 16384).
///
/// The index is a per-level structure: each refinement level keeps its own
/// sorted (key, id) array, its own coordinate bias (so negative or far
/// offset domains still fit the non-negative 21-bit Morton cube) and its
/// own maximum box extent (queries are widened by it so that anchor keys —
/// low corners — cannot miss boxes that start below the query region).
///
/// Determinism: queries return ids in ascending order, so downstream
/// consumers that iterate candidates reproduce the historical ascending
/// all-pairs scan order exactly.  Query statistics are accumulated in a
/// mutable counter; concurrent queries on one instance must use the
/// overload taking an explicit stats accumulator (the index itself is
/// read-only during queries) and may merge_stats() their accumulators
/// back afterwards — integer sums, so the merged totals are independent
/// of thread count.

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/box.hpp"
#include "sfc/morton.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Query-efficiency counters (exp_scale reports them; tests sanity-check
/// that interval scans stay near-linear).
struct SfcKeyIndexStats {
  std::int64_t queries = 0;     ///< range queries served
  std::int64_t intervals = 0;   ///< covering key intervals decomposed
  std::int64_t candidates = 0;  ///< keys scanned (superset)
  std::int64_t hits = 0;        ///< candidates passing the exact filter
};

/// Morton-interval range index over a set of boxes.
class SfcKeyIndex {
 public:
  /// Index `boxes` (ids are positions in the vector; empty boxes are
  /// skipped).  `max_intervals` bounds the per-query decomposition: the
  /// key-narrowed octree descent scans at most this many key subranges
  /// before falling back to coarse whole-subrange scans (still correct —
  /// the exact filter runs on every candidate — just a wider superset).
  /// The adaptive join rarely needs more than a few dozen subranges, so
  /// the default effectively never binds.
  explicit SfcKeyIndex(const std::vector<Box>& boxes,
                       int max_intervals = 1024);

  /// Ids (ascending) of indexed boxes at region.level() that intersect
  /// `region`.  An empty region matches nothing.
  std::vector<std::uint32_t> query(const Box& region) const;

  /// As above, appending into `out` (cleared first) to reuse capacity in
  /// hot loops.
  void query(const Box& region, std::vector<std::uint32_t>& out) const;

  /// As above, accumulating counters into `stats` instead of the index's
  /// own — the thread-safe form (the index is read-only here).
  void query(const Box& region, std::vector<std::uint32_t>& out,
             SfcKeyIndexStats& stats) const;

  /// Fold an external accumulator (from the thread-safe query form) into
  /// this index's counters.
  void merge_stats(const SfcKeyIndexStats& s) const;

  /// Morton key of a box's level-biased low corner — the canonical halo
  /// ordering key of the local-view layer.
  key_t anchor_key(std::uint32_t id) const;

  std::size_t size() const { return boxes_.size(); }
  const SfcKeyIndexStats& stats() const { return stats_; }

 private:
  struct LevelIndex {
    IntVec bias;        ///< minimum low corner over the level's boxes
    IntVec max_extent;  ///< per-dimension maximum box extent
    /// (anchor key, id), sorted ascending (key ties by id).
    std::vector<std::pair<key_t, std::uint32_t>> keys;
  };

  std::vector<Box> boxes_;
  std::vector<LevelIndex> levels_;  ///< indexed by refinement level
  int max_intervals_;
  mutable SfcKeyIndexStats stats_;
};

}  // namespace ssamr

#include "sfc/morton.hpp"

#include "util/error.hpp"

namespace ssamr {

namespace {
/// Spread the low 21 bits of v so each lands every third bit position.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of spread3.
std::uint64_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return v;
}
}  // namespace

key_t morton_encode(coord_t x, coord_t y, coord_t z) {
  SSAMR_REQUIRE(x >= 0 && y >= 0 && z >= 0,
                "morton coordinates must be non-negative");
  SSAMR_REQUIRE(x < (coord_t{1} << kMortonBitsPerDim) &&
                    y < (coord_t{1} << kMortonBitsPerDim) &&
                    z < (coord_t{1} << kMortonBitsPerDim),
                "morton coordinate exceeds 21 bits");
  return spread3(static_cast<std::uint64_t>(x)) |
         (spread3(static_cast<std::uint64_t>(y)) << 1) |
         (spread3(static_cast<std::uint64_t>(z)) << 2);
}

IntVec morton_decode(key_t key) {
  return IntVec(static_cast<coord_t>(compact3(key)),
                static_cast<coord_t>(compact3(key >> 1)),
                static_cast<coord_t>(compact3(key >> 2)));
}

}  // namespace ssamr

#include "sfc/morton.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace ssamr {

namespace {
/// Spread the low 21 bits of v so each lands every third bit position.
std::uint64_t spread3(std::uint64_t v) {
  v &= 0x1fffff;  // 21 bits
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

/// Inverse of spread3.
std::uint64_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffff;
  return v;
}
}  // namespace

key_t morton_encode(coord_t x, coord_t y, coord_t z) {
  SSAMR_REQUIRE(x >= 0 && y >= 0 && z >= 0,
                "morton coordinates must be non-negative");
  SSAMR_REQUIRE(x < (coord_t{1} << kMortonBitsPerDim) &&
                    y < (coord_t{1} << kMortonBitsPerDim) &&
                    z < (coord_t{1} << kMortonBitsPerDim),
                "morton coordinate exceeds 21 bits");
  return spread3(static_cast<std::uint64_t>(x)) |
         (spread3(static_cast<std::uint64_t>(y)) << 1) |
         (spread3(static_cast<std::uint64_t>(z)) << 2);
}

IntVec morton_decode(key_t key) {
  return IntVec(static_cast<coord_t>(compact3(key)),
                static_cast<coord_t>(compact3(key >> 1)),
                static_cast<coord_t>(compact3(key >> 2)));
}

namespace {

/// Octree descent behind morton_covering_intervals.  Nodes are visited in
/// ascending Morton order (child c has x in bit 0, y in bit 1, z in bit 2,
/// matching the key interleave), so emitted intervals arrive sorted and
/// sibling ranges that are both fully covered merge into one.
struct IntervalBuilder {
  IntVec lo, hi;
  int max_intervals = 0;
  std::vector<KeyInterval> out;

  void emit(key_t begin, key_t end) {
    if (!out.empty() && out.back().end == begin)
      out.back().end = end;
    else
      out.push_back({begin, end});
  }

  /// Visit the node of side 2^bits anchored at `origin` (all multiples of
  /// the side).  Its cells occupy exactly keys [key(origin),
  /// key(origin) + 8^bits).
  void visit(IntVec origin, int bits) {
    const coord_t side = coord_t{1} << bits;
    const IntVec node_hi = origin + IntVec::splat(side - 1);
    if (origin.x > hi.x || origin.y > hi.y || origin.z > hi.z ||
        node_hi.x < lo.x || node_hi.y < lo.y || node_hi.z < lo.z)
      return;  // disjoint
    const key_t base = morton_encode(origin);
    const key_t span = key_t{1} << (3 * bits);
    const bool inside = origin.x >= lo.x && origin.y >= lo.y &&
                        origin.z >= lo.z && node_hi.x <= hi.x &&
                        node_hi.y <= hi.y && node_hi.z <= hi.z;
    // Emit whole-node ranges for fully covered nodes, leaves, and — once
    // the soft budget is spent — partially covered nodes (the superset
    // escape hatch that bounds the interval count).
    if (inside || bits == 0 ||
        static_cast<int>(out.size()) + 1 >= max_intervals) {
      emit(base, base + span);
      return;
    }
    const coord_t half = side / 2;
    for (int c = 0; c < 8; ++c)
      visit(origin + IntVec((c & 1) ? half : 0, (c & 2) ? half : 0,
                            (c & 4) ? half : 0),
            bits - 1);
  }
};

}  // namespace

std::vector<KeyInterval> morton_covering_intervals(IntVec lo, IntVec hi,
                                                   int max_intervals) {
  if (hi.x < lo.x || hi.y < lo.y || hi.z < lo.z) return {};
  SSAMR_REQUIRE(lo.x >= 0 && lo.y >= 0 && lo.z >= 0,
                "morton interval coordinates must be non-negative");
  const coord_t limit = coord_t{1} << kMortonBitsPerDim;
  SSAMR_REQUIRE(hi.x < limit && hi.y < limit && hi.z < limit,
                "morton interval coordinate exceeds 21 bits");
  IntervalBuilder b{lo, hi, std::max(max_intervals, 1), {}};
  b.visit(IntVec::splat(0), kMortonBitsPerDim);
  return b.out;
}

}  // namespace ssamr

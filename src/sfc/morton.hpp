#pragma once
/// \file morton.hpp
/// Morton (Z-order) encoding for 3-D index-space coordinates.
///
/// The HDDA maps the application's hierarchical index space onto a 1-D
/// locality-preserving key space using space-filling curves; Morton order is
/// the cheap default, Hilbert order (hilbert.hpp) the higher-locality
/// alternative.

#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Maximum bits per coordinate that fit a 64-bit Morton key (3 × 21 = 63).
inline constexpr int kMortonBitsPerDim = 21;

/// Interleave the low 21 bits of x, y, z into a 63-bit Morton key.
/// Coordinates must be non-negative and < 2^21.
key_t morton_encode(coord_t x, coord_t y, coord_t z);

/// Convenience overload for IntVec.
inline key_t morton_encode(IntVec p) { return morton_encode(p.x, p.y, p.z); }

/// Inverse of morton_encode.
IntVec morton_decode(key_t key);

/// A half-open interval [begin, end) of Morton keys.
struct KeyInterval {
  key_t begin = 0;
  key_t end = 0;

  bool operator==(const KeyInterval&) const = default;
};

/// Decompose the axis-aligned cell region [lo, hi] (inclusive bounds, all
/// coordinates in [0, 2^21)) into disjoint Morton-key intervals, returned
/// in ascending key order with adjacent intervals merged.
///
/// The union of the intervals always covers every cell of the region; it
/// may additionally cover cells *outside* it (a superset).  That is the
/// interval-query contract of the distributed key index: curve-interval
/// scans produce candidate supersets and an exact geometric filter removes
/// the false positives, so over-approximation trades a few wasted
/// candidates for a bounded interval count.  The octree descent stops
/// refining once roughly `max_intervals` intervals have been emitted and
/// covers the rest with whole subtree ranges (the bound is soft: the
/// result can exceed it by at most the tree depth).  Returns an empty
/// vector for an empty region (any hi component < lo).
std::vector<KeyInterval> morton_covering_intervals(IntVec lo, IntVec hi,
                                                   int max_intervals = 64);

}  // namespace ssamr

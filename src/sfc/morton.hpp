#pragma once
/// \file morton.hpp
/// Morton (Z-order) encoding for 3-D index-space coordinates.
///
/// The HDDA maps the application's hierarchical index space onto a 1-D
/// locality-preserving key space using space-filling curves; Morton order is
/// the cheap default, Hilbert order (hilbert.hpp) the higher-locality
/// alternative.

#include <cstdint>

#include "geom/point.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Maximum bits per coordinate that fit a 64-bit Morton key (3 × 21 = 63).
inline constexpr int kMortonBitsPerDim = 21;

/// Interleave the low 21 bits of x, y, z into a 63-bit Morton key.
/// Coordinates must be non-negative and < 2^21.
key_t morton_encode(coord_t x, coord_t y, coord_t z);

/// Convenience overload for IntVec.
inline key_t morton_encode(IntVec p) { return morton_encode(p.x, p.y, p.z); }

/// Inverse of morton_encode.
IntVec morton_decode(key_t key);

}  // namespace ssamr

#include "sfc/sfc_index.hpp"

#include <algorithm>
#include <numeric>

#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "util/error.hpp"

namespace ssamr {

key_t sfc_box_key(const Box& b, const SfcConfig& cfg) {
  SSAMR_REQUIRE(!b.empty(), "cannot key an empty box");
  SSAMR_REQUIRE(b.level() <= cfg.finest_level,
                "box level exceeds configured finest level");
  // Centroid of the box, in units of half-cells of the box's own level, then
  // scaled to the finest index space (also in half-cells, so rounding cannot
  // collapse distinct centroids).
  coord_t scale = 1;
  for (level_t l = b.level(); l < cfg.finest_level; ++l) scale *= cfg.ratio;
  const IntVec c2 = b.lo() + b.hi() + IntVec::splat(1);  // 2 * centroid
  IntVec p(c2.x * scale / 2, c2.y * scale / 2, c2.z * scale / 2);
  if (cfg.curve == CurveKind::Morton) return morton_encode(p);
  return hilbert_encode(p, cfg.bits);
}

std::vector<std::size_t> sfc_order(const std::vector<Box>& boxes,
                                   const SfcConfig& cfg) {
  std::vector<key_t> keys(boxes.size());
  for (std::size_t i = 0; i < boxes.size(); ++i)
    keys[i] = sfc_box_key(boxes[i], cfg);
  std::vector<std::size_t> perm(boxes.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (keys[a] != keys[b]) return keys[a] < keys[b];
                     return boxes[a].level() < boxes[b].level();
                   });
  return perm;
}

}  // namespace ssamr

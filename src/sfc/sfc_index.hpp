#pragma once
/// \file sfc_index.hpp
/// Composite space-filling-curve ordering of a grid hierarchy's boxes.
///
/// GrACE's default partitioner linearizes the *composite* hierarchy: every
/// box, at whatever level, is mapped into the finest index space and ordered
/// along one space-filling curve, so that boxes adjacent in space (across
/// levels) are adjacent in the linear order.  Cutting that order into
/// contiguous chunks yields partitions with good inter- and intra-level
/// locality.

#include <vector>

#include "geom/box.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Which curve to linearize along.
enum class CurveKind { Morton, Hilbert };

/// Parameters for composite SFC ordering.
struct SfcConfig {
  CurveKind curve = CurveKind::Hilbert;
  /// Refinement ratio between consecutive levels.
  coord_t ratio = 2;
  /// The finest level that must be representable (keys are computed in this
  /// level's index space).
  level_t finest_level = 3;
  /// Bits per dimension of the key space; must cover the finest-level
  /// domain extent.
  int bits = 16;
};

/// Key of one box: its centroid mapped to the finest index space and
/// encoded along the configured curve.
key_t sfc_box_key(const Box& b, const SfcConfig& cfg);

/// Permutation of [0, boxes.size()) that sorts the boxes by sfc_box_key,
/// with ties broken by level (coarse first) then by input position — a
/// deterministic composite ordering.
std::vector<std::size_t> sfc_order(const std::vector<Box>& boxes,
                                   const SfcConfig& cfg);

}  // namespace ssamr

#include "sim/bsp_model.hpp"

#include <algorithm>

namespace ssamr::sim {

BspModel::BspModel(const Cluster& cluster, const ExecutorConfig& cfg)
    : cluster_(cluster), exec_(cluster, cfg) {
  const int n = cluster.size();
  lanes_.reserve(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) lanes_.emplace_back(k);
}

Seconds BspModel::sense(Seconds t, Seconds sweep_s, int iteration) {
  // Charged serially: every rank waits for the sweep (the pre-seam
  // behaviour the paper measures as sensing overhead).
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(t + sweep_s, SpanKind::kIdle, iteration);
  lanes_[n].skip_to(t);
  lanes_[n].advance(t + sweep_s, SpanKind::kSense, iteration);
  return sweep_s;
}

Seconds BspModel::regrid(Seconds t, std::size_t boxes, int iteration) {
  const Seconds cost = exec_.regrid_time(boxes) + exec_.partition_time(boxes);
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(t + cost, SpanKind::kRegrid, iteration);
  pending_regrid_s_ = cost;
  return cost;
}

Seconds BspModel::migrate(const PartitionResult& previous,
                          const PartitionResult& next, Seconds t) {
  // The pre-seam clock charges migration at the pre-regrid time t; the
  // spans start after the regrid work the driver adds alongside.
  const Seconds cost = exec_.migration_time(previous, next, t);
  // The driver charges regrid + migration to its clock as one pre-summed
  // pair; replicate that exact rounding so the lanes land on the driver's
  // clock bit-for-bit ((t + a) + b need not equal t + (a + b)).
  const Seconds end = t + (pending_regrid_s_ + cost);
  pending_regrid_s_ = Seconds{0};
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(end, SpanKind::kMigrate);
  return cost;
}

StepCost BspModel::advance(const PartitionResult& r, Seconds t,
                           int iteration) {
  const auto comp = exec_.compute_times(r, t);
  const auto comm = exec_.effective_comm_times(r, t);
  Seconds worst_total{0};
  std::size_t worst_k = 0;
  for (std::size_t k = 0; k < comp.size(); ++k) {
    if (comp[k] + comm[k] > worst_total) {
      worst_total = comp[k] + comm[k];
      worst_k = k;
    }
  }
  const Seconds worst_comp = comp[worst_k];
  for (std::size_t k = 0; k < comp.size(); ++k) {
    RankTimeline& lane = lanes_[k];
    // Sum comp + comm before adding t: rounding is then monotone in the
    // per-rank total, so no lane can overshoot t + worst_total by an ulp.
    lane.advance(t + comp[k], SpanKind::kCompute, iteration);
    lane.advance(t + (comp[k] + comm[k]), SpanKind::kComm, iteration);
    lane.advance(t + worst_total, SpanKind::kIdle, iteration);
  }
  return StepCost{worst_total, worst_comp, worst_total - worst_comp};
}

void BspModel::finish(RunTrace& trace, Seconds t_end) {
  const auto n = static_cast<std::size_t>(cluster_.size());
  trace.rank_usage.clear();
  trace.spans.clear();
  for (std::size_t k = 0; k < n; ++k) {
    lanes_[k].advance(t_end, SpanKind::kIdle);
    trace.rank_usage.push_back(lanes_[k].usage());
  }
  for (const RankTimeline& lane : lanes_)
    trace.spans.insert(trace.spans.end(), lane.spans().begin(),
                       lane.spans().end());
}

}  // namespace ssamr::sim

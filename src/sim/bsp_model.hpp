#pragma once
/// \file bsp_model.hpp
/// The closed-form BSP execution model.
///
/// This is the original runtime accounting (DESIGN.md §2) extracted behind
/// the ExecutionModel seam, arithmetic-for-arithmetic: every stage is
/// charged serially to one global clock and an iteration costs
/// max_k(compute_k + (1 − overlap) · comm_k).  Runs under this model are
/// bit-identical to the pre-seam runtime — the determinism suite and the
/// golden-file regressions pin that down.
///
/// Beyond the original it also fills the per-rank busy/comm/idle usage and
/// illustrative timeline spans (the BSP view: all ranks advance in
/// lockstep, the slack of non-critical ranks shows up as idle).

#include <vector>

#include "sim/exec_model.hpp"
#include "sim/timeline.hpp"

namespace ssamr::sim {

class BspModel final : public ExecutionModel {
 public:
  BspModel(const Cluster& cluster, const ExecutorConfig& cfg);

  std::string name() const override { return "bsp"; }
  Seconds sense(Seconds t, Seconds sweep_s, int iteration) override;
  Seconds regrid(Seconds t, std::size_t boxes, int iteration) override;
  Seconds migrate(const PartitionResult& previous, const PartitionResult& next,
                  Seconds t) override;
  StepCost advance(const PartitionResult& r, Seconds t,
                   int iteration) override;
  void finish(RunTrace& trace, Seconds t_end) override;
  const VirtualExecutor& costs() const override { return exec_; }

 private:
  const Cluster& cluster_;
  VirtualExecutor exec_;
  std::vector<RankTimeline> lanes_;  ///< ranks 0..n-1, monitor lane at n
  /// Regrid charge of the current repartition stage: the driver adds
  /// regrid + migration to the clock together, so the migration spans
  /// recorded by migrate() start after this offset.
  Seconds pending_regrid_s_{0};
};

}  // namespace ssamr::sim

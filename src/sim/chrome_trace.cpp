#include "sim/chrome_trace.hpp"

#include <fstream>
#include <limits>
#include <ostream>

#include "util/error.hpp"

namespace ssamr::sim {

namespace {

/// Perfetto renders slices per (pid, tid); one process for the whole
/// virtual cluster, one thread per rank lane.
constexpr int kPid = 1;

void write_metadata(std::ostream& os, const char* meta, int tid,
                    const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "    {\"name\":\"" << meta << "\",\"ph\":\"M\",\"pid\":" << kPid
     << ",\"tid\":" << tid << ",\"args\":{\"name\":\"" << name << "\"}}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const RunTrace& trace) {
  os << "{\n  \"displayTimeUnit\": \"ms\",\n"
     << "  \"otherData\": {\"model\": \"" << trace.model
     << "\", \"ranks\": " << trace.num_ranks << "},\n"
     << "  \"traceEvents\": [\n";
  bool first = true;
  write_metadata(os, "process_name", 0, "virtual cluster", first);
  for (int k = 0; k < trace.num_ranks; ++k)
    write_metadata(os, "thread_name", k, "rank " + std::to_string(k), first);
  write_metadata(os, "thread_name", trace.num_ranks, "monitor", first);

  // max_digits10: timestamps round-trip exactly, so adjacent spans stay
  // exactly adjacent after a JSON parse.
  const std::streamsize old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  for (const TraceSpan& s : trace.spans) {
    // Skip idle filler: Perfetto shows gaps natively and the file shrinks.
    if (s.kind == SpanKind::kIdle) continue;
    if (!first) os << ",\n";
    first = false;
    const double ts_us = s.t0.value() * 1.0e6;
    const double dur_us = (s.t1 - s.t0).value() * 1.0e6;
    os << "    {\"name\":\"" << span_kind_name(s.kind) << "\",\"cat\":\""
       << span_kind_name(s.kind) << "\",\"ph\":\"X\",\"pid\":" << kPid
       << ",\"tid\":" << s.rank << ",\"ts\":" << ts_us << ",\"dur\":"
       << dur_us;
    if (s.iteration >= 0)
      os << ",\"args\":{\"iteration\":" << s.iteration << "}";
    os << "}";
  }
  os.precision(old_precision);
  os << "\n  ]\n}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const RunTrace& trace) {
  std::ofstream os(path);
  SSAMR_REQUIRE(os.good(), "cannot open trace file: " + path);
  write_chrome_trace(os, trace);
  os.flush();
  SSAMR_REQUIRE(os.good(), "failed writing trace file: " + path);
}

}  // namespace ssamr::sim

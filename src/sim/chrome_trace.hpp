#pragma once
/// \file chrome_trace.hpp
/// Chrome trace-event JSON export of a RunTrace's per-rank timelines.
///
/// The emitted file uses the trace-event "JSON object format": a
/// `traceEvents` array of complete ("ph":"X") events — one per timeline
/// span, with virtual seconds mapped to microseconds — plus thread-name
/// metadata so lanes render as "rank 0".."rank n-1" and "monitor".  Load
/// the file in chrome://tracing or https://ui.perfetto.dev (Open trace
/// file) to inspect busy/comm/idle structure visually.

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace ssamr::sim {

/// Serialize `trace`'s spans as Chrome trace-event JSON onto `os`.
/// Requires trace.num_ranks (lane naming); works for either execution
/// model (the BSP lanes show the lockstep view).
void write_chrome_trace(std::ostream& os, const RunTrace& trace);

/// Write the JSON to `path`; throws ssamr::Error when the file cannot be
/// opened or written.
void write_chrome_trace_file(const std::string& path, const RunTrace& trace);

}  // namespace ssamr::sim

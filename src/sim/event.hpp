#pragma once
/// \file event.hpp
/// Typed events of the virtual-cluster simulation.
///
/// The event model decomposes a run into four event families: compute
/// spans (a rank updating its patches), point-to-point transfers (ghost
/// exchange and data migration), probe sweeps (the resource monitor
/// querying every node), and regrid/repartition barriers.  Compute spans,
/// sweeps and barriers are recorded directly on the per-rank timelines
/// (timeline.hpp); transfers additionally flow through the fluid network
/// simulation (message_sim.hpp) which resolves endpoint bandwidth
/// contention before their completion times are known.

#include <cstdint>

#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr::sim {

/// One point-to-point transfer (a ghost-exchange or migration message).
struct Transfer {
  int src = 0;
  int dst = 0;
  Bytes bytes{0};
  /// When the payload is handed to the NIC (absolute virtual time).
  Seconds post_time{0};
  /// Completion time, filled in by simulate_transfers().
  Seconds finish_time{0};
};

/// A rank executing its assigned patches for one coarse iteration.
struct ComputeSpan {
  int rank = 0;
  int iteration = 0;
  Seconds begin{0};
  Seconds duration{0};
};

/// One full probe sweep of the resource monitor (runs on the monitor lane,
/// overlapping rank execution in the event model).
struct ProbeSweep {
  int iteration = 0;
  Seconds begin{0};
  Seconds duration{0};
};

/// A regrid/repartition barrier: every rank synchronizes, then performs
/// flagging + clustering + partitioning work of the given duration.
struct RegridBarrier {
  int iteration = 0;
  Seconds begin{0};     ///< barrier release time (max over rank clocks)
  Seconds duration{0};  ///< regrid + partition work charged to every rank
};

}  // namespace ssamr::sim

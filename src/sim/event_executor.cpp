#include "sim/event_executor.hpp"

#include <algorithm>

#include "partition/metrics.hpp"
#include "sim/message_sim.hpp"
#include "util/error.hpp"

namespace ssamr::sim {

EventExecutor::EventExecutor(const Cluster& cluster,
                             const ExecutorConfig& cfg)
    : cluster_(cluster), exec_(cluster, cfg) {
  const int n = cluster.size();
  lanes_.reserve(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) lanes_.emplace_back(k);
}

Seconds EventExecutor::rank_time(rank_t rank) const {
  SSAMR_REQUIRE(rank >= 0 && rank < cluster_.size(), "rank out of range");
  return lanes_[static_cast<std::size_t>(rank)].now();
}

std::vector<MbitsPerSec> EventExecutor::bandwidths_at(Seconds t) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  std::vector<MbitsPerSec> bw(n, MbitsPerSec{0});
  for (std::size_t k = 0; k < n; ++k) {
    // Crashed nodes are priced at their rejoin-time bandwidth: the compute
    // lane charges the crash pause, so pricing transfers at the down-state
    // bandwidth floor would double-charge the outage.
    const auto rank = static_cast<rank_t>(k);
    bw[k] = cluster_.state_at(rank, cluster_.resume_time(rank, t))
                .bandwidth_mbps;
  }
  return bw;
}

Seconds EventExecutor::horizon() const {
  Seconds h{0};
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k) h = std::max(h, lanes_[k].now());
  return h;
}

void EventExecutor::run_network(std::vector<Transfer>& transfers, Seconds t) {
  const std::vector<MbitsPerSec> bw = bandwidths_at(t);
  events_ += cluster_.size() > kIndexedSimRanks
                 ? simulate_transfers_indexed(transfers, bw,
                                              cluster_.network(), net_ws_)
                 : simulate_transfers(transfers, bw, cluster_.network());
}

Seconds EventExecutor::sense(Seconds t, Seconds sweep_s, int iteration) {
  // The sweep occupies the monitor lane only: sensing overlaps execution.
  // The driver is charged only when the monitor is still busy with the
  // previous sweep — it blocks until its request can start, so degraded
  // sweeps (timeouts, retries, backoff) surface as sensing lag instead of
  // silently queueing forever on the monitor lane.
  RankTimeline& monitor = lanes_.back();
  const Seconds wait = std::max(Seconds{0}, monitor.now() - t);
  monitor.skip_to(std::max(monitor.now(), t));
  monitor.advance(monitor.now() + sweep_s, SpanKind::kSense, iteration);
  return wait;
}

Seconds EventExecutor::regrid(Seconds t, std::size_t boxes, int iteration) {
  // Global barrier: every rank synchronizes (idle), then all perform the
  // flagging/clustering/partitioning work together.
  const Seconds cost = exec_.regrid_time(boxes) + exec_.partition_time(boxes);
  const Seconds barrier = std::max(t, horizon());
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k) {
    lanes_[k].advance(barrier, SpanKind::kIdle, iteration);
    lanes_[k].advance(barrier + cost, SpanKind::kRegrid, iteration);
  }
  return (barrier + cost) - t;
}

Seconds EventExecutor::migrate(const PartitionResult& previous,
                               const PartitionResult& next, Seconds t) {
  // Ranks leave the regrid barrier together; each resumes as soon as its
  // own incident transfers are done (no second barrier).
  const Seconds begin = horizon();
  std::vector<RankFlow> flows = exec_.migration_flows(previous, next);
  if (flows.empty()) return Seconds{0};

  std::vector<Transfer> transfers;
  transfers.reserve(flows.size());
  for (const RankFlow& f : flows)
    transfers.push_back(
        Transfer{f.src, f.dst, Bytes{f.bytes}, begin, Seconds{0}});
  run_network(transfers, t);

  const auto n = static_cast<std::size_t>(cluster_.size());
  std::vector<Seconds> done(n, begin);
  for (const Transfer& tr : transfers) {
    done[static_cast<std::size_t>(tr.src)] =
        std::max(done[static_cast<std::size_t>(tr.src)], tr.finish_time);
    done[static_cast<std::size_t>(tr.dst)] =
        std::max(done[static_cast<std::size_t>(tr.dst)], tr.finish_time);
  }
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(done[k], SpanKind::kMigrate);
  return horizon() - begin;
}

StepCost EventExecutor::advance(const PartitionResult& r, Seconds t,
                                int iteration) {
  const auto n = static_cast<std::size_t>(cluster_.size());
  const std::vector<Seconds> comp = exec_.compute_times(r, t);
  SSAMR_REQUIRE(comp.size() == n, "partition arity must match cluster size");

  // Compute spans start at each rank's own clock (asynchronous steps).
  std::vector<Seconds> compute_start(n, Seconds{0});
  std::vector<Seconds> compute_end(n, Seconds{0});
  for (std::size_t k = 0; k < n; ++k) {
    RankTimeline& lane = lanes_[k];
    compute_start[k] = lane.now();
    lane.advance(lane.now() + comp[k], SpanKind::kCompute, iteration);
    compute_end[k] = lane.now();
  }

  // Ghost exchange: SAMR runtimes update boundary regions first and post
  // asynchronous sends while the interior computes, so a producer's ghost
  // data leaves after the non-overlappable fraction of its compute —
  // comm_overlap = 0 posts at compute end, 1 at compute start.  The
  // receiving rank still needs all its incoming messages before its next
  // span.  Transfers contend for endpoint bandwidth.
  const real_t overlap = exec_.config().comm_overlap.value();
  // The flow set is a pure function of the partition; between regrids the
  // partition is stable, so neighbor discovery runs once per partition
  // instead of once per iteration.
  if (!ghost_flows_valid_ || !(ghost_flows_key_ == r)) {
    ghost_flows_ = pairwise_comm_bytes(r, exec_.config().ghost,
                                       exec_.config().ncomp);
    ghost_flows_key_ = r;
    ghost_flows_valid_ = true;
  }
  const std::vector<RankFlow>& flows = ghost_flows_;
  std::vector<Transfer>& transfers = transfer_buf_;
  transfers.clear();
  transfers.reserve(flows.size());
  for (const RankFlow& f : flows) {
    const auto s = static_cast<std::size_t>(f.src);
    const Seconds post = compute_start[s] + (1.0 - overlap) * comp[s];
    transfers.push_back(
        Transfer{f.src, f.dst, Bytes{f.bytes}, post, Seconds{0}});
  }
  run_network(transfers, t);

  std::vector<Seconds> ready(compute_end);
  for (const Transfer& tr : transfers)
    ready[static_cast<std::size_t>(tr.dst)] =
        std::max(ready[static_cast<std::size_t>(tr.dst)], tr.finish_time);
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(ready[k], SpanKind::kComm, iteration);

  // Attribute the global advance to the critical rank's breakdown.
  std::size_t crit = 0;
  for (std::size_t k = 1; k < n; ++k)
    if (ready[k] > ready[crit]) crit = k;
  const Seconds elapsed = ready[crit] - t;
  const Seconds compute = std::min(comp[crit], elapsed);
  return StepCost{elapsed, compute, elapsed - compute};
}

void EventExecutor::finish(RunTrace& trace, Seconds t_end) {
  const auto n = static_cast<std::size_t>(cluster_.size());
  // The driver's clock re-rounds the stage deltas it accumulated, so it
  // can sit an ulp below the true lane horizon; never rewind a lane.
  const Seconds end = std::max(t_end, horizon());
  trace.rank_usage.clear();
  trace.spans.clear();
  for (std::size_t k = 0; k < n; ++k) {
    lanes_[k].advance(end, SpanKind::kIdle);  // run tail
    trace.rank_usage.push_back(lanes_[k].usage());
  }
  for (const RankTimeline& lane : lanes_)
    trace.spans.insert(trace.spans.end(), lane.spans().begin(),
                       lane.spans().end());
}

}  // namespace ssamr::sim

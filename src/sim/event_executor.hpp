#pragma once
/// \file event_executor.hpp
/// Message-level discrete-event execution model with per-rank timelines.
///
/// Where the BSP model charges max_k(compute + comm) to one global clock,
/// this model gives every rank its own virtual timeline and routes ghost
/// exchange and migration as explicit point-to-point transfers through the
/// fluid network simulation (message_sim.hpp), so three effects the
/// closed form cannot express become visible:
///
///  - endpoint contention: a rank's concurrent transfers share its
///    deliverable bandwidth instead of each seeing the full link;
///  - overlap: a rank posts its ghost sends when its compute span ends and
///    only waits for the messages it actually needs — communication hides
///    behind *other ranks'* still-running compute, and fast ranks start
///    the next iteration early instead of idling at a per-step barrier;
///  - sensing overlap: probe sweeps run on a separate monitor lane
///    concurrently with execution instead of being charged serially.
///
/// Regrid/repartition events are the only global barriers; barrier waits
/// surface as per-rank idle time in RunTrace::rank_usage.

#include <cstddef>
#include <vector>

#include "sim/event.hpp"
#include "sim/exec_model.hpp"
#include "sim/message_sim.hpp"
#include "sim/timeline.hpp"

namespace ssamr::sim {

class EventExecutor final : public ExecutionModel {
 public:
  /// Above this cluster size the fluid network runs on the indexed
  /// simulator (simulate_transfers_indexed): per-event cost O(deg · log E)
  /// instead of O(active).  Finish times then agree with the exact path to
  /// rounding but not bit-for-bit, so the threshold is set above every
  /// golden-pinned configuration (all use P ≤ 32).
  static constexpr int kIndexedSimRanks = 64;

  EventExecutor(const Cluster& cluster, const ExecutorConfig& cfg);

  std::string name() const override { return "event"; }
  Seconds sense(Seconds t, Seconds sweep_s, int iteration) override;
  Seconds regrid(Seconds t, std::size_t boxes, int iteration) override;
  Seconds migrate(const PartitionResult& previous, const PartitionResult& next,
                  Seconds t) override;
  StepCost advance(const PartitionResult& r, Seconds t,
                   int iteration) override;
  void finish(RunTrace& trace, Seconds t_end) override;
  const VirtualExecutor& costs() const override { return exec_; }

  /// Local clock of one rank (test access).
  Seconds rank_time(rank_t rank) const;

  /// Discrete network events processed so far (one admission + one
  /// completion per transfer that entered the fluid simulation).
  std::size_t events_processed() const { return events_; }

 private:
  /// Deliverable bandwidth of every rank at virtual time t.
  std::vector<MbitsPerSec> bandwidths_at(Seconds t) const;
  /// Latest local clock over all ranks (excludes the monitor lane).
  Seconds horizon() const;
  /// Run `transfers` through the fluid network at time-t bandwidths,
  /// choosing the exact or indexed simulator by cluster size and
  /// accumulating events_.
  void run_network(std::vector<Transfer>& transfers, Seconds t);

  const Cluster& cluster_;
  VirtualExecutor exec_;
  std::vector<RankTimeline> lanes_;  ///< ranks 0..n-1, monitor lane at n
  std::size_t events_ = 0;
  // Ghost-flow cache: the flow set depends only on the partition, which is
  // stable between regrids, so advance() recomputes it only when the
  // assignment actually changes (bit-exact comparison).
  PartitionResult ghost_flows_key_;
  std::vector<RankFlow> ghost_flows_;
  bool ghost_flows_valid_ = false;
  // Simulation scratch, reused across advance()/migrate() calls: at
  // P = 16384 one network step churns ~40 MB of simulator state, and
  // re-allocating it every iteration costs as much as a tenth of the
  // simulation itself in page faults alone.
  SimWorkspace net_ws_;
  std::vector<Transfer> transfer_buf_;
};

}  // namespace ssamr::sim

#pragma once
/// \file event_queue.hpp
/// Deterministic discrete-event queue for the virtual-cluster simulation.
///
/// A min-heap ordered by (time, insertion sequence): events at equal
/// virtual times pop in the order they were pushed, so a simulation driven
/// by this queue is bit-reproducible regardless of how the events were
/// generated.  Payloads are caller-defined (sim/event.hpp defines the
/// standard ones).

#include <algorithm>
#include <cstdint>
#include <queue>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Item {
    Seconds time{0};
    std::uint64_t seq = 0;
    Payload payload{};
  };

  /// Schedule `payload` at virtual time `time` (ties pop in push order).
  void push(Seconds time, Payload payload) {
    heap_.push(Item{time, next_seq_++, std::move(payload)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event.
  Seconds next_time() const {
    SSAMR_REQUIRE(!heap_.empty(), "next_time() on empty event queue");
    return heap_.top().time;
  }

  /// The earliest pending event without removing it.
  const Item& top() const {
    SSAMR_REQUIRE(!heap_.empty(), "top() on empty event queue");
    return heap_.top();
  }

  /// Remove and return the earliest pending event.
  Item pop() {
    SSAMR_REQUIRE(!heap_.empty(), "pop() on empty event queue");
    Item out = heap_.top();
    heap_.pop();
    return out;
  }

 private:
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Indexed min-heap of per-id deadlines with true decrease-key: each id
/// owns at most one entry, and a position map lets schedule() move an
/// existing entry in place instead of pushing a replacement and lazily
/// discarding the corpse.  For deadline-driven fluid simulations this is
/// decisive — a transfer's completion is re-timed many times before it
/// fires, and the lazy-invalidation alternative spends most of its heap
/// traffic surfacing and discarding stale entries.  Here the heap never
/// holds more than one entry per live id, the top is always valid, and
/// every operation is O(log live) — and because re-timings are small
/// nudges, the sifts average about one level in practice.
///
/// Entries order by (time, schedule sequence): re-scheduling an id stamps
/// it with a fresh sequence number, so ids scheduled for the same virtual
/// time pop in the order of their latest schedule() call and pop order is
/// bit-reproducible.
///
/// The 4-ary layout halves the levels of a binary heap and lets the four
/// children of a node share a cache line; the comparator is a total order
/// (seq breaks every tie), so arity never affects pop order.
class RetimableEventQueue {
 public:
  RetimableEventQueue() = default;

  /// `ids` bounds the id universe (ids are indices below this).
  explicit RetimableEventQueue(std::size_t ids) { reset(ids); }

  /// Empty the queue and re-bound the id universe, keeping the buffers'
  /// capacity (for workspace reuse across simulations).
  void reset(std::size_t ids) {
    heap_.clear();
    pos_.assign(ids, kAbsent);
    next_seq_ = 0;
  }

  /// Insert id's deadline, or move it if one is queued (either direction;
  /// equal-time moves order the id after entries already queued for that
  /// time, as a fresh push would).
  void schedule(Seconds time, std::size_t id) {
    const Item it{time, next_seq_++, static_cast<std::uint32_t>(id)};
    const std::uint32_t p = pos_[id];
    if (p == kAbsent) {
      heap_insert(it);
      return;
    }
    // One sift suffices, and the replaced entry tells the direction: a
    // not-later replacement still bounds the children from below (only an
    // upward violation is possible), a later one keeps the parent bound.
    const bool up = earlier(it, heap_[p]);
    heap_[p] = it;
    if (up)
      sift_up(p);
    else
      sift_down(p);
  }

  /// Drop id's entry if one is queued (no-op otherwise).
  void cancel(std::size_t id) {
    const std::uint32_t p = pos_[id];
    if (p == kAbsent) return;
    pos_[id] = kAbsent;
    heap_erase_unmapped(p);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Hint that `id` is about to be scheduled or cancelled: starts the
  /// position-map line toward the cache so the real operation does not
  /// stall on it.
  void prefetch(std::size_t id) const { __builtin_prefetch(&pos_[id]); }

  /// Second-stage hint: start the heap line holding `id`'s entry.  Only
  /// useful once the position-map line is resident (issue prefetch(id)
  /// far enough ahead), since the heap address depends on it.
  void prefetch_entry(std::size_t id) const {
    const std::uint32_t p = pos_[id];
    if (p != kAbsent) __builtin_prefetch(&heap_[p]);
  }

  /// Copy up to `k` ids from the front of the heap's array (level order,
  /// not sorted) into `out`, returning how many were written.  The heap's
  /// first nodes are the only candidates for the next few pops, so these
  /// serve as prefetch hints for per-id state the caller is about to
  /// touch.
  std::size_t front_ids(std::uint32_t* out, std::size_t k) const {
    const std::size_t m = std::min(k, heap_.size());
    for (std::size_t i = 0; i < m; ++i) out[i] = heap_[i].id;
    // Every pop moves the last entry into the hole; start its line too.
    if (m > 0) __builtin_prefetch(&heap_.back());
    return m;
  }

  /// Time of the earliest queued deadline.
  Seconds next_time() const {
    SSAMR_REQUIRE(!heap_.empty(), "next_time() on empty event queue");
    return heap_.front().time;
  }

  /// Remove and return the earliest deadline's id.
  std::size_t pop() {
    SSAMR_REQUIRE(!heap_.empty(), "pop() on empty event queue");
    const std::uint32_t id = heap_.front().id;
    pos_[id] = kAbsent;
    heap_erase_unmapped(0);
    return id;
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  static constexpr std::size_t kArity = 4;

  /// 16 bytes: u32 is ample — ids index one simulation's transfer array
  /// and seq counts schedule() calls within one run.
  struct Item {
    Seconds time{0};
    std::uint32_t seq = 0;
    std::uint32_t id = 0;
  };

  static bool earlier(const Item& a, const Item& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void heap_insert(const Item& it) {
    const auto p = static_cast<std::uint32_t>(heap_.size());
    heap_.push_back(it);
    pos_[it.id] = p;
    sift_up(p);
  }

  /// Remove heap_[p]; the id's pos_ entry must already be detached.
  void heap_erase_unmapped(std::uint32_t p) {
    const Item last = heap_.back();
    heap_.pop_back();
    if (p == heap_.size()) return;
    const bool up = earlier(last, heap_[p]);
    heap_[p] = last;
    pos_[last.id] = p;
    if (up)
      sift_up(p);
    else
      sift_down(p);
  }

  void sift_up(std::size_t i) {
    const Item x = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(x, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = x;
    pos_[x.id] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    const Item x = heap_[i];
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first = kArity * i + 1;
      if (first >= size) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + kArity, size);
      for (std::size_t c = first + 1; c < end; ++c)
        if (earlier(heap_[c], heap_[best])) best = c;
      if (!earlier(heap_[best], x)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = x;
    pos_[x.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Item> heap_;
  std::vector<std::uint32_t> pos_;  ///< id -> heap index, kAbsent if none
  std::uint32_t next_seq_ = 0;
};

}  // namespace ssamr::sim

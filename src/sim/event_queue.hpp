#pragma once
/// \file event_queue.hpp
/// Deterministic discrete-event queue for the virtual-cluster simulation.
///
/// A min-heap ordered by (time, insertion sequence): events at equal
/// virtual times pop in the order they were pushed, so a simulation driven
/// by this queue is bit-reproducible regardless of how the events were
/// generated.  Payloads are caller-defined (sim/event.hpp defines the
/// standard ones).

#include <cstdint>
#include <queue>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Item {
    Seconds time{0};
    std::uint64_t seq = 0;
    Payload payload{};
  };

  /// Schedule `payload` at virtual time `time` (ties pop in push order).
  void push(Seconds time, Payload payload) {
    heap_.push(Item{time, next_seq_++, std::move(payload)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event.
  Seconds next_time() const {
    SSAMR_REQUIRE(!heap_.empty(), "next_time() on empty event queue");
    return heap_.top().time;
  }

  /// Remove and return the earliest pending event.
  Item pop() {
    SSAMR_REQUIRE(!heap_.empty(), "pop() on empty event queue");
    Item out = heap_.top();
    heap_.pop();
    return out;
  }

 private:
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssamr::sim

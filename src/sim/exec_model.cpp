#include "sim/exec_model.hpp"

#include "sim/bsp_model.hpp"
#include "sim/event_executor.hpp"
#include "sim/proc_model.hpp"
#include "util/error.hpp"

namespace ssamr {

const char* exec_model_name(ExecModelKind kind) {
  switch (kind) {
    case ExecModelKind::kBsp: return "bsp";
    case ExecModelKind::kEvent: return "event";
    case ExecModelKind::kProc: return "proc";
  }
  return "unknown";
}

ExecModelKind parse_exec_model_name(const std::string& name) {
  if (name == "bsp") return ExecModelKind::kBsp;
  if (name == "event") return ExecModelKind::kEvent;
  if (name == "proc") return ExecModelKind::kProc;
  SSAMR_REQUIRE(
      false, "unknown execution model '" + name + "' (want bsp|event|proc)");
  return ExecModelKind::kBsp;  // unreachable
}

std::unique_ptr<ExecutionModel> make_execution_model(
    ExecModelKind kind, const Cluster& cluster, const ExecutorConfig& cfg) {
  switch (kind) {
    case ExecModelKind::kBsp:
      return std::make_unique<sim::BspModel>(cluster, cfg);
    case ExecModelKind::kEvent:
      return std::make_unique<sim::EventExecutor>(cluster, cfg);
    case ExecModelKind::kProc:
      return std::make_unique<sim::ProcModel>(cluster, cfg);
  }
  SSAMR_REQUIRE(false, "unknown execution model kind");
  return nullptr;  // unreachable
}

}  // namespace ssamr

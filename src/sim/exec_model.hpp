#pragma once
/// \file exec_model.hpp
/// The execution-model seam of the adaptive runtime.
///
/// AdaptiveRuntime::run() decides *what* happens — sense, adopt
/// capacities, partition, migrate, advance — and an ExecutionModel decides
/// *what it costs* on the virtual cluster.  Two implementations ship:
///
///  - BspModel (bsp_model.hpp): the closed-form BSP accounting extracted
///    from the original runtime loop, bit-identical to it.  Every stage is
///    charged serially to one global clock; an iteration costs
///    max_k(compute_k + visible_comm_k).
///  - EventExecutor (event_executor.hpp): a message-level discrete-event
///    simulation with one virtual timeline per rank.  Ghost exchange and
///    migration travel as explicit point-to-point transfers through the
///    fluid network simulation (endpoint bandwidth contention), probe
///    sweeps overlap execution on a separate monitor lane, and regrids are
///    the only global barriers.
///  - ProcModel (proc_model.hpp): real forked OS processes — one per
///    rank — exchanging framed ghost/migration traffic over Unix-domain
///    sockets and reporting measured wall-clock back as normalized
///    virtual time.  Nondeterministic by construction; never golden-pinned.
///
/// All models expose the same stage interface; each stage returns the
/// virtual time it adds to the driver's global clock.

#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "partition/partitioner.hpp"
#include "sim/executor.hpp"
#include "sim/trace.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// Which execution model a run uses.
enum class ExecModelKind {
  kBsp,    ///< closed-form BSP accounting (the paper's model; default)
  kEvent,  ///< message-level discrete-event simulation
  kProc,   ///< real forked rank processes over local sockets (measured)
};

/// "bsp" / "event" / "proc".
const char* exec_model_name(ExecModelKind kind);

/// Parse a model name ("bsp"/"event"/"proc"); throws ssamr::Error on
/// anything else, naming the valid spellings.
ExecModelKind parse_exec_model_name(const std::string& name);

/// Cost of one coarse-iteration advance as charged to the global clock.
struct StepCost {
  Seconds elapsed{0};  ///< global virtual-time advance
  Seconds compute{0};  ///< part attributed to computation
  Seconds comm{0};     ///< part attributed to visible communication

  bool operator==(const StepCost&) const = default;
};

/// Prices the runtime's stages on the virtual cluster.
class ExecutionModel {
 public:
  virtual ~ExecutionModel() = default;

  /// Model identifier recorded in RunTrace::model.
  virtual std::string name() const = 0;

  /// A probe sweep of duration `sweep_s` issued at global time t.  Returns
  /// the global-clock charge (BSP: sweep_s, serial; event model: 0, the
  /// sweep overlaps execution on the monitor lane).
  virtual Seconds sense(Seconds t, Seconds sweep_s, int iteration) = 0;

  /// Regrid + repartition work over `boxes` composite boxes at time t
  /// (a barrier in the event model).
  virtual Seconds regrid(Seconds t, std::size_t boxes,
                         int iteration) = 0;

  /// Data migration from `previous` to `next` ownership, starting at the
  /// pre-regrid global time t (`previous` empty = initial scatter).
  virtual Seconds migrate(const PartitionResult& previous,
                          const PartitionResult& next, Seconds t) = 0;

  /// One coarse iteration over assignment `r` starting at global time t.
  virtual StepCost advance(const PartitionResult& r, Seconds t,
                           int iteration) = 0;

  /// Fill the model-specific RunTrace extensions (rank usage, spans) once
  /// the driver loop is done; `t_end` is the final global time.
  virtual void finish(RunTrace& trace, Seconds t_end) = 0;

  /// The closed-form cost library both models share (memory footprints,
  /// per-rank rates, migration volumes).
  virtual const VirtualExecutor& costs() const = 0;
};

/// Build the requested model over `cluster` with cost knobs `cfg`.
/// The cluster must outlive the model.
std::unique_ptr<ExecutionModel> make_execution_model(ExecModelKind kind,
                                                     const Cluster& cluster,
                                                     const ExecutorConfig& cfg);

}  // namespace ssamr

#include "sim/executor.hpp"

#include <algorithm>

#include "sim/executor_audit.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

VirtualExecutor::VirtualExecutor(const Cluster& cluster, ExecutorConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  const audit::AuditReport report =
      audit::validate_executor_config(cfg);
  SSAMR_REQUIRE(report.ok(), report.summary());
}

MegaBytes VirtualExecutor::memory_demand_mb(const PartitionResult& r,
                                            rank_t rank) const {
  std::int64_t cells = 0;
  for (const BoxAssignment& a : r.assignments)
    if (a.owner == rank) cells += a.box.cells();
  const real_t bytes = static_cast<real_t>(cells) * cfg_.ncomp *
                       cfg_.bytes_per_value * cfg_.time_levels;
  return cfg_.app_base_memory_mb + MegaBytes{bytes / 1.0e6};
}

std::vector<Seconds> VirtualExecutor::compute_times(const PartitionResult& r,
                                                    Seconds t) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  SSAMR_REQUIRE(r.assigned_work.size() == n,
                "partition arity must match cluster size");
  // Ranks are evaluated independently (each scans the assignment list for
  // its own memory footprint), each writing only its own slot.
  std::vector<Seconds> out(n, Seconds{0});
  ThreadPool::global().parallel_for(n, [&](std::size_t k) {
    const auto rank = static_cast<rank_t>(k);
    const MegaBytes mem = memory_demand_mb(r, rank);
    // A transiently crashed node pauses: work assigned to it waits out the
    // episode and resumes at rejoin rate, rather than "progressing" at the
    // availability floor (which would price one iteration at ~1000× its
    // real cost).  Without a fault plan resume == t and nothing changes.
    const Seconds resume = cluster_.resume_time(rank, t);
    WorkRate rate = cluster_.effective_rate(rank, resume, mem);
    rate *= (1.0 - cfg_.monitor_intrusion_cpu.value());
    out[k] = Work{r.assigned_work[k]} / std::max(rate, WorkRate{1e-9});
    if (r.assigned_work[k] > 0) out[k] += resume - t;
  });
  return out;
}

std::vector<Seconds> VirtualExecutor::comm_times(const PartitionResult& r,
                                                 Seconds t) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  // rank_comm_bytes is O(assignments²) per rank — the dominant cost here —
  // and ranks are independent, so evaluate them in parallel.
  std::vector<Seconds> out(n, Seconds{0});
  ThreadPool::global().parallel_for(n, [&](std::size_t k) {
    const auto rank = static_cast<rank_t>(k);
    const Bytes bytes{rank_comm_bytes(r, rank, cfg_.ghost, cfg_.ncomp)};
    // Price traffic at the node's rejoin-time bandwidth (the compute side
    // already charges the crash pause; a down node's bandwidth floor would
    // double-charge it as absurd transfer times).
    const NodeState s = cluster_.state_at(rank, cluster_.resume_time(rank, t));
    out[k] = cluster_.network().exchange_time(bytes, s.bandwidth_mbps);
  });
  return out;
}

std::vector<Seconds> VirtualExecutor::effective_comm_times(
    const PartitionResult& r, Seconds t) const {
  auto comm = comm_times(r, t);
  const real_t visible = 1.0 - cfg_.comm_overlap.value();
  for (Seconds& c : comm) c *= visible;
  return comm;
}

Seconds VirtualExecutor::iteration_time(const PartitionResult& r,
                                        Seconds t) const {
  const auto comp = compute_times(r, t);
  const auto comm = effective_comm_times(r, t);
  Seconds worst{0};
  for (std::size_t k = 0; k < comp.size(); ++k)
    worst = std::max(worst, comp[k] + comm[k]);
  return worst;
}

Seconds VirtualExecutor::regrid_time(std::size_t boxes) const {
  return cfg_.regrid_cost_base_s +
         cfg_.regrid_cost_per_box_s * static_cast<real_t>(boxes);
}

Seconds VirtualExecutor::partition_time(std::size_t boxes) const {
  return cfg_.partition_cost_per_box_s * static_cast<real_t>(boxes);
}

Bytes VirtualExecutor::migration_bytes(const PartitionResult& previous,
                                       const PartitionResult& next,
                                       rank_t rank) const {
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(cfg_.ncomp) * cfg_.bytes_per_value;
  std::int64_t total = 0;
  if (previous.assignments.empty()) {
    // Initial scatter from rank 0.
    for (const BoxAssignment& a : next.assignments) {
      if (a.owner == rank && rank != 0)
        total += a.box.cells() * cell_bytes;
      if (rank == 0 && a.owner != 0) total += a.box.cells() * cell_bytes;
    }
    return Bytes{total};
  }
  for (const BoxAssignment& nb : next.assignments) {
    for (const BoxAssignment& ob : previous.assignments) {
      if (nb.box.level() != ob.box.level()) continue;
      if (nb.owner == ob.owner) continue;
      const Box overlap = nb.box.intersection(ob.box);
      if (overlap.empty()) continue;
      // Cells moving from ob.owner to nb.owner touch both endpoints.
      if (ob.owner == rank || nb.owner == rank)
        total += overlap.cells() * cell_bytes;
    }
  }
  return Bytes{total};
}

std::vector<RankFlow> VirtualExecutor::migration_flows(
    const PartitionResult& previous, const PartitionResult& next) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  std::vector<std::int64_t> bytes(n * n, 0);
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(cfg_.ncomp) * cfg_.bytes_per_value;
  auto add = [&](rank_t src, rank_t dst, std::int64_t b) {
    SSAMR_REQUIRE(src >= 0 && static_cast<std::size_t>(src) < n &&
                      dst >= 0 && static_cast<std::size_t>(dst) < n,
                  "owner out of range");
    bytes[static_cast<std::size_t>(src) * n +
          static_cast<std::size_t>(dst)] += b;
  };
  if (previous.assignments.empty()) {
    // Initial scatter from rank 0.
    for (const BoxAssignment& a : next.assignments)
      if (a.owner != 0) add(0, a.owner, a.box.cells() * cell_bytes);
  } else {
    for (const BoxAssignment& nb : next.assignments)
      for (const BoxAssignment& ob : previous.assignments) {
        if (nb.box.level() != ob.box.level()) continue;
        if (nb.owner == ob.owner) continue;
        const Box overlap = nb.box.intersection(ob.box);
        if (overlap.empty()) continue;
        add(ob.owner, nb.owner, overlap.cells() * cell_bytes);
      }
  }
  std::vector<RankFlow> flows;
  for (std::size_t s = 0; s < n; ++s)
    for (std::size_t d = 0; d < n; ++d)
      if (bytes[s * n + d] > 0)
        flows.push_back({static_cast<rank_t>(s), static_cast<rank_t>(d),
                         bytes[s * n + d]});
  return flows;
}

Seconds VirtualExecutor::migration_time(const PartitionResult& previous,
                                        const PartitionResult& next,
                                        Seconds t) const {
  // migration_bytes is O(|previous| · |next|) per rank; the max over ranks
  // is combined in fixed rank order (bit-identical to the serial loop).
  return ThreadPool::global().transform_reduce_ordered(
      static_cast<std::size_t>(cluster_.size()), Seconds{0},
      [&](std::size_t k) {
        const auto rank = static_cast<rank_t>(k);
        const Bytes bytes = migration_bytes(previous, next, rank);
        const NodeState s =
            cluster_.state_at(rank, cluster_.resume_time(rank, t));
        return cluster_.network().exchange_time(bytes, s.bandwidth_mbps);
      },
      [](Seconds a, Seconds b) { return std::max(a, b); });
}

}  // namespace ssamr

#include "sim/executor.hpp"

#include <algorithm>

#include "sim/executor_audit.hpp"
#include "util/audit.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {

VirtualExecutor::VirtualExecutor(const Cluster& cluster, ExecutorConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  const audit::AuditReport report =
      audit::validate_executor_config(cfg);
  SSAMR_REQUIRE(report.ok(), report.summary());
}

MegaBytes VirtualExecutor::memory_from_cells(std::int64_t cells) const {
  const real_t bytes = static_cast<real_t>(cells) * cfg_.ncomp *
                       cfg_.bytes_per_value * cfg_.time_levels;
  return cfg_.app_base_memory_mb + MegaBytes{bytes / 1.0e6};
}

MegaBytes VirtualExecutor::memory_demand_mb(const PartitionResult& r,
                                            rank_t rank) const {
  std::int64_t cells = 0;
  for (const BoxAssignment& a : r.assignments)
    if (a.owner == rank) cells += a.box.cells();
  return memory_from_cells(cells);
}

std::vector<Seconds> VirtualExecutor::compute_times(const PartitionResult& r,
                                                    Seconds t) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  SSAMR_REQUIRE(r.assigned_work.size() == n,
                "partition arity must match cluster size");
  // One O(|assignments|) pass scatters the resident cells to their ranks
  // (the historical per-rank rescans were O(N·P)); integer accumulation,
  // so the per-rank totals — and the memory model fed from them — match
  // memory_demand_mb bit for bit.
  std::vector<std::int64_t> cells(n, 0);
  for (const BoxAssignment& a : r.assignments)
    if (a.owner >= 0 && static_cast<std::size_t>(a.owner) < n)
      cells[static_cast<std::size_t>(a.owner)] += a.box.cells();
  std::vector<Seconds> out(n, Seconds{0});
  ThreadPool::global().parallel_for(n, [&](std::size_t k) {
    const auto rank = static_cast<rank_t>(k);
    const MegaBytes mem = memory_from_cells(cells[k]);
    // A transiently crashed node pauses: work assigned to it waits out the
    // episode and resumes at rejoin rate, rather than "progressing" at the
    // availability floor (which would price one iteration at ~1000× its
    // real cost).  Without a fault plan resume == t and nothing changes.
    const Seconds resume = cluster_.resume_time(rank, t);
    WorkRate rate = cluster_.effective_rate(rank, resume, mem);
    rate *= (1.0 - cfg_.monitor_intrusion_cpu.value());
    out[k] = Work{r.assigned_work[k]} / std::max(rate, WorkRate{1e-9});
    if (r.assigned_work[k] > 0) out[k] += resume - t;
  });
  return out;
}

std::vector<Seconds> VirtualExecutor::comm_times(const PartitionResult& r,
                                                 Seconds t) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  // One flow extraction (local-view neighbor discovery, O(N log N)) and an
  // integer incident-sum per rank reproduce every rank_comm_bytes value —
  // flow bytes are cells × cell_bytes, so the incident sums factor exactly.
  // The historical per-rank rescans were O(N²·P).
  std::vector<std::int64_t> incident(n, 0);
  for (const RankFlow& f : pairwise_comm_bytes(r, cfg_.ghost, cfg_.ncomp)) {
    if (f.src >= 0 && static_cast<std::size_t>(f.src) < n)
      incident[static_cast<std::size_t>(f.src)] += f.bytes;
    if (f.dst >= 0 && static_cast<std::size_t>(f.dst) < n)
      incident[static_cast<std::size_t>(f.dst)] += f.bytes;
  }
  std::vector<Seconds> out(n, Seconds{0});
  ThreadPool::global().parallel_for(n, [&](std::size_t k) {
    const auto rank = static_cast<rank_t>(k);
    // Price traffic at the node's rejoin-time bandwidth (the compute side
    // already charges the crash pause; a down node's bandwidth floor would
    // double-charge it as absurd transfer times).
    const NodeState s = cluster_.state_at(rank, cluster_.resume_time(rank, t));
    out[k] = cluster_.network().exchange_time(Bytes{incident[k]},
                                              s.bandwidth_mbps);
  });
  return out;
}

std::vector<Seconds> VirtualExecutor::effective_comm_times(
    const PartitionResult& r, Seconds t) const {
  auto comm = comm_times(r, t);
  const real_t visible = 1.0 - cfg_.comm_overlap.value();
  for (Seconds& c : comm) c *= visible;
  return comm;
}

Seconds VirtualExecutor::iteration_time(const PartitionResult& r,
                                        Seconds t) const {
  const auto comp = compute_times(r, t);
  const auto comm = effective_comm_times(r, t);
  Seconds worst{0};
  for (std::size_t k = 0; k < comp.size(); ++k)
    worst = std::max(worst, comp[k] + comm[k]);
  return worst;
}

Seconds VirtualExecutor::regrid_time(std::size_t boxes) const {
  return cfg_.regrid_cost_base_s +
         cfg_.regrid_cost_per_box_s * static_cast<real_t>(boxes);
}

Seconds VirtualExecutor::partition_time(std::size_t boxes) const {
  return cfg_.partition_cost_per_box_s * static_cast<real_t>(boxes);
}

Bytes VirtualExecutor::migration_bytes(const PartitionResult& previous,
                                       const PartitionResult& next,
                                       rank_t rank) const {
  // Cells moving between owners touch both endpoints but are counted once
  // per flow, so the rank's volume is its incident flow sum.
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(cfg_.ncomp) * cfg_.bytes_per_value;
  std::int64_t total = 0;
  for (const RankFlow& f :
       ownership_transfer_flows(previous, next, cell_bytes))
    if (f.src == rank || f.dst == rank) total += f.bytes;
  return Bytes{total};
}

std::vector<RankFlow> VirtualExecutor::migration_flows(
    const PartitionResult& previous, const PartitionResult& next) const {
  const auto n = static_cast<std::size_t>(cluster_.size());
  const std::int64_t cell_bytes =
      static_cast<std::int64_t>(cfg_.ncomp) * cfg_.bytes_per_value;
  std::vector<RankFlow> flows =
      ownership_transfer_flows(previous, next, cell_bytes);
  for (const RankFlow& f : flows)
    SSAMR_REQUIRE(f.src >= 0 && static_cast<std::size_t>(f.src) < n &&
                      f.dst >= 0 && static_cast<std::size_t>(f.dst) < n,
                  "owner out of range");
  return flows;
}

Seconds VirtualExecutor::migration_time(const PartitionResult& previous,
                                        const PartitionResult& next,
                                        Seconds t) const {
  // One flow extraction, integer incident sums per rank (identical to the
  // historical per-rank migration_bytes rescans), then the max over ranks
  // combined in fixed rank order (bit-identical to the serial loop).
  const auto n = static_cast<std::size_t>(cluster_.size());
  std::vector<std::int64_t> incident(n, 0);
  for (const RankFlow& f : migration_flows(previous, next)) {
    incident[static_cast<std::size_t>(f.src)] += f.bytes;
    if (f.dst != f.src) incident[static_cast<std::size_t>(f.dst)] += f.bytes;
  }
  return ThreadPool::global().transform_reduce_ordered(
      n, Seconds{0},
      [&](std::size_t k) {
        const auto rank = static_cast<rank_t>(k);
        const NodeState s =
            cluster_.state_at(rank, cluster_.resume_time(rank, t));
        return cluster_.network().exchange_time(Bytes{incident[k]},
                                                s.bandwidth_mbps);
      },
      [](Seconds a, Seconds b) { return std::max(a, b); });
}

}  // namespace ssamr

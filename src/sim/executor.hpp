#pragma once
/// \file executor.hpp
/// The virtual-time execution model (DESIGN.md §2, substitution for the
/// physical cluster): BSP accounting of one SAMR coarse timestep on the
/// simulated heterogeneous cluster.
///
/// Per coarse step:
///   T_step = max_k [ W_k / R_k(t) + T_comm,k(t) ]
/// where R_k(t) is node k's effective compute rate (peak · CPU availability
/// · (1 − monitor intrusion), degraded on memory over-commit) and T_comm,k
/// its ghost-exchange time.  Regridding, repartitioning, data migration and
/// sensing are charged separately by the runtime driver.

#include <vector>

#include "cluster/cluster.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioner.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// Knobs of the proc backend (real forked rank processes;
/// sim/proc_model.hpp).  Struct fields, not a cost API: these map virtual
/// quantities onto wall-clock emulation budgets.
struct ProcOptions {
  /// Wall seconds of nanosleep per virtual second of modeled compute.
  /// The default compresses Table I-sized runs (hundreds of virtual
  /// seconds) into wall milliseconds per phase while staying far above
  /// scheduler quantum noise.
  double time_scale = 1e-3;
  /// Wire bytes actually shipped per modeled byte of ghost/migration
  /// traffic (1.0 = byte-for-byte over the sockets).
  double bytes_scale = 1.0;
  /// Per-message deadline on every data-plane frame and phase exchange.
  double frame_timeout_s = 30.0;
  /// Use loopback TCP instead of AF_UNIX socketpairs.
  bool use_tcp = false;

  /// The sanctioned normalization seam between measured wall clock and the
  /// virtual timeline: every wall measurement that feeds a RankTimeline,
  /// RunTrace or CSV column must pass through here (the determinism-taint
  /// lint rule keys on this name), so the only way real time enters a
  /// golden-pinned artifact is already divided by time_scale.  The raw
  /// double parameter is the point: measured wall seconds are untyped
  /// until this conversion stamps them as virtual Seconds.
  // ssamr-lint: allow(raw-double-cost-api)
  Seconds to_virtual(double wall_s) const {
    return Seconds{wall_s / time_scale};
  }
};

/// Cost-model knobs.
struct ExecutorConfig {
  /// Fixed regrid overhead per regrid event (flagging + clustering).
  Seconds regrid_cost_base_s{0.05};
  /// Additional regrid cost per composite box.
  Seconds regrid_cost_per_box_s{0.002};
  /// Partitioner cost per box (sorting + splitting).
  Seconds partition_cost_per_box_s{0.0005};
  /// Application base memory footprint per rank.
  MegaBytes app_base_memory_mb{24.0};
  /// Field components (for ghost/migration byte counts).
  int ncomp = 5;
  /// Ghost width (for comm volume).
  coord_t ghost = 2;
  /// Bytes per cell per component per time level.
  int bytes_per_value = 8;
  /// Time levels held in memory.
  int time_levels = 2;
  /// CPU fraction stolen by the resource monitor on every node.
  Fraction monitor_intrusion_cpu{0.02};
  /// Fraction of ghost-exchange time hidden behind interior computation
  /// (SAMR runtimes post asynchronous sends while updating the interior).
  Fraction comm_overlap{0.7};
  /// Proc-backend knobs (ignored by the bsp/event models).
  ProcOptions proc;
};

/// Computes virtual-time costs of executing a partitioned SAMR hierarchy.
class VirtualExecutor {
 public:
  VirtualExecutor(const Cluster& cluster, ExecutorConfig cfg);

  /// Memory demand of a rank under an assignment.
  MegaBytes memory_demand_mb(const PartitionResult& r, rank_t rank) const;

  /// Time of one coarse iteration starting at virtual time t.
  Seconds iteration_time(const PartitionResult& r, Seconds t) const;

  /// Per-rank compute time of one iteration at time t (test access).
  std::vector<Seconds> compute_times(const PartitionResult& r,
                                     Seconds t) const;

  /// Per-rank raw (un-overlapped) communication time of one iteration.
  std::vector<Seconds> comm_times(const PartitionResult& r, Seconds t) const;

  /// Per-rank communication time after overlap with computation:
  /// (1 − comm_overlap) · raw.
  std::vector<Seconds> effective_comm_times(const PartitionResult& r,
                                            Seconds t) const;

  /// Cost of a regrid event for a composite list of `boxes` boxes.
  Seconds regrid_time(std::size_t boxes) const;

  /// Cost of running the partitioner on `boxes` boxes.
  Seconds partition_time(std::size_t boxes) const;

  /// Time to migrate data between two assignments (cells whose owner
  /// changed, slowest-rank transfer under current bandwidths at time t).
  /// `previous` may be empty (initial distribution: charged as a scatter
  /// from rank 0).
  Seconds migration_time(const PartitionResult& previous,
                         const PartitionResult& next, Seconds t) const;

  /// Bytes rank `rank` sends+receives when moving from `previous` to
  /// `next`.
  Bytes migration_bytes(const PartitionResult& previous,
                        const PartitionResult& next, rank_t rank) const;

  /// Directed per-pair migration traffic from `previous` to `next`
  /// ownership, sorted by (src, dst) with zero flows omitted (`previous`
  /// empty = initial scatter from rank 0).  The flows incident to a rank
  /// sum to migration_bytes for that rank.
  std::vector<RankFlow> migration_flows(const PartitionResult& previous,
                                        const PartitionResult& next) const;

  const ExecutorConfig& config() const { return cfg_; }

 private:
  /// The memory model of memory_demand_mb for a known resident cell count
  /// (one shared expression so the batched and per-rank paths stay
  /// bit-identical).
  MegaBytes memory_from_cells(std::int64_t cells) const;

  const Cluster& cluster_;
  ExecutorConfig cfg_;
};

}  // namespace ssamr

#include "sim/executor_audit.hpp"

#include <cmath>
#include <string>

#include "sim/proc_model.hpp"

namespace ssamr::audit {

namespace {

/// `!(v >= 0)` rather than `v < 0`: the former also rejects NaN.
bool nonneg(real_t v) { return v >= 0 && std::isfinite(v); }

/// Finite and strictly positive (rejects NaN, infinities, zero).
bool positive(real_t v) { return v > 0 && std::isfinite(v); }

void require_nonneg(AuditReport& r, const char* check, const char* knob,
                    real_t v) {
  if (!nonneg(v))
    r.add(Severity::Error, check, "",
          std::string(knob) + " = " + std::to_string(v) +
              " must be finite and >= 0");
}

}  // namespace

AuditReport validate_executor_config(const ExecutorConfig& cfg,
                                     const AuditConfig& /*audit_cfg*/) {
  AuditReport r("executor-config");
  require_nonneg(r, "executor.regrid_cost", "regrid_cost_base_s",
                 cfg.regrid_cost_base_s.value());
  require_nonneg(r, "executor.regrid_cost", "regrid_cost_per_box_s",
                 cfg.regrid_cost_per_box_s.value());
  require_nonneg(r, "executor.partition_cost", "partition_cost_per_box_s",
                 cfg.partition_cost_per_box_s.value());
  require_nonneg(r, "executor.app_memory", "app_base_memory_mb",
                 cfg.app_base_memory_mb.value());
  if (cfg.ncomp < 1)
    r.add(Severity::Error, "executor.ncomp", "",
          "ncomp = " + std::to_string(cfg.ncomp) + " must be >= 1");
  if (cfg.ghost < 0)
    r.add(Severity::Error, "executor.ghost", "",
          "ghost = " + std::to_string(cfg.ghost) + " must be >= 0");
  if (cfg.bytes_per_value < 1)
    r.add(Severity::Error, "executor.bytes_per_value", "",
          "bytes_per_value = " + std::to_string(cfg.bytes_per_value) +
              " must be >= 1");
  if (cfg.time_levels < 1)
    r.add(Severity::Error, "executor.time_levels", "",
          "time_levels = " + std::to_string(cfg.time_levels) +
              " must be >= 1");
  if (!(cfg.monitor_intrusion_cpu >= Fraction{0}) ||
      !(cfg.monitor_intrusion_cpu < Fraction{1}))
    r.add(Severity::Error, "executor.monitor_intrusion", "",
          "monitor_intrusion_cpu = " +
              std::to_string(cfg.monitor_intrusion_cpu.value()) +
              " must lie in [0, 1)");
  if (!(cfg.comm_overlap >= Fraction{0}) || !(cfg.comm_overlap <= Fraction{1}))
    r.add(Severity::Error, "executor.comm_overlap", "",
          "comm_overlap = " + std::to_string(cfg.comm_overlap.value()) +
              " must lie in [0, 1]");
  return r;
}

AuditReport validate_proc_options(const ProcOptions& opt, int nranks,
                                  const AuditConfig& /*audit_cfg*/) {
  AuditReport r("proc-options");
  if (!positive(opt.time_scale))
    r.add(Severity::Error, "proc.time_scale", "",
          "time_scale = " + std::to_string(opt.time_scale) +
              " must be finite and > 0 (it divides every measured wall "
              "span)");
  if (!nonneg(opt.bytes_scale))
    r.add(Severity::Error, "proc.bytes_scale", "",
          "bytes_scale = " + std::to_string(opt.bytes_scale) +
              " must be finite and >= 0");
  if (!positive(opt.frame_timeout_s))
    r.add(Severity::Error, "proc.frame_timeout", "",
          "frame_timeout_s = " + std::to_string(opt.frame_timeout_s) +
              " must be finite and > 0");
  if (nranks < 1 || nranks > sim::kMaxProcRanks)
    r.add(Severity::Error, "proc.ranks", "",
          "rank count " + std::to_string(nranks) + " outside [1, " +
              std::to_string(sim::kMaxProcRanks) + "]");
  return r;
}

}  // namespace ssamr::audit

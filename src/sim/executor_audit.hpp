#pragma once
/// \file executor_audit.hpp
/// Invariant audit of the execution-model cost knobs.

#include "sim/executor.hpp"
#include "util/audit.hpp"

namespace ssamr::audit {

/// Audit the execution-model cost knobs: all costs and footprints
/// non-negative and finite, ncomp/bytes_per_value/time_levels >= 1,
/// ghost >= 0, monitor intrusion in [0,1), comm_overlap in [0,1].
/// VirtualExecutor enforces this report at construction.
AuditReport validate_executor_config(const ExecutorConfig& cfg,
                                     const AuditConfig& audit_cfg = {});

/// Audit the proc-backend knobs for `nranks` forked ranks: time_scale
/// finite and > 0 (it divides every measured wall span), bytes_scale
/// finite and >= 0, frame_timeout_s finite and > 0, and nranks within
/// [1, sim::kMaxProcRanks].  ProcModel enforces this report at
/// construction.
AuditReport validate_proc_options(const ProcOptions& opt, int nranks,
                                  const AuditConfig& audit_cfg = {});

}  // namespace ssamr::audit

#include "sim/message_sim.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace ssamr::sim {

namespace {
/// Residual below which a transfer counts as drained (absolute bytes; the
/// exact-min completion below guarantees progress regardless).
constexpr real_t kDrainedBytes = 1e-6;
}  // namespace

namespace {

/// Deliverable endpoint capacities in bytes/s, floored like NetworkModel.
void endpoint_caps(const std::vector<MbitsPerSec>& deliverable_mbps,
                   std::vector<BytesPerSec>& cap) {
  cap.assign(deliverable_mbps.size(), BytesPerSec{0});
  for (std::size_t k = 0; k < cap.size(); ++k)
    cap[k] = to_bytes_per_sec(
        std::max(NetworkModel::kMinBandwidthMbps, deliverable_mbps[k]));
}

/// A transfer's entry into the shared-bandwidth phase.
using StartEvent = SimWorkspace::Entry;

/// Validate endpoints/sizes, finish the trivial transfers (zero bytes or
/// src == dst) at their post time, and list the rest at their network
/// entry time (post + one latency) in transfer order.
void admit_transfers(std::vector<Transfer>& transfers, std::size_t n,
                     const NetworkModel& net,
                     std::vector<StartEvent>& starts) {
  starts.clear();
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    Transfer& tr = transfers[i];
    SSAMR_REQUIRE(tr.src >= 0 && static_cast<std::size_t>(tr.src) < n &&
                      tr.dst >= 0 && static_cast<std::size_t>(tr.dst) < n,
                  "transfer endpoint out of range");
    SSAMR_REQUIRE(tr.bytes >= Bytes{0}, "negative transfer size");
    if (tr.bytes == Bytes{0} || tr.src == tr.dst) {
      tr.finish_time = tr.post_time;  // local/empty: free, like the
      continue;                       // closed-form model
    }
    // The per-message latency is charged exactly once, as a delayed entry
    // into the shared-bandwidth phase.
    starts.push_back({tr.post_time + net.latency_s,
                      static_cast<std::uint32_t>(i)});
  }
}

}  // namespace

std::size_t simulate_transfers(std::vector<Transfer>& transfers,
                               const std::vector<MbitsPerSec>& deliverable_mbps,
                               const NetworkModel& net) {
  const auto n = deliverable_mbps.size();
  std::vector<BytesPerSec> cap;
  endpoint_caps(deliverable_mbps, cap);

  EventQueue<std::size_t> starts;
  std::vector<real_t> remaining(transfers.size(), 0);
  std::vector<StartEvent> entries;
  admit_transfers(transfers, n, net, entries);
  for (const StartEvent& e : entries) {
    remaining[e.id] = static_cast<real_t>(transfers[e.id].bytes.value());
    starts.push(e.time, e.id);
  }
  std::size_t events = 0;

  // Indices of in-flight transfers, kept sorted ascending so every scan
  // visits transfers in the same order as the historical all-transfers
  // sweep: identical FP accumulation and min-ties, so finish times are
  // bit-identical — but each event step now costs O(active), not O(total).
  std::vector<std::size_t> active_list;
  active_list.reserve(transfers.size());
  // Full-duplex NICs: sends share the tx lane, receives the rx lane.
  std::vector<int> tx_degree(n, 0);
  std::vector<int> rx_degree(n, 0);
  std::vector<BytesPerSec> rate(transfers.size(), BytesPerSec{0});
  Seconds now{0};
  constexpr Seconds kInf{std::numeric_limits<real_t>::infinity()};

  while (!active_list.empty() || !starts.empty()) {
    if (active_list.empty()) now = std::max(now, starts.next_time());
    // Admit every transfer whose entry time has come.
    while (!starts.empty() && starts.next_time() <= now) {
      const std::size_t i = starts.pop().payload;
      active_list.insert(
          std::lower_bound(active_list.begin(), active_list.end(), i), i);
      ++tx_degree[static_cast<std::size_t>(transfers[i].src)];
      ++rx_degree[static_cast<std::size_t>(transfers[i].dst)];
      ++events;
    }
    // Piecewise-constant rates: each endpoint's capacity is split equally
    // among its active transfers; a transfer moves at the slower share.
    Seconds dt_finish = kInf;
    std::size_t first_done = transfers.size();
    for (const std::size_t i : active_list) {
      const auto s = static_cast<std::size_t>(transfers[i].src);
      const auto d = static_cast<std::size_t>(transfers[i].dst);
      rate[i] = net.efficiency *
                std::min(cap[s] / tx_degree[s], cap[d] / rx_degree[d]);
      const Seconds dt{remaining[i] / rate[i].value()};
      if (dt < dt_finish) {
        dt_finish = dt;
        first_done = i;
      }
    }
    const Seconds dt_start = starts.empty() ? kInf : starts.next_time() - now;
    const Seconds dt = std::min(dt_finish, dt_start);
    for (const std::size_t i : active_list)
      remaining[i] -= drained_bytes(rate[i], dt);
    now += dt;
    if (dt_finish <= dt_start) {
      // Retire everything drained this step (the exact minimum always is,
      // shielding the loop from round-off stalls).  Stable compaction keeps
      // the survivors in ascending order.
      std::size_t keep = 0;
      for (const std::size_t i : active_list) {
        if (i == first_done || remaining[i] <= kDrainedBytes) {
          --tx_degree[static_cast<std::size_t>(transfers[i].src)];
          --rx_degree[static_cast<std::size_t>(transfers[i].dst)];
          transfers[i].finish_time = now;
          ++events;
        } else {
          active_list[keep++] = i;
        }
      }
      active_list.resize(keep);
    }
  }
  return events;
}

std::size_t simulate_transfers_indexed(
    std::vector<Transfer>& transfers,
    const std::vector<MbitsPerSec>& deliverable_mbps, const NetworkModel& net) {
  SimWorkspace ws;
  return simulate_transfers_indexed(transfers, deliverable_mbps, net, ws);
}

std::size_t simulate_transfers_indexed(
    std::vector<Transfer>& transfers,
    const std::vector<MbitsPerSec>& deliverable_mbps, const NetworkModel& net,
    SimWorkspace& ws) {
  const auto n = deliverable_mbps.size();
  endpoint_caps(deliverable_mbps, ws.cap);
  const std::vector<BytesPerSec>& cap = ws.cap;

  // Admissions are known upfront, so they live in a flat list sorted by
  // entry time (stable: ties stay in transfer order, matching the event
  // queue the exact simulator uses) and drain through a cursor — no heap.
  admit_transfers(transfers, n, net, ws.starts);
  std::vector<StartEvent>& starts = ws.starts;
  std::stable_sort(starts.begin(), starts.end(),
                   [](const StartEvent& a, const StartEvent& b) {
                     return a.time < b.time;
                   });
  std::size_t next_start = 0;

  // Per-transfer fluid state, one packed 32-byte record each (see
  // SimWorkspace::Fluid).  fluid[i].rate < 0 marks an inactive (unadmitted
  // or retired) transfer; 0 marks an admitted transfer awaiting its first
  // share.
  using Fluid = SimWorkspace::Fluid;
  ws.fluid.resize(transfers.size());
  std::vector<Fluid>& fluid = ws.fluid;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const Transfer& tr = transfers[i];
    fluid[i] = Fluid{-1, static_cast<std::uint32_t>(tr.src),
                     static_cast<std::uint32_t>(tr.dst),
                     static_cast<real_t>(tr.bytes.value()), Seconds{0}};
  }
  // Per-endpoint lanes: ascending ids of the active transfers sending from
  // (tx) / receiving at (rx) each endpoint.  Full duplex, as above.
  // resize keeps surviving lanes' heap blocks; the per-lane clear keeps
  // their capacity, so steady-state reuse allocates nothing here.
  ws.tx_list.resize(n);
  ws.rx_list.resize(n);
  for (auto& v : ws.tx_list) v.clear();
  for (auto& v : ws.rx_list) v.clear();
  std::vector<std::vector<std::uint32_t>>& tx_list = ws.tx_list;
  std::vector<std::vector<std::uint32_t>>& rx_list = ws.rx_list;
  ws.tx_degree.assign(n, 0);
  ws.rx_degree.assign(n, 0);
  std::vector<int>& tx_degree = ws.tx_degree;
  std::vector<int>& rx_degree = ws.rx_degree;
  // Per-lane equal shares (efficiency · cap / degree), recomputed only for
  // lanes whose degree changed: two divisions per dirty lane instead of
  // two per affected transfer.  min(eff·a, eff·b) picks the same quotient
  // as eff·min(a, b), so rates are bit-identical to the direct form.
  ws.share_tx.assign(n, BytesPerSec{0});
  ws.share_rx.assign(n, BytesPerSec{0});
  std::vector<BytesPerSec>& share_tx = ws.share_tx;
  std::vector<BytesPerSec>& share_rx = ws.share_rx;
  ws.completions.reset(transfers.size());
  RetimableEventQueue& completions = ws.completions;
  std::size_t events = 0;
  std::size_t active_count = 0;
  Seconds now{0};

  const auto insert_sorted = [](std::vector<std::uint32_t>& v,
                                std::uint32_t i) {
    v.insert(std::lower_bound(v.begin(), v.end(), i), i);
  };
  const auto sort_unique = [](std::vector<std::size_t>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };

  // Lanes whose degree changed this event: the re-rate frontier.
  ws.pending_tx.clear();
  ws.pending_rx.clear();
  ws.cur_tx.clear();
  ws.cur_rx.clear();
  std::vector<std::size_t>& pending_tx = ws.pending_tx;
  std::vector<std::size_t>& pending_rx = ws.pending_rx;
  std::vector<std::size_t>& cur_tx = ws.cur_tx;
  std::vector<std::size_t>& cur_rx = ws.cur_rx;

  // Retirement is lazy with respect to the lane lists: the degree counters
  // (which price the shares) drop immediately, but the member id stays in
  // its lanes until the next re-rate visit compacts it out.  Eager removal
  // would memmove the lane tail twice per retirement and force the re-rate
  // pass to iterate a snapshot of the lanes instead of the lanes
  // themselves — copying every affected member id per round just to guard
  // against mid-pass erasure.
  // finish_time lands in the Fluid record first (`last` is exactly the
  // finish time once the final settle ran) and is copied out to the
  // transfer array in one sequential sweep at the end — retirements fire
  // in random id order, and scattering 8-byte writes across the transfer
  // array would cost a cold line each at large P.
  const auto retire = [&](std::uint32_t i, Fluid& f) {
    f.rate = -1;
    --active_count;
    completions.cancel(i);
    --tx_degree[f.src];
    --rx_degree[f.dst];
    pending_tx.push_back(f.src);
    pending_rx.push_back(f.dst);
    ++events;
  };

  while (active_count > 0 || next_start < starts.size()) {
    // Next event: earliest valid completion or admission.
    Seconds t_next = next_start < starts.size()
                         ? starts[next_start].time
                         : Seconds{std::numeric_limits<real_t>::infinity()};
    if (!completions.empty())
      t_next = std::min(t_next, completions.next_time());
    now = std::max(now, t_next);

    pending_tx.clear();
    pending_rx.clear();

    // Completions due now: their rate has been constant since `last`, so
    // the residual drains in one settle step.  The heap's front nodes are
    // the only candidates for these pops; start their state lines early.
    {
      std::uint32_t hint[5];
      const std::size_t m = completions.front_ids(hint, 5);
      for (std::size_t h = 0; h < m; ++h) __builtin_prefetch(&fluid[hint[h]]);
    }
    while (!completions.empty() && completions.next_time() <= now) {
      const auto i = static_cast<std::uint32_t>(completions.pop());
      Fluid& f = fluid[i];
      f.remaining -= drained_bytes(BytesPerSec{f.rate}, now - f.last);
      f.last = now;
      if (f.remaining <= kDrainedBytes) {
        retire(i, f);
        continue;
      }
      // The deadline was optimistic: the rate dropped after it was queued
      // (slowdowns never touch the heap).  Re-arm at the exact finish
      // under the rate in force; every slowdown since the last arm is
      // absorbed by this one re-timing.
      completions.schedule(now + Seconds{f.remaining / f.rate}, i);
    }
    // Admissions due now.
    while (next_start < starts.size() && starts[next_start].time <= now) {
      const std::uint32_t i = starts[next_start++].id;
      Fluid& f = fluid[i];
      f.rate = 0;
      f.last = now;
      ++active_count;
      insert_sorted(tx_list[f.src], i);
      insert_sorted(rx_list[f.dst], i);
      ++tx_degree[f.src];
      ++rx_degree[f.dst];
      pending_tx.push_back(f.src);
      pending_rx.push_back(f.dst);
      ++events;
    }

    // Re-rate one lane in place.  A member whose min-share is unchanged
    // needs nothing at all — its lazy residual stays consistent under a
    // constant rate and its queued deadline is still exact — so the common
    // case (the retiring lane was not the member's bottleneck) costs one
    // compare.  A member whose share moved settles under its old rate,
    // retires if it ran dry (touching more lanes, hence the fixpoint), or
    // re-arms its deadline at the new rate.  Members found retired — here
    // or by an earlier lane this round — compact out as the walk passes.
    const auto visit_lane = [&](std::vector<std::uint32_t>& lane) {
      // The caller prefetched this lane's fluid and position-map lines
      // before the previous lane's walk, so the data-dependent random
      // reads below mostly land in cache by the time the walk arrives.
      // With the position map now resident, the heap entries the walk's
      // re-schedules will move are addressable — second-stage prefetch.
      for (const std::uint32_t i : lane) completions.prefetch_entry(i);
      std::size_t keep = 0;
      for (std::size_t a = 0; a < lane.size(); ++a) {
        const std::uint32_t i = lane[a];
        Fluid& f = fluid[i];
        const real_t rate = f.rate;
        if (rate < 0) continue;  // retired: drop from the lane
        const BytesPerSec share = std::min(share_tx[f.src], share_rx[f.dst]);
        if (share.value() == rate) {
          lane[keep++] = i;
          continue;
        }
        f.remaining -= drained_bytes(BytesPerSec{rate}, now - f.last);
        f.last = now;
        if (f.remaining <= kDrainedBytes) {
          retire(i, f);
          continue;  // drop from this lane; its other lane compacts later
        }
        // A slowdown leaves the queued deadline in place: it is now early,
        // and the completion pass re-arms it on pop.  Only a speedup can
        // make the true finish precede the queued time, so only a speedup
        // pays for a decrease-key here.
        f.rate = share.value();
        if (share.value() > rate) {
          const Seconds dt{f.remaining / share.value()};
          completions.schedule(now + dt, i);
        }
        lane[keep++] = i;
      }
      lane.resize(keep);
    };

    // Re-rate fixpoint: recompute the touched lanes' equal shares, then
    // walk each touched lane.  Retirements discovered mid-pass queue their
    // lanes for the next round (pending_* are swapped out before the walk,
    // so the push is safe).  Processing order is ascending by lane then
    // id, so the pass is deterministic; a transfer whose lanes are both
    // touched needs no dedup — its first visit leaves rate equal to its
    // share (or retires it), so the revisit skips.
    while (!pending_tx.empty() || !pending_rx.empty()) {
      sort_unique(pending_tx);
      sort_unique(pending_rx);
      for (const std::size_t e : pending_tx)
        if (tx_degree[e] > 0)
          share_tx[e] = net.efficiency * (cap[e] / tx_degree[e]);
      for (const std::size_t e : pending_rx)
        if (rx_degree[e] > 0)
          share_rx[e] = net.efficiency * (cap[e] / rx_degree[e]);
      cur_tx.swap(pending_tx);
      cur_rx.swap(pending_rx);
      pending_tx.clear();
      pending_rx.clear();
      // Start the NEXT lane's lines while the current lane's walk runs:
      // each walk is long enough to hide most of its successor's misses.
      // (Lane lists are stable here — retirement is lazy — so reading
      // ahead is safe.)
      const auto prefetch_lane = [&](const std::vector<std::uint32_t>& lane) {
        for (const std::uint32_t i : lane) {
          __builtin_prefetch(&fluid[i]);
          completions.prefetch(i);
        }
      };
      if (!cur_tx.empty())
        prefetch_lane(tx_list[cur_tx.front()]);
      else if (!cur_rx.empty())
        prefetch_lane(rx_list[cur_rx.front()]);
      for (std::size_t x = 0; x < cur_tx.size(); ++x) {
        if (x + 1 < cur_tx.size())
          prefetch_lane(tx_list[cur_tx[x + 1]]);
        else if (!cur_rx.empty())
          prefetch_lane(rx_list[cur_rx.front()]);
        visit_lane(tx_list[cur_tx[x]]);
      }
      for (std::size_t x = 0; x < cur_rx.size(); ++x) {
        if (x + 1 < cur_rx.size()) prefetch_lane(rx_list[cur_rx[x + 1]]);
        visit_lane(rx_list[cur_rx[x]]);
      }
    }
  }
  // Deferred finish times: every admitted transfer has retired (the loop
  // above runs the system dry), with its finish time parked in `last`.
  for (const StartEvent& e : starts) {
    Transfer& tr = transfers[e.id];
    tr.finish_time = fluid[e.id].last;
  }
  return events;
}

}  // namespace ssamr::sim

#include "sim/message_sim.hpp"

#include <algorithm>
#include <limits>

#include "sim/event_queue.hpp"
#include "util/error.hpp"

namespace ssamr::sim {

namespace {
/// Residual below which a transfer counts as drained (absolute bytes; the
/// exact-min completion below guarantees progress regardless).
constexpr real_t kDrainedBytes = 1e-6;
}  // namespace

void simulate_transfers(std::vector<Transfer>& transfers,
                        const std::vector<MbitsPerSec>& deliverable_mbps,
                        const NetworkModel& net) {
  const auto n = deliverable_mbps.size();
  // Deliverable endpoint capacity in bytes/s, floored like NetworkModel.
  std::vector<BytesPerSec> cap(n, BytesPerSec{0});
  for (std::size_t k = 0; k < n; ++k)
    cap[k] = to_bytes_per_sec(
        std::max(NetworkModel::kMinBandwidthMbps, deliverable_mbps[k]));

  EventQueue<std::size_t> starts;
  std::vector<real_t> remaining(transfers.size(), 0);
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    Transfer& tr = transfers[i];
    SSAMR_REQUIRE(tr.src >= 0 && static_cast<std::size_t>(tr.src) < n &&
                      tr.dst >= 0 && static_cast<std::size_t>(tr.dst) < n,
                  "transfer endpoint out of range");
    SSAMR_REQUIRE(tr.bytes >= Bytes{0}, "negative transfer size");
    if (tr.bytes == Bytes{0} || tr.src == tr.dst) {
      tr.finish_time = tr.post_time;  // local/empty: free, like the
      continue;                       // closed-form model
    }
    remaining[i] = static_cast<real_t>(tr.bytes.value());
    // The per-message latency is charged exactly once, as a delayed entry
    // into the shared-bandwidth phase.
    starts.push(tr.post_time + net.latency_s, i);
  }

  // Indices of in-flight transfers, kept sorted ascending so every scan
  // visits transfers in the same order as the historical all-transfers
  // sweep: identical FP accumulation and min-ties, so finish times are
  // bit-identical — but each event step now costs O(active), not O(total).
  std::vector<std::size_t> active_list;
  active_list.reserve(transfers.size());
  // Full-duplex NICs: sends share the tx lane, receives the rx lane.
  std::vector<int> tx_degree(n, 0);
  std::vector<int> rx_degree(n, 0);
  std::vector<BytesPerSec> rate(transfers.size(), BytesPerSec{0});
  Seconds now{0};
  constexpr Seconds kInf{std::numeric_limits<real_t>::infinity()};

  while (!active_list.empty() || !starts.empty()) {
    if (active_list.empty()) now = std::max(now, starts.next_time());
    // Admit every transfer whose entry time has come.
    while (!starts.empty() && starts.next_time() <= now) {
      const std::size_t i = starts.pop().payload;
      active_list.insert(
          std::lower_bound(active_list.begin(), active_list.end(), i), i);
      ++tx_degree[static_cast<std::size_t>(transfers[i].src)];
      ++rx_degree[static_cast<std::size_t>(transfers[i].dst)];
    }
    // Piecewise-constant rates: each endpoint's capacity is split equally
    // among its active transfers; a transfer moves at the slower share.
    Seconds dt_finish = kInf;
    std::size_t first_done = transfers.size();
    for (const std::size_t i : active_list) {
      const auto s = static_cast<std::size_t>(transfers[i].src);
      const auto d = static_cast<std::size_t>(transfers[i].dst);
      rate[i] = net.efficiency *
                std::min(cap[s] / tx_degree[s], cap[d] / rx_degree[d]);
      const Seconds dt{remaining[i] / rate[i].value()};
      if (dt < dt_finish) {
        dt_finish = dt;
        first_done = i;
      }
    }
    const Seconds dt_start = starts.empty() ? kInf : starts.next_time() - now;
    const Seconds dt = std::min(dt_finish, dt_start);
    for (const std::size_t i : active_list)
      remaining[i] -= drained_bytes(rate[i], dt);
    now += dt;
    if (dt_finish <= dt_start) {
      // Retire everything drained this step (the exact minimum always is,
      // shielding the loop from round-off stalls).  Stable compaction keeps
      // the survivors in ascending order.
      std::size_t keep = 0;
      for (const std::size_t i : active_list) {
        if (i == first_done || remaining[i] <= kDrainedBytes) {
          --tx_degree[static_cast<std::size_t>(transfers[i].src)];
          --rx_degree[static_cast<std::size_t>(transfers[i].dst)];
          transfers[i].finish_time = now;
        } else {
          active_list[keep++] = i;
        }
      }
      active_list.resize(keep);
    }
  }
}

}  // namespace ssamr::sim

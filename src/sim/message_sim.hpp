#pragma once
/// \file message_sim.hpp
/// Fluid simulation of concurrent point-to-point transfers with endpoint
/// bandwidth contention.
///
/// The closed-form NetworkModel (cluster/network.hpp) prices one message
/// in isolation.  When a rank drives several transfers at once — ghost
/// exchanges with every neighbour, a migration fan-out — they share its
/// deliverable NIC bandwidth.  This simulator resolves that sharing with
/// the standard fluid model: at any instant a transfer progresses at
///
///   rate = efficiency · min(src_bw / src_sending, dst_bw / dst_receiving)
///
/// where k_sending counts the transfers currently leaving endpoint k and
/// k_receiving the transfers arriving at it.  NICs are full duplex: a
/// node's sends contend with each other and its receives with each other,
/// but the two directions ride independent lanes — a symmetric ghost
/// exchange costs the same as its one-way half, not double.
/// Rates are re-evaluated at every transfer start/finish (driven by a
/// deterministic EventQueue), so the result is exact for piecewise-
/// constant sharing and bit-reproducible.  One `latency_s` is charged per
/// message, exactly once, by delaying its network entry.  A transfer of
/// zero bytes completes at its post time, mirroring
/// NetworkModel::transfer_time.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/network.hpp"
#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr::sim {

/// Reusable scratch for simulate_transfers_indexed.  One simulation of
/// 400k transfers across 16k endpoints touches ~40 MB of working state
/// and tens of thousands of per-lane vectors; a caller that simulates
/// every iteration (the event executor) keeps one workspace alive so each
/// call pays a reset instead of an allocation storm — the buffers and the
/// lane vectors' capacities persist across calls.  The fields are the
/// simulator's internals, exposed only so they can outlive a call; treat
/// them as opaque.  Reuse never changes results: every field is fully
/// re-initialized per call.
struct SimWorkspace {
  struct Entry {
    Seconds time{0};
    std::uint32_t id = 0;
  };
  /// One transfer's entire fluid state, packed to half a cache line and
  /// aligned so it never straddles one.  The re-rate pass reads these in
  /// data-dependent random order over the whole transfer range; at
  /// P = 16384 that range is far past L2, so splitting rate, endpoints
  /// and residual across separate arrays costs up to three cold lines per
  /// visit where this layout costs one.
  struct alignas(32) Fluid {
    real_t rate = -1;    ///< <0 inactive, 0 awaiting first share
    std::uint32_t src = 0, dst = 0;
    real_t remaining = 0;
    Seconds last{0};
  };
  std::vector<BytesPerSec> cap;
  std::vector<Entry> starts;
  std::vector<Fluid> fluid;
  std::vector<std::vector<std::uint32_t>> tx_list, rx_list;
  std::vector<int> tx_degree, rx_degree;
  std::vector<BytesPerSec> share_tx, share_rx;
  RetimableEventQueue completions;
  std::vector<std::size_t> pending_tx, pending_rx, cur_tx, cur_rx;
};

/// Resolve `transfers` (post_time/bytes/src/dst set) against per-endpoint
/// deliverable bandwidths `deliverable_mbps`, filling every finish_time.
/// Endpoint indices must lie in [0, deliverable_mbps.size()).
/// Returns the discrete events processed (one admission + one completion
/// per transfer that actually enters the network; zero-byte and self
/// transfers complete at their post time without events).
///
/// Every event re-evaluates the rate of *every* in-flight transfer, so a
/// step costs O(active) — exact for ties and the historical bit-pattern,
/// but quadratic in the concurrent transfer count.
std::size_t simulate_transfers(std::vector<Transfer>& transfers,
                               const std::vector<MbitsPerSec>& deliverable_mbps,
                               const NetworkModel& net);

/// Same fluid model, indexed: per-endpoint incident lists localize each
/// event to the transfers sharing an endpoint with it, completions live in
/// a lazily-invalidated retimable heap, and in-flight residuals settle
/// lazily (`remaining -= rate · Δt`) when one of their endpoints changes
/// degree.  A step costs O(deg · log E) instead of O(active), which is
/// what lets the event model reach P = 16384 ranks (DESIGN.md §11).
///
/// The piecewise-constant fluid solution is the same as
/// simulate_transfers(); finish times agree to rounding (≈1e-9 s) but are
/// NOT bit-identical — residuals accumulate in a different grouping.  The
/// event executor therefore switches to this path only above its
/// rank-count threshold, keeping small-P goldens byte-stable.
std::size_t simulate_transfers_indexed(
    std::vector<Transfer>& transfers,
    const std::vector<MbitsPerSec>& deliverable_mbps, const NetworkModel& net);

/// As above, reusing `ws` for every internal buffer.  Results are
/// identical to the workspace-free form; only allocation traffic differs.
std::size_t simulate_transfers_indexed(
    std::vector<Transfer>& transfers,
    const std::vector<MbitsPerSec>& deliverable_mbps, const NetworkModel& net,
    SimWorkspace& ws);

}  // namespace ssamr::sim

#pragma once
/// \file message_sim.hpp
/// Fluid simulation of concurrent point-to-point transfers with endpoint
/// bandwidth contention.
///
/// The closed-form NetworkModel (cluster/network.hpp) prices one message
/// in isolation.  When a rank drives several transfers at once — ghost
/// exchanges with every neighbour, a migration fan-out — they share its
/// deliverable NIC bandwidth.  This simulator resolves that sharing with
/// the standard fluid model: at any instant a transfer progresses at
///
///   rate = efficiency · min(src_bw / src_sending, dst_bw / dst_receiving)
///
/// where k_sending counts the transfers currently leaving endpoint k and
/// k_receiving the transfers arriving at it.  NICs are full duplex: a
/// node's sends contend with each other and its receives with each other,
/// but the two directions ride independent lanes — a symmetric ghost
/// exchange costs the same as its one-way half, not double.
/// Rates are re-evaluated at every transfer start/finish (driven by a
/// deterministic EventQueue), so the result is exact for piecewise-
/// constant sharing and bit-reproducible.  One `latency_s` is charged per
/// message, exactly once, by delaying its network entry.  A transfer of
/// zero bytes completes at its post time, mirroring
/// NetworkModel::transfer_time.

#include <vector>

#include "cluster/network.hpp"
#include "sim/event.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr::sim {

/// Resolve `transfers` (post_time/bytes/src/dst set) against per-endpoint
/// deliverable bandwidths `deliverable_mbps`, filling every finish_time.
/// Endpoint indices must lie in [0, deliverable_mbps.size()).
void simulate_transfers(std::vector<Transfer>& transfers,
                        const std::vector<MbitsPerSec>& deliverable_mbps,
                        const NetworkModel& net);

}  // namespace ssamr::sim

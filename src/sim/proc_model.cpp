#include "sim/proc_model.hpp"

#include <errno.h>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "net/proc_exit.hpp"
#include "net/socket.hpp"
#include "net/sysio.hpp"
#include "partition/metrics.hpp"
#include "sim/executor_audit.hpp"
#include "sim/proc_rank.hpp"
#include "util/error.hpp"
#include "util/wallclock.hpp"

namespace ssamr::sim {
namespace {

/// Index of the (i, j) data pair, i < j, in a flat triangular array.
std::size_t pair_index(int i, int j, int n) {
  // Row-major upper triangle: offset of row i plus the column within it.
  const auto ii = static_cast<std::size_t>(i);
  const auto jj = static_cast<std::size_t>(j);
  const auto nn = static_cast<std::size_t>(n);
  return ii * nn - ii * (ii + 1) / 2 + (jj - ii - 1);
}

void sleep_ms(int ms) {
  struct timespec ts;
  ts.tv_sec = 0;
  ts.tv_nsec = static_cast<long>(std::clamp(ms, 0, 999)) * 1'000'000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

[[noreturn]] void io_fail(const char* stage, int rank, net::IoStatus st) {
  const char* what = "error";
  switch (st) {
    case net::IoStatus::kClosed: what = "peer closed"; break;
    case net::IoStatus::kTimeout: what = "deadline expired"; break;
    case net::IoStatus::kProtocol: what = "framing error"; break;
    default: break;
  }
  throw Error(std::string("proc: ") + stage + " with rank " +
              std::to_string(rank) + " failed: " + what);
}

}  // namespace

ProcModel::ProcModel(const Cluster& cluster, const ExecutorConfig& cfg)
    : cluster_(cluster), exec_(cluster, cfg), opt_(cfg.proc) {
  const int n = cluster.size();
  const audit::AuditReport report = audit::validate_proc_options(opt_, n);
  SSAMR_REQUIRE(report.ok(), report.summary());

  lanes_.reserve(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) lanes_.emplace_back(k);

  // All sockets exist before the first fork, so every child inherits the
  // full set and keeps only its own ends.
  std::vector<net::StreamPair> ctrl;
  std::vector<net::StreamPair> data;
  ctrl.reserve(static_cast<std::size_t>(n));
  data.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int k = 0; k < n; ++k) ctrl.push_back(net::make_stream_pair(opt_.use_tcp));
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      data.push_back(net::make_stream_pair(opt_.use_tcp));

  const pid_t coordinator = ::getpid();
  pids_.assign(static_cast<std::size_t>(n), -1);
  ctrl_fds_.assign(static_cast<std::size_t>(n), -1);
  ctrl_decoders_.resize(static_cast<std::size_t>(n));

  for (int k = 0; k < n; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Partial fleet: tear down what exists, then fail the constructor.
      for (const net::StreamPair& p : ctrl) {
        net::close_fd(p.a);
        net::close_fd(p.b);
      }
      for (const net::StreamPair& p : data) {
        net::close_fd(p.a);
        net::close_fd(p.b);
      }
      for (int& fd : ctrl_fds_) fd = -1;  // ends closed just above
      shutdown_children();
      throw Error("proc: fork failed for rank " + std::to_string(k));
    }
    if (pid == 0) {
      // ---- child: rank k.  No heap-allocating library calls between here
      // and run_rank_process beyond building the endpoint table; every
      // failure path is hard_exit, never a return into the parent's stack.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
      if (::getppid() != coordinator) net::hard_exit(kRankExitOk);

      RankEndpoints ep;
      ep.rank = k;
      ep.nranks = n;
      ep.frame_timeout_s = opt_.frame_timeout_s;
      ep.peer_fds.assign(static_cast<std::size_t>(n), -1);
      for (int r = 0; r < n; ++r) {
        if (r == k)
          net::close_fd(ctrl[static_cast<std::size_t>(r)].a);
        else {
          net::close_fd(ctrl[static_cast<std::size_t>(r)].a);
          net::close_fd(ctrl[static_cast<std::size_t>(r)].b);
        }
      }
      ep.ctrl_fd = ctrl[static_cast<std::size_t>(k)].b;
      for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) {
          const net::StreamPair& p = data[pair_index(i, j, n)];
          // Pair (i, j): rank i keeps end .a, rank j keeps end .b.
          if (i == k) {
            ep.peer_fds[static_cast<std::size_t>(j)] = p.a;
            net::close_fd(p.b);
          } else if (j == k) {
            ep.peer_fds[static_cast<std::size_t>(i)] = p.b;
            net::close_fd(p.a);
          } else {
            net::close_fd(p.a);
            net::close_fd(p.b);
          }
        }
      run_rank_process(ep);  // noreturn
    }
    // ---- parent
    pids_[static_cast<std::size_t>(k)] = pid;
    ctrl_fds_[static_cast<std::size_t>(k)] =
        ctrl[static_cast<std::size_t>(k)].a;
  }

  // The coordinator keeps only its control ends.
  for (const net::StreamPair& p : ctrl) net::close_fd(p.b);
  for (const net::StreamPair& p : data) {
    net::close_fd(p.a);
    net::close_fd(p.b);
  }

  // Liveness handshake: one Hello per rank, under the frame deadline.
  try {
    for (int k = 0; k < n; ++k) {
      net::Frame hello;
      const net::IoStatus st = net::read_frame(
          ctrl_fds_[static_cast<std::size_t>(k)],
          ctrl_decoders_[static_cast<std::size_t>(k)], hello,
          opt_.frame_timeout_s);
      if (st != net::IoStatus::kOk) io_fail("hello", k, st);
      SSAMR_REQUIRE(hello.type == kMsgHello,
                    "proc: expected Hello from rank " + std::to_string(k));
      net::WireReader r(hello.payload.data(), hello.payload.size());
      const std::int32_t said = r.i32();
      SSAMR_REQUIRE(said == k, "proc: rank identity mismatch in Hello");
    }
  } catch (...) {
    shutdown_children();
    throw;
  }
}

ProcModel::~ProcModel() { shutdown_children(); }

void ProcModel::shutdown_children() noexcept {
  try {
    for (std::size_t k = 0; k < ctrl_fds_.size(); ++k) {
      if (ctrl_fds_[k] < 0) continue;
      // Best effort: a wedged child is handled by the kill path below.
      (void)net::write_frame(ctrl_fds_[k], kMsgShutdown, nullptr, 0,
                             /*timeout_s=*/0.5);
      net::close_fd(ctrl_fds_[k]);
      ctrl_fds_[k] = -1;
    }
  } catch (...) {
    // Allocation failure while encoding — the kill path still reaps.
  }
  const double deadline = wallclock_seconds() + 2.0;
  bool all_reaped = false;
  while (!all_reaped && wallclock_seconds() < deadline) {
    all_reaped = true;
    for (pid_t& pid : pids_) {
      if (pid <= 0) continue;
      int status = 0;
      const pid_t got = net::waitpid_retry(pid, &status, WNOHANG);
      if (got == pid || (got < 0 && errno == ECHILD))
        pid = -1;
      else
        all_reaped = false;
    }
    if (!all_reaped) sleep_ms(2);
  }
  for (pid_t& pid : pids_) {
    if (pid <= 0) continue;
    ::kill(pid, SIGKILL);
    int status = 0;
    net::waitpid_retry(pid, &status, 0);
    pid = -1;
  }
}

std::vector<PhaseReport> ProcModel::run_phase(
    const std::vector<PhasePlan>& plans, double* window_wall_s) {
  const int n = cluster_.size();
  SSAMR_REQUIRE(static_cast<int>(plans.size()) == n,
                "proc: one plan per rank required");
  const double w0 = wallclock_seconds();
  for (int k = 0; k < n; ++k) {
    const std::vector<std::uint8_t> bytes =
        encode_phase_plan(plans[static_cast<std::size_t>(k)]);
    const net::IoStatus st = net::write_frame(
        ctrl_fds_[static_cast<std::size_t>(k)], kMsgPhase, bytes.data(),
        bytes.size(), opt_.frame_timeout_s);
    if (st != net::IoStatus::kOk) io_fail("phase dispatch", k, st);
  }
  std::vector<PhaseReport> reports(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    net::Frame done;
    const net::IoStatus st = net::read_frame(
        ctrl_fds_[static_cast<std::size_t>(k)],
        ctrl_decoders_[static_cast<std::size_t>(k)], done,
        opt_.frame_timeout_s);
    if (st != net::IoStatus::kOk) io_fail("phase report", k, st);
    SSAMR_REQUIRE(done.type == kMsgDone,
                  "proc: expected Done from rank " + std::to_string(k));
    reports[static_cast<std::size_t>(k)] =
        decode_phase_report(done.payload.data(), done.payload.size());
  }
  const double window = wallclock_seconds() - w0;
  *window_wall_s = window;
  phase_wall_total_ += window;
  for (const PhaseReport& r : reports)
    wire_bytes_total_ += r.bytes_sent + r.bytes_received;
  return reports;
}

const std::vector<RankFlow>& ProcModel::ghost_flows(
    const PartitionResult& r) {
  if (!ghost_flows_valid_ || !(ghost_flows_key_ == r)) {
    ghost_flows_ =
        pairwise_comm_bytes(r, exec_.config().ghost, exec_.config().ncomp);
    ghost_flows_key_ = r;
    ghost_flows_valid_ = true;
  }
  return ghost_flows_;
}

Seconds ProcModel::sense(Seconds t, Seconds sweep_s, int iteration) {
  // Sensing is the monitor's virtual sweep — no rank process involvement —
  // and is charged serially exactly like the BSP model, so sense cost
  // cancels in event-vs-proc cross-validation.
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(t + sweep_s, SpanKind::kIdle, iteration);
  lanes_[n].skip_to(t);
  lanes_[n].advance(t + sweep_s, SpanKind::kSense, iteration);
  return sweep_s;
}

Seconds ProcModel::regrid(Seconds t, std::size_t boxes, int iteration) {
  // Regrid + repartition run for real in the coordinator (the driver calls
  // the actual partitioner); their virtual charge stays the closed-form
  // model shared with BSP so the event-vs-proc comparison isolates the
  // phases the ranks execute.
  const Seconds cost = exec_.regrid_time(boxes) + exec_.partition_time(boxes);
  const auto n = static_cast<std::size_t>(cluster_.size());
  for (std::size_t k = 0; k < n; ++k)
    lanes_[k].advance(t + cost, SpanKind::kRegrid, iteration);
  pending_regrid_s_ = cost;
  return cost;
}

Seconds ProcModel::migrate(const PartitionResult& previous,
                           const PartitionResult& next, Seconds t) {
  const int n = cluster_.size();
  std::vector<PhasePlan> plans(static_cast<std::size_t>(n));
  // The repartition payload every rank receives: new ownership in SFC
  // order plus the work targets the capacity vector produced.
  std::vector<std::int32_t> owners;
  owners.reserve(next.assignments.size());
  for (const BoxAssignment& a : next.assignments) owners.push_back(a.owner);
  for (int k = 0; k < n; ++k) {
    PhasePlan& p = plans[static_cast<std::size_t>(k)];
    p.kind = PhaseKind::kMigrate;
    p.owners = owners;
    p.capacities.assign(next.target_work.begin(), next.target_work.end());
  }
  const auto scale = [this](std::int64_t bytes) {
    const double scaled = static_cast<double>(bytes) * opt_.bytes_scale;
    return static_cast<std::uint64_t>(std::clamp(scaled, 0.0, 1.0e15));
  };
  for (const RankFlow& f : exec_.migration_flows(previous, next)) {
    const std::uint64_t wire = scale(f.bytes);
    if (wire == 0) continue;
    plans[static_cast<std::size_t>(f.src)].sends.push_back(
        WireFlow{f.dst, wire});
    plans[static_cast<std::size_t>(f.dst)].recvs.push_back(
        WireFlow{f.src, wire});
  }
  double window = 0;
  run_phase(plans, &window);
  const Seconds cost = opt_.to_virtual(window);
  // Same clock splice as BspModel: the driver pre-sums regrid + migration,
  // so the lanes must land on t + (a + b) with that exact rounding.
  const Seconds end = t + (pending_regrid_s_ + cost);
  pending_regrid_s_ = Seconds{0};
  for (int k = 0; k < n; ++k)
    lanes_[static_cast<std::size_t>(k)].advance(end, SpanKind::kMigrate);
  return cost;
}

StepCost ProcModel::advance(const PartitionResult& r, Seconds t,
                            int iteration) {
  const int n = cluster_.size();
  const std::vector<Seconds> comp = exec_.compute_times(r, t);
  std::vector<PhasePlan> plans(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    PhasePlan& p = plans[static_cast<std::size_t>(k)];
    p.kind = PhaseKind::kAdvance;
    p.iteration = iteration;
    const double sleep_s =
        comp[static_cast<std::size_t>(k)].value() * opt_.time_scale;
    p.compute_wall_s = sleep_s;
  }
  const auto scale = [this](std::int64_t bytes) {
    const double scaled = static_cast<double>(bytes) * opt_.bytes_scale;
    return static_cast<std::uint64_t>(std::clamp(scaled, 0.0, 1.0e15));
  };
  for (const RankFlow& f : ghost_flows(r)) {
    const std::uint64_t wire = scale(f.bytes);
    if (wire == 0) continue;
    plans[static_cast<std::size_t>(f.src)].sends.push_back(
        WireFlow{f.dst, wire});
    plans[static_cast<std::size_t>(f.dst)].recvs.push_back(
        WireFlow{f.src, wire});
  }

  double window = 0;
  const std::vector<PhaseReport> reports = run_phase(plans, &window);
  const Seconds elapsed = opt_.to_virtual(window);

  // Per-rank measured spans, normalized to virtual seconds and clamped
  // into the coordinator window (child-side measurements are taken inside
  // it, but wall clocks jitter; the lanes need monotone targets).
  Seconds worst_total{0};
  Seconds worst_comp{0};
  for (int k = 0; k < n; ++k) {
    const PhaseReport& rep = reports[static_cast<std::size_t>(k)];
    Seconds comp_v = opt_.to_virtual(rep.compute_wall_s);
    Seconds comm_v = opt_.to_virtual(rep.comm_wall_s);
    comp_v = std::min(comp_v, elapsed);
    comm_v = std::min(comm_v, elapsed - comp_v);
    comm_v = std::max(comm_v, Seconds{0});
    RankTimeline& lane = lanes_[static_cast<std::size_t>(k)];
    lane.advance(t + comp_v, SpanKind::kCompute, iteration);
    lane.advance(t + (comp_v + comm_v), SpanKind::kComm, iteration);
    lane.advance(t + elapsed, SpanKind::kIdle, iteration);
    if (comp_v + comm_v > worst_total) {
      worst_total = comp_v + comm_v;
      worst_comp = comp_v;
    }
  }
  // The coordinator window is the measured step time; everything past the
  // critical rank's compute — peer exchange plus protocol overhead — is
  // reported as communication, mirroring the BSP convention.
  return StepCost{elapsed, worst_comp, elapsed - worst_comp};
}

void ProcModel::finish(RunTrace& trace, Seconds t_end) {
  const auto n = static_cast<std::size_t>(cluster_.size());
  trace.rank_usage.clear();
  trace.spans.clear();
  for (std::size_t k = 0; k < n; ++k) {
    lanes_[k].advance(t_end, SpanKind::kIdle);
    trace.rank_usage.push_back(lanes_[k].usage());
  }
  for (const RankTimeline& lane : lanes_)
    trace.spans.insert(trace.spans.end(), lane.spans().begin(),
                       lane.spans().end());
}

}  // namespace ssamr::sim

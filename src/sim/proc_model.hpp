#pragma once
/// \file proc_model.hpp
/// The proc execution model: real forked rank processes (DESIGN.md §12).
///
/// Where BspModel and EventExecutor *price* a run on virtual clocks, the
/// ProcModel *executes* it: the constructor forks one OS process per rank,
/// wired to the coordinator by an AF_UNIX control socket (loopback TCP
/// fallback) and to every peer by a data socket.  Each advance/migrate
/// stage becomes a real phase — the coordinator ships a PhasePlan frame per
/// rank (compute budget, exact per-peer byte counts, and on repartitions
/// the new ownership + capacity vectors), ranks emulate compute with
/// nanosleep and move the planned bytes through a nonblocking exchange
/// engine, and the measured wall-clock comes back as PhaseReport frames.
///
/// Measured wall time is normalized by ProcOptions::time_scale back into
/// virtual seconds so the stage interface, RankTimeline lanes and
/// Chrome-trace output stay directly comparable with the other models —
/// but the numbers are real measurements, so traces and CSVs from this
/// model are inherently nondeterministic and never golden-pinned.
///
/// Rank lifecycle: fork (PDEATHSIG=SIGKILL armed first, so a dying
/// coordinator can never leak children) → Hello → phase loop → Shutdown →
/// waitpid.  The destructor escalates politely: Shutdown frames, a grace
/// window of WNOHANG reaping, SIGKILL for stragglers, then a blocking reap
/// — it never returns with a child unreaped.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "sim/exec_model.hpp"
#include "sim/proc_protocol.hpp"
#include "sim/timeline.hpp"

namespace ssamr::sim {

/// Upper bound on forked ranks: the coordinator holds P control sockets
/// plus P·(P−1)/2 data-socket parent ends until fork time, so fd usage is
/// quadratic in P; 64 ranks ≈ 4 k fds, the conventional rlimit.
inline constexpr int kMaxProcRanks = 64;

class ProcModel final : public ExecutionModel {
 public:
  /// Forks cluster.size() rank processes.  Must run before the process
  /// creates any threads (fork() only carries the calling thread into the
  /// child); drivers therefore run the proc model before anything that
  /// touches ThreadPool::global().
  ProcModel(const Cluster& cluster, const ExecutorConfig& cfg);
  ~ProcModel() override;

  ProcModel(const ProcModel&) = delete;
  ProcModel& operator=(const ProcModel&) = delete;

  std::string name() const override { return "proc"; }
  Seconds sense(Seconds t, Seconds sweep_s, int iteration) override;
  Seconds regrid(Seconds t, std::size_t boxes, int iteration) override;
  Seconds migrate(const PartitionResult& previous,
                  const PartitionResult& next, Seconds t) override;
  StepCost advance(const PartitionResult& r, Seconds t,
                   int iteration) override;
  void finish(RunTrace& trace, Seconds t_end) override;
  const VirtualExecutor& costs() const override { return exec_; }

  /// Live child pids, rank-ordered (test access: reap verification).
  const std::vector<pid_t>& child_pids() const { return pids_; }

  /// Cumulative wire payload bytes moved by all ranks (both directions).
  std::uint64_t wire_bytes_total() const { return wire_bytes_total_; }

  /// Cumulative coordinator-side wall seconds spent inside phases.
  double phase_wall_total() const { return phase_wall_total_; }

 private:
  /// Ship one plan per rank, collect one report per rank; returns the
  /// coordinator-side wall window of the whole phase in `window_wall_s`.
  std::vector<PhaseReport> run_phase(const std::vector<PhasePlan>& plans,
                                     double* window_wall_s);

  /// Ghost flows of `r`, cached on bit-exact assignment equality (the
  /// layout is stable between regrids).
  const std::vector<RankFlow>& ghost_flows(const PartitionResult& r);

  void shutdown_children() noexcept;

  const Cluster& cluster_;
  VirtualExecutor exec_;
  ProcOptions opt_;
  std::vector<RankTimeline> lanes_;
  Seconds pending_regrid_s_{0};

  std::vector<pid_t> pids_;
  std::vector<int> ctrl_fds_;  ///< coordinator end, per rank
  std::vector<net::FrameDecoder> ctrl_decoders_;

  PartitionResult ghost_flows_key_;
  std::vector<RankFlow> ghost_flows_;
  bool ghost_flows_valid_ = false;

  std::uint64_t wire_bytes_total_ = 0;
  double phase_wall_total_ = 0;
};

}  // namespace ssamr::sim

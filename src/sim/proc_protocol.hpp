#pragma once
/// \file proc_protocol.hpp
/// Message vocabulary between the proc-backend coordinator and its forked
/// rank processes (DESIGN.md §12).
///
/// All messages ride net/frame.hpp frames; the frame `type` field carries
/// the ProcMsg id and the payload is wire.hpp host-endian scalars.  The
/// protocol is strictly coordinator-driven request/reply on the control
/// sockets — a rank never initiates — plus peer-to-peer kMsgData streams on
/// the rank-pair data sockets during a phase.
///
/// Phase lifecycle:
///   coordinator --kMsgPhase(PhasePlan)--> every rank
///   ranks: emulate compute (nanosleep), exchange planned bytes with peers
///   rank --kMsgDone(PhaseReport)--> coordinator
///
/// The plan carries everything a rank needs for one phase: its compute
/// budget in wall seconds, the exact per-peer byte counts to send and to
/// expect (both sides get coordinator-computed numbers, so they always
/// agree), and — on repartition phases — the new box-ownership vector and
/// the capacity vector the partitioner consumed, so the rank lifecycle
/// stays explicit for later malleability work.

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "util/error.hpp"

namespace ssamr::sim {

/// Frame `type` values on proc-backend sockets.
enum ProcMsg : std::uint32_t {
  kMsgHello = 1,     ///< rank -> coordinator: alive after fork (payload: rank)
  kMsgPhase = 2,     ///< coordinator -> rank: PhasePlan
  kMsgDone = 3,      ///< rank -> coordinator: PhaseReport
  kMsgShutdown = 4,  ///< coordinator -> rank: exit cleanly
  kMsgData = 5,      ///< rank -> rank: one chunk of phase payload bytes
};

/// What a phase asks of one rank.
enum class PhaseKind : std::uint32_t {
  kAdvance = 0,  ///< compute emulation + ghost exchange
  kMigrate = 1,  ///< data migration traffic (no compute)
  kBarrier = 2,  ///< rendezvous only (tests, liveness checks)
};

/// One directed peer transfer within a phase (wire bytes, post-scaling).
struct WireFlow {
  std::int32_t peer = 0;
  std::uint64_t bytes = 0;
};

/// Coordinator -> rank: one phase of work.
struct PhasePlan {
  PhaseKind kind = PhaseKind::kBarrier;
  std::int32_t iteration = -1;
  double compute_wall_s = 0;     ///< nanosleep budget (wall seconds)
  std::vector<WireFlow> sends;   ///< bytes this rank pushes, per peer
  std::vector<WireFlow> recvs;   ///< bytes this rank expects, per peer
  /// Repartition payload (kMigrate only): owner per box in SFC order and
  /// the capacity vector behind the new cut.  Empty otherwise.
  std::vector<std::int32_t> owners;
  std::vector<double> capacities;
};

/// Rank -> coordinator: measured wall-clock split of one phase.
struct PhaseReport {
  double compute_wall_s = 0;  ///< time spent in compute emulation
  double comm_wall_s = 0;     ///< time spent in the exchange engine
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

inline std::vector<std::uint8_t> encode_phase_plan(const PhasePlan& p) {
  net::WireWriter w;
  w.u32(static_cast<std::uint32_t>(p.kind));
  w.i32(p.iteration);
  w.f64(p.compute_wall_s);
  w.u32(static_cast<std::uint32_t>(p.sends.size()));
  w.u32(static_cast<std::uint32_t>(p.recvs.size()));
  w.u32(static_cast<std::uint32_t>(p.owners.size()));
  w.u32(static_cast<std::uint32_t>(p.capacities.size()));
  for (const WireFlow& f : p.sends) {
    w.i32(f.peer);
    w.u64(f.bytes);
  }
  for (const WireFlow& f : p.recvs) {
    w.i32(f.peer);
    w.u64(f.bytes);
  }
  for (const std::int32_t o : p.owners) w.i32(o);
  for (const double c : p.capacities) w.f64(c);
  return w.bytes();
}

inline PhasePlan decode_phase_plan(const std::uint8_t* data,
                                   std::size_t size) {
  net::WireReader r(data, size);
  PhasePlan p;
  p.kind = static_cast<PhaseKind>(r.u32());
  p.iteration = r.i32();
  p.compute_wall_s = r.f64();
  const std::uint32_t nsend = r.u32();
  const std::uint32_t nrecv = r.u32();
  const std::uint32_t nown = r.u32();
  const std::uint32_t ncap = r.u32();
  p.sends.resize(nsend);
  for (WireFlow& f : p.sends) {
    f.peer = r.i32();
    f.bytes = r.u64();
  }
  p.recvs.resize(nrecv);
  for (WireFlow& f : p.recvs) {
    f.peer = r.i32();
    f.bytes = r.u64();
  }
  p.owners.resize(nown);
  for (std::int32_t& o : p.owners) o = r.i32();
  p.capacities.resize(ncap);
  for (double& c : p.capacities) c = r.f64();
  SSAMR_REQUIRE(r.done(), "proc: trailing bytes in PhasePlan");
  return p;
}

inline std::vector<std::uint8_t> encode_phase_report(const PhaseReport& p) {
  net::WireWriter w;
  w.f64(p.compute_wall_s);
  w.f64(p.comm_wall_s);
  w.u64(p.bytes_sent);
  w.u64(p.bytes_received);
  return w.bytes();
}

inline PhaseReport decode_phase_report(const std::uint8_t* data,
                                       std::size_t size) {
  net::WireReader r(data, size);
  PhaseReport p;
  p.compute_wall_s = r.f64();
  p.comm_wall_s = r.f64();
  p.bytes_sent = r.u64();
  p.bytes_received = r.u64();
  SSAMR_REQUIRE(r.done(), "proc: trailing bytes in PhaseReport");
  return p;
}

}  // namespace ssamr::sim

#include "sim/proc_rank.hpp"

#include <errno.h>
#include <poll.h>
#include <time.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/frame.hpp"
#include "net/proc_exit.hpp"
#include "net/sysio.hpp"
#include "sim/proc_protocol.hpp"
#include "util/wallclock.hpp"

namespace ssamr::sim {
namespace {

/// kMsgData chunk size: small enough that a full-mesh exchange never wedges
/// on a default ~208 KiB socket buffer, large enough to amortize syscalls.
constexpr std::size_t kDataChunk = 64 * 1024;

/// Sleep `wall_s` wall seconds, resuming across EINTR via the remainder.
void sleep_wall(double wall_s) {
  const double whole = std::clamp(wall_s, 0.0, 3600.0);
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(whole);
  ts.tv_nsec =
      static_cast<long>(std::clamp((whole - static_cast<double>(ts.tv_sec)) *
                                       1e9,
                                   0.0, 999'999'999.0));
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// Per-peer exchange state.  Decoders persist across phases so a chunk
/// straddling a read boundary is never lost.
struct PeerIo {
  int fd = -1;
  std::uint64_t to_send = 0;  ///< payload bytes not yet handed to a frame
  std::uint64_t to_recv = 0;  ///< payload bytes still expected
  std::vector<std::uint8_t> outbuf;  ///< encoded frame mid-write
  std::size_t outoff = 0;
  net::FrameDecoder decoder;
  std::uint64_t sent = 0;      ///< payload bytes framed this phase
  std::uint64_t received = 0;  ///< payload bytes accepted this phase
};

/// Drain completed kMsgData frames already buffered in a peer decoder.
/// Returns false on protocol violation (wrong type, byte over-run).
bool drain_decoder(PeerIo& io) {
  net::Frame f;
  while (io.decoder.next(f)) {
    if (f.type != kMsgData) return false;
    const auto got = static_cast<std::uint64_t>(f.payload.size());
    if (got > io.to_recv) return false;
    io.to_recv -= got;
    io.received += got;
  }
  return io.decoder.error() == net::FrameError::kNone;
}

/// Move the planned bytes with every peer; nonblocking, poll-driven, no
/// send/recv ordering assumptions (full-mesh safe).  Returns an exit code,
/// kRankExitOk on completion.
int exchange_phase(std::vector<PeerIo>& peers, double deadline_s) {
  static const std::vector<std::uint8_t> zeros(kDataChunk, 0);
  for (;;) {
    bool pending = false;
    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> pidx;
    for (std::size_t k = 0; k < peers.size(); ++k) {
      PeerIo& io = peers[k];
      if (io.fd < 0) continue;
      // A frame may already be sitting whole in the decoder buffer.
      if (!drain_decoder(io)) return kRankExitProtocol;
      short ev = 0;
      if (io.to_send > 0 || io.outoff < io.outbuf.size()) ev |= POLLOUT;
      if (io.to_recv > 0) ev |= POLLIN;
      if (ev == 0) continue;
      pending = true;
      struct pollfd p {};
      p.fd = io.fd;
      p.events = ev;
      pfds.push_back(p);
      pidx.push_back(k);
    }
    if (!pending) return kRankExitOk;

    const double left = deadline_s - wallclock_seconds();
    if (left <= 0) return kRankExitTimeout;
    const int ms = static_cast<int>(std::clamp(left * 1e3, 1.0, 1000.0));
    const int rc =
        net::poll_retry(pfds.data(), static_cast<nfds_t>(pfds.size()), ms);
    if (rc < 0) return kRankExitInternal;
    if (rc == 0) continue;  // slice elapsed; re-check the deadline

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      PeerIo& io = peers[pidx[i]];
      const short re = pfds[i].revents;
      if (re & (POLLIN | POLLHUP | POLLERR)) {
        std::uint8_t chunk[kDataChunk];
        std::size_t got = 0;
        const net::IoStatus st =
            net::read_some(io.fd, chunk, sizeof chunk, &got);
        if (st == net::IoStatus::kClosed && io.to_recv > 0)
          return kRankExitProtocol;  // peer died mid-phase
        if (st == net::IoStatus::kError) return kRankExitInternal;
        if (got > 0) io.decoder.feed(chunk, got);
        if (!drain_decoder(io)) return kRankExitProtocol;
      }
      if (re & POLLOUT) {
        if (io.outoff == io.outbuf.size() && io.to_send > 0) {
          const std::size_t chunk = static_cast<std::size_t>(
              std::min<std::uint64_t>(io.to_send, kDataChunk));
          io.outbuf = net::encode_frame(kMsgData, zeros.data(), chunk);
          io.outoff = 0;
          io.to_send -= chunk;
          io.sent += chunk;
        }
        if (io.outoff < io.outbuf.size()) {
          std::size_t put = 0;
          const net::IoStatus st =
              net::write_some(io.fd, io.outbuf.data() + io.outoff,
                              io.outbuf.size() - io.outoff, &put);
          if (st == net::IoStatus::kClosed) return kRankExitProtocol;
          if (st == net::IoStatus::kError) return kRankExitInternal;
          io.outoff += put;
          if (io.outoff == io.outbuf.size() && io.to_send == 0) {
            io.outbuf.clear();
            io.outoff = 0;
          }
        }
      }
    }
  }
}

/// The rank loop proper; may throw (caller converts to hard_exit).
[[noreturn]] void rank_loop(const RankEndpoints& ep) {
  // Control-plane timeout: generous, because the coordinator legitimately
  // goes quiet between phases (it is running the partitioner).  Orphan
  // protection comes from PDEATHSIG, not from this deadline.
  const double ctrl_timeout_s = std::max(ep.frame_timeout_s, 600.0);

  std::vector<PeerIo> peers(ep.peer_fds.size());
  for (std::size_t k = 0; k < ep.peer_fds.size(); ++k)
    peers[k].fd = ep.peer_fds[k];

  // Announce liveness.
  {
    net::WireWriter w;
    w.i32(ep.rank);
    const net::IoStatus st =
        net::write_frame(ep.ctrl_fd, kMsgHello, w.bytes().data(),
                         w.bytes().size(), ep.frame_timeout_s);
    if (st != net::IoStatus::kOk) net::hard_exit(kRankExitProtocol);
  }

  net::FrameDecoder ctrl_decoder;
  for (;;) {
    net::Frame msg;
    const net::IoStatus st =
        net::read_frame(ep.ctrl_fd, ctrl_decoder, msg, ctrl_timeout_s);
    if (st == net::IoStatus::kClosed) net::hard_exit(kRankExitOk);
    if (st == net::IoStatus::kTimeout) net::hard_exit(kRankExitTimeout);
    if (st != net::IoStatus::kOk) net::hard_exit(kRankExitProtocol);

    if (msg.type == kMsgShutdown) net::hard_exit(kRankExitOk);
    if (msg.type != kMsgPhase) net::hard_exit(kRankExitProtocol);

    const PhasePlan plan =
        decode_phase_plan(msg.payload.data(), msg.payload.size());

    PhaseReport report;
    const double t0 = wallclock_seconds();
    if (plan.compute_wall_s > 0) sleep_wall(plan.compute_wall_s);
    const double t1 = wallclock_seconds();
    report.compute_wall_s = t1 - t0;

    for (PeerIo& io : peers) {
      io.sent = 0;
      io.received = 0;
    }
    for (const WireFlow& f : plan.sends) {
      if (f.peer < 0 || f.peer >= static_cast<int>(peers.size()) ||
          f.peer == ep.rank)
        net::hard_exit(kRankExitProtocol);
      peers[static_cast<std::size_t>(f.peer)].to_send += f.bytes;
    }
    for (const WireFlow& f : plan.recvs) {
      if (f.peer < 0 || f.peer >= static_cast<int>(peers.size()) ||
          f.peer == ep.rank)
        net::hard_exit(kRankExitProtocol);
      peers[static_cast<std::size_t>(f.peer)].to_recv += f.bytes;
    }
    const int xc = exchange_phase(peers, t1 + ep.frame_timeout_s);
    if (xc != kRankExitOk) net::hard_exit(xc);
    report.comm_wall_s = wallclock_seconds() - t1;
    for (const PeerIo& io : peers) {
      report.bytes_sent += io.sent;
      report.bytes_received += io.received;
    }

    const std::vector<std::uint8_t> bytes = encode_phase_report(report);
    const net::IoStatus ds = net::write_frame(
        ep.ctrl_fd, kMsgDone, bytes.data(), bytes.size(), ep.frame_timeout_s);
    if (ds != net::IoStatus::kOk) net::hard_exit(kRankExitProtocol);
  }
}

}  // namespace

void run_rank_process(const RankEndpoints& ep) {
  try {
    rank_loop(ep);
  } catch (...) {
    // Never unwind into the coordinator's stack frames.
    net::hard_exit(kRankExitInternal);
  }
}

}  // namespace ssamr::sim

#pragma once
/// \file proc_rank.hpp
/// The forked rank process of the proc backend (DESIGN.md §12).
///
/// run_rank_process() is the child-side main loop: block on the control
/// socket for a PhasePlan, emulate the compute budget with nanosleep (so P
/// sleeping ranks overlap on one core exactly like P dedicated nodes
/// would), push/pull the planned bytes with peer ranks through a
/// nonblocking poll engine, reply with a PhaseReport, repeat until
/// kMsgShutdown.  It never returns: every path ends in
/// net::hard_exit — a forked child must not unwind into the coordinator's
/// stack or run its static destructors.

#include <vector>

namespace ssamr::sim {

/// Everything a rank process inherits across fork().
struct RankEndpoints {
  int rank = 0;
  int nranks = 1;
  int ctrl_fd = -1;             ///< control socket to the coordinator
  std::vector<int> peer_fds;    ///< data socket per peer rank; -1 at self
  double frame_timeout_s = 30;  ///< per-message deadline during a phase
};

/// Child-side exit codes (coordinator sees them via waitpid).
enum RankExitCode : int {
  kRankExitOk = 0,
  kRankExitProtocol = 3,   ///< framing/protocol error on any socket
  kRankExitTimeout = 4,    ///< phase deadline expired
  kRankExitInternal = 5,   ///< unexpected exception
};

/// Run the rank main loop.  Calls net::hard_exit on every path.
[[noreturn]] void run_rank_process(const RankEndpoints& ep);

}  // namespace ssamr::sim

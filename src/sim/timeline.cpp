#include "sim/timeline.hpp"

#include <string>
#include "util/error.hpp"

namespace ssamr::sim {

void RankTimeline::advance(Seconds until, SpanKind kind, int iteration) {
  SSAMR_REQUIRE(until >= now_,
                "timeline may not move backwards (rank " +
                    std::to_string(rank_) + " kind " +
                    std::string(span_kind_name(kind)) + " now " +
                    std::to_string(now_.value()) + " until " +
                    std::to_string(until.value()) +
                    " iter " + std::to_string(iteration) + ")");
  const Seconds dt = until - now_;
  if (dt <= Seconds{0}) return;
  switch (kind) {
    case SpanKind::kCompute:
    case SpanKind::kRegrid:
    case SpanKind::kSense:
      usage_.busy_s += dt;
      break;
    case SpanKind::kComm:
    case SpanKind::kMigrate:
      usage_.comm_s += dt;
      break;
    case SpanKind::kIdle:
      usage_.idle_s += dt;
      break;
  }
  spans_.push_back(TraceSpan{rank_, kind, now_, until, iteration});
  now_ = until;
}

void RankTimeline::skip_to(Seconds until) {
  SSAMR_REQUIRE(until >= now_, "timeline may not move backwards");
  now_ = until;
}

}  // namespace ssamr::sim

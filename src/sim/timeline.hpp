#pragma once
/// \file timeline.hpp
/// Per-rank virtual timelines for the discrete-event execution model.
///
/// A RankTimeline is a monotone clock plus the contiguous spans that
/// advanced it.  Every advance is attributed to one of three buckets —
/// busy (compute, regrid work), comm (ghost exchange, migration), idle
/// (barrier waits, run tail) — so a finished timeline yields both the
/// RankUsage aggregate and the span list behind the Chrome-trace export.

#include <vector>

#include "sim/trace.hpp"
#include "util/types.hpp"

namespace ssamr::sim {

/// The virtual timeline of one rank (or of the monitor lane).
class RankTimeline {
 public:
  /// \param rank lane index recorded on every span (ranks 0..n-1; the
  ///        monitor lane uses n).
  explicit RankTimeline(int rank) : rank_(rank) {}

  int rank() const { return rank_; }

  /// Current local clock (end of the last recorded span).
  Seconds now() const { return now_; }

  /// Advance the clock to `until`, recording a span of the given kind.
  /// `until` may not precede the current clock; zero-length advances are
  /// accepted and record nothing.
  void advance(Seconds until, SpanKind kind, int iteration = -1);

  /// Advance the clock without recording (used by the monitor lane, which
  /// is not busy between sweeps).
  void skip_to(Seconds until);

  /// Busy/comm/idle totals accumulated so far.
  const RankUsage& usage() const { return usage_; }

  /// All recorded spans, in time order.
  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  int rank_;
  Seconds now_{0};
  RankUsage usage_;
  std::vector<TraceSpan> spans_;
};

}  // namespace ssamr::sim

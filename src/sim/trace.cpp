#include "sim/trace.hpp"

#include <algorithm>

namespace ssamr {

const char* span_kind_name(SpanKind k) {
  switch (k) {
    case SpanKind::kCompute: return "compute";
    case SpanKind::kComm: return "comm";
    case SpanKind::kSense: return "sense";
    case SpanKind::kRegrid: return "regrid";
    case SpanKind::kMigrate: return "migrate";
    case SpanKind::kIdle: return "idle";
  }
  return "unknown";
}

Percent RunTrace::mean_max_imbalance_pct() const {
  if (regrids.empty()) return Percent{0};
  real_t sum = 0;
  for (const RegridRecord& r : regrids) {
    real_t mx = 0;
    for (real_t i : r.imbalance_pct) mx = std::max(mx, i);
    sum += mx;
  }
  return Percent{sum / static_cast<real_t>(regrids.size())};
}

}  // namespace ssamr

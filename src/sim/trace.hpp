#pragma once
/// \file trace.hpp
/// Execution traces recorded by the adaptive runtime — exactly the series
/// the paper plots: per-regrid workload assignments (Figs. 8, 9, 11–15),
/// capacities at each sensing point, imbalance percentages (Fig. 10), and
/// the execution-time breakdown behind Fig. 7 / Tables I–III.
///
/// Beyond the paper's aggregates, a trace carries per-rank timeline data
/// filled in by the execution model (sim/exec_model.hpp): busy/comm/idle
/// totals per rank and the individual spans behind them, exportable as
/// Chrome trace-event JSON (sim/chrome_trace.hpp) for chrome://tracing or
/// Perfetto.

#include <string>
#include <vector>

#include "monitor/probe_health.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr {

/// One repartitioning event.
struct RegridRecord {
  int iteration = 0;       ///< coarse iteration at which the regrid ran
  int regrid_index = 0;    ///< 1-based regrid number (paper's x-axes)
  Seconds vtime{0};        ///< virtual time when it happened
  std::vector<real_t> capacities;     ///< C_k used by the partitioner
  std::vector<real_t> assigned_work;  ///< W_k
  std::vector<real_t> target_work;    ///< L_k = C_k · L
  std::vector<real_t> imbalance_pct;  ///< I_k (Eq. 2)
  int splits = 0;          ///< boxes broken by the partitioner
  std::size_t num_boxes = 0;  ///< composite boxes before splitting
  Work total_work{0};      ///< L

  /// Bit-exact comparison (the determinism tests diff whole traces).
  bool operator==(const RegridRecord&) const = default;
};

/// One sensing (NWS probe sweep) event.
struct SenseRecord {
  int iteration = 0;
  Seconds vtime{0};
  std::vector<real_t> capacities;  ///< capacities computed from this sweep

  bool operator==(const SenseRecord&) const = default;
};

/// What one timeline span represents.
enum class SpanKind : std::uint8_t {
  kCompute,  ///< patch updates (work / effective rate)
  kComm,     ///< ghost-exchange transfers or waiting on them
  kSense,    ///< resource-monitor probe sweep (monitor lane)
  kRegrid,   ///< flagging + clustering + partitioning at a regrid barrier
  kMigrate,  ///< data-migration transfers after a repartition
  kIdle,     ///< waiting at a barrier / run tail
};

/// Human-readable name of a span kind ("compute", "comm", ...).
const char* span_kind_name(SpanKind k);

/// One contiguous interval on a rank's virtual timeline.
struct TraceSpan {
  int rank = 0;  ///< 0..num_ranks-1; == num_ranks for the monitor lane
  SpanKind kind = SpanKind::kCompute;
  Seconds t0{0};
  Seconds t1{0};
  int iteration = -1;  ///< coarse iteration, -1 outside the advance loop

  bool operator==(const TraceSpan&) const = default;
};

/// Where one rank's virtual time went over the whole run.
struct RankUsage {
  Seconds busy_s{0};  ///< computing (including regrid/partition work)
  Seconds comm_s{0};  ///< ghost exchange + migration (visible part)
  Seconds idle_s{0};  ///< barrier waits and run tail

  bool operator==(const RankUsage&) const = default;
};

// ProbeHealth lives in monitor/probe_health.hpp next to the HealthLedger
// that accumulates it; RunTrace::health carries the final snapshot.

/// Complete record of one run.
struct RunTrace {
  std::vector<RegridRecord> regrids;
  std::vector<SenseRecord> senses;
  int iterations = 0;
  /// Virtual execution time, total and by component.
  Seconds total_time{0};
  Seconds compute_time{0};
  Seconds comm_time{0};
  Seconds sense_time{0};
  Seconds regrid_time{0};
  Seconds migrate_time{0};

  /// Execution-model identifier ("bsp", "event" or "proc").
  std::string model;
  /// Cluster size of the run (timeline lane count; monitor lane is extra).
  int num_ranks = 0;
  /// Per-rank busy/comm/idle totals, filled by the execution model.
  std::vector<RankUsage> rank_usage;
  /// Per-rank timeline spans (Chrome-trace exportable).
  std::vector<TraceSpan> spans;
  /// Probe-health tallies across all sensing sweeps of the run.
  ProbeHealth health;

  /// Mean of the per-regrid max imbalance.
  Percent mean_max_imbalance_pct() const;

  bool operator==(const RunTrace&) const = default;
};

}  // namespace ssamr

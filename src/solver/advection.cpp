#include "solver/advection.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ssamr {

AdvectionOperator::AdvectionOperator(real_t vx, real_t vy, real_t vz,
                                     real_t cx, real_t cy, real_t cz,
                                     real_t radius)
    : vx_(vx), vy_(vy), vz_(vz), cx_(cx), cy_(cy), cz_(cz), radius_(radius) {
  SSAMR_REQUIRE(radius > 0, "blob radius must be positive");
  SSAMR_REQUIRE(std::abs(vx) + std::abs(vy) + std::abs(vz) > 0,
                "advection velocity must be non-zero");
}

real_t AdvectionOperator::exact(real_t x, real_t y, real_t z,
                                real_t t) const {
  const real_t dx = x - (cx_ + vx_ * t);
  const real_t dy = y - (cy_ + vy_ * t);
  const real_t dz = z - (cz_ + vz_ * t);
  const real_t r2 = (dx * dx + dy * dy + dz * dz) / (radius_ * radius_);
  return std::exp(-r2);
}

void AdvectionOperator::initialize(Patch& p, real_t dx) const {
  GridFunction& u = p.data();
  const Box& b = p.box();
  for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
    for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
      for (coord_t i = b.lo().x; i <= b.hi().x; ++i)
        u(0, i, j, k) = exact((static_cast<real_t>(i) + 0.5) * dx,
                              (static_cast<real_t>(j) + 0.5) * dx,
                              (static_cast<real_t>(k) + 0.5) * dx, 0.0);
}

real_t AdvectionOperator::max_wave_speed(const Patch&) const {
  return std::max({std::abs(vx_), std::abs(vy_), std::abs(vz_)});
}

void AdvectionOperator::advance_impl(Patch& p, real_t dt, real_t dx,
                                     FaceFluxes* fluxes) const {
  const GridFunction& u = p.data();
  GridFunction& un = p.scratch();
  const Box& b = p.box();
  const real_t lambda = dt / dx;
  const real_t vel[3] = {vx_, vy_, vz_};
  // Upwind face flux through the low face of `cell` along `axis`.
  auto face = [&](IntVec cell, int axis) {
    IntVec lo = cell;
    lo.at(axis) -= 1;
    const real_t v = vel[axis];
    return v >= 0 ? v * u(0, lo.x, lo.y, lo.z)
                  : v * u(0, cell.x, cell.y, cell.z);
  };
  for (coord_t k = b.lo().z; k <= b.hi().z; ++k) {
    for (coord_t j = b.lo().y; j <= b.hi().y; ++j) {
      for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
        const IntVec cell(i, j, k);
        real_t div = 0;
        for (int d = 0; d < kDim; ++d) {
          IntVec hi = cell;
          hi.at(d) += 1;
          const real_t f_lo = face(cell, d);
          const real_t f_hi = face(hi, d);
          div += f_hi - f_lo;
          if (fluxes != nullptr) {
            fluxes->flux(d)(0, cell.x, cell.y, cell.z) = f_lo;
            fluxes->flux(d)(0, hi.x, hi.y, hi.z) = f_hi;
          }
        }
        un(0, i, j, k) = u(0, i, j, k) - lambda * div;
      }
    }
  }
}

void AdvectionOperator::advance(Patch& p, real_t dt, real_t dx) const {
  advance_impl(p, dt, dx, nullptr);
}

void AdvectionOperator::advance_capture(Patch& p, real_t dt, real_t dx,
                                        FaceFluxes& fluxes) const {
  advance_impl(p, dt, dx, &fluxes);
}

}  // namespace ssamr

#pragma once
/// \file advection.hpp
/// Scalar linear advection in 3-D — the simple kernel used by the
/// quickstart example and by tests that need a PDE with an exact solution.
///
/// u_t + a·∇u = 0, first-order upwind.

#include "amr/integrator.hpp"
#include "util/types.hpp"

namespace ssamr {

/// First-order upwind advection of one scalar.
class AdvectionOperator final : public PatchOperator {
 public:
  /// \param velocity constant advection velocity (a_x, a_y, a_z)
  /// \param blob_center initial Gaussian blob centre (physical coords)
  /// \param blob_radius initial Gaussian radius
  AdvectionOperator(real_t vx, real_t vy, real_t vz, real_t cx, real_t cy,
                    real_t cz, real_t radius);

  int ncomp() const override { return 1; }
  int ghost() const override { return 1; }
  void initialize(Patch& p, real_t dx) const override;
  real_t max_wave_speed(const Patch& p) const override;
  void advance(Patch& p, real_t dt, real_t dx) const override;
  bool supports_flux_capture() const override { return true; }
  void advance_capture(Patch& p, real_t dt, real_t dx,
                       FaceFluxes& fluxes) const override;

  /// Exact solution at a point and time (blob translated by velocity·t).
  real_t exact(real_t x, real_t y, real_t z, real_t t) const;

 private:
  void advance_impl(Patch& p, real_t dt, real_t dx,
                    FaceFluxes* fluxes) const;
  real_t vx_, vy_, vz_;
  real_t cx_, cy_, cz_;
  real_t radius_;
};

}  // namespace ssamr

#include "solver/euler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ssamr {

namespace {
constexpr real_t kRhoFloor = 1e-10;
constexpr real_t kPresFloor = 1e-10;
}  // namespace

EulerState to_conserved(const EulerPrimitive& prim, real_t gamma) {
  EulerState c;
  c[kRho] = prim.rho;
  c[kMomX] = prim.rho * prim.u;
  c[kMomY] = prim.rho * prim.v;
  c[kMomZ] = prim.rho * prim.w;
  const real_t kinetic =
      0.5 * prim.rho *
      (prim.u * prim.u + prim.v * prim.v + prim.w * prim.w);
  c[kEner] = prim.p / (gamma - 1) + kinetic;
  return c;
}

EulerPrimitive to_primitive(const EulerState& cons, real_t gamma) {
  EulerPrimitive p;
  p.rho = std::max(cons[kRho], kRhoFloor);
  p.u = cons[kMomX] / p.rho;
  p.v = cons[kMomY] / p.rho;
  p.w = cons[kMomZ] / p.rho;
  const real_t kinetic = 0.5 * p.rho * (p.u * p.u + p.v * p.v + p.w * p.w);
  p.p = std::max((gamma - 1) * (cons[kEner] - kinetic), kPresFloor);
  return p;
}

real_t sound_speed(const EulerPrimitive& prim, real_t gamma) {
  return std::sqrt(gamma * prim.p / std::max(prim.rho, kRhoFloor));
}

EulerState euler_flux(const EulerState& cons, int axis, real_t gamma) {
  SSAMR_ASSERT(axis >= 0 && axis < 3, "axis out of range");
  const EulerPrimitive p = to_primitive(cons, gamma);
  const real_t vel = axis == 0 ? p.u : (axis == 1 ? p.v : p.w);
  EulerState f;
  f[kRho] = cons[kRho] * vel;
  f[kMomX] = cons[kMomX] * vel;
  f[kMomY] = cons[kMomY] * vel;
  f[kMomZ] = cons[kMomZ] * vel;
  f[kMomX + axis] += p.p;
  f[kEner] = (cons[kEner] + p.p) * vel;
  return f;
}

EulerState rusanov_flux(const EulerState& left, const EulerState& right,
                        int axis, real_t gamma) {
  const EulerPrimitive pl = to_primitive(left, gamma);
  const EulerPrimitive pr = to_primitive(right, gamma);
  const real_t vl = axis == 0 ? pl.u : (axis == 1 ? pl.v : pl.w);
  const real_t vr = axis == 0 ? pr.u : (axis == 1 ? pr.v : pr.w);
  const real_t smax = std::max(std::abs(vl) + sound_speed(pl, gamma),
                               std::abs(vr) + sound_speed(pr, gamma));
  const EulerState fl = euler_flux(left, axis, gamma);
  const EulerState fr = euler_flux(right, axis, gamma);
  EulerState f;
  for (int c = 0; c < kEulerNcomp; ++c)
    f[c] = 0.5 * (fl[c] + fr[c]) - 0.5 * smax * (right[c] - left[c]);
  return f;
}

EulerOperator::EulerOperator(real_t gamma, EulerInitialCondition ic,
                             EulerReconstruction reconstruction)
    : gamma_(gamma), ic_(std::move(ic)), reconstruction_(reconstruction) {
  SSAMR_REQUIRE(gamma > 1, "gamma must exceed 1");
  SSAMR_REQUIRE(static_cast<bool>(ic_), "initial condition required");
}

EulerState EulerOperator::state_at(const GridFunction& u, coord_t i,
                                   coord_t j, coord_t k) const {
  EulerState s;
  for (int c = 0; c < kEulerNcomp; ++c) s[c] = u(c, i, j, k);
  return s;
}

void EulerOperator::initialize(Patch& p, real_t dx) const {
  GridFunction& u = p.data();
  const Box& b = p.box();
  for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
    for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
      for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
        const EulerState s =
            to_conserved(ic_((static_cast<real_t>(i) + 0.5) * dx,
                             (static_cast<real_t>(j) + 0.5) * dx,
                             (static_cast<real_t>(k) + 0.5) * dx),
                         gamma_);
        for (int c = 0; c < kEulerNcomp; ++c) u(c, i, j, k) = s[c];
      }
}

real_t EulerOperator::max_wave_speed(const Patch& p) const {
  const GridFunction& u = p.data();
  const Box& b = p.box();
  real_t smax = 0;
  for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
    for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
      for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
        const EulerPrimitive prim =
            to_primitive(state_at(u, i, j, k), gamma_);
        const real_t vmax = std::max(
            {std::abs(prim.u), std::abs(prim.v), std::abs(prim.w)});
        smax = std::max(smax, vmax + sound_speed(prim, gamma_));
      }
  return smax;
}

namespace {
/// minmod limiter.
real_t minmod(real_t a, real_t b) {
  if (a * b <= 0) return 0;
  return std::abs(a) < std::abs(b) ? a : b;
}
}  // namespace

EulerState EulerOperator::face_flux(const GridFunction& u, IntVec cell,
                                    int axis) const {
  IntVec step(0, 0, 0);
  step.at(axis) = 1;
  const IntVec n = cell + step;
  EulerState left, right;
  for (int c = 0; c < kEulerNcomp; ++c) {
    const real_t uc = u(c, cell.x, cell.y, cell.z);
    const real_t un = u(c, n.x, n.y, n.z);
    if (reconstruction_ == EulerReconstruction::FirstOrder) {
      left[c] = uc;
      right[c] = un;
      continue;
    }
    // MUSCL: minmod-limited linear reconstruction to the shared face.
    const IntVec m = cell - step;
    const IntVec nn = n + step;
    const real_t um = u(c, m.x, m.y, m.z);
    const real_t unn = u(c, nn.x, nn.y, nn.z);
    left[c] = uc + 0.5 * minmod(uc - um, un - uc);
    right[c] = un - 0.5 * minmod(un - uc, unn - un);
  }
  return rusanov_flux(left, right, axis, gamma_);
}

void EulerOperator::advance_impl(Patch& p, real_t dt, real_t dx,
                                 FaceFluxes* fluxes) const {
  const GridFunction& u = p.data();
  GridFunction& un = p.scratch();
  const Box& b = p.box();
  const real_t lambda = dt / dx;
  for (coord_t k = b.lo().z; k <= b.hi().z; ++k) {
    for (coord_t j = b.lo().y; j <= b.hi().y; ++j) {
      for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
        const IntVec cell(i, j, k);
        const EulerState c = state_at(u, i, j, k);
        // face_flux(u, cell, axis) is the flux between `cell` and its
        // +axis neighbour, i.e. the LOW face of cell + e_axis.
        const EulerState fxl = face_flux(u, IntVec(i - 1, j, k), 0);
        const EulerState fxr = face_flux(u, cell, 0);
        const EulerState fyl = face_flux(u, IntVec(i, j - 1, k), 1);
        const EulerState fyr = face_flux(u, cell, 1);
        const EulerState fzl = face_flux(u, IntVec(i, j, k - 1), 2);
        const EulerState fzr = face_flux(u, cell, 2);
        for (int comp = 0; comp < kEulerNcomp; ++comp) {
          un(comp, i, j, k) =
              c[comp] - lambda * ((fxr[comp] - fxl[comp]) +
                                  (fyr[comp] - fyl[comp]) +
                                  (fzr[comp] - fzl[comp]));
        }
        if (fluxes != nullptr) {
          for (int comp = 0; comp < kEulerNcomp; ++comp) {
            fluxes->flux(0)(comp, i, j, k) = fxl[comp];
            fluxes->flux(0)(comp, i + 1, j, k) = fxr[comp];
            fluxes->flux(1)(comp, i, j, k) = fyl[comp];
            fluxes->flux(1)(comp, i, j + 1, k) = fyr[comp];
            fluxes->flux(2)(comp, i, j, k) = fzl[comp];
            fluxes->flux(2)(comp, i, j, k + 1) = fzr[comp];
          }
        }
      }
    }
  }
}

void EulerOperator::advance(Patch& p, real_t dt, real_t dx) const {
  advance_impl(p, dt, dx, nullptr);
}

void EulerOperator::advance_capture(Patch& p, real_t dt, real_t dx,
                                    FaceFluxes& fluxes) const {
  advance_impl(p, dt, dx, &fluxes);
}

}  // namespace ssamr

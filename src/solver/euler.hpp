#pragma once
/// \file euler.hpp
/// 3-D compressible Euler equations: finite-volume Rusanov (local
/// Lax–Friedrichs) scheme for a γ-law gas.  This is the substrate for the
/// Richtmyer–Meshkov kernel the paper evaluates with.

#include <array>
#include <functional>

#include "amr/integrator.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Conserved variable indices.
enum EulerComp : int {
  kRho = 0,   ///< density
  kMomX = 1,  ///< x-momentum
  kMomY = 2,  ///< y-momentum
  kMomZ = 3,  ///< z-momentum
  kEner = 4,  ///< total energy density
  kEulerNcomp = 5
};

/// A conserved state vector.
using EulerState = std::array<real_t, kEulerNcomp>;

/// Primitive description of a gas state.
struct EulerPrimitive {
  real_t rho = 1;
  real_t u = 0, v = 0, w = 0;
  real_t p = 1;
};

/// Convert primitive → conserved for a γ-law gas.
EulerState to_conserved(const EulerPrimitive& prim, real_t gamma);

/// Convert conserved → primitive; density/pressure are floored at tiny
/// positive values for robustness.
EulerPrimitive to_primitive(const EulerState& cons, real_t gamma);

/// Sound speed of a primitive state.
real_t sound_speed(const EulerPrimitive& prim, real_t gamma);

/// Physical flux along one direction (0=x, 1=y, 2=z).
EulerState euler_flux(const EulerState& cons, int axis, real_t gamma);

/// Rusanov numerical flux between two states along an axis.
EulerState rusanov_flux(const EulerState& left, const EulerState& right,
                        int axis, real_t gamma);

/// Initial-condition callback: primitive state at a physical point.
using EulerInitialCondition =
    std::function<EulerPrimitive(real_t x, real_t y, real_t z)>;

/// Spatial reconstruction of the finite-volume kernel.
enum class EulerReconstruction {
  FirstOrder,  ///< piecewise-constant states at faces (very robust)
  Muscl,       ///< piecewise-linear, minmod-limited (2nd order in space)
};

/// Rusanov finite-volume Euler kernel with selectable reconstruction.
class EulerOperator final : public PatchOperator {
 public:
  EulerOperator(real_t gamma, EulerInitialCondition ic,
                EulerReconstruction reconstruction =
                    EulerReconstruction::FirstOrder);

  int ncomp() const override { return kEulerNcomp; }
  int ghost() const override {
    return reconstruction_ == EulerReconstruction::Muscl ? 2 : 1;
  }
  void initialize(Patch& p, real_t dx) const override;
  real_t max_wave_speed(const Patch& p) const override;
  void advance(Patch& p, real_t dt, real_t dx) const override;
  bool supports_flux_capture() const override { return true; }
  void advance_capture(Patch& p, real_t dt, real_t dx,
                       FaceFluxes& fluxes) const override;

  real_t gamma() const { return gamma_; }
  EulerReconstruction reconstruction() const { return reconstruction_; }

 private:
  EulerState state_at(const GridFunction& u, coord_t i, coord_t j,
                      coord_t k) const;
  /// Face flux between cells c (at index) and its +axis neighbour, with
  /// the configured reconstruction.
  EulerState face_flux(const GridFunction& u, IntVec cell, int axis) const;
  void advance_impl(Patch& p, real_t dt, real_t dx,
                    FaceFluxes* fluxes) const;
  real_t gamma_;
  EulerInitialCondition ic_;
  EulerReconstruction reconstruction_;
};

}  // namespace ssamr

#include "solver/richtmyer_meshkov.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ssamr {

namespace {
constexpr real_t kPi = 3.14159265358979323846;
}

EulerPrimitive rankine_hugoniot_post_shock(real_t rho0, real_t p0,
                                           real_t mach, real_t gamma) {
  SSAMR_REQUIRE(mach > 1, "shock Mach number must exceed 1");
  SSAMR_REQUIRE(rho0 > 0 && p0 > 0, "pre-shock state must be positive");
  const real_t m2 = mach * mach;
  EulerPrimitive post;
  post.p = p0 * (2 * gamma * m2 - (gamma - 1)) / (gamma + 1);
  post.rho = rho0 * ((gamma + 1) * m2) / ((gamma - 1) * m2 + 2);
  // Piston (post-shock gas) velocity in the lab frame, shock moving in +x.
  const real_t c0 = std::sqrt(gamma * p0 / rho0);
  post.u = (2 * c0 / (gamma + 1)) * (mach - 1 / mach);
  post.v = post.w = 0;
  return post;
}

EulerInitialCondition make_rm_initial_condition(
    const RichtmyerMeshkovConfig& cfg) {
  SSAMR_REQUIRE(cfg.shock_x < cfg.interface_x,
                "shock must start left of the interface");
  SSAMR_REQUIRE(cfg.density_ratio > 0, "density ratio must be positive");
  const EulerPrimitive post = rankine_hugoniot_post_shock(
      cfg.rho_light, cfg.p0, cfg.mach, cfg.gamma);
  return [cfg, post](real_t x, real_t y, real_t z) -> EulerPrimitive {
    const real_t xs = cfg.shock_x * cfg.lx;
    const real_t xi =
        cfg.interface_x * cfg.lx +
        cfg.amplitude * cfg.lx *
            (std::cos(2 * kPi * cfg.waves_y * y / cfg.ly) +
             0.5 * std::cos(2 * kPi * cfg.waves_z * z / cfg.lz));
    if (x < xs) return post;  // post-shock light gas
    EulerPrimitive pre;
    pre.p = cfg.p0;
    pre.u = pre.v = pre.w = 0;
    pre.rho = x < xi ? cfg.rho_light : cfg.rho_light * cfg.density_ratio;
    return pre;
  };
}

EulerOperator make_rm_operator(const RichtmyerMeshkovConfig& cfg) {
  return EulerOperator(cfg.gamma, make_rm_initial_condition(cfg),
                       cfg.reconstruction);
}

}  // namespace ssamr

#pragma once
/// \file richtmyer_meshkov.hpp
/// The paper's evaluation application: a 3-D compressible kernel solving
/// the Richtmyer–Meshkov instability — a planar shock travelling along x
/// strikes a perturbed density interface, depositing vorticity that grows
/// into the characteristic mushroom structures and keeps the refinement
/// region moving and deforming.

#include "solver/euler.hpp"
#include "util/types.hpp"

namespace ssamr {

/// Problem parameters.  The physical domain is [0,Lx]×[0,Ly]×[0,Lz] where
/// L = extent(level 0) · dx0.
struct RichtmyerMeshkovConfig {
  real_t gamma = 1.4;
  /// Shock Mach number in the light gas.
  real_t mach = 1.5;
  /// Pre-shock light-gas state.
  real_t rho_light = 1.0;
  real_t p0 = 1.0;
  /// Density ratio heavy/light across the interface.
  real_t density_ratio = 3.0;
  /// Shock plane x-position as a fraction of Lx.
  real_t shock_x = 0.15;
  /// Unperturbed interface x-position as a fraction of Lx.
  real_t interface_x = 0.3;
  /// Perturbation amplitude as a fraction of Lx.
  real_t amplitude = 0.03;
  /// Transverse wave counts.
  int waves_y = 2;
  int waves_z = 1;
  /// Domain physical size (used to convert fractions; set from the mesh).
  real_t lx = 1.0, ly = 0.25, lz = 0.25;
  /// Spatial reconstruction of the kernel.
  EulerReconstruction reconstruction = EulerReconstruction::FirstOrder;
};

/// Build the initial condition for the RM problem.  Post-shock state is
/// computed from Rankine–Hugoniot relations at the given Mach number.
EulerInitialCondition make_rm_initial_condition(
    const RichtmyerMeshkovConfig& cfg);

/// Convenience factory: an EulerOperator preconfigured for the RM problem.
EulerOperator make_rm_operator(const RichtmyerMeshkovConfig& cfg);

/// Post-shock primitive state from the Rankine–Hugoniot relations (exposed
/// for tests).
EulerPrimitive rankine_hugoniot_post_shock(real_t rho0, real_t p0,
                                           real_t mach, real_t gamma);

}  // namespace ssamr

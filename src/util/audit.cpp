#include "util/audit.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace ssamr::audit::detail {

void enforce(const AuditReport& report, const char* file, int line) {
  if (report.clean()) return;
  if (report.ok()) {
    SSAMR_DEBUG << file << ":" << line << " " << report.summary();
    return;
  }
  std::ostringstream os;
  os << "invariant audit failed at " << file << ":" << line << "\n"
     << report.summary();
  throw Error(os.str());
}

}  // namespace ssamr::audit::detail

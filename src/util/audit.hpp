#pragma once
/// \file audit.hpp
/// The SSAMR_AUDIT hook: enforce an AuditReport at a call site.
///
/// SSAMR_AUDIT(expr) evaluates `expr` (an expression yielding an
/// audit::AuditReport, typically a validator call), throws ssamr::Error when
/// the report contains Error-severity violations, and logs a debug summary
/// when it only contains warnings.  The hook is compiled in for Debug
/// builds and for audit builds (cmake -DSSAMR_AUDIT=ON, which defines
/// SSAMR_ENABLE_AUDIT); in optimized NDEBUG builds without the option it
/// compiles to nothing, so hot paths pay nothing.
///
/// This seam lives in util/ — the bottom layer — so every subsystem can
/// hook its own invariant audits without reaching up into the audit/
/// aggregation layer.  The per-subsystem validators live next to the data
/// they check (e.g. capacity/capacity_audit.hpp); audit/validator.hpp
/// re-aggregates them behind the historical Validator facade.

#include "util/audit_report.hpp"
#include "util/types.hpp"

#if !defined(SSAMR_AUDIT_ENABLED)
#if defined(SSAMR_ENABLE_AUDIT) || !defined(NDEBUG)
#define SSAMR_AUDIT_ENABLED 1
#else
#define SSAMR_AUDIT_ENABLED 0
#endif
#endif

namespace ssamr::audit {

/// Tolerances of the audit checks, shared by every per-subsystem validator.
struct AuditConfig {
  /// Allowed deviation of Σ C_k from 1 and of any C_k outside [0, 1].
  real_t capacity_tolerance = 1e-6;
  /// Relative tolerance of exact bookkeeping identities (work sums).
  real_t work_rel_tolerance = 1e-6;
  /// Per-rank deviation of assigned from target work beyond which a
  /// load-tracking warning is issued, as a fraction of the mean target.
  real_t load_rel_tolerance = 0.5;
  /// Multiplicative slack on the aspect-ratio bound (numerical headroom).
  real_t aspect_slack = 1.0 + 1e-9;
};

namespace detail {
/// Throw ssamr::Error on report errors; log warnings at Debug level.
void enforce(const AuditReport& report, const char* file, int line);
}  // namespace detail

/// True when SSAMR_AUDIT hooks are active in this translation unit's build.
constexpr bool hooks_enabled() { return SSAMR_AUDIT_ENABLED != 0; }

}  // namespace ssamr::audit

#if SSAMR_AUDIT_ENABLED
#define SSAMR_AUDIT(report_expr) \
  ::ssamr::audit::detail::enforce((report_expr), __FILE__, __LINE__)
#else
#define SSAMR_AUDIT(report_expr) ((void)0)
#endif

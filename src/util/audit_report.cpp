#include "util/audit_report.hpp"

#include <ostream>
#include <sstream>

namespace ssamr::audit {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "unknown";
}

std::ostream& operator<<(std::ostream& os, const Violation& v) {
  os << severity_name(v.severity) << " [" << v.check << "]";
  if (!v.location.empty()) os << " at " << v.location;
  os << ": " << v.message;
  return os;
}

void AuditReport::add(Severity severity, std::string check,
                      std::string location, std::string message) {
  violations_.push_back(Violation{severity, std::move(check),
                                  std::move(location), std::move(message)});
}

void AuditReport::merge(const AuditReport& other) {
  violations_.insert(violations_.end(), other.violations_.begin(),
                     other.violations_.end());
}

bool AuditReport::ok() const { return error_count() == 0; }

std::size_t AuditReport::error_count() const {
  std::size_t n = 0;
  for (const Violation& v : violations_)
    if (v.severity == Severity::Error) ++n;
  return n;
}

std::size_t AuditReport::warning_count() const {
  return violations_.size() - error_count();
}

bool AuditReport::has(const std::string& check) const {
  for (const Violation& v : violations_)
    if (v.check == check) return true;
  return false;
}

std::vector<Violation> AuditReport::of_check(const std::string& check) const {
  std::vector<Violation> out;
  for (const Violation& v : violations_)
    if (v.check == check) out.push_back(v);
  return out;
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  const std::string what = subject_.empty() ? "audit" : "audit of " + subject_;
  if (clean()) {
    os << what << ": clean";
    return os.str();
  }
  os << what << ": " << error_count() << " error(s), " << warning_count()
     << " warning(s)";
  for (const Violation& v : violations_) os << "\n  " << v;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AuditReport& r) {
  return os << r.summary();
}

}  // namespace ssamr::audit

#pragma once
/// \file report.hpp
/// Structured results of an invariant audit.
///
/// Validators (validator.hpp) never throw on violated invariants — they
/// collect every violation into an AuditReport so that callers (tests, the
/// experiment driver, the SSAMR_AUDIT hook) can decide what to do: print,
/// count, assert, or escalate.  Severity::Error marks a broken structural
/// invariant (the computation is wrong); Severity::Warning marks a soft
/// violation (quality degradation, tolerance exceeded) that does not fail
/// AuditReport::ok().

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ssamr::audit {

/// How bad one violation is.
enum class Severity {
  Warning,  ///< Soft bound exceeded; the structure is still consistent.
  Error,    ///< Structural invariant broken; results cannot be trusted.
};

/// Human-readable name of a severity.
const char* severity_name(Severity s);

/// One violated invariant.
struct Violation {
  Severity severity = Severity::Error;
  /// Stable identifier of the check, e.g. "partition.coverage".
  std::string check;
  /// Where the violation happened, e.g. "rank 3" or "level 2 box [...]".
  std::string location;
  /// What exactly is wrong (with the offending values).
  std::string message;
};

std::ostream& operator<<(std::ostream& os, const Violation& v);

/// The outcome of one audit pass: a (possibly empty) list of violations.
class AuditReport {
 public:
  AuditReport() = default;
  /// \param subject what was audited, e.g. "partition" (used in summaries).
  explicit AuditReport(std::string subject) : subject_(std::move(subject)) {}

  const std::string& subject() const { return subject_; }

  /// Record one violation.
  void add(Severity severity, std::string check, std::string location,
           std::string message);

  /// Absorb all violations of another report.
  void merge(const AuditReport& other);

  /// True when no Error-severity violation was recorded (warnings allowed).
  bool ok() const;
  /// True when nothing at all was recorded.
  bool clean() const { return violations_.empty(); }

  std::size_t error_count() const;
  std::size_t warning_count() const;

  const std::vector<Violation>& violations() const { return violations_; }

  /// True when some violation of the given check id was recorded.
  bool has(const std::string& check) const;

  /// All violations of one check id.
  std::vector<Violation> of_check(const std::string& check) const;

  /// One line per violation plus a header; "audit of <subject>: clean" when
  /// empty.
  std::string summary() const;

 private:
  std::string subject_;
  std::vector<Violation> violations_;
};

std::ostream& operator<<(std::ostream& os, const AuditReport& r);

}  // namespace ssamr::audit

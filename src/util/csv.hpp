#pragma once
/// \file csv.hpp
/// Minimal CSV writer used by experiment harnesses to dump raw series
/// (figure data) next to the printed summary tables.

#include <fstream>
#include <string>
#include <vector>

namespace ssamr {

/// Streams rows to a CSV file.  Fields containing commas or quotes are
/// escaped per RFC 4180.
class CsvWriter {
 public:
  /// Open (truncate) the file and write the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one data row; must match the header arity.
  void add_row(const std::vector<std::string>& row);

  /// True when the file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

 private:
  void write_row(const std::vector<std::string>& row);
  std::ofstream out_;
  std::size_t arity_;
};

/// Escape a single CSV field.
std::string csv_escape(const std::string& field);

}  // namespace ssamr

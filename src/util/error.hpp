#pragma once
/// \file error.hpp
/// Error handling for the ssamr library.
///
/// Library invariants are checked with SSAMR_REQUIRE (argument validation,
/// always on) and SSAMR_ASSERT (internal invariants, compiled out in
/// NDEBUG builds).  Both throw ssamr::Error so that callers — including the
/// test suite — can observe failures without aborting the process.

#include <stdexcept>
#include <string>
#include <sstream>

namespace ssamr {

/// Exception thrown on violated preconditions or internal invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* kind, const char* expr,
                               const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ssamr

#define SSAMR_REQUIRE(cond, msg)                                          \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ssamr::detail::raise("requirement", #cond, __FILE__, __LINE__,    \
                             (msg));                                      \
  } while (0)

#ifdef NDEBUG
#define SSAMR_ASSERT(cond, msg) ((void)0)
#else
#define SSAMR_ASSERT(cond, msg)                                           \
  do {                                                                    \
    if (!(cond))                                                          \
      ::ssamr::detail::raise("assertion", #cond, __FILE__, __LINE__,      \
                             (msg));                                      \
  } while (0)
#endif

#include "util/logging.hpp"

#include <iostream>

namespace ssamr {

namespace {
LogLevel g_level = LogLevel::Warn;
std::ostream* g_sink = nullptr;
}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel lvl) { g_level = lvl; }

void Log::set_sink(std::ostream* os) { g_sink = os; }

const char* Log::name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel lvl, const std::string& msg) {
  if (lvl < g_level || g_level == LogLevel::Off) return;
  std::ostream& os = g_sink ? *g_sink : std::cerr;
  os << "[" << name(lvl) << "] " << msg << '\n';
}

}  // namespace ssamr

#include "util/logging.hpp"

#include <atomic>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "util/thread_safety.hpp"
#include "util/wallclock.hpp"

namespace ssamr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
// Serializes emission: messages from pool workers (parallel experiment
// trials, parallel runtime stages) must not interleave mid-line.  The sink
// pointer is part of the serialized state — swapping it mid-message would
// tear output across two streams.
Mutex g_write_mutex;
std::ostream* g_sink SSAMR_GUARDED_BY(g_write_mutex) = nullptr;

/// Wall-clock timestamps are opt-in (SSAMR_LOG_TIMESTAMPS=1): log output
/// is the one place nondeterministic time is allowed, and only through the
/// sanctioned wallclock seam.  Diagnostics never feed traces or goldens.
bool timestamps_enabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("SSAMR_LOG_TIMESTAMPS");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return enabled;
}
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void Log::set_sink(std::ostream* os) {
  MutexLock lock(g_write_mutex);
  g_sink = os;
}

const char* Log::name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel lvl, const std::string& msg) {
  MutexLock lock(g_write_mutex);
  const LogLevel min = g_level.load(std::memory_order_relaxed);
  if (lvl < min || min == LogLevel::Off) return;
  std::ostream& os = g_sink != nullptr ? *g_sink : std::cerr;
  if (timestamps_enabled()) {
    // Restore the stream's formatting: the sink is shared (std::cerr or a
    // test-injected stream) and must not keep our fixed/precision state.
    const std::ios_base::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os << std::fixed << std::setprecision(3) << wallclock_since_start()
       << "s ";
    os.flags(flags);
    os.precision(precision);
  }
  os << "[" << name(lvl) << "] " << msg << '\n';
}

}  // namespace ssamr

#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ssamr {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<std::ostream*> g_sink{nullptr};
// Serializes emission: messages from pool workers (parallel experiment
// trials, parallel runtime stages) must not interleave mid-line.
std::mutex g_write_mutex;
}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel lvl) {
  g_level.store(lvl, std::memory_order_relaxed);
}

void Log::set_sink(std::ostream* os) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  g_sink.store(os, std::memory_order_relaxed);
}

const char* Log::name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  const LogLevel min = g_level.load(std::memory_order_relaxed);
  if (lvl < min || min == LogLevel::Off) return;
  std::ostream* sink = g_sink.load(std::memory_order_relaxed);
  std::ostream& os = sink ? *sink : std::cerr;
  os << "[" << name(lvl) << "] " << msg << '\n';
}

}  // namespace ssamr

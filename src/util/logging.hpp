#pragma once
/// \file logging.hpp
/// Minimal leveled logger.
///
/// The library is quiet by default (level = Warn); experiment harnesses and
/// examples raise the level to Info to narrate progress.  The logger writes
/// to an injectable std::ostream so tests can capture output.

#include <iosfwd>
#include <sstream>
#include <string>

namespace ssamr {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Process-wide logger configuration and sink.
class Log {
 public:
  /// Current minimum level that will be emitted.
  static LogLevel level();
  /// Set the minimum level to emit.
  static void set_level(LogLevel lvl);
  /// Redirect output (default: std::cerr).  Pass nullptr to restore default.
  static void set_sink(std::ostream* os);
  /// Emit one message at the given level (no-op when below threshold).
  static void write(LogLevel lvl, const std::string& msg);
  /// Human-readable name of a level.
  static const char* name(LogLevel lvl);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace ssamr

#define SSAMR_LOG(lvl) ::ssamr::detail::LogLine(::ssamr::LogLevel::lvl)
#define SSAMR_INFO SSAMR_LOG(Info)
#define SSAMR_DEBUG SSAMR_LOG(Debug)
#define SSAMR_WARN SSAMR_LOG(Warn)

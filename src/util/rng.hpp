#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All stochastic behaviour in the library (sensor noise, synthetic load
/// phase jitter, workload traces) flows through ssamr::Rng seeded explicitly
/// by the caller, so every experiment run is exactly reproducible.

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/types.hpp"

namespace ssamr {

/// splitmix64 — used to expand a user seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator, so it can
/// be used with <random> distributions as well as the convenience helpers
/// below.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a seed; equal seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform real in [0, 1).
  real_t uniform() {
    return static_cast<real_t>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  real_t uniform(real_t lo, real_t hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Standard normal deviate (Marsaglia polar method).
  real_t normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    real_t u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const real_t m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal deviate with given mean and standard deviation.
  real_t normal(real_t mean, real_t stddev) {
    return mean + stddev * normal();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
  bool have_spare_ = false;
  real_t spare_ = 0;
};

}  // namespace ssamr

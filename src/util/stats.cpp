#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace ssamr {

RunningStats::RunningStats()
    : min_(std::numeric_limits<real_t>::infinity()),
      max_(-std::numeric_limits<real_t>::infinity()) {}

void RunningStats::push(real_t x) {
  ++n_;
  const real_t delta = x - mean_;
  mean_ += delta / static_cast<real_t>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

real_t RunningStats::variance() const {
  if (n_ < 2) return 0;
  return m2_ / static_cast<real_t>(n_ - 1);
}

real_t RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats(); }

real_t mean_of(const std::vector<real_t>& v) {
  if (v.empty()) return 0;
  real_t s = 0;
  for (real_t x : v) s += x;
  return s / static_cast<real_t>(v.size());
}

real_t stddev_of(const std::vector<real_t>& v) {
  if (v.size() < 2) return 0;
  const real_t m = mean_of(v);
  real_t s = 0;
  for (real_t x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<real_t>(v.size() - 1));
}

real_t median_of(std::vector<real_t> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const real_t hi = v[mid];
  const real_t lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

real_t quantile_of(std::vector<real_t> v, real_t q) {
  SSAMR_REQUIRE(q >= 0 && q <= 1, "quantile must be in [0,1]");
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const real_t pos = q * static_cast<real_t>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const real_t frac = pos - static_cast<real_t>(lo);
  return v[lo] * (1 - frac) + v[hi] * frac;
}

real_t mse_of(const std::vector<real_t>& actual,
              const std::vector<real_t>& predicted) {
  SSAMR_REQUIRE(actual.size() == predicted.size(),
                "mse_of requires equally sized series");
  if (actual.empty()) return 0;
  real_t s = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const real_t d = actual[i] - predicted[i];
    s += d * d;
  }
  return s / static_cast<real_t>(actual.size());
}

}  // namespace ssamr

#pragma once
/// \file stats.hpp
/// Small statistics helpers used by the NWS-style forecasters and by
/// experiment reporting: running moments, order statistics, and simple
/// aggregate summaries over vectors.

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace ssamr {

/// Incrementally maintained mean / variance (Welford's algorithm).
class RunningStats {
 public:
  /// Add one observation.
  void push(real_t x);
  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Mean of observations (0 when empty).
  real_t mean() const { return mean_; }
  /// Unbiased sample variance (0 when fewer than two observations).
  real_t variance() const;
  /// Sample standard deviation.
  real_t stddev() const;
  /// Smallest observation (+inf when empty).
  real_t min() const { return min_; }
  /// Largest observation (-inf when empty).
  real_t max() const { return max_; }
  /// Reset to the empty state.
  void reset();

 private:
  std::size_t n_ = 0;
  real_t mean_ = 0;
  real_t m2_ = 0;
  real_t min_;
  real_t max_;

 public:
  RunningStats();
};

/// Mean of a vector (0 when empty).
real_t mean_of(const std::vector<real_t>& v);

/// Sample standard deviation of a vector (0 when size < 2).
real_t stddev_of(const std::vector<real_t>& v);

/// Median of a vector (0 when empty).  Copies its argument.
real_t median_of(std::vector<real_t> v);

/// q-quantile via linear interpolation on the sorted sample, q in [0, 1].
real_t quantile_of(std::vector<real_t> v, real_t q);

/// Mean squared error between two equally sized series.
real_t mse_of(const std::vector<real_t>& actual,
              const std::vector<real_t>& predicted);

}  // namespace ssamr

#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ssamr {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SSAMR_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  SSAMR_REQUIRE(row.size() == header_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::str() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace ssamr

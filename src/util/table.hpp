#pragma once
/// \file table.hpp
/// ASCII table formatting for experiment harnesses.
///
/// Every bench binary reports its results as a right-aligned ASCII table so
/// the output can be compared visually with the paper's tables and figure
/// series.

#include <iosfwd>
#include <string>
#include <vector>

namespace ssamr {

/// A simple column-aligned ASCII table.
///
///   Table t({"procs", "time (s)"});
///   t.add_row({"4", "292.0"});
///   t.print(std::cout);
class Table {
 public:
  /// Construct with the header row.
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

  /// Render to a stream with a separator under the header.
  void print(std::ostream& os) const;

  /// Render to a string.
  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a real with fixed precision (default 1 decimal).
std::string fmt(double v, int precision = 1);

/// Format a percentage, e.g. fmt_pct(0.18) == "18.0%". Input is a fraction.
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace ssamr

#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "util/error.hpp"

namespace ssamr {

namespace {

/// Identity of the current thread within its pool: set for worker threads
/// so submit() lands in the worker's own deque and run_one_task() pops
/// locally first.
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_queue = 0;  // index into queues_

/// The active global pool; swapped by ThreadPoolOverride (tests).
std::atomic<ThreadPool*> g_override{nullptr};

}  // namespace

int ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("SSAMR_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  if (ThreadPool* override_pool = g_override.load(std::memory_order_acquire))
    return *override_pool;
  static ThreadPool pool(default_thread_count());
  return pool;
}

ThreadPool::ThreadPool(int threads) {
  SSAMR_REQUIRE(threads >= 1, "thread pool needs at least one thread");
  const int nworkers = threads - 1;
  queues_.reserve(static_cast<std::size_t>(nworkers) + 1);
  for (int q = 0; q <= nworkers; ++q)
    queues_.push_back(std::make_unique<Deque>());
  workers_.reserve(static_cast<std::size_t>(nworkers));
  for (int w = 0; w < nworkers; ++w)
    workers_.emplace_back(
        [this, w] { worker_main(static_cast<std::size_t>(w)); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Workers drain their queues before exiting; anything still queued was
  // submitted after shutdown began — run it here so futures don't break.
  while (run_one_task()) {
  }
}

void ThreadPool::notify_one() {
  // Notify under the mutex so it pairs with the sleeper's predicate check,
  // closing the decide-to-sleep / task-arrives window.
  MutexLock lock(sleep_mutex_);
  sleep_cv_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  if (worker_count() == 0) {
    task();  // serial path: SSAMR_THREADS=1
    return;
  }
  const std::size_t qi = (tl_pool == this) ? tl_queue : 0;
  {
    Deque& dq = *queues_[qi];
    MutexLock lock(dq.mutex);
    dq.tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  notify_one();
}

bool ThreadPool::try_pop(std::size_t queue_index, std::function<void()>& out,
                         bool back) {
  Deque& dq = *queues_[queue_index];
  MutexLock lock(dq.mutex);
  if (dq.tasks.empty()) return false;
  if (back) {
    out = std::move(dq.tasks.back());
    dq.tasks.pop_back();
  } else {
    out = std::move(dq.tasks.front());
    dq.tasks.pop_front();
  }
  return true;
}

bool ThreadPool::run_one_task() {
  if (queues_.empty()) return false;
  std::function<void()> task;
  const std::size_t own =
      (tl_pool == this) ? tl_queue : 0;  // externals use the injection queue
  // Own deque newest-first (locality), then everyone else oldest-first
  // (classic steal order).
  bool found = try_pop(own, task, /*back=*/own != 0);
  for (std::size_t k = 1; !found && k < queues_.size() + 1; ++k) {
    const std::size_t qi = (own + k) % queues_.size();
    found = try_pop(qi, task, /*back=*/false);
  }
  if (!found) return false;
  pending_.fetch_sub(1, std::memory_order_release);
  task();
  return true;
}

void ThreadPool::worker_main(std::size_t index) {
  tl_pool = this;
  tl_queue = index + 1;
  for (;;) {
    if (run_one_task()) continue;
    MutexLock lock(sleep_mutex_);
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

void ThreadPool::run_parallel(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> live_helpers{0};
    std::atomic<bool> abort{false};
    Mutex mutex;
    CondVar cv;
    std::exception_ptr error SSAMR_GUARDED_BY(mutex);
  };
  Shared shared;

  auto drain = [&shared, &body, n] {
    for (;;) {
      const std::size_t i =
          shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (!shared.abort.load(std::memory_order_relaxed)) {
        try {
          body(i);
        } catch (...) {
          MutexLock lock(shared.mutex);
          if (!shared.error) shared.error = std::current_exception();
          shared.abort.store(true, std::memory_order_relaxed);
        }
      }
      if (shared.done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        MutexLock lock(shared.mutex);
        shared.cv.notify_all();
      }
    }
  };

  // One helper task per worker that could usefully participate.  Helpers
  // reference this stack frame, so the epilogue below must not return
  // until every helper has exited (live_helpers == 0), not merely until
  // all indices ran.
  const int helpers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(worker_count()), n - 1));
  shared.live_helpers.store(helpers, std::memory_order_release);
  for (int h = 0; h < helpers; ++h) {
    submit([&shared, &drain] {
      drain();
      // This decrement must be the helper's LAST access to the shared
      // frame: once it reads 0, the caller below is free to return and
      // destroy `shared`.  No notify here — the caller's bounded wait_for
      // re-checks within 1ms.
      shared.live_helpers.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  drain();  // the calling thread participates

  auto finished = [&shared, n] {
    return shared.done.load(std::memory_order_acquire) >= n &&
           shared.live_helpers.load(std::memory_order_acquire) == 0;
  };
  while (!finished()) {
    // Help with whatever is queued (possibly our own helpers, possibly
    // unrelated tasks) rather than blocking a thread.
    if (run_one_task()) continue;
    MutexLock lock(shared.mutex);
    shared.cv.wait_for(lock, std::chrono::milliseconds(1),
                       [&finished] { return finished(); });
  }
  // Everyone is done, but the analysis (rightly) insists error is read
  // under its guard; the lock is uncontended here.
  std::exception_ptr error;
  {
    MutexLock lock(shared.mutex);
    error = shared.error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPoolOverride::ThreadPoolOverride(int threads)
    : pool_(threads),
      previous_(g_override.exchange(&pool_, std::memory_order_acq_rel)) {}

ThreadPoolOverride::~ThreadPoolOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace ssamr

#pragma once
/// \file thread_pool.hpp
/// Work-stealing thread pool for the embarrassingly parallel stages of the
/// SAMR pipeline (per-patch integration, flagging, clustering, per-rank
/// cost evaluation, independent experiment trials).
///
/// Determinism contract: every parallel primitive here produces results
/// that are *bit-identical* to the serial path, at any thread count.
///  - parallel_for(n, body): body(i) may only write to state owned by
///    index i (its patch, its result slot).  The index set and the
///    per-index computation are the same as the serial loop; only the
///    execution order differs, which by the ownership rule cannot be
///    observed.
///  - transform_reduce_ordered(n, init, map, combine): map(i) runs in
///    parallel into per-index slots; the combine walks the slots serially
///    in index order 0..n-1.  Floating-point reductions therefore
///    associate exactly as the serial loop does.
/// This is what makes the determinism and golden-file regression tests
/// possible (tests/determinism_test.cpp, tests/golden/).
///
/// Concurrency: `SSAMR_THREADS` sets the total concurrency (workers + the
/// calling thread).  Unset or 0 means std::thread::hardware_concurrency();
/// 1 means the fully serial path (no worker threads, every primitive runs
/// inline).  Threads waiting on parallel work *help*: they pop and steal
/// queued tasks instead of blocking, so nested parallel_for calls (a
/// parallel experiment trial whose runtime parallelizes its own cost
/// evaluation) compose without deadlock.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/thread_safety.hpp"

namespace ssamr {

/// Work-stealing pool.  Each worker owns a deque: new tasks submitted from
/// a worker go to its own deque (popped LIFO for locality), tasks from
/// outside go to a shared injection queue, and idle workers steal FIFO
/// from their siblings.
class ThreadPool {
 public:
  /// \param threads total concurrency including the calling thread; the
  ///        pool spawns max(0, threads - 1) workers.  threads <= 1 means
  ///        no workers: submit() runs tasks inline and the parallel
  ///        primitives degenerate to the plain serial loops.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (0 on the serial path).
  int worker_count() const { return static_cast<int>(workers_.size()); }
  /// Total concurrency the pool was built for (workers + caller).
  int concurrency() const { return worker_count() + 1; }

  /// Thread count from the environment: SSAMR_THREADS, or
  /// hardware_concurrency() when unset/0/invalid (minimum 1).
  static int default_thread_count();

  /// The process-wide pool, sized from SSAMR_THREADS on first use (or the
  /// active ThreadPoolOverride — see below).
  static ThreadPool& global();

  /// Enqueue a task.  On the serial path the task runs inline.
  void submit(std::function<void()> task);

  /// Enqueue a callable and get a future for its result.
  template <class F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Run one queued task if any is available (pop own deque, then the
  /// injection queue, then steal).  Returns false when nothing was run.
  /// This is the "help" primitive used by waiting threads.
  bool run_one_task();

  /// Wait for a future, helping with queued work instead of blocking.
  template <class T>
  T wait(std::future<T>& fut) {
    while (fut.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      if (!run_one_task()) std::this_thread::yield();
    }
    return fut.get();
  }

  /// Parallel loop over [0, n).  body(i) must only touch state owned by
  /// index i (see the determinism contract above).  Exceptions from body
  /// are propagated: the first one thrown (in completion order) is
  /// rethrown on the calling thread after all in-flight work drains.
  /// Blocks until every index has run; the caller participates.
  template <class Body>
  void parallel_for(std::size_t n, const Body& body) {
    if (n == 0) return;
    if (worker_count() == 0 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    run_parallel(n, [&body](std::size_t i) { body(i); });
  }

  /// Deterministic ordered reduction: acc = combine(acc, map(i)) for
  /// i = 0..n-1, with the map evaluated in parallel and the combine applied
  /// serially in index order — bit-identical to the serial loop.
  template <class T, class Map, class Combine>
  T transform_reduce_ordered(std::size_t n, T init, const Map& map,
                             const Combine& combine) {
    if (n == 0) return init;
    if (worker_count() == 0 || n == 1) {
      T acc = std::move(init);
      for (std::size_t i = 0; i < n; ++i) acc = combine(acc, map(i));
      return acc;
    }
    std::vector<T> slots(n);
    run_parallel(n, [&](std::size_t i) { slots[i] = map(i); });
    T acc = std::move(init);
    for (std::size_t i = 0; i < n; ++i) acc = combine(acc, slots[i]);
    return acc;
  }

 private:
  struct Deque {
    Mutex mutex;
    std::deque<std::function<void()>> tasks SSAMR_GUARDED_BY(mutex);
  };

  void worker_main(std::size_t index);
  void run_parallel(std::size_t n,
                    const std::function<void(std::size_t)>& body);
  bool try_pop(std::size_t queue_index, std::function<void()>& out,
               bool back);
  void notify_one();

  // queues_[0] is the injection queue; queues_[i + 1] belongs to worker i.
  std::vector<std::unique_ptr<Deque>> queues_;
  std::vector<std::thread> workers_;
  // Not a guard for any field (pending_/stop_ are atomics): it closes the
  // decide-to-sleep / task-arrives race between notify_one() and the
  // sleepers' predicate re-check in worker_main().
  Mutex sleep_mutex_;
  CondVar sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<bool> stop_{false};
};

/// RAII override of ThreadPool::global() — used by the determinism tests
/// to re-run identical workloads at several thread counts in one process.
/// Install/remove only from a single thread with no parallel work in
/// flight.
class ThreadPoolOverride {
 public:
  explicit ThreadPoolOverride(int threads);
  ~ThreadPoolOverride();
  ThreadPoolOverride(const ThreadPoolOverride&) = delete;
  ThreadPoolOverride& operator=(const ThreadPoolOverride&) = delete;

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* previous_;
};

}  // namespace ssamr

#pragma once
/// \file thread_safety.hpp
/// Clang thread-safety capability annotations and the annotated lock types
/// every threaded subsystem must use.
///
/// The repo's core guarantee — bit-identical traces and goldens at any
/// thread count — is enforced dynamically by the TSan job and the
/// determinism suite, which only see the interleavings CI happens to run.
/// This header makes the lock discipline *compile-time checked*: a Clang
/// build with `-Wthread-safety -Wthread-safety-beta -Werror` (the
/// `clang-safety` preset / CI clang job) proves that every access to a
/// `SSAMR_GUARDED_BY` field holds the right mutex, on every path.  Under
/// GCC the annotations expand to nothing and the types compile to the
/// plain std primitives.
///
/// Rules (enforced by tools/ssamr_lint.py, rule `mutex-seam`):
///  - This header is the ONLY place in src/ allowed to name std::mutex,
///    std::lock_guard, std::unique_lock or std::condition_variable.
///    Everything else uses Mutex / MutexLock / CondVar so the capability
///    annotations cannot be bypassed.
///  - Every field a mutex protects is declared with SSAMR_GUARDED_BY so
///    the analysis has something to check.
///  - SSAMR_NO_THREAD_SAFETY_ANALYSIS must not appear outside this header
///    (the CI acceptance gate greps for escapes).
///
/// Lock ordering (see DESIGN.md "Concurrency-safety model"): every mutex
/// in the codebase is a leaf — no code path acquires a second Mutex while
/// holding one — so there is no ordering to get wrong.  Keep it that way;
/// the work-stealing pool's try_pop visits sibling queues strictly one at
/// a time.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define SSAMR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SSAMR_THREAD_ANNOTATION(x)
#endif

/// A type that acts as a lock ("capability" in Clang's terminology).
#define SSAMR_CAPABILITY(x) SSAMR_THREAD_ANNOTATION(capability(x))
/// A RAII type that acquires on construction and releases on destruction.
#define SSAMR_SCOPED_CAPABILITY SSAMR_THREAD_ANNOTATION(scoped_lockable)
/// Field annotation: reads/writes require holding `x`.
#define SSAMR_GUARDED_BY(x) SSAMR_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field annotation: the pointee is protected by `x`.
#define SSAMR_PT_GUARDED_BY(x) SSAMR_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function annotation: the caller must hold the given capabilities.
#define SSAMR_REQUIRES(...) \
  SSAMR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function annotation: acquires the given capabilities (not released).
#define SSAMR_ACQUIRE(...) \
  SSAMR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function annotation: releases the given capabilities.
#define SSAMR_RELEASE(...) \
  SSAMR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function annotation: acquires on a given return value (try_lock).
#define SSAMR_TRY_ACQUIRE(...) \
  SSAMR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function annotation: must be called WITHOUT the given capabilities.
#define SSAMR_EXCLUDES(...) SSAMR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch.  Allowed in this header only (CI greps for escapes).
#define SSAMR_NO_THREAD_SAFETY_ANALYSIS \
  SSAMR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ssamr {

/// Annotated mutual-exclusion capability wrapping std::mutex.  Prefer the
/// scoped MutexLock; call lock()/unlock() directly only where RAII cannot
/// express the critical section.
class SSAMR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SSAMR_ACQUIRE() { m_.lock(); }
  void unlock() SSAMR_RELEASE() { m_.unlock(); }
  bool try_lock() SSAMR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// Scoped lock of a Mutex (the annotated counterpart of std::lock_guard /
/// std::unique_lock): acquires in the constructor, releases in the
/// destructor, and tells the analysis which capability it holds.
class SSAMR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SSAMR_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() SSAMR_RELEASE() {}  // lock_ member releases the mutex

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock.  The caller must hold
/// the MutexLock it passes (the usual condition-variable contract); wait
/// atomically releases and re-acquires it, which Clang's analysis cannot
/// model — the scoped MutexLock keeps the capability bookkeeping correct
/// across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <class Pred>
  void wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <class Rep, class Period, class Pred>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& dur, Pred pred) {
    return cv_.wait_for(lock.lock_, dur, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace ssamr

#pragma once
/// \file types.hpp
/// Fundamental scalar type aliases shared across the ssamr library.

#include <cstdint>
#include <cstddef>

namespace ssamr {

/// Floating-point type used for field data, capacities and virtual time.
using real_t = double;

/// Signed integer type for index-space coordinates.  Signed so that ghost
/// regions of patches touching the domain origin have representable indices.
using coord_t = std::int64_t;

/// Unsigned key type for space-filling-curve indices and hash keys.
using key_t = std::uint64_t;

/// Identifier of a (simulated) processor / cluster node.
using rank_t = std::int32_t;

/// Refinement-level number, 0 = coarsest.
using level_t = std::int32_t;

}  // namespace ssamr

#pragma once
/// \file units.hpp
/// Zero-overhead dimensional types for the cost model.
///
/// Every quantity the paper's cost model manipulates — virtual time,
/// transfer sizes, NIC rates, cell-update work, relative capacities — is
/// wrapped in a strong typedef so that a rate/time swap or a work/byte
/// mix-up is a compile error instead of a silently wrong Table I number.
///
/// Design rules:
///   * `Quantity<Tag, Rep>` stores exactly one `Rep` (default `real_t`)
///     and every operation forwards to the same floating-point operation
///     in the same order the raw code performed — the wrappers are
///     representation-transparent, so golden CSVs stay bit-identical.
///   * Only physically meaningful arithmetic exists:
///       - same-dimension `+`, `-`, comparisons; `q / q -> Rep` (a ratio);
///       - scaling by a raw scalar or by `Fraction`;
///       - declared cross-dimension ops (`Work / WorkRate -> Seconds`,
///         `Bytes / BytesPerSec -> Seconds`, `WorkRate * Seconds -> Work`,
///         ...), each spelled out below.
///     Cross-dimension `+` or `<` does not compile.
///   * `.value()` is the explicit escape hatch for serialization
///     boundaries (CSV/JSON writers) and for raw-reading seams (sensors).
///     Scale changes between units (Mbit/s -> bytes/s) go through the
///     named `to_*` conversions here — the `narrowing-unit` lint rule
///     rejects re-wrapping another unit's `.value()` elsewhere.
///
/// The `raw-double-cost-api` lint rule keeps bare `double`/`real_t`
/// parameters and returns out of the migrated cost-model headers (listed
/// in tools/layering.toml); dimensionless *collections* such as capacity
/// shares stay `std::vector<real_t>`.

#include <concepts>
#include <cstdint>
#include <type_traits>

#include "util/types.hpp"

namespace ssamr {

namespace units {

/// Strong typedef over `Rep` carrying a dimension tag.  All arithmetic is
/// constexpr and inlineable to the identical raw operation.
template <class Tag, class Rep = real_t>
class Quantity {
 public:
  using rep = Rep;
  using tag = Tag;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep v) : v_(v) {}

  /// The raw representation — the explicit escape hatch.  Use only at
  /// serialization boundaries and raw-reading seams.
  [[nodiscard]] constexpr Rep value() const { return v_; }

  // Same-dimension arithmetic.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity{static_cast<Rep>(a.v_ + b.v_)};
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity{static_cast<Rep>(a.v_ - b.v_)};
  }
  constexpr Quantity operator-() const {
    return Quantity{static_cast<Rep>(-v_)};
  }
  constexpr Quantity& operator+=(Quantity o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) {
    v_ -= o.v_;
    return *this;
  }

  /// Ratio of same-dimension quantities is a dimensionless scalar.
  friend constexpr Rep operator/(Quantity a, Quantity b) {
    return a.v_ / b.v_;
  }

  // Scaling by a raw scalar (counts, dimensionless factors).
  friend constexpr Quantity operator*(Quantity a, Rep s) {
    return Quantity{static_cast<Rep>(a.v_ * s)};
  }
  friend constexpr Quantity operator*(Rep s, Quantity a) {
    return Quantity{static_cast<Rep>(s * a.v_)};
  }
  friend constexpr Quantity operator/(Quantity a, Rep s) {
    return Quantity{static_cast<Rep>(a.v_ / s)};
  }
  constexpr Quantity& operator*=(Rep s) {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(Rep s) {
    v_ /= s;
    return *this;
  }

  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;
  friend constexpr bool operator==(Quantity a, Quantity b) = default;

 private:
  Rep v_ = Rep{};
};

/// Concept: any instantiation of Quantity.
template <class Q>
concept AnyQuantity = std::same_as<
    Q, Quantity<typename Q::tag, typename Q::rep>>;

struct SecondsTag {};
struct WorkTag {};
struct WorkRateTag {};
struct FractionTag {};
struct BytesTag {};
struct BytesPerSecTag {};
struct MegaBytesTag {};
struct MbitsPerSecTag {};
struct CountTag {};
struct PercentTag {};

}  // namespace units

/// Virtual time / durations, in seconds.
using Seconds = units::Quantity<units::SecondsTag>;
/// Application work, in cell-updates (the paper's load unit).
using Work = units::Quantity<units::WorkTag>;
/// Compute throughput, in cell-updates per second.
using WorkRate = units::Quantity<units::WorkRateTag>;
/// A dimensionless factor in [0, 1]-ish: availabilities, efficiencies,
/// overlap/intrusion knobs.
using Fraction = units::Quantity<units::FractionTag>;
/// Message/storage sizes in bytes (exact, integer).
using Bytes = units::Quantity<units::BytesTag, std::int64_t>;
/// Deliverable transfer rate in bytes per second.
using BytesPerSec = units::Quantity<units::BytesPerSecTag>;
/// Memory sizes in megabytes (the paper reports MB).
using MegaBytes = units::Quantity<units::MegaBytesTag>;
/// NIC link rate in Mbit/s (the paper reports Mbps).
using MbitsPerSec = units::Quantity<units::MbitsPerSecTag>;
/// Plain tallies (ranks, boxes, probes) that must not mix with sizes.
using Count = units::Quantity<units::CountTag, std::int64_t>;
/// Percentages (imbalance statistics): a ratio scaled by 100, kept apart
/// from Fraction so the two scales cannot be mixed silently.
using Percent = units::Quantity<units::PercentTag>;

namespace units {

// ---- Fraction as the universal dimensionless factor -----------------------
// Q * Fraction and Fraction * Q keep Q's dimension (floating reps only;
// integer-rep quantities like Bytes must be unwrapped explicitly so the
// rounding is visible at the call site).

template <class Q>
concept ScalableQuantity =
    AnyQuantity<Q> && std::floating_point<typename Q::rep> &&
    (!std::same_as<Q, Fraction>);

template <ScalableQuantity Q>
constexpr Q operator*(Q q, Fraction f) {
  return Q{q.value() * f.value()};
}
template <ScalableQuantity Q>
constexpr Q operator*(Fraction f, Q q) {
  return Q{f.value() * q.value()};
}
template <ScalableQuantity Q>
constexpr Q operator/(Q q, Fraction f) {
  return Q{q.value() / f.value()};
}
constexpr Fraction operator*(Fraction a, Fraction b) {
  return Fraction{a.value() * b.value()};
}

// ---- Declared cross-dimension arithmetic ----------------------------------

/// Work / WorkRate -> Seconds (how long a load takes at a given speed).
constexpr Seconds operator/(Work w, WorkRate r) {
  return Seconds{w.value() / r.value()};
}
/// WorkRate * Seconds -> Work (how much a node gets done in a window).
constexpr Work operator*(WorkRate r, Seconds t) {
  return Work{r.value() * t.value()};
}
constexpr Work operator*(Seconds t, WorkRate r) {
  return Work{t.value() * r.value()};
}
/// Work / Seconds -> WorkRate (observed throughput).
constexpr WorkRate operator/(Work w, Seconds t) {
  return WorkRate{w.value() / t.value()};
}

/// Bytes / BytesPerSec -> Seconds (transfer time on a deliverable rate).
constexpr Seconds operator/(Bytes b, BytesPerSec r) {
  return Seconds{static_cast<real_t>(b.value()) / r.value()};
}
/// BytesPerSec * Seconds -> how many bytes drained (fractional, so the
/// result is a raw byte count, not integer Bytes).
constexpr real_t drained_bytes(BytesPerSec r, Seconds t) {
  return r.value() * t.value();
}

/// Bytes / MbitsPerSec -> Seconds with the historical scaling spelled out
/// once: bytes -> bits (*8), Mbit/s -> bit/s (*1e6).  Evaluation order
/// matches the pre-units code exactly, so finish times stay bit-identical:
///   bits = bytes * 8.0;  bits / (mbps * 1.0e6)
constexpr Seconds operator/(Bytes b, MbitsPerSec r) {
  return Seconds{static_cast<real_t>(b.value()) * 8.0 / (r.value() * 1.0e6)};
}

/// Mbit/s -> bytes/s, the one sanctioned scale change between rate units:
///   mbps * 1.0e6 / 8.0
constexpr BytesPerSec to_bytes_per_sec(MbitsPerSec r) {
  return BytesPerSec{r.value() * 1.0e6 / 8.0};
}

}  // namespace units

using units::drained_bytes;
using units::to_bytes_per_sec;

}  // namespace ssamr

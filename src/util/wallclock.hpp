#pragma once
/// \file wallclock.hpp
/// The sanctioned wall-clock seam — the ONLY place in src/ allowed to
/// touch std::chrono's clocks (enforced by tools/ssamr_lint.py, rule
/// `clock`).
///
/// Everything the library computes runs on *virtual* time so that traces,
/// goldens and the determinism suite are bit-identical across machines and
/// thread counts.  Real wall-clock readings are inherently nondeterministic
/// and must never feed RunTrace, PartitionResult or CSV output; they are
/// for operator-facing diagnostics only (log timestamps, progress
/// reporting).  Funneling every reading through this header keeps that
/// boundary greppable and machine-checked.

#include <chrono>

namespace ssamr {

/// Monotonic wall-clock seconds since an arbitrary epoch.  Diagnostics
/// only — never record the result in any deterministic output.
inline double wallclock_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Monotonic seconds since the first call in this process (a stable zero
/// point for log timestamps).
inline double wallclock_since_start() {
  static const double start = wallclock_seconds();
  return wallclock_seconds() - start;
}

}  // namespace ssamr

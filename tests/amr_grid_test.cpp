// Tests for patch data containers: GridFunction, Patch, GridLevel.

#include <gtest/gtest.h>

#include "amr/level.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

TEST(GridFunction, AllocatesStorageWithGhosts) {
  const Box b = Box::from_extent(IntVec(4, 4, 4), IntVec(8, 8, 8));
  GridFunction u(b, /*ncomp=*/2, /*ghost=*/2);
  EXPECT_EQ(u.storage_box().extent(), IntVec(12, 12, 12));
  EXPECT_EQ(u.ncomp(), 2);
  EXPECT_EQ(u.ghost(), 2);
  EXPECT_TRUE(u.allocated());
  EXPECT_EQ(u.bytes(),
            static_cast<std::int64_t>(12 * 12 * 12 * 2 * sizeof(real_t)));
}

TEST(GridFunction, ZeroInitialized) {
  GridFunction u(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)), 1, 1);
  EXPECT_EQ(u(0, 2, 2, 2), 0.0);
  EXPECT_EQ(u(0, -1, -1, -1), 0.0);  // ghost cell
}

TEST(GridFunction, GlobalIndexingReadsBack) {
  GridFunction u(Box::from_extent(IntVec(10, 20, 30), IntVec(4, 4, 4)), 2,
                 1);
  u(0, 11, 21, 31) = 3.5;
  u(1, 13, 23, 33) = -1.25;
  EXPECT_EQ(u(0, 11, 21, 31), 3.5);
  EXPECT_EQ(u(1, 13, 23, 33), -1.25);
  EXPECT_EQ(u(1, 11, 21, 31), 0.0);  // other component untouched
}

TEST(GridFunction, FillAndFillComponent) {
  GridFunction u(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2)), 2, 0);
  u.fill(7.0);
  EXPECT_EQ(u(1, 1, 1, 1), 7.0);
  u.fill_component(0, 1.0);
  EXPECT_EQ(u(0, 0, 0, 0), 1.0);
  EXPECT_EQ(u(1, 0, 0, 0), 7.0);
}

TEST(GridFunction, CopyFromRegion) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4));
  GridFunction src(b, 1, 1), dst(b, 1, 1);
  src.fill(2.0);
  dst.copy_from(src, Box(IntVec(1, 1, 1), IntVec(2, 2, 2)));
  EXPECT_EQ(dst(0, 1, 1, 1), 2.0);
  EXPECT_EQ(dst(0, 2, 2, 2), 2.0);
  EXPECT_EQ(dst(0, 0, 0, 0), 0.0);
  EXPECT_EQ(dst(0, 3, 3, 3), 0.0);
}

TEST(GridFunction, CopyFromBetweenOverlappingPatches) {
  GridFunction a(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4)), 1, 1);
  GridFunction bfun(Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4)), 1,
                    1);
  a.fill(5.0);
  // b's ghost layer at x=3 overlaps a's interior; global indexing needs no
  // translation.
  bfun.copy_from(a, Box(IntVec(3, 0, 0), IntVec(3, 3, 3)));
  EXPECT_EQ(bfun(0, 3, 1, 1), 5.0);
}

TEST(GridFunction, CopyRejectsOutOfStorageRegion) {
  GridFunction a(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2)), 1, 0);
  GridFunction b(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2)), 1, 0);
  EXPECT_THROW(b.copy_from(a, Box(IntVec(0, 0, 0), IntVec(5, 5, 5))),
               Error);
}

TEST(GridFunction, RejectsBadConstruction) {
  EXPECT_THROW(GridFunction(Box(), 1, 1), Error);
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2));
  EXPECT_THROW(GridFunction(b, 0, 1), Error);
  EXPECT_THROW(GridFunction(b, 1, -1), Error);
}

TEST(Patch, SwapTimeLevels) {
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2)), 1, 0);
  p.data().fill(1.0);
  p.scratch().fill(2.0);
  p.swap_time_levels();
  EXPECT_EQ(p.data()(0, 0, 0, 0), 2.0);
  EXPECT_EQ(p.scratch()(0, 0, 0, 0), 1.0);
}

TEST(Patch, OwnerDefaultsUnassigned) {
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2)), 1, 0);
  EXPECT_EQ(p.owner(), -1);
  p.set_owner(3);
  EXPECT_EQ(p.owner(), 3);
}

TEST(GridLevel, AddPatchValidatesLevel) {
  GridLevel lvl(1, 1, 1);
  EXPECT_THROW(
      lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 0)),
      Error);
  lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 1));
  EXPECT_EQ(lvl.num_patches(), 1u);
}

TEST(GridLevel, BoxListAndTotals) {
  GridLevel lvl(0, 1, 1);
  lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 0));
  lvl.add_patch(Box::from_extent(IntVec(4, 0, 0), IntVec(4, 2, 2), 0));
  EXPECT_EQ(lvl.box_list().size(), 2u);
  EXPECT_EQ(lvl.total_cells(), 8 + 16);
}

TEST(GridLevel, FindPatchContaining) {
  GridLevel lvl(0, 1, 1);
  lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 0));
  lvl.add_patch(Box::from_extent(IntVec(4, 0, 0), IntVec(2, 2, 2), 0));
  EXPECT_EQ(lvl.find_patch_containing(IntVec(1, 1, 1)), 0u);
  EXPECT_EQ(lvl.find_patch_containing(IntVec(5, 0, 0)), 1u);
  EXPECT_EQ(lvl.find_patch_containing(IntVec(3, 0, 0)), GridLevel::npos);
}

}  // namespace
}  // namespace ssamr

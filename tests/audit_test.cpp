// The invariant-audit subsystem: every validator must pass known-good
// structures clean and flag deliberately corrupted ones, and the
// SSAMR_AUDIT hook must enforce reports (throw on errors, tolerate
// warnings).

// Force the hook on in this translation unit regardless of build mode.
#ifndef SSAMR_ENABLE_AUDIT
#define SSAMR_ENABLE_AUDIT 1
#endif

#include <cmath>

#include <gtest/gtest.h>

#include "amr/hierarchy.hpp"
#include "amr/workload.hpp"
#include "audit/audit.hpp"
#include "util/audit_report.hpp"
#include "audit/validator.hpp"
#include "cluster/cluster.hpp"
#include "partition/heterogeneous.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

using audit::AuditReport;
using audit::Severity;
using audit::Validator;

// ---- AuditReport mechanics -------------------------------------------------

TEST(AuditReport, StartsCleanAndOk) {
  AuditReport r("subject");
  EXPECT_TRUE(r.clean());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_NE(r.summary().find("clean"), std::string::npos);
}

TEST(AuditReport, WarningsDoNotFailOk) {
  AuditReport r("subject");
  r.add(Severity::Warning, "some.check", "here", "soft bound exceeded");
  EXPECT_FALSE(r.clean());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.warning_count(), 1u);
  EXPECT_TRUE(r.has("some.check"));
  EXPECT_FALSE(r.has("other.check"));
}

TEST(AuditReport, ErrorsFailOkAndMergeAccumulates) {
  AuditReport a("a");
  a.add(Severity::Error, "x.broken", "", "bad");
  AuditReport b("b");
  b.add(Severity::Warning, "y.soft", "", "meh");
  b.merge(a);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.error_count(), 1u);
  EXPECT_EQ(b.warning_count(), 1u);
  EXPECT_TRUE(b.has("x.broken"));
  EXPECT_EQ(b.of_check("x.broken").size(), 1u);
}

// ---- capacities ------------------------------------------------------------

TEST(ValidateCapacities, AcceptsNormalizedVector) {
  const Validator v;
  EXPECT_TRUE(v.validate_capacities({0.16, 0.19, 0.31, 0.34}).clean());
}

TEST(ValidateCapacities, FlagsSumNotOne) {
  const Validator v;
  const AuditReport r = v.validate_capacities({0.3, 0.3, 0.3});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("capacity.normalization"));
}

TEST(ValidateCapacities, FlagsNegativeAndOversizedEntries) {
  const Validator v;
  const AuditReport r = v.validate_capacities({-0.2, 1.2});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.of_check("capacity.range").size(), 2u);
}

TEST(ValidateCapacities, FlagsEmptyVector) {
  const Validator v;
  EXPECT_TRUE(v.validate_capacities({}).has("capacity.size"));
}

TEST(ValidateCapacities, FlagsInvalidWeights) {
  const Validator v;
  CapacityWeights w;
  w.cpu = 0.9;  // sum now 0.9 + 1/3 + 1/3 != 1
  const AuditReport r = v.validate_capacities({0.5, 0.5}, w);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("capacity.weights"));
}

// ---- partition -------------------------------------------------------------

BoxList sample_workload() {
  BoxList boxes;
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(64, 8, 8), 0));
  boxes.push_back(Box::from_extent(IntVec(0, 16, 0), IntVec(32, 8, 8), 0));
  boxes.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 1));
  return boxes;
}

TEST(ValidatePartition, AcceptsRealPartitionerOutput) {
  const Validator v;
  const HeterogeneousPartitioner p;
  const WorkModel work;
  const std::vector<real_t> caps{0.16, 0.19, 0.31, 0.34};
  const PartitionResult r =
      p.partition(sample_workload(), caps, work);
  const AuditReport report =
      v.validate_partition(sample_workload(), r, caps, work,
                           p.constraints());
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(ValidatePartition, FlagsOverlappingAssignments) {
  const Validator v;
  const WorkModel work;
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0);
  PartitionResult r;
  r.assignments = {{b, 0}, {b, 1}};  // the same box handed to two ranks
  r.assigned_work = {box_work(b, work), box_work(b, work)};
  r.target_work = {box_work(b, work), 0.0};
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{b}}), r, {0.5, 0.5}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.overlap"));
}

TEST(ValidatePartition, FlagsUncoveredInput) {
  const Validator v;
  const WorkModel work;
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0);
  const auto halves = b.halved();
  PartitionResult r;
  r.assignments = {{halves.first, 0}};  // second half never assigned
  r.assigned_work = {box_work(halves.first, work), 0.0};
  r.target_work = {box_work(b, work) / 2, box_work(b, work) / 2};
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{b}}), r, {0.5, 0.5}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.coverage"));
}

TEST(ValidatePartition, FlagsOwnerOutOfRange) {
  const Validator v;
  const WorkModel work;
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0);
  PartitionResult r;
  r.assignments = {{b, 7}};
  r.assigned_work = {box_work(b, work), 0.0};
  r.target_work = {box_work(b, work), 0.0};
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{b}}), r, {0.5, 0.5}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.ranks"));
}

TEST(ValidatePartition, FlagsPieceOutsideEveryInputBox) {
  const Validator v;
  const WorkModel work;
  const Box in = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0);
  const Box stray = Box::from_extent(IntVec(100, 0, 0), IntVec(8, 8, 8), 0);
  PartitionResult r;
  r.assignments = {{in, 0}, {stray, 1}};
  r.assigned_work = {box_work(in, work), box_work(stray, work)};
  r.target_work = {box_work(in, work), box_work(stray, work)};
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{in}}), r, {0.5, 0.5}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.containment"));
}

TEST(ValidatePartition, FlagsMinBoxSizeViolation) {
  const Validator v;
  const WorkModel work;
  const Box in = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  // A 2-plane sliver along x: legal splits may not go below min_box_size 4.
  const auto pieces = in.split(0, 2);
  PartitionResult r;
  r.assignments = {{pieces.first, 0}, {pieces.second, 1}};
  r.assigned_work = {box_work(pieces.first, work),
                     box_work(pieces.second, work)};
  r.target_work = r.assigned_work;
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{in}}), r, {0.1, 0.9}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.min_box"));
  EXPECT_FALSE(report.has("partition.aspect_ratio"));  // aspect 4 is fine
}

TEST(ValidatePartition, FlagsAspectRatioViolation) {
  const Validator v;
  const WorkModel work;
  const Box in = Box::from_extent(IntVec(0, 0, 0), IntVec(64, 8, 8), 0);
  // A one-cell-thick slab of aspect ratio 64 — far beyond the bound 16
  // reachable by legal splitting (64 / min_box_size 4).
  const auto pieces = in.split(1, 1);
  PartitionResult r;
  r.assignments = {{pieces.first, 0}, {pieces.second, 1}};
  r.assigned_work = {box_work(pieces.first, work),
                     box_work(pieces.second, work)};
  r.target_work = r.assigned_work;
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{in}}), r, {0.5, 0.5}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.aspect_ratio"));
}

TEST(ValidatePartition, FlagsCorruptedWorkBookkeeping) {
  const Validator v;
  const WorkModel work;
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0);
  PartitionResult r;
  r.assignments = {{b, 0}};
  r.assigned_work = {2 * box_work(b, work), 0.0};  // inflated
  r.target_work = {box_work(b, work), 0.0};
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{b}}), r, {0.5, 0.5}, work);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("partition.work_bookkeeping"));
  EXPECT_TRUE(report.has("partition.work_sum"));
}

TEST(ValidatePartition, WarnsOnLoadFarFromTarget) {
  const Validator v;
  const WorkModel work;
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0);
  PartitionResult r;
  r.assignments = {{b, 0}};
  r.assigned_work = {box_work(b, work), 0.0};
  // Targets claim an even split, but rank 0 got everything.
  r.target_work = {box_work(b, work) / 2, box_work(b, work) / 2};
  const AuditReport report = v.validate_partition(
      BoxList({std::vector<Box>{b}}), r, {0.5, 0.5}, work);
  EXPECT_TRUE(report.ok());  // warnings only
  EXPECT_TRUE(report.has("partition.load_tracking"));
}

// ---- hierarchy -------------------------------------------------------------

HierarchyConfig small_hierarchy_config() {
  HierarchyConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 32, 32), 0);
  cfg.ratio = 2;
  cfg.max_levels = 3;
  cfg.ncomp = 1;
  cfg.ghost = 2;
  cfg.min_box_size = 4;
  return cfg;
}

TEST(ValidateHierarchy, AcceptsWellFormedHierarchy) {
  GridHierarchy h(small_hierarchy_config());
  h.set_level_boxes(
      1, BoxList({std::vector<Box>{
             Box::from_extent(IntVec(8, 8, 8), IntVec(16, 16, 16), 1)}}));
  h.set_level_boxes(
      2, BoxList({std::vector<Box>{
             Box::from_extent(IntVec(20, 20, 20), IntVec(8, 8, 8), 2)}}));
  const Validator v;
  const AuditReport r = v.validate_hierarchy(h);
  EXPECT_TRUE(r.clean()) << r.summary();
}

TEST(ValidateHierarchy, FlagsOverlappingPatches) {
  GridHierarchy h(small_hierarchy_config());
  h.set_level_boxes(
      1, BoxList({std::vector<Box>{
             Box::from_extent(IntVec(8, 8, 8), IntVec(16, 16, 16), 1)}}));
  // Corrupt the level behind set_level_boxes' back: a second patch over an
  // already-covered region.
  h.level(1).add_patch(
      Box::from_extent(IntVec(8, 8, 8), IntVec(8, 8, 8), 1));
  const Validator v;
  const AuditReport r = v.validate_hierarchy(h);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("hierarchy.overlap"));
}

TEST(ValidateHierarchy, WarnsOnUndersizedBoxes) {
  GridHierarchy h(small_hierarchy_config());
  h.set_level_boxes(1, BoxList({std::vector<Box>{Box::from_extent(
                           IntVec(0, 0, 0), IntVec(2, 2, 2), 1)}}));
  const Validator v;
  const AuditReport r = v.validate_hierarchy(h);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.has("hierarchy.min_box"));
}

TEST(ValidateHierarchy, WarnsOnRatioMisalignment) {
  GridHierarchy h(small_hierarchy_config());
  h.set_level_boxes(1, BoxList({std::vector<Box>{Box::from_extent(
                           IntVec(1, 0, 0), IntVec(8, 8, 8), 1)}}));
  const Validator v;
  const AuditReport r = v.validate_hierarchy(h);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.has("hierarchy.alignment"));
}

TEST(ValidateHierarchy, FlagsGhostStorageMismatch) {
  const HierarchyConfig cfg = small_hierarchy_config();
  GridHierarchy h(cfg);
  // Replace the base patch's field with one of the wrong ghost width.
  h.level(0).patch(0).data() =
      GridFunction(cfg.domain, cfg.ncomp, cfg.ghost + 1);
  const Validator v;
  const AuditReport r = v.validate_hierarchy(h);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("hierarchy.ghost"));
}

// ---- cluster ---------------------------------------------------------------

TEST(ValidateCluster, AcceptsLoadedClusterOverTime) {
  Cluster c = Cluster::homogeneous(4);
  LoadRamp ramp;
  ramp.start_time = Seconds{10.0};
  ramp.rate = 0.5;
  ramp.target_level = 3.0;
  ramp.memory_mb = MegaBytes{100.0};
  ramp.traffic_mbps = MbitsPerSec{40.0};
  c.add_load(0, ramp);
  const Validator v;
  for (real_t t : {0.0, 15.0, 60.0, 600.0})
    EXPECT_TRUE(v.validate_cluster(c, Seconds{t}).clean())
        << v.validate_cluster(c, Seconds{t}).summary();
}

TEST(ValidateNodeState, FlagsAvailabilityOutsideUnitInterval) {
  const Validator v;
  NodeState s;
  s.cpu_available = Fraction{1.5};
  const AuditReport r = v.validate_node_state(NodeSpec{}, s, "rank 0");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("cluster.availability"));
}

TEST(ValidateNodeState, FlagsMemoryBeyondSpec) {
  const Validator v;
  NodeSpec spec;
  spec.memory_mb = MegaBytes{256.0};
  NodeState s;
  s.memory_free_mb = MegaBytes{512.0};
  const AuditReport r = v.validate_node_state(spec, s, "rank 0");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("cluster.memory"));
}

TEST(ValidateNodeState, FlagsDeadLink) {
  const Validator v;
  NodeState s;
  s.bandwidth_mbps = MbitsPerSec{0.0};
  const AuditReport r = v.validate_node_state(NodeSpec{}, s, "rank 0");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("cluster.bandwidth"));
}

TEST(ValidateNodeState, FlagsBrokenSpec) {
  const Validator v;
  NodeSpec spec;
  spec.peak_rate = WorkRate{0.0};
  const AuditReport r =
      v.validate_node_state(spec, NodeState{}, "rank 0");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has("cluster.spec"));
}

// ---- config validators -----------------------------------------------------

TEST(ValidateExecutorConfig, AcceptsDefaults) {
  EXPECT_TRUE(Validator{}.validate_executor_config(ExecutorConfig{}).ok());
}

TEST(ValidateExecutorConfig, RejectsNegativeCosts) {
  const Validator v;
  ExecutorConfig cfg;
  cfg.regrid_cost_base_s = Seconds{-0.1};
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.regrid_cost"));
  cfg = ExecutorConfig{};
  cfg.partition_cost_per_box_s = Seconds{-1e-6};
  EXPECT_TRUE(
      v.validate_executor_config(cfg).has("executor.partition_cost"));
  cfg = ExecutorConfig{};
  cfg.app_base_memory_mb = MegaBytes{std::nan("")};  // NaN must not pass a >= 0 gate
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.app_memory"));
}

TEST(ValidateExecutorConfig, RejectsDegenerateFieldShape) {
  const Validator v;
  ExecutorConfig cfg;
  cfg.ncomp = 0;
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.ncomp"));
  cfg = ExecutorConfig{};
  cfg.ghost = -1;
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.ghost"));
  cfg = ExecutorConfig{};
  cfg.bytes_per_value = 0;
  EXPECT_TRUE(
      v.validate_executor_config(cfg).has("executor.bytes_per_value"));
  cfg = ExecutorConfig{};
  cfg.time_levels = 0;
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.time_levels"));
}

TEST(ValidateExecutorConfig, RejectsOutOfRangeFractions) {
  const Validator v;
  ExecutorConfig cfg;
  cfg.comm_overlap = Fraction{1.5};
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.comm_overlap"));
  cfg.comm_overlap = Fraction{-0.1};
  EXPECT_TRUE(v.validate_executor_config(cfg).has("executor.comm_overlap"));
  cfg = ExecutorConfig{};
  cfg.monitor_intrusion_cpu = Fraction{1.0};  // would zero every rate
  EXPECT_TRUE(
      v.validate_executor_config(cfg).has("executor.monitor_intrusion"));
}

TEST(ValidateExecutorConfig, VirtualExecutorEnforcesAtConstruction) {
  Cluster cluster = Cluster::homogeneous(2);
  ExecutorConfig cfg;
  cfg.bytes_per_value = 0;
  EXPECT_THROW(VirtualExecutor(cluster, cfg), Error);
}

TEST(ValidateMonitorConfig, AcceptsDefaults) {
  EXPECT_TRUE(Validator{}.validate_monitor_config(MonitorConfig{}).ok());
}

TEST(ValidateMonitorConfig, RejectsBadKnobs) {
  const Validator v;
  MonitorConfig cfg;
  cfg.probe_cost_s = Seconds{-0.5};
  EXPECT_TRUE(v.validate_monitor_config(cfg).has("monitor.probe_cost"));
  cfg = MonitorConfig{};
  cfg.intrusion_cpu = Fraction{1.0};
  EXPECT_TRUE(v.validate_monitor_config(cfg).has("monitor.intrusion_cpu"));
  cfg = MonitorConfig{};
  cfg.intrusion_memory_mb = MegaBytes{-1.0};
  EXPECT_TRUE(
      v.validate_monitor_config(cfg).has("monitor.intrusion_memory"));
  cfg = MonitorConfig{};
  cfg.noise.cpu_sigma = -0.01;
  EXPECT_TRUE(v.validate_monitor_config(cfg).has("monitor.noise"));
}

TEST(ValidateMonitorConfig, ResourceMonitorEnforcesAtConstruction) {
  Cluster cluster = Cluster::homogeneous(2);
  MonitorConfig cfg;
  cfg.probe_cost_s = Seconds{-1.0};
  EXPECT_THROW(ResourceMonitor(cluster, cfg), Error);
}

// ---- the SSAMR_AUDIT hook --------------------------------------------------

AuditReport report_with(Severity s) {
  AuditReport r("hook");
  r.add(s, "hook.check", "here", "triggered");
  return r;
}

TEST(AuditHook, EnabledInThisTranslationUnit) {
  EXPECT_TRUE(audit::hooks_enabled());
}

TEST(AuditHook, ThrowsOnErrorReport) {
  EXPECT_THROW(SSAMR_AUDIT(report_with(Severity::Error)), Error);
}

TEST(AuditHook, ToleratesWarningsAndCleanReports) {
  EXPECT_NO_THROW(SSAMR_AUDIT(report_with(Severity::Warning)));
  EXPECT_NO_THROW(SSAMR_AUDIT(AuditReport{"empty"}));
}

}  // namespace
}  // namespace ssamr

// Tests for the relative-capacity metric (paper Eq. 1).

#include <gtest/gtest.h>

#include <numeric>

#include "util/error.hpp"
#include "capacity/capacity.hpp"

namespace ssamr {
namespace {

ResourceEstimate est(real_t cpu, real_t mem, real_t bw) {
  return ResourceEstimate{Fraction{cpu}, MegaBytes{mem}, MbitsPerSec{bw}};
}

TEST(CapacityWeights, Validation) {
  EXPECT_TRUE(CapacityWeights::equal().valid());
  EXPECT_TRUE(CapacityWeights::cpu_bound().valid());
  EXPECT_TRUE(CapacityWeights::memory_bound().valid());
  EXPECT_TRUE(CapacityWeights::comm_bound().valid());
  EXPECT_FALSE((CapacityWeights{0.5, 0.5, 0.5}).valid());
  EXPECT_FALSE((CapacityWeights{-0.2, 0.6, 0.6}).valid());
  EXPECT_THROW(CapacityCalculator(CapacityWeights{1, 1, 1}), Error);
}

TEST(Capacity, SumsToOne) {
  CapacityCalculator calc;
  const auto caps = calc.relative_capacities(
      {est(0.5, 100, 50), est(1.0, 400, 100), est(0.8, 200, 100)});
  EXPECT_NEAR(std::accumulate(caps.begin(), caps.end(), 0.0), 1.0, 1e-12);
}

TEST(Capacity, UniformResourcesUniformCapacities) {
  CapacityCalculator calc;
  const auto caps = calc.relative_capacities(
      {est(1, 512, 100), est(1, 512, 100), est(1, 512, 100),
       est(1, 512, 100)});
  for (real_t c : caps) EXPECT_NEAR(c, 0.25, 1e-12);
}

TEST(Capacity, ReproducesThePaperExampleCapacities) {
  // §6.1.3: four nodes, two loaded, equal weights, capacities
  // approximately 16 %, 19 %, 31 %, 34 %.  With CPU availabilities and
  // free memory proportional to (0.23, 0.32, 0.68, 0.77) and equal
  // bandwidth, Eq. 1 yields exactly that split.
  CapacityCalculator calc(CapacityWeights::equal());
  const auto caps = calc.relative_capacities(
      {est(0.23, 230, 100), est(0.32, 320, 100), est(0.68, 680, 100),
       est(0.77, 770, 100)});
  EXPECT_NEAR(caps[0], 0.16, 5e-3);
  EXPECT_NEAR(caps[1], 0.19, 5e-3);
  EXPECT_NEAR(caps[2], 0.31, 5e-3);
  EXPECT_NEAR(caps[3], 0.34, 5e-3);
}

TEST(Capacity, WeightsShiftTheBlend) {
  // Node 0 is CPU-rich and bandwidth-poor; node 1 the opposite.
  const std::vector<ResourceEstimate> estimates{est(1.0, 100, 10),
                                                est(0.2, 100, 90)};
  CapacityCalculator cpu_calc(CapacityWeights::cpu_bound());
  CapacityCalculator comm_calc(CapacityWeights::comm_bound());
  const auto cpu_caps = cpu_calc.relative_capacities(estimates);
  const auto comm_caps = comm_calc.relative_capacities(estimates);
  EXPECT_GT(cpu_caps[0], cpu_caps[1]);
  EXPECT_LT(comm_caps[0], comm_caps[1]);
}

TEST(Capacity, ZeroResourceColumnDropsOut) {
  // All bandwidth zero: the metric renormalizes over CPU and memory.
  CapacityCalculator calc;
  const auto caps =
      calc.relative_capacities({est(1.0, 100, 0), est(1.0, 300, 0)});
  EXPECT_NEAR(caps[0] + caps[1], 1.0, 1e-12);
  EXPECT_LT(caps[0], caps[1]);
}

TEST(Capacity, AllZeroFallsBackToUniform) {
  CapacityCalculator calc;
  const auto caps =
      calc.relative_capacities({est(0, 0, 0), est(0, 0, 0)});
  EXPECT_DOUBLE_EQ(caps[0], 0.5);
  EXPECT_DOUBLE_EQ(caps[1], 0.5);
}

TEST(Capacity, RejectsBadInput) {
  CapacityCalculator calc;
  EXPECT_THROW(calc.relative_capacities({}), Error);
  EXPECT_THROW(calc.relative_capacities({est(-0.1, 0, 0)}), Error);
}

TEST(Capacity, WorkAllocationIsProportional) {
  const auto alloc =
      CapacityCalculator::work_allocation({0.25, 0.75}, Work{1000.0});
  EXPECT_DOUBLE_EQ(alloc[0].value(), 250.0);
  EXPECT_DOUBLE_EQ(alloc[1].value(), 750.0);
  EXPECT_THROW(CapacityCalculator::work_allocation({0.5}, Work{-1.0}), Error);
  EXPECT_THROW(CapacityCalculator::work_allocation({-0.5}, Work{1.0}), Error);
}

TEST(Capacity, SetWeightsValidates) {
  CapacityCalculator calc;
  EXPECT_THROW(calc.set_weights(CapacityWeights{2, 0, 0}), Error);
  calc.set_weights(CapacityWeights{1.0, 0.0, 0.0});
  const auto caps =
      calc.relative_capacities({est(0.2, 999, 999), est(0.8, 1, 1)});
  EXPECT_NEAR(caps[0], 0.2, 1e-12);
  EXPECT_NEAR(caps[1], 0.8, 1e-12);
}

}  // namespace
}  // namespace ssamr

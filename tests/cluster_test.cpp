// Tests for the simulated heterogeneous cluster: load generation, node
// state, network model.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

TEST(LoadRamp, RampsLinearlyToTarget) {
  LoadRamp r;
  r.start_time = 10.0;
  r.rate = 0.5;
  r.target_level = 2.0;
  EXPECT_EQ(r.level_at(5.0), 0.0);
  EXPECT_EQ(r.level_at(10.0), 0.0);
  EXPECT_DOUBLE_EQ(r.level_at(12.0), 1.0);
  EXPECT_DOUBLE_EQ(r.level_at(14.0), 2.0);
  EXPECT_DOUBLE_EQ(r.level_at(100.0), 2.0);  // saturates
}

TEST(LoadRamp, StopsAtStopTime) {
  LoadRamp r;
  r.start_time = 0.0;
  r.stop_time = 50.0;
  r.rate = 1.0;
  r.target_level = 3.0;
  EXPECT_DOUBLE_EQ(r.level_at(49.0), 3.0);
  EXPECT_EQ(r.level_at(50.0), 0.0);
}

TEST(LoadRamp, ZeroRateMeansInstant) {
  LoadRamp r;
  r.rate = 0.0;
  r.target_level = 1.5;
  EXPECT_DOUBLE_EQ(r.level_at(0.0), 1.5);
}

TEST(LoadScript, ComposesGenerators) {
  LoadScript s;
  LoadRamp a;
  a.rate = 0;
  a.target_level = 1.0;
  LoadRamp b;
  b.start_time = 10.0;
  b.rate = 0;
  b.target_level = 0.5;
  s.add(a);
  s.add(b);
  EXPECT_DOUBLE_EQ(s.load_at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.load_at(15.0), 1.5);
}

TEST(LoadScript, FairShareCpu) {
  LoadScript s;
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;  // one competing process
  s.add(r);
  EXPECT_DOUBLE_EQ(s.cpu_available_at(1.0), 0.5);
  LoadScript idle;
  EXPECT_DOUBLE_EQ(idle.cpu_available_at(0.0), 1.0);
}

TEST(LoadScript, MemoryScalesWithRampProgress) {
  LoadScript s;
  LoadRamp r;
  r.start_time = 0;
  r.rate = 1.0;
  r.target_level = 2.0;
  r.memory_mb = 100.0;
  s.add(r);
  EXPECT_DOUBLE_EQ(s.memory_used_at(1.0), 50.0);   // half ramped
  EXPECT_DOUBLE_EQ(s.memory_used_at(10.0), 100.0);  // full
}

TEST(LoadScript, TrafficScalesWithRampProgress) {
  LoadScript s;
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  r.traffic_mbps = 40.0;
  s.add(r);
  EXPECT_DOUBLE_EQ(s.traffic_at(0.0), 40.0);
}

TEST(Cluster, FactoriesBuildRequestedShapes) {
  const Cluster homo = Cluster::homogeneous(4);
  EXPECT_EQ(homo.size(), 4);
  EXPECT_EQ(homo.spec(0).peak_rate, homo.spec(3).peak_rate);

  const Cluster het =
      Cluster::heterogeneous(4, {1.0, 2.0}, NodeSpec{"n", 100.0, 512, 100});
  EXPECT_DOUBLE_EQ(het.spec(0).peak_rate, 100.0);
  EXPECT_DOUBLE_EQ(het.spec(1).peak_rate, 200.0);
  EXPECT_DOUBLE_EQ(het.spec(2).peak_rate, 100.0);  // pattern repeats
}

TEST(Cluster, RejectsBadSpecs) {
  EXPECT_THROW(Cluster::homogeneous(0), Error);
  NodeSpec bad;
  bad.peak_rate = 0;
  EXPECT_THROW(Cluster({bad}), Error);
  Cluster c = Cluster::homogeneous(2);
  EXPECT_THROW(c.spec(5), Error);
  EXPECT_THROW(c.add_load(-1, LoadRamp{}), Error);
}

TEST(Cluster, StateReflectsLoads) {
  Cluster c = Cluster::homogeneous(2);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  r.memory_mb = 200.0;
  r.traffic_mbps = 30.0;
  c.add_load(0, r);
  const NodeState s0 = c.state_at(0, 1.0);
  const NodeState s1 = c.state_at(1, 1.0);
  EXPECT_DOUBLE_EQ(s0.cpu_available, 0.5);
  EXPECT_DOUBLE_EQ(s0.memory_free_mb, c.spec(0).memory_mb - 200.0);
  EXPECT_DOUBLE_EQ(s0.bandwidth_mbps, 70.0);
  EXPECT_DOUBLE_EQ(s1.cpu_available, 1.0);
}

TEST(Cluster, EffectiveRateTracksCpu) {
  Cluster c = Cluster::homogeneous(1);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  c.add_load(0, r);
  EXPECT_NEAR(c.effective_rate(0, 1.0), c.spec(0).peak_rate * 0.5, 1e-9);
}

TEST(Cluster, PagingPenaltyWhenOvercommitted) {
  NodeSpec spec;
  spec.memory_mb = 100.0;
  Cluster c({spec});
  const real_t fits = c.effective_rate(0, 0.0, 50.0);
  const real_t pages = c.effective_rate(0, 0.0, 200.0);
  EXPECT_DOUBLE_EQ(fits, spec.peak_rate);
  EXPECT_LT(pages, fits / 2);
  EXPECT_GT(pages, 0.0);
}

TEST(Cluster, MemoryNeverGoesNegative) {
  Cluster c = Cluster::homogeneous(1);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  r.memory_mb = 1.0e6;
  c.add_load(0, r);
  EXPECT_EQ(c.state_at(0, 1.0).memory_free_mb, 0.0);
}

TEST(Network, TransferTimeLatencyPlusBandwidth) {
  NetworkModel net;
  net.latency_s = 1e-4;
  net.efficiency = 1.0;
  // 1 Mbit over min(100,50)=50 Mbps -> 0.02 s + latency.
  EXPECT_NEAR(net.transfer_time(125000, 100.0, 50.0), 0.02 + 1e-4, 1e-9);
  EXPECT_EQ(net.transfer_time(0, 100.0, 100.0), 0.0);
  EXPECT_THROW(net.transfer_time(-1, 100, 100), Error);
}

TEST(Network, EfficiencyDeratesBandwidth) {
  NetworkModel net;
  net.latency_s = 0;
  net.efficiency = 0.5;
  EXPECT_NEAR(net.exchange_time(125000, 100.0), 0.02, 1e-9);
}

TEST(Network, SurvivesZeroBandwidth) {
  NetworkModel net;
  // Bandwidth floor prevents division blowups.
  EXPECT_LT(net.exchange_time(1000, 0.0), 1.0);
}

}  // namespace
}  // namespace ssamr

// Tests for the simulated heterogeneous cluster: load generation, node
// state, network model.

#include <gtest/gtest.h>

#include "cluster/cluster.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

TEST(LoadRamp, RampsLinearlyToTarget) {
  LoadRamp r;
  r.start_time = Seconds{10.0};
  r.rate = 0.5;
  r.target_level = 2.0;
  EXPECT_EQ(r.level_at(Seconds{5.0}), 0.0);
  EXPECT_EQ(r.level_at(Seconds{10.0}), 0.0);
  EXPECT_DOUBLE_EQ(r.level_at(Seconds{12.0}), 1.0);
  EXPECT_DOUBLE_EQ(r.level_at(Seconds{14.0}), 2.0);
  EXPECT_DOUBLE_EQ(r.level_at(Seconds{100.0}), 2.0);  // saturates
}

TEST(LoadRamp, StopsAtStopTime) {
  LoadRamp r;
  r.start_time = Seconds{0.0};
  r.stop_time = Seconds{50.0};
  r.rate = 1.0;
  r.target_level = 3.0;
  EXPECT_DOUBLE_EQ(r.level_at(Seconds{49.0}), 3.0);
  EXPECT_EQ(r.level_at(Seconds{50.0}), 0.0);
}

TEST(LoadRamp, ZeroRateMeansInstant) {
  LoadRamp r;
  r.rate = 0.0;
  r.target_level = 1.5;
  EXPECT_DOUBLE_EQ(r.level_at(Seconds{0.0}), 1.5);
}

TEST(LoadScript, ComposesGenerators) {
  LoadScript s;
  LoadRamp a;
  a.rate = 0;
  a.target_level = 1.0;
  LoadRamp b;
  b.start_time = Seconds{10.0};
  b.rate = 0;
  b.target_level = 0.5;
  s.add(a);
  s.add(b);
  EXPECT_DOUBLE_EQ(s.load_at(Seconds{5.0}), 1.0);
  EXPECT_DOUBLE_EQ(s.load_at(Seconds{15.0}), 1.5);
}

TEST(LoadScript, FairShareCpu) {
  LoadScript s;
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;  // one competing process
  s.add(r);
  EXPECT_DOUBLE_EQ(s.cpu_available_at(Seconds{1.0}).value(), 0.5);
  LoadScript idle;
  EXPECT_DOUBLE_EQ(idle.cpu_available_at(Seconds{0.0}).value(), 1.0);
}

TEST(LoadScript, MemoryScalesWithRampProgress) {
  LoadScript s;
  LoadRamp r;
  r.start_time = Seconds{0};
  r.rate = 1.0;
  r.target_level = 2.0;
  r.memory_mb = MegaBytes{100.0};
  s.add(r);
  EXPECT_DOUBLE_EQ(s.memory_used_at(Seconds{1.0}).value(), 50.0);
  EXPECT_DOUBLE_EQ(s.memory_used_at(Seconds{10.0}).value(), 100.0);  // full
}

TEST(LoadScript, TrafficScalesWithRampProgress) {
  LoadScript s;
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  r.traffic_mbps = MbitsPerSec{40.0};
  s.add(r);
  EXPECT_DOUBLE_EQ(s.traffic_at(Seconds{0.0}).value(), 40.0);
}

TEST(Cluster, FactoriesBuildRequestedShapes) {
  const Cluster homo = Cluster::homogeneous(4);
  EXPECT_EQ(homo.size(), 4);
  EXPECT_EQ(homo.spec(0).peak_rate, homo.spec(3).peak_rate);

  const Cluster het =
      Cluster::heterogeneous(4, {1.0, 2.0},
                             NodeSpec{"n", WorkRate{100.0}, MegaBytes{512},
                                      MbitsPerSec{100}});
  EXPECT_DOUBLE_EQ(het.spec(0).peak_rate.value(), 100.0);
  EXPECT_DOUBLE_EQ(het.spec(1).peak_rate.value(), 200.0);
  EXPECT_DOUBLE_EQ(het.spec(2).peak_rate.value(), 100.0);  // pattern repeats
}

TEST(Cluster, RejectsBadSpecs) {
  EXPECT_THROW(Cluster::homogeneous(0), Error);
  NodeSpec bad;
  bad.peak_rate = WorkRate{0};
  EXPECT_THROW(Cluster({bad}), Error);
  Cluster c = Cluster::homogeneous(2);
  EXPECT_THROW(c.spec(5), Error);
  EXPECT_THROW(c.add_load(-1, LoadRamp{}), Error);
}

TEST(Cluster, StateReflectsLoads) {
  Cluster c = Cluster::homogeneous(2);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  r.memory_mb = MegaBytes{200.0};
  r.traffic_mbps = MbitsPerSec{30.0};
  c.add_load(0, r);
  const NodeState s0 = c.state_at(0, Seconds{1.0});
  const NodeState s1 = c.state_at(1, Seconds{1.0});
  EXPECT_DOUBLE_EQ(s0.cpu_available.value(), 0.5);
  EXPECT_DOUBLE_EQ(s0.memory_free_mb.value(),
                   (c.spec(0).memory_mb - MegaBytes{200.0}).value());
  EXPECT_DOUBLE_EQ(s0.bandwidth_mbps.value(), 70.0);
  EXPECT_DOUBLE_EQ(s1.cpu_available.value(), 1.0);
}

TEST(Cluster, EffectiveRateTracksCpu) {
  Cluster c = Cluster::homogeneous(1);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  c.add_load(0, r);
  EXPECT_NEAR(c.effective_rate(0, Seconds{1.0}).value(),
              (c.spec(0).peak_rate * 0.5).value(), 1e-9);
}

TEST(Cluster, PagingPenaltyWhenOvercommitted) {
  NodeSpec spec;
  spec.memory_mb = MegaBytes{100.0};
  Cluster c({spec});
  const WorkRate fits = c.effective_rate(0, Seconds{0.0}, MegaBytes{50.0});
  const WorkRate pages = c.effective_rate(0, Seconds{0.0}, MegaBytes{200.0});
  EXPECT_DOUBLE_EQ(fits.value(), spec.peak_rate.value());
  EXPECT_LT(pages, fits / 2.0);
  EXPECT_GT(pages, WorkRate{0.0});
}

TEST(Cluster, MemoryNeverGoesNegative) {
  Cluster c = Cluster::homogeneous(1);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  r.memory_mb = MegaBytes{1.0e6};
  c.add_load(0, r);
  EXPECT_EQ(c.state_at(0, Seconds{1.0}).memory_free_mb, MegaBytes{0.0});
}

TEST(Network, TransferTimeLatencyPlusBandwidth) {
  NetworkModel net;
  net.latency_s = Seconds{1e-4};
  net.efficiency = Fraction{1.0};
  // 1 Mbit over min(100,50)=50 Mbps -> 0.02 s + latency.
  EXPECT_NEAR(net.transfer_time(Bytes{125000}, MbitsPerSec{100.0},
                                MbitsPerSec{50.0})
                  .value(),
              0.02 + 1e-4, 1e-9);
  EXPECT_EQ(net.transfer_time(Bytes{0}, MbitsPerSec{100.0},
                              MbitsPerSec{100.0}),
            Seconds{0.0});
  EXPECT_THROW(
      net.transfer_time(Bytes{-1}, MbitsPerSec{100}, MbitsPerSec{100}),
      Error);
}

TEST(Network, EfficiencyDeratesBandwidth) {
  NetworkModel net;
  net.latency_s = Seconds{0};
  net.efficiency = Fraction{0.5};
  EXPECT_NEAR(net.exchange_time(Bytes{125000}, MbitsPerSec{100.0}).value(),
              0.02, 1e-9);
}

TEST(Network, SurvivesZeroBandwidth) {
  NetworkModel net;
  // Bandwidth floor prevents division blowups.
  EXPECT_LT(net.exchange_time(Bytes{1000}, MbitsPerSec{0.0}), Seconds{1.0});
}

}  // namespace
}  // namespace ssamr

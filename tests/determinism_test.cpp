// Determinism regression tests: the full adaptive runtime loop — trace and
// live-solver workload sources, heterogeneous partitioning, dynamic loads —
// must produce *bit-identical* results at 1, 2, and 8 threads.  This is the
// enforcement of the thread pool's determinism contract (parallel bodies
// write only per-index state; reductions combine in fixed index order).
// This suite is part of the multithreaded set run under TSan in CI.

#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hpp"
#include "core/ssamr.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {
namespace {

const int kThreadCounts[] = {1, 2, 8};

TraceConfig small_trace() {
  TraceConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  cfg.max_levels = 3;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 64;
  return cfg;
}

RuntimeConfig small_runtime(int iters, int sensing) {
  RuntimeConfig cfg;
  cfg.total_iterations = iters;
  cfg.regrid_interval = 5;
  cfg.sensing.interval = sensing;
  cfg.executor.ncomp = 1;
  cfg.executor.ghost = 1;
  return cfg;
}

/// Full runtime loop over the synthetic AMR trace, with dynamic background
/// loads and default (seeded) sensor noise — every runtime subsystem the
/// pool parallelizes is exercised.
RunTrace run_trace_workload() {
  Cluster cluster = Cluster::homogeneous(4);
  LoadRamp ramp;
  ramp.rate = 0.01;
  ramp.target_level = 2.0;
  cluster.add_load(1, ramp);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(20, 5));
  return rt.run();
}

/// Full runtime loop around a live Berger–Oliger integration: per-patch
/// advance, flagging and Berger–Rigoutsos clustering all run through the
/// pool between regrids.
RunTrace run_solver_workload() {
  HierarchyConfig hc;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0);
  hc.max_levels = 2;
  hc.ncomp = 1;
  hc.ghost = 1;
  hc.min_box_size = 2;
  GridHierarchy hier(hc);
  AdvectionOperator op(1, 0, 0, 0.3, 0.25, 0.25, 0.12);
  GradientFlagger fl(0, 0.08);
  IntegratorConfig ic;
  ic.dx0 = 1.0 / 16.0;
  ic.regrid_interval = 5;
  ic.cluster.min_box_size = 2;
  ic.cluster.small_box_cells = 8;
  BergerOliger bo(hier, op, fl, ic);
  SolverWorkloadSource source(bo, hier, /*steps_per_regrid=*/5);

  Cluster cluster = Cluster::homogeneous(2);
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(15, 0));
  return rt.run();
}

/// Heterogeneous partition of the paper workload (splitting machinery and
/// work evaluation, no runtime loop).
std::vector<PartitionResult> run_partitions() {
  const auto caps = exp::reference_capacities4();
  SyntheticAmrTrace trace(exp::paper_trace_config());
  const WorkModel work;
  HeterogeneousPartitioner het;
  std::vector<PartitionResult> out;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const BoxList boxes = trace.boxes_at_epoch(epoch);
    out.push_back(het.partition(boxes, caps, work));
  }
  return out;
}

TEST(Determinism, TraceWorkloadBitIdenticalAcrossThreadCounts) {
  ThreadPoolOverride serial(1);
  const RunTrace reference = run_trace_workload();
  ASSERT_GT(reference.regrids.size(), 0u);
  ASSERT_GT(reference.total_time, Seconds{0.0});
  for (int threads : kThreadCounts) {
    ThreadPoolOverride ov(threads);
    const RunTrace got = run_trace_workload();
    EXPECT_TRUE(got == reference) << "threads=" << threads;
    // Spell out the headline numbers too, so a failure names the field.
    EXPECT_EQ(got.total_time, reference.total_time) << "threads=" << threads;
    EXPECT_EQ(got.compute_time, reference.compute_time)
        << "threads=" << threads;
    EXPECT_EQ(got.regrids.size(), reference.regrids.size())
        << "threads=" << threads;
  }
}

TEST(Determinism, SolverWorkloadBitIdenticalAcrossThreadCounts) {
  ThreadPoolOverride serial(1);
  const RunTrace reference = run_solver_workload();
  ASSERT_GT(reference.regrids.size(), 0u);
  for (int threads : kThreadCounts) {
    ThreadPoolOverride ov(threads);
    const RunTrace got = run_solver_workload();
    EXPECT_TRUE(got == reference) << "threads=" << threads;
    EXPECT_EQ(got.total_time, reference.total_time) << "threads=" << threads;
  }
}

TEST(Determinism, PartitionResultsBitIdenticalAcrossThreadCounts) {
  ThreadPoolOverride serial(1);
  const std::vector<PartitionResult> reference = run_partitions();
  ASSERT_FALSE(reference.empty());
  ASSERT_FALSE(reference.front().assignments.empty());
  for (int threads : kThreadCounts) {
    ThreadPoolOverride ov(threads);
    const std::vector<PartitionResult> got = run_partitions();
    ASSERT_EQ(got.size(), reference.size()) << "threads=" << threads;
    for (std::size_t e = 0; e < got.size(); ++e)
      EXPECT_TRUE(got[e] == reference[e])
          << "threads=" << threads << " epoch=" << e;
  }
}

TEST(Determinism, ComparePartitionersBitIdenticalAcrossThreadCounts) {
  // The bench drivers' core helper: both partitioners under identical
  // conditions.  The golden-file regression tests rely on this being
  // thread-count independent.
  ThreadPoolOverride serial(1);
  const exp::Comparison reference =
      exp::compare_partitioners(4, /*iterations=*/20, /*sensing=*/5,
                                /*dynamic_loads=*/true);
  for (int threads : kThreadCounts) {
    ThreadPoolOverride ov(threads);
    const exp::Comparison got =
        exp::compare_partitioners(4, 20, 5, true);
    EXPECT_TRUE(got.system_sensitive == reference.system_sensitive)
        << "threads=" << threads;
    EXPECT_TRUE(got.grace_default == reference.grace_default)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ssamr

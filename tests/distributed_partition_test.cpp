// Bit-identity pin for the distributed prefix-sum partitioner: on every
// input, at every shard count and every thread count, DistributedSfcPrefix
// must produce the *same bytes* as the global-view SfcHeterogeneous scheme
// — same assignments, same splits, same assigned_work doubles.  The CMake
// side re-runs this binary under SSAMR_THREADS=1/2/8 so the shard-parallel
// key/sort phase is exercised across pool widths.
//
// PartitionResult::operator== is defaulted member-wise equality over
// doubles and boxes, so EXPECT_TRUE(a == b) is a bit-exact FP comparison,
// not a tolerance check.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "amr/particles.hpp"
#include "partition/distributed_sfc.hpp"
#include "partition/sfc_heterogeneous.hpp"
#include "partition/zoo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

const WorkModel kIntWork{2, Work{1.0}};

/// 4x4 lattice of 8^3 boxes plus one refined child (mirrors the
/// differential-harness fixture).
BoxList mixed_boxes() {
  BoxList out;
  for (coord_t i = 0; i < 4; ++i)
    for (coord_t j = 0; j < 4; ++j)
      out.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                     IntVec(8, 8, 8), 0));
  out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 1));
  return out;
}

/// Anisotropic boxes of very unequal work across three levels.
BoxList lumpy_boxes() {
  BoxList out;
  out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(24, 8, 4), 0));
  out.push_back(Box::from_extent(IntVec(32, 0, 0), IntVec(4, 20, 12), 0));
  out.push_back(Box::from_extent(IntVec(48, 0, 0), IntVec(8, 8, 8), 0));
  out.push_back(Box::from_extent(IntVec(0, 32, 0), IntVec(12, 4, 4), 0));
  out.push_back(Box::from_extent(IntVec(8, 8, 0), IntVec(16, 8, 8), 1));
  out.push_back(Box::from_extent(IntVec(96, 0, 0), IntVec(16, 16, 4), 1));
  out.push_back(Box::from_extent(IntVec(40, 40, 8), IntVec(8, 8, 8), 2));
  return out;
}

BoxList single_box() {
  BoxList out;
  out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0));
  return out;
}

struct Fixture {
  const char* label;
  BoxList boxes;
};

std::vector<Fixture> fixtures() {
  return {{"mixed", mixed_boxes()},
          {"lumpy", lumpy_boxes()},
          {"single_box", single_box()}};
}

std::vector<std::vector<real_t>> capacity_sets() {
  return {{0.16, 0.19, 0.31, 0.34},
          {0.25, 0.25, 0.25, 0.25},
          {0.5, 0.5},
          {0.05, 0.1, 0.15, 0.2, 0.2, 0.3},
          {1.0}};
}

/// Random disjoint multi-level workload on a jittered lattice, sized for
/// the P = 32 sweeps below.
BoxList random_workload(Rng& rng, int boxes_per_side) {
  BoxList out;
  for (coord_t i = 0; i < boxes_per_side; ++i)
    for (coord_t j = 0; j < boxes_per_side; ++j) {
      if (rng.uniform() < 0.15) continue;  // holes
      const IntVec ext(4 + 2 * rng.uniform_int(0, 4),
                       4 + 2 * rng.uniform_int(0, 3),
                       4 + 2 * rng.uniform_int(0, 4));
      out.push_back(Box::from_extent(IntVec(i * 24, j * 24, 0), ext, 0));
      if (rng.uniform() < 0.4)
        out.push_back(Box::from_extent(IntVec(i * 48, j * 48, 0),
                                       IntVec(ext.x, ext.y, 4), 1));
    }
  if (out.empty())
    out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0));
  return out;
}

/// Normalized random capacities of arity n, with occasional heavy skew.
std::vector<real_t> random_capacities(Rng& rng, std::size_t n) {
  std::vector<real_t> caps(n);
  for (auto& c : caps) c = rng.uniform(0.05, 1.0);
  if (n > 1 && rng.uniform() < 0.3) caps[0] = 50.0;
  real_t sum = 0;
  for (real_t c : caps) sum += c;
  for (auto& c : caps) c /= sum;
  return caps;
}

TEST(DistributedPartition, BitIdenticalToSfcHeterogeneousOnFixtures) {
  const SfcHeterogeneousPartitioner reference;
  for (const Fixture& fx : fixtures())
    for (const auto& caps : capacity_sets()) {
      const PartitionResult expect =
          reference.partition(fx.boxes, caps, kIntWork);
      for (const int shards : {1, 2, 3, 8, 16}) {
        SCOPED_TRACE(std::string(fx.label) + "/" +
                     std::to_string(caps.size()) + "procs/" +
                     std::to_string(shards) + "shards");
        const DistributedSfcPartitioner dist(SfcConfig{}, shards);
        EXPECT_TRUE(dist.partition(fx.boxes, caps, kIntWork) == expect);
      }
    }
}

TEST(DistributedPartition, BitIdenticalOnRandomWorkloadsAtP32) {
  const SfcHeterogeneousPartitioner reference;
  Rng rng(0xd157'f00d);
  for (int trial = 0; trial < 12; ++trial) {
    const BoxList boxes = random_workload(rng, 6);
    const auto caps = random_capacities(rng, 32);
    const PartitionResult expect = reference.partition(boxes, caps, kIntWork);
    for (const int shards : {1, 4, 16}) {
      SCOPED_TRACE("trial " + std::to_string(trial) + "/" +
                   std::to_string(shards) + "shards");
      const DistributedSfcPartitioner dist(SfcConfig{}, shards);
      EXPECT_TRUE(dist.partition(boxes, caps, kIntWork) == expect);
    }
  }
}

TEST(DistributedPartition, ShardCountNeverChangesTheAnswer) {
  // Shard layout is a pure execution detail: any two shard counts must
  // agree with each other bit-for-bit, including counts far above the box
  // count (clamped internally).
  Rng rng(0xbead'cafe);
  const BoxList boxes = random_workload(rng, 5);
  const auto caps = random_capacities(rng, 7);
  const DistributedSfcPartitioner base(SfcConfig{}, 1);
  const PartitionResult expect = base.partition(boxes, caps, kIntWork);
  for (const int shards : {2, 5, 8, 64, 1024}) {
    SCOPED_TRACE(std::to_string(shards) + " shards");
    const DistributedSfcPartitioner dist(SfcConfig{}, shards);
    EXPECT_TRUE(dist.partition(boxes, caps, kIntWork) == expect);
  }
}

TEST(DistributedPartition, UniformCapacitiesSplitDyadically) {
  // With uniform capacities each target is total/P computed as
  // total * (1/P normalized) — the same expression SfcHeterogeneous uses,
  // so the agreement covers the exactly-representable quantile case too.
  const SfcHeterogeneousPartitioner reference;
  const DistributedSfcPartitioner dist(SfcConfig{}, 4);
  const std::vector<real_t> caps{0.25, 0.25, 0.25, 0.25};
  for (const Fixture& fx : fixtures()) {
    SCOPED_TRACE(fx.label);
    const PartitionResult expect =
        reference.partition(fx.boxes, caps, kIntWork);
    EXPECT_TRUE(dist.partition(fx.boxes, caps, kIntWork) == expect);
  }
}

TEST(DistributedPartition, ParticleCoupledWorkModelAgreesToo) {
  // The carry-chain total must fold particle terms in the same order as
  // total_work; a particle-coupled model exercises that path.
  const Box domain = Box::from_extent(IntVec(0, 0, 0), IntVec(64, 32, 16), 0);
  ParticleCloudConfig cloud;
  cloud.count = 700;
  const ParticleField field =
      ParticleField::gaussian_cloud(domain, cloud, /*center_x=*/0.4);
  WorkModel work{2, Work{1.0}};
  work.cost_per_particle = Work{3.0};
  work.particles = &field;

  const SfcHeterogeneousPartitioner reference;
  const DistributedSfcPartitioner dist(SfcConfig{}, 8);
  for (const Fixture& fx : fixtures())
    for (const auto& caps : capacity_sets()) {
      SCOPED_TRACE(std::string(fx.label) + "/" +
                   std::to_string(caps.size()) + "procs");
      const PartitionResult expect =
          reference.partition(fx.boxes, caps, work);
      EXPECT_TRUE(dist.partition(fx.boxes, caps, work) == expect);
    }
}

TEST(DistributedPartition, ZooFactoryResolvesWithLocalViewFlag) {
  const auto p = make_partitioner("distributed-sfc");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name(), "DistributedSfcPrefix");
  bool found = false;
  for (const auto& entry : partitioner_zoo())
    if (std::string(entry.id) == "distributed-sfc") {
      found = true;
      EXPECT_TRUE(entry.local_view);
      EXPECT_TRUE(entry.capacity_aware);
      EXPECT_TRUE(entry.sfc_contiguous);
      EXPECT_TRUE(entry.splits_boxes);
    }
  EXPECT_TRUE(found);
}

TEST(DistributedPartition, RejectsInvalidInputs) {
  EXPECT_THROW(DistributedSfcPartitioner(SfcConfig{}, 0), Error);
  const DistributedSfcPartitioner dist;
  const BoxList boxes = single_box();
  EXPECT_THROW(dist.partition(boxes, {}, kIntWork), Error);
  EXPECT_THROW(dist.partition(boxes, {0.5, -0.5}, kIntWork), Error);
  EXPECT_THROW(dist.partition(boxes, {0.0, 0.0}, kIntWork), Error);
}

}  // namespace
}  // namespace ssamr

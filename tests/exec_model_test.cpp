// Tests of the ExecutionModel seam (sim/exec_model.hpp).
//
// The BSP half pins the refactor to the pre-seam runtime: a fixed scenario
// must reproduce the RunTrace captured *before* the ExecutionModel seam
// existed, bit for bit (hexfloat literals below).  The event half checks
// the discrete-event model's structural envelope — finite non-negative
// times, per-rank timeline contiguity, the critical-path lower bound —
// plus the paper's headline result (the heterogeneous partitioner beats
// the homogeneous baseline) and the Chrome-trace export.

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/ssamr.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ssamr {
namespace {

TraceConfig small_trace() {
  TraceConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  cfg.max_levels = 3;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 64;
  return cfg;
}

RuntimeConfig small_runtime(int iters, int sensing, ExecModelKind model) {
  RuntimeConfig cfg;
  cfg.total_iterations = iters;
  cfg.regrid_interval = 5;
  cfg.sensing.interval = sensing;
  cfg.executor.ncomp = 1;
  cfg.executor.ghost = 1;
  cfg.exec_model = model;
  return cfg;
}

/// The determinism-suite scenario: 4 ranks, one ramping background load,
/// sensing every 5 iterations.
RunTrace run_scenario(ExecModelKind model) {
  Cluster cluster = Cluster::homogeneous(4);
  LoadRamp ramp;
  ramp.rate = 0.01;
  ramp.target_level = 2.0;
  cluster.add_load(1, ramp);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  AdaptiveRuntime rt(cluster, source, part, small_runtime(20, 5, model));
  return rt.run();
}

TEST(ExecModel, NamesRoundTrip) {
  EXPECT_STREQ(exec_model_name(ExecModelKind::kBsp), "bsp");
  EXPECT_STREQ(exec_model_name(ExecModelKind::kEvent), "event");
  EXPECT_STREQ(exec_model_name(ExecModelKind::kProc), "proc");
  EXPECT_EQ(parse_exec_model_name("bsp"), ExecModelKind::kBsp);
  EXPECT_EQ(parse_exec_model_name("event"), ExecModelKind::kEvent);
  EXPECT_EQ(parse_exec_model_name("proc"), ExecModelKind::kProc);
  EXPECT_THROW(parse_exec_model_name("fluid"), Error);
}

// Golden values captured from the pre-seam runtime (commit 63b07ad) on the
// scenario above.  The BSP model must reproduce them bit for bit: any
// deviation means the refactor changed the arithmetic, not just its home.
TEST(ExecModel, BspReproducesPreSeamTraceBitExactly) {
  const RunTrace t = run_scenario(ExecModelKind::kBsp);
  EXPECT_EQ(t.model, "bsp");
  EXPECT_EQ(t.total_time, Seconds{0x1.1a2d6c074fcbfp+3});
  EXPECT_EQ(t.compute_time, Seconds{0x1.c70511006938bp-2});
  EXPECT_EQ(t.comm_time, Seconds{0x1.8956164de0f56p-7});
  EXPECT_EQ(t.sense_time, Seconds{0x1p+3});
  EXPECT_EQ(t.regrid_time, Seconds{0x1.4cccccccccccep-2});
  EXPECT_EQ(t.migrate_time, Seconds{0x1.2c879352a386dp-5});
  ASSERT_EQ(t.regrids.size(), 4u);
  ASSERT_EQ(t.senses.size(), 4u);
  EXPECT_EQ(t.iterations, 20);
  EXPECT_EQ(t.regrids.back().vtime, Seconds{0x1.16cd476e0311ap+3});
  EXPECT_EQ(t.regrids.back().splits, 3);
  EXPECT_EQ(t.regrids.back().num_boxes, 17u);
}

/// Structural envelope every model must satisfy.
void check_envelope(const RunTrace& t) {
  EXPECT_EQ(t.num_ranks, 4);
  ASSERT_EQ(t.rank_usage.size(), 4u);
  EXPECT_FALSE(t.spans.empty());

  EXPECT_TRUE(std::isfinite(t.total_time.value()));
  EXPECT_GT(t.total_time, Seconds{0.0});
  for (const RankUsage& u : t.rank_usage) {
    EXPECT_TRUE(std::isfinite(u.busy_s.value()) && u.busy_s >= Seconds{0});
    EXPECT_TRUE(std::isfinite(u.comm_s.value()) && u.comm_s >= Seconds{0});
    EXPECT_TRUE(std::isfinite(u.idle_s.value()) && u.idle_s >= Seconds{0});
    // The run is at least as long as any rank's busy time, and each
    // rank's timeline is contiguous: busy + comm + idle covers the run.
    EXPECT_GE(t.total_time, u.busy_s - Seconds{1e-9});
    EXPECT_NEAR((u.busy_s + u.comm_s + u.idle_s).value(),
                t.total_time.value(), 1e-6);
  }
  for (const TraceSpan& s : t.spans) {
    EXPECT_TRUE(std::isfinite(s.t0.value()) && std::isfinite(s.t1.value()));
    EXPECT_LE(s.t0, s.t1);
    EXPECT_GE(s.t0, Seconds{0.0});
    EXPECT_GE(s.rank, 0);
    EXPECT_LE(s.rank, t.num_ranks);  // == num_ranks: monitor lane
    // Rank spans end by the run end; the monitor lane may outlast it
    // (overlapped sweeps keep probing while ranks already finished).
    if (s.rank < t.num_ranks) {
      EXPECT_LE(s.t1, t.total_time + Seconds{1e-9});
    }
  }
}

TEST(ExecModel, BspFillsTimelineEnvelope) {
  check_envelope(run_scenario(ExecModelKind::kBsp));
}

TEST(ExecModel, EventSatisfiesTimelineEnvelope) {
  const RunTrace t = run_scenario(ExecModelKind::kEvent);
  EXPECT_EQ(t.model, "event");
  check_envelope(t);
  EXPECT_EQ(t.iterations, 20);
  EXPECT_EQ(t.regrids.size(), 4u);
}

TEST(ExecModel, EventOverlapsSensingWithExecution) {
  // Same scenario under both models: the event model hides the probe
  // sweeps behind execution (sense_time is recorded but not serialized
  // into the critical path), so it must finish strictly sooner.
  const RunTrace bsp = run_scenario(ExecModelKind::kBsp);
  const RunTrace event = run_scenario(ExecModelKind::kEvent);
  EXPECT_GT(bsp.sense_time, Seconds{0.0});
  EXPECT_DOUBLE_EQ(event.sense_time.value(),
                   bsp.sense_time.value());  // cost still known
  EXPECT_LT(event.total_time, bsp.total_time);
}

TEST(ExecModel, EventDeterministicAcrossThreadCounts) {
  ThreadPoolOverride serial(1);
  const RunTrace baseline = run_scenario(ExecModelKind::kEvent);
  for (const int threads : {2, 8}) {
    ThreadPoolOverride ov(threads);
    const RunTrace t = run_scenario(ExecModelKind::kEvent);
    EXPECT_TRUE(t == baseline) << "event model diverged at " << threads
                               << " threads";
  }
}

TEST(ExecModel, EventHeterogeneousBeatsDefaultUnderLoad) {
  // Paper Fig. 7 shape under the message-level model: with two loaded
  // nodes, capacity-aware partitioning beats equal shares.
  auto run_with = [](const Partitioner& p) {
    Cluster cluster = Cluster::homogeneous(4);
    LoadRamp heavy;
    heavy.rate = 0;  // rate 0: at the target level from the start
    heavy.target_level = 2.0;
    heavy.memory_mb = MegaBytes{100};
    cluster.add_load(1, heavy);
    cluster.add_load(2, heavy);
    TraceWorkloadSource source(small_trace());
    AdaptiveRuntime rt(cluster, source, p,
                       small_runtime(20, 0, ExecModelKind::kEvent));
    return rt.run();
  };
  HeterogeneousPartitioner het;
  GraceDefaultPartitioner def;
  const RunTrace t_het = run_with(het);
  const RunTrace t_def = run_with(def);
  EXPECT_LT(t_het.total_time, t_def.total_time);
}

TEST(ExecModel, ChromeTraceExportsWellFormedEvents) {
  const RunTrace t = run_scenario(ExecModelKind::kEvent);
  std::ostringstream os;
  sim::write_chrome_trace(os, t);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"model\": \"event\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("rank 0"), std::string::npos);
  EXPECT_NE(json.find("monitor"), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity; full JSON parsing
  // is exercised by the trace_check.py ctest entry.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

}  // namespace
}  // namespace ssamr

// Tests for the virtual-time execution model.

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "sim/executor.hpp"

namespace ssamr {
namespace {

PartitionResult simple_partition() {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(8, 0, 0), IntVec(8, 8, 8), 0), 1});
  r.assigned_work = {512.0, 512.0};
  r.target_work = {512.0, 512.0};
  return r;
}

ExecutorConfig test_config() {
  ExecutorConfig cfg;
  cfg.ncomp = 1;
  cfg.ghost = 1;
  cfg.monitor_intrusion_cpu = Fraction{0.0};
  cfg.comm_overlap = Fraction{0.0};
  cfg.app_base_memory_mb = MegaBytes{0.0};
  return cfg;
}

TEST(Executor, MemoryDemandCountsOwnedCells) {
  Cluster c = Cluster::homogeneous(2);
  VirtualExecutor ex(c, test_config());
  const auto r = simple_partition();
  // 512 cells x 1 comp x 8 bytes x 2 time levels = 8192 bytes.
  EXPECT_NEAR(ex.memory_demand_mb(r, 0).value(), 8192.0 / 1e6, 1e-12);
}

TEST(Executor, ComputeTimeIsWorkOverRate) {
  NodeSpec spec;
  spec.peak_rate = WorkRate{512.0};  // one second per patch
  Cluster c = Cluster::homogeneous(2, spec);
  VirtualExecutor ex(c, test_config());
  const auto times = ex.compute_times(simple_partition(), Seconds{0.0});
  EXPECT_NEAR(times[0].value(), 1.0, 1e-9);
  EXPECT_NEAR(times[1].value(), 1.0, 1e-9);
}

TEST(Executor, LoadedNodeComputesSlower) {
  NodeSpec spec;
  spec.peak_rate = WorkRate{512.0};
  Cluster c = Cluster::homogeneous(2, spec);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;  // halves cpu
  c.add_load(0, r);
  VirtualExecutor ex(c, test_config());
  const auto times = ex.compute_times(simple_partition(), Seconds{0.0});
  EXPECT_NEAR(times[0].value(), 2.0, 1e-9);
  EXPECT_NEAR(times[1].value(), 1.0, 1e-9);
  EXPECT_NEAR(ex.iteration_time(simple_partition(), Seconds{0.0}).value(), 2.0,
              0.1);
}

TEST(Executor, MonitorIntrusionShavesRate) {
  NodeSpec spec;
  spec.peak_rate = WorkRate{512.0};
  Cluster c = Cluster::homogeneous(2, spec);
  ExecutorConfig cfg = test_config();
  cfg.monitor_intrusion_cpu = Fraction{0.5};
  VirtualExecutor ex(c, cfg);
  EXPECT_NEAR(ex.compute_times(simple_partition(), Seconds{0.0})[0].value(),
              2.0, 1e-9);
}

TEST(Executor, CommTimesReflectPartitionBoundary) {
  Cluster c = Cluster::homogeneous(2);
  VirtualExecutor ex(c, test_config());
  const auto comm = ex.comm_times(simple_partition(), Seconds{0.0});
  // Two ranks share an 8x8 face, ghost 1: 64 cells each way, 8 B/cell.
  EXPECT_GT(comm[0], Seconds{0.0});
  EXPECT_NEAR(comm[0].value(), comm[1].value(), 1e-12);
}

TEST(Executor, OverlapHidesCommunication) {
  Cluster c = Cluster::homogeneous(2);
  ExecutorConfig cfg = test_config();
  cfg.comm_overlap = Fraction{0.75};
  VirtualExecutor ex_overlap(c, cfg);
  VirtualExecutor ex_raw(c, test_config());
  const auto raw =
      ex_raw.effective_comm_times(simple_partition(), Seconds{0.0});
  const auto hidden =
      ex_overlap.effective_comm_times(simple_partition(), Seconds{0.0});
  EXPECT_NEAR(hidden[0].value(), raw[0].value() * 0.25, 1e-12);
}

TEST(Executor, RegridAndPartitionCostsScaleWithBoxes) {
  Cluster c = Cluster::homogeneous(2);
  ExecutorConfig cfg = test_config();
  cfg.regrid_cost_base_s = Seconds{0.1};
  cfg.regrid_cost_per_box_s = Seconds{0.01};
  cfg.partition_cost_per_box_s = Seconds{0.002};
  VirtualExecutor ex(c, cfg);
  EXPECT_NEAR(ex.regrid_time(10).value(), 0.2, 1e-12);
  EXPECT_NEAR(ex.partition_time(10).value(), 0.02, 1e-12);
}

TEST(Executor, InitialMigrationIsAScatterFromRankZero) {
  Cluster c = Cluster::homogeneous(2);
  VirtualExecutor ex(c, test_config());
  const auto next = simple_partition();
  // Rank 1's box must move from rank 0: 512 cells * 8 bytes.
  EXPECT_EQ(ex.migration_bytes({}, next, 1), Bytes{512 * 8});
  EXPECT_EQ(ex.migration_bytes({}, next, 0), Bytes{512 * 8});  // sender side
  EXPECT_GT(ex.migration_time({}, next, Seconds{0.0}), Seconds{0.0});
}

TEST(Executor, MigrationCountsOnlyChangedOwnership) {
  Cluster c = Cluster::homogeneous(2);
  VirtualExecutor ex(c, test_config());
  const auto prev = simple_partition();
  EXPECT_EQ(ex.migration_bytes(prev, prev, 0), Bytes{0});
  // Swap owners: everything moves.
  PartitionResult swapped = prev;
  swapped.assignments[0].owner = 1;
  swapped.assignments[1].owner = 0;
  EXPECT_EQ(ex.migration_bytes(prev, swapped, 0), Bytes{2 * 512 * 8});
}

TEST(Executor, MigrationUsesBoxOverlapNotIdentity) {
  Cluster c = Cluster::homogeneous(2);
  VirtualExecutor ex(c, test_config());
  const auto prev = simple_partition();
  // New partition splits at x=4 instead of x=8: cells 4..7 move 0 -> 1.
  PartitionResult next;
  next.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 8, 8), 0), 0});
  next.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(12, 8, 8), 0), 1});
  next.assigned_work = {256, 768};
  next.target_work = {256, 768};
  EXPECT_EQ(ex.migration_bytes(prev, next, 1), Bytes{4 * 8 * 8 * 8});
}

TEST(Executor, PagingDegradesLoadedNodeThroughput) {
  NodeSpec spec;
  spec.peak_rate = WorkRate{512.0};
  spec.memory_mb = MegaBytes{4.0};  // tiny node: the patch data will not fit
  Cluster c = Cluster::homogeneous(2, spec);
  ExecutorConfig cfg = test_config();
  cfg.app_base_memory_mb = MegaBytes{8.0};  // > 4 MB free
  VirtualExecutor ex(c, cfg);
  const auto times = ex.compute_times(simple_partition(), Seconds{0.0});
  EXPECT_GT(times[0], Seconds{1.5});  // paging beyond the 1.0 s baseline
}

TEST(Executor, ValidatesConfigAndArity) {
  Cluster c = Cluster::homogeneous(2);
  ExecutorConfig bad = test_config();
  bad.ncomp = 0;
  EXPECT_THROW(VirtualExecutor(c, bad), Error);
  VirtualExecutor ex(c, test_config());
  PartitionResult r = simple_partition();
  r.assigned_work = {1.0};  // arity mismatch with 2-node cluster
  EXPECT_THROW(ex.compute_times(r, Seconds{0.0}), Error);
}

}  // namespace
}  // namespace ssamr

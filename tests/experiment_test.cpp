// Sanity tests for the paper experiment setups (core/experiment.hpp) —
// these pin the calibrated shapes the benches report.

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>

#include "util/error.hpp"
#include "core/experiment.hpp"

namespace ssamr {
namespace {

// Regression for the exp_scale env_int bug: zero/negative/garbage values
// must fall back, never reach a driver as a box or rank count.
TEST(Experiment, EnvIntValidatesRangeAndGarbage) {
  ASSERT_EQ(::unsetenv("SSAMR_TEST_ENV_INT"), 0);
  EXPECT_EQ(exp::env_int("SSAMR_TEST_ENV_INT", 7, 1), 7);  // unset

  const auto with = [](const char* v, int fallback, int lo, int hi) {
    ::setenv("SSAMR_TEST_ENV_INT", v, 1);
    const int got = exp::env_int("SSAMR_TEST_ENV_INT", fallback, lo, hi);
    ::unsetenv("SSAMR_TEST_ENV_INT");
    return got;
  };
  EXPECT_EQ(with("12", 7, 1, 100), 12);       // clean parse in range
  EXPECT_EQ(with("", 7, 1, 100), 7);          // empty
  EXPECT_EQ(with("abc", 7, 1, 100), 7);       // garbage
  EXPECT_EQ(with("12abc", 7, 1, 100), 7);     // trailing garbage
  EXPECT_EQ(with("0", 7, 1, 100), 7);         // below min (the old bug)
  EXPECT_EQ(with("-4", 7, 1, 100), 7);        // negative (the old bug)
  EXPECT_EQ(with("101", 7, 1, 100), 7);       // above max
  EXPECT_EQ(with("1", 7, 1, 100), 1);         // boundaries included
  EXPECT_EQ(with("100", 7, 1, 100), 100);
  EXPECT_EQ(with("99999999999999999999", 7, 1, 100), 7);  // overflow-ish
  EXPECT_THROW(exp::env_int("SSAMR_TEST_ENV_INT", 7, 5, 4), Error);
}

TEST(Experiment, EnvRealValidatesRangeAndGarbage) {
  ASSERT_EQ(::unsetenv("SSAMR_TEST_ENV_REAL"), 0);
  EXPECT_DOUBLE_EQ(exp::env_real("SSAMR_TEST_ENV_REAL", 0.5, 0.0, 1.0), 0.5);

  const auto with = [](const char* v, real_t fallback, real_t lo, real_t hi) {
    ::setenv("SSAMR_TEST_ENV_REAL", v, 1);
    const real_t got =
        exp::env_real("SSAMR_TEST_ENV_REAL", fallback, lo, hi);
    ::unsetenv("SSAMR_TEST_ENV_REAL");
    return got;
  };
  EXPECT_DOUBLE_EQ(with("0.25", 0.5, 0.0, 1.0), 0.25);
  EXPECT_DOUBLE_EQ(with("2.5", 0.5, 0.0, 1.0), 0.5);   // above max
  EXPECT_DOUBLE_EQ(with("-0.1", 0.5, 0.0, 1.0), 0.5);  // below min
  EXPECT_DOUBLE_EQ(with("x", 0.5, 0.0, 1.0), 0.5);     // garbage
  EXPECT_DOUBLE_EQ(with("0.1y", 0.5, 0.0, 1.0), 0.5);  // trailing garbage
  EXPECT_DOUBLE_EQ(with("nan", 0.5, 0.0, 1.0), 0.5);   // NaN never passes
  EXPECT_DOUBLE_EQ(with("0", 0.5, 0.0, 1.0), 0.0);     // boundary
  EXPECT_DOUBLE_EQ(with("1", 0.5, 0.0, 1.0), 1.0);
}

TEST(Experiment, ReferenceCapacitiesMatchThePaper) {
  const auto caps = exp::reference_capacities4();
  ASSERT_EQ(caps.size(), 4u);
  EXPECT_NEAR(std::accumulate(caps.begin(), caps.end(), 0.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(caps[0], 0.16);
  EXPECT_DOUBLE_EQ(caps[3], 0.34);
}

TEST(Experiment, PaperTraceIsPaperScale) {
  const TraceConfig cfg = exp::paper_trace_config();
  EXPECT_EQ(cfg.domain.extent(), IntVec(128, 32, 32));
  EXPECT_EQ(cfg.max_levels, 4);  // 3 levels of factor-2 refinement
  EXPECT_EQ(cfg.ratio, 2);
  SyntheticAmrTrace t(cfg);
  const BoxList b0 = t.boxes_at_epoch(0);
  EXPECT_GT(b0.size(), 3u);
  EXPECT_GT(b0.total_cells(), 128 * 32 * 32);
}

TEST(Experiment, PaperClusterIsFastEthernet) {
  const Cluster c = exp::paper_cluster(4);
  EXPECT_EQ(c.size(), 4);
  EXPECT_DOUBLE_EQ(c.spec(0).bandwidth_mbps.value(), 100.0);
  EXPECT_EQ(c.spec(0).peak_rate, c.spec(3).peak_rate);
}

TEST(Experiment, StaticLoadsDifferentiateNodes) {
  Cluster c = exp::paper_cluster(4);
  exp::apply_static_loads(c);
  EXPECT_LT(c.state_at(0, Seconds{10.0}).cpu_available.value(), 0.8);
  EXPECT_DOUBLE_EQ(c.state_at(3, Seconds{10.0}).cpu_available.value(), 1.0);
}

TEST(Experiment, DynamicLoadsEvolveOverTime) {
  Cluster c = exp::paper_cluster(4);
  exp::apply_dynamic_loads(c, 100.0);
  const real_t before = c.state_at(0, Seconds{0.0}).cpu_available.value();
  const real_t during = c.state_at(0, Seconds{40.0}).cpu_available.value();
  const real_t after = c.state_at(0, Seconds{60.0}).cpu_available.value();
  EXPECT_DOUBLE_EQ(before, 1.0);
  EXPECT_LT(during, 0.35);
  EXPECT_GT(after, during);  // heavy generator exited at 0.55 tau
}

TEST(Experiment, SystemSensitiveWinsAtFourProcs) {
  const auto cmp = exp::compare_partitioners(4, 60, 0, false);
  EXPECT_GT(cmp.improvement(), 0.0);
  EXPECT_LT(cmp.improvement(), 0.5);
}

TEST(Experiment, ImbalanceLowerForSystemSensitive) {
  // Fig. 10's claim, at reduced scale: mean max-imbalance of the
  // system-sensitive partitioner is below the default's under fixed
  // heterogeneous capacities.
  const auto caps = exp::reference_capacities4();
  SyntheticAmrTrace trace(exp::paper_trace_config());
  HeterogeneousPartitioner het;
  GraceDefaultPartitioner def;
  const WorkModel wm;
  real_t het_sum = 0, def_sum = 0;
  for (int e = 0; e < 6; ++e) {
    const BoxList boxes = trace.boxes_at_epoch(e);
    // Imbalance is measured against the capacity-proportional targets for
    // BOTH schemes (the default ignores capacities, which is the point).
    auto het_r = het.partition(boxes, caps, wm);
    auto def_r = def.partition(boxes, caps, wm);
    const real_t total = total_work(boxes, wm);
    for (std::size_t k = 0; k < caps.size(); ++k)
      def_r.target_work[k] = caps[k] * total;
    het_sum += max_load_imbalance_pct(het_r);
    def_sum += max_load_imbalance_pct(def_r);
  }
  EXPECT_LT(het_sum, def_sum);
  // Paper: system-sensitive residual imbalance stays under ~40 %.
  EXPECT_LT(het_sum / 6, 40.0);
}

TEST(Experiment, TimescaleCalibrationConverges) {
  const real_t tau = exp::calibrate_timescale(4, 30, 10, 2);
  EXPECT_GT(tau, 1.0);
  const RunTrace t = exp::run_dynamic_het(4, 30, 10, tau);
  // The calibrated timescale must be within a factor ~2 of the duration.
  EXPECT_GT(t.total_time, Seconds{0.4 * tau});
  EXPECT_LT(t.total_time, Seconds{2.5 * tau});
}

TEST(Experiment, HeadlineResultHoldsAcrossSensorSeeds) {
  // The Table I conclusion (system-sensitive wins) must not hinge on the
  // particular sensor-noise stream.
  for (std::uint64_t seed : {11u, 222u, 3333u}) {
    Cluster c1 = exp::paper_cluster(8);
    exp::apply_static_loads(c1);
    Cluster c2 = exp::paper_cluster(8);
    exp::apply_static_loads(c2);
    RuntimeConfig cfg = exp::paper_runtime_config(60, 0);
    cfg.monitor.seed = seed;
    TraceWorkloadSource s1(exp::paper_trace_config());
    TraceWorkloadSource s2(exp::paper_trace_config());
    HeterogeneousPartitioner het;
    GraceDefaultPartitioner def;
    AdaptiveRuntime r1(c1, s1, het, cfg);
    AdaptiveRuntime r2(c2, s2, def, cfg);
    EXPECT_LT(r1.run().total_time, r2.run().total_time)
        << "seed " << seed;
  }
}

TEST(Experiment, RuntimeConfigMatchesPaperParameters) {
  const RuntimeConfig cfg = exp::paper_runtime_config(200, 20);
  EXPECT_EQ(cfg.total_iterations, 200);
  EXPECT_EQ(cfg.regrid_interval, 5);  // paper: regrid every 5 iterations
  EXPECT_EQ(cfg.sensing.interval, 20);
  EXPECT_TRUE(cfg.weights.valid());
  EXPECT_DOUBLE_EQ(cfg.weights.cpu, 1.0 / 3.0);  // equal weights
}

}  // namespace
}  // namespace ssamr

// Tests for the fault-injection subsystem and the fault-tolerant sensing
// loop: FaultPlan determinism and precedence, probe retry/backoff/timeout
// accounting, staleness fallback, quarantine/readmission, degraded-capacity
// safety (no NaN / zero-sum vectors), forced repartitioning, and the
// bit-identity of the zero-fault path.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/ssamr.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

TraceConfig small_trace() {
  TraceConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  cfg.max_levels = 3;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 64;
  return cfg;
}

RuntimeConfig small_runtime(int iters, int sensing) {
  RuntimeConfig cfg;
  cfg.total_iterations = iters;
  cfg.regrid_interval = 5;
  cfg.sensing.interval = sensing;
  cfg.monitor.noise = SensorNoise{0, 0, 0};
  cfg.executor.ncomp = 1;
  cfg.executor.ghost = 1;
  return cfg;
}

FaultEpisode episode(rank_t rank, FaultKind kind, real_t t0, real_t t1) {
  FaultEpisode e;
  e.rank = rank;
  e.kind = kind;
  e.t0 = Seconds{t0};
  e.t1 = Seconds{t1};
  return e;
}

// ---- FaultPlan ------------------------------------------------------------

TEST(FaultPlan, ProbeFaultIsAPureFunctionOfSeedRankAttempt) {
  FaultPlan a;
  a.probe_timeout_rate = 0.3;
  a.probe_drop_rate = 0.2;
  FaultPlan b = a;
  // Query a in one order, b in another: outcomes must agree pointwise.
  std::vector<ProbeFault> fa, fb;
  for (int r = 0; r < 4; ++r)
    for (std::uint64_t k = 0; k < 50; ++k)
      fa.push_back(a.probe_fault(r, Seconds{1.0}, k));
  for (std::uint64_t k = 50; k-- > 0;)
    for (int r = 3; r >= 0; --r)
      fb.push_back(b.probe_fault(r, Seconds{1.0}, k));
  int faults = 0;
  for (int r = 0; r < 4; ++r)
    for (std::uint64_t k = 0; k < 50; ++k) {
      const auto ia = static_cast<std::size_t>(r) * 50 + k;
      const auto ib = (49 - k) * 4 + static_cast<std::size_t>(3 - r);
      EXPECT_EQ(fa[ia], fb[ib]);
      if (fa[ia] != ProbeFault::kNone) ++faults;
    }
  // 50% combined rate over 200 draws: a degenerate hash would give 0 or 200.
  EXPECT_GT(faults, 50);
  EXPECT_LT(faults, 150);
}

TEST(FaultPlan, ScriptedFactoryIsDeterministic) {
  FaultProfile profile;
  profile.probe_timeout_rate = 0.1;
  profile.stale_windows = 3;
  profile.crash_episodes = 2;
  const FaultPlan a = FaultPlan::scripted(8, Seconds{500.0}, profile, 99);
  const FaultPlan b = FaultPlan::scripted(8, Seconds{500.0}, profile, 99);
  ASSERT_EQ(a.episodes().size(), 5u);
  for (std::size_t i = 0; i < a.episodes().size(); ++i) {
    EXPECT_EQ(a.episodes()[i].rank, b.episodes()[i].rank);
    EXPECT_EQ(a.episodes()[i].t0, b.episodes()[i].t0);
    EXPECT_EQ(a.episodes()[i].t1, b.episodes()[i].t1);
  }
}

TEST(FaultPlan, EpisodeKindsMapToProbeFaults) {
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kProbeDrop, 10.0, 20.0));
  plan.add(episode(1, FaultKind::kStaleWindow, 10.0, 20.0));
  plan.add(episode(2, FaultKind::kCrash, 10.0, 20.0));
  EXPECT_EQ(plan.probe_fault(0, Seconds{15.0}, 0), ProbeFault::kDrop);
  EXPECT_EQ(plan.probe_fault(1, Seconds{15.0}, 0), ProbeFault::kStale);
  EXPECT_EQ(plan.probe_fault(2, Seconds{15.0}, 0), ProbeFault::kTimeout);
  // Outside the windows (and with zero random rates) everything is benign.
  EXPECT_EQ(plan.probe_fault(0, Seconds{25.0}, 0), ProbeFault::kNone);
  EXPECT_EQ(plan.probe_fault(0, Seconds{9.999}, 0), ProbeFault::kNone);
  EXPECT_FALSE(plan.benign());
  EXPECT_TRUE(FaultPlan{}.benign());
  // Stale windows freeze the observable time at their start.
  EXPECT_DOUBLE_EQ(plan.observable_time(1, Seconds{15.0}).value(), 10.0);
  EXPECT_DOUBLE_EQ(plan.observable_time(1, Seconds{25.0}).value(), 25.0);
  // Crash coverage and rejoin.
  EXPECT_TRUE(plan.node_down(2, Seconds{15.0}));
  EXPECT_FALSE(plan.node_down(2, Seconds{20.0}));
  EXPECT_DOUBLE_EQ(plan.resume_time(2, Seconds{15.0}).value(), 20.0);
  EXPECT_DOUBLE_EQ(plan.resume_time(2, Seconds{5.0}).value(), 5.0);
}

TEST(FaultPlan, ResumeTimeFollowsChainedEpisodes) {
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kCrash, 10.0, 20.0));
  plan.add(episode(0, FaultKind::kCrash, 18.0, 30.0));
  EXPECT_DOUBLE_EQ(plan.resume_time(0, Seconds{12.0}).value(), 30.0);
}

TEST(FaultPlan, ValidatesInputs) {
  FaultProfile bad;
  bad.probe_timeout_rate = 0.8;
  bad.probe_drop_rate = 0.5;  // sums past 1
  EXPECT_THROW(FaultPlan::scripted(4, Seconds{100.0}, bad, 1), Error);
  EXPECT_THROW(FaultPlan::scripted(0, Seconds{100.0}, FaultProfile{}, 1),
               Error);
  EXPECT_THROW(FaultPlan::scripted(4, Seconds{-1.0}, FaultProfile{}, 1),
               Error);
  FaultPlan plan;
  EXPECT_THROW(plan.add(episode(0, FaultKind::kCrash, 5.0, 5.0)), Error);
  EXPECT_THROW(plan.add(episode(-1, FaultKind::kCrash, 0.0, 1.0)), Error);
}

// ---- Cluster integration --------------------------------------------------

TEST(Cluster, CrashEpisodeZeroesStateAndFloorsBandwidth) {
  Cluster c = Cluster::homogeneous(2);
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kCrash, 10.0, 20.0));
  c.set_fault_plan(plan);
  EXPECT_TRUE(c.node_down(0, Seconds{15.0}));
  EXPECT_FALSE(c.node_down(1, Seconds{15.0}));
  const NodeState down = c.state_at(0, Seconds{15.0});
  EXPECT_DOUBLE_EQ(down.cpu_available.value(), 0.0);
  EXPECT_DOUBLE_EQ(down.memory_free_mb.value(), 0.0);
  EXPECT_GT(down.bandwidth_mbps, MbitsPerSec{0.0});
  // Up again after the episode; resume_time reports the rejoin.
  EXPECT_DOUBLE_EQ(c.state_at(0, Seconds{20.0}).cpu_available.value(), 1.0);
  EXPECT_DOUBLE_EQ(c.resume_time(0, Seconds{15.0}).value(), 20.0);
  EXPECT_DOUBLE_EQ(c.resume_time(1, Seconds{15.0}).value(), 15.0);
}

// ---- Monitor: retries, backoff, staleness, quarantine ---------------------

MonitorConfig quiet_monitor() {
  MonitorConfig cfg;
  cfg.noise = SensorNoise{0, 0, 0};
  return cfg;
}

TEST(MonitorFaults, TimeoutProbePaysDeadlineRetriesAndBackoff) {
  Cluster c = Cluster::homogeneous(2);
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kProbeTimeout, 0.0, 1.0e9));
  c.set_fault_plan(plan);
  ResourceMonitor m(c, quiet_monitor());
  const ProbeOutcome bad = m.probe_outcome(0, Seconds{5.0});
  EXPECT_EQ(bad.status, ProbeStatus::kTimeout);
  EXPECT_EQ(bad.attempts, 3);  // 1 + probe_max_retries
  // 3 timed-out attempts at the 2 s deadline plus backoffs 0.25 and 0.5.
  EXPECT_DOUBLE_EQ(bad.elapsed_s.value(), 3 * 2.0 + 0.25 + 0.5);
  // The healthy node pays exactly one probe.
  const ProbeOutcome good = m.probe_outcome(1, Seconds{5.0});
  EXPECT_EQ(good.status, ProbeStatus::kOk);
  EXPECT_EQ(good.attempts, 1);
  EXPECT_DOUBLE_EQ(good.elapsed_s.value(), 0.5);
}

TEST(MonitorFaults, FastFailureCostsProbeNotDeadline) {
  Cluster c = Cluster::homogeneous(1);
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kProbeDrop, 0.0, 1.0e9));
  c.set_fault_plan(plan);
  ResourceMonitor m(c, quiet_monitor());
  const ProbeOutcome o = m.probe_outcome(0, Seconds{5.0});
  EXPECT_EQ(o.status, ProbeStatus::kFailed);
  EXPECT_DOUBLE_EQ(o.elapsed_s.value(), 3 * 0.5 + 0.25 + 0.5);
}

TEST(MonitorFaults, StaleWindowAnswersWithFrozenReadings) {
  Cluster c = Cluster::homogeneous(1);
  // Load ramps up sharply at t=10: a stale window frozen at t=5 must keep
  // reporting the unloaded state.
  LoadRamp r;
  r.start_time = Seconds{10.0};
  r.rate = 1e9;
  r.target_level = 1.0;
  c.add_load(0, r);
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kStaleWindow, 5.0, 100.0));
  c.set_fault_plan(plan);
  MonitorConfig cfg = quiet_monitor();
  cfg.forecast = false;
  ResourceMonitor m(c, cfg);
  const ProbeOutcome o = m.probe_outcome(0, Seconds{50.0});
  EXPECT_EQ(o.status, ProbeStatus::kStale);
  EXPECT_DOUBLE_EQ(o.estimate.cpu_available.value(), 1.0);  // the t=5 truth
}

TEST(MonitorFaults, UnreachableNodeDecaysTowardClusterMean) {
  Cluster c = Cluster::homogeneous(2);
  // Node 1 carries a steady load, so the cluster mean differs from node
  // 0's last-known-good reading.
  LoadRamp r;
  r.start_time = Seconds{-1.0};
  r.rate = 1e9;
  r.target_level = 1.0;
  c.add_load(1, r);
  MonitorConfig cfg = quiet_monitor();
  cfg.forecast = false;
  ResourceMonitor m(c, cfg);
  // Establish last-known-good readings while everything is reachable.
  (void)m.probe_all(Seconds{0.0});
  // Now node 0 goes dark.
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kProbeTimeout, 1.0, 1.0e9));
  c.set_fault_plan(plan);
  const ProbeOutcome o = m.probe_outcome(0, Seconds{30.0});
  EXPECT_EQ(o.status, ProbeStatus::kTimeout);
  // Last good cpu = 1.0 (node 0 at t=0); the known-good mean averages both
  // nodes' last readings: (1.0 + 0.5) / 2 = 0.75.  Decay w = exp(-30/60).
  const real_t w = std::exp(-30.0 / 60.0);
  EXPECT_NEAR(o.estimate.cpu_available.value(), w * 1.0 + (1 - w) * 0.75,
              1e-9);
  EXPECT_TRUE(std::isfinite(o.estimate.memory_free_mb.value()));
  EXPECT_TRUE(std::isfinite(o.estimate.bandwidth_mbps.value()));
}

TEST(MonitorFaults, QuarantineAfterConsecutiveFailedSweepsThenReadmit) {
  Cluster c = Cluster::homogeneous(3);
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kProbeTimeout, 0.0, 100.0));
  c.set_fault_plan(plan);
  ResourceMonitor m(c, quiet_monitor());  // quarantine_after = 2

  const SweepResult s1 = m.probe_all(Seconds{10.0});
  EXPECT_EQ(s1.timeouts, 1);
  EXPECT_FALSE(m.quarantined(0));
  EXPECT_EQ(m.fail_streak(0), 1);
  EXPECT_FALSE(s1.health_event());

  const SweepResult s2 = m.probe_all(Seconds{20.0});
  ASSERT_EQ(s2.quarantined.size(), 1u);
  EXPECT_EQ(s2.quarantined[0], 0);
  EXPECT_TRUE(s2.health_event());
  EXPECT_TRUE(m.quarantined(0));
  // Quarantined capacity is reported as zero on every axis.
  EXPECT_DOUBLE_EQ(s2.estimates[0].cpu_available.value(), 0.0);
  EXPECT_DOUBLE_EQ(s2.estimates[0].memory_free_mb.value(), 0.0);
  EXPECT_DOUBLE_EQ(s2.estimates[0].bandwidth_mbps.value(), 0.0);

  // While quarantined, the node gets a single attempt (no retry budget).
  const SweepResult s3 = m.probe_all(Seconds{30.0});
  EXPECT_TRUE(s3.quarantined.empty());
  EXPECT_TRUE(m.quarantined(0));

  // Past the episode the node answers again and is re-admitted.
  const SweepResult s4 = m.probe_all(Seconds{150.0});
  ASSERT_EQ(s4.readmitted.size(), 1u);
  EXPECT_EQ(s4.readmitted[0], 0);
  EXPECT_TRUE(s4.health_event());
  EXPECT_FALSE(m.quarantined(0));
  EXPECT_GT(s4.estimates[0].cpu_available, Fraction{0.0});
}

TEST(MonitorFaults, DegradedSweepNeverFeedsCapacityNanOrZeroSum) {
  // Every node unreachable from the start: no last-known-good exists, all
  // estimates fall back to zero — the capacity calculator must degrade to
  // uniform, not NaN.
  Cluster c = Cluster::homogeneous(4);
  FaultPlan plan;
  for (rank_t r = 0; r < 4; ++r)
    plan.add(episode(r, FaultKind::kProbeTimeout, 0.0, 1.0e9));
  c.set_fault_plan(plan);
  ResourceMonitor m(c, quiet_monitor());
  const SweepResult sweep = m.probe_all(Seconds{5.0});
  CapacityCalculator calc{CapacityWeights::equal()};
  const std::vector<real_t> caps = calc.relative_capacities(sweep.estimates);
  real_t sum = 0;
  for (const real_t cap : caps) {
    EXPECT_TRUE(std::isfinite(cap));
    sum += cap;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(MonitorFaults, ZeroFaultPathIsBitIdenticalWithBenignPlanAttached) {
  MonitorConfig cfg;  // default (noisy, seeded) config
  Cluster plain = Cluster::homogeneous(3);
  Cluster with_plan = Cluster::homogeneous(3);
  with_plan.set_fault_plan(FaultPlan{});  // attached but benign
  ResourceMonitor a(plain, cfg);
  ResourceMonitor b(with_plan, cfg);
  for (int i = 0; i < 5; ++i) {
    const SweepResult sa = a.probe_all(Seconds{10.0 * i});
    const SweepResult sb = b.probe_all(Seconds{10.0 * i});
    ASSERT_EQ(sa.estimates.size(), sb.estimates.size());
    EXPECT_EQ(sa.overhead_s, sb.overhead_s);
    for (std::size_t k = 0; k < sa.estimates.size(); ++k) {
      EXPECT_EQ(sa.estimates[k].cpu_available,
                sb.estimates[k].cpu_available);
      EXPECT_EQ(sa.estimates[k].memory_free_mb,
                sb.estimates[k].memory_free_mb);
      EXPECT_EQ(sa.estimates[k].bandwidth_mbps,
                sb.estimates[k].bandwidth_mbps);
    }
  }
}

// ---- Runtime integration --------------------------------------------------

TEST(RuntimeFaults, QuarantineForcesOffCadenceRepartition) {
  // Sensing every 2 iterations, regrid every 5: quarantine events land off
  // the regrid cadence, so the forced-repartition path must fire.
  Cluster cluster = Cluster::homogeneous(4);
  FaultPlan plan;
  plan.add(episode(0, FaultKind::kProbeTimeout, 1.0, 1.0e9));
  cluster.set_fault_plan(plan);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  RuntimeConfig cfg = small_runtime(20, 2);
  AdaptiveRuntime rt(cluster, source, part, cfg);
  const RunTrace t = rt.run();
  EXPECT_GE(t.health.quarantines, 1);
  EXPECT_GE(t.health.forced_repartitions, 1);
  EXPECT_GT(t.health.timeouts, 0);
  // More regrids than the cadence alone would produce.
  EXPECT_GT(t.regrids.size(), 4u);
  // The quarantined node ends up with (essentially) no work.
  const RegridRecord& last = t.regrids.back();
  EXPECT_DOUBLE_EQ(last.capacities[0], 0.0);
}

TEST(RuntimeFaults, CrashAndRejoinProducesReadmissionAndStaysFinite) {
  Cluster cluster = Cluster::homogeneous(4);
  FaultPlan plan;
  // Node 2 is down from the start and rejoins mid-run.  The window must
  // cover the initial sweep and quarantine must trigger on the first failed
  // sweep: once a crashed node holds work, the crash pause stalls the clock
  // past the rejoin and no later sweep can land inside the window — the
  // node has to be evacuated immediately for the monitor to observe the
  // outage and, later, the recovery.
  plan.add(episode(2, FaultKind::kCrash, 0.0, 12.0));
  cluster.set_fault_plan(plan);
  TraceWorkloadSource source(small_trace());
  HeterogeneousPartitioner part;
  RuntimeConfig cfg = small_runtime(30, 2);
  cfg.monitor.quarantine_after = 1;
  AdaptiveRuntime rt(cluster, source, part, cfg);
  const RunTrace t = rt.run();
  EXPECT_GE(t.health.quarantines, 1);
  EXPECT_GE(t.health.readmissions, 1);
  // At least the quarantine lands off the regrid cadence (the readmission
  // may coincide with a scheduled regrid, which doesn't count as forced).
  EXPECT_GE(t.health.forced_repartitions, 1);
  EXPECT_TRUE(std::isfinite(t.total_time.value()));
  EXPECT_GT(t.total_time, Seconds{0.0});
  for (const SenseRecord& s : t.senses) {
    real_t sum = 0;
    for (const real_t cap : s.capacities) {
      EXPECT_TRUE(std::isfinite(cap));
      EXPECT_GE(cap, 0.0);
      sum += cap;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RuntimeFaults, TwentyPercentProbeFailuresCompleteAllScenarios) {
  // The acceptance bar: a 20% per-attempt probe failure rate (plus stale
  // and crash scripting) must not stop any run or corrupt any capacity
  // vector, under either execution model.
  for (const ExecModelKind model :
       {ExecModelKind::kBsp, ExecModelKind::kEvent}) {
    FaultProfile profile;
    profile.probe_timeout_rate = 0.1;
    profile.probe_drop_rate = 0.1;
    profile.stale_windows = 2;
    profile.crash_episodes = 1;
    Cluster cluster = Cluster::homogeneous(4);
    cluster.set_fault_plan(FaultPlan::scripted(4, Seconds{100.0}, profile, 7));
    TraceWorkloadSource source(small_trace());
    HeterogeneousPartitioner part;
    RuntimeConfig cfg = small_runtime(25, 2);
    cfg.exec_model = model;
    AdaptiveRuntime rt(cluster, source, part, cfg);
    const RunTrace t = rt.run();
    EXPECT_EQ(t.iterations, 25);
    EXPECT_TRUE(std::isfinite(t.total_time.value()));
    for (const SenseRecord& s : t.senses)
      for (const real_t cap : s.capacities) {
        EXPECT_TRUE(std::isfinite(cap));
        EXPECT_GE(cap, 0.0);
      }
  }
}

TEST(RuntimeFaults, ZeroFaultRunBitIdenticalWithBenignPlan) {
  auto run_once = [](bool attach_benign_plan) {
    Cluster cluster = Cluster::homogeneous(4);
    LoadRamp r;
    r.rate = 0.01;
    r.target_level = 2.0;
    cluster.add_load(1, r);
    if (attach_benign_plan) cluster.set_fault_plan(FaultPlan{});
    TraceWorkloadSource source(small_trace());
    HeterogeneousPartitioner part;
    RuntimeConfig cfg = small_runtime(20, 5);
    cfg.monitor.noise = SensorNoise{};  // default noise, seeded
    AdaptiveRuntime rt(cluster, source, part, cfg);
    return rt.run();
  };
  const RunTrace plain = run_once(false);
  const RunTrace benign = run_once(true);
  EXPECT_TRUE(plain == benign);  // bit-exact whole-trace comparison
  EXPECT_EQ(plain.health.quarantines, 0);
  EXPECT_EQ(plain.health.forced_repartitions, 0);
}

// ---- Config validation ----------------------------------------------------

TEST(MonitorFaults, NewKnobsAreValidated) {
  Cluster c = Cluster::homogeneous(1);
  MonitorConfig cfg;
  cfg.probe_deadline_s = Seconds{0.1};  // below probe_cost_s
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
  cfg = MonitorConfig{};
  cfg.probe_max_retries = -1;
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
  cfg = MonitorConfig{};
  cfg.backoff_factor = 0.5;
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
  cfg = MonitorConfig{};
  cfg.quarantine_after = 0;
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
  cfg = MonitorConfig{};
  cfg.staleness.decay_tau_s = Seconds{0};
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
}

TEST(Capacity, RejectsNonFiniteEstimates) {
  CapacityCalculator calc{CapacityWeights::equal()};
  std::vector<ResourceEstimate> est(2);
  est[0].cpu_available = Fraction{std::numeric_limits<real_t>::quiet_NaN()};
  EXPECT_THROW(calc.relative_capacities(est), Error);
  est[0].cpu_available = Fraction{std::numeric_limits<real_t>::infinity()};
  EXPECT_THROW(calc.relative_capacities(est), Error);
}

}  // namespace
}  // namespace ssamr

// Tests for error flagging and Berger–Rigoutsos clustering.

#include <gtest/gtest.h>

#include <algorithm>

#include "amr/cluster_br.hpp"
#include "amr/flagging.hpp"
#include "amr/level.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

bool boxes_cover_all_flags(const std::vector<Box>& boxes,
                           const std::vector<IntVec>& flags) {
  for (const IntVec& f : flags) {
    bool covered = false;
    for (const Box& b : boxes)
      if (b.contains(f)) {
        covered = true;
        break;
      }
    if (!covered) return false;
  }
  return true;
}

bool all_disjoint(const std::vector<Box>& boxes) {
  for (std::size_t i = 0; i < boxes.size(); ++i)
    for (std::size_t j = i + 1; j < boxes.size(); ++j)
      if (boxes[i].intersects(boxes[j])) return false;
  return true;
}

TEST(GradientFlagger, FlagsAStepAndNotConstantRegions) {
  GridLevel lvl(0, 1, 1);
  Patch& p =
      lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 4, 4), 0));
  for (coord_t k = 0; k < 4; ++k)
    for (coord_t j = 0; j < 4; ++j)
      for (coord_t i = 0; i < 16; ++i)
        p.data()(0, i, j, k) = i < 8 ? 0.0 : 1.0;
  std::vector<IntVec> flags;
  GradientFlagger(0, 0.1).flag_level(lvl, flags);
  EXPECT_FALSE(flags.empty());
  for (const IntVec& f : flags) {
    EXPECT_GE(f.x, 7);
    EXPECT_LE(f.x, 8);
  }
  // Count: two planes of 4x4.
  EXPECT_EQ(flags.size(), 2u * 16u);
}

TEST(GradientFlagger, ThresholdControlsSensitivity) {
  GridLevel lvl(0, 1, 1);
  Patch& p =
      lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 2, 2), 0));
  for (coord_t i = 0; i < 8; ++i)
    for (coord_t j = 0; j < 2; ++j)
      for (coord_t k = 0; k < 2; ++k)
        p.data()(0, i, j, k) = 0.05 * static_cast<real_t>(i);
  std::vector<IntVec> strict, loose;
  GradientFlagger(0, 0.2).flag_level(lvl, strict);
  GradientFlagger(0, 0.01).flag_level(lvl, loose);
  EXPECT_TRUE(strict.empty());
  EXPECT_EQ(loose.size(), 8u * 2u * 2u);
}

TEST(GradientFlagger, RejectsBadArgs) {
  EXPECT_THROW(GradientFlagger(-1, 0.1), Error);
  EXPECT_THROW(GradientFlagger(0, 0.0), Error);
}

TEST(BufferFlags, GrowsAndClips) {
  const Box clip = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4));
  const auto out = buffer_flags({IntVec(0, 0, 0)}, 1, clip);
  // 2x2x2 corner neighbourhood survives clipping.
  EXPECT_EQ(out.size(), 8u);
  for (const IntVec& p : out) EXPECT_TRUE(clip.contains(p));
}

TEST(BufferFlags, Deduplicates) {
  const Box clip = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8));
  const auto out =
      buffer_flags({IntVec(2, 2, 2), IntVec(3, 2, 2)}, 1, clip);
  std::vector<IntVec> sorted = out;
  const auto unique_end =
      std::unique(sorted.begin(), sorted.end(),
                  [](IntVec a, IntVec b) { return a == b; });
  EXPECT_EQ(unique_end, sorted.end());
  EXPECT_EQ(out.size(), 3u * 3u * 4u);  // two overlapping 3x3x3 cubes
}

TEST(BergerRigoutsos, EmptyFlagsEmptyResult) {
  EXPECT_TRUE(cluster_flags({}, 0, ClusterConfig{}).empty());
}

TEST(BergerRigoutsos, SinglePointYieldsUnitBox) {
  const auto boxes = cluster_flags({IntVec(5, 6, 7)}, 2, ClusterConfig{});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], Box(IntVec(5, 6, 7), IntVec(5, 6, 7), 2));
}

TEST(BergerRigoutsos, SolidBlockIsOneBox) {
  std::vector<IntVec> flags;
  for (coord_t i = 0; i < 8; ++i)
    for (coord_t j = 0; j < 8; ++j)
      for (coord_t k = 0; k < 8; ++k) flags.emplace_back(i, j, k);
  const auto boxes = cluster_flags(flags, 0, ClusterConfig{});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].cells(), 512);
}

TEST(BergerRigoutsos, SeparatedBlobsSplitAtHole) {
  std::vector<IntVec> flags;
  ClusterConfig cfg;
  cfg.min_box_size = 2;
  cfg.small_box_cells = 4;
  // Two 4^3 blobs separated by a 16-cell gap along x.
  for (coord_t i = 0; i < 4; ++i)
    for (coord_t j = 0; j < 4; ++j)
      for (coord_t k = 0; k < 4; ++k) {
        flags.emplace_back(i, j, k);
        flags.emplace_back(i + 20, j, k);
      }
  const auto boxes = cluster_flags(flags, 0, cfg);
  EXPECT_EQ(boxes.size(), 2u);
  EXPECT_TRUE(all_disjoint(boxes));
  EXPECT_TRUE(boxes_cover_all_flags(boxes, flags));
  for (const Box& b : boxes) EXPECT_EQ(b.cells(), 64);
}

TEST(BergerRigoutsos, DuplicatesDoNotInflateEfficiency) {
  std::vector<IntVec> flags;
  for (int rep = 0; rep < 3; ++rep)
    for (coord_t i = 0; i < 4; ++i) flags.emplace_back(i, 0, 0);
  const auto boxes = cluster_flags(flags, 0, ClusterConfig{});
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].cells(), 4);
}

class BrEfficiencyTest : public ::testing::TestWithParam<real_t> {};

TEST_P(BrEfficiencyTest, InvariantsHoldOnLShape) {
  const real_t eff = GetParam();
  // An L-shaped flag cloud — classic case needing an inflection cut.
  std::vector<IntVec> flags;
  for (coord_t i = 0; i < 16; ++i)
    for (coord_t j = 0; j < 4; ++j)
      for (coord_t k = 0; k < 2; ++k) flags.emplace_back(i, j, k);
  for (coord_t i = 0; i < 4; ++i)
    for (coord_t j = 4; j < 16; ++j)
      for (coord_t k = 0; k < 2; ++k) flags.emplace_back(i, j, k);

  ClusterConfig cfg;
  cfg.efficiency = eff;
  cfg.min_box_size = 2;
  cfg.small_box_cells = 8;
  const auto boxes = cluster_flags(flags, 1, cfg);
  ASSERT_FALSE(boxes.empty());
  EXPECT_TRUE(all_disjoint(boxes));
  EXPECT_TRUE(boxes_cover_all_flags(boxes, flags));
  for (const Box& b : boxes) EXPECT_EQ(b.level(), 1);

  // Aggregate efficiency of the cover should be at least the flag volume
  // over box volume; with higher target efficiency the cover is tighter.
  std::int64_t covered = 0;
  for (const Box& b : boxes) covered += b.cells();
  const auto nflags = static_cast<std::int64_t>(flags.size());
  if (eff >= 0.9) {
    EXPECT_LE(covered, nflags * 2);
  }
}

INSTANTIATE_TEST_SUITE_P(EfficiencySweep, BrEfficiencyTest,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0));

TEST(BergerRigoutsos, HigherEfficiencyNeverCoversMoreCells) {
  Rng rng(31);
  std::vector<IntVec> flags;
  // A noisy diagonal band.
  for (coord_t i = 0; i < 32; ++i)
    for (int n = 0; n < 6; ++n)
      flags.emplace_back(i, (i + rng.uniform_int(0, 3)) % 32,
                         rng.uniform_int(0, 4));
  ClusterConfig lo, hi;
  lo.efficiency = 0.3;
  hi.efficiency = 0.9;
  lo.min_box_size = hi.min_box_size = 2;
  lo.small_box_cells = hi.small_box_cells = 8;
  std::int64_t cells_lo = 0, cells_hi = 0;
  for (const Box& b : cluster_flags(flags, 0, lo)) cells_lo += b.cells();
  for (const Box& b : cluster_flags(flags, 0, hi)) cells_hi += b.cells();
  EXPECT_LE(cells_hi, cells_lo);
}

TEST(BergerRigoutsos, MinBoxSizeRespectedBySplits) {
  std::vector<IntVec> flags;
  for (coord_t i = 0; i < 64; ++i) flags.emplace_back(i, 0, 0);
  ClusterConfig cfg;
  cfg.efficiency = 1.0;  // force maximal splitting pressure
  cfg.min_box_size = 8;
  cfg.small_box_cells = 1;
  for (const Box& b : cluster_flags(flags, 0, cfg)) {
    // Boxes are 1 wide in y/z (flag cloud is a line); the split axis (x)
    // must respect the minimum size.
    EXPECT_GE(b.extent().x, 8);
  }
}

TEST(BergerRigoutsos, RejectsBadConfig) {
  ClusterConfig cfg;
  cfg.efficiency = 0;
  EXPECT_THROW(cluster_flags({IntVec(0, 0, 0)}, 0, cfg), Error);
  cfg = ClusterConfig{};
  cfg.min_box_size = 0;
  EXPECT_THROW(cluster_flags({IntVec(0, 0, 0)}, 0, cfg), Error);
}

}  // namespace
}  // namespace ssamr

// Tests for conservative refluxing: face identification, and exact
// composite-mass conservation on periodic AMR runs.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/flux_register.hpp"
#include "amr/integrator.hpp"
#include "geom/box_algebra.hpp"
#include "solver/advection.hpp"
#include "solver/euler.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

// ---- face identification ---------------------------------------------------

TEST(FluxRegister, CountsBoundaryFacesOfAnInteriorBox) {
  GridLevel coarse(0, 1, 1);
  coarse.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 0));
  GridLevel fine(1, 1, 1);
  // Fine box covering coarse cells [4,7]^3 -> coarsened extent 4^3.
  fine.add_patch(Box::from_extent(IntVec(8, 8, 8), IntVec(8, 8, 8), 1));
  FluxRegister reg(coarse, fine,
                   Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 0),
                   2, 1);
  EXPECT_EQ(reg.num_faces(), 6u * 16u);  // 6 faces of a 4x4x4 cube
}

TEST(FluxRegister, DomainBoundaryFacesAreNotRegistered) {
  GridLevel coarse(0, 1, 1);
  coarse.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0));
  GridLevel fine(1, 1, 1);
  // Fine region touches the low-x domain face.
  fine.add_patch(Box::from_extent(IntVec(0, 4, 4), IntVec(8, 8, 8), 1));
  FluxRegister reg(coarse, fine,
                   Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0), 2,
                   1);
  // Coarsened box is 4x4x4 at (0,2,2): one x-face is on the domain
  // boundary, so only 5 sides x 16 faces remain.
  EXPECT_EQ(reg.num_faces(), 5u * 16u);
}

TEST(FluxRegister, InternalFacesBetweenFineBoxesExcluded) {
  GridLevel coarse(0, 1, 1);
  coarse.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 0));
  GridLevel fine(1, 1, 1);
  // Two adjacent fine boxes forming an 8x4x4 coarsened slab.
  fine.add_patch(Box::from_extent(IntVec(8, 8, 8), IntVec(8, 8, 8), 1));
  fine.add_patch(Box::from_extent(IntVec(16, 8, 8), IntVec(8, 8, 8), 1));
  FluxRegister reg(coarse, fine,
                   Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 0),
                   2, 1);
  // Coarsened slab 8x4x4: surface = 2*(4*4) + 2*(8*4) + 2*(8*4) = 160.
  EXPECT_EQ(reg.num_faces(), 160u);
}

// ---- conservation ----------------------------------------------------------

/// Composite mass of component `comp`: fine cells where refined, coarse
/// cells elsewhere.
real_t composite_mass(const GridHierarchy& h, real_t dx0, int comp) {
  const coord_t r = h.config().ratio;
  real_t mass = 0;
  // Fine level contribution.
  std::vector<Box> shadow;
  if (h.num_levels() > 1) {
    const real_t dxf = dx0 / static_cast<real_t>(r);
    const real_t vol_f = dxf * dxf * dxf;
    for (const Patch& p : h.level(1).patches()) {
      shadow.push_back(p.box().coarsened(r));
      const Box& b = p.box();
      for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
        for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
          for (coord_t i = b.lo().x; i <= b.hi().x; ++i)
            mass += p.data()(comp, i, j, k) * vol_f;
    }
  }
  const real_t vol_c = dx0 * dx0 * dx0;
  for (const Patch& p : h.level(0).patches()) {
    const Box& b = p.box();
    for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
      for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
        for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
          bool covered = false;
          for (const Box& s : shadow)
            if (s.contains(IntVec(i, j, k))) {
              covered = true;
              break;
            }
          if (!covered) mass += p.data()(comp, i, j, k) * vol_c;
        }
  }
  return mass;
}

/// Two-level periodic advection hierarchy with a fixed fine patch.
struct AdvectionSetup {
  HierarchyConfig hc;
  IntegratorConfig ic;
  AdvectionOperator op{1.0, 0.5, 0.25, 0.5, 0.5, 0.5, 0.15};
  GradientFlagger flagger{0, 1e9};  // never regrid

  AdvectionSetup() {
    hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 0);
    hc.ncomp = 1;
    hc.ghost = 1;
    hc.max_levels = 2;
    hc.min_box_size = 2;
    ic.dx0 = 1.0 / 16.0;
    ic.regrid_interval = 100000;  // frozen hierarchy
    ic.bc = BoundaryKind::Periodic;
  }

  GridHierarchy make_hierarchy(bool reflux) {
    ic.reflux = reflux;
    GridHierarchy h(hc);
    BoxList l1;
    l1.push_back(Box::from_extent(IntVec(8, 8, 8), IntVec(16, 16, 16), 1));
    h.set_level_boxes(1, l1);
    for (int l = 0; l < h.num_levels(); ++l) {
      const real_t dx = ic.dx0 / std::pow(2.0, l);
      for (Patch& p : h.level(l).patches()) op.initialize(p, dx);
    }
    return h;
  }
};

TEST(Reflux, ConservesCompositeMassExactly) {
  AdvectionSetup setup;
  GridHierarchy h = setup.make_hierarchy(/*reflux=*/true);
  BergerOliger bo(h, setup.op, setup.flagger, setup.ic);
  const real_t m0 = composite_mass(h, setup.ic.dx0, 0);
  for (int s = 0; s < 10; ++s) bo.advance_step();
  const real_t m1 = composite_mass(h, setup.ic.dx0, 0);
  EXPECT_NEAR(m1, m0, std::abs(m0) * 1e-12 + 1e-14);
}

TEST(Reflux, WithoutItMassDrifts) {
  AdvectionSetup setup;
  GridHierarchy h = setup.make_hierarchy(/*reflux=*/false);
  BergerOliger bo(h, setup.op, setup.flagger, setup.ic);
  const real_t m0 = composite_mass(h, setup.ic.dx0, 0);
  for (int s = 0; s < 10; ++s) bo.advance_step();
  const real_t m1 = composite_mass(h, setup.ic.dx0, 0);
  // The coarse-fine flux mismatch leaks measurable mass.
  EXPECT_GT(std::abs(m1 - m0), std::abs(m0) * 1e-8);
}

TEST(Reflux, SingleLevelRunsAreUnaffected) {
  AdvectionSetup setup;
  setup.hc.max_levels = 1;
  setup.ic.reflux = true;
  GridHierarchy h(setup.hc);
  for (Patch& p : h.level(0).patches()) setup.op.initialize(p, setup.ic.dx0);
  BergerOliger bo(h, setup.op, setup.flagger, setup.ic);
  const real_t m0 = composite_mass(h, setup.ic.dx0, 0);
  for (int s = 0; s < 5; ++s) bo.advance_step();
  EXPECT_NEAR(composite_mass(h, setup.ic.dx0, 0), m0,
              std::abs(m0) * 1e-12);
}

TEST(Reflux, EulerConservesMassMomentumEnergy) {
  HierarchyConfig hc;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0);
  hc.ncomp = kEulerNcomp;
  hc.ghost = 1;
  hc.max_levels = 2;
  hc.min_box_size = 2;
  IntegratorConfig ic;
  ic.dx0 = 1.0 / 16.0;
  ic.regrid_interval = 100000;
  ic.bc = BoundaryKind::Periodic;
  ic.reflux = true;

  EulerOperator op(1.4, [](real_t x, real_t, real_t) {
    EulerPrimitive s;
    s.rho = 1.0 + 0.4 * std::sin(2 * 3.14159265358979 * x);
    s.u = 0.7;
    s.p = 1.0;
    return s;
  });
  GradientFlagger flagger(kRho, 1e9);
  GridHierarchy h(hc);
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(8, 4, 4), IntVec(16, 8, 8), 1));
  h.set_level_boxes(1, l1);
  for (int l = 0; l < 2; ++l) {
    const real_t dx = ic.dx0 / std::pow(2.0, l);
    for (Patch& p : h.level(l).patches()) op.initialize(p, dx);
  }
  BergerOliger bo(h, op, flagger, ic);

  real_t m0[kEulerNcomp];
  for (int c = 0; c < kEulerNcomp; ++c)
    m0[c] = composite_mass(h, ic.dx0, c);
  for (int s = 0; s < 6; ++s) bo.advance_step();
  for (int c = 0; c < kEulerNcomp; ++c) {
    const real_t m1 = composite_mass(h, ic.dx0, c);
    EXPECT_NEAR(m1, m0[c], std::abs(m0[c]) * 1e-11 + 1e-12)
        << "component " << c;
  }
}

TEST(Reflux, RefusesOperatorsWithoutFluxCapture) {
  // A dummy operator that does not support capture must throw when the
  // integrator asks for fluxes.
  class NoCaptureOp final : public PatchOperator {
   public:
    int ncomp() const override { return 1; }
    int ghost() const override { return 1; }
    void initialize(Patch& p, real_t) const override { p.data().fill(1.0); }
    real_t max_wave_speed(const Patch&) const override { return 1.0; }
    void advance(Patch& p, real_t, real_t) const override {
      p.scratch().fill(1.0);
    }
  };
  NoCaptureOp op;
  Patch p(Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2)), 1, 1);
  FaceFluxes ff(p.box(), 1);
  EXPECT_THROW(op.advance_capture(p, 0.1, 1.0, ff), Error);
  // And the integrator silently skips refluxing for such operators
  // (supports_flux_capture() is false), instead of crashing.
  EXPECT_FALSE(op.supports_flux_capture());
}

}  // namespace
}  // namespace ssamr

// Tests for box algebra (difference, union, coalesce) and BoxList.

#include <gtest/gtest.h>

#include "geom/box_algebra.hpp"
#include "geom/box_list.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

std::int64_t total_cells(const std::vector<Box>& boxes) {
  std::int64_t n = 0;
  for (const Box& b : boxes) n += b.cells();
  return n;
}

bool all_disjoint(const std::vector<Box>& boxes) {
  for (std::size_t i = 0; i < boxes.size(); ++i)
    for (std::size_t j = i + 1; j < boxes.size(); ++j)
      if (boxes[i].intersects(boxes[j])) return false;
  return true;
}

TEST(BoxDifference, DisjointReturnsMinuend) {
  const Box a(IntVec(0, 0, 0), IntVec(1, 1, 1));
  const Box b(IntVec(5, 5, 5), IntVec(6, 6, 6));
  const auto d = box_difference(a, b);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0], a);
}

TEST(BoxDifference, CoveredReturnsEmpty) {
  const Box a(IntVec(1, 1, 1), IntVec(2, 2, 2));
  const Box b(IntVec(0, 0, 0), IntVec(3, 3, 3));
  EXPECT_TRUE(box_difference(a, b).empty());
}

TEST(BoxDifference, CenterHoleProducesSixPieces) {
  const Box a(IntVec(0, 0, 0), IntVec(4, 4, 4));
  const Box hole(IntVec(2, 2, 2), IntVec(2, 2, 2));
  const auto d = box_difference(a, hole);
  EXPECT_EQ(d.size(), 6u);
  EXPECT_EQ(total_cells(d), a.cells() - 1);
  EXPECT_TRUE(all_disjoint(d));
}

TEST(BoxDifference, CellCountAlwaysConsistent) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const Box a = Box::from_extent(
        IntVec(rng.uniform_int(0, 5), rng.uniform_int(0, 5),
               rng.uniform_int(0, 5)),
        IntVec(rng.uniform_int(1, 8), rng.uniform_int(1, 8),
               rng.uniform_int(1, 8)));
    const Box b = Box::from_extent(
        IntVec(rng.uniform_int(0, 8), rng.uniform_int(0, 8),
               rng.uniform_int(0, 8)),
        IntVec(rng.uniform_int(1, 8), rng.uniform_int(1, 8),
               rng.uniform_int(1, 8)));
    const auto d = box_difference(a, b);
    EXPECT_EQ(total_cells(d), a.cells() - a.intersection(b).cells());
    EXPECT_TRUE(all_disjoint(d));
    for (const Box& piece : d) {
      EXPECT_TRUE(a.contains(piece));
      EXPECT_FALSE(piece.intersects(b));
    }
  }
}

TEST(BoxDifference, MultipleSubtrahends) {
  const Box a(IntVec(0, 0, 0), IntVec(7, 0, 0));
  const std::vector<Box> subs{Box(IntVec(1, 0, 0), IntVec(2, 0, 0)),
                              Box(IntVec(5, 0, 0), IntVec(6, 0, 0))};
  const auto d = box_difference(a, subs);
  EXPECT_EQ(total_cells(d), 4);
  EXPECT_TRUE(all_disjoint(d));
}

TEST(BoxDifference, EmptyMinuend) {
  EXPECT_TRUE(box_difference(Box(), Box(IntVec(0, 0, 0), IntVec(1, 1, 1)))
                  .empty());
}

TEST(UnionCells, CountsOverlapsOnce) {
  const Box a(IntVec(0, 0, 0), IntVec(3, 3, 3));
  const Box b(IntVec(2, 0, 0), IntVec(5, 3, 3));
  EXPECT_EQ(union_cells({a, b}), 6 * 4 * 4);
  EXPECT_EQ(union_cells({a, a, a}), a.cells());
  EXPECT_EQ(union_cells({}), 0);
}

TEST(Coalesce, MergesAdjacentPair) {
  const Box a(IntVec(0, 0, 0), IntVec(3, 3, 3));
  const Box b(IntVec(4, 0, 0), IntVec(7, 3, 3));
  const auto m = coalesce({a, b});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], Box(IntVec(0, 0, 0), IntVec(7, 3, 3)));
}

TEST(Coalesce, LeavesNonMergeable) {
  const Box a(IntVec(0, 0, 0), IntVec(3, 3, 3));
  const Box b(IntVec(4, 0, 0), IntVec(7, 2, 3));  // different y extent
  EXPECT_EQ(coalesce({a, b}).size(), 2u);
}

TEST(Coalesce, ChainsMerges) {
  std::vector<Box> boxes;
  for (coord_t i = 0; i < 4; ++i)
    boxes.push_back(
        Box(IntVec(i * 2, 0, 0), IntVec(i * 2 + 1, 1, 1)));
  const auto m = coalesce(boxes);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].cells(), 8 * 2 * 2);
}

TEST(ClipAll, IntersectsAndDropsEmpties) {
  const std::vector<Box> list{Box(IntVec(0, 0, 0), IntVec(3, 3, 3)),
                              Box(IntVec(10, 10, 10), IntVec(12, 12, 12))};
  const Box clip(IntVec(2, 2, 2), IntVec(8, 8, 8));
  const auto c = clip_all(list, clip);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], Box(IntVec(2, 2, 2), IntVec(3, 3, 3)));
}

TEST(BoxList, TotalCellsAndPrune) {
  BoxList l;
  l.push_back(Box(IntVec(0, 0, 0), IntVec(1, 1, 1)));
  l.push_back(Box());  // skipped
  l.push_back(Box(IntVec(4, 4, 4), IntVec(4, 4, 4)));
  EXPECT_EQ(l.size(), 2u);
  EXPECT_EQ(l.total_cells(), 9);
}

TEST(BoxList, OverlapDetection) {
  BoxList l(std::vector<Box>{Box(IntVec(0, 0, 0), IntVec(3, 3, 3)),
              Box(IntVec(2, 2, 2), IntVec(5, 5, 5))});
  EXPECT_TRUE(l.has_overlap());
  BoxList m(std::vector<Box>{Box(IntVec(0, 0, 0), IntVec(1, 1, 1)),
              Box(IntVec(2, 0, 0), IntVec(3, 1, 1))});
  EXPECT_FALSE(m.has_overlap());
}

TEST(BoxList, DifferentLevelsNeverOverlap) {
  BoxList l(std::vector<Box>{Box(IntVec(0, 0, 0), IntVec(3, 3, 3), 0),
              Box(IntVec(0, 0, 0), IntVec(3, 3, 3), 1)});
  EXPECT_FALSE(l.has_overlap());
}

TEST(BoxList, CoversProbe) {
  BoxList l(std::vector<Box>{Box(IntVec(0, 0, 0), IntVec(3, 1, 1)),
              Box(IntVec(4, 0, 0), IntVec(7, 1, 1))});
  EXPECT_TRUE(l.covers(Box(IntVec(1, 0, 0), IntVec(6, 1, 1))));
  EXPECT_FALSE(l.covers(Box(IntVec(1, 0, 0), IntVec(8, 1, 1))));
  EXPECT_TRUE(l.covers(Box()));
}

TEST(BoxList, AppendConcatenates) {
  BoxList a(std::vector<Box>{Box(IntVec(0, 0, 0), IntVec(1, 1, 1))});
  BoxList b(std::vector<Box>{Box(IntVec(4, 4, 4), IntVec(5, 5, 5))});
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
}

}  // namespace
}  // namespace ssamr

// Unit and property tests for geom: IntVec and Box.

#include <gtest/gtest.h>

#include <sstream>

#include "geom/box.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

TEST(IntVec, Arithmetic) {
  const IntVec a(1, 2, 3), b(4, 5, 6);
  EXPECT_EQ(a + b, IntVec(5, 7, 9));
  EXPECT_EQ(b - a, IntVec(3, 3, 3));
  EXPECT_EQ(a * 2, IntVec(2, 4, 6));
  EXPECT_EQ(2 * a, IntVec(2, 4, 6));
}

TEST(IntVec, MinMaxProduct) {
  const IntVec a(1, 9, 3), b(4, 2, 6);
  EXPECT_EQ(min(a, b), IntVec(1, 2, 3));
  EXPECT_EQ(max(a, b), IntVec(4, 9, 6));
  EXPECT_EQ(a.product(), 27);
}

TEST(IntVec, Comparisons) {
  EXPECT_TRUE(IntVec(1, 1, 1).all_le(IntVec(1, 2, 3)));
  EXPECT_FALSE(IntVec(2, 1, 1).all_le(IntVec(1, 2, 3)));
  EXPECT_TRUE(IntVec(3, 3, 3).all_ge(IntVec(1, 2, 3)));
}

TEST(Box, DefaultIsEmpty) {
  const Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.cells(), 0);
  EXPECT_EQ(b.extent(), IntVec(0, 0, 0));
}

TEST(Box, ExtentAndCells) {
  const Box b(IntVec(0, 0, 0), IntVec(3, 1, 0));
  EXPECT_EQ(b.extent(), IntVec(4, 2, 1));
  EXPECT_EQ(b.cells(), 8);
}

TEST(Box, FromExtent) {
  const Box b = Box::from_extent(IntVec(2, 2, 2), IntVec(3, 3, 3));
  EXPECT_EQ(b.lo(), IntVec(2, 2, 2));
  EXPECT_EQ(b.hi(), IntVec(4, 4, 4));
}

TEST(Box, ContainsPoint) {
  const Box b(IntVec(0, 0, 0), IntVec(2, 2, 2));
  EXPECT_TRUE(b.contains(IntVec(0, 0, 0)));
  EXPECT_TRUE(b.contains(IntVec(2, 2, 2)));
  EXPECT_FALSE(b.contains(IntVec(3, 0, 0)));
  EXPECT_FALSE(b.contains(IntVec(-1, 0, 0)));
}

TEST(Box, ContainsBox) {
  const Box outer(IntVec(0, 0, 0), IntVec(7, 7, 7));
  EXPECT_TRUE(outer.contains(Box(IntVec(1, 1, 1), IntVec(6, 6, 6))));
  EXPECT_FALSE(outer.contains(Box(IntVec(1, 1, 1), IntVec(8, 6, 6))));
  EXPECT_TRUE(outer.contains(Box()));  // empty box is everywhere
}

TEST(Box, Intersection) {
  const Box a(IntVec(0, 0, 0), IntVec(4, 4, 4));
  const Box b(IntVec(2, 2, 2), IntVec(6, 6, 6));
  const Box i = a.intersection(b);
  EXPECT_EQ(i.lo(), IntVec(2, 2, 2));
  EXPECT_EQ(i.hi(), IntVec(4, 4, 4));
  EXPECT_TRUE(a.intersects(b));
}

TEST(Box, DisjointIntersectionIsEmpty) {
  const Box a(IntVec(0, 0, 0), IntVec(1, 1, 1));
  const Box b(IntVec(5, 5, 5), IntVec(6, 6, 6));
  EXPECT_TRUE(a.intersection(b).empty());
  EXPECT_FALSE(a.intersects(b));
}

TEST(Box, IntersectionLevelMismatchThrows) {
  const Box a(IntVec(0, 0, 0), IntVec(1, 1, 1), 0);
  const Box b(IntVec(0, 0, 0), IntVec(1, 1, 1), 1);
  EXPECT_THROW(a.intersection(b), Error);
}

TEST(Box, GrownAndShifted) {
  const Box b(IntVec(2, 2, 2), IntVec(4, 4, 4));
  EXPECT_EQ(b.grown(1).lo(), IntVec(1, 1, 1));
  EXPECT_EQ(b.grown(1).hi(), IntVec(5, 5, 5));
  EXPECT_EQ(b.grown(-1).cells(), 1);
  EXPECT_EQ(b.shifted(IntVec(1, 0, -2)).lo(), IntVec(3, 2, 0));
}

TEST(Box, RefineDoublesEachDirection) {
  const Box b(IntVec(1, 1, 1), IntVec(2, 2, 2), 0);
  const Box f = b.refined(2);
  EXPECT_EQ(f.level(), 1);
  EXPECT_EQ(f.lo(), IntVec(2, 2, 2));
  EXPECT_EQ(f.hi(), IntVec(5, 5, 5));
  EXPECT_EQ(f.cells(), b.cells() * 8);
}

TEST(Box, RefineMultipleLevels) {
  const Box b(IntVec(0, 0, 0), IntVec(1, 1, 1), 0);
  const Box f = b.refined(2, 2);
  EXPECT_EQ(f.level(), 2);
  EXPECT_EQ(f.cells(), b.cells() * 64);
}

TEST(Box, CoarsenCoversFineBox) {
  const Box f(IntVec(3, 5, 7), IntVec(8, 9, 11), 1);
  const Box c = f.coarsened(2);
  EXPECT_EQ(c.level(), 0);
  EXPECT_TRUE(c.refined(2).contains(f));
}

TEST(Box, CoarsenNegativeCoordsFloor) {
  const Box f(IntVec(-3, -3, -3), IntVec(-1, -1, -1), 1);
  const Box c = f.coarsened(2);
  EXPECT_EQ(c.lo(), IntVec(-2, -2, -2));
  EXPECT_EQ(c.hi(), IntVec(-1, -1, -1));
}

TEST(Box, RefineCoarsenRoundtrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const IntVec lo(rng.uniform_int(0, 20), rng.uniform_int(0, 20),
                    rng.uniform_int(0, 20));
    const IntVec ext(rng.uniform_int(1, 10), rng.uniform_int(1, 10),
                     rng.uniform_int(1, 10));
    const Box b = Box::from_extent(lo, ext, 0);
    EXPECT_EQ(b.refined(2).coarsened(2), b);
  }
}

TEST(Box, LongestShortestAxis) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 2, 4));
  EXPECT_EQ(b.longest_axis(), 0);
  EXPECT_EQ(b.shortest_axis(), 1);
  EXPECT_DOUBLE_EQ(b.aspect_ratio(), 4.0);
}

TEST(Box, AspectRatioOfCubeIsOne) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4));
  EXPECT_DOUBLE_EQ(b.aspect_ratio(), 1.0);
}

struct SplitCase {
  int axis;
  coord_t offset;
};

class BoxSplitTest : public ::testing::TestWithParam<SplitCase> {};

TEST_P(BoxSplitTest, PiecesPartitionTheBox) {
  const Box b = Box::from_extent(IntVec(2, 3, 4), IntVec(8, 6, 10), 1);
  const auto [axis, offset] = GetParam();
  const auto [left, right] = b.split(axis, offset);
  EXPECT_EQ(left.cells() + right.cells(), b.cells());
  EXPECT_FALSE(left.intersects(right));
  EXPECT_TRUE(b.contains(left));
  EXPECT_TRUE(b.contains(right));
  EXPECT_EQ(left.extent()[axis], offset);
  EXPECT_EQ(left.level(), b.level());
  EXPECT_EQ(right.level(), b.level());
}

INSTANTIATE_TEST_SUITE_P(AxesAndOffsets, BoxSplitTest,
                         ::testing::Values(SplitCase{0, 1}, SplitCase{0, 4},
                                           SplitCase{0, 7}, SplitCase{1, 3},
                                           SplitCase{2, 5}, SplitCase{2, 9}));

TEST(Box, SplitRejectsDegenerateOffsets) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4));
  EXPECT_THROW(b.split(0, 0), Error);
  EXPECT_THROW(b.split(0, 4), Error);
  EXPECT_THROW(b.split(3, 1), Error);
}

TEST(Box, HalvedSplitsLongestAxis) {
  const Box b = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 16, 8));
  const auto [a, c] = b.halved();
  EXPECT_EQ(a.extent().y, 8);
  EXPECT_EQ(c.extent().y, 8);
}

TEST(Box, EqualityTreatsAllEmptyAsEqual) {
  EXPECT_EQ(Box(), Box(IntVec(5, 5, 5), IntVec(0, 0, 0)));
  EXPECT_NE(Box(IntVec(0, 0, 0), IntVec(1, 1, 1)), Box());
}

TEST(Box, BoundingUnion) {
  const Box a(IntVec(0, 0, 0), IntVec(1, 1, 1));
  const Box b(IntVec(4, 4, 4), IntVec(5, 5, 5));
  const Box u = bounding_union(a, b);
  EXPECT_EQ(u.lo(), IntVec(0, 0, 0));
  EXPECT_EQ(u.hi(), IntVec(5, 5, 5));
  EXPECT_EQ(bounding_union(Box(), a), a);
  EXPECT_EQ(bounding_union(a, Box()), a);
}

TEST(Box, StreamOutput) {
  std::ostringstream os;
  os << Box(IntVec(0, 0, 0), IntVec(1, 2, 3), 2);
  EXPECT_NE(os.str().find("L2"), std::string::npos);
}

}  // namespace
}  // namespace ssamr

// Tests for ghost exchange and inter-grid transfer operators.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/ghost.hpp"
#include "amr/interp.hpp"

namespace ssamr {
namespace {

/// Two adjacent patches along x on a 8x4x4 domain.
GridLevel two_patch_level(int ghost = 1) {
  GridLevel lvl(0, 1, ghost);
  lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0));
  lvl.add_patch(Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0));
  return lvl;
}

const Box kDomain = Box::from_extent(IntVec(0, 0, 0), IntVec(8, 4, 4), 0);

TEST(GhostPlan, PlansCopiesBetweenNeighbours) {
  GridLevel lvl = two_patch_level();
  GhostPlan plan(lvl, kDomain);
  // Each patch receives one face from the other.
  ASSERT_EQ(plan.ops().size(), 2u);
  for (const CopyOp& op : plan.ops()) EXPECT_EQ(op.region.cells(), 16);
}

TEST(GhostPlan, ExchangeMovesData) {
  GridLevel lvl = two_patch_level();
  lvl.patch(0).data().fill(1.0);
  lvl.patch(1).data().fill(2.0);
  GhostPlan plan(lvl, kDomain);
  plan.exchange(lvl);
  // Patch 0's ghost at x=4 now holds patch 1's value and vice versa.
  EXPECT_EQ(lvl.patch(0).data()(0, 4, 1, 1), 2.0);
  EXPECT_EQ(lvl.patch(1).data()(0, 3, 1, 1), 1.0);
}

TEST(GhostPlan, WiderGhostsCopyMoreCells) {
  GridLevel lvl = two_patch_level(/*ghost=*/2);
  GhostPlan plan(lvl, kDomain);
  for (const CopyOp& op : plan.ops()) EXPECT_EQ(op.region.cells(), 32);
}

TEST(GhostPlan, OutflowFillsDomainBoundary) {
  GridLevel lvl = two_patch_level();
  lvl.patch(0).data().fill(3.0);
  lvl.patch(1).data().fill(4.0);
  GhostPlan plan(lvl, kDomain, BoundaryKind::Outflow);
  plan.exchange(lvl);
  plan.fill_physical(lvl);
  // Ghost outside x=0 face extrapolates patch 0's boundary value.
  EXPECT_EQ(lvl.patch(0).data()(0, -1, 1, 1), 3.0);
  // Ghost outside x=7 face of patch 1.
  EXPECT_EQ(lvl.patch(1).data()(0, 8, 1, 1), 4.0);
  // Corner ghost.
  EXPECT_EQ(lvl.patch(0).data()(0, -1, -1, -1), 3.0);
}

TEST(GhostPlan, PeriodicWrapsValues) {
  GridLevel lvl = two_patch_level();
  // Distinct values at the two x-extremes of the domain.
  for (coord_t j = 0; j < 4; ++j)
    for (coord_t k = 0; k < 4; ++k) {
      lvl.patch(0).data()(0, 0, j, k) = 7.0;
      lvl.patch(1).data()(0, 7, j, k) = 9.0;
    }
  GhostPlan plan(lvl, kDomain, BoundaryKind::Periodic);
  plan.exchange(lvl);
  // Patch 0's ghost at x=-1 is the domain's x=7 plane.
  EXPECT_EQ(lvl.patch(0).data()(0, -1, 1, 1), 9.0);
  // Patch 1's ghost at x=8 is the domain's x=0 plane.
  EXPECT_EQ(lvl.patch(1).data()(0, 8, 1, 1), 7.0);
}

TEST(GhostPlan, PeriodicSelfWrapUsesInteriorData) {
  // Regression: a single patch covering the whole domain wraps onto
  // itself; the exchange must read interior cells, not its own stale
  // ghosts (bug found by the reflux conservation tests).
  GridLevel lvl(0, 1, 1);
  Patch& p =
      lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0));
  for (coord_t k = 0; k < 4; ++k)
    for (coord_t j = 0; j < 4; ++j)
      for (coord_t i = 0; i < 4; ++i)
        p.data()(0, i, j, k) = static_cast<real_t>(i);
  const Box domain = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0);
  GhostPlan plan(lvl, domain, BoundaryKind::Periodic);
  plan.exchange(lvl);
  EXPECT_EQ(p.data()(0, -1, 1, 1), 3.0);  // wrap of x=3
  EXPECT_EQ(p.data()(0, 4, 1, 1), 0.0);   // wrap of x=0
}

TEST(GhostPlan, RemoteBytesCountOnlyCrossOwnerCopies) {
  GridLevel lvl = two_patch_level();
  GhostPlan plan(lvl, kDomain);
  lvl.patch(0).set_owner(0);
  lvl.patch(1).set_owner(0);
  EXPECT_EQ(plan.remote_bytes(lvl), 0);
  lvl.patch(1).set_owner(1);
  const std::int64_t expected =
      2 * 16 * static_cast<std::int64_t>(sizeof(real_t));
  EXPECT_EQ(plan.remote_bytes(lvl), expected);
  EXPECT_EQ(plan.remote_bytes_touching(lvl, 0), expected);
  EXPECT_EQ(plan.remote_bytes_touching(lvl, 1), expected);
  EXPECT_EQ(plan.remote_bytes_touching(lvl, 2), 0);
}

// ---- interpolation -------------------------------------------------------

GridLevel coarse_level_with_linear_field() {
  GridLevel lvl(0, 1, 1);
  Patch& p =
      lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0));
  for (coord_t k = 0; k < 8; ++k)
    for (coord_t j = 0; j < 8; ++j)
      for (coord_t i = 0; i < 8; ++i)
        p.data()(0, i, j, k) = static_cast<real_t>(i) +
                               2.0 * static_cast<real_t>(j) +
                               4.0 * static_cast<real_t>(k);
  return lvl;
}

TEST(Interp, PiecewiseConstantProlongCopiesParent) {
  GridLevel coarse = coarse_level_with_linear_field();
  GridLevel fine(1, 1, 1);
  Patch& fp =
      fine.add_patch(Box::from_extent(IntVec(4, 4, 4), IntVec(4, 4, 4), 1));
  prolong_level(coarse, fine, 2, ProlongKind::PiecewiseConstant);
  // Fine (4,4,4) and (5,5,5) share coarse parent (2,2,2).
  const real_t parent = 2.0 + 2.0 * 2.0 + 4.0 * 2.0;
  EXPECT_EQ(fp.data()(0, 4, 4, 4), parent);
  EXPECT_EQ(fp.data()(0, 5, 5, 5), parent);
}

TEST(Interp, TrilinearReproducesLinearFieldsInTheInterior) {
  GridLevel coarse = coarse_level_with_linear_field();
  GridLevel fine(1, 1, 1);
  Patch& fp =
      fine.add_patch(Box::from_extent(IntVec(4, 4, 4), IntVec(8, 8, 8), 1));
  prolong_level(coarse, fine, 2, ProlongKind::Trilinear);
  // Fine cell (i,j,k) centre sits at coarse coordinate ((i+0.5)/2 - 0.5);
  // a linear function must be reproduced exactly away from the clamped
  // boundary slopes.
  for (coord_t k = 5; k < 11; ++k)
    for (coord_t j = 5; j < 11; ++j)
      for (coord_t i = 5; i < 11; ++i) {
        const real_t xc = (static_cast<real_t>(i) + 0.5) / 2.0 - 0.5;
        const real_t yc = (static_cast<real_t>(j) + 0.5) / 2.0 - 0.5;
        const real_t zc = (static_cast<real_t>(k) + 0.5) / 2.0 - 0.5;
        EXPECT_NEAR(fp.data()(0, i, j, k), xc + 2.0 * yc + 4.0 * zc, 1e-12);
      }
}

TEST(Interp, RestrictionAveragesChildren) {
  GridLevel coarse(0, 1, 1);
  Patch& cp =
      coarse.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0));
  GridLevel fine(1, 1, 1);
  Patch& fp =
      fine.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1));
  fp.data().fill(3.0);
  fp.data()(0, 0, 0, 0) = 11.0;  // one child deviates
  restrict_level(fine, coarse, 2);
  EXPECT_NEAR(cp.data()(0, 0, 0, 0), (11.0 + 7 * 3.0) / 8.0, 1e-12);
  EXPECT_NEAR(cp.data()(0, 1, 1, 1), 3.0, 1e-12);
}

TEST(Interp, RestrictionOnlyTouchesShadowedCells) {
  GridLevel coarse(0, 1, 1);
  Patch& cp =
      coarse.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0));
  cp.data().fill(1.0);
  GridLevel fine(1, 1, 1);
  Patch& fp =
      fine.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 1));
  fp.data().fill(9.0);
  restrict_level(fine, coarse, 2);
  EXPECT_EQ(cp.data()(0, 0, 0, 0), 9.0);  // shadowed
  EXPECT_EQ(cp.data()(0, 3, 3, 3), 1.0);  // untouched
}

TEST(Interp, CopyOverlapPreservesOldFineData) {
  GridLevel old_lvl(1, 1, 1);
  Patch& op =
      old_lvl.add_patch(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 1));
  op.data().fill(5.0);
  GridLevel new_lvl(1, 1, 1);
  Patch& np =
      new_lvl.add_patch(Box::from_extent(IntVec(2, 0, 0), IntVec(4, 4, 4), 1));
  np.data().fill(0.0);
  copy_overlap(old_lvl, new_lvl);
  EXPECT_EQ(np.data()(0, 2, 0, 0), 5.0);
  EXPECT_EQ(np.data()(0, 3, 3, 3), 5.0);
  EXPECT_EQ(np.data()(0, 5, 0, 0), 0.0);  // beyond the old patch
}

TEST(Interp, CoarseFineGhostFillLeavesInteriorIntact) {
  GridLevel coarse = coarse_level_with_linear_field();
  GridLevel fine(1, 1, 1);
  Patch& fp =
      fine.add_patch(Box::from_extent(IntVec(4, 4, 4), IntVec(4, 4, 4), 1));
  fp.data().fill(42.0);
  fill_coarse_fine_ghosts(coarse, fine, 2, ProlongKind::PiecewiseConstant);
  // Interior untouched.
  EXPECT_EQ(fp.data()(0, 5, 5, 5), 42.0);
  // Ghost cells got coarse data (parent of (3,4,4) is (1,2,2)).
  const real_t expect = 1.0 + 2.0 * 2.0 + 4.0 * 2.0;
  EXPECT_EQ(fp.data()(0, 3, 4, 4), expect);
}

}  // namespace
}  // namespace ssamr

// Tests for extendible hashing (Fagin et al. 1979).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "hash/extendible_hash.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

TEST(ExtendibleHash, InsertFindBasic) {
  ExtendibleHash<int> h;
  EXPECT_TRUE(h.insert(1, 10));
  EXPECT_TRUE(h.insert(2, 20));
  EXPECT_EQ(h.find(1), std::optional<int>(10));
  EXPECT_EQ(h.find(2), std::optional<int>(20));
  EXPECT_FALSE(h.find(3).has_value());
  EXPECT_EQ(h.size(), 2u);
}

TEST(ExtendibleHash, InsertOverwrites) {
  ExtendibleHash<int> h;
  EXPECT_TRUE(h.insert(1, 10));
  EXPECT_FALSE(h.insert(1, 11));  // existing key
  EXPECT_EQ(h.find(1), std::optional<int>(11));
  EXPECT_EQ(h.size(), 1u);
}

TEST(ExtendibleHash, EraseRemoves) {
  ExtendibleHash<int> h;
  h.insert(1, 10);
  EXPECT_TRUE(h.erase(1));
  EXPECT_FALSE(h.erase(1));
  EXPECT_FALSE(h.contains(1));
  EXPECT_TRUE(h.empty());
}

TEST(ExtendibleHash, DirectoryDoublesUnderLoad) {
  ExtendibleHash<int> h(/*bucket_capacity=*/2);
  for (key_t k = 0; k < 64; ++k) h.insert(k, static_cast<int>(k));
  EXPECT_GT(h.global_depth(), 0);
  EXPECT_GT(h.bucket_count(), 1u);
  for (key_t k = 0; k < 64; ++k)
    EXPECT_EQ(h.find(k), std::optional<int>(static_cast<int>(k)));
}

TEST(ExtendibleHash, TenThousandKeysIntegrity) {
  ExtendibleHash<std::int64_t> h(8);
  std::map<key_t, std::int64_t> ref;
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const key_t k = rng();
    const auto v = static_cast<std::int64_t>(rng());
    h.insert(k, v);
    ref[k] = v;
  }
  EXPECT_EQ(h.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_EQ(h.find(k), std::optional(v));
}

TEST(ExtendibleHash, MixedInsertEraseAgainstReference) {
  ExtendibleHash<std::int64_t> h(4);
  std::map<key_t, std::int64_t> ref;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const key_t k = rng() % 512;  // force collisions and reuse
    if (rng.uniform() < 0.6) {
      h.insert(k, static_cast<std::int64_t>(i));
      ref[k] = i;
    } else {
      EXPECT_EQ(h.erase(k), ref.erase(k) > 0);
    }
  }
  EXPECT_EQ(h.size(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_EQ(h.find(k), std::optional(v));
}

TEST(ExtendibleHash, ForEachVisitsEverythingOnce) {
  ExtendibleHash<int> h(2);
  for (key_t k = 100; k < 150; ++k) h.insert(k, 1);
  std::map<key_t, int> seen;
  h.for_each([&](key_t k, const int& v) { seen[k] += v; });
  EXPECT_EQ(seen.size(), 50u);
  for (const auto& [k, count] : seen) {
    EXPECT_GE(k, 100u);
    EXPECT_EQ(count, 1);
  }
}

TEST(ExtendibleHash, FindPtrAllowsMutation) {
  ExtendibleHash<std::string> h;
  h.insert(9, "a");
  auto* p = h.find_ptr(9);
  ASSERT_NE(p, nullptr);
  *p = "b";
  EXPECT_EQ(h.find(9), std::optional<std::string>("b"));
  EXPECT_EQ(h.find_ptr(999), nullptr);
}

TEST(ExtendibleHash, SequentialKeysHashWell) {
  // Sequential keys (the common HDDA pattern) must spread across buckets.
  ExtendibleHash<int> h(4);
  for (key_t k = 0; k < 1024; ++k) h.insert(k, 0);
  // With 1024 entries and capacity 4, at least 256 buckets must exist;
  // a directory depth of >= 8 shows the hash is not degenerate.
  EXPECT_GE(h.global_depth(), 8);
}

TEST(ExtendibleHash, RejectsZeroCapacity) {
  EXPECT_THROW(ExtendibleHash<int>(0), Error);
}

TEST(HashMix, IsInjectiveOnSmallRange) {
  std::map<key_t, key_t> seen;
  for (key_t k = 0; k < 10000; ++k) {
    const key_t m = hash_mix64(k);
    EXPECT_EQ(seen.count(m), 0u);
    seen[m] = k;
  }
}

}  // namespace
}  // namespace ssamr

// Tests for the Hierarchical Distributed Dynamic Array.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "hdda/hdda.hpp"

namespace ssamr {
namespace {

Box box_at(coord_t x, level_t l = 0) {
  return Box::from_extent(IntVec(x, 0, 0), IntVec(4, 4, 4), l);
}

TEST(Hdda, InsertFindErase) {
  Hdda h;
  const Box b = box_at(0);
  h.insert(b, /*owner=*/2, /*bytes=*/100);
  const auto e = h.find(b);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->owner, 2);
  EXPECT_EQ(e->bytes, 100);
  EXPECT_TRUE(h.erase(b));
  EXPECT_FALSE(h.find(b).has_value());
  EXPECT_FALSE(h.erase(b));
}

TEST(Hdda, KeysDistinguishLevels) {
  Hdda h;
  const Box c(IntVec(0, 0, 0), IntVec(7, 7, 7), 0);
  const Box f(IntVec(0, 0, 0), IntVec(7, 7, 7), 1);
  EXPECT_NE(h.key_of(c), h.key_of(f));
  h.insert(c, 0, 10);
  h.insert(f, 1, 20);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.owner_of(c), 0);
  EXPECT_EQ(h.owner_of(f), 1);
}

TEST(Hdda, DistinctBoxesDistinctKeys) {
  Hdda h;
  std::set<key_t> keys;
  for (coord_t x = 0; x < 16; ++x)
    for (coord_t y = 0; y < 8; ++y)
      keys.insert(h.key_of(
          Box::from_extent(IntVec(x * 4, y * 4, 0), IntVec(4, 4, 4), 0)));
  EXPECT_EQ(keys.size(), 16u * 8u);
}

TEST(Hdda, EraseLevelRemovesOnlyThatLevel) {
  Hdda h;
  h.insert(box_at(0, 0), 0, 1);
  h.insert(box_at(8, 0), 0, 1);
  h.insert(box_at(0, 1), 0, 1);
  EXPECT_EQ(h.erase_level(0), 2u);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.find(box_at(0, 1)).has_value());
}

TEST(Hdda, SetOwnerReportsMigration) {
  Hdda h;
  const Box b = box_at(0);
  h.insert(b, 0, 500);
  EXPECT_EQ(h.set_owner(b, 0), 0);    // unchanged: no movement
  EXPECT_EQ(h.set_owner(b, 1), 500);  // moved: full payload
  EXPECT_EQ(h.owner_of(b), 1);
}

TEST(Hdda, SetOwnerOnUnknownBoxInsertsWithoutCost) {
  Hdda h;
  const Box b = box_at(4);
  EXPECT_EQ(h.set_owner(b, 3), 0);
  EXPECT_EQ(h.owner_of(b), 3);
}

TEST(Hdda, OwnerOfUnknownIsMinusOne) {
  Hdda h;
  EXPECT_EQ(h.owner_of(box_at(0)), -1);
}

TEST(Hdda, BytesOnSumsPerRank) {
  Hdda h;
  h.insert(box_at(0), 0, 100);
  h.insert(box_at(8), 0, 50);
  h.insert(box_at(16), 1, 70);
  EXPECT_EQ(h.bytes_on(0), 150);
  EXPECT_EQ(h.bytes_on(1), 70);
  EXPECT_EQ(h.bytes_on(2), 0);
}

TEST(Hdda, OrderedEntriesFollowCurveOrder) {
  Hdda h;
  // Insert in scrambled order; enumeration must be locality-ordered
  // (deterministically sorted by hierarchical key).
  h.insert(box_at(24), 0, 1);
  h.insert(box_at(0), 0, 1);
  h.insert(box_at(16), 0, 1);
  h.insert(box_at(8), 0, 1);
  const auto entries = h.ordered_entries();
  ASSERT_EQ(entries.size(), 4u);
  std::vector<key_t> keys;
  for (const auto& e : entries) keys.push_back(h.key_of(e.box));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(Hdda, GrowsAndShrinksWithRegrids) {
  Hdda h;
  // Simulate three regrid cycles replacing level 1 each time.
  for (int cycle = 0; cycle < 3; ++cycle) {
    h.erase_level(1);
    for (coord_t x = 0; x < 8; ++x)
      h.insert(box_at(x * 8 + cycle * 2, 1), x % 4, 64);
    EXPECT_EQ(h.size(), 8u);
  }
}

}  // namespace
}  // namespace ssamr

// Tests for the adaptive grid hierarchy (levels, nesting, regrid plumbing).

#include <gtest/gtest.h>

#include "amr/hierarchy.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

HierarchyConfig small_config() {
  HierarchyConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 0);
  cfg.ratio = 2;
  cfg.max_levels = 4;
  cfg.ncomp = 1;
  cfg.ghost = 1;
  return cfg;
}

TEST(Hierarchy, StartsWithBaseLevelCoveringDomain) {
  GridHierarchy h(small_config());
  EXPECT_EQ(h.num_levels(), 1);
  EXPECT_EQ(h.level(0).num_patches(), 1u);
  EXPECT_EQ(h.level(0).patch(0).box(), small_config().domain);
}

TEST(Hierarchy, RejectsBadConfigs) {
  HierarchyConfig cfg = small_config();
  cfg.domain = Box();
  EXPECT_THROW(GridHierarchy{cfg}, Error);
  cfg = small_config();
  cfg.ratio = 1;
  EXPECT_THROW(GridHierarchy{cfg}, Error);
  cfg = small_config();
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 1);
  EXPECT_THROW(GridHierarchy{cfg}, Error);
}

TEST(Hierarchy, DomainAtScalesWithLevel) {
  GridHierarchy h(small_config());
  EXPECT_EQ(h.domain_at(0).extent(), IntVec(16, 16, 16));
  EXPECT_EQ(h.domain_at(1).extent(), IntVec(32, 32, 32));
  EXPECT_EQ(h.domain_at(3).extent(), IntVec(128, 128, 128));
}

TEST(Hierarchy, SetLevelBoxesCreatesLevel) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(4, 4, 4), IntVec(8, 8, 8), 1));
  h.set_level_boxes(1, l1);
  EXPECT_EQ(h.num_levels(), 2);
  EXPECT_EQ(h.level(1).num_patches(), 1u);
}

TEST(Hierarchy, RejectsBoxesOutsideDomain) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(28, 28, 28), IntVec(8, 8, 8), 1));
  EXPECT_THROW(h.set_level_boxes(1, l1), Error);
}

TEST(Hierarchy, RejectsWrongLevelBoxes) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 2));
  EXPECT_THROW(h.set_level_boxes(1, l1), Error);
}

TEST(Hierarchy, RejectsOverlappingBoxes) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1));
  l1.push_back(Box::from_extent(IntVec(4, 4, 4), IntVec(8, 8, 8), 1));
  EXPECT_THROW(h.set_level_boxes(1, l1), Error);
}

TEST(Hierarchy, RejectsSkippingLevels) {
  GridHierarchy h(small_config());
  BoxList l2;
  l2.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 2));
  EXPECT_THROW(h.set_level_boxes(2, l2), Error);
}

TEST(Hierarchy, EnforcesProperNesting) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(8, 8, 8), IntVec(8, 8, 8), 1));
  h.set_level_boxes(1, l1);
  // Level 2 box inside the level-1 region: fine.
  BoxList good;
  good.push_back(Box::from_extent(IntVec(16, 16, 16), IntVec(8, 8, 8), 2));
  EXPECT_TRUE(h.properly_nested(2, good));
  h.set_level_boxes(2, good);
  EXPECT_EQ(h.num_levels(), 3);
  // Level 2 box poking outside level 1: rejected.
  BoxList bad;
  bad.push_back(Box::from_extent(IntVec(8, 16, 16), IntVec(8, 8, 8), 2));
  EXPECT_FALSE(h.properly_nested(2, bad));
  EXPECT_THROW(h.set_level_boxes(2, bad), Error);
}

TEST(Hierarchy, EmptyLevelTruncatesDeeperLevels) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1));
  h.set_level_boxes(1, l1);
  BoxList l2;
  l2.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 2));
  h.set_level_boxes(2, l2);
  EXPECT_EQ(h.num_levels(), 3);
  h.set_level_boxes(1, BoxList());
  EXPECT_EQ(h.num_levels(), 1);
}

TEST(Hierarchy, ShrinkingParentDropsOrphanedChildren) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 1));
  h.set_level_boxes(1, l1);
  BoxList l2;
  l2.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 2));
  l2.push_back(Box::from_extent(IntVec(24, 24, 24), IntVec(8, 8, 8), 2));
  h.set_level_boxes(2, l2);
  EXPECT_EQ(h.level(2).num_patches(), 2u);
  // Shrink level 1 so only the first level-2 box stays nested.
  BoxList l1b;
  l1b.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1));
  h.set_level_boxes(1, l1b);
  ASSERT_EQ(h.num_levels(), 3);
  EXPECT_EQ(h.level(2).num_patches(), 1u);
}

TEST(Hierarchy, CompositeBoxListSpansLevels) {
  GridHierarchy h(small_config());
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1));
  h.set_level_boxes(1, l1);
  const BoxList composite = h.composite_box_list();
  EXPECT_EQ(composite.size(), 2u);
  EXPECT_EQ(h.total_cells(), 16 * 16 * 16 + 8 * 8 * 8);
}

TEST(Hierarchy, MaxLevelsEnforced) {
  HierarchyConfig cfg = small_config();
  cfg.max_levels = 2;
  GridHierarchy h(cfg);
  BoxList l1;
  l1.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1));
  h.set_level_boxes(1, l1);
  BoxList l2;
  l2.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 2));
  EXPECT_THROW(h.set_level_boxes(2, l2), Error);
}

}  // namespace
}  // namespace ssamr

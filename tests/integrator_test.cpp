// Integration tests: Berger–Oliger time stepping with the advection and
// Euler kernels, including regridding.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/integrator.hpp"
#include "solver/advection.hpp"
#include "solver/euler.hpp"
#include "solver/richtmyer_meshkov.hpp"

namespace ssamr {
namespace {

HierarchyConfig adv_config(int max_levels = 2) {
  HierarchyConfig cfg;
  cfg.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(16, 8, 8), 0);
  cfg.ratio = 2;
  cfg.max_levels = max_levels;
  cfg.ncomp = 1;
  cfg.ghost = 1;
  cfg.min_box_size = 2;
  return cfg;
}

IntegratorConfig adv_int_config() {
  IntegratorConfig cfg;
  cfg.cfl = 0.4;
  cfg.regrid_interval = 2;
  cfg.dx0 = 1.0 / 16.0;
  cfg.cluster.min_box_size = 2;
  cfg.cluster.small_box_cells = 8;
  return cfg;
}

TEST(Integrator, RejectsMismatchedOperator) {
  HierarchyConfig hc = adv_config();
  hc.ncomp = 2;  // advection has 1 component
  GridHierarchy h(hc);
  AdvectionOperator op(1, 0, 0, 0.3, 0.25, 0.25, 0.08);
  GradientFlagger fl(0, 0.05);
  EXPECT_THROW(BergerOliger(h, op, fl, adv_int_config()), Error);
}

TEST(Integrator, InitializeBuildsRefinedLevels) {
  GridHierarchy h(adv_config(3));
  AdvectionOperator op(1, 0, 0, 0.3, 0.25, 0.25, 0.08);
  GradientFlagger fl(0, 0.05);
  BergerOliger bo(h, op, fl, adv_int_config());
  bo.initialize();
  // The Gaussian blob must have triggered refinement.
  EXPECT_GE(h.num_levels(), 2);
  EXPECT_GT(h.level(1).num_patches(), 0u);
}

TEST(Integrator, DtSatisfiesCflOnFinestLevel) {
  GridHierarchy h(adv_config(2));
  AdvectionOperator op(2, 1, 0, 0.3, 0.25, 0.25, 0.08);
  GradientFlagger fl(0, 0.05);
  BergerOliger bo(h, op, fl, adv_int_config());
  bo.initialize();
  const real_t dt = bo.compute_dt();
  const int finest = h.num_levels() - 1;
  const real_t dx_f = bo.dx_at(finest);
  const real_t dt_f = dt / std::pow(2.0, finest);
  EXPECT_LE(dt_f * 2.0 /*max speed*/, 0.4 * dx_f + 1e-12);
}

TEST(Integrator, BlobAdvectsAtTheRightSpeed) {
  // Single level (no refinement) so the check is purely the kernel's.
  GridHierarchy h(adv_config(1));
  AdvectionOperator op(1.0, 0.0, 0.0, 0.3, 0.25, 0.25, 0.1);
  GradientFlagger fl(0, 1e9);  // never flags
  IntegratorConfig ic = adv_int_config();
  GridHierarchy href(adv_config(1));
  BergerOliger bo(h, op, fl, ic);
  bo.initialize();
  real_t time = 0;
  while (time < 0.2) time += bo.advance_step();
  // Locate the maximum along the x row through the blob centre.
  const Patch& p = h.level(0).patch(0);
  coord_t argmax = 0;
  real_t best = -1;
  for (coord_t i = 0; i < 16; ++i) {
    const real_t v = p.data()(0, i, 2, 2);
    if (v > best) {
      best = v;
      argmax = i;
    }
  }
  const real_t x_max = (static_cast<real_t>(argmax) + 0.5) / 16.0;
  EXPECT_NEAR(x_max, 0.3 + time, 1.5 / 16.0);
  EXPECT_GT(best, 0.1);  // blob not annihilated (diffused but present)
}

TEST(Integrator, AmrTracksTheMovingFeature) {
  GridHierarchy h(adv_config(2));
  AdvectionOperator op(1.0, 0.0, 0.0, 0.25, 0.25, 0.25, 0.12);
  GradientFlagger fl(0, 0.1);
  BergerOliger bo(h, op, fl, adv_int_config());
  bo.initialize();
  ASSERT_GE(h.num_levels(), 2);
  const Box before = h.level(1).box_list()[0];
  real_t time = 0;
  while (time < 0.15) time += bo.advance_step();
  ASSERT_GE(h.num_levels(), 2);
  // The refined region followed the blob in +x.
  Box after = h.level(1).box_list()[0];
  for (const Box& b : h.level(1).box_list())
    after = bounding_union(after, b);
  EXPECT_GT(after.hi().x, before.hi().x);
  EXPECT_GT(bo.regrid_count(), 1);
}

TEST(Integrator, AmrSolutionClosetoUniformFineSolution) {
  // Advect with AMR and compare the final max position against the exact
  // translation — a weak but meaningful accuracy check.
  GridHierarchy h(adv_config(2));
  AdvectionOperator op(1.0, 0.0, 0.0, 0.25, 0.25, 0.25, 0.1);
  GradientFlagger fl(0, 0.3);
  BergerOliger bo(h, op, fl, adv_int_config());
  bo.initialize();
  real_t time = 0;
  for (int s = 0; s < 8; ++s) time += bo.advance_step();
  real_t linf = 0;
  const GridLevel& lvl = h.level(0);
  for (const Patch& p : lvl.patches()) {
    const Box& b = p.box();
    for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
      for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
        for (coord_t i = b.lo().x; i <= b.hi().x; ++i) {
          const real_t exact =
              op.exact((static_cast<real_t>(i) + 0.5) / 16.0,
                       (static_cast<real_t>(j) + 0.5) / 16.0,
                       (static_cast<real_t>(k) + 0.5) / 16.0, time);
          linf = std::max(linf,
                          std::abs(p.data()(0, i, j, k) - exact));
        }
  }
  // First-order upwind on a 16-cell mesh is diffusive; just require the
  // error to stay well below the solution amplitude.
  EXPECT_LT(linf, 0.5);
}

// ---- Euler ---------------------------------------------------------------

TEST(Euler, PrimitiveConservedRoundtrip) {
  const EulerPrimitive p{1.4, 0.3, -0.2, 0.1, 2.5};
  const EulerPrimitive q = to_primitive(to_conserved(p, 1.4), 1.4);
  EXPECT_NEAR(q.rho, p.rho, 1e-12);
  EXPECT_NEAR(q.u, p.u, 1e-12);
  EXPECT_NEAR(q.v, p.v, 1e-12);
  EXPECT_NEAR(q.w, p.w, 1e-12);
  EXPECT_NEAR(q.p, p.p, 1e-12);
}

TEST(Euler, FluxOfUniformFlowMatchesAnalytic) {
  const EulerPrimitive p{2.0, 3.0, 0.0, 0.0, 5.0};
  const EulerState c = to_conserved(p, 1.4);
  const EulerState f = euler_flux(c, 0, 1.4);
  EXPECT_NEAR(f[kRho], 6.0, 1e-12);                      // rho u
  EXPECT_NEAR(f[kMomX], 2.0 * 9.0 + 5.0, 1e-12);         // rho u² + p
  EXPECT_NEAR(f[kEner], (c[kEner] + 5.0) * 3.0, 1e-12);  // (E+p) u
}

TEST(Euler, RusanovFluxConsistent) {
  // F(U,U) == F(U): consistency of the numerical flux.
  const EulerState c = to_conserved({1.0, 0.5, 0.1, -0.3, 1.0}, 1.4);
  const EulerState fr = rusanov_flux(c, c, 1, 1.4);
  const EulerState fe = euler_flux(c, 1, 1.4);
  for (int i = 0; i < kEulerNcomp; ++i) EXPECT_NEAR(fr[i], fe[i], 1e-12);
}

TEST(Euler, UniformStateIsSteady) {
  HierarchyConfig hc = adv_config(1);
  hc.ncomp = kEulerNcomp;
  GridHierarchy h(hc);
  EulerOperator op(1.4, [](real_t, real_t, real_t) {
    return EulerPrimitive{1.0, 0.0, 0.0, 0.0, 1.0};
  });
  GradientFlagger fl(kRho, 1e9);
  IntegratorConfig ic = adv_int_config();
  BergerOliger bo(h, op, fl, ic);
  bo.initialize();
  for (int s = 0; s < 5; ++s) bo.advance_step();
  const Patch& p = h.level(0).patch(0);
  for (coord_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(p.data()(kRho, i, 3, 3), 1.0, 1e-12);
    EXPECT_NEAR(p.data()(kMomX, i, 3, 3), 0.0, 1e-12);
  }
}

TEST(Euler, RankineHugoniotLimits) {
  // Across a Mach-1+ shock the jump tends to zero.
  const EulerPrimitive weak =
      rankine_hugoniot_post_shock(1.0, 1.0, 1.0001, 1.4);
  EXPECT_NEAR(weak.rho, 1.0, 1e-3);
  EXPECT_NEAR(weak.p, 1.0, 1e-3);
  // Strong shock density ratio approaches (γ+1)/(γ-1) = 6 for γ=1.4.
  const EulerPrimitive strong =
      rankine_hugoniot_post_shock(1.0, 1.0, 50.0, 1.4);
  EXPECT_NEAR(strong.rho, 6.0, 0.02);
  EXPECT_THROW(rankine_hugoniot_post_shock(1.0, 1.0, 0.9, 1.4), Error);
}

TEST(Euler, ShockTubePropagatesRightward) {
  // A Sod-like shock along x: after some steps the pressure jump has moved.
  HierarchyConfig hc = adv_config(1);
  hc.ncomp = kEulerNcomp;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 4, 4), 0);
  GridHierarchy h(hc);
  EulerOperator op(1.4, [](real_t x, real_t, real_t) {
    EulerPrimitive s;
    s.rho = x < 0.5 ? 1.0 : 0.125;
    s.p = x < 0.5 ? 1.0 : 0.1;
    return s;
  });
  GradientFlagger fl(kRho, 1e9);
  IntegratorConfig ic = adv_int_config();
  ic.dx0 = 1.0 / 32.0;
  BergerOliger bo(h, op, fl, ic);
  bo.initialize();
  real_t t = 0;
  while (t < 0.1) t += bo.advance_step();
  const Patch& p = h.level(0).patch(0);
  // Density at x≈0.66 must exceed its initial 0.125 (shock passed).
  EXPECT_GT(p.data()(kRho, 21, 2, 2), 0.15);
  // Mass must be essentially conserved (outflow BC, nothing left yet).
  real_t mass = 0;
  for (coord_t k = 0; k < 4; ++k)
    for (coord_t j = 0; j < 4; ++j)
      for (coord_t i = 0; i < 32; ++i) mass += p.data()(kRho, i, j, k);
  EXPECT_NEAR(mass, (1.0 * 16 + 0.125 * 16) * 16, mass * 0.02);
}

TEST(RichtmyerMeshkov, InitialConditionLayout) {
  RichtmyerMeshkovConfig cfg;
  const auto ic = make_rm_initial_condition(cfg);
  const EulerPrimitive post = ic(0.01, 0.1, 0.1);
  const EulerPrimitive light = ic(0.22, 0.1, 0.1);
  const EulerPrimitive heavy = ic(0.9, 0.1, 0.1);
  EXPECT_GT(post.u, 0.0);       // post-shock gas moves toward interface
  EXPECT_GT(post.p, cfg.p0);    // compressed
  EXPECT_NEAR(light.rho, cfg.rho_light, 1e-12);
  EXPECT_NEAR(heavy.rho, cfg.rho_light * cfg.density_ratio, 1e-12);
  EXPECT_NEAR(light.p, cfg.p0, 1e-12);
}

TEST(RichtmyerMeshkov, InterfaceIsPerturbed) {
  RichtmyerMeshkovConfig cfg;
  cfg.amplitude = 0.05;
  const auto ic = make_rm_initial_condition(cfg);
  // At fixed x slightly right of the mean interface, density depends on y.
  const real_t x = (cfg.interface_x + 0.02) * cfg.lx;
  bool saw_light = false, saw_heavy = false;
  for (int j = 0; j < 16; ++j) {
    const real_t y = (j + 0.5) / 16.0 * cfg.ly;
    const real_t rho = ic(x, y, 0.1 * cfg.lz).rho;
    saw_light |= rho < 1.5;
    saw_heavy |= rho > 2.5;
  }
  EXPECT_TRUE(saw_light);
  EXPECT_TRUE(saw_heavy);
}

TEST(RichtmyerMeshkov, ShockReachesAndDeformsInterface) {
  // Small end-to-end RM run on the real Euler solver with AMR: the
  // interface band must refine and move right after shock passage.
  HierarchyConfig hc;
  hc.domain = Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0);
  hc.ncomp = kEulerNcomp;
  hc.ghost = 1;
  hc.max_levels = 2;
  hc.min_box_size = 2;
  GridHierarchy h(hc);
  RichtmyerMeshkovConfig rm;
  rm.lx = 1.0;
  rm.ly = rm.lz = 0.25;
  EulerOperator op = make_rm_operator(rm);
  GradientFlagger fl(kRho, 1.0);
  IntegratorConfig ic;
  ic.dx0 = 1.0 / 32.0;
  ic.regrid_interval = 2;
  ic.cluster.min_box_size = 2;
  ic.cluster.small_box_cells = 8;
  BergerOliger bo(h, op, fl, ic);
  bo.initialize();
  EXPECT_GE(h.num_levels(), 2);  // interface + shock flagged
  for (int s = 0; s < 6; ++s) bo.advance_step();
  // Total x-momentum must be positive: the shock drives gas rightward.
  real_t momx = 0;
  for (const Patch& p : h.level(0).patches()) {
    const Box& b = p.box();
    for (coord_t k = b.lo().z; k <= b.hi().z; ++k)
      for (coord_t j = b.lo().y; j <= b.hi().y; ++j)
        for (coord_t i = b.lo().x; i <= b.hi().x; ++i)
          momx += p.data()(kMomX, i, j, k);
  }
  EXPECT_GT(momx, 0.0);
}

}  // namespace
}  // namespace ssamr

// Fixture for the clock rule's allowance path: this file is listed in
// tools/layering.toml [clock].allowed, so the wall-clock read below must
// stay SILENT — the config-driven allowance (used by the proc execution
// backend, which measures real processes) beats the token ban.  No
// `// expect:` markers: a finding here is a fixture mismatch.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <chrono>

namespace ssamr_fixture {

double allowed_now_seconds() {
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace ssamr_fixture

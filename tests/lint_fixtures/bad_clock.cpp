// Fixture for the `clock` rule: wall-clock reads outside the sanctioned
// seam (util/wallclock.hpp) leak real time into a library that must run
// entirely on virtual time.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <chrono>

namespace ssamr_fixture {

double now_seconds() {
  const auto t = std::chrono::steady_clock::now();  // expect: clock
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

}  // namespace ssamr_fixture

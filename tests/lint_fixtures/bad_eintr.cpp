// eintr-retry fixture, out-of-seam arm: this file is NOT listed in
// tools/layering.toml [eintr].wrappers, so every raw retryable syscall is
// banned outright — a signal landing mid-call would surface as a spurious
// failure here because nothing retries.  The net:: wrapper calls below
// must stay silent.
#include <poll.h>
#include <sys/types.h>
#include <unistd.h>

#include "net/sysio.hpp"

namespace fixture {

long raw_read(int fd, void* buf, unsigned long n) {
  return ::read(fd, buf, n);  // expect: eintr-retry
}

int raw_wait(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);  // expect: eintr-retry
  return status;
}

int wrapped_poll(struct pollfd* fds, nfds_t n, int timeout_ms) {
  return ssamr::net::poll_retry(fds, n, timeout_ms);
}

}  // namespace fixture

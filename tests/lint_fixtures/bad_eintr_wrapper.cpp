// eintr-retry fixture, in-seam arm: this file rides tools/layering.toml
// [eintr].wrappers (the same config-riding scheme as bad_raw_double_api
// and allowed_clock), so raw syscalls are permitted — but each call site
// must be dominated by a retry loop whose body handles EINTR.  write_all
// pins the sanctioned shape; read_once pins the violation.
#include <errno.h>
#include <unistd.h>

namespace fixture {

long write_all(int fd, const char* p, unsigned long n) {
  unsigned long done = 0;
  while (done < n) {
    const long k = ::write(fd, p + done, n - done);
    if (k < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<unsigned long>(k);
  }
  return static_cast<long>(done);
}

long read_once(int fd, char* p, unsigned long n) {
  return ::read(fd, p, n);  // expect: eintr-retry
}

}  // namespace fixture

// fd-lifecycle fixture: one socket created without SOCK_CLOEXEC, one fd
// leaked on an early-return path, one leaked across a throwing call.  The
// clean functions below pin the rule's negative space: guarded failure
// branches, close-on-every-path, and RAII/ownership transfer must stay
// silent.
#include <sys/socket.h>
#include <unistd.h>

#include "net/socket.hpp"
#include "util/error.hpp"

namespace fixture {

int missing_cloexec() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // expect: fd-lifecycle
  if (fd < 0) return -1;
  ::close(fd);
  return 0;
}

int leak_on_early_return(bool flag) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (flag) return -1;  // expect: fd-lifecycle
  ::close(fd);
  return 0;
}

void leak_across_throwing_call(int want) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  SSAMR_REQUIRE(want > 0, "demand");  // expect: fd-lifecycle
  ::close(fd);
}

int closed_on_every_path(bool flag) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (flag) {
    ::close(fd);
    return -1;
  }
  ::close(fd);
  return 0;
}

int ownership_transferred() {
  ssamr::net::UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  SSAMR_REQUIRE(fd.get() >= 0, "socket");
  return fd.release();
}

}  // namespace fixture

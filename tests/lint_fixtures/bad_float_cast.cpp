// Fixture for the `float-cast` rule: casting an out-of-range floating
// value to an integer type is undefined behaviour (the planes_for_target
// bug class).  Casts must clamp in floating point first, or sit next to a
// range guard.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <cstdint>

namespace ssamr_fixture {

std::int32_t planes_for_target(double target_work, double plane_work) {
  const double ratio = target_work / plane_work;
  return static_cast<std::int32_t>(ratio);  // expect: float-cast
}

}  // namespace ssamr_fixture

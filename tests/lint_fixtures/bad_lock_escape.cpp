// lock-escape fixture: a pointer bound to an SSAMR_GUARDED_BY field while
// the MutexLock is held, then dereferenced after the lock scope closes —
// the aliasing hole Clang's -Wthread-safety cannot see.  The in-scope
// reader below must stay silent.
#include "util/thread_safety.hpp"

namespace fixture {

ssamr::Mutex g_mu;
int g_count SSAMR_GUARDED_BY(g_mu) = 0;

int escape_through_scope() {
  const int* p = nullptr;
  {
    ssamr::MutexLock lock(g_mu);
    p = &g_count;
  }
  return *p;  // expect: lock-escape
}

const int* escape_through_return() {
  ssamr::MutexLock lock(g_mu);
  return &g_count;  // expect: lock-escape
}

int read_within_scope() {
  ssamr::MutexLock lock(g_mu);
  const int* p = &g_count;
  return *p;
}

}  // namespace fixture

// Fixture for the `mutex-seam` rule: raw standard lock primitives (and
// thread-safety-analysis escapes) outside util/thread_safety.hpp bypass the
// capability annotations, so -Wthread-safety cannot see the locking.
// Not compiled into the library — parsed by tools/ssamr_lint.py, which
// treats fixtures as if they lived under src/.

#include <condition_variable>
#include <mutex>

namespace ssamr_fixture {

std::mutex g_m;                 // expect: mutex-seam
std::condition_variable g_cv;   // expect: mutex-seam

int locked_get(int& shared) {
  std::lock_guard<std::mutex> lock(g_m);  // expect: mutex-seam
  return shared;
}

// Escaping the analysis is as bad as bypassing the wrappers.
void escape_hatch() __attribute__((no_thread_safety_analysis));  // expect: mutex-seam

}  // namespace ssamr_fixture

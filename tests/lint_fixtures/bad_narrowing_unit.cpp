// Fixture for the `narrowing-unit` rule: converting between dimensional
// types outside the seam (src/util/units.hpp) hides a scale factor — or
// worse, asserts one that does not exist.  Both escape hatches must be
// flagged: static_cast between unit types, and laundering one type's
// .value() through another type's constructor.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include "util/units.hpp"

namespace ssamr_fixture {

using ssamr::MbitsPerSec;
using ssamr::MegaBytes;
using ssamr::Seconds;
using ssamr::Work;

Seconds pretend_time(Work w) {
  return static_cast<Seconds>(w);  // expect: narrowing-unit
}

Seconds relabel_rate(MbitsPerSec r) {
  return Seconds{r.value()};  // expect: narrowing-unit
}

MegaBytes relabel_ctor(Seconds t) {
  return MegaBytes(t.value() * 2.0);  // expect: narrowing-unit
}

// Sanctioned: wrapping a raw scalar at a seam and unwrapping at a
// serialization boundary are exactly what the escape hatches are for.
Seconds from_sensor(double raw_seconds) {
  return Seconds{raw_seconds};
}

double to_csv_cell(Seconds t) {
  return t.value();
}

}  // namespace ssamr_fixture

// Fixture for the `rand` rule: nondeterministic randomness breaks the
// bit-identical trace contract.  Deterministic code seeds util/rng.hpp.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <cstdlib>
#include <random>

namespace ssamr_fixture {

int noisy_choice(int n) {
  std::random_device rd;                    // expect: rand
  const int salt = std::rand();             // expect: rand
  return (static_cast<int>(rd()) + salt) % n;
}

}  // namespace ssamr_fixture

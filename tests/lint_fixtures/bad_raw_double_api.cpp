// Fixture for the `raw-double-cost-api` rule: this file is listed in the
// [cost-api] headers of tools/layering.toml, so bare double/real_t/float
// parameters and returns in its function signatures must be flagged —
// cost quantities carry their dimension via util/units.hpp.  Collections
// of dimensionless shares (std::vector<real_t>) stay exempt.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <vector>

#include "util/types.hpp"
#include "util/units.hpp"

namespace ssamr_fixture {

struct CostSummary {
  ssamr::Seconds total_time;

  real_t total_seconds() const;                 // expect: raw-double-cost-api
  double comm_ratio() const;                    // expect: raw-double-cost-api
  void set_deadline(real_t deadline_s);         // expect: raw-double-cost-api
  ssamr::Work scaled(const ssamr::Work w, float factor);  // expect: raw-double-cost-api

  // Sanctioned signatures the rule must stay silent on:
  ssamr::Seconds typed_total() const;
  std::vector<real_t> relative_shares() const;
  void set_iterations(int iterations);
};

}  // namespace ssamr_fixture

// determinism-taint fixture: measured wall seconds flowing into a
// RankTimeline sink without passing through the ProcOptions::to_virtual
// normalization seam.  Raw wall time varies run to run, so feeding it to a
// trace sink breaks replay determinism; the normalized function below pins
// the sanctioned shape and must stay silent.
#include "sim/executor.hpp"
#include "sim/timeline.hpp"
#include "util/units.hpp"
#include "util/wallclock.hpp"

namespace fixture {

void record_raw(ssamr::sim::RankTimeline& lane) {
  const double w0 = ssamr::wallclock_seconds();
  const double wall = ssamr::wallclock_seconds() - w0;
  lane.advance(ssamr::Seconds{wall}, ssamr::sim::SpanKind::kCompute, 0);  // expect: determinism-taint
}

void record_normalized(ssamr::sim::RankTimeline& lane,
                       const ssamr::ProcOptions& opt) {
  const double w0 = ssamr::wallclock_seconds();
  const double wall = ssamr::wallclock_seconds() - w0;
  lane.advance(opt.to_virtual(wall), ssamr::sim::SpanKind::kCompute, 0);
}

}  // namespace fixture

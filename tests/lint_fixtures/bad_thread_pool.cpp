// Fixture for the `pool-ctor` rule: library code must share the process
// pool (ThreadPool::global()); constructing private pools outside util/
// and tests/ breaks SSAMR_THREADS accounting and risks nested-parallelism
// deadlock.  Tests use ThreadPoolOverride instead.
// Not compiled into the library — parsed by tools/ssamr_lint.py, which
// treats fixtures as if they lived under src/ (so the tests/ exemption
// does not apply here).

#include "util/thread_pool.hpp"

namespace ssamr_fixture {

double busy_sum(std::size_t n) {
  ssamr::ThreadPool pool(4);  // expect: pool-ctor
  double acc = 0;
  pool.parallel_for(n, [&](std::size_t) {});
  return acc;
}

}  // namespace ssamr_fixture

// Fixture for the `unordered-iter` rule: iterating a hash container in a
// function that feeds RunTrace/PartitionResult/CSV makes the output depend
// on hash order, which varies across libstdc++ versions and seeds.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <unordered_map>

#include "sim/trace.hpp"

namespace ssamr_fixture {

void fold_work_into_trace(
    ssamr::RunTrace& trace,
    const std::unordered_map<int, double>& work_by_rank) {
  for (const auto& [rank, work] : work_by_rank) {  // expect: unordered-iter
    trace.compute_time += work;
    (void)rank;
  }
}

}  // namespace ssamr_fixture

// Negative fixture: idiomatic ssamr code that every lint rule must stay
// silent on.  Covers the sanctioned counterpart of each violation in the
// bad_*.cpp fixtures: annotated locks, a clamped float->int cast, ordered
// iteration feeding a trace, and the shared global thread pool.
// Not compiled into the library — parsed by tools/ssamr_lint.py.

#include <algorithm>
#include <cstdint>
#include <map>

#include "sim/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/thread_safety.hpp"

namespace ssamr_fixture {

struct GuardedCounter {
  ssamr::Mutex mutex;
  int value SSAMR_GUARDED_BY(mutex) = 0;
};

int bump(GuardedCounter& c) {
  ssamr::MutexLock lock(c.mutex);
  return ++c.value;
}

std::int32_t planes_for_target(double target_work, double plane_work) {
  const double clamped =
      std::clamp(target_work / plane_work, 0.0, 1024.0);
  return static_cast<std::int32_t>(clamped);
}

void fold_work_into_trace(ssamr::RunTrace& trace,
                          const std::map<int, double>& work_by_rank) {
  for (const auto& [rank, work] : work_by_rank) {
    trace.compute_time += work;
    (void)rank;
  }
}

void run_shared(std::size_t n) {
  ssamr::ThreadPool::global().parallel_for(n, [](std::size_t) {});
}

}  // namespace ssamr_fixture

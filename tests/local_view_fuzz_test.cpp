// Randomized differential tests for the distributed-metadata layer: the
// Morton interval decomposition, the SFC key index and the local box views
// must agree *exactly* with brute-force reference implementations on
// anisotropic nested lattices — including negative domain offsets (the
// per-level coordinate bias) and elongated boxes (the max-extent query
// widening).  The index is a pure lookup accelerator: any divergence from
// the O(N²) scan is a bug, never a tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "hdda/hdda.hpp"
#include "hdda/local_view.hpp"
#include "sfc/key_index.hpp"
#include "sfc/morton.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

/// Anisotropic nested lattice: jittered level-0 boxes with holes, level-1
/// children (coordinates doubled) and occasional level-2 grandchildren.
/// `origin` shifts the whole family, exercising the per-level key bias.
std::vector<Box> random_lattice(Rng& rng, IntVec origin) {
  std::vector<Box> out;
  const coord_t nx = rng.uniform_int(2, 6);
  const coord_t ny = rng.uniform_int(1, 5);
  const coord_t nz = rng.uniform_int(1, 3);
  for (coord_t i = 0; i < nx; ++i)
    for (coord_t j = 0; j < ny; ++j)
      for (coord_t k = 0; k < nz; ++k) {
        if (rng.uniform() < 0.2) continue;  // holes
        // Elongated in a random direction: extents differ by up to ~6x.
        const IntVec ext(4 + 4 * rng.uniform_int(0, 5),
                         4 + 2 * rng.uniform_int(0, 2),
                         4 + 4 * rng.uniform_int(0, 3));
        const IntVec lo(origin.x + i * 28, origin.y + j * 20,
                        origin.z + k * 24);
        out.push_back(Box::from_extent(lo, ext, 0));
        if (rng.uniform() < 0.5) {
          out.push_back(Box::from_extent(IntVec(lo.x * 2, lo.y * 2, lo.z * 2),
                                         IntVec(ext.x, ext.y, 4), 1));
          if (rng.uniform() < 0.3)
            out.push_back(Box::from_extent(
                IntVec(lo.x * 4, lo.y * 4, lo.z * 4), IntVec(4, ext.y, 4), 2));
        }
      }
  if (out.empty())
    out.push_back(Box::from_extent(origin, IntVec(8, 8, 8), 0));
  return out;
}

/// Brute-force O(N²) reference: ids of boxes at region.level() whose
/// extent intersects region.
std::vector<std::uint32_t> brute_query(const std::vector<Box>& boxes,
                                       const Box& region) {
  std::vector<std::uint32_t> out;
  if (region.empty()) return out;
  for (std::size_t i = 0; i < boxes.size(); ++i)
    if (!boxes[i].empty() && boxes[i].level() == region.level() &&
        boxes[i].intersects(region))
      out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

TEST(MortonIntervals, CoverEverySampledCellOfRandomRegions) {
  Rng rng(0x10ca1'01);
  for (int trial = 0; trial < 60; ++trial) {
    const IntVec lo(rng.uniform_int(0, 2000), rng.uniform_int(0, 2000),
                    rng.uniform_int(0, 2000));
    const IntVec ext(1 + rng.uniform_int(0, 60), 1 + rng.uniform_int(0, 20),
                     1 + rng.uniform_int(0, 60));
    const IntVec hi(lo.x + ext.x - 1, lo.y + ext.y - 1, lo.z + ext.z - 1);
    const auto intervals = morton_covering_intervals(lo, hi);
    ASSERT_FALSE(intervals.empty());

    // Ascending, disjoint and merged: consecutive intervals must leave a
    // genuine gap, otherwise the builder failed to coalesce them.
    for (std::size_t r = 0; r < intervals.size(); ++r) {
      EXPECT_LT(intervals[r].begin, intervals[r].end);
      if (r > 0) {
        EXPECT_GT(intervals[r].begin, intervals[r - 1].end);
      }
    }

    // Every sampled cell key lies in some interval (coverage; the inverse
    // — intervals containing outside keys — is allowed by contract).
    for (int s = 0; s < 64; ++s) {
      const IntVec p(lo.x + rng.uniform_int(0, ext.x - 1),
                     lo.y + rng.uniform_int(0, ext.y - 1),
                     lo.z + rng.uniform_int(0, ext.z - 1));
      const key_t key = morton_encode(p);
      bool covered = false;
      for (const auto& iv : intervals)
        if (key >= iv.begin && key < iv.end) covered = true;
      EXPECT_TRUE(covered) << "trial " << trial;
    }
  }
}

TEST(MortonIntervals, EmptyRegionDecomposesToNothing) {
  EXPECT_TRUE(
      morton_covering_intervals(IntVec(4, 4, 4), IntVec(3, 8, 8)).empty());
  EXPECT_TRUE(
      morton_covering_intervals(IntVec(0, 0, 0), IntVec(5, -1, 5)).empty());
}

TEST(SfcKeyIndexFuzz, QueriesMatchBruteForceOnNestedLattices) {
  Rng rng(0x1de'caf);
  for (int trial = 0; trial < 25; ++trial) {
    // Negative origins in some trials: the level bias must absorb them.
    const IntVec origin(trial % 3 == 1 ? -600 : 0,
                        trial % 4 == 2 ? -250 : 0, 0);
    const std::vector<Box> boxes = random_lattice(rng, origin);
    const SfcKeyIndex index(boxes);
    std::vector<std::uint32_t> got;
    // Ghost-grown self-queries: exactly the local-view discovery pattern.
    for (const Box& b : boxes) {
      const Box region = b.grown(2);
      index.query(region, got);
      EXPECT_EQ(got, brute_query(boxes, region)) << "trial " << trial;
    }
    // Arbitrary probe regions, including far-away misses.
    for (int probe = 0; probe < 20; ++probe) {
      const Box region = Box::from_extent(
          IntVec(origin.x + rng.uniform_int(-40, 200),
                 origin.y + rng.uniform_int(-40, 140),
                 rng.uniform_int(-20, 80)),
          IntVec(1 + rng.uniform_int(0, 50), 1 + rng.uniform_int(0, 30),
                 1 + rng.uniform_int(0, 30)),
          rng.uniform_int(0, 2));
      index.query(region, got);
      EXPECT_EQ(got, brute_query(boxes, region)) << "trial " << trial;
    }
  }
}

TEST(SfcKeyIndexFuzz, StatsStayNearLinearOnUniformLattices) {
  // A quasi-uniform lattice is the design point: the candidate superset a
  // query scans must stay a small multiple of its true hits, not O(N).
  std::vector<Box> boxes;
  for (coord_t i = 0; i < 12; ++i)
    for (coord_t j = 0; j < 12; ++j)
      boxes.push_back(
          Box::from_extent(IntVec(i * 8, j * 8, 0), IntVec(8, 8, 8), 0));
  const SfcKeyIndex index(boxes);
  std::vector<std::uint32_t> got;
  for (const Box& b : boxes) index.query(b.grown(2), got);
  const auto& st = index.stats();
  EXPECT_EQ(st.queries, static_cast<std::int64_t>(boxes.size()));
  EXPECT_GT(st.hits, 0);
  // Superset factor: scanned candidates per true hit, far below N = 144.
  EXPECT_LT(st.candidates, st.hits * 8);
}

TEST(LocalViewFuzz, LinksAndHaloMatchBruteForceAdjacency) {
  Rng rng(0xa11'0ca1);
  const coord_t ghost = 2;
  for (int trial = 0; trial < 20; ++trial) {
    const IntVec origin(trial % 5 == 3 ? -320 : 0, 0, 0);
    const std::vector<Box> boxes = random_lattice(rng, origin);
    const int nranks = 1 + static_cast<int>(rng.uniform_int(1, 6));
    std::vector<rank_t> owners(boxes.size());
    for (auto& o : owners)
      o = static_cast<rank_t>(rng.uniform_int(0, nranks - 1));

    const SfcKeyIndex index(boxes);
    const auto views = build_local_views(boxes, owners, nranks, ghost, index);
    ASSERT_EQ(views.size(), static_cast<std::size_t>(nranks));

    // Brute adjacency: every directed cross-owner same-level pair whose
    // grown owner box meets the neighbor.
    std::vector<std::set<std::pair<std::uint32_t, std::uint32_t>>> expect(
        static_cast<std::size_t>(nranks));
    for (std::size_t i = 0; i < boxes.size(); ++i)
      for (std::size_t j = 0; j < boxes.size(); ++j) {
        if (i == j || owners[i] == owners[j]) continue;
        if (boxes[i].level() != boxes[j].level()) continue;
        if (!boxes[i].grown(ghost).intersects(boxes[j])) continue;
        expect[static_cast<std::size_t>(owners[i])].insert(
            {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)});
      }

    for (const LocalBoxView& view : views) {
      SCOPED_TRACE("trial " + std::to_string(trial) + " rank " +
                   std::to_string(view.rank));
      const auto& want = expect[static_cast<std::size_t>(view.rank)];
      ASSERT_EQ(view.links.size(), want.size());
      std::set<std::uint32_t> halo_ids;
      std::size_t pos = 0;
      for (const auto& link : want) {
        EXPECT_EQ(view.links[pos].owned, link.first);
        EXPECT_EQ(view.links[pos].neighbor, link.second);
        halo_ids.insert(link.second);
        ++pos;
      }
      // Halo: each distinct neighbor exactly once, curve-ordered, with
      // the owner and anchor key filled from the shared index.
      ASSERT_EQ(view.halo.size(), halo_ids.size());
      for (std::size_t h = 0; h < view.halo.size(); ++h) {
        const HaloBox& hb = view.halo[h];
        EXPECT_TRUE(halo_ids.count(hb.id));
        EXPECT_EQ(hb.owner, owners[hb.id]);
        EXPECT_EQ(hb.key, index.anchor_key(hb.id));
        if (h > 0) {
          EXPECT_TRUE(std::make_pair(view.halo[h - 1].key,
                                     view.halo[h - 1].id) <
                      std::make_pair(hb.key, hb.id));
        }
      }
      // Owned ids ascending and owned by this rank.
      for (std::size_t o = 0; o < view.owned.size(); ++o) {
        EXPECT_EQ(owners[view.owned[o]], view.rank);
        if (o > 0) {
          EXPECT_LT(view.owned[o - 1], view.owned[o]);
        }
      }
    }
  }
}

TEST(LocalViewFuzz, HddaLocalViewMatchesDirectBuild) {
  Rng rng(0x4dda'44);
  const std::vector<Box> boxes = random_lattice(rng, IntVec(0, 0, 0));
  Hdda hdda;
  std::vector<rank_t> owners(boxes.size());
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    owners[i] = static_cast<rank_t>(i % 3);
    hdda.insert(boxes[i], owners[i], boxes[i].cells());
  }
  // Ids in Hdda views refer to ordered_entries() positions.
  const auto entries = hdda.ordered_entries();
  std::vector<Box> ordered_boxes;
  std::vector<rank_t> ordered_owners;
  for (const auto& e : entries) {
    ordered_boxes.push_back(e.box);
    ordered_owners.push_back(e.owner);
  }
  const auto expect = build_local_views(ordered_boxes, ordered_owners, 3, 2);
  for (rank_t r = 0; r < 3; ++r) {
    const LocalBoxView view = hdda.local_view(r, 2);
    EXPECT_EQ(view.rank, r);
    EXPECT_EQ(view.owned, expect[static_cast<std::size_t>(r)].owned);
    EXPECT_EQ(view.halo, expect[static_cast<std::size_t>(r)].halo);
    EXPECT_TRUE(view.links == expect[static_cast<std::size_t>(r)].links);
  }
}

}  // namespace
}  // namespace ssamr

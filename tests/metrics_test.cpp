// Tests for partition quality metrics (Eq. 2 imbalance, comm volume).

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "partition/metrics.hpp"

namespace ssamr {
namespace {

PartitionResult two_rank_result(real_t w0, real_t w1, real_t l0, real_t l1) {
  PartitionResult r;
  r.assigned_work = {w0, w1};
  r.target_work = {l0, l1};
  return r;
}

TEST(Imbalance, Equation2Exact) {
  // I_k = |W_k - L_k| / L_k * 100
  const auto r = two_rank_result(120, 80, 100, 100);
  const auto i = load_imbalance_pct(r);
  EXPECT_DOUBLE_EQ(i[0], 20.0);
  EXPECT_DOUBLE_EQ(i[1], 20.0);
  EXPECT_DOUBLE_EQ(max_load_imbalance_pct(r), 20.0);
}

TEST(Imbalance, PerfectAssignmentIsZero) {
  const auto i = load_imbalance_pct(two_rank_result(100, 200, 100, 200));
  EXPECT_DOUBLE_EQ(i[0], 0.0);
  EXPECT_DOUBLE_EQ(i[1], 0.0);
}

TEST(Imbalance, ZeroTargetHandled) {
  const auto i = load_imbalance_pct(two_rank_result(0, 100, 0, 100));
  EXPECT_DOUBLE_EQ(i[0], 0.0);
  const auto j = load_imbalance_pct(two_rank_result(10, 90, 0, 100));
  EXPECT_GT(j[0], 1000.0);  // sentinel: work assigned against zero target
}

TEST(Imbalance, EffectiveImbalanceIsWorstOverload) {
  EXPECT_NEAR(effective_imbalance_pct(two_rank_result(130, 70, 100, 100)),
              30.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      effective_imbalance_pct(two_rank_result(90, 100, 100, 100)), 0.0);
}

TEST(CommCells, AdjacentBoxesDifferentOwners) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 1});
  r.assigned_work = {64, 64};
  r.target_work = {64, 64};
  // Ghost width 1: each box's shell overlaps the other by one 4x4 face.
  EXPECT_EQ(partition_comm_cells(r, 1), 2 * 16);
  // Ghost width 2: two planes each.
  EXPECT_EQ(partition_comm_cells(r, 2), 2 * 32);
}

TEST(CommCells, SameOwnerCostsNothing) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 0});
  EXPECT_EQ(partition_comm_cells(r, 2), 0);
}

TEST(CommCells, DifferentLevelsDoNotExchange) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 1), 1});
  EXPECT_EQ(partition_comm_cells(r, 2), 0);
}

TEST(CommCells, DistantBoxesDoNotExchange) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(40, 0, 0), IntVec(4, 4, 4), 0), 1});
  EXPECT_EQ(partition_comm_cells(r, 2), 0);
}

TEST(RankCommBytes, CountsBothDirectionsForOneRank) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 1});
  const std::int64_t expected =
      2 * 16 * 5 * static_cast<std::int64_t>(sizeof(real_t));
  EXPECT_EQ(rank_comm_bytes(r, 0, 1, 5), expected);
  EXPECT_EQ(rank_comm_bytes(r, 1, 1, 5), expected);
  EXPECT_EQ(rank_comm_bytes(r, 2, 1, 5), 0);
  EXPECT_THROW(rank_comm_bytes(r, 0, 1, 0), Error);
}

TEST(PartitionResultHelper, BoxesOfFiltersByOwner) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(2, 2, 2), 0), 1});
  r.assignments.push_back(
      {Box::from_extent(IntVec(8, 0, 0), IntVec(2, 2, 2), 0), 0});
  EXPECT_EQ(r.boxes_of(0).size(), 2u);
  EXPECT_EQ(r.boxes_of(1).size(), 1u);
  EXPECT_EQ(r.boxes_of(7).size(), 0u);
}

TEST(Imbalance, MalformedResultRejected) {
  PartitionResult r;
  r.assigned_work = {1.0};
  r.target_work = {1.0, 2.0};
  EXPECT_THROW(load_imbalance_pct(r), Error);
}

}  // namespace
}  // namespace ssamr

// Tests for partition quality metrics (Eq. 2 imbalance, comm volume).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "partition/metrics.hpp"

namespace ssamr {
namespace {

PartitionResult two_rank_result(real_t w0, real_t w1, real_t l0, real_t l1) {
  PartitionResult r;
  r.assigned_work = {w0, w1};
  r.target_work = {l0, l1};
  return r;
}

TEST(Imbalance, Equation2Exact) {
  // I_k = |W_k - L_k| / L_k * 100
  const auto r = two_rank_result(120, 80, 100, 100);
  const auto i = load_imbalance_pct(r);
  EXPECT_DOUBLE_EQ(i[0], 20.0);
  EXPECT_DOUBLE_EQ(i[1], 20.0);
  EXPECT_DOUBLE_EQ(max_load_imbalance_pct(r), 20.0);
}

TEST(Imbalance, PerfectAssignmentIsZero) {
  const auto i = load_imbalance_pct(two_rank_result(100, 200, 100, 200));
  EXPECT_DOUBLE_EQ(i[0], 0.0);
  EXPECT_DOUBLE_EQ(i[1], 0.0);
}

TEST(Imbalance, ZeroTargetHandled) {
  const auto i = load_imbalance_pct(two_rank_result(0, 100, 0, 100));
  EXPECT_DOUBLE_EQ(i[0], 0.0);
  const auto j = load_imbalance_pct(two_rank_result(10, 90, 0, 100));
  EXPECT_GT(j[0], 1000.0);  // sentinel: work assigned against zero target
}

TEST(Imbalance, EffectiveImbalanceIsWorstOverload) {
  EXPECT_NEAR(effective_imbalance_pct(two_rank_result(130, 70, 100, 100)),
              30.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      effective_imbalance_pct(two_rank_result(90, 100, 100, 100)), 0.0);
}

TEST(CommCells, AdjacentBoxesDifferentOwners) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 1});
  r.assigned_work = {64, 64};
  r.target_work = {64, 64};
  // Ghost width 1: each box's shell overlaps the other by one 4x4 face.
  EXPECT_EQ(partition_comm_cells(r, 1), 2 * 16);
  // Ghost width 2: two planes each.
  EXPECT_EQ(partition_comm_cells(r, 2), 2 * 32);
}

TEST(CommCells, SameOwnerCostsNothing) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 0});
  EXPECT_EQ(partition_comm_cells(r, 2), 0);
}

TEST(CommCells, DifferentLevelsDoNotExchange) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 1), 1});
  EXPECT_EQ(partition_comm_cells(r, 2), 0);
}

TEST(CommCells, DistantBoxesDoNotExchange) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(40, 0, 0), IntVec(4, 4, 4), 0), 1});
  EXPECT_EQ(partition_comm_cells(r, 2), 0);
}

TEST(RankCommBytes, CountsBothDirectionsForOneRank) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 1});
  const std::int64_t expected =
      2 * 16 * 5 * static_cast<std::int64_t>(sizeof(real_t));
  EXPECT_EQ(rank_comm_bytes(r, 0, 1, 5), expected);
  EXPECT_EQ(rank_comm_bytes(r, 1, 1, 5), expected);
  EXPECT_EQ(rank_comm_bytes(r, 2, 1, 5), 0);
  EXPECT_THROW(rank_comm_bytes(r, 0, 1, 0), Error);
}

TEST(PartitionResultHelper, BoxesOfFiltersByOwner) {
  PartitionResult r;
  r.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(2, 2, 2), 0), 0});
  r.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(2, 2, 2), 0), 1});
  r.assignments.push_back(
      {Box::from_extent(IntVec(8, 0, 0), IntVec(2, 2, 2), 0), 0});
  EXPECT_EQ(r.boxes_of(0).size(), 2u);
  EXPECT_EQ(r.boxes_of(1).size(), 1u);
  EXPECT_EQ(r.boxes_of(7).size(), 0u);
}

TEST(Imbalance, MalformedResultRejected) {
  PartitionResult r;
  r.assigned_work = {1.0};
  r.target_work = {1.0, 2.0};
  EXPECT_THROW(load_imbalance_pct(r), Error);
}

/// Brute-force reference for ownership_transfer_flows: all-pairs
/// same-level overlap between old and new owners, accumulated in sorted
/// (src, dst) order.
std::vector<RankFlow> brute_transfer_flows(const PartitionResult& prev,
                                           const PartitionResult& next,
                                           std::int64_t cell_bytes) {
  std::map<std::pair<rank_t, rank_t>, std::int64_t> bytes;
  for (const auto& nb : next.assignments)
    for (const auto& ob : prev.assignments) {
      if (ob.box.level() != nb.box.level() || ob.owner == nb.owner) continue;
      const Box overlap = ob.box.intersection(nb.box);
      if (!overlap.empty())
        bytes[{ob.owner, nb.owner}] += overlap.cells() * cell_bytes;
    }
  std::vector<RankFlow> out;
  for (const auto& [key, b] : bytes)
    if (b > 0) out.push_back(RankFlow{key.first, key.second, b});
  return out;
}

TEST(TransferFlows, MatchBruteForceOverlapScan) {
  // A 3-rank relayout with partial overlaps: rank 0's box splits between
  // ranks 1 and 2, rank 1's moves wholesale, a refined box stays put.
  PartitionResult prev;
  prev.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(8, 4, 4), 0), 0});
  prev.assignments.push_back(
      {Box::from_extent(IntVec(8, 0, 0), IntVec(4, 4, 4), 0), 1});
  prev.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1), 2});
  PartitionResult next;
  next.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 1});
  next.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 2});
  next.assignments.push_back(
      {Box::from_extent(IntVec(8, 0, 0), IntVec(4, 4, 4), 0), 2});
  next.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 1), 2});
  const std::int64_t cell_bytes = 40;
  const auto got = ownership_transfer_flows(prev, next, cell_bytes);
  const auto want = brute_transfer_flows(prev, next, cell_bytes);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].src, want[i].src) << i;
    EXPECT_EQ(got[i].dst, want[i].dst) << i;
    EXPECT_EQ(got[i].bytes, want[i].bytes) << i;
  }
  // Sorted (src, dst), no self or zero flows.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NE(got[i].src, got[i].dst);
    EXPECT_GT(got[i].bytes, 0);
    if (i > 0)
      EXPECT_TRUE(std::make_pair(got[i - 1].src, got[i - 1].dst) <
                  std::make_pair(got[i].src, got[i].dst));
  }
}

TEST(TransferFlows, EmptyPreviousScattersFromRankZero) {
  PartitionResult next;
  next.assignments.push_back(
      {Box::from_extent(IntVec(0, 0, 0), IntVec(4, 4, 4), 0), 0});
  next.assignments.push_back(
      {Box::from_extent(IntVec(4, 0, 0), IntVec(4, 4, 4), 0), 2});
  const auto flows = ownership_transfer_flows(PartitionResult{}, next, 8);
  ASSERT_EQ(flows.size(), 1u);  // rank 0's own box moves nothing
  EXPECT_EQ(flows[0].src, 0);
  EXPECT_EQ(flows[0].dst, 2);
  EXPECT_EQ(flows[0].bytes, 64 * 8);
  EXPECT_THROW(ownership_transfer_flows(PartitionResult{}, next, 0), Error);
}

}  // namespace
}  // namespace ssamr

// Tests for the NWS-substitute monitoring stack: sensors, forecasters,
// monitor service.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>

#include "monitor/monitor_service.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

TEST(Sensor, NoiselessMeasurementMatchesTruth) {
  Cluster c = Cluster::homogeneous(2);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 1.0;
  c.add_load(0, r);
  Sensor s(c, SensorNoise{0, 0, 0}, 1);
  const Measurement m = s.measure(0, Seconds{5.0});
  EXPECT_DOUBLE_EQ(m.cpu_available, 0.5);
  EXPECT_DOUBLE_EQ(m.bandwidth_mbps, 100.0);
}

TEST(Sensor, NoiseIsBoundedAndDeterministic) {
  Cluster c = Cluster::homogeneous(1);
  Sensor a(c, SensorNoise{0.05, 0.05, 0.05}, 7);
  Sensor b(c, SensorNoise{0.05, 0.05, 0.05}, 7);
  for (int i = 0; i < 100; ++i) {
    const Measurement ma = a.measure(0, Seconds{static_cast<real_t>(i)});
    const Measurement mb = b.measure(0, Seconds{static_cast<real_t>(i)});
    EXPECT_EQ(ma.cpu_available, mb.cpu_available);
    EXPECT_GE(ma.cpu_available, 0.0);
    EXPECT_LE(ma.cpu_available, 1.0);
    EXPECT_LE(ma.memory_free_mb, c.spec(0).memory_mb.value());
    EXPECT_LE(ma.bandwidth_mbps, c.spec(0).bandwidth_mbps.value());
  }
}

TEST(Forecaster, LastValue) {
  LastValueForecaster f;
  EXPECT_EQ(f.forecast({}), 0.0);
  EXPECT_EQ(f.forecast({1.0, 2.0, 3.0}), 3.0);
}

TEST(Forecaster, RunningMean) {
  RunningMeanForecaster f;
  EXPECT_DOUBLE_EQ(f.forecast({1.0, 2.0, 3.0}), 2.0);
}

TEST(Forecaster, SlidingMeanUsesWindow) {
  SlidingMeanForecaster f(2);
  EXPECT_DOUBLE_EQ(f.forecast({10.0, 1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(f.forecast({5.0}), 5.0);
  EXPECT_THROW(SlidingMeanForecaster(0), Error);
}

TEST(Forecaster, SlidingMedianRobustToSpike) {
  SlidingMedianForecaster f(5);
  EXPECT_DOUBLE_EQ(f.forecast({1.0, 1.0, 100.0, 1.0, 1.0}), 1.0);
}

TEST(Forecaster, AdaptivePicksLastValueOnAStep) {
  AdaptiveForecaster f;
  // A step series: last-value has the lowest postcast MSE.
  std::vector<real_t> hist{1, 1, 1, 1, 0.3, 0.3, 0.3, 0.3, 0.3};
  EXPECT_EQ(f.best_member(hist), "last");
  EXPECT_DOUBLE_EQ(f.forecast(hist), 0.3);
}

TEST(Forecaster, AdaptivePrefersSmoothingOnNoise) {
  AdaptiveForecaster f;
  // Alternating noise around 0.5: any mean beats last-value.
  std::vector<real_t> hist;
  for (int i = 0; i < 30; ++i) hist.push_back(i % 2 ? 0.8 : 0.2);
  EXPECT_NE(f.best_member(hist), "last");
  EXPECT_NEAR(f.forecast(hist), 0.5, 0.11);
}

TEST(Forecaster, BoundedSelectorMatchesUnboundedOnShortHistories) {
  // The selector scores only a bounded trailing window; for histories that
  // fit the window it must pick exactly the member the historical unbounded
  // selector (every member postcast over every prefix) would pick.
  const auto unbounded_best = [](const std::vector<real_t>& hist) {
    std::vector<std::unique_ptr<Forecaster>> fam;  // default family order
    fam.push_back(std::make_unique<LastValueForecaster>());
    fam.push_back(std::make_unique<RunningMeanForecaster>());
    fam.push_back(std::make_unique<SlidingMeanForecaster>(5));
    fam.push_back(std::make_unique<SlidingMeanForecaster>(10));
    fam.push_back(std::make_unique<SlidingMedianForecaster>(5));
    fam.push_back(std::make_unique<SlidingMedianForecaster>(10));
    std::size_t best = 0;
    real_t best_sse = std::numeric_limits<real_t>::infinity();
    for (std::size_t m = 0; m < fam.size(); ++m) {
      real_t sse = 0;
      for (std::size_t i = 1; i < hist.size(); ++i) {
        const std::vector<real_t> prefix(hist.begin(),
                                         hist.begin() +
                                             static_cast<std::ptrdiff_t>(i));
        const real_t err = fam[m]->forecast(prefix) - hist[i];
        sse += err * err;
      }
      if (sse < best_sse) {
        best_sse = sse;
        best = m;
      }
    }
    return fam[best]->name();
  };

  AdaptiveForecaster f;
  std::vector<real_t> hist;
  std::uint64_t s = 99;
  // Deterministic pseudo-random series, grown one sample at a time up to
  // the score-window size + 1 (the bit-identity boundary).
  for (int i = 0; i < 33; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    hist.push_back(static_cast<real_t>(s >> 40) / 16777216.0);
    if (hist.size() < 2) continue;
    EXPECT_EQ(f.best_member(hist), unbounded_best(hist))
        << "history length " << hist.size();
  }
}

TEST(Forecaster, AdaptiveCustomFamilyValidated) {
  EXPECT_THROW(AdaptiveForecaster(std::vector<std::unique_ptr<Forecaster>>{}),
               Error);
}

TEST(Monitor, ProbeAllReturnsPerNodeEstimates) {
  Cluster c = Cluster::homogeneous(3);
  MonitorConfig cfg;
  cfg.noise = SensorNoise{0, 0, 0};
  ResourceMonitor m(c, cfg);
  const SweepResult sweep = m.probe_all(Seconds{0.0});
  ASSERT_EQ(sweep.estimates.size(), 3u);
  EXPECT_DOUBLE_EQ(sweep.overhead_s.value(), 3 * cfg.probe_cost_s.value());
  EXPECT_EQ(m.probe_count(), 3u);
  for (const auto& e : sweep.estimates)
    EXPECT_DOUBLE_EQ(e.cpu_available.value(), 1.0);
}

TEST(Monitor, HistoriesAccumulate) {
  Cluster c = Cluster::homogeneous(1);
  MonitorConfig cfg;
  ResourceMonitor m(c, cfg);
  m.probe(0, Seconds{0.0});
  m.probe(0, Seconds{1.0});
  m.probe(0, Seconds{2.0});
  EXPECT_EQ(m.cpu_history(0).size(), 3u);
  EXPECT_THROW(m.cpu_history(5), Error);
}

TEST(Monitor, ForecastTracksLoadStep) {
  Cluster c = Cluster::homogeneous(1);
  LoadRamp r;
  r.start_time = Seconds{10.0};
  r.rate = 1e9;
  r.target_level = 1.0;
  c.add_load(0, r);
  MonitorConfig cfg;
  cfg.noise = SensorNoise{0, 0, 0};
  ResourceMonitor m(c, cfg);
  m.probe(0, Seconds{0.0});
  m.probe(0, Seconds{5.0});
  const auto after = m.probe(0, Seconds{20.0});
  // Adaptive forecaster must move decisively toward the new 0.5 level.
  EXPECT_LT(after.cpu_available.value(), 0.75);
}

TEST(Monitor, RawModeSkipsForecasting) {
  Cluster c = Cluster::homogeneous(1);
  MonitorConfig cfg;
  cfg.forecast = false;
  cfg.noise = SensorNoise{0, 0, 0};
  ResourceMonitor m(c, cfg);
  LoadRamp r;
  r.rate = 0;
  r.target_level = 3.0;
  c.set_load_script(0, [&] {
    LoadScript s;
    s.add(r);
    return s;
  }());
  const auto e = m.probe(0, Seconds{0.0});
  EXPECT_DOUBLE_EQ(e.cpu_available.value(), 0.25);
}

TEST(Monitor, ConfigValidation) {
  Cluster c = Cluster::homogeneous(1);
  MonitorConfig cfg;
  cfg.probe_cost_s = Seconds{-1};
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
  cfg = MonitorConfig{};
  cfg.intrusion_cpu = Fraction{1.0};
  EXPECT_THROW(ResourceMonitor(c, cfg), Error);
}

}  // namespace
}  // namespace ssamr

// Tests of the proc-backend framing layer (net/frame.hpp, net/wire.hpp,
// net/socket.hpp): incremental decoding under arbitrary chunking, header
// validation (magic / CRC / oversized-length rejection BEFORE allocation),
// partial reads and writes over real sockets, EINTR resilience, deadline
// behaviour, and a two-process echo round-trip.

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.hpp"
#include "net/proc_exit.hpp"
#include "net/socket.hpp"
#include "net/sysio.hpp"
#include "net/wire.hpp"
#include "util/error.hpp"

namespace ssamr::net {
namespace {

std::vector<std::uint8_t> payload_bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Wire, RoundTripsScalars) {
  WireWriter w;
  w.u32(42);
  w.i32(-7);
  w.u64(1ull << 40);
  w.i64(-(1ll << 40));
  w.f64(3.25);
  WireReader r(w.bytes());
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.u64(), 1ull << 40);
  EXPECT_EQ(r.i64(), -(1ll << 40));
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_TRUE(r.done());
}

TEST(Wire, ThrowsOnTruncation) {
  WireWriter w;
  w.u32(1);
  WireReader r(w.bytes());
  (void)r.u32();
  EXPECT_THROW((void)r.u32(), Error);
}

TEST(Frame, CrcMatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  const auto data = payload_bytes("123456789");
  EXPECT_EQ(crc32(data.data(), data.size()), 0xCBF43926u);
}

TEST(Frame, DecoderReassemblesByteAtATime) {
  const auto msg = payload_bytes("hello, ranks");
  const auto bytes = encode_frame(7, msg.data(), msg.size());
  FrameDecoder d;
  Frame f;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_FALSE(d.next(f)) << "frame completed early at byte " << i;
    d.feed(&bytes[i], 1);
  }
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f.type, 7u);
  EXPECT_EQ(f.payload, msg);
  EXPECT_FALSE(d.next(f));
  EXPECT_EQ(d.error(), FrameError::kNone);
}

TEST(Frame, DecoderHandlesBackToBackFramesInOneChunk) {
  const auto a = payload_bytes("first");
  const auto b = payload_bytes("second");
  auto bytes = encode_frame(1, a.data(), a.size());
  const auto second = encode_frame(2, b.data(), b.size());
  bytes.insert(bytes.end(), second.begin(), second.end());
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f.type, 1u);
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f.type, 2u);
  EXPECT_EQ(f.payload, b);
  EXPECT_FALSE(d.next(f));
}

TEST(Frame, ZeroLengthPayloadIsAFrame) {
  const auto bytes = encode_frame(9, nullptr, 0);
  EXPECT_EQ(bytes.size(), kFrameHeaderSize);
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_TRUE(d.next(f));
  EXPECT_EQ(f.type, 9u);
  EXPECT_TRUE(f.payload.empty());
}

TEST(Frame, BadMagicPoisonsTheDecoder) {
  auto bytes = encode_frame(1, nullptr, 0);
  bytes[0] ^= 0xFF;
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_FALSE(d.next(f));
  EXPECT_EQ(d.error(), FrameError::kBadMagic);
  // Poisoned: further feeds are ignored.
  const auto good = encode_frame(2, nullptr, 0);
  d.feed(good.data(), good.size());
  EXPECT_FALSE(d.next(f));
}

TEST(Frame, CorruptedLengthFailsCrcBeforeAllocation) {
  const auto msg = payload_bytes("x");
  auto bytes = encode_frame(1, msg.data(), msg.size());
  // Flip a length byte without fixing the CRC: the decoder must reject on
  // checksum, never trust the corrupted length.
  bytes[10] ^= 0x40;
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size());
  Frame f;
  EXPECT_FALSE(d.next(f));
  EXPECT_EQ(d.error(), FrameError::kBadCrc);
}

TEST(Frame, OversizedAndNegativeLengthsRejectedWithoutAllocation) {
  for (const std::uint32_t bad_len :
       {kMaxFramePayload + 1, 0x80000000u, 0xFFFFFFFFu}) {
    // Hand-build a header whose CRC is *valid* for the hostile length, so
    // only the length check can reject it.
    std::uint8_t h[kFrameHeaderSize];
    const std::uint32_t magic = kFrameMagic;
    const std::uint32_t type = 1;
    std::memcpy(h, &magic, 4);
    std::memcpy(h + 4, &type, 4);
    std::memcpy(h + 8, &bad_len, 4);
    const std::uint32_t crc = crc32(h, 12);
    std::memcpy(h + 12, &crc, 4);
    FrameDecoder d;
    d.feed(h, sizeof h);
    Frame f;
    EXPECT_FALSE(d.next(f));
    EXPECT_EQ(d.error(), FrameError::kOversized) << "len=" << bad_len;
    // Rejected from the 16 header bytes alone — no payload was ever
    // buffered or reserved.
    EXPECT_EQ(d.pending_bytes(), kFrameHeaderSize);
  }
}

TEST(Frame, TruncatedFrameNeverCompletes) {
  const auto msg = payload_bytes("truncated payload");
  const auto bytes = encode_frame(3, msg.data(), msg.size());
  FrameDecoder d;
  d.feed(bytes.data(), bytes.size() - 4);  // missing the last 4 bytes
  Frame f;
  EXPECT_FALSE(d.next(f));
  EXPECT_EQ(d.error(), FrameError::kNone);  // not an error — just waiting
  EXPECT_EQ(d.pending_bytes(), bytes.size() - 4);
}

// ---- socket-level tests ---------------------------------------------------

class FramedSocketTest : public ::testing::TestWithParam<bool> {};

TEST_P(FramedSocketTest, WholeFrameRoundTrip) {
  const StreamPair pair = make_stream_pair(GetParam());
  const auto msg = payload_bytes("over the socket");
  ASSERT_EQ(write_frame(pair.a, 11, msg.data(), msg.size(), 5.0),
            IoStatus::kOk);
  FrameDecoder d;
  Frame f;
  ASSERT_EQ(read_frame(pair.b, d, f, 5.0), IoStatus::kOk);
  EXPECT_EQ(f.type, 11u);
  EXPECT_EQ(f.payload, msg);
  close_fd(pair.a);
  close_fd(pair.b);
}

INSTANTIATE_TEST_SUITE_P(UnixAndTcp, FramedSocketTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "tcp" : "unix";
                         });

TEST(FrameIo, PartialWritesLargerThanSocketBuffer) {
  // A payload far beyond the kernel socket buffer forces write_frame into
  // many partial write_some() rounds; the reader drains concurrently from
  // a fork so the writer can finish.
  const StreamPair pair = make_stream_pair(false);
  const std::size_t big = 8u << 20;  // 8 MiB
  std::vector<std::uint8_t> msg(big);
  for (std::size_t i = 0; i < big; ++i)
    msg[i] = static_cast<std::uint8_t>(i * 1315423911u >> 17);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close_fd(pair.a);
    FrameDecoder d;
    Frame f;
    const IoStatus st = read_frame(pair.b, d, f, 30.0);
    if (st != IoStatus::kOk || f.payload != msg) hard_exit(1);
    hard_exit(0);
  }
  close_fd(pair.b);
  EXPECT_EQ(write_frame(pair.a, 5, msg.data(), msg.size(), 30.0),
            IoStatus::kOk);
  close_fd(pair.a);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(FrameIo, PeerCloseMidFrameReportsClosed) {
  const StreamPair pair = make_stream_pair(false);
  const auto msg = payload_bytes("never finished");
  const auto bytes = encode_frame(1, msg.data(), msg.size());
  // Push half a frame, then close the writer.
  std::size_t put = 0;
  ASSERT_EQ(write_some(pair.a, bytes.data(), bytes.size() / 2, &put),
            IoStatus::kOk);
  ASSERT_EQ(put, bytes.size() / 2);
  close_fd(pair.a);
  FrameDecoder d;
  Frame f;
  EXPECT_EQ(read_frame(pair.b, d, f, 5.0), IoStatus::kClosed);
  close_fd(pair.b);
}

TEST(FrameIo, ReadDeadlineExpires) {
  const StreamPair pair = make_stream_pair(false);
  FrameDecoder d;
  Frame f;
  EXPECT_EQ(read_frame(pair.b, d, f, 0.05), IoStatus::kTimeout);
  close_fd(pair.a);
  close_fd(pair.b);
}

// ---- EINTR injection ------------------------------------------------------

void noop_handler(int) {}

/// Pepper the main thread with signals (installed WITHOUT SA_RESTART) while
/// it moves a large frame, proving every syscall path retries EINTR.
struct SignalStorm {
  pthread_t target = pthread_self();
  std::atomic<bool> stop{false};
  pthread_t thread{};

  static void* run(void* self_p) {
    auto* self = static_cast<SignalStorm*>(self_p);
    while (!self->stop) {
      pthread_kill(self->target, SIGUSR1);
      struct timespec ts {0, 200'000};  // 0.2 ms
      nanosleep(&ts, nullptr);
    }
    return nullptr;
  }

  SignalStorm() {
    struct sigaction sa {};
    sa.sa_handler = noop_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: syscalls WILL fail with EINTR
    sigaction(SIGUSR1, &sa, nullptr);
    pthread_create(&thread, nullptr, run, this);
  }
  ~SignalStorm() {
    stop = true;
    pthread_join(thread, nullptr);
    struct sigaction sa {};
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGUSR1, &sa, nullptr);
  }
};

TEST(FrameIo, SurvivesEintrStorm) {
  const StreamPair pair = make_stream_pair(false);
  const std::size_t big = 4u << 20;
  std::vector<std::uint8_t> msg(big, 0xAB);

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close_fd(pair.a);
    FrameDecoder d;
    Frame f;
    const IoStatus st = read_frame(pair.b, d, f, 30.0);
    if (st != IoStatus::kOk || f.payload.size() != big) hard_exit(1);
    const auto echoed = encode_frame(f.type + 1, f.payload.data(), 1024);
    // Raw write of the echo frame (blocking semantics via loop).
    std::size_t sent = 0;
    while (sent < echoed.size()) {
      std::size_t put = 0;
      if (write_some(pair.b, echoed.data() + sent, echoed.size() - sent,
                     &put) != IoStatus::kOk)
        hard_exit(2);
      sent += put;
    }
    hard_exit(0);
  }
  close_fd(pair.b);
  {
    SignalStorm storm;  // EINTR rains on write_frame AND read_frame
    ASSERT_EQ(write_frame(pair.a, 5, msg.data(), msg.size(), 30.0),
              IoStatus::kOk);
    FrameDecoder d;
    Frame f;
    ASSERT_EQ(read_frame(pair.a, d, f, 30.0), IoStatus::kOk);
    EXPECT_EQ(f.type, 6u);
    EXPECT_EQ(f.payload.size(), 1024u);
  }
  close_fd(pair.a);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---- two-process echo round-trip ------------------------------------------

TEST(FrameIo, TwoProcessEchoRoundTrip) {
  const StreamPair pair = make_stream_pair(false);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Echo server: bounce frames back with type+1 until the peer closes.
    close_fd(pair.a);
    FrameDecoder d;
    for (;;) {
      Frame f;
      const IoStatus st = read_frame(pair.b, d, f, 10.0);
      if (st == IoStatus::kClosed) hard_exit(0);
      if (st != IoStatus::kOk) hard_exit(1);
      if (write_frame(pair.b, f.type + 1, f.payload.data(),
                      f.payload.size(), 10.0) != IoStatus::kOk)
        hard_exit(2);
    }
  }
  close_fd(pair.b);
  FrameDecoder d;
  for (std::uint32_t i = 0; i < 32; ++i) {
    const std::string text = "ping #" + std::to_string(i);
    const auto msg = payload_bytes(text);
    ASSERT_EQ(write_frame(pair.a, i, msg.data(), msg.size(), 10.0),
              IoStatus::kOk);
    Frame f;
    ASSERT_EQ(read_frame(pair.a, d, f, 10.0), IoStatus::kOk);
    EXPECT_EQ(f.type, i + 1);
    EXPECT_EQ(f.payload, msg);
  }
  close_fd(pair.a);  // EOF -> child exits 0
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// ---- descriptor hygiene and the sysio retry seam --------------------------

TEST_P(FramedSocketTest, DescriptorsAreCloexec) {
  // CLOEXEC must be set atomically at creation (SOCK_CLOEXEC / accept4),
  // not by a later fcntl: a concurrent fork between the two would leak the
  // descriptor into the child's exec image.  F_GETFD observes the result.
  const StreamPair pair = make_stream_pair(GetParam());
  for (const int fd : {pair.a, pair.b}) {
    const int flags = fcntl(fd, F_GETFD);
    ASSERT_GE(flags, 0);
    EXPECT_NE(flags & FD_CLOEXEC, 0) << "fd " << fd << " not CLOEXEC";
  }
  close_fd(pair.a);
  close_fd(pair.b);
}

TEST(Sysio, PollRetrySurvivesSignalStorm) {
  const StreamPair pair = make_stream_pair(false);
  const std::uint8_t byte = 0x5A;
  ASSERT_EQ(::send(pair.b, &byte, 1, 0), 1);
  {
    SignalStorm storm;
    for (int i = 0; i < 64; ++i) {
      struct pollfd pfd {pair.a, POLLIN, 0};
      // A raw ::poll here would intermittently return EINTR under the
      // storm; the wrapper must always report the readable descriptor.
      const int rc = poll_retry(&pfd, 1, 1000);
      ASSERT_EQ(rc, 1);
      ASSERT_NE(pfd.revents & POLLIN, 0);
    }
  }
  close_fd(pair.a);
  close_fd(pair.b);
}

TEST(Sysio, WaitpidRetrySurvivesSignalStorm) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    struct timespec ts {0, 50'000'000};  // 50 ms: storm is up before exit
    nanosleep(&ts, nullptr);
    hard_exit(7);
  }
  int status = 0;
  {
    SignalStorm storm;
    // Blocking wait across the child's lifetime: EINTR is near-certain
    // without the retry loop.
    ASSERT_EQ(waitpid_retry(pid, &status, 0), pid);
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7);
}

TEST(Sysio, TcpPairCreationSurvivesSignalStorm) {
  // make_tcp_pair drives connect_retry and the accept4 loop; under the
  // storm both must complete and the pair must still carry a frame.
  SignalStorm storm;
  const StreamPair pair = make_stream_pair(true);
  const auto msg = payload_bytes("storm-born pair");
  ASSERT_EQ(write_frame(pair.a, 3, msg.data(), msg.size(), 10.0),
            IoStatus::kOk);
  FrameDecoder d;
  Frame f;
  ASSERT_EQ(read_frame(pair.b, d, f, 10.0), IoStatus::kOk);
  EXPECT_EQ(f.payload, msg);
  close_fd(pair.a);
  close_fd(pair.b);
}

TEST(Sysio, UniqueFdOwnsAndReleases) {
  int raw = -1;
  {
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    ASSERT_GE(fd.get(), 0);
    raw = fd.get();
    UniqueFd moved = std::move(fd);
    EXPECT_EQ(fd.get(), -1);
    EXPECT_EQ(moved.get(), raw);
  }  // moved's destructor closes raw
  EXPECT_EQ(fcntl(raw, F_GETFD), -1);
  EXPECT_EQ(errno, EBADF);

  UniqueFd kept(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
  const int released = kept.release();
  ASSERT_GE(released, 0);
  EXPECT_EQ(kept.get(), -1);
  // release() transferred ownership: the fd must still be alive.
  EXPECT_GE(fcntl(released, F_GETFD), 0);
  close_fd(released);
}

}  // namespace
}  // namespace ssamr::net

// Unit tests of the interconnect cost model (cluster/network.hpp): the
// latency + size/bandwidth law, the slower-endpoint limit, the protocol
// efficiency factor and the bandwidth floor.

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/network.hpp"
#include "util/units.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

NetworkModel fast_ethernet() {
  NetworkModel net;
  net.latency_s = Seconds{1.0e-4};
  net.efficiency = Fraction{0.85};
  return net;
}

TEST(Network, ZeroBytesAreFree) {
  const NetworkModel net = fast_ethernet();
  EXPECT_DOUBLE_EQ(
      net.transfer_time(Bytes{0}, MbitsPerSec{100.0}, MbitsPerSec{100.0})
          .value(),
      0.0);
  EXPECT_DOUBLE_EQ(net.exchange_time(Bytes{0}, MbitsPerSec{100.0}).value(),
                   0.0);
}

TEST(Network, NegativeBytesRejected) {
  const NetworkModel net = fast_ethernet();
  EXPECT_THROW(
      net.transfer_time(Bytes{-1}, MbitsPerSec{100.0}, MbitsPerSec{100.0}),
      Error);
  EXPECT_THROW(net.exchange_time(Bytes{-1}, MbitsPerSec{100.0}), Error);
}

TEST(Network, SlowerEndpointLimitsTheTransfer) {
  const NetworkModel net = fast_ethernet();
  const Bytes bytes{1 << 20};
  const MbitsPerSec slow{10.0}, fast{100.0};
  // 10 vs 100 Mbit/s: both orders give the 10 Mbit/s time.
  const Seconds slow_first = net.transfer_time(bytes, slow, fast);
  const Seconds fast_first = net.transfer_time(bytes, fast, slow);
  EXPECT_DOUBLE_EQ(slow_first.value(), fast_first.value());
  EXPECT_DOUBLE_EQ(slow_first.value(),
                   net.transfer_time(bytes, slow, slow).value());
  EXPECT_GT(slow_first, net.transfer_time(bytes, fast, fast));
}

TEST(Network, EfficiencyAppliedExactlyOnce) {
  NetworkModel net = fast_ethernet();
  net.latency_s = Seconds{0};  // isolate the bandwidth term
  net.efficiency = Fraction{0.5};
  const Bytes bytes{1000000};
  const MbitsPerSec mbps{100.0};
  // 100 Mbit/s at 50 % efficiency moves 8e6 bits in 8e6/(50e6) s.
  const real_t expect = 8.0e6 / (0.5 * 100.0 * 1.0e6);
  EXPECT_DOUBLE_EQ(net.transfer_time(bytes, mbps, mbps).value(), expect);
  EXPECT_DOUBLE_EQ(net.exchange_time(bytes, mbps).value(), expect);
}

TEST(Network, LatencyChargedExactlyOncePerMessage) {
  NetworkModel net = fast_ethernet();
  net.efficiency = Fraction{1.0};
  const Bytes bytes{1250000};  // 10^7 bits = 0.1 s at 100 Mbit/s
  const MbitsPerSec mbps{100.0};
  const Seconds t = net.transfer_time(bytes, mbps, mbps);
  EXPECT_DOUBLE_EQ(t.value(), (net.latency_s + Seconds{0.1}).value());
  // Doubling the payload doubles only the bandwidth term.
  const Seconds t2 = net.transfer_time(Bytes{2 * bytes.value()}, mbps, mbps);
  EXPECT_DOUBLE_EQ((t2 - t).value(), 0.1);
}

TEST(Network, SaturatedLinkClampsToTheBandwidthFloor) {
  const NetworkModel net = fast_ethernet();
  const Bytes bytes{1 << 10};
  // A link with (effectively) no deliverable bandwidth still finishes:
  // the model clamps at kMinBandwidthMbps.
  const Seconds t =
      net.transfer_time(bytes, MbitsPerSec{0.0}, MbitsPerSec{100.0});
  const real_t bits = static_cast<real_t>(bytes.value()) * 8.0;
  EXPECT_DOUBLE_EQ(
      t.value(),
      net.latency_s.value() +
          bits / (NetworkModel::kMinBandwidthMbps.value() * 1.0e6));
  EXPECT_TRUE(std::isfinite(t.value()));
}

}  // namespace
}  // namespace ssamr

// Unit tests of the interconnect cost model (cluster/network.hpp): the
// latency + size/bandwidth law, the slower-endpoint limit, the protocol
// efficiency factor and the bandwidth floor.

#include <cmath>

#include <gtest/gtest.h>

#include "cluster/network.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

NetworkModel fast_ethernet() {
  NetworkModel net;
  net.latency_s = 1.0e-4;
  net.efficiency = 0.85;
  return net;
}

TEST(Network, ZeroBytesAreFree) {
  const NetworkModel net = fast_ethernet();
  EXPECT_DOUBLE_EQ(net.transfer_time(0, 100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(net.exchange_time(0, 100.0), 0.0);
}

TEST(Network, NegativeBytesRejected) {
  const NetworkModel net = fast_ethernet();
  EXPECT_THROW(net.transfer_time(-1, 100.0, 100.0), Error);
  EXPECT_THROW(net.exchange_time(-1, 100.0), Error);
}

TEST(Network, SlowerEndpointLimitsTheTransfer) {
  const NetworkModel net = fast_ethernet();
  const std::int64_t bytes = 1 << 20;
  // 10 vs 100 Mbit/s: both orders give the 10 Mbit/s time.
  const real_t slow_first = net.transfer_time(bytes, 10.0, 100.0);
  const real_t fast_first = net.transfer_time(bytes, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(slow_first, fast_first);
  EXPECT_DOUBLE_EQ(slow_first, net.transfer_time(bytes, 10.0, 10.0));
  EXPECT_GT(slow_first, net.transfer_time(bytes, 100.0, 100.0));
}

TEST(Network, EfficiencyAppliedExactlyOnce) {
  NetworkModel net = fast_ethernet();
  net.latency_s = 0;  // isolate the bandwidth term
  net.efficiency = 0.5;
  const std::int64_t bytes = 1000000;
  // 100 Mbit/s at 50 % efficiency moves 8e6 bits in 8e6/(50e6) s.
  const real_t expect = 8.0e6 / (0.5 * 100.0 * 1.0e6);
  EXPECT_DOUBLE_EQ(net.transfer_time(bytes, 100.0, 100.0), expect);
  EXPECT_DOUBLE_EQ(net.exchange_time(bytes, 100.0), expect);
}

TEST(Network, LatencyChargedExactlyOncePerMessage) {
  NetworkModel net = fast_ethernet();
  net.efficiency = 1.0;
  const std::int64_t bytes = 1250000;  // 10^7 bits = 0.1 s at 100 Mbit/s
  const real_t t = net.transfer_time(bytes, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(t, net.latency_s + 0.1);
  // Doubling the payload doubles only the bandwidth term.
  const real_t t2 = net.transfer_time(2 * bytes, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(t2 - t, 0.1);
}

TEST(Network, SaturatedLinkClampsToTheBandwidthFloor) {
  const NetworkModel net = fast_ethernet();
  const std::int64_t bytes = 1 << 10;
  // A link with (effectively) no deliverable bandwidth still finishes:
  // the model clamps at kMinBandwidthMbps.
  const real_t t = net.transfer_time(bytes, 0.0, 100.0);
  const real_t bits = static_cast<real_t>(bytes) * 8.0;
  EXPECT_DOUBLE_EQ(
      t, net.latency_s + bits / (NetworkModel::kMinBandwidthMbps * 1.0e6));
  EXPECT_TRUE(std::isfinite(t));
}

}  // namespace
}  // namespace ssamr

// Differential/property harness over the partitioner zoo: every registered
// scheme runs on identical (boxes, capacities, work) inputs and must uphold
// the shared invariants; capability flags (partition/zoo.hpp) select which
// of the stronger properties apply to which scheme.
//
// The work models here are integer-valued by construction (cost_per_cell
// and cost_per_particle are integers, particle counts are integers), so
// every per-box work, every per-rank sum and the grand total are integers
// representable exactly in a double — the conservation checks below are
// therefore EXPECT_EQ-bit-exact, not EXPECT_NEAR, and hold at any thread
// count and any summation order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "amr/particles.hpp"
#include "geom/box_algebra.hpp"
#include "partition/knapsack.hpp"
#include "partition/greedy.hpp"
#include "partition/grace_default.hpp"
#include "partition/heterogeneous.hpp"
#include "partition/metrics.hpp"
#include "partition/partition_audit.hpp"
#include "partition/zoo.hpp"
#include "sfc/sfc_index.hpp"
#include "util/error.hpp"

namespace ssamr {
namespace {

const WorkModel kIntWork{2, Work{1.0}};

/// 4x4 lattice of 8^3 boxes plus one refined child: the generic mixed
/// fixture every scheme must handle.
BoxList mixed_boxes() {
  BoxList out;
  for (coord_t i = 0; i < 4; ++i)
    for (coord_t j = 0; j < 4; ++j)
      out.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                     IntVec(8, 8, 8), 0));
  out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(16, 16, 16), 1));
  return out;
}

/// Anisotropic boxes of very unequal work across three levels: the lumpy
/// fixture where split/packing decisions actually differ per scheme.
BoxList lumpy_boxes() {
  BoxList out;
  out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(24, 8, 4), 0));
  out.push_back(Box::from_extent(IntVec(32, 0, 0), IntVec(4, 20, 12), 0));
  out.push_back(Box::from_extent(IntVec(48, 0, 0), IntVec(8, 8, 8), 0));
  out.push_back(Box::from_extent(IntVec(0, 32, 0), IntVec(12, 4, 4), 0));
  out.push_back(Box::from_extent(IntVec(8, 8, 0), IntVec(16, 8, 8), 1));
  out.push_back(Box::from_extent(IntVec(96, 0, 0), IntVec(16, 16, 4), 1));
  out.push_back(Box::from_extent(IntVec(40, 40, 8), IntVec(8, 8, 8), 2));
  return out;
}

/// One box only: the degenerate input that exercises split-or-absorb paths.
BoxList single_box() {
  BoxList out;
  out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(32, 8, 8), 0));
  return out;
}

struct Fixture {
  const char* label;
  BoxList boxes;
};

std::vector<Fixture> fixtures() {
  return {{"mixed", mixed_boxes()},
          {"lumpy", lumpy_boxes()},
          {"single_box", single_box()}};
}

std::vector<std::vector<real_t>> capacity_sets() {
  return {{0.16, 0.19, 0.31, 0.34},
          {0.25, 0.25, 0.25, 0.25},
          {0.5, 0.5},
          {0.05, 0.1, 0.15, 0.2, 0.2, 0.3},
          {1.0}};
}

/// Assert the shared invariants of one partition of `boxes`:
///   * ΣW_k equals the total work bit-exactly (integer-valued model),
///   * every input cell is owned exactly once (conservation + disjointness
///     + exact per-box coverage),
///   * every split piece respects min_box_size,
///   * the full partition audit has no errors.
void expect_shared_invariants(const BoxList& boxes,
                              const std::vector<real_t>& caps,
                              const WorkModel& work, const Partitioner& p,
                              const PartitionResult& r) {
  // Bit-exact work conservation.
  ASSERT_EQ(r.assigned_work.size(), caps.size());
  real_t assigned = 0;
  for (real_t w : r.assigned_work) assigned += w;
  EXPECT_EQ(assigned, total_work(boxes, work));

  // Recomputing W_k from the assignments must reproduce the bookkeeping
  // bit-exactly as well.
  std::vector<real_t> recomputed(caps.size(), 0);
  for (const auto& a : r.assignments) {
    ASSERT_GE(a.owner, 0);
    ASSERT_LT(a.owner, static_cast<rank_t>(caps.size()));
    recomputed[static_cast<std::size_t>(a.owner)] += box_work(a.box, work);
  }
  for (std::size_t k = 0; k < caps.size(); ++k)
    EXPECT_EQ(recomputed[k], r.assigned_work[k]) << "rank " << k;

  // Every input cell owned exactly once.
  std::int64_t cells = 0;
  BoxList all;
  for (const auto& a : r.assignments) {
    cells += a.box.cells();
    all.push_back(a.box);
  }
  EXPECT_EQ(cells, boxes.total_cells());
  EXPECT_FALSE(all.has_overlap());
  for (const Box& in : boxes) {
    std::vector<Box> pieces;
    for (const auto& a : r.assignments)
      if (a.box.level() == in.level() && in.intersects(a.box))
        pieces.push_back(a.box.intersection(in));
    EXPECT_TRUE(box_difference(in, pieces).empty()) << "box " << in;
  }

  // Split pieces (assignment boxes that are not input boxes) respect the
  // scheme's minimum box size.
  const coord_t min_size = p.constraints().min_box_size;
  std::vector<Box> inputs(boxes.begin(), boxes.end());
  for (const auto& a : r.assignments) {
    const auto it = std::find(inputs.begin(), inputs.end(), a.box);
    if (it != inputs.end()) {
      inputs.erase(it);  // consumed: duplicates must match one-to-one
      continue;
    }
    const IntVec e = a.box.extent();
    EXPECT_GE(std::min(e.x, std::min(e.y, e.z)), min_size)
        << "split piece " << a.box;
  }

  // The independent audit agrees.
  const audit::AuditReport report =
      audit::validate_partition(boxes, r, caps, work, p.constraints());
  EXPECT_TRUE(report.ok()) << report.summary();
}

real_t peak_relative_load(const PartitionResult& r,
                          const std::vector<real_t>& caps) {
  real_t peak = 0;
  for (std::size_t k = 0; k < caps.size(); ++k) {
    if (caps[k] > 0)
      peak = std::max(peak, r.assigned_work[k] / caps[k]);
    else if (r.assigned_work[k] > 0)
      peak = std::numeric_limits<real_t>::infinity();
  }
  return peak;
}

TEST(PartitionerDifferential, SharedInvariantsAcrossTheZoo) {
  for (const Fixture& fx : fixtures())
    for (const auto& caps : capacity_sets())
      for (const ZooEntry& entry : partitioner_zoo()) {
        SCOPED_TRACE(std::string(fx.label) + "/" + entry.id + "/" +
                     std::to_string(caps.size()) + "procs");
        const auto p = entry.make();
        const PartitionResult r = p->partition(fx.boxes, caps, kIntWork);
        expect_shared_invariants(fx.boxes, caps, kIntWork, *p, r);
        if (!entry.splits_boxes) {
          EXPECT_EQ(r.splits, 0);
          EXPECT_EQ(r.assignments.size(), fx.boxes.size());
        }
      }
}

TEST(PartitionerDifferential, SharedInvariantsWithParticleCoupledCost) {
  // Dual-constraint model: integer particle counts at integer cost keep
  // the conservation checks bit-exact, while the cloud makes per-box work
  // lumpy enough that cells alone no longer predict load.
  const Box domain = Box::from_extent(IntVec(0, 0, 0), IntVec(64, 32, 16), 0);
  ParticleCloudConfig cloud;
  cloud.count = 700;
  const ParticleField field =
      ParticleField::gaussian_cloud(domain, cloud, /*center_x=*/0.4);
  WorkModel work{2, Work{1.0}};
  work.cost_per_particle = Work{3.0};
  work.particles = &field;

  BoxList boxes;
  for (coord_t i = 0; i < 8; ++i)
    for (coord_t j = 0; j < 4; ++j)
      boxes.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                       IntVec(8, 8, 16), 0));
  boxes.push_back(Box::from_extent(IntVec(40, 16, 0), IntVec(16, 16, 16), 1));

  // The cloud must actually land in the domain and be priced: otherwise
  // this test silently degenerates to the cells-only model.
  ASSERT_EQ(field.size(), cloud.count);
  ASSERT_TRUE(work.has_particles());
  ASSERT_GT(total_work(boxes, work),
            total_work(boxes, WorkModel{2, Work{1.0}}));

  for (const auto& caps : capacity_sets())
    for (const ZooEntry& entry : partitioner_zoo()) {
      SCOPED_TRACE(entry.id + "/" + std::to_string(caps.size()) + "procs");
      const auto p = entry.make();
      const PartitionResult r = p->partition(boxes, caps, work);
      expect_shared_invariants(boxes, caps, work, *p, r);
    }
}

TEST(PartitionerDifferential, CapacityPermutationPermutesAssignedWork) {
  // Metamorphic property: for value-matching schemes, permuting the
  // capacity vector must permute assigned_work and target_work identically
  // — assignment follows capacity *values*, not rank positions.  All
  // capacities distinct so the property is unambiguous; all are multiples
  // of 1/16 summing to exactly 1, so the defensive renormalization inside
  // each scheme computes the bit-identical capacity sum under any
  // permutation (dyadic additions of this size are exact).
  const std::vector<real_t> caps{0.0625, 0.1875, 0.3125, 0.4375};
  const std::vector<std::vector<std::size_t>> perms{
      {3, 2, 1, 0}, {1, 2, 3, 0}, {2, 0, 3, 1}};
  for (const Fixture& fx : fixtures())
    for (const ZooEntry& entry : partitioner_zoo()) {
      if (!entry.permutation_equivariant) continue;
      SCOPED_TRACE(std::string(fx.label) + "/" + entry.id);
      const auto p = entry.make();
      const PartitionResult base = p->partition(fx.boxes, caps, kIntWork);
      for (const auto& perm : perms) {
        std::vector<real_t> permuted(caps.size());
        for (std::size_t j = 0; j < caps.size(); ++j)
          permuted[j] = caps[perm[j]];
        const PartitionResult r = p->partition(fx.boxes, permuted, kIntWork);
        for (std::size_t j = 0; j < caps.size(); ++j) {
          EXPECT_EQ(r.assigned_work[j], base.assigned_work[perm[j]])
              << "perm slot " << j;
          EXPECT_EQ(r.target_work[j], base.target_work[perm[j]])
              << "perm slot " << j;
        }
      }
    }
}

TEST(PartitionerDifferential, UniformCapacitiesMatchHomogeneousBaseline) {
  // With a uniform capacity vector the heterogeneous scheme degenerates to
  // the homogeneous problem: on an evenly divisible workload its imbalance
  // must agree with the GrACE default baseline (both are exact there).
  BoxList boxes;
  for (coord_t i = 0; i < 8; ++i)
    for (coord_t j = 0; j < 8; ++j)
      boxes.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                       IntVec(8, 8, 8), 0));
  const std::vector<real_t> caps{0.25, 0.25, 0.25, 0.25};
  HeterogeneousPartitioner het;
  GraceDefaultPartitioner def;
  const real_t i_het =
      effective_imbalance_pct(het.partition(boxes, caps, kIntWork));
  const real_t i_def =
      effective_imbalance_pct(def.partition(boxes, caps, kIntWork));
  EXPECT_NEAR(i_het, i_def, 1e-9);
  EXPECT_NEAR(i_het, 0.0, 1e-9);
}

TEST(PartitionerDifferential, SfcSchemesKeepContiguousCurveSegments) {
  // For sfc_contiguous schemes, rank k owns the k-th contiguous segment of
  // the composite SFC order.  Checked on a fixture where the splitting
  // schemes need no splits, so every assignment box has a curve position.
  BoxList boxes;
  for (coord_t i = 0; i < 8; ++i)
    for (coord_t j = 0; j < 8; ++j)
      boxes.push_back(Box::from_extent(IntVec(i * 8, j * 8, 0),
                                       IntVec(8, 8, 8), 0));
  const std::vector<real_t> caps{0.25, 0.25, 0.25, 0.25};
  const auto perm = sfc_order(boxes.boxes(), SfcConfig{});
  for (const ZooEntry& entry : partitioner_zoo()) {
    if (!entry.sfc_contiguous) continue;
    SCOPED_TRACE(entry.id);
    const auto p = entry.make();
    const PartitionResult r = p->partition(boxes, caps, kIntWork);
    ASSERT_EQ(r.splits, 0);
    ASSERT_EQ(r.assignments.size(), boxes.size());
    // Owner at each curve position; walking the curve the owner rank must
    // be non-decreasing (equivalently: contiguous segments in rank order).
    std::vector<rank_t> owner_at(perm.size(), -1);
    for (const auto& a : r.assignments) {
      std::size_t input = boxes.size();
      for (std::size_t i = 0; i < boxes.size(); ++i)
        if (boxes[i] == a.box) {
          input = i;
          break;
        }
      ASSERT_LT(input, boxes.size());
      for (std::size_t pos = 0; pos < perm.size(); ++pos)
        if (perm[pos] == input) owner_at[pos] = a.owner;
    }
    for (std::size_t pos = 1; pos < owner_at.size(); ++pos)
      EXPECT_GE(owner_at[pos], owner_at[pos - 1]) << "curve pos " << pos;
  }
}

TEST(PartitionerDifferential, KnapsackNeverWorseThanGreedySeed) {
  // The knapsack scheme starts from the same LPT seed as GreedyPartitioner
  // and applies only strictly-improving exchanges, so its peak relative
  // load can never exceed greedy's — on any input.
  for (const Fixture& fx : fixtures())
    for (const auto& caps : capacity_sets()) {
      SCOPED_TRACE(std::string(fx.label) + "/" +
                   std::to_string(caps.size()) + "procs");
      KnapsackPartitioner knapsack;
      GreedyPartitioner greedy;
      const real_t pk =
          peak_relative_load(knapsack.partition(fx.boxes, caps, kIntWork),
                             caps);
      const real_t pg =
          peak_relative_load(greedy.partition(fx.boxes, caps, kIntWork),
                             caps);
      EXPECT_LE(pk, pg + 1e-9);
    }
}

TEST(PartitionerDifferential, ZooRegistryIsConsistent) {
  const auto& zoo = partitioner_zoo();
  ASSERT_GE(zoo.size(), 8u);
  std::size_t local_view_schemes = 0;
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    for (std::size_t j = i + 1; j < zoo.size(); ++j)
      EXPECT_NE(zoo[i].id, zoo[j].id);
    // make_partitioner resolves every registered id to a working instance.
    const auto p = make_partitioner(zoo[i].id);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(p->name().empty());
    if (zoo[i].local_view) {
      ++local_view_schemes;
      // A scheme that decides from shard-local curve scans necessarily
      // walks the space-filling curve and honors capacities.
      EXPECT_TRUE(zoo[i].sfc_contiguous) << zoo[i].id;
      EXPECT_TRUE(zoo[i].capacity_aware) << zoo[i].id;
      EXPECT_EQ(zoo[i].id, "distributed-sfc");
    }
  }
  EXPECT_EQ(local_view_schemes, 1u);
  EXPECT_THROW(make_partitioner("no-such-scheme"), Error);
}

}  // namespace
}  // namespace ssamr

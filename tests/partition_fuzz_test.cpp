// Randomized property tests: every partitioner must uphold its invariants
// on arbitrary (valid) workloads and capacity vectors.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "audit/validator.hpp"
#include "geom/box_algebra.hpp"
#include "partition/grace_default.hpp"
#include "partition/greedy.hpp"
#include "partition/heterogeneous.hpp"
#include "partition/multiaxis.hpp"
#include "partition/sfc_heterogeneous.hpp"
#include "util/rng.hpp"

namespace ssamr {
namespace {

/// A random, valid composite workload: disjoint same-level boxes laid out
/// on a jittered lattice, one or two levels.
BoxList random_workload(Rng& rng) {
  BoxList out;
  const coord_t cell = 4 + 4 * rng.uniform_int(0, 2);  // 4, 8 or 12
  const coord_t nx = rng.uniform_int(2, 5);
  const coord_t ny = rng.uniform_int(1, 4);
  for (coord_t i = 0; i < nx; ++i)
    for (coord_t j = 0; j < ny; ++j) {
      if (rng.uniform() < 0.2) continue;  // holes
      const IntVec ext(cell + 2 * rng.uniform_int(0, 3),
                       cell + 2 * rng.uniform_int(0, 2), cell);
      out.push_back(Box::from_extent(
          IntVec(i * 40, j * 40, 0), ext, 0));
      if (rng.uniform() < 0.5)  // a refined child inside
        out.push_back(Box::from_extent(IntVec(i * 80, j * 80, 0),
                                       IntVec(ext.x, ext.y, cell), 1));
    }
  if (out.empty())
    out.push_back(Box::from_extent(IntVec(0, 0, 0), IntVec(8, 8, 8), 0));
  return out;
}

std::vector<real_t> random_capacities(Rng& rng) {
  const int n = static_cast<int>(rng.uniform_int(1, 9));
  std::vector<real_t> caps(static_cast<std::size_t>(n));
  real_t sum = 0;
  for (auto& c : caps) {
    c = rng.uniform(0.05, 1.0);
    sum += c;
  }
  for (auto& c : caps) c /= sum;
  return caps;
}

class PartitionerFuzzTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Partitioner> make() const {
    const std::string name = GetParam();
    if (name == "default")
      return std::make_unique<GraceDefaultPartitioner>();
    if (name == "heterogeneous")
      return std::make_unique<HeterogeneousPartitioner>();
    if (name == "multiaxis") return std::make_unique<MultiAxisPartitioner>();
    if (name == "sfc_het")
      return std::make_unique<SfcHeterogeneousPartitioner>();
    return std::make_unique<GreedyPartitioner>();
  }
};

TEST_P(PartitionerFuzzTest, InvariantsOnRandomWorkloads) {
  auto partitioner = make();
  Rng rng(0xf00d + std::hash<std::string>{}(GetParam()));
  const WorkModel work;
  for (int trial = 0; trial < 50; ++trial) {
    const BoxList boxes = random_workload(rng);
    const auto caps = random_capacities(rng);
    const PartitionResult r = partitioner->partition(boxes, caps, work);

    // Cell conservation.
    std::int64_t cells = 0;
    for (const auto& a : r.assignments) {
      cells += a.box.cells();
      ASSERT_GE(a.owner, 0);
      ASSERT_LT(a.owner, static_cast<rank_t>(caps.size()));
    }
    ASSERT_EQ(cells, boxes.total_cells()) << "trial " << trial;

    // Work bookkeeping.
    real_t assigned = 0;
    for (real_t w : r.assigned_work) {
      ASSERT_GE(w, 0.0);
      assigned += w;
    }
    ASSERT_NEAR(assigned, total_work(boxes, work),
                total_work(boxes, work) * 1e-9);

    // Exact coverage of every input box by same-level pieces.
    for (const Box& in : boxes) {
      std::vector<Box> pieces;
      for (const auto& a : r.assignments)
        if (a.box.level() == in.level() && in.intersects(a.box))
          pieces.push_back(a.box.intersection(in));
      ASSERT_TRUE(box_difference(in, pieces).empty())
          << "trial " << trial << " box " << in;
    }
  }
}

TEST_P(PartitionerFuzzTest, OutputsPassTheInvariantAudit) {
  auto partitioner = make();
  Rng rng(0xbead + std::hash<std::string>{}(GetParam()));
  const WorkModel work;
  const audit::Validator validator;
  for (int trial = 0; trial < 50; ++trial) {
    const BoxList boxes = random_workload(rng);
    const auto caps = random_capacities(rng);
    ASSERT_TRUE(validator.validate_capacities(caps).ok());
    const PartitionResult r = partitioner->partition(boxes, caps, work);
    const audit::AuditReport report = validator.validate_partition(
        boxes, r, caps, work, partitioner->constraints());
    ASSERT_TRUE(report.ok())
        << "trial " << trial << ": " << report.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionerFuzzTest,
                         ::testing::Values("default", "heterogeneous",
                                           "multiaxis", "sfc_het",
                                           "greedy"));

}  // namespace
}  // namespace ssamr
